// dseq command-line miner.
//
// Reads a sequence database from text files, compiles a pattern expression,
// and mines frequent subsequences with a selectable algorithm:
//
//   dseq_cli --sequences corpus.txt [--hierarchy edges.txt]
//            --pattern '.*(A)[(.^).*]*(b).*' --sigma 2
//            [--algorithm dseq|dcand|naive|semi-naive|desq-dfs|desq-count|
//                         prefix-span|prefix-span-chained]
//            [--workers N] [--limit N] [--stats] [--compress]
//            [--recount] [--recount-sample N] [--lambda N]
//            [--balance [--split-factor F]]
//            [--memory-budget N [--spill-dir DIR]]
//            [--backend local|proc]
//
// Iterative (multi-round) jobs: --recount prepends a distributed
// frequency-recount round to naive/semi-naive/dseq, and
// `--algorithm prefix-span-chained` grows PrefixSpan prefixes one shuffle
// round at a time; --stats prints per-round metrics for both (including
// database-read cache counters of the recount drivers). --compress runs
// the shuffle through the block codec; --stats then reports the compressed
// volume next to the raw one. --balance (dseq only) measures the per-pivot
// shuffle volume first and mines under a PartitionPlan — light pivots
// bundled, heavy pivots range-split and reconciled in one extra round —
// instead of hash partitioning; --stats then also prints the plan and the
// measured per-reducer balance.
//
// Out-of-core execution: --memory-budget N bounds the resident shuffle and
// combiner state of the distributed algorithms to N bytes. With --spill-dir
// DIR (created if missing) the run degrades gracefully — overflowing state
// is spilled to sorted runs in DIR and external-merged back during the
// reduce, with identical mined output; --stats reports the spill volume.
// Without --spill-dir the budget is a hard ceiling that fails with an
// actionable error.
//
// --backend proc runs every shuffle round of the distributed algorithms on
// forked worker processes exchanging segments over loopback TCP
// (src/rpc/proc_backend.h) instead of threads; the mined output and the raw
// shuffle metrics are identical to the default local backend.
//
// Input format: one sequence per line, whitespace-separated item names; the
// hierarchy file has one "child parent" pair per line. Output: one frequent
// sequence per line with its frequency, ordered by decreasing frequency.
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/baselines/prefix_span.h"
#include "src/core/desq_count.h"
#include "src/core/desq_dfs.h"
#include "src/dist/dcand_miner.h"
#include "src/dist/dseq_miner.h"
#include "src/dist/naive.h"
#include "src/fst/compiler.h"
#include "src/io/dataset_io.h"
#include "src/obs/stats.h"
#include "src/obs/trace.h"
#include "src/rpc/proc_backend.h"
#include "src/util/thread_pool.h"

namespace {

struct Args {
  std::string sequences;
  std::string hierarchy;
  std::string pattern;
  std::string algorithm = "dseq";
  uint64_t sigma = 2;
  int workers = 0;  // 0 = hardware default (an explicit --workers must be > 0)
  size_t limit = 0;  // 0 = print all
  bool stats = false;
  bool compress = false;
  bool recount = false;
  uint32_t recount_sample = 1;
  uint32_t lambda = 5;  // prefix-span max pattern length
  bool lambda_set = false;
  bool balance = false;
  double split_factor = 1.0;
  bool split_factor_set = false;
  uint64_t memory_budget = 0;  // 0 = no budget
  std::string spill_dir;
  std::string backend = "local";
  int proc_timeout_ms = 0;  // 0 = no stall detection
  bool proc_timeout_set = false;
  int proc_max_attempts = 3;
  bool proc_max_attempts_set = false;
  int proc_deadline_ms = 0;  // 0 = no round deadline
  bool proc_deadline_set = false;
  std::string trace_out;     // Chrome trace-event JSON output path
  std::string metrics_json;  // metrics registry + dataflow counters path
};

[[noreturn]] void Usage(const char* message) {
  if (message != nullptr) std::fprintf(stderr, "error: %s\n\n", message);
  std::fprintf(
      stderr,
      "usage: dseq_cli --sequences FILE --pattern EXPR [options]\n"
      "  --sequences FILE   one sequence per line, item names\n"
      "  --hierarchy FILE   'child parent' lines (optional)\n"
      "  --pattern EXPR     pattern expression ('^' is the paper's ^)\n"
      "  --sigma N          minimum support (default 2)\n"
      "  --algorithm A      dseq | dcand | naive | semi-naive |\n"
      "                     desq-dfs | desq-count | prefix-span |\n"
      "                     prefix-span-chained (default dseq)\n"
      "  --workers N        map/reduce workers (default: hardware)\n"
      "  --limit N          print at most N sequences (default: all)\n"
      "  --stats            print dataset and run statistics to stderr\n"
      "                     (per-round metrics for chained runs)\n"
      "  --compress         block-compress the shuffle (distributed\n"
      "                     algorithms); --stats reports both volumes\n"
      "  --recount          naive/semi-naive/dseq: prepend a distributed\n"
      "                     frequency-recount round (two-round chained job)\n"
      "  --recount-sample N recount every N-th sequence only, scaled up\n"
      "                     (default 1 = exact)\n"
      "  --lambda N         prefix-span max pattern length (default 5)\n"
      "  --balance          dseq: measure per-pivot shuffle volume and mine\n"
      "                     under a partition plan (bundle light pivots,\n"
      "                     range-split heavy ones) instead of hashing\n"
      "  --split-factor F   split pivots heavier than F x the mean reducer\n"
      "                     load (default 1.0; requires --balance)\n"
      "  --memory-budget N  bound the resident shuffle + combiner state of\n"
      "                     the distributed algorithms to N bytes\n"
      "  --spill-dir DIR    spill overflowing state to sorted runs in DIR\n"
      "                     (created if missing; requires --memory-budget)\n"
      "  --backend B        local (threads, default) | proc (forked worker\n"
      "                     processes over a socket shuffle; distributed\n"
      "                     algorithms only, identical output)\n"
      "  --proc-timeout MS  proc backend: SIGKILL and retry a worker that\n"
      "                     makes no progress (frames or heartbeats) for MS\n"
      "                     milliseconds (default 0 = off)\n"
      "  --proc-max-attempts N\n"
      "                     proc backend: fail a task after N executions end\n"
      "                     in worker deaths (default 3)\n"
      "  --proc-deadline MS proc backend: fail any round that runs longer\n"
      "                     than MS milliseconds (default 0 = off)\n"
      "  --trace-out FILE   record spans and write the run's timeline as\n"
      "                     Chrome trace-event JSON (open in Perfetto; under\n"
      "                     --backend proc the workers' spans are merged in)\n"
      "  --metrics-json FILE\n"
      "                     write the run's metrics — dataflow counters plus\n"
      "                     the histogram/counter registry — as JSON\n");
  std::exit(2);
}

// Strict numeric flag parsing: the whole value must be digits (so "abc",
// "-3", "4x", and "" all fail loudly instead of silently becoming 0).
uint64_t ParseUnsigned(const char* flag, const char* text, uint64_t max_value) {
  if (*text == '\0') Usage((std::string(flag) + " requires a number").c_str());
  uint64_t value = 0;
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') {
      Usage((std::string(flag) + ": '" + text +
             "' is not a valid number")
                .c_str());
    }
    uint64_t digit = static_cast<uint64_t>(*p - '0');
    if (value > (max_value - digit) / 10) {
      Usage((std::string(flag) + ": '" + text + "' is out of range").c_str());
    }
    value = value * 10 + digit;
  }
  return value;
}

double ParsePositiveDouble(const char* flag, const char* text) {
  char* end = nullptr;
  double value = std::strtod(text, &end);
  if (end == text || *end != '\0' || !(value > 0.0)) {
    Usage((std::string(flag) + ": '" + text +
           "' is not a positive number")
              .c_str());
  }
  return value;
}

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        Usage((std::string(flag) + " requires a value").c_str());
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--sequences") == 0) {
      args.sequences = need_value("--sequences");
    } else if (std::strcmp(argv[i], "--hierarchy") == 0) {
      args.hierarchy = need_value("--hierarchy");
    } else if (std::strcmp(argv[i], "--pattern") == 0) {
      args.pattern = need_value("--pattern");
    } else if (std::strcmp(argv[i], "--sigma") == 0) {
      args.sigma = ParseUnsigned("--sigma", need_value("--sigma"), UINT64_MAX);
    } else if (std::strcmp(argv[i], "--algorithm") == 0) {
      args.algorithm = need_value("--algorithm");
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      args.workers = static_cast<int>(
          ParseUnsigned("--workers", need_value("--workers"), INT32_MAX));
      if (args.workers <= 0) Usage("--workers must be positive");
    } else if (std::strcmp(argv[i], "--limit") == 0) {
      args.limit = ParseUnsigned("--limit", need_value("--limit"), UINT64_MAX);
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      args.stats = true;
    } else if (std::strcmp(argv[i], "--compress") == 0) {
      args.compress = true;
    } else if (std::strcmp(argv[i], "--recount") == 0) {
      args.recount = true;
    } else if (std::strcmp(argv[i], "--recount-sample") == 0) {
      args.recount_sample = static_cast<uint32_t>(ParseUnsigned(
          "--recount-sample", need_value("--recount-sample"), UINT32_MAX));
    } else if (std::strcmp(argv[i], "--lambda") == 0) {
      args.lambda = static_cast<uint32_t>(
          ParseUnsigned("--lambda", need_value("--lambda"), UINT32_MAX));
      args.lambda_set = true;
    } else if (std::strcmp(argv[i], "--balance") == 0) {
      args.balance = true;
    } else if (std::strcmp(argv[i], "--split-factor") == 0) {
      args.split_factor =
          ParsePositiveDouble("--split-factor", need_value("--split-factor"));
      args.split_factor_set = true;
    } else if (std::strcmp(argv[i], "--memory-budget") == 0) {
      args.memory_budget = ParseUnsigned(
          "--memory-budget", need_value("--memory-budget"), UINT64_MAX);
      if (args.memory_budget == 0) Usage("--memory-budget must be positive");
    } else if (std::strcmp(argv[i], "--spill-dir") == 0) {
      args.spill_dir = need_value("--spill-dir");
      if (args.spill_dir.empty()) Usage("--spill-dir requires a directory");
    } else if (std::strcmp(argv[i], "--backend") == 0) {
      args.backend = need_value("--backend");
      if (args.backend != "local" && args.backend != "proc") {
        Usage(("--backend: '" + args.backend +
               "' is not a backend (local | proc)")
                  .c_str());
      }
    } else if (std::strcmp(argv[i], "--proc-timeout") == 0) {
      args.proc_timeout_ms = static_cast<int>(ParseUnsigned(
          "--proc-timeout", need_value("--proc-timeout"), INT32_MAX));
      args.proc_timeout_set = true;
    } else if (std::strcmp(argv[i], "--proc-max-attempts") == 0) {
      args.proc_max_attempts = static_cast<int>(
          ParseUnsigned("--proc-max-attempts",
                        need_value("--proc-max-attempts"), INT32_MAX));
      if (args.proc_max_attempts == 0) {
        Usage("--proc-max-attempts must be positive");
      }
      args.proc_max_attempts_set = true;
    } else if (std::strcmp(argv[i], "--proc-deadline") == 0) {
      args.proc_deadline_ms = static_cast<int>(ParseUnsigned(
          "--proc-deadline", need_value("--proc-deadline"), INT32_MAX));
      args.proc_deadline_set = true;
    } else if (std::strcmp(argv[i], "--trace-out") == 0) {
      args.trace_out = need_value("--trace-out");
      if (args.trace_out.empty()) Usage("--trace-out requires a file path");
    } else if (std::strcmp(argv[i], "--metrics-json") == 0) {
      args.metrics_json = need_value("--metrics-json");
      if (args.metrics_json.empty()) {
        Usage("--metrics-json requires a file path");
      }
    } else if (std::strcmp(argv[i], "--help") == 0) {
      Usage(nullptr);
    } else {
      Usage((std::string("unknown flag: ") + argv[i]).c_str());
    }
  }
  if (args.sequences.empty()) Usage("--sequences is required");
  // PrefixSpan's constraint is (σ, λ), not a pattern expression.
  bool is_prefix_span = args.algorithm == "prefix-span" ||
                        args.algorithm == "prefix-span-chained";
  if (args.pattern.empty() && !is_prefix_span) {
    Usage("--pattern is required");
  }
  if (!args.pattern.empty() && is_prefix_span) {
    Usage("--pattern does not apply to the prefix-span algorithms (use "
          "--sigma/--lambda)");
  }
  if (args.sigma == 0) Usage("--sigma must be positive");
  if (args.lambda == 0) Usage("--lambda must be positive");
  if (args.recount_sample == 0) Usage("--recount-sample must be positive");
  if (args.recount && args.algorithm != "naive" &&
      args.algorithm != "semi-naive" && args.algorithm != "dseq") {
    Usage("--recount requires --algorithm naive, semi-naive, or dseq");
  }
  if (args.recount_sample != 1 && !args.recount) {
    Usage("--recount-sample requires --recount");
  }
  if (args.lambda_set && !is_prefix_span) {
    Usage("--lambda requires --algorithm prefix-span or prefix-span-chained");
  }
  if (args.compress &&
      (args.algorithm == "desq-dfs" || args.algorithm == "desq-count")) {
    Usage("--compress requires a distributed (shuffling) algorithm");
  }
  if (args.balance && args.algorithm != "dseq") {
    Usage("--balance requires --algorithm dseq");
  }
  if (args.balance && args.recount) {
    Usage("--balance and --recount cannot be combined (the plan is measured "
          "against the input f-list)");
  }
  if (args.split_factor_set && !args.balance) {
    Usage("--split-factor requires --balance");
  }
  if (!args.spill_dir.empty() && args.memory_budget == 0) {
    Usage("--spill-dir requires --memory-budget");
  }
  if (args.memory_budget > 0 &&
      (args.algorithm == "desq-dfs" || args.algorithm == "desq-count")) {
    Usage("--memory-budget requires a distributed (shuffling) algorithm");
  }
  if (args.backend == "proc" &&
      (args.algorithm == "desq-dfs" || args.algorithm == "desq-count")) {
    Usage("--backend proc requires a distributed (shuffling) algorithm");
  }
  if (args.backend != "proc") {
    if (args.proc_timeout_set) Usage("--proc-timeout requires --backend proc");
    if (args.proc_max_attempts_set) {
      Usage("--proc-max-attempts requires --backend proc");
    }
    if (args.proc_deadline_set) {
      Usage("--proc-deadline requires --backend proc");
    }
  }
  return args;
}

void PrintPlan(const dseq::PartitionPlan& plan) {
  std::fprintf(stderr,
               "plan: %zu pivots packed onto %d reducers, %zu split",
               plan.assignments.size() + plan.splits.size(),
               plan.num_reducers, plan.splits.size());
  for (const dseq::PivotSplit& split : plan.splits) {
    std::fprintf(stderr, " [pivot %llu -> %d sub-partitions]",
                 static_cast<unsigned long long>(split.pivot),
                 split.num_subpartitions());
  }
  dseq::BalanceSummary planned = dseq::SummarizePlannedBalance(plan);
  if (planned.total_bytes > 0) {
    std::fprintf(stderr, ", planned reducer max/mean %.2f",
                 planned.max_to_mean_reducer_bytes);
  }
  std::fprintf(stderr, "\n");
}

// Both stats renderers live in src/obs/stats.h now: one fixed field set
// for every backend (proc-only fields print an explicit n/a marker under
// local instead of silently vanishing), shared with --metrics-json.
void PrintRunStats(const dseq::DataflowMetrics& m, bool proc_backend) {
  std::fputs(dseq::obs::RenderStats("run", m, proc_backend).c_str(), stderr);
}

void PrintRoundStats(const dseq::ChainedDistributedResult& result,
                     bool proc_backend) {
  std::fputs(dseq::obs::RenderChainedStats(
                 result.round_metrics, result.aggregate,
                 result.input_storage_reads, result.input_cache_hits,
                 proc_backend)
                 .c_str(),
             stderr);
}

// Copies the out-of-core and backend flags onto a miner's options (every
// distributed miner extends DistributedRunOptions). --compress also covers
// the spill files: both knobs trade CPU for bytes on the same serialized
// records.
void ApplySpillOptions(const Args& args, dseq::DistributedRunOptions* options) {
  options->memory_budget_bytes = args.memory_budget;
  options->spill_dir = args.spill_dir;
  options->compress_spill = args.compress;
  options->backend = args.backend == "proc" ? dseq::DataflowBackend::kProc
                                            : dseq::DataflowBackend::kLocal;
  options->proc_worker_timeout_ms = args.proc_timeout_ms;
  options->proc_max_task_attempts = args.proc_max_attempts;
  options->proc_round_deadline_ms = args.proc_deadline_ms;
}

// Validates an output-file flag (--trace-out, --metrics-json) before any
// mining starts, mirroring the --spill-dir probe: prove the path can be
// opened for writing now (without clobbering an existing file), so a typo'd
// directory or a read-only target aborts up front rather than after the
// whole run has been traced.
void EnsureWritableFile(const char* flag, const std::string& path) {
  struct stat st;
  const bool existed = ::stat(path.c_str(), &st) == 0;
  if (existed && S_ISDIR(st.st_mode)) {
    throw std::runtime_error(std::string("cannot write ") + flag + " " + path +
                             ": is a directory");
  }
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    throw std::runtime_error(std::string("cannot write ") + flag + " " + path +
                             ": " + std::strerror(errno));
  }
  std::fclose(f);
  if (!existed) ::unlink(path.c_str());
}

// Writes a whole file, failing loudly — the trace/metrics outputs are the
// run's deliverables, so a short write must not exit 0.
void WriteFileOrThrow(const char* flag, const std::string& path,
                      const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error(std::string("cannot write ") + flag + " " + path +
                             ": " + std::strerror(errno));
  }
  const bool wrote =
      std::fwrite(contents.data(), 1, contents.size(), f) == contents.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    throw std::runtime_error(std::string("cannot write ") + flag + " " + path +
                             ": " + std::strerror(errno));
  }
}

// Validates --spill-dir before any mining starts: creates the directory if
// it is missing (one level, like mkdir), rejects paths that exist but are
// not directories, and proves writability by creating and removing a probe
// file (an access(2) check would lie under root or ACLs). Failing here is
// the point — a broken spill target must abort the run up front, not
// minutes in when the first worker overflows its budget.
void EnsureSpillDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    throw std::runtime_error("cannot create --spill-dir " + dir + ": " +
                             std::strerror(errno));
  }
  struct stat st;
  if (::stat(dir.c_str(), &st) != 0) {
    throw std::runtime_error("cannot stat --spill-dir " + dir + ": " +
                             std::strerror(errno));
  }
  if (!S_ISDIR(st.st_mode)) {
    throw std::runtime_error("--spill-dir " + dir +
                             " exists but is not a directory");
  }
  std::string probe = dir + "/.dseq_spill_probe_XXXXXX";
  std::vector<char> buf(probe.begin(), probe.end());
  buf.push_back('\0');
  int fd = ::mkstemp(buf.data());
  if (fd < 0) {
    throw std::runtime_error("--spill-dir " + dir + " is not writable: " +
                             std::strerror(errno));
  }
  ::close(fd);
  ::unlink(buf.data());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dseq;
  Args args = ParseArgs(argc, argv);
  int workers = args.workers > 0 ? args.workers : DefaultWorkers();
  const bool proc = args.backend == "proc";

  try {
    if (!args.spill_dir.empty()) EnsureSpillDir(args.spill_dir);
    if (!args.trace_out.empty()) {
      EnsureWritableFile("--trace-out", args.trace_out);
    }
    if (!args.metrics_json.empty()) {
      EnsureWritableFile("--metrics-json", args.metrics_json);
    }
    // Enabled before any mining (and before the proc backend forks, so the
    // workers inherit the flag and ship their spans back over kTrace).
    if (!args.trace_out.empty() || !args.metrics_json.empty()) {
      obs::SetEnabled(true);
    }
    SequenceDatabase db =
        ReadTextDatabaseFromFiles(args.sequences, args.hierarchy);
    if (args.stats) {
      std::fprintf(stderr,
                   "database: %zu sequences, %zu items, mean length %.1f\n",
                   db.size(), db.dict.size(), db.MeanSequenceLength());
    }
    Fst fst;
    if (!args.pattern.empty()) {
      fst = CompileFst(args.pattern, db.dict);
      if (args.stats) {
        std::fprintf(stderr, "fst: %zu states, %zu transitions\n",
                     fst.num_states(), fst.num_transitions());
      }
    }

    MiningResult patterns;
    bool have_metrics = false;
    DataflowMetrics final_metrics;
    if (args.algorithm == "dseq" && args.balance) {
      DSeqBalanceOptions options;
      options.sigma = args.sigma;
      options.num_map_workers = workers;
      options.num_reduce_workers = workers;
      options.compress_shuffle = args.compress;
      ApplySpillOptions(args, &options);
      options.plan.split_factor = args.split_factor;
      PartitionPlan plan;
      ChainedDistributedResult result =
          MineDSeqBalanced(db.sequences, fst, db.dict, options, &plan);
      if (args.stats) {
        PrintPlan(plan);
        PrintRoundStats(result, proc);
      }
      final_metrics = result.aggregate;
      have_metrics = true;
      patterns = std::move(result.patterns);
    } else if (args.algorithm == "dseq") {
      DSeqRecountOptions options;
      options.sigma = args.sigma;
      options.num_map_workers = workers;
      options.num_reduce_workers = workers;
      options.compress_shuffle = args.compress;
      ApplySpillOptions(args, &options);
      if (args.recount) {
        options.recount_sample_every = args.recount_sample;
        ChainedDistributedResult result =
            MineDSeqRecount(db.sequences, fst, db.dict, options);
        if (args.stats) PrintRoundStats(result, proc);
        final_metrics = result.aggregate;
        have_metrics = true;
        patterns = std::move(result.patterns);
      } else {
        DistributedResult result = MineDSeq(db.sequences, fst, db.dict, options);
        if (args.stats) PrintRunStats(result.metrics, proc);
        final_metrics = result.metrics;
        have_metrics = true;
        patterns = std::move(result.patterns);
      }
    } else if (args.algorithm == "dcand") {
      DCandOptions options;
      options.sigma = args.sigma;
      options.num_map_workers = workers;
      options.num_reduce_workers = workers;
      options.compress_shuffle = args.compress;
      ApplySpillOptions(args, &options);
      DistributedResult result = MineDCand(db.sequences, fst, db.dict, options);
      if (args.stats) PrintRunStats(result.metrics, proc);
      final_metrics = result.metrics;
      have_metrics = true;
      patterns = std::move(result.patterns);
    } else if (args.algorithm == "naive" || args.algorithm == "semi-naive") {
      NaiveRecountOptions options;
      options.sigma = args.sigma;
      options.semi_naive = args.algorithm == "semi-naive";
      options.num_map_workers = workers;
      options.num_reduce_workers = workers;
      options.compress_shuffle = args.compress;
      ApplySpillOptions(args, &options);
      if (args.recount) {
        options.recount_sample_every = args.recount_sample;
        ChainedDistributedResult result =
            MineNaiveRecount(db.sequences, fst, db.dict, options);
        if (args.stats) PrintRoundStats(result, proc);
        final_metrics = result.aggregate;
        have_metrics = true;
        patterns = std::move(result.patterns);
      } else {
        DistributedResult result =
            MineNaive(db.sequences, fst, db.dict, options);
        if (args.stats) PrintRunStats(result.metrics, proc);
        final_metrics = result.metrics;
        have_metrics = true;
        patterns = std::move(result.patterns);
      }
    } else if (args.algorithm == "prefix-span" ||
               args.algorithm == "prefix-span-chained") {
      PrefixSpanOptions options;
      options.sigma = args.sigma;
      options.lambda = args.lambda;
      options.num_map_workers = workers;
      options.num_reduce_workers = workers;
      options.compress_shuffle = args.compress;
      ApplySpillOptions(args, &options);
      if (args.algorithm == "prefix-span-chained") {
        ChainedDistributedResult result =
            MineChainedPrefixSpan(db.sequences, db.dict, options);
        if (args.stats) PrintRoundStats(result, proc);
        final_metrics = result.aggregate;
        have_metrics = true;
        patterns = std::move(result.patterns);
      } else {
        DistributedResult result =
            MinePrefixSpan(db.sequences, db.dict, options);
        if (args.stats) PrintRunStats(result.metrics, proc);
        final_metrics = result.metrics;
        have_metrics = true;
        patterns = std::move(result.patterns);
      }
    } else if (args.algorithm == "desq-dfs") {
      DesqDfsOptions options;
      options.sigma = args.sigma;
      patterns = MineDesqDfs(db.sequences, fst, db.dict, options);
    } else if (args.algorithm == "desq-count") {
      DesqCountOptions options;
      options.sigma = args.sigma;
      options.num_workers = workers;
      patterns = MineDesqCount(db.sequences, fst, db.dict, options);
    } else {
      Usage(("unknown algorithm: " + args.algorithm).c_str());
    }

    std::sort(patterns.begin(), patterns.end(),
              [](const PatternCount& a, const PatternCount& b) {
                if (a.frequency != b.frequency) {
                  return a.frequency > b.frequency;
                }
                return a.pattern < b.pattern;
              });
    size_t shown = 0;
    for (const PatternCount& pc : patterns) {
      if (args.limit > 0 && shown >= args.limit) break;
      std::printf("%llu\t%s\n",
                  static_cast<unsigned long long>(pc.frequency),
                  db.FormatSequence(pc.pattern).c_str());
      ++shown;
    }
    if (args.stats) {
      std::fprintf(stderr, "frequent sequences: %zu (printed %zu)\n",
                   patterns.size(), shown);
    }
    if (!args.trace_out.empty()) {
      WriteFileOrThrow("--trace-out", args.trace_out, obs::ChromeTraceJson());
    }
    if (!args.metrics_json.empty()) {
      WriteFileOrThrow("--metrics-json", args.metrics_json,
                       obs::MetricsReportJson(
                           have_metrics ? &final_metrics : nullptr, proc));
    }
  } catch (const ShuffleOverflowError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    std::fprintf(stderr,
                 "hint: raise --memory-budget, or add --spill-dir DIR to "
                 "spill overflowing shuffle state to disk\n");
    return 1;
  } catch (const ProcTaskFailedError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    std::fprintf(stderr,
                 "hint: every execution of this task killed its worker; if "
                 "the failures are transient, raise --proc-max-attempts or "
                 "--proc-timeout\n");
    return 1;
  } catch (const ProcDeadlineError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    std::fprintf(stderr,
                 "hint: raise --proc-deadline (or drop it) if the round is "
                 "legitimately slow\n");
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
