#!/usr/bin/env python3
"""Validates a dseq Chrome trace-event JSON file (`dseq_cli --trace-out`).

Checks the schema Perfetto/chrome://tracing rely on:

  * the document is {"traceEvents": [...]}
  * every event has ph "X" (complete span) or "M" (metadata)
  * every "X" event carries name, cat, ts, dur, pid, tid, and a numeric
    args.round; ts/dur are non-negative
  * a pid-0 "coordinator" process_name metadata record exists, and every
    pid seen on a span has a matching process_name record

With --require-workers N it additionally asserts that spans from at least
N distinct worker processes (pid >= 1, i.e. worker ordinal pid-1) are
present — the acceptance check for a merged multi-process timeline.

Prints "trace OK (...)" and exits 0 on success; prints the first violation
and exits 1 otherwise (2 for usage/IO errors).
"""

import argparse
import json
import sys


def fail(msg):
    print(f"trace INVALID: {msg}")
    return 1


def validate(doc, require_workers):
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return fail("top level must be an object with a traceEvents key")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        return fail("traceEvents must be a non-empty array")

    named_pids = {}
    span_pids = set()
    num_spans = 0
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            return fail(f"{where} is not an object")
        ph = ev.get("ph")
        if ph == "M":
            if ev.get("name") == "process_name":
                named_pids[ev.get("pid")] = ev.get("args", {}).get("name")
            continue
        if ph != "X":
            return fail(f"{where} has ph {ph!r}; expected 'X' or 'M'")
        for key in ("name", "cat", "ts", "dur", "pid", "tid"):
            if key not in ev:
                return fail(f"{where} is missing {key!r}")
        if not isinstance(ev["name"], str) or not ev["name"]:
            return fail(f"{where} has an empty name")
        if not isinstance(ev["ts"], (int, float)) or ev["ts"] < 0:
            return fail(f"{where} has a non-numeric or negative ts")
        if not isinstance(ev["dur"], (int, float)) or ev["dur"] < 0:
            return fail(f"{where} has a non-numeric or negative dur")
        if not isinstance(ev.get("args", {}).get("round"), int):
            return fail(f"{where} is missing the numeric args.round stamp")
        span_pids.add(ev["pid"])
        num_spans += 1

    if num_spans == 0:
        return fail("no 'X' span events")
    if named_pids.get(0) != "coordinator":
        return fail("no pid-0 'coordinator' process_name metadata record")
    unnamed = sorted(pid for pid in span_pids if pid not in named_pids)
    if unnamed:
        return fail(f"spans on pid(s) {unnamed} have no process_name record")

    worker_pids = sorted(pid for pid in span_pids if pid >= 1)
    if len(worker_pids) < require_workers:
        return fail(f"spans from {len(worker_pids)} worker process(es); "
                    f"need >= {require_workers}")

    workers = ", ".join(f"worker {pid - 1}" for pid in worker_pids)
    print(f"trace OK ({num_spans} spans, coordinator"
          f"{' + ' + workers if workers else ''})")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="path to the trace JSON file")
    parser.add_argument("--require-workers", type=int, default=0,
                        help="minimum number of distinct worker processes "
                             "that must have spans (default 0)")
    args = parser.parse_args()
    try:
        with open(args.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"cannot load {args.trace}: {e}", file=sys.stderr)
        return 2
    return validate(doc, args.require_workers)


if __name__ == "__main__":
    sys.exit(main())
