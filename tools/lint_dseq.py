#!/usr/bin/env python3
"""Repo-specific lint for dseq (run by the lint CI job and by hand).

Rules (suppress a finding with a `// dseq-lint: allow(<rule>)` comment on
the offending line or the line above it):

  naked-new            `new`/`delete` expressions in src/ — ownership lives
                       in containers and smart pointers; the one sanctioned
                       exception (PivotItemVec's inline small-vector
                       storage) carries an allow annotation.
  unseeded-rng         rand()/srand()/std::random_device outside
                       src/datagen/ — results must be reproducible from a
                       seed; benches and tests derive their RNGs from
                       explicit seeds.
  hot-path-string-copy owning std::string `key`/`value`/`payload`
                       parameters in src/dataflow/ and src/spill/ — records
                       are views into arenas; an owning parameter on the
                       emit/combine path silently copies every record.
  spill-file-raii      `new SpillFile` anywhere, and raw `SpillFile*`
                       outside src/spill/spill_file.{h,cc} — every spill
                       file must be owned by RAII so a dead run cannot leak
                       droppings (SpillWriter's borrowed pointer lives in
                       the exempt header).
  header-guard         src/ and tests/ headers must use the canonical
                       DSEQ_<PATH>_H_ include guard.
  header-self-contained (--check-headers) every header must compile on its
                       own: g++ -fsyntax-only over a TU that includes just
                       the header — headers include what they use.

Exit status: 0 clean, 1 findings, 2 usage/setup error.
"""

import argparse
import os
import re
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

ALLOW_RE = re.compile(r"dseq-lint:\s*allow\(([a-z-]+)\)")

def strip_code(text):
    """Blanks comments, string literals, and char literals, preserving line
    structure so reported line numbers match the file. A character scanner,
    not regexes: an apostrophe inside a comment must not open a char
    literal."""
    out = []
    state = "code"  # code | line_comment | block_comment | string | char
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state, repl = "line_comment", "  "
                i += 1
            elif c == "/" and nxt == "*":
                state, repl = "block_comment", "  "
                i += 1
            elif c == '"':
                state, repl = "string", " "
            elif c == "'":
                state, repl = "char", " "
            else:
                repl = c
        else:
            if c == "\n":
                repl = "\n"
                if state == "line_comment":
                    state = "code"
            else:
                repl = " "
                if state == "block_comment" and c == "*" and nxt == "/":
                    state, repl = "code", "  "
                    i += 1
                elif state in ("string", "char") and c == "\\":
                    repl = "  "
                    i += 1
                elif (state == "string" and c == '"') or \
                        (state == "char" and c == "'"):
                    state = "code"
        out.append(repl)
        i += 1
    return "".join(out)


def source_files(roots, exts):
    for root in roots:
        for dirpath, _, names in os.walk(os.path.join(REPO, root)):
            for name in sorted(names):
                if os.path.splitext(name)[1] in exts:
                    yield os.path.relpath(os.path.join(dirpath, name), REPO)


class Linter:
    def __init__(self):
        self.findings = []

    def report(self, path, lineno, rule, message, raw_lines):
        for candidate in (lineno - 1, lineno - 2):
            if 0 <= candidate < len(raw_lines):
                allow = ALLOW_RE.search(raw_lines[candidate])
                if allow and allow.group(1) == rule:
                    return
        self.findings.append(f"{path}:{lineno}: [{rule}] {message}")

    # --- rules --------------------------------------------------------------

    NEW_RE = re.compile(r"\bnew\b(?!\s*\()")  # `new (nothrow)` still matches later
    DELETE_RE = re.compile(r"\bdelete\b(\[\])?\s*[^;,)\s]")

    def check_naked_new(self, path, raw_lines, code_lines):
        for i, line in enumerate(code_lines, start=1):
            if re.search(r"=\s*delete\b", line):
                line = re.sub(r"=\s*delete\b", "", line)
            if self.NEW_RE.search(line):
                self.report(path, i, "naked-new",
                            "naked `new` — own allocations with containers "
                            "or smart pointers", raw_lines)
            if self.DELETE_RE.search(line):
                self.report(path, i, "naked-new",
                            "naked `delete` — pair allocation and ownership "
                            "in one RAII type", raw_lines)

    RNG_RE = re.compile(r"\b(?:rand|srand)\s*\(|std::random_device")

    def check_unseeded_rng(self, path, raw_lines, code_lines):
        if path.startswith("src/datagen/"):
            return
        for i, line in enumerate(code_lines, start=1):
            if self.RNG_RE.search(line):
                self.report(path, i, "unseeded-rng",
                            "non-reproducible RNG — derive a seeded "
                            "std::mt19937_64 instead", raw_lines)

    STRING_PARAM_RE = re.compile(
        r"(?:const\s+std::string\s*&|std::string\s+)\s*"
        r"(?:key|value|payload)\s*[,)]")

    def check_hot_path_string_copy(self, path, raw_lines, code_lines):
        if not (path.startswith("src/dataflow/") or
                path.startswith("src/spill/")):
            return
        for i, line in enumerate(code_lines, start=1):
            if self.STRING_PARAM_RE.search(line):
                self.report(path, i, "hot-path-string-copy",
                            "owning string parameter on the record path — "
                            "take std::string_view", raw_lines)

    SPILL_EXEMPT = {"src/spill/spill_file.h", "src/spill/spill_file.cc"}

    def check_spill_file_raii(self, path, raw_lines, code_lines):
        for i, line in enumerate(code_lines, start=1):
            if re.search(r"\bnew\s+SpillFile\b", line):
                self.report(path, i, "spill-file-raii",
                            "heap-allocated SpillFile — hold it by value so "
                            "the file dies with its owner", raw_lines)
            if path not in self.SPILL_EXEMPT and \
                    re.search(r"\bSpillFile\s*\*", line):
                self.report(path, i, "spill-file-raii",
                            "raw SpillFile pointer outside spill_file.{h,cc} "
                            "— pass SpillFile& or move the value", raw_lines)

    def check_header_guard(self, path, raw_lines, code_lines):
        expected = "DSEQ_" + re.sub(r"[/.]", "_", path.upper()
                                    .removeprefix("SRC/")).rstrip("_") + "_"
        text = "\n".join(code_lines)
        match = re.search(r"#ifndef\s+(\S+)\s*\n\s*#define\s+(\S+)", text)
        if not match or match.group(1) != expected or \
                match.group(2) != expected:
            found = match.group(1) if match else "none"
            self.report(path, 1, "header-guard",
                        f"include guard must be {expected} (found {found})",
                        raw_lines)

    # --- driver -------------------------------------------------------------

    def run(self, check_headers):
        headers = []
        for path in sorted(set(source_files(["src", "tests", "tools", "fuzz",
                                             "bench"], {".h", ".cc"}))):
            with open(os.path.join(REPO, path), encoding="utf-8") as f:
                raw = f.read()
            raw_lines = raw.splitlines()
            code_lines = strip_code(raw).splitlines()
            if path.startswith("src/"):
                self.check_naked_new(path, raw_lines, code_lines)
            self.check_unseeded_rng(path, raw_lines, code_lines)
            self.check_hot_path_string_copy(path, raw_lines, code_lines)
            self.check_spill_file_raii(path, raw_lines, code_lines)
            if path.endswith(".h") and (path.startswith("src/") or
                                        path.startswith("tests/")):
                self.check_header_guard(path, raw_lines, code_lines)
                headers.append(path)
        if check_headers:
            self.check_self_contained(headers)
        return self.findings

    def check_self_contained(self, headers):
        for path in headers:
            with tempfile.NamedTemporaryFile(
                    mode="w", suffix=".cc", delete=False) as tu:
                tu.write(f'#include "{path}"\n')
                tu_path = tu.name
            try:
                proc = subprocess.run(
                    ["g++", "-std=c++17", "-fsyntax-only", "-I", REPO,
                     "-I", "/usr/include", tu_path],
                    capture_output=True, text=True)
                if proc.returncode != 0:
                    first_error = next(
                        (l for l in proc.stderr.splitlines() if "error" in l),
                        proc.stderr.strip().splitlines()[-1]
                        if proc.stderr.strip() else "compile failed")
                    self.report(path, 1, "header-self-contained",
                                f"header does not compile standalone: "
                                f"{first_error}", [])
            finally:
                os.unlink(tu_path)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check-headers", action="store_true",
                        help="also compile every header standalone (slow)")
    args = parser.parse_args()

    findings = Linter().run(args.check_headers)
    for finding in findings:
        print(finding)
    if findings:
        print(f"\n{len(findings)} lint finding(s)", file=sys.stderr)
        return 1
    print("lint clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
