#!/usr/bin/env python3
"""Repo-specific lint for dseq (run by the lint CI job and by hand).

Rules (suppress a finding with a `// dseq-lint: allow(<rule>)` comment on
the offending line or the line above it):

  naked-new            `new`/`delete` expressions in src/ — ownership lives
                       in containers and smart pointers; the one sanctioned
                       exception (PivotItemVec's inline small-vector
                       storage) carries an allow annotation.
  unseeded-rng         rand()/srand()/std::random_device outside
                       src/datagen/ — results must be reproducible from a
                       seed; benches and tests derive their RNGs from
                       explicit seeds.
  hot-path-string-copy owning std::string `key`/`value`/`payload`
                       parameters in src/dataflow/ and src/spill/ — records
                       are views into arenas; an owning parameter on the
                       emit/combine path silently copies every record.
  spill-file-raii      `new SpillFile` anywhere, and raw `SpillFile*`
                       outside src/spill/spill_file.{h,cc} — every spill
                       file must be owned by RAII so a dead run cannot leak
                       droppings (SpillWriter's borrowed pointer lives in
                       the exempt header).
  raw-sync-primitive   bare std synchronization primitives (std::mutex,
                       std::lock_guard, std::condition_variable, and their
                       relatives) outside src/util/sync.h — all locking goes
                       through the annotated dseq::Mutex/MutexLock/CondVar
                       wrappers so Clang Thread Safety Analysis sees it.
  detached-thread      std::thread::detach() anywhere — detached threads
                       outlive round teardown, dodge the error contract, and
                       are invisible to TSan's end-of-test checks; join.
  raw-clock-call       steady_clock::now() outside src/obs/ — all timestamps
                       go through obs::Now()/obs::NowNs() (src/obs/trace.h)
                       so spans, metrics, and timeouts share one clock and
                       land on the merged cross-process timeline.
  header-guard         src/ and tests/ headers must use the canonical
                       DSEQ_<PATH>_H_ include guard.
  header-self-contained (--check-headers) every header must compile on its
                       own: g++ -fsyntax-only over a TU that includes just
                       the header — headers include what they use.

--selftest feeds synthetic snippets through every text rule and verifies the
exact findings (including that `dseq-lint: allow(...)` escapes and comment/
string stripping are honored); it is registered as the `lint_selftest` ctest
entry.

Exit status: 0 clean, 1 findings, 2 usage/setup error.
"""

import argparse
import os
import re
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

ALLOW_RE = re.compile(r"dseq-lint:\s*allow\(([a-z-]+)\)")

def strip_code(text):
    """Blanks comments, string literals, and char literals, preserving line
    structure so reported line numbers match the file. A character scanner,
    not regexes: an apostrophe inside a comment must not open a char
    literal."""
    out = []
    state = "code"  # code | line_comment | block_comment | string | char
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state, repl = "line_comment", "  "
                i += 1
            elif c == "/" and nxt == "*":
                state, repl = "block_comment", "  "
                i += 1
            elif c == '"':
                state, repl = "string", " "
            elif c == "'":
                state, repl = "char", " "
            else:
                repl = c
        else:
            if c == "\n":
                repl = "\n"
                if state == "line_comment":
                    state = "code"
            else:
                repl = " "
                if state == "block_comment" and c == "*" and nxt == "/":
                    state, repl = "code", "  "
                    i += 1
                elif state in ("string", "char") and c == "\\":
                    repl = "  "
                    i += 1
                elif (state == "string" and c == '"') or \
                        (state == "char" and c == "'"):
                    state = "code"
        out.append(repl)
        i += 1
    return "".join(out)


def source_files(roots, exts):
    for root in roots:
        for dirpath, _, names in os.walk(os.path.join(REPO, root)):
            for name in sorted(names):
                if os.path.splitext(name)[1] in exts:
                    yield os.path.relpath(os.path.join(dirpath, name), REPO)


class Linter:
    def __init__(self):
        self.findings = []

    def report(self, path, lineno, rule, message, raw_lines):
        for candidate in (lineno - 1, lineno - 2):
            if 0 <= candidate < len(raw_lines):
                allow = ALLOW_RE.search(raw_lines[candidate])
                if allow and allow.group(1) == rule:
                    return
        self.findings.append(f"{path}:{lineno}: [{rule}] {message}")

    # --- rules --------------------------------------------------------------

    NEW_RE = re.compile(r"\bnew\b(?!\s*\()")  # `new (nothrow)` still matches later
    DELETE_RE = re.compile(r"\bdelete\b(\[\])?\s*[^;,)\s]")

    def check_naked_new(self, path, raw_lines, code_lines):
        for i, line in enumerate(code_lines, start=1):
            if re.search(r"=\s*delete\b", line):
                line = re.sub(r"=\s*delete\b", "", line)
            if self.NEW_RE.search(line):
                self.report(path, i, "naked-new",
                            "naked `new` — own allocations with containers "
                            "or smart pointers", raw_lines)
            if self.DELETE_RE.search(line):
                self.report(path, i, "naked-new",
                            "naked `delete` — pair allocation and ownership "
                            "in one RAII type", raw_lines)

    RNG_RE = re.compile(r"\b(?:rand|srand)\s*\(|std::random_device")

    def check_unseeded_rng(self, path, raw_lines, code_lines):
        if path.startswith("src/datagen/"):
            return
        for i, line in enumerate(code_lines, start=1):
            if self.RNG_RE.search(line):
                self.report(path, i, "unseeded-rng",
                            "non-reproducible RNG — derive a seeded "
                            "std::mt19937_64 instead", raw_lines)

    STRING_PARAM_RE = re.compile(
        r"(?:const\s+std::string\s*&|std::string\s+)\s*"
        r"(?:key|value|payload)\s*[,)]")

    def check_hot_path_string_copy(self, path, raw_lines, code_lines):
        if not (path.startswith("src/dataflow/") or
                path.startswith("src/spill/")):
            return
        for i, line in enumerate(code_lines, start=1):
            if self.STRING_PARAM_RE.search(line):
                self.report(path, i, "hot-path-string-copy",
                            "owning string parameter on the record path — "
                            "take std::string_view", raw_lines)

    SPILL_EXEMPT = {"src/spill/spill_file.h", "src/spill/spill_file.cc"}

    def check_spill_file_raii(self, path, raw_lines, code_lines):
        for i, line in enumerate(code_lines, start=1):
            if re.search(r"\bnew\s+SpillFile\b", line):
                self.report(path, i, "spill-file-raii",
                            "heap-allocated SpillFile — hold it by value so "
                            "the file dies with its owner", raw_lines)
            if path not in self.SPILL_EXEMPT and \
                    re.search(r"\bSpillFile\s*\*", line):
                self.report(path, i, "spill-file-raii",
                            "raw SpillFile pointer outside spill_file.{h,cc} "
                            "— pass SpillFile& or move the value", raw_lines)

    # The annotated wrappers themselves are the one sanctioned home for the
    # std primitives; everything else must lock through them so the locking
    # contract stays visible to Clang Thread Safety Analysis.
    SYNC_EXEMPT = {"src/util/sync.h"}
    SYNC_RE = re.compile(
        r"\bstd::(?:mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|"
        r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|"
        r"shared_lock|condition_variable(?:_any)?)\b")

    def check_raw_sync_primitive(self, path, raw_lines, code_lines):
        if path in self.SYNC_EXEMPT:
            return
        for i, line in enumerate(code_lines, start=1):
            if self.SYNC_RE.search(line):
                self.report(path, i, "raw-sync-primitive",
                            "bare std synchronization primitive — use the "
                            "annotated dseq::Mutex/MutexLock/CondVar "
                            "(src/util/sync.h)", raw_lines)

    DETACH_RE = re.compile(r"(?:\.|->)\s*detach\s*\(\s*\)")

    def check_detached_thread(self, path, raw_lines, code_lines):
        for i, line in enumerate(code_lines, start=1):
            if self.DETACH_RE.search(line):
                self.report(path, i, "detached-thread",
                            "detached thread — join it: detached threads "
                            "outlive teardown and dodge the error contract",
                            raw_lines)

    # The trace clock (src/obs/trace.h) is the one sanctioned reader of the
    # monotonic clock; a second call site would put its timestamps on a
    # different baseline than the merged trace timeline.
    CLOCK_EXEMPT_PREFIX = "src/obs/"
    CLOCK_RE = re.compile(r"\bsteady_clock\s*::\s*now\s*\(")

    def check_raw_clock_call(self, path, raw_lines, code_lines):
        if path.startswith(self.CLOCK_EXEMPT_PREFIX):
            return
        for i, line in enumerate(code_lines, start=1):
            if self.CLOCK_RE.search(line):
                self.report(path, i, "raw-clock-call",
                            "raw steady_clock::now() — read time through "
                            "obs::Now()/obs::NowNs() (src/obs/trace.h) so "
                            "all timestamps share the trace clock", raw_lines)

    def check_header_guard(self, path, raw_lines, code_lines):
        expected = "DSEQ_" + re.sub(r"[/.]", "_", path.upper()
                                    .removeprefix("SRC/")).rstrip("_") + "_"
        text = "\n".join(code_lines)
        match = re.search(r"#ifndef\s+(\S+)\s*\n\s*#define\s+(\S+)", text)
        if not match or match.group(1) != expected or \
                match.group(2) != expected:
            found = match.group(1) if match else "none"
            self.report(path, 1, "header-guard",
                        f"include guard must be {expected} (found {found})",
                        raw_lines)

    # --- driver -------------------------------------------------------------

    def lint_text(self, path, raw):
        """Applies every text rule to one file's contents with the same
        scoping as the tree walk (shared by run() and the self-test)."""
        raw_lines = raw.splitlines()
        code_lines = strip_code(raw).splitlines()
        if path.startswith("src/"):
            self.check_naked_new(path, raw_lines, code_lines)
        self.check_unseeded_rng(path, raw_lines, code_lines)
        self.check_hot_path_string_copy(path, raw_lines, code_lines)
        self.check_spill_file_raii(path, raw_lines, code_lines)
        self.check_raw_sync_primitive(path, raw_lines, code_lines)
        self.check_detached_thread(path, raw_lines, code_lines)
        self.check_raw_clock_call(path, raw_lines, code_lines)
        if path.endswith(".h") and (path.startswith("src/") or
                                    path.startswith("tests/")):
            self.check_header_guard(path, raw_lines, code_lines)
            return True
        return False

    def run(self, check_headers):
        headers = []
        for path in sorted(set(source_files(["src", "tests", "tools", "fuzz",
                                             "bench"], {".h", ".cc"}))):
            with open(os.path.join(REPO, path), encoding="utf-8") as f:
                raw = f.read()
            if self.lint_text(path, raw):
                headers.append(path)
        if check_headers:
            self.check_self_contained(headers)
        return self.findings

    def check_self_contained(self, headers):
        for path in headers:
            with tempfile.NamedTemporaryFile(
                    mode="w", suffix=".cc", delete=False) as tu:
                tu.write(f'#include "{path}"\n')
                tu_path = tu.name
            try:
                proc = subprocess.run(
                    ["g++", "-std=c++17", "-fsyntax-only", "-I", REPO,
                     "-I", "/usr/include", tu_path],
                    capture_output=True, text=True)
                if proc.returncode != 0:
                    first_error = next(
                        (l for l in proc.stderr.splitlines() if "error" in l),
                        proc.stderr.strip().splitlines()[-1]
                        if proc.stderr.strip() else "compile failed")
                    self.report(path, 1, "header-self-contained",
                                f"header does not compile standalone: "
                                f"{first_error}", [])
            finally:
                os.unlink(tu_path)


# Self-test corpus: (case name, virtual path, snippet, rule, expected count
# of findings for that rule). Paths are virtual — nothing is written to disk;
# each snippet runs through lint_text() exactly as a real file would.
SELFTEST_CASES = [
    # raw-sync-primitive: the sync wrappers are the only sanctioned home.
    ("sync: std::mutex member in src", "src/foo/bar.h",
     "dseq::Mutex ok;\nstd::mutex mu;\n", "raw-sync-primitive", 1),
    # One finding per offending line, however many primitives it names.
    ("sync: std::lock_guard in tests", "tests/foo_test.cc",
     "std::lock_guard<std::mutex> lock(mu);\n", "raw-sync-primitive", 1),
    ("sync: std::condition_variable in src", "src/foo/bar.cc",
     "std::condition_variable cv;\n", "raw-sync-primitive", 1),
    ("sync: exempt inside src/util/sync.h", "src/util/sync.h",
     "std::mutex mu_;\nstd::condition_variable cv_;\n",
     "raw-sync-primitive", 0),
    ("sync: allow() on the line", "src/foo/bar.cc",
     "std::mutex mu;  // dseq-lint: allow(raw-sync-primitive)\n",
     "raw-sync-primitive", 0),
    ("sync: allow() on the line above", "src/foo/bar.cc",
     "// dseq-lint: allow(raw-sync-primitive)\nstd::mutex mu;\n",
     "raw-sync-primitive", 0),
    ("sync: mention in a comment is not a use", "src/foo/bar.cc",
     "// replaces std::mutex with dseq::Mutex\ndseq::Mutex mu;\n",
     "raw-sync-primitive", 0),
    ("sync: mention in a string is not a use", "src/foo/bar.cc",
     'const char* kMsg = "std::mutex is banned";\n',
     "raw-sync-primitive", 0),
    # detached-thread: no fire-and-forget threads anywhere.
    ("detach: direct call", "src/foo/bar.cc",
     "std::thread t([]{});\nt.detach();\n", "detached-thread", 1),
    ("detach: through a pointer", "tests/foo_test.cc",
     "worker->detach();\n", "detached-thread", 1),
    ("detach: allow() escape", "src/foo/bar.cc",
     "t.detach();  // dseq-lint: allow(detached-thread)\n",
     "detached-thread", 0),
    ("detach: comment is not a use", "src/foo/bar.cc",
     "// never t.detach() here\nt.join();\n", "detached-thread", 0),
    # raw-clock-call: the trace clock is the only sanctioned clock reader.
    ("clock: steady_clock::now() in src", "src/foo/bar.cc",
     "auto t = std::chrono::steady_clock::now();\n", "raw-clock-call", 1),
    ("clock: fires in bench too", "bench/foo_bench.cc",
     "double t0 = Seconds(steady_clock::now());\n", "raw-clock-call", 1),
    ("clock: exempt under src/obs/", "src/obs/trace.cc",
     "auto t = std::chrono::steady_clock::now();\n", "raw-clock-call", 0),
    ("clock: allow() escape", "src/foo/bar.cc",
     "auto t = std::chrono::steady_clock::now();"
     "  // dseq-lint: allow(raw-clock-call)\n", "raw-clock-call", 0),
    ("clock: comment is not a use", "src/foo/bar.cc",
     "// wraps steady_clock::now() behind one clock\nauto t = obs::Now();\n",
     "raw-clock-call", 0),
    # Regression cases for the pre-existing rules.
    ("naked-new fires in src", "src/foo/bar.cc",
     "int* p = new int(3);\n", "naked-new", 1),
    ("naked-new ignores deleted functions", "src/foo/bar.cc",
     "Foo(const Foo&) = delete;\n", "naked-new", 0),
    ("naked-new scoped to src/", "tests/foo_test.cc",
     "int* p = new int(3);\n", "naked-new", 0),
    ("unseeded-rng fires", "src/foo/bar.cc",
     "int r = rand();\n", "unseeded-rng", 1),
    ("unseeded-rng exempt in datagen", "src/datagen/gen.cc",
     "int r = rand();\n", "unseeded-rng", 0),
    ("hot-path-string-copy fires in dataflow", "src/dataflow/foo.cc",
     "void Emit(const std::string& key);\n", "hot-path-string-copy", 1),
    ("spill-file-raii fires on heap SpillFile", "src/foo/bar.cc",
     "auto* f = new SpillFile(path);\n", "spill-file-raii", 1),
    ("header-guard fires on a wrong guard", "src/foo/bar.h",
     "#ifndef WRONG_H\n#define WRONG_H\n#endif\n", "header-guard", 1),
    ("header-guard accepts the canonical guard", "src/foo/bar.h",
     "#ifndef DSEQ_FOO_BAR_H_\n#define DSEQ_FOO_BAR_H_\n#endif\n",
     "header-guard", 0),
]


def run_selftest():
    failures = []
    for name, path, snippet, rule, expected in SELFTEST_CASES:
        linter = Linter()
        linter.lint_text(path, snippet)
        got = sum(1 for f in linter.findings if f"[{rule}]" in f)
        status = "ok" if got == expected else "FAIL"
        print(f"{status:4} {name}: expected {expected} [{rule}], got {got}")
        if got != expected:
            failures.append(name)
            for f in linter.findings:
                print(f"       {f}")
    if failures:
        print(f"\n{len(failures)} self-test case(s) failed", file=sys.stderr)
        return 1
    print(f"\nall {len(SELFTEST_CASES)} lint self-test cases passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check-headers", action="store_true",
                        help="also compile every header standalone (slow)")
    parser.add_argument("--selftest", action="store_true",
                        help="run the rule self-tests instead of linting")
    args = parser.parse_args()

    if args.selftest:
        return run_selftest()

    findings = Linter().run(args.check_headers)
    for finding in findings:
        print(finding)
    if findings:
        print(f"\n{len(findings)} lint finding(s)", file=sys.stderr)
        return 1
    print("lint clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
