// Order-aware recommendation example (paper Tab. III, constraints A1–A4).
//
//   build/examples/market_basket
//
// Generates synthetic product baskets over an Amazon-style category DAG and
// mines purchase patterns: electronics bought in succession, book series,
// and what people buy after a digital camera. Uses D-CAND, which excels on
// these selective constraints, and cross-checks one constraint against
// D-SEQ.
#include <algorithm>
#include <cstdio>
#include <string>

#include "src/datagen/market_baskets.h"
#include "src/dist/dcand_miner.h"
#include "src/dist/dseq_miner.h"
#include "src/fst/compiler.h"

namespace {

dseq::DistributedResult Mine(const dseq::SequenceDatabase& db,
                             const std::string& pattern, uint64_t sigma) {
  using namespace dseq;
  Fst fst = CompileFst(pattern, db.dict);
  DCandOptions options;
  options.sigma = sigma;
  options.num_map_workers = 4;
  options.num_reduce_workers = 4;
  return MineDCand(db.sequences, fst, db.dict, options);
}

void Show(const dseq::SequenceDatabase& db, const char* name,
          const dseq::DistributedResult& result, size_t show) {
  dseq::MiningResult top = result.patterns;
  std::sort(top.begin(), top.end(),
            [](const dseq::PatternCount& a, const dseq::PatternCount& b) {
              return a.frequency > b.frequency;
            });
  std::printf("%s: %zu patterns, %.0f KB shuffled; top %zu:\n", name,
              top.size(), result.metrics.shuffle_bytes / 1024.0,
              std::min(show, top.size()));
  for (size_t i = 0; i < top.size() && i < show; ++i) {
    std::printf("    %-50s %llu\n", db.FormatSequence(top[i].pattern).c_str(),
                static_cast<unsigned long long>(top[i].frequency));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace dseq;
  MarketBasketOptions options;
  options.num_customers = 30'000;
  std::printf("Generating synthetic market baskets...\n");
  SequenceDatabase db = GenerateMarketBaskets(options);
  std::printf("  %zu customers, %zu catalog items (DAG hierarchy: %s)\n\n",
              db.size(), db.dict.size(),
              db.dict.IsForest() ? "no" : "yes");

  // A1: up to 5 electronics purchases with gaps of at most 2.
  DistributedResult a1 =
      Mine(db, ".*(Electr^)[.{0,2}(Electr^)]{1,4}.*", 250);
  Show(db, "A1  electronics sequences", a1, 6);

  // A2: sequences of books (exact products, no generalization).
  DistributedResult a2 = Mine(db, ".*(Book)[.{0,2}(Book)]{1,4}.*", 5);
  Show(db, "A2  book sequences", a2, 6);

  // A3: generalized items bought after a digital camera.
  DistributedResult a3 =
      Mine(db, ".*DigitalCamera[.{0,3}(.^)]{1,4}.*", 100);
  Show(db, "A3  after a digital camera", a3, 6);

  // A4: musical instrument purchases.
  DistributedResult a4 =
      Mine(db, ".*(MusicInstr^)[.{0,2}(MusicInstr^)]{1,4}.*", 50);
  Show(db, "A4  musical instruments", a4, 6);

  // Cross-check: D-SEQ and D-CAND agree on A2.
  Fst fst = CompileFst(".*(Book)[.{0,2}(Book)]{1,4}.*", db.dict);
  DSeqOptions dseq_options;
  dseq_options.sigma = 5;
  dseq_options.num_map_workers = 4;
  dseq_options.num_reduce_workers = 4;
  DistributedResult check = MineDSeq(db.sequences, fst, db.dict, dseq_options);
  std::printf("Cross-check D-SEQ == D-CAND on A2: %s\n",
              check.patterns == a2.patterns ? "yes" : "NO (bug!)");
  return check.patterns == a2.patterns ? 0 : 1;
}
