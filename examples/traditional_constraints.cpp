// Traditional constraints example (paper Tab. III, T1–T3).
//
//   build/examples/traditional_constraints
//
// Shows that the flexible miners subsume the constraint classes of the
// specialized scalable systems — PrefixSpan/MLlib (T1: max length),
// MG-FSM (T2: max gap + max length), LASH (T3: + hierarchies) — and
// verifies the general and specialized implementations produce identical
// results on the same data.
#include <cstdio>
#include <string>

#include "src/baselines/gap_miner.h"
#include "src/baselines/prefix_span.h"
#include "src/datagen/web_text.h"
#include "src/dist/dseq_miner.h"
#include "src/fst/compiler.h"

int main() {
  using namespace dseq;
  WebTextOptions options;
  options.num_sentences = 10'000;
  options.vocabulary_size = 2'000;
  options.mean_sentence_length = 12;
  std::printf("Generating flat web text...\n");
  SequenceDatabase db = GenerateWebText(options);
  std::printf("  %zu sentences, vocabulary %zu\n\n", db.size(),
              db.dict.size());

  int failures = 0;

  // T2(σ=100, γ=1, λ=4): MG-FSM's constraint class, expressed both as a
  // pattern expression (mined by D-SEQ) and natively (specialized miner).
  {
    const std::string pattern = ".*(.)[.{0,1}(.)]{1,3}.*";
    Fst fst = CompileFst(pattern, db.dict);
    DSeqOptions general;
    general.sigma = 100;
    general.num_map_workers = 4;
    general.num_reduce_workers = 4;
    DistributedResult flexible = MineDSeq(db.sequences, fst, db.dict, general);

    GapMinerOptions specialized;
    specialized.sigma = 100;
    specialized.gamma = 1;
    specialized.lambda = 4;
    specialized.use_hierarchy = false;
    specialized.num_map_workers = 4;
    specialized.num_reduce_workers = 4;
    DistributedResult native =
        MineGapConstrained(db.sequences, db.dict, specialized);

    bool equal = flexible.patterns == native.patterns;
    std::printf("T2(100,1,4)  D-SEQ: %zu patterns in %.2fs | MG-FSM-style: "
                "%zu patterns in %.2fs | equal: %s\n",
                flexible.patterns.size(), flexible.metrics.total_seconds(),
                native.patterns.size(), native.metrics.total_seconds(),
                equal ? "yes" : "NO (bug!)");
    failures += equal ? 0 : 1;
  }

  // T1(σ=200, λ=3): the MLlib/PrefixSpan setting (arbitrary gaps).
  {
    const std::string pattern = ".*(.)[.*(.)]{0,2}.*";
    Fst fst = CompileFst(pattern, db.dict);
    DSeqOptions general;
    general.sigma = 200;
    general.num_map_workers = 4;
    general.num_reduce_workers = 4;
    DistributedResult flexible = MineDSeq(db.sequences, fst, db.dict, general);

    PrefixSpanOptions specialized;
    specialized.sigma = 200;
    specialized.lambda = 3;
    specialized.num_map_workers = 4;
    specialized.num_reduce_workers = 4;
    DistributedResult native =
        MinePrefixSpan(db.sequences, db.dict, specialized);

    bool equal = flexible.patterns == native.patterns;
    std::printf("T1(200,3)    D-SEQ: %zu patterns in %.2fs | PrefixSpan:     "
                "%zu patterns in %.2fs | equal: %s\n",
                flexible.patterns.size(), flexible.metrics.total_seconds(),
                native.patterns.size(), native.metrics.total_seconds(),
                equal ? "yes" : "NO (bug!)");
    failures += equal ? 0 : 1;
  }

  std::printf("\n%s\n", failures == 0 ? "All cross-checks passed."
                                      : "CROSS-CHECK FAILURES!");
  return failures;
}
