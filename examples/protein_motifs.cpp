// Protein motif mining (paper Sec. I: "mining of protein sequences that
// exhibit a given motif", citing the SMA line of work).
//
//   build/examples/protein_motifs
//
// Generates synthetic amino-acid sequences with a small hierarchy (residue →
// physico-chemical class) and injected N-glycosylation-like motifs, then
// mines two constraints:
//   * the classic sequon N-x-[S|T] ("N, any residue but not P, then S or T"),
//   * generalized motif contexts, where flanking residues may generalize to
//     their class (hydrophobic / polar / charged).
// Flexible constraints express both directly; gap-based miners cannot.
#include <algorithm>
#include <cstdio>
#include <random>
#include <string>

#include "src/core/desq_dfs.h"
#include "src/dict/sequence.h"
#include "src/dist/dcand_miner.h"
#include "src/fst/compiler.h"

namespace {

dseq::SequenceDatabase GenerateProteins(size_t num_proteins, uint64_t seed) {
  using namespace dseq;
  DictionaryBuilder builder;
  // Physico-chemical classes and the 20 amino acids (one-letter codes).
  ItemId hydrophobic = builder.AddItem("HYDROPHOBIC");
  ItemId polar = builder.AddItem("POLAR");
  ItemId charged = builder.AddItem("CHARGED");
  struct Residue {
    const char* code;
    ItemId cls;
  };
  const Residue residues[] = {
      {"A", hydrophobic}, {"V", hydrophobic}, {"L", hydrophobic},
      {"I", hydrophobic}, {"M", hydrophobic}, {"F", hydrophobic},
      {"W", hydrophobic}, {"P", hydrophobic}, {"G", hydrophobic},
      {"S", polar},       {"T", polar},       {"C", polar},
      {"Y", polar},       {"N", polar},       {"Q", polar},
      {"D", charged},     {"E", charged},     {"K", charged},
      {"R", charged},     {"H", charged},
  };
  std::vector<ItemId> acids;
  for (const Residue& r : residues) {
    ItemId a = builder.AddItem(r.code);
    builder.AddParent(a, r.cls);
    acids.push_back(a);
  }
  ItemId n = builder.GetOrAddItem("N");
  ItemId s = builder.GetOrAddItem("S");
  ItemId t = builder.GetOrAddItem("T");

  SequenceDatabase db;
  db.dict = builder.Build();
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (size_t p = 0; p < num_proteins; ++p) {
    size_t len = 30 + rng() % 120;
    Sequence protein;
    protein.reserve(len + 3);
    for (size_t i = 0; i < len; ++i) {
      // Inject a sequon N-x-S/T with ~4% probability per position.
      if (unit(rng) < 0.04 && i + 3 <= len) {
        protein.push_back(n);
        protein.push_back(acids[rng() % acids.size()]);
        protein.push_back(unit(rng) < 0.5 ? s : t);
        i += 2;
      } else {
        protein.push_back(acids[rng() % acids.size()]);
      }
    }
    db.sequences.push_back(std::move(protein));
  }
  db.Recode();
  return db;
}

void Show(const dseq::SequenceDatabase& db, const char* name,
          const dseq::MiningResult& result, size_t show) {
  dseq::MiningResult top = result;
  std::sort(top.begin(), top.end(),
            [](const dseq::PatternCount& a, const dseq::PatternCount& b) {
              return a.frequency > b.frequency;
            });
  std::printf("%s: %zu motifs; top %zu:\n", name, top.size(),
              std::min(show, top.size()));
  for (size_t i = 0; i < top.size() && i < show; ++i) {
    std::printf("    %-24s %llu\n", db.FormatSequence(top[i].pattern).c_str(),
                static_cast<unsigned long long>(top[i].frequency));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace dseq;
  std::printf("Generating synthetic proteome...\n");
  SequenceDatabase db = GenerateProteins(5'000, 11);
  std::printf("  %zu proteins, mean length %.0f\n\n", db.size(),
              db.MeanSequenceLength());

  // Sequon instances: N, then any residue, then S or T — all captured.
  {
    Fst fst = CompileFst(".* (N) (.) [(S=)|(T=)] .*", db.dict);
    DCandOptions options;
    options.sigma = 50;
    options.num_map_workers = 4;
    options.num_reduce_workers = 4;
    DistributedResult result =
        MineDCand(db.sequences, fst, db.dict, options);
    Show(db, "Sequon N-x-[S|T] instances", result.patterns, 8);
  }

  // Motif with generalized context: what classes of residues surround the
  // sequon? (.^) may output the residue or its physico-chemical class.
  {
    Fst fst = CompileFst(".* (.^) N . [S|T] (.^) .*", db.dict);
    DesqDfsOptions options;
    options.sigma = 150;
    MiningResult result = MineDesqDfs(db.sequences, fst, db.dict, options);
    Show(db, "Generalized sequon context", result, 8);
  }
  return 0;
}
