// Quickstart: mine the paper's running example (Fig. 2) end to end.
//
//   build/examples/quickstart
//
// Builds the five-sequence database over the a1/a2/A/b/c/d/e hierarchy,
// compiles the pattern expression πex = .*(A)[(.^).*]*(b).*, and mines
// frequent subsequences with σ = 2 using the sequential DESQ-DFS miner and
// the distributed D-SEQ and D-CAND miners. All three must agree:
//   a1 b   : 3
//   a1 a1 b: 2
//   a1 A b : 2
#include <cstdio>

#include "src/core/desq_dfs.h"
#include "src/dict/sequence.h"
#include "src/dist/dcand_miner.h"
#include "src/dist/dseq_miner.h"
#include "src/fst/compiler.h"

int main() {
  using namespace dseq;

  // 1. Build (or load) a sequence database. MakeRunningExample constructs
  //    the paper's Fig. 2 database and recodes items by frequency.
  SequenceDatabase db = MakeRunningExample();
  std::printf("Database: %zu sequences, %zu items in dictionary\n\n",
              db.size(), db.dict.size());

  // 2. Express the subsequence constraint as a pattern expression and
  //    compile it into a finite state transducer. '^' is the paper's ↑.
  const std::string pattern = ".*(A)[(.^).*]*(b).*";
  Fst fst = CompileFst(pattern, db.dict);
  std::printf("Pattern %s compiled to FST with %zu states, %zu transitions\n\n",
              pattern.c_str(), fst.num_states(), fst.num_transitions());

  // 3a. Mine sequentially with DESQ-DFS.
  DesqDfsOptions seq_options;
  seq_options.sigma = 2;
  MiningResult sequential = MineDesqDfs(db.sequences, fst, db.dict, seq_options);

  std::printf("DESQ-DFS (sequential), sigma=2:\n");
  for (const PatternCount& pc : sequential) {
    std::printf("  %-10s : %llu\n", db.FormatSequence(pc.pattern).c_str(),
                static_cast<unsigned long long>(pc.frequency));
  }

  // 3b. Mine distributed with D-SEQ (sequence representation).
  DSeqOptions dseq_options;
  dseq_options.sigma = 2;
  dseq_options.num_map_workers = 2;
  dseq_options.num_reduce_workers = 2;
  DistributedResult dseq = MineDSeq(db.sequences, fst, db.dict, dseq_options);
  std::printf("\nD-SEQ: %zu patterns, %llu shuffle bytes\n",
              dseq.patterns.size(),
              static_cast<unsigned long long>(dseq.metrics.shuffle_bytes));

  // 3c. Mine distributed with D-CAND (candidate representation).
  DCandOptions dcand_options;
  dcand_options.sigma = 2;
  dcand_options.num_map_workers = 2;
  dcand_options.num_reduce_workers = 2;
  DistributedResult dcand =
      MineDCand(db.sequences, fst, db.dict, dcand_options);
  std::printf("D-CAND: %zu patterns, %llu shuffle bytes\n",
              dcand.patterns.size(),
              static_cast<unsigned long long>(dcand.metrics.shuffle_bytes));

  bool agree =
      dseq.patterns == sequential && dcand.patterns == sequential;
  std::printf("\nAll algorithms agree: %s\n", agree ? "yes" : "NO (bug!)");
  return agree ? 0 : 1;
}
