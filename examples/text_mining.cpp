// Text mining example (paper Sec. I and Tab. III, constraints N1–N3).
//
//   build/examples/text_mining
//
// Generates a synthetic annotated corpus with the NYT hierarchy shape
// (word → lemma → part-of-speech, entity → type → ENTITY) and mines
// relational phrases between entities, typed relational phrases, and
// copular relations — the flagship use case that inflexible FSM algorithms
// cannot express (no way to restrict output to relational phrases, no
// context constraints).
#include <cstdio>
#include <string>
#include <vector>

#include "src/datagen/text_corpus.h"
#include "src/dist/dseq_miner.h"
#include "src/fst/compiler.h"

namespace {

void MineAndShow(const dseq::SequenceDatabase& db, const std::string& name,
                 const std::string& pattern, uint64_t sigma, size_t show) {
  using namespace dseq;
  Fst fst = CompileFst(pattern, db.dict);
  DSeqOptions options;
  options.sigma = sigma;
  options.num_map_workers = 4;
  options.num_reduce_workers = 4;
  DistributedResult result = MineDSeq(db.sequences, fst, db.dict, options);

  // Order by frequency for display.
  MiningResult top = result.patterns;
  std::sort(top.begin(), top.end(),
            [](const PatternCount& a, const PatternCount& b) {
              return a.frequency > b.frequency;
            });
  std::printf("%s: %s (sigma=%llu)\n", name.c_str(), pattern.c_str(),
              static_cast<unsigned long long>(sigma));
  std::printf("  %zu frequent sequences; top %zu:\n", top.size(),
              std::min(show, top.size()));
  for (size_t i = 0; i < top.size() && i < show; ++i) {
    std::printf("    %-40s %llu\n",
                db.FormatSequence(top[i].pattern).c_str(),
                static_cast<unsigned long long>(top[i].frequency));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace dseq;
  TextCorpusOptions corpus_options;
  corpus_options.num_sentences = 20'000;
  corpus_options.lemmas_per_pos = 500;
  corpus_options.num_entities = 500;
  std::printf("Generating synthetic annotated corpus...\n");
  SequenceDatabase db = GenerateTextCorpus(corpus_options);
  std::printf("  %zu sentences, %zu dictionary items\n\n", db.size(),
              db.dict.size());

  // N1: relational phrases between entities ("lives in", "is survived by").
  MineAndShow(db, "N1  relational phrases",
              ".* ENTITY (VERB+ NOUN+? PREP?) ENTITY .*", 25, 8);

  // N2: typed relational phrases (PER was born in LOC).
  MineAndShow(db, "N2  typed relational phrases",
              ".* (ENTITY^ VERB+ NOUN+? PREP? ENTITY^) .*", 25, 8);

  // N3: copular relations for an entity (PER be professor).
  MineAndShow(db, "N3  copular relations",
              ".* (ENTITY^ be^=) DET? (ADV? ADJ? NOUN) .*", 25, 8);

  // N4: generalized 3-grams before a noun.
  MineAndShow(db, "N4  generalized 3-grams before nouns",
              ".* (.^){3} NOUN .*", 500, 8);
  return 0;
}
