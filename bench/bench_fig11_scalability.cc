// Reproduces paper Fig. 11: data, strong, and weak scalability of D-SEQ and
// D-CAND for T3(σ,1,5) on AMZN-F.
//
//  11a: 25/50/75/100% of the data on full workers, σ scaled with the data
//  11b: 2/4/8 workers on 100% of the data
//  11c: workers and data scaled together
//
// Expected shape: time grows ~linearly with data (11a), shrinks ~linearly
// with workers (11b), and stays roughly constant in the weak-scaling sweep
// (11c), modulo constant setup overhead.
#include <cstdio>

#include "bench/common/bench_util.h"

namespace {

using namespace dseq;
using namespace dseq::bench;

SequenceDatabase Sample(const SequenceDatabase& db, double fraction) {
  SequenceDatabase out;
  out.dict = db.dict;  // keep the full dictionary and frequencies
  size_t n = static_cast<size_t>(db.size() * fraction);
  out.sequences.assign(db.sequences.begin(), db.sequences.begin() + n);
  return out;
}

void RunPoint(const std::string& label, const SequenceDatabase& db,
              uint64_t sigma, int workers) {
  Fst fst = CompileFst(T3Pattern(1, 5), db.dict);

  DSeqOptions dseq_options;
  dseq_options.sigma = sigma;
  dseq_options.num_map_workers = workers;
  dseq_options.num_reduce_workers = workers;
  dseq_options.execution = BenchExecution();
  DistributedResult dseq = MineDSeq(db.sequences, fst, db.dict, dseq_options);

  DCandOptions dcand_options;
  dcand_options.sigma = sigma;
  dcand_options.num_map_workers = workers;
  dcand_options.num_reduce_workers = workers;
  dcand_options.execution = BenchExecution();
  DistributedResult dcand =
      MineDCand(db.sequences, fst, db.dict, dcand_options);

  if (ResultChecksum(dseq.patterns) != ResultChecksum(dcand.patterns)) {
    std::fprintf(stderr, "WARNING: D-SEQ and D-CAND disagree at %s\n",
                 label.c_str());
  }
  auto fmt = [](const DistributedResult& r) {
    return FormatSeconds(r.metrics.map_seconds) + "+" +
           FormatSeconds(r.metrics.reduce_seconds) + "=" +
           FormatSeconds(r.metrics.total_seconds());
  };
  PrintRow({label, fmt(dseq), fmt(dcand),
            std::to_string(dseq.patterns.size())});
}

}  // namespace

int main() {
  const SequenceDatabase& full = AmznF();
  double scale = GetConfig().scale;
  int max_workers = GetConfig().workers;
  auto sigma_for = [&](double fraction) {
    return std::max<uint64_t>(
        2, static_cast<uint64_t>(100 * scale * fraction));
  };

  PrintHeader("Fig. 11a: data scalability (T3 on AMZN-F', full workers)",
              {"% of data", "D-SEQ map+mine", "D-CAND map+mine",
               "# frequent"});
  for (double f : {0.25, 0.5, 0.75, 1.0}) {
    SequenceDatabase db = Sample(full, f);
    RunPoint(std::to_string(static_cast<int>(f * 100)) + "%", db,
             sigma_for(f), max_workers);
  }

  PrintHeader("Fig. 11b: strong scalability (100% of data)",
              {"workers", "D-SEQ map+mine", "D-CAND map+mine", "# frequent"});
  for (int w : {2, 4, 8}) {
    if (w > max_workers) break;
    RunPoint(std::to_string(w), full, sigma_for(1.0), w);
  }

  PrintHeader("Fig. 11c: weak scalability (workers scaled with data)",
              {"workers(%data)", "D-SEQ map+mine", "D-CAND map+mine",
               "# frequent"});
  for (auto [w, f] : std::initializer_list<std::pair<int, double>>{
           {2, 0.25}, {4, 0.5}, {6, 0.75}, {8, 1.0}}) {
    if (w > max_workers) break;
    SequenceDatabase db = Sample(full, f);
    RunPoint(std::to_string(w) + "(" +
                 std::to_string(static_cast<int>(f * 100)) + "%)",
             db, sigma_for(f), w);
  }
  return 0;
}
