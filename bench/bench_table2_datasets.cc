// Reproduces paper Table II: dataset and hierarchy characteristics.
//
// The datasets are scaled-down synthetic substitutes (DESIGN.md §3); the
// table shape — relative sequence counts, lengths, hierarchy depths, and
// the DAG-vs-forest distinction between AMZN and AMZN-F — mirrors the paper.
#include <cstdio>

#include "bench/common/bench_util.h"

int main() {
  using namespace dseq;
  using namespace dseq::bench;

  PrintHeader("Table II: dataset and hierarchy characteristics",
              {"", "NYT'", "AMZN'", "AMZN-F'", "CW50'"});

  const SequenceDatabase* dbs[] = {&Nyt(), &Amzn(), &AmznF(), &Cw50()};

  auto row = [&](const char* label, auto fn) {
    std::vector<std::string> cells = {label};
    for (const SequenceDatabase* db : dbs) cells.push_back(fn(*db));
    PrintRow(cells);
  };

  char buf[64];
  row("Sequences (K)", [&](const SequenceDatabase& db) {
    std::snprintf(buf, sizeof(buf), "%.0f", db.size() / 1e3);
    return std::string(buf);
  });
  row("Total items (M)", [&](const SequenceDatabase& db) {
    std::snprintf(buf, sizeof(buf), "%.2f", db.TotalItems() / 1e6);
    return std::string(buf);
  });
  row("Unique items (K)", [&](const SequenceDatabase& db) {
    size_t used = 0;
    std::vector<bool> seen(db.dict.size() + 1, false);
    for (const Sequence& s : db.sequences) {
      for (ItemId t : s) {
        if (!seen[t]) {
          seen[t] = true;
          ++used;
        }
      }
    }
    std::snprintf(buf, sizeof(buf), "%.1f", used / 1e3);
    return std::string(buf);
  });
  row("Max seq. length", [&](const SequenceDatabase& db) {
    return std::to_string(db.MaxSequenceLength());
  });
  row("Mean seq. length", [&](const SequenceDatabase& db) {
    std::snprintf(buf, sizeof(buf), "%.1f", db.MeanSequenceLength());
    return std::string(buf);
  });
  row("Hierarchy items (K)", [&](const SequenceDatabase& db) {
    std::snprintf(buf, sizeof(buf), "%.1f", db.dict.size() / 1e3);
    return std::string(buf);
  });
  row("Max ancestors", [&](const SequenceDatabase& db) {
    return std::to_string(db.dict.MaxAncestors());
  });
  row("Mean ancestors", [&](const SequenceDatabase& db) {
    std::snprintf(buf, sizeof(buf), "%.1f", db.dict.MeanAncestors());
    return std::string(buf);
  });
  row("Forest hierarchy", [&](const SequenceDatabase& db) {
    return db.dict.IsForest() ? std::string("yes") : std::string("no");
  });

  std::printf(
      "\nPaper Tab. II for reference (full-size datasets): NYT 50M seqs / "
      "mean 22.8, AMZN 21M / 3.9,\nAMZN-F forest variant, CW50 567M / 19.0; "
      "hierarchies: NYT max 3 ancestors, AMZN 282 (DAG), CW50 none.\n");
  return 0;
}
