// Shared infrastructure for the paper-reproduction benchmarks.
//
// Provides lazily generated, cached benchmark datasets (scaled-down
// substitutes for NYT, AMZN, AMZN-F, and CW50 — see DESIGN.md §3), the
// constraint registry of paper Tab. III, and uniform runners for every
// algorithm that catch budget/OOM failures and report the paper's metrics
// (total/map/mine wall time, shuffle size, result checksum).
//
// Environment knobs:
//   DSEQ_BENCH_SCALE    scales dataset sizes (default 1.0)
//   DSEQ_BENCH_WORKERS  map/reduce workers per run   (default min(8, cores))
//   DSEQ_BENCH_REPEATS  repetitions per measurement  (default 1)
#ifndef DSEQ_BENCH_COMMON_BENCH_UTIL_H_
#define DSEQ_BENCH_COMMON_BENCH_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/baselines/gap_miner.h"
#include "src/baselines/prefix_span.h"
#include "src/dict/sequence.h"
#include "src/dist/dcand_miner.h"
#include "src/dist/dseq_miner.h"
#include "src/dist/naive.h"
#include "src/fst/compiler.h"

namespace dseq {
namespace bench {

/// Benchmark configuration from the environment.
struct Config {
  double scale = 1.0;
  int workers = 8;
  int repeats = 1;
};
const Config& GetConfig();

/// Execution mode used by all bench runners: real threads when the machine
/// has enough cores, otherwise the engine's cluster simulation (per-worker
/// critical-path timing). Override with DSEQ_BENCH_EXECUTION=threads|simulated.
Execution BenchExecution();

/// Cached benchmark datasets (generated once per process).
const SequenceDatabase& Nyt();
const SequenceDatabase& Amzn();
const SequenceDatabase& AmznF();
const SequenceDatabase& Cw50();

/// A named subsequence constraint instance.
struct Constraint {
  std::string name;     // e.g. "N1(5)"
  std::string pattern;  // pattern expression
  uint64_t sigma = 1;
};

/// Paper Tab. III constraints with σ scaled to the benchmark datasets.
/// `index` is 1-based (N1..N5, A1..A4).
Constraint NytConstraint(int index);
Constraint AmznConstraint(int index);

/// Traditional constraint pattern expressions (with the enclosing .* that
/// DESQ's whole-sequence match semantics requires; Tab. III omits them).
std::string T1Pattern(uint32_t lambda);
std::string T2Pattern(uint32_t gamma, uint32_t lambda);
std::string T3Pattern(uint32_t gamma, uint32_t lambda);

/// One measured algorithm execution.
struct RunRow {
  std::string algo;
  double total_s = 0.0;
  double map_s = 0.0;
  double mine_s = 0.0;
  uint64_t shuffle_bytes = 0;
  size_t num_patterns = 0;
  uint64_t checksum = 0;  // order-independent hash of (pattern, frequency)
  bool oom = false;
};

/// Order-independent checksum for cross-validating algorithm agreement.
uint64_t ResultChecksum(const MiningResult& result);

/// Uniform runners. All catch ShuffleOverflowError / MiningBudgetError and
/// return a row with oom = true. Each runs GetConfig().repeats times and
/// reports the mean time of successful runs.
RunRow RunNaive(const SequenceDatabase& db, const Fst& fst, uint64_t sigma,
                bool semi_naive, uint64_t shuffle_budget = 0);
RunRow RunDSeq(const SequenceDatabase& db, const Fst& fst,
               const DSeqOptions& base_options);
RunRow RunDCand(const SequenceDatabase& db, const Fst& fst,
                const DCandOptions& base_options);
RunRow RunDesqDfsSequential(const SequenceDatabase& db, const Fst& fst,
                            uint64_t sigma, uint64_t max_grid_edges = 0);
RunRow RunGapMiner(const SequenceDatabase& db, const GapMinerOptions& options);
RunRow RunPrefixSpan(const SequenceDatabase& db,
                     const PrefixSpanOptions& options);

/// Simple fixed-width table printing.
void PrintHeader(const std::string& title,
                 const std::vector<std::string>& columns);
void PrintRow(const std::vector<std::string>& cells);
std::string FormatSeconds(double seconds);
std::string FormatBytes(uint64_t bytes);
std::string FormatRun(const RunRow& row);  // "12.3s" or "n/a (OOM)"

/// Warns on stderr and returns false if checksums of non-OOM rows disagree.
bool CheckAgreement(const std::vector<RunRow>& rows, const std::string& where);

}  // namespace bench
}  // namespace dseq

#endif  // DSEQ_BENCH_COMMON_BENCH_UTIL_H_
