#include "bench/common/bench_util.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "src/core/desq_dfs.h"
#include "src/datagen/market_baskets.h"
#include "src/datagen/text_corpus.h"
#include "src/datagen/web_text.h"
#include "src/obs/trace.h"

namespace dseq {
namespace bench {

namespace {

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atof(v);
}

uint64_t ScaledSigma(uint64_t sigma) {
  double scaled = sigma * GetConfig().scale;
  return std::max<uint64_t>(2, static_cast<uint64_t>(scaled));
}

template <typename Fn>
RunRow Measure(const std::string& algo, const Fn& fn) {
  RunRow row;
  row.algo = algo;
  int repeats = std::max(1, GetConfig().repeats);
  for (int r = 0; r < repeats; ++r) {
    try {
      DistributedResult result = fn();
      row.total_s += result.metrics.total_seconds() / repeats;
      row.map_s += result.metrics.map_seconds / repeats;
      row.mine_s += result.metrics.reduce_seconds / repeats;
      row.shuffle_bytes = result.metrics.shuffle_bytes;
      row.num_patterns = result.patterns.size();
      row.checksum = ResultChecksum(result.patterns);
    } catch (const ShuffleOverflowError&) {
      row.oom = true;
      return row;
    } catch (const MiningBudgetError&) {
      row.oom = true;
      return row;
    }
  }
  return row;
}

}  // namespace

Execution BenchExecution() {
  static Execution execution = [] {
    const char* env = std::getenv("DSEQ_BENCH_EXECUTION");
    if (env != nullptr) {
      return std::string(env) == "threads" ? Execution::kThreads
                                           : Execution::kSimulated;
    }
    int hw = static_cast<int>(std::thread::hardware_concurrency());
    return hw >= GetConfig().workers ? Execution::kThreads
                                     : Execution::kSimulated;
  }();
  return execution;
}

const Config& GetConfig() {
  static Config config = [] {
    Config c;
    c.scale = EnvDouble("DSEQ_BENCH_SCALE", 1.0);
    // The paper runs 8 executors; default to 8 workers. On machines with
    // fewer cores the engine's cluster simulation reports critical-path
    // times (see Execution::kSimulated), so the scaling experiments remain
    // meaningful.
    c.workers = static_cast<int>(EnvDouble("DSEQ_BENCH_WORKERS", 8));
    c.repeats = static_cast<int>(EnvDouble("DSEQ_BENCH_REPEATS", 1));
    return c;
  }();
  return config;
}

const SequenceDatabase& Nyt() {
  static SequenceDatabase db = [] {
    TextCorpusOptions options;
    options.num_sentences =
        static_cast<size_t>(30'000 * GetConfig().scale);
    options.lemmas_per_pos = 1'000;
    options.num_entities = 2'000;
    return GenerateTextCorpus(options);
  }();
  return db;
}

const SequenceDatabase& Amzn() {
  static SequenceDatabase db = [] {
    MarketBasketOptions options;
    options.num_customers =
        static_cast<size_t>(30'000 * GetConfig().scale);
    return GenerateMarketBaskets(options);
  }();
  return db;
}

const SequenceDatabase& AmznF() {
  static SequenceDatabase db = ToForest(Amzn());
  return db;
}

const SequenceDatabase& Cw50() {
  static SequenceDatabase db = [] {
    WebTextOptions options;
    options.num_sentences =
        static_cast<size_t>(60'000 * GetConfig().scale);
    options.vocabulary_size = 30'000;
    return GenerateWebText(options);
  }();
  return db;
}

Constraint NytConstraint(int index) {
  switch (index) {
    case 1:
      return {"N1(" + std::to_string(ScaledSigma(5)) + ")",
              ".* ENTITY (VERB+ NOUN+? PREP?) ENTITY .*", ScaledSigma(5)};
    case 2:
      return {"N2(" + std::to_string(ScaledSigma(20)) + ")",
              ".* (ENTITY^ VERB+ NOUN+? PREP? ENTITY^) .*", ScaledSigma(20)};
    case 3:
      return {"N3(" + std::to_string(ScaledSigma(5)) + ")",
              ".* (ENTITY^ be^=) DET? (ADV? ADJ? NOUN) .*", ScaledSigma(5)};
    case 4:
      return {"N4(" + std::to_string(ScaledSigma(500)) + ")",
              ".* (.^){3} NOUN .*", ScaledSigma(500)};
    case 5:
      return {"N5(" + std::to_string(ScaledSigma(50)) + ")",
              ".* ([.^. .]|[. .^.]|[. . .^]) .*", ScaledSigma(50)};
  }
  std::abort();
}

Constraint AmznConstraint(int index) {
  switch (index) {
    case 1:
      return {"A1(" + std::to_string(ScaledSigma(250)) + ")",
              ".*(Electr^)[.{0,2}(Electr^)]{1,4}.*", ScaledSigma(250)};
    case 2:
      return {"A2(" + std::to_string(ScaledSigma(5)) + ")",
              ".*(Book)[.{0,2}(Book)]{1,4}.*", ScaledSigma(5)};
    case 3:
      return {"A3(" + std::to_string(ScaledSigma(100)) + ")",
              ".*DigitalCamera[.{0,3}(.^)]{1,4}.*", ScaledSigma(100)};
    case 4:
      return {"A4(" + std::to_string(ScaledSigma(50)) + ")",
              ".*(MusicInstr^)[.{0,2}(MusicInstr^)]{1,4}.*", ScaledSigma(50)};
  }
  std::abort();
}

std::string T1Pattern(uint32_t lambda) {
  return ".*(.)[.*(.)]{0," + std::to_string(lambda - 1) + "}.*";
}
std::string T2Pattern(uint32_t gamma, uint32_t lambda) {
  return ".*(.)[.{0," + std::to_string(gamma) + "}(.)]{1," +
         std::to_string(lambda - 1) + "}.*";
}
std::string T3Pattern(uint32_t gamma, uint32_t lambda) {
  return ".*(.^)[.{0," + std::to_string(gamma) + "}(.^)]{1," +
         std::to_string(lambda - 1) + "}.*";
}

uint64_t ResultChecksum(const MiningResult& result) {
  uint64_t checksum = 0;
  for (const PatternCount& pc : result) {
    uint64_t h = 1469598103934665603ULL;
    for (ItemId w : pc.pattern) h = (h ^ w) * 1099511628211ULL;
    h = (h ^ pc.frequency) * 1099511628211ULL;
    checksum += h;  // order-independent
  }
  return checksum;
}

RunRow RunNaive(const SequenceDatabase& db, const Fst& fst, uint64_t sigma,
                bool semi_naive, uint64_t shuffle_budget) {
  NaiveOptions options;
  options.execution = BenchExecution();
  options.sigma = sigma;
  options.semi_naive = semi_naive;
  options.num_map_workers = GetConfig().workers;
  options.num_reduce_workers = GetConfig().workers;
  options.shuffle_budget_bytes = shuffle_budget;
  // Fail fast on candidate explosions (a single pathological sequence can
  // produce millions of candidates — certain OOM at cluster scale).
  options.candidates_per_sequence_budget = 2'000'000;
  return Measure(semi_naive ? "SemiNaive" : "Naive", [&] {
    return MineNaive(db.sequences, fst, db.dict, options);
  });
}

RunRow RunDSeq(const SequenceDatabase& db, const Fst& fst,
               const DSeqOptions& base_options) {
  DSeqOptions options = base_options;
  options.execution = BenchExecution();
  options.num_map_workers = GetConfig().workers;
  options.num_reduce_workers = GetConfig().workers;
  return Measure("D-SEQ", [&] {
    return MineDSeq(db.sequences, fst, db.dict, options);
  });
}

RunRow RunDCand(const SequenceDatabase& db, const Fst& fst,
                const DCandOptions& base_options) {
  DCandOptions options = base_options;
  options.execution = BenchExecution();
  options.num_map_workers = GetConfig().workers;
  options.num_reduce_workers = GetConfig().workers;
  return Measure("D-CAND", [&] {
    return MineDCand(db.sequences, fst, db.dict, options);
  });
}

RunRow RunDesqDfsSequential(const SequenceDatabase& db, const Fst& fst,
                            uint64_t sigma, uint64_t max_grid_edges) {
  return Measure("DESQ-DFS", [&] {
    DesqDfsOptions options;
    options.sigma = sigma;
    options.max_total_grid_edges = max_grid_edges;
    auto start = obs::Now();
    MiningResult patterns = MineDesqDfs(db.sequences, fst, db.dict, options);
    DistributedResult result;
    result.patterns = std::move(patterns);
    result.metrics.map_seconds = obs::SecondsSince(start);
    return result;
  });
}

RunRow RunGapMiner(const SequenceDatabase& db,
                   const GapMinerOptions& base_options) {
  GapMinerOptions options = base_options;
  options.execution = BenchExecution();
  options.num_map_workers = GetConfig().workers;
  options.num_reduce_workers = GetConfig().workers;
  return Measure(options.use_hierarchy ? "LASH" : "MG-FSM", [&] {
    return MineGapConstrained(db.sequences, db.dict, options);
  });
}

RunRow RunPrefixSpan(const SequenceDatabase& db,
                     const PrefixSpanOptions& base_options) {
  PrefixSpanOptions options = base_options;
  options.execution = BenchExecution();
  options.num_map_workers = GetConfig().workers;
  options.num_reduce_workers = GetConfig().workers;
  return Measure("MLlib-PS", [&] {
    return MinePrefixSpan(db.sequences, db.dict, options);
  });
}

namespace {
constexpr int kFirstColumnWidth = 26;
constexpr int kColumnWidth = 18;
}  // namespace

void PrintHeader(const std::string& title,
                 const std::vector<std::string>& columns) {
  std::printf("\n=== %s ===\n", title.c_str());
  PrintRow(columns);
  size_t width = kFirstColumnWidth;
  if (columns.size() > 1) width += (columns.size() - 1) * kColumnWidth;
  for (size_t i = 0; i < width; ++i) std::printf("-");
  std::printf("\n");
}

void PrintRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    std::printf("%-*s", i == 0 ? kFirstColumnWidth : kColumnWidth,
                cells[i].c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

std::string FormatSeconds(double seconds) {
  char buf[32];
  if (seconds < 10) {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fs", seconds);
  }
  return buf;
}

std::string FormatBytes(uint64_t bytes) {
  char buf[32];
  if (bytes >= 100ULL * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fGB", bytes / (1024.0 * 1024 * 1024));
  } else if (bytes >= 100ULL * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fMB", bytes / (1024.0 * 1024));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fKB", bytes / 1024.0);
  }
  return buf;
}

std::string FormatRun(const RunRow& row) {
  return row.oom ? "n/a (OOM)" : FormatSeconds(row.total_s);
}

bool CheckAgreement(const std::vector<RunRow>& rows,
                    const std::string& where) {
  const RunRow* reference = nullptr;
  bool ok = true;
  for (const RunRow& row : rows) {
    if (row.oom) continue;
    if (reference == nullptr) {
      reference = &row;
    } else if (row.checksum != reference->checksum ||
               row.num_patterns != reference->num_patterns) {
      std::fprintf(stderr,
                   "WARNING [%s]: %s (%zu patterns) disagrees with %s "
                   "(%zu patterns)\n",
                   where.c_str(), row.algo.c_str(), row.num_patterns,
                   reference->algo.c_str(), reference->num_patterns);
      ok = false;
    }
  }
  return ok;
}

}  // namespace bench
}  // namespace dseq
