// Reproduces paper Fig. 10: detailed analysis of algorithm components.
//
//  10a: D-SEQ with/without the position–state grid, input rewriting, and
//       early stopping ("no stop., no rewrites, no grid" -> full D-SEQ)
//  10b: D-CAND with plain tries, minimized NFAs, and NFA aggregation
//
// A "map/mine" split is printed per run — the horizontal line inside the
// paper's bars. Expected shape: each component speeds some constraints up
// drastically and costs little on the rest.
#include <cstdio>

#include "bench/common/bench_util.h"

namespace {

using namespace dseq;
using namespace dseq::bench;

std::string Split(const RunRow& row) {
  if (row.oom) return "n/a (OOM)";
  return FormatSeconds(row.map_s) + "+" + FormatSeconds(row.mine_s);
}

struct NamedConstraint {
  std::string name;
  const SequenceDatabase* db;
  std::string pattern;
  uint64_t sigma;
};

}  // namespace

int main() {
  double scale = GetConfig().scale;
  auto sig = [&](uint64_t s) {
    return std::max<uint64_t>(2, static_cast<uint64_t>(s * scale));
  };

  std::vector<NamedConstraint> dseq_cases = {
      {AmznConstraint(1).name + " AMZN'", &Amzn(), AmznConstraint(1).pattern,
       AmznConstraint(1).sigma},
      {NytConstraint(5).name + " NYT'", &Nyt(), NytConstraint(5).pattern,
       NytConstraint(5).sigma},
      {"T3(" + std::to_string(sig(100)) + ",1,6) AMZN-F'", &AmznF(),
       T3Pattern(1, 6), sig(100)},
      {"T3(" + std::to_string(sig(5000)) + ",8,5) AMZN-F'", &AmznF(),
       T3Pattern(8, 5), sig(5000)},
  };

  PrintHeader(
      "Fig. 10a: D-SEQ components (map+mine time)",
      {"constraint", "no grid/rw/st", "no rw/st", "no stop", "D-SEQ"});
  for (const NamedConstraint& c : dseq_cases) {
    Fst fst = CompileFst(c.pattern, c.db->dict);
    auto run = [&](bool grid, bool rewrite, bool stop) {
      DSeqOptions options;
      options.sigma = c.sigma;
      options.use_grid = grid;
      options.rewrite = rewrite;
      options.early_stop = stop;
      options.nogrid_step_budget = 2'000'000'000;
      return RunDSeq(*c.db, fst, options);
    };
    RunRow none = run(false, false, false);
    RunRow grid_only = run(true, false, false);
    RunRow no_stop = run(true, true, false);
    RunRow full = run(true, true, true);
    CheckAgreement({none, grid_only, no_stop, full}, c.name);
    PrintRow({c.name, Split(none), Split(grid_only), Split(no_stop),
              Split(full)});
  }

  std::vector<NamedConstraint> dcand_cases = {
      {AmznConstraint(1).name + " AMZN'", &Amzn(), AmznConstraint(1).pattern,
       AmznConstraint(1).sigma},
      {NytConstraint(4).name + " NYT'", &Nyt(), NytConstraint(4).pattern,
       NytConstraint(4).sigma},
      {"T3(" + std::to_string(sig(100)) + ",1,6) AMZN-F'", &AmznF(),
       T3Pattern(1, 6), sig(100)},
  };

  PrintHeader("Fig. 10b: D-CAND components (map+mine time)",
              {"constraint", "tries, no agg", "tries", "D-CAND"});
  for (const NamedConstraint& c : dcand_cases) {
    Fst fst = CompileFst(c.pattern, c.db->dict);
    auto run = [&](bool minimize, bool aggregate) {
      DCandOptions options;
      options.sigma = c.sigma;
      options.minimize_nfas = minimize;
      options.aggregate_nfas = aggregate;
      return RunDCand(*c.db, fst, options);
    };
    RunRow tries_noagg = run(false, false);
    RunRow tries = run(false, true);
    RunRow full = run(true, true);
    CheckAgreement({tries_noagg, tries, full}, c.name);
    PrintRow({c.name, Split(tries_noagg), Split(tries), Split(full)});
  }

  std::printf(
      "\nExpected shape (paper Fig. 10): the grid dominates for loose "
      "constraints (many runs); rewrites\nand early stopping help "
      "hierarchy-heavy constraints; NFA aggregation is decisive for N4-style"
      "\nconstraints that produce many identical NFAs.\n");
  return 0;
}
