// Out-of-core execution benchmark: in-memory vs. spilled D-SEQ runs.
//
// For each configuration the harness mines once unbudgeted (everything
// resident) and once with memory_budget_bytes set to a fraction of the
// measured shuffle volume plus a spill directory — the run that used to be
// an OOM hard-fail now degrades into disk-backed sorted runs and external
// merges. Reported: both wall times, the spilled volume (runs, stored
// bytes, merge passes), the throughput ratio, and whether the two runs'
// patterns are byte-identical (they must be — spilling may only move
// bytes, never change results; the binary exits non-zero otherwise).
//
// Usage: bench_spill [--json] [--tiny] [--workers N]
//   --json     machine-readable output (CI archives it as BENCH_spill.json)
//   --tiny     CI-sized databases (fast smoke run)
//   --workers  map/reduce workers per run (default 4)
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common/bench_util.h"
#include "src/datagen/skewed_zipf.h"
#include "src/datagen/text_corpus.h"
#include "src/dist/dseq_miner.h"
#include "src/obs/trace.h"
#include "src/fst/compiler.h"

namespace dseq {
namespace {

struct Config {
  bool json = false;
  bool tiny = false;
  int workers = 4;
};
Config g_config;

struct SpillRow {
  std::string name;
  int workers = 0;
  uint64_t shuffle_bytes = 0;
  uint64_t budget_bytes = 0;
  double in_memory_seconds = 0.0;
  double spilled_seconds = 0.0;
  double slowdown = 0.0;  // spilled / in-memory wall time
  uint64_t spill_files = 0;
  uint64_t spill_bytes = 0;
  uint64_t merge_passes = 0;
  bool identical = false;
};

std::vector<SpillRow> g_rows;
std::string g_spill_dir;

double Now() {
  return std::chrono::duration<double>(obs::Now().time_since_epoch()).count();
}

// Budget denominators: how far below the shuffle volume the budgeted runs
// squeeze (4 = mild spilling, 16 = heavy multi-pass spilling).
void RunCase(const std::string& name, const SequenceDatabase& db,
             const std::string& pattern, uint64_t sigma,
             uint64_t budget_divisor, bool aggregate_sequences = false) {
  Fst fst = CompileFst(pattern, db.dict);

  DSeqOptions options;
  options.sigma = sigma;
  options.num_map_workers = g_config.workers;
  options.num_reduce_workers = g_config.workers;
  options.aggregate_sequences = aggregate_sequences;

  double start = Now();
  DistributedResult in_memory = MineDSeq(db.sequences, fst, db.dict, options);
  double in_memory_seconds = Now() - start;

  SpillRow row;
  row.name = name;
  row.workers = g_config.workers;
  row.shuffle_bytes = in_memory.metrics.shuffle_bytes;
  row.in_memory_seconds = in_memory_seconds;
  row.budget_bytes = in_memory.metrics.shuffle_bytes / budget_divisor;
  if (row.budget_bytes == 0) row.budget_bytes = 64;

  DSeqOptions spill_options = options;
  spill_options.memory_budget_bytes = row.budget_bytes;
  spill_options.spill_dir = g_spill_dir;
  start = Now();
  DistributedResult spilled =
      MineDSeq(db.sequences, fst, db.dict, spill_options);
  row.spilled_seconds = Now() - start;
  row.slowdown = in_memory_seconds > 0 ? row.spilled_seconds / in_memory_seconds
                                       : 0.0;
  row.spill_files = spilled.metrics.spill_files;
  row.spill_bytes = spilled.metrics.spill_bytes_written;
  row.merge_passes = spilled.metrics.spill_merge_passes;
  row.identical = bench::ResultChecksum(spilled.patterns) ==
                      bench::ResultChecksum(in_memory.patterns) &&
                  spilled.patterns == in_memory.patterns;
  g_rows.push_back(row);

  if (!g_config.json) {
    std::printf(
        "%-26s R=%-2d shuffle=%-9llu budget=%-8llu  mem %6.3fs -> spill "
        "%6.3fs (%4.2fx)  %llu runs / %llu B / %llu passes  %s\n",
        row.name.c_str(), row.workers,
        static_cast<unsigned long long>(row.shuffle_bytes),
        static_cast<unsigned long long>(row.budget_bytes),
        row.in_memory_seconds, row.spilled_seconds, row.slowdown,
        static_cast<unsigned long long>(row.spill_files),
        static_cast<unsigned long long>(row.spill_bytes),
        static_cast<unsigned long long>(row.merge_passes),
        row.identical ? "identical" : "MISMATCH");
  }
}

void PrintJson() {
  std::printf("{\n  \"benchmarks\": [\n");
  for (size_t i = 0; i < g_rows.size(); ++i) {
    const SpillRow& r = g_rows[i];
    std::printf(
        "    {\"name\": \"%s\", \"workers\": %d, \"shuffle_bytes\": %llu, "
        "\"budget_bytes\": %llu, \"in_memory_seconds\": %.4f, "
        "\"spilled_seconds\": %.4f, \"slowdown\": %.3f, "
        "\"spill_files\": %llu, \"spill_bytes_written\": %llu, "
        "\"spill_merge_passes\": %llu, \"identical\": %s}%s\n",
        r.name.c_str(), r.workers,
        static_cast<unsigned long long>(r.shuffle_bytes),
        static_cast<unsigned long long>(r.budget_bytes), r.in_memory_seconds,
        r.spilled_seconds, r.slowdown,
        static_cast<unsigned long long>(r.spill_files),
        static_cast<unsigned long long>(r.spill_bytes),
        static_cast<unsigned long long>(r.merge_passes),
        r.identical ? "true" : "false", i + 1 < g_rows.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

}  // namespace
}  // namespace dseq

int main(int argc, char** argv) {
  using namespace dseq;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      g_config.json = true;
    } else if (std::strcmp(argv[i], "--tiny") == 0) {
      g_config.tiny = true;
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      g_config.workers = std::atoi(argv[++i]);
      if (g_config.workers <= 0) g_config.workers = 1;
    } else {
      std::fprintf(stderr,
                   "usage: bench_spill [--json] [--tiny] [--workers N]\n");
      return 2;
    }
  }

  char templ[] = "/tmp/dseq_bench_spill_XXXXXX";
  char* dir = mkdtemp(templ);
  if (dir == nullptr) {
    std::fprintf(stderr, "bench_spill: cannot create spill directory\n");
    return 2;
  }
  g_spill_dir = dir;

  bool tiny = g_config.tiny;

  // Text corpus (NYT'-shaped): generalized n-grams ship rewritten copies of
  // most sentences, the classic D-SEQ shuffle-heavy workload.
  TextCorpusOptions text;
  text.num_sentences = tiny ? 300 : 2'000;
  text.lemmas_per_pos = tiny ? 80 : 300;
  text.num_entities = tiny ? 40 : 200;
  SequenceDatabase corpus = GenerateTextCorpus(text);
  RunCase("text_bigram_div4", corpus, ".* (.^){2} .*", tiny ? 5 : 10, 4);
  RunCase("text_bigram_div16", corpus, ".* (.^){2} .*", tiny ? 5 : 10, 16);

  // Skewed Zipf hierarchy: one heavy pivot dominates, so one reducer column
  // carries most of the spilled runs — the adversarial merge shape.
  SkewedZipfOptions zipf;
  zipf.seed = 77;
  zipf.num_items = tiny ? 60 : 150;
  zipf.num_groups = 2;
  zipf.num_sequences = tiny ? 200 : 1'000;
  zipf.min_length = 4;
  zipf.max_length = tiny ? 12 : 20;
  zipf.zipf_exponent = 1.3;
  SequenceDatabase skewed = GenerateSkewedZipf(zipf);
  RunCase("zipf_single_gen_div8", skewed, ".*(.^).*", 2, 8);
  // The aggregation extension sends the weighted-value combiner through its
  // external-aggregation (spill-sort) path.
  RunCase("zipf_aggregate_div8", skewed, ".*(.^).*", 2, 8,
          /*aggregate_sequences=*/true);

  if (g_config.json) PrintJson();

  rmdir(g_spill_dir.c_str());  // must be empty: RAII cleaned every run

  bool all_identical = true;
  for (const auto& row : g_rows) all_identical &= row.identical;
  if (!all_identical) {
    std::fprintf(stderr, "bench_spill: spilled patterns diverged!\n");
  }
  return all_identical ? 0 : 1;
}
