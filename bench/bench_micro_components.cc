// Micro-benchmarks (google-benchmark) for the core components: grid
// construction, pivot search, rewriting, NFA minimization/serialization,
// and varint coding. Complements the paper-figure harnesses with
// per-component regression tracking.
#include <benchmark/benchmark.h>

#include <random>

#include "src/core/candidates.h"
#include "src/core/desq_dfs.h"
#include "src/core/grid.h"
#include "src/core/pivot.h"
#include "src/datagen/text_corpus.h"
#include "src/dist/dseq_miner.h"
#include "src/fst/compiler.h"
#include "src/nfa/output_nfa.h"
#include "src/nfa/serializer.h"
#include "src/util/varint.h"

namespace dseq {
namespace {

const SequenceDatabase& Corpus() {
  static SequenceDatabase db = [] {
    TextCorpusOptions options;
    options.num_sentences = 2'000;
    options.lemmas_per_pos = 300;
    options.num_entities = 200;
    return GenerateTextCorpus(options);
  }();
  return db;
}

const Fst& N4Fst() {
  static Fst fst = CompileFst(".* (.^){3} NOUN .*", Corpus().dict);
  return fst;
}

void BM_GridBuild(benchmark::State& state) {
  const SequenceDatabase& db = Corpus();
  GridOptions options;
  options.prune_sigma = 10;
  size_t i = 0;
  for (auto _ : state) {
    StateGrid grid = StateGrid::Build(db.sequences[i % db.size()], N4Fst(),
                                      db.dict, options);
    benchmark::DoNotOptimize(grid.num_edges());
    ++i;
  }
}
BENCHMARK(BM_GridBuild);

void BM_PivotSearch(benchmark::State& state) {
  const SequenceDatabase& db = Corpus();
  GridOptions options;
  options.prune_sigma = 10;
  std::vector<StateGrid> grids;
  for (size_t i = 0; i < 64; ++i) {
    grids.push_back(
        StateGrid::Build(db.sequences[i], N4Fst(), db.dict, options));
  }
  size_t i = 0;
  for (auto _ : state) {
    Sequence pivots = FindPivotItems(grids[i % grids.size()]);
    benchmark::DoNotOptimize(pivots.size());
    ++i;
  }
}
BENCHMARK(BM_PivotSearch);

void BM_Rewrite(benchmark::State& state) {
  const SequenceDatabase& db = Corpus();
  GridOptions options;
  options.prune_sigma = 10;
  // Pick an accepting sequence.
  size_t idx = 0;
  StateGrid grid;
  for (size_t i = 0; i < db.size(); ++i) {
    grid = StateGrid::Build(db.sequences[i], N4Fst(), db.dict, options);
    if (grid.HasAcceptingRun()) {
      idx = i;
      break;
    }
  }
  Sequence pivots = FindPivotItems(grid);
  for (auto _ : state) {
    Sequence rewritten =
        RewriteForPivot(db.sequences[idx], grid, pivots.front());
    benchmark::DoNotOptimize(rewritten.size());
  }
}
BENCHMARK(BM_Rewrite);

void BM_NfaMinimizeAndSerialize(benchmark::State& state) {
  const SequenceDatabase& db = Corpus();
  GridOptions options;
  options.prune_sigma = 10;
  // Build a trie from the first accepting sequence's runs.
  OutputNfa prototype;
  for (const Sequence& T : db.sequences) {
    StateGrid grid = StateGrid::Build(T, N4Fst(), db.dict, options);
    if (!grid.HasAcceptingRun()) continue;
    Sequence pivots = FindPivotItems(grid);
    if (pivots.empty()) continue;
    ItemId pivot = pivots.back();
    ForEachAcceptingRun(grid, 10'000,
                        [&](const std::vector<const StateGrid::Edge*>& run) {
                          prototype.AddRun(run, pivot);
                        });
    if (prototype.num_states() > 16) break;
  }
  for (auto _ : state) {
    OutputNfa nfa = prototype;
    nfa.Minimize();
    std::string bytes = SerializeNfa(nfa);
    benchmark::DoNotOptimize(bytes.size());
  }
}
BENCHMARK(BM_NfaMinimizeAndSerialize);

void BM_NfaDeserialize(benchmark::State& state) {
  OutputNfa trie;
  std::mt19937_64 rng(3);
  for (int r = 0; r < 30; ++r) {
    std::vector<Sequence> labels;
    for (int i = 0; i < 4; ++i) {
      labels.push_back({static_cast<ItemId>(rng() % 50 + 1)});
    }
    trie.AddLabelString(labels);
  }
  trie.Minimize();
  std::string bytes = SerializeNfa(trie);
  for (auto _ : state) {
    OutputNfa nfa = DeserializeNfa(bytes);
    benchmark::DoNotOptimize(nfa.num_states());
  }
}
BENCHMARK(BM_NfaDeserialize);

void BM_VarintSequenceRoundTrip(benchmark::State& state) {
  Sequence seq;
  std::mt19937_64 rng(5);
  for (int i = 0; i < 64; ++i) {
    seq.push_back(static_cast<ItemId>(rng() % 100'000 + 1));
  }
  for (auto _ : state) {
    std::string buf;
    PutSequence(&buf, seq);
    Sequence decoded;
    size_t pos = 0;
    GetSequence(buf, &pos, &decoded);
    benchmark::DoNotOptimize(decoded.size());
  }
}
BENCHMARK(BM_VarintSequenceRoundTrip);

void BM_DesqDfsSmall(benchmark::State& state) {
  const SequenceDatabase& db = Corpus();
  for (auto _ : state) {
    DesqDfsOptions options;
    options.sigma = 50;
    MiningResult result =
        MineDesqDfs(db.sequences, N4Fst(), db.dict, options);
    benchmark::DoNotOptimize(result.size());
  }
}
BENCHMARK(BM_DesqDfsSmall)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dseq

BENCHMARK_MAIN();
