// Micro-benchmarks for the core components: grid construction, pivot
// search, the forward/backward pivot DPs, rewriting, NFA
// minimization/serialization, varint coding, the map-side combiners (the
// zero-copy shuffle hot path), the shuffle block codec, and the external
// spill-run merger (the out-of-core reduce path).
//
// Self-contained harness — no google-benchmark dependency — so the binary
// always builds and CI can track regressions. Each benchmark runs until a
// minimum wall time and reports ns/op (plus items/s where an op processes a
// batch).
//
// Usage: bench_micro_components [--json] [--tiny] [--min-time-ms N]
//   --json         machine-readable output (CI archives it as
//                  BENCH_micro.json, the perf trajectory of the repo)
//   --tiny         CI-sized corpus and batches (fast smoke run)
//   --min-time-ms  per-benchmark measuring time (default 200)
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "src/core/candidates.h"
#include "src/core/desq_dfs.h"
#include "src/core/grid.h"
#include "src/core/pivot.h"
#include "src/dataflow/engine.h"
#include "src/dataflow/shuffle_buffer.h"
#include "src/datagen/text_corpus.h"
#include "src/dist/dseq_miner.h"
#include "src/fst/compiler.h"
#include "src/nfa/output_nfa.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/nfa/serializer.h"
#include "src/spill/external_merger.h"
#include "src/spill/spill_file.h"
#include "src/util/block_codec.h"
#include "src/util/varint.h"

namespace dseq {
namespace {

struct Config {
  bool json = false;
  bool tiny = false;
  double min_time_s = 0.2;
};
Config g_config;

struct BenchRow {
  std::string name;
  uint64_t iterations = 0;
  double ns_per_op = 0.0;
  double items_per_sec = 0.0;  // 0 when an op has no natural item count
};

std::vector<BenchRow> g_rows;

double Now() {
  return std::chrono::duration<double>(obs::Now().time_since_epoch()).count();
}

// `items_per_op` > 0 reports throughput (an op processes that many items).
template <typename Fn>
void RunBench(const std::string& name, uint64_t items_per_op, const Fn& fn) {
  fn();  // warm-up (and first-call lazy initialization)
  uint64_t iterations = 0;
  double elapsed = 0.0;
  uint64_t batch = 1;
  // At least one measured batch even with --min-time-ms 0, so ns_per_op is
  // never 0/0 and the JSON stays valid.
  do {
    double start = Now();
    for (uint64_t i = 0; i < batch; ++i) fn();
    double d = Now() - start;
    elapsed += d;
    iterations += batch;
    // Grow batches until one batch is ~1/10 of the budget, so timer
    // overhead stays negligible without overshooting the budget.
    if (d < g_config.min_time_s / 10) batch *= 2;
  } while (elapsed < g_config.min_time_s);
  BenchRow row;
  row.name = name;
  row.iterations = iterations;
  row.ns_per_op = elapsed / iterations * 1e9;
  if (items_per_op > 0) {
    row.items_per_sec = items_per_op / (elapsed / iterations);
  }
  g_rows.push_back(row);
  if (!g_config.json) {
    std::printf("%-28s %12.0f ns/op %10llu iters", row.name.c_str(),
                row.ns_per_op, (unsigned long long)row.iterations);
    if (row.items_per_sec > 0) {
      std::printf("  %12.0f items/s", row.items_per_sec);
    }
    std::printf("\n");
  }
}

// --- shared fixtures --------------------------------------------------------

const SequenceDatabase& Corpus() {
  static SequenceDatabase db = [] {
    TextCorpusOptions options;
    options.num_sentences = g_config.tiny ? 300 : 2'000;
    options.lemmas_per_pos = g_config.tiny ? 80 : 300;
    options.num_entities = g_config.tiny ? 40 : 200;
    return GenerateTextCorpus(options);
  }();
  return db;
}

const Fst& N4Fst() {
  static Fst fst = CompileFst(".* (.^){3} NOUN .*", Corpus().dict);
  return fst;
}

// Deterministic weighted-value records for the map+combine microbench: 64
// distinct pivot keys, payloads from a pool of 512 short serialized
// sequences, varint weight prefix. The workload of the D-SEQ aggregation
// extension and D-CAND's NFA merging.
std::vector<std::pair<std::string, std::string>> MakeWeightedRecords(
    size_t count) {
  std::mt19937_64 rng(42);
  std::vector<std::string> payloads;
  for (int p = 0; p < 512; ++p) {
    Sequence seq;
    size_t len = 4 + rng() % 12;
    for (size_t j = 0; j < len; ++j) {
      seq.push_back(static_cast<ItemId>(1 + rng() % 50'000));
    }
    std::string s;
    PutSequence(&s, seq);
    payloads.push_back(std::move(s));
  }
  std::vector<std::pair<std::string, std::string>> records;
  records.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    std::string key;
    PutVarint(&key, 1 + rng() % 64);
    std::string value;
    PutVarint(&value, 1 + rng() % 4);
    value += payloads[rng() % payloads.size()];
    records.emplace_back(std::move(key), std::move(value));
  }
  return records;
}

// One map+combine round over `records` through the real engine (sink
// reduce), with `per_input` records per map call.
void RunCombineRound(
    const std::vector<std::pair<std::string, std::string>>& records,
    const CombinerFactory& factory, size_t per_input) {
  size_t num_inputs = records.size() / per_input;
  MapFn map_fn = [&](size_t i, const EmitFn& emit) {
    size_t begin = i * per_input;
    for (size_t r = begin; r < begin + per_input; ++r) {
      emit(records[r].first, records[r].second);
    }
  };
  ReduceFn sink = [](int, std::string_view, std::vector<std::string_view>&) {};
  DataflowOptions options;
  RunMapReduce(num_inputs, map_fn, factory, sink, options);
}

// --- benchmarks -------------------------------------------------------------

void BenchGridBuild() {
  const SequenceDatabase& db = Corpus();
  GridOptions options;
  options.prune_sigma = 10;
  size_t i = 0;
  RunBench("grid_build", 0, [&] {
    StateGrid grid = StateGrid::Build(db.sequences[i % db.size()], N4Fst(),
                                      db.dict, options);
    volatile size_t sink = grid.num_edges();
    (void)sink;
    ++i;
  });
}

std::vector<StateGrid> BuildGrids(size_t count) {
  const SequenceDatabase& db = Corpus();
  GridOptions options;
  options.prune_sigma = 10;
  std::vector<StateGrid> grids;
  for (size_t i = 0; i < count && i < db.size(); ++i) {
    grids.push_back(
        StateGrid::Build(db.sequences[i], N4Fst(), db.dict, options));
  }
  return grids;
}

void BenchPivotSearch() {
  std::vector<StateGrid> grids = BuildGrids(64);
  size_t i = 0;
  RunBench("pivot_search", 0, [&] {
    Sequence pivots = FindPivotItems(grids[i % grids.size()]);
    volatile size_t sink = pivots.size();
    (void)sink;
    ++i;
  });
}

void BenchPivotDp() {
  // The forward+backward DP tables PivotRewriter precomputes — the
  // PivotSet-merge hot path of the D-SEQ map phase.
  std::vector<StateGrid> grids = BuildGrids(64);
  size_t i = 0;
  RunBench("pivot_dp_fwd_bwd", 0, [&] {
    const StateGrid& grid = grids[i % grids.size()];
    std::vector<PivotSet> fwd = ComputeForwardPivots(grid);
    std::vector<PivotSet> bwd = ComputeBackwardPivots(grid);
    volatile size_t sink = fwd.size() + bwd.size();
    (void)sink;
    ++i;
  });
}

void BenchRewrite() {
  const SequenceDatabase& db = Corpus();
  GridOptions options;
  options.prune_sigma = 10;
  size_t idx = 0;
  StateGrid grid;
  for (size_t i = 0; i < db.size(); ++i) {
    grid = StateGrid::Build(db.sequences[i], N4Fst(), db.dict, options);
    if (grid.HasAcceptingRun()) {
      idx = i;
      break;
    }
  }
  Sequence pivots = FindPivotItems(grid);
  if (pivots.empty()) return;
  RunBench("rewrite", 0, [&] {
    Sequence rewritten =
        RewriteForPivot(db.sequences[idx], grid, pivots.front());
    volatile size_t sink = rewritten.size();
    (void)sink;
  });
}

void BenchNfaMinimizeAndSerialize() {
  const SequenceDatabase& db = Corpus();
  GridOptions options;
  options.prune_sigma = 10;
  OutputNfa prototype;
  for (const Sequence& T : db.sequences) {
    StateGrid grid = StateGrid::Build(T, N4Fst(), db.dict, options);
    if (!grid.HasAcceptingRun()) continue;
    Sequence pivots = FindPivotItems(grid);
    if (pivots.empty()) continue;
    ItemId pivot = pivots.back();
    ForEachAcceptingRun(grid, 10'000,
                        [&](const std::vector<const StateGrid::Edge*>& run) {
                          prototype.AddRun(run, pivot);
                        });
    if (prototype.num_states() > 16) break;
  }
  RunBench("nfa_minimize_serialize", 0, [&] {
    OutputNfa nfa = prototype;
    nfa.Minimize();
    std::string bytes = SerializeNfa(nfa);
    volatile size_t sink = bytes.size();
    (void)sink;
  });
}

void BenchNfaDeserialize() {
  OutputNfa trie;
  std::mt19937_64 rng(3);
  for (int r = 0; r < 30; ++r) {
    std::vector<Sequence> labels;
    for (int i = 0; i < 4; ++i) {
      labels.push_back({static_cast<ItemId>(rng() % 50 + 1)});
    }
    trie.AddLabelString(labels);
  }
  trie.Minimize();
  std::string bytes = SerializeNfa(trie);
  RunBench("nfa_deserialize", 0, [&] {
    OutputNfa nfa = DeserializeNfa(bytes);
    volatile size_t sink = nfa.num_states();
    (void)sink;
  });
}

void BenchVarintSequenceRoundTrip() {
  Sequence seq;
  std::mt19937_64 rng(5);
  for (int i = 0; i < 64; ++i) {
    seq.push_back(static_cast<ItemId>(rng() % 100'000 + 1));
  }
  RunBench("varint_sequence_roundtrip", 0, [&] {
    std::string buf;
    PutSequence(&buf, seq);
    Sequence decoded;
    size_t pos = 0;
    GetSequence(buf, &pos, &decoded);
    volatile size_t sink = decoded.size();
    (void)sink;
  });
}

void BenchCombiners() {
  // The acceptance microbench of the zero-copy shuffle path: 100k
  // weighted-value records through map + combine (arena-backed
  // open-addressing tables), reported as records/s.
  const size_t count = g_config.tiny ? 20'000 : 100'000;
  auto weighted = MakeWeightedRecords(count);
  RunBench("map_combine_weighted_" + std::to_string(count / 1000) + "k", count,
           [&] { RunCombineRound(weighted, MakeWeightedValueCombiner, 100); });

  // Word-count-style records for the sum combiner.
  std::mt19937_64 rng(7);
  std::vector<std::pair<std::string, std::string>> counts;
  counts.reserve(count);
  std::string one;
  PutVarint(&one, 1);
  for (size_t i = 0; i < count; ++i) {
    counts.emplace_back("w" + std::to_string(rng() % 2'000), one);
  }
  RunBench("map_combine_sum_" + std::to_string(count / 1000) + "k", count,
           [&] { RunCombineRound(counts, MakeSumCombiner, 100); });
}

void BenchBlockCodec() {
  // The exact byte layout the engine compresses: records framed through
  // ShuffleBuffer itself, so the measured bytes track the real shuffle
  // format if it ever changes.
  auto records = MakeWeightedRecords(g_config.tiny ? 2'000 : 10'000);
  ShuffleBuffer buffer;
  for (const auto& [key, value] : records) buffer.Append(key, value);
  std::string raw = buffer.ReleaseRaw();
  std::string block = CompressBlock(raw);
  RunBench("codec_compress", raw.size(), [&] {
    std::string compressed = CompressBlock(raw);
    volatile size_t sink = compressed.size();
    (void)sink;
  });
  RunBench("codec_decompress", raw.size(), [&] {
    std::string out;
    DecompressBlock(block, &out);
    volatile size_t sink = out.size();
    (void)sink;
  });
  if (!g_config.json) {
    std::printf("codec ratio on shuffle records: %zu -> %zu bytes (%.1f%%)\n",
                raw.size(), block.size(), 100.0 * block.size() / raw.size());
  }
}

void BenchExternalMerge() {
  // The out-of-core reduce path: k-way merge of 8 sorted spill runs back
  // into key groups (src/spill/external_merger.h), reported as records/s.
  // Runs are written once (the merge, not the spill, is the hot loop);
  // sources are recreated per op, so each op pays the real open/read cost.
  char templ[] = "/tmp/dseq_micro_spill_XXXXXX";
  char* dir = mkdtemp(templ);
  if (dir == nullptr) return;
  const size_t count = g_config.tiny ? 8'000 : 40'000;
  auto records = MakeWeightedRecords(count);
  std::sort(records.begin(), records.end());
  constexpr size_t kRuns = 8;
  std::vector<SpillFile> runs;
  for (size_t r = 0; r < kRuns; ++r) {
    SpillFile file = SpillFile::Create(dir);
    SpillWriter writer(&file, /*compress=*/false, nullptr);
    // Every 8th record into each run: all runs stay sorted and overlap.
    for (size_t i = r; i < records.size(); i += kRuns) {
      writer.Append(records[i].first, records[i].second);
    }
    writer.Finish();
    runs.push_back(std::move(file));
  }
  RunBench("external_merge_8runs", count, [&] {
    ExternalMergePlan plan("", /*compress=*/false, /*max_fan_in=*/16, nullptr);
    for (const SpillFile& run : runs) {
      plan.AddSource(
          std::make_unique<SpillRunSource>(run, /*compressed=*/false));
    }
    uint64_t groups = 0;
    plan.MergeGroups(
        [&](std::string_view, std::vector<std::string_view>&) { ++groups; });
    volatile uint64_t sink = groups;
    (void)sink;
  });
  runs.clear();  // unlink before removing the directory
  rmdir(dir);
}

void BenchDesqDfsSmall() {
  const SequenceDatabase& db = Corpus();
  RunBench("desq_dfs_small", 0, [&] {
    DesqDfsOptions options;
    options.sigma = 50;
    MiningResult result = MineDesqDfs(db.sequences, N4Fst(), db.dict, options);
    volatile size_t sink = result.size();
    (void)sink;
  });
}

void BenchTraceOverhead() {
  // The disabled-run cost of the instrumentation pattern (trace.h's
  // overhead doctrine): the same ~1µs workload measured bare and wrapped
  // in a DSEQ_TRACE_SPAN plus an Enabled()-gated histogram observation,
  // with tracing *off*. The CI trace job asserts the instrumented row
  // stays within 2% of the baseline.
  obs::SetEnabled(false);
  Sequence seq;
  std::mt19937_64 rng(11);
  for (int i = 0; i < 96; ++i) {
    seq.push_back(static_cast<ItemId>(rng() % 100'000 + 1));
  }
  auto workload = [&] {
    std::string buf;
    PutSequence(&buf, seq);
    Sequence decoded;
    size_t pos = 0;
    GetSequence(buf, &pos, &decoded);
    volatile size_t sink = decoded.size();
    (void)sink;
    return buf.size();
  };
  RunBench("trace_overhead_baseline", 0, [&] { workload(); });
  RunBench("trace_overhead_traced_off", 0, [&] {
    DSEQ_TRACE_SPAN("bench", "overhead_probe");
    size_t bytes = workload();
    static obs::Histogram& h = obs::GetHistogram("bench.overhead_bytes");
    if (obs::Enabled()) h.Observe(bytes);
  });
}

void PrintJson() {
  std::printf("{\n  \"benchmarks\": [\n");
  for (size_t i = 0; i < g_rows.size(); ++i) {
    const BenchRow& r = g_rows[i];
    std::printf("    {\"name\": \"%s\", \"iterations\": %llu, "
                "\"ns_per_op\": %.1f, \"items_per_sec\": %.1f}%s\n",
                r.name.c_str(), (unsigned long long)r.iterations, r.ns_per_op,
                r.items_per_sec, i + 1 < g_rows.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

}  // namespace
}  // namespace dseq

int main(int argc, char** argv) {
  using namespace dseq;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      g_config.json = true;
    } else if (std::strcmp(argv[i], "--tiny") == 0) {
      g_config.tiny = true;
    } else if (std::strcmp(argv[i], "--min-time-ms") == 0 && i + 1 < argc) {
      g_config.min_time_s = std::atof(argv[++i]) / 1000.0;
    } else {
      std::fprintf(stderr,
                   "usage: bench_micro_components [--json] [--tiny] "
                   "[--min-time-ms N]\n");
      return 2;
    }
  }
  BenchGridBuild();
  BenchPivotSearch();
  BenchPivotDp();
  BenchRewrite();
  BenchNfaMinimizeAndSerialize();
  BenchNfaDeserialize();
  BenchVarintSequenceRoundTrip();
  BenchCombiners();
  BenchBlockCodec();
  BenchExternalMerge();
  BenchDesqDfsSmall();
  BenchTraceOverhead();
  if (g_config.json) PrintJson();
  return 0;
}
