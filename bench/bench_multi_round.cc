// Multi-round chained dataflow harness: per-round map/reduce seconds and
// shuffle volumes — the in-process analogue of Spark's per-stage
// `shuffleWriteBytes` view that the paper reads off its cluster runs.
//
// Two iterative workloads run against their single-round counterparts:
//
//   1. k-round chained PrefixSpan (the MLlib-style iterative setting): each
//      round shuffles the projected databases of the surviving prefixes; the
//      collapsed baseline ships every projection once and recurses locally.
//   2. Two-round frequency recount + mine for SEMI-NAIVE and D-SEQ: round 1
//      is the f-list job real deployments run first, round 2 the miner.
//
// All chained results are checksum-verified against the single-round
// algorithms. Knobs: DSEQ_BENCH_SCALE / _WORKERS / _EXECUTION (see
// bench_util.h).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common/bench_util.h"

namespace {

using namespace dseq;
using namespace dseq::bench;

std::string Count(uint64_t n) { return std::to_string(n); }

std::string Compressed(const DataflowMetrics& m) {
  return m.shuffle_compressed_bytes > 0 ? FormatBytes(m.shuffle_compressed_bytes)
                                        : "-";
}

// Prints one row per round plus the aggregate, labeled `name`.
void PrintRounds(const std::string& name,
                 const ChainedDistributedResult& result) {
  for (size_t r = 0; r < result.round_metrics.size(); ++r) {
    const DataflowMetrics& m = result.round_metrics[r];
    PrintRow({name + " round " + std::to_string(r + 1),
              FormatSeconds(m.map_seconds), FormatSeconds(m.reduce_seconds),
              FormatBytes(m.shuffle_bytes), Compressed(m),
              Count(m.shuffle_records)});
  }
  const DataflowMetrics& total = result.aggregate;
  PrintRow({name + " total", FormatSeconds(total.map_seconds),
            FormatSeconds(total.reduce_seconds),
            FormatBytes(total.shuffle_bytes), Compressed(total),
            Count(total.shuffle_records)});
}

RunRow ChainedRow(const std::string& algo,
                  const ChainedDistributedResult& result) {
  RunRow row;
  row.algo = algo;
  row.total_s = result.aggregate.total_seconds();
  row.map_s = result.aggregate.map_seconds;
  row.mine_s = result.aggregate.reduce_seconds;
  row.shuffle_bytes = result.aggregate.shuffle_bytes;
  row.num_patterns = result.patterns.size();
  row.checksum = ResultChecksum(result.patterns);
  return row;
}

void BenchChainedPrefixSpan() {
  const SequenceDatabase& db = Amzn();
  PrefixSpanOptions options;
  options.sigma = std::max<uint64_t>(2, 10 * GetConfig().scale);
  options.lambda = 4;
  options.execution = BenchExecution();
  options.num_map_workers = GetConfig().workers;
  options.num_reduce_workers = GetConfig().workers;

  PrintHeader("Chained PrefixSpan, AMZN', T1(" +
                  std::to_string(options.sigma) + "," +
                  std::to_string(options.lambda) + ")",
              {"stage", "map", "reduce", "shuffle", "compressed", "records"});

  ChainedDistributedResult chained =
      MineChainedPrefixSpan(db.sequences, db.dict, options);
  PrintRounds("k-round", chained);

  // Same chain with the block codec on: identical patterns and raw volume,
  // plus what would actually cross the wire.
  PrefixSpanOptions compressed_options = options;
  compressed_options.compress_shuffle = true;
  ChainedDistributedResult compressed =
      MineChainedPrefixSpan(db.sequences, db.dict, compressed_options);
  PrintRounds("k-round+codec", compressed);

  RunRow collapsed = RunPrefixSpan(db, options);
  PrintRow({"collapsed (1 round)", FormatSeconds(collapsed.map_s),
            FormatSeconds(collapsed.mine_s),
            FormatBytes(collapsed.shuffle_bytes), "-", "-"});

  CheckAgreement({ChainedRow("k-round-PS", chained),
                  ChainedRow("k-round-PS+codec", compressed), collapsed},
                 "chained PrefixSpan");
  std::printf("patterns: %zu (%zu rounds)\n", chained.patterns.size(),
              chained.num_rounds());
  if (compressed.aggregate.shuffle_compressed_bytes > 0) {
    std::printf("codec: %llu -> %llu shuffle bytes (%.1f%%)\n",
                (unsigned long long)compressed.aggregate.shuffle_bytes,
                (unsigned long long)compressed.aggregate.shuffle_compressed_bytes,
                100.0 * compressed.aggregate.shuffle_compressed_bytes /
                    compressed.aggregate.shuffle_bytes);
  }
}

void BenchRecountMiners() {
  const SequenceDatabase& db = Nyt();
  Constraint c = NytConstraint(1);
  Fst fst = CompileFst(c.pattern, db.dict);

  PrintHeader("Frequency recount + mine, NYT', " + c.name,
              {"stage", "map", "reduce", "shuffle", "compressed", "records"});

  NaiveRecountOptions naive;
  naive.sigma = c.sigma;
  naive.semi_naive = true;
  naive.execution = BenchExecution();
  naive.num_map_workers = GetConfig().workers;
  naive.num_reduce_workers = GetConfig().workers;
  naive.candidates_per_sequence_budget = 2'000'000;
  ChainedDistributedResult semi =
      MineNaiveRecount(db.sequences, fst, db.dict, naive);
  PrintRounds("SemiNaive+recount", semi);

  DSeqRecountOptions dseq;
  dseq.sigma = c.sigma;
  dseq.execution = BenchExecution();
  dseq.num_map_workers = GetConfig().workers;
  dseq.num_reduce_workers = GetConfig().workers;
  ChainedDistributedResult dseq_result =
      MineDSeqRecount(db.sequences, fst, db.dict, dseq);
  PrintRounds("D-SEQ+recount", dseq_result);

  RunRow single = RunDSeq(db, fst, dseq);
  PrintRow({"D-SEQ (1 round)", FormatSeconds(single.map_s),
            FormatSeconds(single.mine_s), FormatBytes(single.shuffle_bytes),
            "-", "-"});

  CheckAgreement({ChainedRow("SemiNaive+recount", semi),
                  ChainedRow("D-SEQ+recount", dseq_result), single},
                 "recount miners");
  std::printf(
      "(recount round 1 recomputes the f-list the single-round miners read "
      "from the dictionary)\n");
  std::printf("D-SEQ+recount input reads: %llu storage, %llu cache\n",
              (unsigned long long)dseq_result.input_storage_reads,
              (unsigned long long)dseq_result.input_cache_hits);
}

}  // namespace

int main() {
  BenchChainedPrefixSpan();
  BenchRecountMiners();
  return 0;
}
