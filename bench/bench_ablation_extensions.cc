// Ablation benches for design choices beyond the paper's figures
// (DESIGN.md §4 "extensions"):
//
//  * D-SEQ sequence aggregation: combining identical rewritten sequences
//    into weighted sequences (the LASH/MG-FSM trick, applied to D-SEQ).
//  * DESQ-COUNT vs DESQ-DFS: the two sequential strategies of the DESQ
//    framework, selective vs loose constraints.
//  * Partition balance (paper Sec. III-B): the frequency-based item order
//    should keep item-based partitions balanced.
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench/common/bench_util.h"
#include "src/core/desq_count.h"
#include "src/core/desq_dfs.h"
#include "src/dist/partition_stats.h"
#include "src/obs/trace.h"

namespace {

using namespace dseq;
using namespace dseq::bench;

}  // namespace

int main() {
  double scale = GetConfig().scale;
  auto sig = [&](uint64_t s) {
    return std::max<uint64_t>(2, static_cast<uint64_t>(s * scale));
  };

  // --- D-SEQ sequence aggregation ---------------------------------------
  PrintHeader("Extension: D-SEQ sequence aggregation",
              {"constraint", "plain", "aggregated", "shuffle plain",
               "shuffle agg"});
  struct Case {
    std::string name;
    const SequenceDatabase* db;
    std::string pattern;
    uint64_t sigma;
  };
  std::vector<Case> cases = {
      {NytConstraint(4).name + " NYT'", &Nyt(), NytConstraint(4).pattern,
       NytConstraint(4).sigma},
      {AmznConstraint(4).name + " AMZN'", &Amzn(), AmznConstraint(4).pattern,
       AmznConstraint(4).sigma},
      {"T2(" + std::to_string(sig(100)) + ",0,5) CW50'", &Cw50(),
       T2Pattern(0, 5), sig(100)},
  };
  for (const Case& c : cases) {
    Fst fst = CompileFst(c.pattern, c.db->dict);
    DSeqOptions plain;
    plain.sigma = c.sigma;
    RunRow r1 = RunDSeq(*c.db, fst, plain);
    DSeqOptions aggregated = plain;
    aggregated.aggregate_sequences = true;
    RunRow r2 = RunDSeq(*c.db, fst, aggregated);
    CheckAgreement({r1, r2}, c.name);
    PrintRow({c.name, FormatRun(r1), FormatRun(r2),
              FormatBytes(r1.shuffle_bytes), FormatBytes(r2.shuffle_bytes)});
  }

  // --- DESQ-COUNT vs DESQ-DFS (sequential strategies) --------------------
  PrintHeader("Extension: sequential DESQ-COUNT vs DESQ-DFS",
              {"constraint", "DESQ-COUNT", "DESQ-DFS"});
  struct SeqCase {
    std::string name;
    const SequenceDatabase* db;
    std::string pattern;
    uint64_t sigma;
  };
  std::vector<SeqCase> seq_cases = {
      {NytConstraint(1).name + " NYT' (selective)", &Nyt(),
       NytConstraint(1).pattern, NytConstraint(1).sigma},
      {NytConstraint(3).name + " NYT' (selective)", &Nyt(),
       NytConstraint(3).pattern, NytConstraint(3).sigma},
      {NytConstraint(4).name + " NYT' (loose)", &Nyt(),
       NytConstraint(4).pattern, NytConstraint(4).sigma},
  };
  for (const SeqCase& c : seq_cases) {
    Fst fst = CompileFst(c.pattern, c.db->dict);
    double count_s = 0.0;
    size_t count_patterns = 0;
    bool count_oom = false;
    {
      auto start = obs::Now();
      try {
        DesqCountOptions options;
        options.sigma = c.sigma;
        options.candidates_per_sequence_budget = 5'000'000;
        MiningResult r =
            MineDesqCount(c.db->sequences, fst, c.db->dict, options);
        count_patterns = r.size();
      } catch (const MiningBudgetError&) {
        count_oom = true;
      }
      count_s = obs::SecondsSince(start);
    }
    RunRow dfs = RunDesqDfsSequential(*c.db, fst, c.sigma);
    if (!count_oom && count_patterns != dfs.num_patterns) {
      std::fprintf(stderr, "WARNING: DESQ-COUNT disagrees on %s\n",
                   c.name.c_str());
    }
    PrintRow({c.name,
              count_oom ? "n/a (OOM)" : FormatSeconds(count_s),
              FormatRun(dfs)});
  }

  // --- Partition balance --------------------------------------------------
  PrintHeader("Partition balance (D-SEQ map phase)",
              {"constraint", "partitions", "total bytes", "max/mean",
               "largest share"});
  for (const Case& c : cases) {
    Fst fst = CompileFst(c.pattern, c.db->dict);
    std::vector<PartitionStats> stats = ComputePartitionStats(
        c.db->sequences, fst, c.db->dict, c.sigma, GetConfig().workers);
    BalanceSummary summary = SummarizeBalance(stats);
    char buf[2][32];
    std::snprintf(buf[0], sizeof(buf[0]), "%.1fx", summary.max_to_mean_bytes);
    std::snprintf(buf[1], sizeof(buf[1]), "%.1f%%",
                  100.0 * summary.largest_share);
    PrintRow({c.name, std::to_string(summary.num_partitions),
              FormatBytes(summary.total_bytes), buf[0], buf[1]});
  }
  return 0;
}
