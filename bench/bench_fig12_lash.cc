// Reproduces paper Fig. 12: the LASH setting (max gap + max length [+
// hierarchies]) — generalization overhead of D-SEQ / D-CAND over the
// specialized miner.
//
//  12a: T3 constraints on AMZN-F (LASH: hierarchies)
//  12b: T2 constraints on CW50 (MG-FSM: no hierarchy)
//
// Expected shape: the specialized miner wins (it exploits the constraint
// structure directly), with D-SEQ / D-CAND within a small factor — the
// paper reports 0.9x–2.8x generalization overhead.
#include <cstdio>

#include "bench/common/bench_util.h"

namespace {

using namespace dseq;
using namespace dseq::bench;

void Row(const std::string& name, const SequenceDatabase& db, uint64_t sigma,
         uint32_t gamma, uint32_t lambda, bool hierarchy) {
  GapMinerOptions specialized;
  specialized.sigma = sigma;
  specialized.gamma = gamma;
  specialized.lambda = lambda;
  specialized.use_hierarchy = hierarchy;
  RunRow lash = RunGapMiner(db, specialized);

  std::string pattern =
      hierarchy ? T3Pattern(gamma, lambda) : T2Pattern(gamma, lambda);
  Fst fst = CompileFst(pattern, db.dict);
  DSeqOptions dseq_options;
  dseq_options.sigma = sigma;
  RunRow dseq = RunDSeq(db, fst, dseq_options);
  DCandOptions dcand_options;
  dcand_options.sigma = sigma;
  RunRow dcand = RunDCand(db, fst, dcand_options);
  CheckAgreement({lash, dseq, dcand}, name);

  auto overhead = [&](const RunRow& r) -> std::string {
    if (r.oom) return "n/a (OOM)";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s (%.1fx)",
                  FormatSeconds(r.total_s).c_str(), r.total_s / lash.total_s);
    return buf;
  };
  PrintRow({name, FormatRun(lash), overhead(dseq), overhead(dcand),
            std::to_string(lash.num_patterns)});
}

}  // namespace

int main() {
  double scale = GetConfig().scale;
  auto sig = [&](uint64_t s) {
    return std::max<uint64_t>(2, static_cast<uint64_t>(s * scale));
  };

  PrintHeader("Fig. 12a: LASH setting on AMZN-F' (overhead vs specialized)",
              {"constraint", "LASH", "D-SEQ", "D-CAND", "# frequent"});
  Row("T3(" + std::to_string(sig(100)) + ",1,5)", AmznF(), sig(100), 1, 5,
      true);
  Row("T3(" + std::to_string(sig(5)) + ",1,5)", AmznF(), sig(5), 1, 5, true);
  Row("T3(" + std::to_string(sig(100)) + ",2,5)", AmznF(), sig(100), 2, 5,
      true);
  Row("T3(" + std::to_string(sig(100)) + ",1,6)", AmznF(), sig(100), 1, 6,
      true);

  PrintHeader("Fig. 12b: MG-FSM setting on CW50'",
              {"constraint", "MG-FSM", "D-SEQ", "D-CAND", "# frequent"});
  Row("T2(" + std::to_string(sig(100)) + ",0,5)", Cw50(), sig(100), 0, 5,
      false);
  Row("T2(" + std::to_string(sig(250)) + ",0,5)", Cw50(), sig(250), 0, 5,
      false);
  return 0;
}
