// Partition-balance benchmark over skewed Zipf hierarchies (ROADMAP
// "partition balance actions"; paper Sec. III-B discussion).
//
// For each configuration the harness generates a skewed Zipf database where
// a single heavy pivot dominates (see src/datagen/skewed_zipf.h), runs
// D-SEQ once with hash partitioning and once under a PartitionPlan
// (MineDSeqBalanced: LPT packing, light-pivot bundling, heavy-pivot range
// splits + reconcile round), and reports the measured per-reducer
// `max_to_mean_bytes` before/after, the improvement factor, and whether the
// two runs' patterns are byte-identical (they must be — the plan may only
// move bytes, never change results).
//
// Usage: bench_partition_balance [--json] [--tiny] [--workers N]
//   --json     machine-readable output (CI archives it as
//              BENCH_partition_balance.json next to BENCH_micro.json)
//   --tiny     CI-sized databases (fast smoke run)
//   --workers  reducer count per run (default 8)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common/bench_util.h"
#include "src/datagen/skewed_zipf.h"
#include "src/dist/dseq_miner.h"
#include "src/dist/partition_plan.h"
#include "src/dist/partition_stats.h"
#include "src/obs/trace.h"
#include "src/fst/compiler.h"

namespace dseq {
namespace {

struct Config {
  bool json = false;
  bool tiny = false;
  int workers = 8;
};
Config g_config;

struct BalanceRow {
  std::string name;
  int reducers = 0;
  size_t num_pivots = 0;     // pivots that received data
  size_t num_splits = 0;     // pivots the plan range-split
  uint64_t shuffle_bytes = 0;
  double hash_max_to_mean = 0.0;     // measured, hash partitioning
  double planned_max_to_mean = 0.0;  // projected by the plan
  double balanced_max_to_mean = 0.0;  // measured, plan-driven mining round
  double improvement = 0.0;           // hash / balanced
  bool identical = false;             // balanced patterns == hash patterns
  double hash_seconds = 0.0;
  double balanced_seconds = 0.0;
};

std::vector<BalanceRow> g_rows;

double Now() {
  return std::chrono::duration<double>(obs::Now().time_since_epoch()).count();
}

void RunCase(const std::string& name, const SkewedZipfOptions& gen,
             const std::string& pattern, uint64_t sigma, int workers = 0) {
  SequenceDatabase db = GenerateSkewedZipf(gen);
  Fst fst = CompileFst(pattern, db.dict);
  if (workers == 0) workers = g_config.workers;

  BalanceRow row;
  row.name = name;
  row.reducers = workers;

  DSeqOptions hash_options;
  hash_options.sigma = sigma;
  hash_options.num_map_workers = workers;
  hash_options.num_reduce_workers = workers;
  double start = Now();
  DistributedResult hash_run =
      MineDSeq(db.sequences, fst, db.dict, hash_options);
  row.hash_seconds = Now() - start;
  row.shuffle_bytes = hash_run.metrics.shuffle_bytes;
  row.hash_max_to_mean =
      SummarizeReducerBytes(hash_run.metrics.reducer_bytes)
          .max_to_mean_reducer_bytes;

  DSeqBalanceOptions balance_options;
  static_cast<DSeqOptions&>(balance_options) = hash_options;
  PartitionPlan plan;
  start = Now();
  ChainedDistributedResult balanced =
      MineDSeqBalanced(db.sequences, fst, db.dict, balance_options, &plan);
  row.balanced_seconds = Now() - start;
  row.num_pivots = plan.assignments.size() + plan.splits.size();
  row.num_splits = plan.splits.size();
  row.planned_max_to_mean =
      SummarizePlannedBalance(plan).max_to_mean_reducer_bytes;
  // The mining round (round 1) carries the partition-balance story; the
  // reconcile round ships only (pattern, count) records.
  row.balanced_max_to_mean =
      SummarizeReducerBytes(balanced.round_metrics.front().reducer_bytes)
          .max_to_mean_reducer_bytes;
  row.improvement = row.balanced_max_to_mean > 0
                        ? row.hash_max_to_mean / row.balanced_max_to_mean
                        : 0.0;
  row.identical = bench::ResultChecksum(balanced.patterns) ==
                      bench::ResultChecksum(hash_run.patterns) &&
                  balanced.patterns == hash_run.patterns;
  g_rows.push_back(row);

  if (!g_config.json) {
    std::printf(
        "%-22s R=%-3d pivots=%-5zu splits=%-2zu shuffle=%-9llu "
        "max/mean: hash %6.2f -> plan %5.2f -> measured %5.2f  (%4.1fx)  %s\n",
        row.name.c_str(), row.reducers, row.num_pivots, row.num_splits,
        static_cast<unsigned long long>(row.shuffle_bytes),
        row.hash_max_to_mean, row.planned_max_to_mean,
        row.balanced_max_to_mean, row.improvement,
        row.identical ? "identical" : "MISMATCH");
  }
}

void PrintJson() {
  std::printf("{\n  \"benchmarks\": [\n");
  for (size_t i = 0; i < g_rows.size(); ++i) {
    const BalanceRow& r = g_rows[i];
    std::printf(
        "    {\"name\": \"%s\", \"reducers\": %d, \"num_pivots\": %zu, "
        "\"num_splits\": %zu, \"shuffle_bytes\": %llu, "
        "\"hash_max_to_mean\": %.3f, \"planned_max_to_mean\": %.3f, "
        "\"balanced_max_to_mean\": %.3f, \"improvement\": %.3f, "
        "\"identical\": %s, \"hash_seconds\": %.4f, "
        "\"balanced_seconds\": %.4f}%s\n",
        r.name.c_str(), r.reducers, r.num_pivots, r.num_splits,
        static_cast<unsigned long long>(r.shuffle_bytes), r.hash_max_to_mean,
        r.planned_max_to_mean, r.balanced_max_to_mean, r.improvement,
        r.identical ? "true" : "false", r.hash_seconds, r.balanced_seconds,
        i + 1 < g_rows.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

}  // namespace
}  // namespace dseq

int main(int argc, char** argv) {
  using namespace dseq;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      g_config.json = true;
    } else if (std::strcmp(argv[i], "--tiny") == 0) {
      g_config.tiny = true;
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      g_config.workers = std::atoi(argv[++i]);
      if (g_config.workers <= 0) g_config.workers = 1;
    } else {
      std::fprintf(stderr,
                   "usage: bench_partition_balance [--json] [--tiny] "
                   "[--workers N]\n");
      return 2;
    }
  }

  bool tiny = g_config.tiny;
  const char* kSingleGen = ".*(.^).*";       // single generalized items: the
                                             // head pivot takes everything
  const char* kBigram = ".*(.^)[.{0,1}(.^)]{1,2}.*";  // mixed n-grams

  SkewedZipfOptions zipf;
  zipf.seed = 101;
  zipf.num_items = tiny ? 60 : 150;
  zipf.num_groups = 8;
  zipf.num_sequences = tiny ? 200 : 1'000;
  zipf.min_length = 4;
  zipf.max_length = tiny ? 10 : 14;

  zipf.zipf_exponent = 1.0;
  RunCase("zipf1.0_single_gen", zipf, kSingleGen, 2);
  zipf.zipf_exponent = 1.3;
  RunCase("zipf1.3_single_gen", zipf, kSingleGen, 2);
  zipf.zipf_exponent = 1.3;
  RunCase("zipf1.3_bigram", zipf, kBigram, tiny ? 4 : 8);

  // Coarse hierarchies: one or two category parents cover the whole
  // vocabulary, so a category pivot's partition receives an untrimmed copy
  // of nearly every sequence (no position can be rewritten away when every
  // item generalizes to the pivot) — the single-heavy-pivot worst case of
  // Sec. III-B.
  // Longer sequences widen the gap: category records are untrimmed (they
  // grow with sequence length) while leaf records stay short.
  SkewedZipfOptions coarse = zipf;
  coarse.num_groups = 2;
  coarse.zipf_exponent = 1.5;
  coarse.max_length = tiny ? 20 : 28;
  RunCase("zipf1.5_groups2", coarse, kSingleGen, 2);
  coarse.num_groups = 1;
  RunCase("zipf1.5_groups1", coarse, kSingleGen, 2);
  // The headline case: at 16 reducers the ~25% category pivot pins one
  // hash-chosen reducer at ~4x the mean; the plan splits it and packs the
  // tail, landing at ~1.
  RunCase("zipf1.5_groups1_r16", coarse, kSingleGen, 2, 16);

  if (g_config.json) PrintJson();

  bool all_identical = true;
  for (const auto& row : g_rows) all_identical &= row.identical;
  return all_identical ? 0 : 1;
}
