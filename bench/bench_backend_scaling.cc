// Backend scaling benchmark: threads (local) vs. forked worker processes
// (proc) running the same D-SEQ rounds.
//
// For each workload and worker count the harness mines once per backend and
// reports both wall times and the process-transport overhead ratio. The
// backends must agree byte-for-byte — identical patterns and identical raw
// shuffle volume (the proc backend's determinism contract,
// src/rpc/proc_backend.h); the binary exits non-zero otherwise, so CI runs
// double as an equivalence check.
//
// Usage: bench_backend_scaling [--json] [--tiny] [--workers N,N,...]
//   --json     machine-readable output (CI archives it as BENCH_backend.json)
//   --tiny     CI-sized databases (fast smoke run)
//   --workers  comma-separated worker counts to sweep (default 1,2,4)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common/bench_util.h"
#include "src/datagen/skewed_zipf.h"
#include "src/datagen/text_corpus.h"
#include "src/dist/dseq_miner.h"
#include "src/obs/trace.h"
#include "src/fst/compiler.h"

namespace dseq {
namespace {

struct Config {
  bool json = false;
  bool tiny = false;
  std::vector<int> workers = {1, 2, 4};
};
Config g_config;

struct BackendRow {
  std::string name;
  int workers = 0;
  uint64_t shuffle_bytes = 0;
  uint64_t num_patterns = 0;
  double local_seconds = 0.0;
  double proc_seconds = 0.0;
  double proc_overhead = 0.0;  // proc / local wall time
  bool identical = false;
};

std::vector<BackendRow> g_rows;

double Now() {
  return std::chrono::duration<double>(obs::Now().time_since_epoch()).count();
}

void RunCase(const std::string& name, const SequenceDatabase& db,
             const std::string& pattern, uint64_t sigma) {
  Fst fst = CompileFst(pattern, db.dict);
  for (int workers : g_config.workers) {
    DSeqOptions options;
    options.sigma = sigma;
    options.num_map_workers = workers;
    options.num_reduce_workers = workers;

    double start = Now();
    DistributedResult local = MineDSeq(db.sequences, fst, db.dict, options);
    double local_seconds = Now() - start;

    options.backend = DataflowBackend::kProc;
    start = Now();
    DistributedResult proc = MineDSeq(db.sequences, fst, db.dict, options);
    double proc_seconds = Now() - start;

    BackendRow row;
    row.name = name;
    row.workers = workers;
    row.shuffle_bytes = local.metrics.shuffle_bytes;
    row.num_patterns = local.patterns.size();
    row.local_seconds = local_seconds;
    row.proc_seconds = proc_seconds;
    row.proc_overhead = local_seconds > 0 ? proc_seconds / local_seconds : 0.0;
    row.identical =
        local.patterns == proc.patterns &&
        local.metrics.shuffle_bytes == proc.metrics.shuffle_bytes &&
        local.metrics.shuffle_records == proc.metrics.shuffle_records &&
        local.metrics.reducer_bytes == proc.metrics.reducer_bytes;
    g_rows.push_back(row);

    if (!g_config.json) {
      std::printf(
          "%-24s W=%-2d shuffle=%-9llu patterns=%-6llu local %6.3fs -> proc "
          "%6.3fs (%4.2fx)  %s\n",
          row.name.c_str(), row.workers,
          static_cast<unsigned long long>(row.shuffle_bytes),
          static_cast<unsigned long long>(row.num_patterns), row.local_seconds,
          row.proc_seconds, row.proc_overhead,
          row.identical ? "identical" : "MISMATCH");
    }
  }
}

void PrintJson() {
  std::printf("{\n  \"benchmarks\": [\n");
  for (size_t i = 0; i < g_rows.size(); ++i) {
    const BackendRow& r = g_rows[i];
    std::printf(
        "    {\"name\": \"%s\", \"workers\": %d, \"shuffle_bytes\": %llu, "
        "\"num_patterns\": %llu, \"local_seconds\": %.4f, "
        "\"proc_seconds\": %.4f, \"proc_overhead\": %.3f, "
        "\"identical\": %s}%s\n",
        r.name.c_str(), r.workers,
        static_cast<unsigned long long>(r.shuffle_bytes),
        static_cast<unsigned long long>(r.num_patterns), r.local_seconds,
        r.proc_seconds, r.proc_overhead, r.identical ? "true" : "false",
        i + 1 < g_rows.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

}  // namespace
}  // namespace dseq

int main(int argc, char** argv) {
  using namespace dseq;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      g_config.json = true;
    } else if (std::strcmp(argv[i], "--tiny") == 0) {
      g_config.tiny = true;
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      g_config.workers.clear();
      for (const char* p = argv[++i]; *p != '\0';) {
        int w = std::atoi(p);
        if (w > 0) g_config.workers.push_back(w);
        while (*p != '\0' && *p != ',') ++p;
        if (*p == ',') ++p;
      }
      if (g_config.workers.empty()) g_config.workers = {1, 2, 4};
    } else {
      std::fprintf(stderr,
                   "usage: bench_backend_scaling [--json] [--tiny] "
                   "[--workers N,N,...]\n");
      return 2;
    }
  }

  bool tiny = g_config.tiny;

  // Text corpus: the shuffle-heavy generalized n-gram workload.
  TextCorpusOptions text;
  text.num_sentences = tiny ? 300 : 2'000;
  text.lemmas_per_pos = tiny ? 80 : 300;
  text.num_entities = tiny ? 40 : 200;
  SequenceDatabase corpus = GenerateTextCorpus(text);
  RunCase("text_bigram", corpus, ".* (.^){2} .*", tiny ? 5 : 10);

  // Skewed Zipf: one heavy pivot dominates one reducer column, so the proc
  // backend's per-task segment shipping sees its adversarial shape.
  SkewedZipfOptions zipf;
  zipf.seed = 77;
  zipf.num_items = tiny ? 60 : 150;
  zipf.num_groups = 2;
  zipf.num_sequences = tiny ? 200 : 1'000;
  zipf.min_length = 4;
  zipf.max_length = tiny ? 12 : 20;
  zipf.zipf_exponent = 1.3;
  SequenceDatabase skewed = GenerateSkewedZipf(zipf);
  RunCase("zipf_single_gen", skewed, ".*(.^).*", 2);

  if (g_config.json) PrintJson();

  bool all_identical = true;
  for (const auto& row : g_rows) all_identical &= row.identical;
  if (!all_identical) {
    std::fprintf(stderr,
                 "bench_backend_scaling: proc backend diverged from local!\n");
  }
  return all_identical ? 0 : 1;
}
