// Reproduces paper Fig. 9: performance on flexible subsequence constraints.
//
//  9a: total time of NAIVE / SEMI-NAIVE / D-SEQ / D-CAND on NYT (N1–N5)
//  9b: same on AMZN (A1–A4); the naive methods OOM on A1
//  9c: shuffle sizes for A1 and A4
//
// Expected shape: D-SEQ and D-CAND outperform the naive baselines by a
// growing margin as CSPI grows (up to ~50x in the paper); both
// representations shuffle far less data than the naive candidate shipping.
#include <cstdio>

#include "bench/common/bench_util.h"

namespace {

using namespace dseq;
using namespace dseq::bench;

// A shuffle budget standing in for the paper's YARN container limit.
constexpr uint64_t kShuffleBudget = 1ULL << 30;  // 1 GB

std::vector<RunRow> RunAll(const SequenceDatabase& db, const Constraint& c) {
  Fst fst = CompileFst(c.pattern, db.dict);
  std::vector<RunRow> rows;
  rows.push_back(RunNaive(db, fst, c.sigma, /*semi_naive=*/false,
                          kShuffleBudget));
  rows.push_back(RunNaive(db, fst, c.sigma, /*semi_naive=*/true,
                          kShuffleBudget));
  // Naive candidate enumeration on a single pathological sequence stands in
  // for the paper's container OOM (A1 on AMZN).
  DSeqOptions dseq_options;
  dseq_options.sigma = c.sigma;
  dseq_options.shuffle_budget_bytes = kShuffleBudget;
  rows.push_back(RunDSeq(db, fst, dseq_options));
  DCandOptions dcand_options;
  dcand_options.sigma = c.sigma;
  dcand_options.shuffle_budget_bytes = kShuffleBudget;
  rows.push_back(RunDCand(db, fst, dcand_options));
  CheckAgreement(rows, c.name);
  return rows;
}

void Section(const char* title, const SequenceDatabase& db,
             const std::vector<Constraint>& constraints) {
  PrintHeader(title, {"constraint", "Naive", "SemiNaive", "D-SEQ", "D-CAND",
                      "# frequent"});
  for (const Constraint& c : constraints) {
    std::vector<RunRow> rows = RunAll(db, c);
    size_t frequent = 0;
    for (const RunRow& r : rows) {
      if (!r.oom) frequent = r.num_patterns;
    }
    PrintRow({c.name, FormatRun(rows[0]), FormatRun(rows[1]),
              FormatRun(rows[2]), FormatRun(rows[3]),
              std::to_string(frequent)});
  }
}

}  // namespace

int main() {
  Section("Fig. 9a: flexible constraints on NYT' (total time)", Nyt(),
          {NytConstraint(1), NytConstraint(2), NytConstraint(3),
           NytConstraint(4), NytConstraint(5)});

  Section("Fig. 9b: flexible constraints on AMZN' (total time)", Amzn(),
          {AmznConstraint(1), AmznConstraint(2), AmznConstraint(3),
           AmznConstraint(4)});

  // Fig. 9c: shuffle sizes for A1 and A4.
  PrintHeader("Fig. 9c: shuffle size on AMZN'",
              {"constraint", "Naive", "SemiNaive", "D-SEQ", "D-CAND"});
  for (int i : {1, 4}) {
    Constraint c = AmznConstraint(i);
    std::vector<RunRow> rows = RunAll(Amzn(), c);
    auto cell = [](const RunRow& r) {
      return r.oom ? std::string("n/a (OOM)") : FormatBytes(r.shuffle_bytes);
    };
    PrintRow({c.name, cell(rows[0]), cell(rows[1]), cell(rows[2]),
              cell(rows[3])});
  }
  std::printf(
      "\nExpected shape (paper): naive methods shuffle up to 100x more than "
      "D-SEQ/D-CAND; the D-CAND\nNFA representation is almost as concise as "
      "D-SEQ's rewritten sequences.\n");
  return 0;
}
