// Reproduces paper Table IV: statistics on candidate subsequences.
//
// For each constraint: the fraction of input sequences that produce at
// least one candidate, the total number of candidates, and the mean/median
// candidates per matched input sequence (CSPI). Loose constraints are
// estimated from a random sample (as the paper does for T1(400,5)).
#include <algorithm>
#include <cstdio>
#include <random>

#include "bench/common/bench_util.h"
#include "src/core/candidates.h"
#include "src/core/grid.h"

namespace {

using namespace dseq;
using namespace dseq::bench;

void CspiRow(const std::string& name, const SequenceDatabase& db,
             const std::string& pattern, uint64_t sigma,
             double sample_fraction) {
  Fst fst = CompileFst(pattern, db.dict);
  GridOptions options;
  options.prune_sigma = sigma;

  std::mt19937_64 rng(4711);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  size_t sampled = 0;
  size_t matched = 0;
  double total_candidates = 0;
  std::vector<double> cspi;
  bool capped = false;
  constexpr size_t kPerSequenceBudget = 2'000'000;

  for (const Sequence& T : db.sequences) {
    if (sample_fraction < 1.0 && unit(rng) > sample_fraction) continue;
    ++sampled;
    StateGrid grid = StateGrid::Build(T, fst, db.dict, options);
    if (!grid.HasAcceptingRun()) continue;
    ++matched;
    std::vector<Sequence> candidates;
    if (!EnumerateCandidates(grid, kPerSequenceBudget, &candidates)) {
      capped = true;
    }
    total_candidates += candidates.size();
    cspi.push_back(candidates.size());
  }

  double scale_up = sampled == 0 ? 0.0
                                 : static_cast<double>(db.size()) / sampled;
  double matched_pct = sampled == 0 ? 0.0 : 100.0 * matched / sampled;
  double mean = cspi.empty() ? 0.0 : total_candidates / cspi.size();
  double median = 0.0;
  if (!cspi.empty()) {
    std::nth_element(cspi.begin(), cspi.begin() + cspi.size() / 2,
                     cspi.end());
    median = cspi[cspi.size() / 2];
  }

  char buf[4][64];
  std::snprintf(buf[0], sizeof(buf[0]), "%.1f", matched_pct);
  std::snprintf(buf[1], sizeof(buf[1]), "%.2fM%s",
                total_candidates * scale_up / 1e6, capped ? "*" : "");
  std::snprintf(buf[2], sizeof(buf[2]), "%.1f", mean);
  std::snprintf(buf[3], sizeof(buf[3]), "%.0f", median);
  PrintRow({name, buf[0], buf[1], buf[2], buf[3]});
}

}  // namespace

int main() {
  PrintHeader("Table IV: candidate subsequence statistics",
              {"constraint", "matched %", "# cands", "CSPI mean",
               "CSPI med"});

  for (int i = 1; i <= 5; ++i) {
    Constraint c = NytConstraint(i);
    CspiRow(c.name + ", NYT'", Nyt(), c.pattern, c.sigma, 1.0);
  }
  for (int i = 1; i <= 4; ++i) {
    Constraint c = AmznConstraint(i);
    CspiRow(c.name + ", AMZN'", Amzn(), c.pattern, c.sigma, 1.0);
  }
  {
    uint64_t sigma = std::max<uint64_t>(2, 100 * GetConfig().scale);
    CspiRow("T3(" + std::to_string(sigma) + ",1,5), AMZN-F'", AmznF(),
            T3Pattern(1, 5), sigma, 0.2);
    uint64_t sigma2 = std::max<uint64_t>(2, 5 * GetConfig().scale);
    CspiRow("T3(" + std::to_string(sigma2) + ",1,5), AMZN-F'", AmznF(),
            T3Pattern(1, 5), sigma2, 0.2);
  }
  {
    uint64_t sigma = std::max<uint64_t>(2, 100 * GetConfig().scale);
    CspiRow("T1(" + std::to_string(sigma) + ",5), AMZN'", Amzn(),
            T1Pattern(5), sigma, 0.02);
    uint64_t sigma2 = std::max<uint64_t>(2, 20 * GetConfig().scale);
    CspiRow("T1(" + std::to_string(sigma2) + ",5), AMZN'", Amzn(),
            T1Pattern(5), sigma2, 0.02);
  }

  std::printf(
      "\n(* = per-sequence enumeration capped; row is a lower-bound "
      "estimate. Sampled rows are scaled up,\nmirroring the paper's 0.1%% "
      "sample for T1(400,5).)\nExpected shape (paper): N1-N3 selective "
      "(CSPI ~1-10), N4/N5 ~100, A-constraints skewed\n(mean >> median), "
      "T3/T1 loose (CSPI 10^4+).\n");
  return 0;
}
