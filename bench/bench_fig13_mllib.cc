// Reproduces paper Fig. 13: the MLlib setting — T1(σ,5) on AMZN without
// hierarchy (max length 5, arbitrary gaps), σ sweep.
//
// Expected shape: D-SEQ is competitive with the specialized miners and the
// PrefixSpan baseline degrades for small σ; D-CAND runs out of memory while
// constructing NFAs — arbitrary gaps allow the maximum possible number of
// accepting runs, the worst case for candidate representation.
#include <cstdio>

#include "bench/common/bench_util.h"

int main() {
  using namespace dseq;
  using namespace dseq::bench;
  const SequenceDatabase& db = Amzn();
  double scale = GetConfig().scale;

  PrintHeader("Fig. 13: MLlib setting, T1(sigma,5) on AMZN' (no hierarchy)",
              {"sigma", "MLlib-PS", "LASH", "D-SEQ", "D-CAND",
               "# frequent"});

  Fst fst = CompileFst(T1Pattern(5), db.dict);
  for (uint64_t base : {200, 100, 50, 20, 10}) {
    uint64_t sigma =
        std::max<uint64_t>(2, static_cast<uint64_t>(base * scale));

    PrefixSpanOptions ps_options;
    ps_options.sigma = sigma;
    ps_options.lambda = 5;
    RunRow mllib = RunPrefixSpan(db, ps_options);

    // LASH in "arbitrary gap" mode: unbounded gap, min length 1.
    GapMinerOptions lash_options;
    lash_options.sigma = sigma;
    lash_options.gamma = 1'000'000;
    lash_options.lambda = 5;
    lash_options.min_length = 1;
    lash_options.use_hierarchy = false;
    RunRow lash = RunGapMiner(db, lash_options);

    DSeqOptions dseq_options;
    dseq_options.sigma = sigma;
    RunRow dseq = RunDSeq(db, fst, dseq_options);

    DCandOptions dcand_options;
    dcand_options.sigma = sigma;
    // Budget stands in for the paper's per-container memory, scaled to the
    // substitute dataset: D-CAND must enumerate every accepting run, and
    // with arbitrary gaps the run count grows combinatorially in basket
    // length (C(n, <=5) embeddings) — the paper's OOM mechanism.
    dcand_options.max_runs_per_sequence = 10'000;
    dcand_options.max_trie_states_per_sequence = 200'000;
    RunRow dcand = RunDCand(db, fst, dcand_options);

    CheckAgreement({mllib, lash, dseq, dcand},
                   "T1(" + std::to_string(sigma) + ",5)");
    size_t frequent = mllib.oom ? dseq.num_patterns : mllib.num_patterns;
    PrintRow({std::to_string(sigma), FormatRun(mllib), FormatRun(lash),
              FormatRun(dseq), FormatRun(dcand), std::to_string(frequent)});
  }
  std::printf(
      "\nExpected shape (paper Fig. 13): specialized miners fastest, D-SEQ "
      "competitive, D-CAND OOMs\n(the MLlib setting is the worst case for "
      "candidate representation).\n");
  return 0;
}
