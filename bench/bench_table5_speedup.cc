// Reproduces paper Table V: speed-up of the distributed algorithms over
// sequential DESQ-DFS execution.
//
// DESQ-DFS runs single-threaded; D-SEQ and D-CAND use all configured
// workers. For the CW50 rows the sequential miner runs under a memory
// budget scaled to a single machine — the paper's DESQ-DFS runs out of
// memory on CW50 with 124/204 GB of heap, which the budget reproduces.
//
// Expected shape: near-linear speed-ups for long-running constraints
// (constant setup amortized), a standout D-CAND speed-up on N4 thanks to
// NFA aggregation, and OOM for sequential execution on CW50.
#include <cstdio>

#include "bench/common/bench_util.h"

namespace {

using namespace dseq;
using namespace dseq::bench;

void Row(const std::string& name, const SequenceDatabase& db,
         const std::string& pattern, uint64_t sigma,
         uint64_t sequential_budget) {
  Fst fst = CompileFst(pattern, db.dict);
  RunRow sequential =
      RunDesqDfsSequential(db, fst, sigma, sequential_budget);
  DSeqOptions dseq_options;
  dseq_options.sigma = sigma;
  RunRow dseq = RunDSeq(db, fst, dseq_options);
  DCandOptions dcand_options;
  dcand_options.sigma = sigma;
  RunRow dcand = RunDCand(db, fst, dcand_options);
  CheckAgreement({sequential, dseq, dcand}, name);

  auto speedup = [&](const RunRow& r) -> std::string {
    if (r.oom) return "n/a (OOM)";
    if (sequential.oom) return FormatSeconds(r.total_s) + " (n/a)";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s (%.1fx)",
                  FormatSeconds(r.total_s).c_str(),
                  sequential.total_s / r.total_s);
    return buf;
  };
  PrintRow({name, FormatRun(sequential), speedup(dseq), speedup(dcand)});
}

}  // namespace

int main() {
  double scale = GetConfig().scale;
  auto sig = [&](uint64_t s) {
    return std::max<uint64_t>(2, static_cast<uint64_t>(s * scale));
  };

  PrintHeader("Table V: speed-up over sequential execution",
              {"constraint", "DESQ-DFS", "D-SEQ", "D-CAND"});

  Row("N4, NYT'", Nyt(), NytConstraint(4).pattern, NytConstraint(4).sigma, 0);
  Row("N5, NYT'", Nyt(), NytConstraint(5).pattern, NytConstraint(5).sigma, 0);
  Row("T3(" + std::to_string(sig(5)) + ",1,5), AMZN-F'", AmznF(),
      T3Pattern(1, 5), sig(5), 0);
  Row("T3(" + std::to_string(sig(1000)) + ",1,5), AMZN-F'", AmznF(),
      T3Pattern(1, 5), sig(1000), 0);
  Row("T3(" + std::to_string(sig(100)) + ",3,5), AMZN-F'", AmznF(),
      T3Pattern(3, 5), sig(100), 0);
  // CW50 rows: sequential execution limited to a single machine's memory
  // (budget in live grid edges, scaled to the dataset substitute).
  uint64_t single_machine_budget =
      static_cast<uint64_t>(4'000'000 * GetConfig().scale);
  Row("T2(" + std::to_string(sig(100)) + ",0,5), CW50'", Cw50(),
      T2Pattern(0, 5), sig(100), single_machine_budget);
  Row("T2(" + std::to_string(sig(250)) + ",0,5), CW50'", Cw50(),
      T2Pattern(0, 5), sig(250), single_machine_budget);
  return 0;
}
