// Low-overhead tracing: RAII spans over per-thread lock-free buffers,
// merged across processes into one Chrome-trace-event timeline.
//
// The paper's claims are about where time goes — map vs. shuffle vs.
// reduce, skew, spill and RPC overhead — and flat end-of-round counters
// (DataflowMetrics) can't show stragglers or stalls. This layer records
// *spans*: named, categorized [start, end) intervals on the process-wide
// monotonic clock, tagged with the emitting thread's ordinal, the process
// ordinal (coordinator = -1, proc workers = their slot), and the dataflow
// round. A whole run exports as Chrome trace-event JSON
// (`dseq_cli --trace-out FILE`) and opens in Perfetto as one timeline.
//
// Overhead doctrine — a disabled run must cost nothing measurable:
//
//   - DSEQ_TRACE_SPAN compiles to one relaxed load of a process-global
//     flag; when the flag is off the scope object is inert (no clock
//     read, no allocation, no store).
//   - Per-thread buffers allocate lazily, on a thread's first span.
//   - Emission is lock-free: each thread appends to its own chunked
//     buffer and publishes the count with a release store; flushers read
//     the count with an acquire load, so concurrent flush never blocks
//     or tears an emitting thread. Only flush/registry bookkeeping takes
//     a (dseq::Mutex, TSA-annotated) lock.
//
// Clock discipline: this header is the only sanctioned caller of
// std::chrono::steady_clock::now() (lint rule `raw-clock-call`). All
// engine/bench timing goes through obs::Now()/obs::NowNs() so every
// recorded timestamp lives on one alignable clock. CLOCK_MONOTONIC is
// system-wide on Linux, and proc workers are forked from the
// coordinator, so worker and coordinator timestamps are directly
// comparable — cross-process timeline merge needs no clock offset.
#ifndef DSEQ_OBS_TRACE_H_
#define DSEQ_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dseq {
namespace obs {

// ---------------------------------------------------------------------------
// The trace clock.

/// The repo's monotonic clock (the only raw steady_clock::now() call site).
std::chrono::steady_clock::time_point Now();

/// Nanoseconds since the steady-clock epoch (process start, roughly).
/// Monotonic and shared across forked processes.
int64_t NowNs();

/// Seconds elapsed since `start` — the common timing idiom, centralized.
inline double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(Now() -
                                                                   start)
      .count();
}

/// Nanoseconds-since-epoch of an already-taken time point, for emitting
/// retrospective spans whose start was captured as a time_point.
inline int64_t ToNs(std::chrono::steady_clock::time_point tp) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             tp.time_since_epoch())
      .count();
}

// ---------------------------------------------------------------------------
// Process-global trace state.

/// Turns span recording and hot-path metric observation on or off.
/// Set it *before* forking proc workers so children inherit it.
void SetEnabled(bool enabled);

/// One relaxed load; the branch every instrumentation site is gated on.
bool Enabled();

/// The emitting process's ordinal: -1 for the coordinator / local runs
/// (default), the worker slot for proc workers (set in WorkerBody).
void SetProcessOrdinal(int ordinal);
int ProcessOrdinal();

/// The dataflow round stamped onto subsequently emitted spans. Set by the
/// round drivers (DataflowJob::Run, RunMapReduce, proc worker task entry).
void SetCurrentRound(int round);
int CurrentRound();

/// Call once in a freshly forked worker process (WorkerBody does): stamps
/// the process ordinal, discards span state inherited from the parent's
/// address space, and re-baselines metric deltas — so the worker's wire
/// snapshots ship only its own activity, never a copy of the parent's.
void BeginForkedProcess(int ordinal);

// ---------------------------------------------------------------------------
// Spans.

/// One collected span, after draining a thread buffer or decoding a wire
/// snapshot. Name/category are copies — safe to hold across processes.
struct TraceEvent {
  std::string name;
  std::string category;
  int64_t start_ns = 0;
  int64_t dur_ns = 0;
  int process_ordinal = -1;
  int thread_ordinal = 0;
  int round = -1;
};

/// Emits a closed span retrospectively (e.g. the coordinator's
/// dispatch→done task spans or a heartbeat's ping→pong RTT, whose
/// endpoints are observed at different poll-loop iterations). No-op when
/// tracing is disabled. `category` and `name` must be string literals
/// (or otherwise outlive the process) — emission stores the pointers.
void EmitSpan(const char* category, const char* name, int64_t start_ns,
              int64_t end_ns);

/// RAII span: records [construction, destruction) on the emitting thread's
/// buffer. Inert when tracing is disabled at construction time.
class SpanScope {
 public:
  SpanScope(const char* category, const char* name)
      : category_(category), name_(name), start_ns_(Enabled() ? NowNs() : -1) {}
  ~SpanScope() {
    if (start_ns_ >= 0) EmitSpan(category_, name_, start_ns_, NowNs());
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  const char* category_;
  const char* name_;
  int64_t start_ns_;
};

#define DSEQ_TRACE_CONCAT_INNER(a, b) a##b
#define DSEQ_TRACE_CONCAT(a, b) DSEQ_TRACE_CONCAT_INNER(a, b)
/// `DSEQ_TRACE_SPAN("engine", "map_shard");` — scoped span over the rest of
/// the enclosing block. Category/name must be string literals.
#define DSEQ_TRACE_SPAN(category, name)             \
  ::dseq::obs::SpanScope DSEQ_TRACE_CONCAT(         \
      dseq_trace_span_, __COUNTER__)(category, name)

// ---------------------------------------------------------------------------
// Collection, cross-process merge, export.

/// Drains every thread's span buffer into the process-global trace sink
/// (each span is collected exactly once across flushes). Safe to call
/// while other threads keep emitting — concurrently emitted spans land in
/// this flush or the next, never torn, never lost.
void FlushThreadBuffers();

/// Flushes, then returns a copy of everything the sink holds (local spans
/// plus any ingested worker snapshots). Does not clear the sink.
std::vector<TraceEvent> SnapshotTrace();

/// Flushes, then moves the sink's events out (a proc worker's pre-kMapDone
/// flush: ship the delta, keep nothing).
std::vector<TraceEvent> TakeTrace();

/// Encodes a worker-side snapshot for a kTrace frame: drains this
/// process's spans (TakeTrace) and the metric registry's deltas since the
/// previous encode (see metrics.h). Repeated calls ship increments.
std::string EncodeWireSnapshot();

/// Coordinator side: decodes a kTrace payload, appends its spans to the
/// sink and merges its metric deltas into the registry. Spans that carry
/// no process ordinal are stamped with `fallback_process_ordinal`.
/// Returns false (ingesting nothing further) on a malformed payload.
bool IngestWireSnapshot(std::string_view payload, int fallback_process_ordinal);

/// Serializes the full merged timeline as Chrome trace-event JSON
/// ({"traceEvents":[...]}: "X" duration events in microseconds plus
/// process_name/thread_name "M" metadata), loadable in Perfetto and
/// chrome://tracing. Flushes first.
std::string ChromeTraceJson();

/// Test hook: flushes and discards all pending spans and sink contents,
/// and resets the round/ordinal stamps (the enabled flag is left alone).
void ResetTraceForTest();

}  // namespace obs
}  // namespace dseq

#endif  // DSEQ_OBS_TRACE_H_
