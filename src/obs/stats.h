// One stats schema for every backend.
//
// `dseq_cli --stats` used to assemble its report from ad-hoc printf
// helpers that silently skipped fields (proc-only counters printed
// nothing under the local backend, spill counters vanished for
// non-spilling runs), so two runs could not be diffed line by line.
// These renderers emit a *fixed, ordered field set*: every field appears
// in every run, fields that cannot apply to the active backend are
// printed as an explicit `n/a (...)` marker, and the same data serializes
// to JSON for `--metrics-json` and the bench harness.
#ifndef DSEQ_OBS_STATS_H_
#define DSEQ_OBS_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/dataflow/engine.h"

namespace dseq {
namespace obs {

/// Renders one round's (or one run's aggregate) metrics as the fixed
/// three-line schema, `prefix` naming the scope ("run", "round 1", ...):
///
///   <prefix>: map Xs, reduce Xs, shuffle N bytes (N records),
///             compressed N bytes, reducer max/mean X.XX
///   <prefix> spill: N runs, N bytes written, N merge passes
///   <prefix> proc: N task attempts (N retries), N stall kills, N workers
///             respawned, N segment chunks, N parked tails
///
/// Under the local backend the proc line renders as
/// `<prefix> proc: n/a (local backend)`; a reducer-balance ratio without
/// data renders as `n/a`. Identical field set either way.
std::string RenderStats(const std::string& prefix, const DataflowMetrics& m,
                        bool proc_backend);

/// The chained-run report: one RenderStats block per round, the aggregate
/// block (prefix "total"), and the input-cache line (storage reads vs.
/// round-1 cache hits — 0/0 prints as 0/0, never vanishes).
std::string RenderChainedStats(const std::vector<DataflowMetrics>& rounds,
                               const DataflowMetrics& aggregate,
                               uint64_t input_storage_reads,
                               uint64_t input_cache_hits, bool proc_backend);

/// All DataflowMetrics fields as a JSON object (reducer_bytes included as
/// an array; `backend` records which backend produced them).
std::string DataflowMetricsJson(const DataflowMetrics& m, bool proc_backend);

/// The `--metrics-json` document: {"dataflow": <DataflowMetricsJson or
/// null when the algorithm has no dataflow metrics>, "registry":
/// <obs::RegistryJson()>}.
std::string MetricsReportJson(const DataflowMetrics* aggregate,
                              bool proc_backend);

}  // namespace obs
}  // namespace dseq

#endif  // DSEQ_OBS_STATS_H_
