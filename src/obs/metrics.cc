#include "src/obs/metrics.h"

#include <map>
#include <vector>

#include "src/util/sync.h"
#include "src/util/varint.h"

namespace dseq {
namespace obs {
namespace {

// One process-wide registry behind one annotated mutex. The maps only grow
// (metrics live for the process), so GetX can hand out references that stay
// valid after the lock drops; hot sites cache them in static locals anyway.
struct RegistryState {
  Mutex mu;
  std::map<std::string, Counter*> counters DSEQ_GUARDED_BY(mu);
  std::map<std::string, Gauge*> gauges DSEQ_GUARDED_BY(mu);
  std::map<std::string, Histogram*> histograms DSEQ_GUARDED_BY(mu);
};

RegistryState& State() {
  // Leaked singleton: metrics outlive every user, including static
  // destructors of other translation units.
  static RegistryState* s = new RegistryState;  // dseq-lint: allow(naked-new)
  return *s;
}

void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

void AppendLengthPrefixed(std::string* out, std::string_view s) {
  PutVarint(out, s.size());
  out->append(s.data(), s.size());
}

bool GetLengthPrefixed(std::string_view data, size_t* pos, std::string* s) {
  uint64_t len = 0;
  if (!GetVarint(data, pos, &len)) return false;
  if (data.size() - *pos < len) return false;
  s->assign(data.data() + *pos, len);
  *pos += len;
  return true;
}

}  // namespace

uint64_t Histogram::TotalCount() const {
  uint64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) total += BucketCount(i);
  return total;
}

Counter& GetCounter(const std::string& name) {
  RegistryState& s = State();
  MutexLock lock(s.mu);
  Counter*& slot = s.counters[name];
  // Leaked find-or-create: hot sites cache the returned reference in a
  // static local, so the object must live for the process.
  if (slot == nullptr) slot = new Counter;  // dseq-lint: allow(naked-new)
  return *slot;
}

Gauge& GetGauge(const std::string& name) {
  RegistryState& s = State();
  MutexLock lock(s.mu);
  Gauge*& slot = s.gauges[name];
  if (slot == nullptr) slot = new Gauge;  // dseq-lint: allow(naked-new)
  return *slot;
}

Histogram& GetHistogram(const std::string& name) {
  RegistryState& s = State();
  MutexLock lock(s.mu);
  Histogram*& slot = s.histograms[name];
  if (slot == nullptr) slot = new Histogram;  // dseq-lint: allow(naked-new)
  return *slot;
}

std::string RegistryJson() {
  RegistryState& s = State();
  MutexLock lock(s.mu);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : s.counters) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    AppendJsonEscaped(&out, name);
    out.append("\":");
    out.append(std::to_string(c->Value()));
  }
  out.append("},\"gauges\":{");
  first = true;
  for (const auto& [name, g] : s.gauges) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    AppendJsonEscaped(&out, name);
    out.append("\":");
    out.append(std::to_string(g->Value()));
  }
  out.append("},\"histograms\":{");
  first = true;
  for (const auto& [name, h] : s.histograms) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    AppendJsonEscaped(&out, name);
    out.append("\":{\"count\":");
    out.append(std::to_string(h->TotalCount()));
    out.append(",\"sum\":");
    out.append(std::to_string(h->Sum()));
    out.append(",\"buckets\":{");
    bool bfirst = true;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      uint64_t n = h->BucketCount(i);
      if (n == 0) continue;
      if (!bfirst) out.push_back(',');
      bfirst = false;
      // Key = the bucket's exclusive upper bound 2^i ("0" for the zero
      // bucket, "inf" for the saturated top bucket).
      out.push_back('"');
      if (i == 0) {
        out.append("0");
      } else if (i == Histogram::kBuckets - 1) {
        out.append("inf");
      } else {
        out.append(std::to_string(uint64_t{1} << i));
      }
      out.append("\":");
      out.append(std::to_string(n));
    }
    out.append("}}");
  }
  out.append("}}");
  return out;
}

void AppendRegistryDeltas(std::string* out) {
  RegistryState& s = State();
  MutexLock lock(s.mu);
  // Counters: name + delta since the shipped watermark.
  std::vector<std::pair<std::string_view, uint64_t>> counter_deltas;
  for (const auto& [name, c] : s.counters) {
    uint64_t now = c->Value();
    uint64_t base = c->wire_base_.load(std::memory_order_relaxed);
    if (now > base) {
      counter_deltas.emplace_back(name, now - base);
      c->wire_base_.store(now, std::memory_order_relaxed);
    }
  }
  PutVarint(out, counter_deltas.size());
  for (const auto& [name, delta] : counter_deltas) {
    AppendLengthPrefixed(out, name);
    PutVarint(out, delta);
  }
  // Gauges: absolute values (last writer wins on the coordinator — a gauge
  // is a sample, deltas would be meaningless).
  PutVarint(out, s.gauges.size());
  for (const auto& [name, g] : s.gauges) {
    AppendLengthPrefixed(out, name);
    PutVarint(out, ZigzagEncode(g->Value()));
  }
  // Histograms: sparse per-bucket deltas + sum delta.
  std::string hist_block;
  uint64_t num_hists = 0;
  for (const auto& [name, h] : s.histograms) {
    std::string buckets;
    uint64_t num_buckets = 0;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      uint64_t now = h->BucketCount(i);
      uint64_t base = h->bucket_wire_base_[i].load(std::memory_order_relaxed);
      if (now > base) {
        PutVarint(&buckets, static_cast<uint64_t>(i));
        PutVarint(&buckets, now - base);
        h->bucket_wire_base_[i].store(now, std::memory_order_relaxed);
        ++num_buckets;
      }
    }
    uint64_t sum_now = h->Sum();
    uint64_t sum_base = h->sum_wire_base_.load(std::memory_order_relaxed);
    uint64_t sum_delta = sum_now > sum_base ? sum_now - sum_base : 0;
    h->sum_wire_base_.store(sum_now, std::memory_order_relaxed);
    if (num_buckets == 0 && sum_delta == 0) continue;
    ++num_hists;
    AppendLengthPrefixed(&hist_block, name);
    PutVarint(&hist_block, num_buckets);
    hist_block.append(buckets);
    PutVarint(&hist_block, sum_delta);
  }
  PutVarint(out, num_hists);
  out->append(hist_block);
}

bool IngestRegistryDeltas(std::string_view data, size_t* pos) {
  uint64_t num_counters = 0;
  if (!GetVarint(data, pos, &num_counters)) return false;
  for (uint64_t i = 0; i < num_counters; ++i) {
    std::string name;
    uint64_t delta = 0;
    if (!GetLengthPrefixed(data, pos, &name)) return false;
    if (!GetVarint(data, pos, &delta)) return false;
    Counter& c = GetCounter(name);
    c.Add(delta);
    // Ingested foreign deltas count as already shipped: if this process
    // later encodes its own snapshot it must not re-ship them.
    c.wire_base_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t num_gauges = 0;
  if (!GetVarint(data, pos, &num_gauges)) return false;
  for (uint64_t i = 0; i < num_gauges; ++i) {
    std::string name;
    uint64_t zz = 0;
    if (!GetLengthPrefixed(data, pos, &name)) return false;
    if (!GetVarint(data, pos, &zz)) return false;
    GetGauge(name).Set(ZigzagDecode(zz));
  }
  uint64_t num_hists = 0;
  if (!GetVarint(data, pos, &num_hists)) return false;
  for (uint64_t i = 0; i < num_hists; ++i) {
    std::string name;
    uint64_t num_buckets = 0;
    if (!GetLengthPrefixed(data, pos, &name)) return false;
    if (!GetVarint(data, pos, &num_buckets)) return false;
    if (num_buckets > Histogram::kBuckets) return false;
    Histogram& h = GetHistogram(name);
    for (uint64_t b = 0; b < num_buckets; ++b) {
      uint64_t idx = 0;
      uint64_t delta = 0;
      if (!GetVarint(data, pos, &idx)) return false;
      if (!GetVarint(data, pos, &delta)) return false;
      if (idx >= Histogram::kBuckets) return false;
      h.buckets_[idx].fetch_add(delta, std::memory_order_relaxed);
      h.bucket_wire_base_[idx].fetch_add(delta, std::memory_order_relaxed);
    }
    uint64_t sum_delta = 0;
    if (!GetVarint(data, pos, &sum_delta)) return false;
    h.sum_.fetch_add(sum_delta, std::memory_order_relaxed);
    h.sum_wire_base_.fetch_add(sum_delta, std::memory_order_relaxed);
  }
  return true;
}

void RebaselineRegistryDeltas() {
  RegistryState& s = State();
  MutexLock lock(s.mu);
  for (const auto& [name, c] : s.counters) {
    c->wire_base_.store(c->Value(), std::memory_order_relaxed);
  }
  for (const auto& [name, h] : s.histograms) {
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      h->bucket_wire_base_[i].store(h->BucketCount(i),
                                    std::memory_order_relaxed);
    }
    h->sum_wire_base_.store(h->Sum(), std::memory_order_relaxed);
  }
}

void ResetMetricsForTest() {
  RegistryState& s = State();
  MutexLock lock(s.mu);
  for (const auto& [name, c] : s.counters) {
    c->value_.store(0, std::memory_order_relaxed);
    c->wire_base_.store(0, std::memory_order_relaxed);
  }
  for (const auto& [name, g] : s.gauges) g->Set(0);
  for (const auto& [name, h] : s.histograms) {
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      h->buckets_[i].store(0, std::memory_order_relaxed);
      h->bucket_wire_base_[i].store(0, std::memory_order_relaxed);
    }
    h->sum_.store(0, std::memory_order_relaxed);
    h->sum_wire_base_.store(0, std::memory_order_relaxed);
  }
}

}  // namespace obs
}  // namespace dseq
