#include "src/obs/stats.h"

#include <algorithm>
#include <cstdio>

#include "src/obs/metrics.h"

namespace dseq {
namespace obs {
namespace {

std::string FormatSeconds(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fs", seconds);
  return buf;
}

/// max/mean ratio over the per-reducer byte loads (empty reducers count);
/// negative when there is no data to summarize.
double ReducerMaxToMean(const std::vector<uint64_t>& reducer_bytes) {
  if (reducer_bytes.empty()) return -1.0;
  uint64_t total = 0;
  uint64_t max = 0;
  for (uint64_t b : reducer_bytes) {
    total += b;
    max = std::max(max, b);
  }
  if (total == 0) return -1.0;
  double mean = static_cast<double>(total) /
                static_cast<double>(reducer_bytes.size());
  return static_cast<double>(max) / mean;
}

void AppendUint(std::string* out, uint64_t v) {
  out->append(std::to_string(v));
}

}  // namespace

std::string RenderStats(const std::string& prefix, const DataflowMetrics& m,
                        bool proc_backend) {
  std::string out = prefix;
  out.append(": map ");
  out.append(FormatSeconds(m.map_seconds));
  out.append(", reduce ");
  out.append(FormatSeconds(m.reduce_seconds));
  out.append(", shuffle ");
  AppendUint(&out, m.shuffle_bytes);
  out.append(" bytes (");
  AppendUint(&out, m.shuffle_records);
  out.append(" records), compressed ");
  AppendUint(&out, m.shuffle_compressed_bytes);
  out.append(" bytes, reducer max/mean ");
  double ratio = ReducerMaxToMean(m.reducer_bytes);
  if (ratio < 0.0) {
    out.append("n/a");
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", ratio);
    out.append(buf);
  }
  out.append("\n");

  out.append(prefix);
  out.append(" spill: ");
  AppendUint(&out, m.spill_files);
  out.append(" runs, ");
  AppendUint(&out, m.spill_bytes_written);
  out.append(" bytes written, ");
  AppendUint(&out, m.spill_merge_passes);
  out.append(" merge passes\n");

  out.append(prefix);
  out.append(" proc: ");
  if (!proc_backend) {
    out.append("n/a (local backend)\n");
  } else {
    AppendUint(&out, m.proc_task_attempts);
    out.append(" task attempts (");
    AppendUint(&out, m.proc_task_retries);
    out.append(" retries), ");
    AppendUint(&out, m.proc_worker_kills);
    out.append(" stall kills, ");
    AppendUint(&out, m.proc_workers_respawned);
    out.append(" workers respawned, ");
    AppendUint(&out, m.proc_segment_chunks);
    out.append(" segment chunks, ");
    AppendUint(&out, m.proc_parked_tails);
    out.append(" parked tails\n");
  }
  return out;
}

std::string RenderChainedStats(const std::vector<DataflowMetrics>& rounds,
                               const DataflowMetrics& aggregate,
                               uint64_t input_storage_reads,
                               uint64_t input_cache_hits, bool proc_backend) {
  std::string out;
  for (size_t r = 0; r < rounds.size(); ++r) {
    out.append(
        RenderStats("round " + std::to_string(r + 1), rounds[r], proc_backend));
  }
  out.append(RenderStats("total", aggregate, proc_backend));
  out.append("input reads: ");
  AppendUint(&out, input_storage_reads);
  out.append(" from storage, ");
  AppendUint(&out, input_cache_hits);
  out.append(" from the round-1 cache\n");
  return out;
}

std::string DataflowMetricsJson(const DataflowMetrics& m, bool proc_backend) {
  std::string out = "{\"backend\":\"";
  out.append(proc_backend ? "proc" : "local");
  out.append("\"");
  auto field_u = [&out](const char* name, uint64_t v) {
    out.append(",\"");
    out.append(name);
    out.append("\":");
    out.append(std::to_string(v));
  };
  auto field_d = [&out](const char* name, double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), ",\"%s\":%.6f", name, v);
    out.append(buf);
  };
  field_d("map_seconds", m.map_seconds);
  field_d("reduce_seconds", m.reduce_seconds);
  field_u("shuffle_bytes", m.shuffle_bytes);
  field_u("shuffle_compressed_bytes", m.shuffle_compressed_bytes);
  field_u("shuffle_records", m.shuffle_records);
  field_u("map_output_records", m.map_output_records);
  field_u("spill_files", m.spill_files);
  field_u("spill_bytes_written", m.spill_bytes_written);
  field_u("spill_merge_passes", m.spill_merge_passes);
  field_u("input_storage_reads", m.input_storage_reads);
  field_u("input_cache_hits", m.input_cache_hits);
  field_u("proc_task_attempts", m.proc_task_attempts);
  field_u("proc_task_retries", m.proc_task_retries);
  field_u("proc_worker_kills", m.proc_worker_kills);
  field_u("proc_workers_respawned", m.proc_workers_respawned);
  field_u("proc_segment_chunks", m.proc_segment_chunks);
  field_u("proc_parked_tails", m.proc_parked_tails);
  out.append(",\"reducer_bytes\":[");
  for (size_t i = 0; i < m.reducer_bytes.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.append(std::to_string(m.reducer_bytes[i]));
  }
  out.append("]}");
  return out;
}

std::string MetricsReportJson(const DataflowMetrics* aggregate,
                              bool proc_backend) {
  std::string out = "{\"dataflow\":";
  if (aggregate == nullptr) {
    out.append("null");
  } else {
    out.append(DataflowMetricsJson(*aggregate, proc_backend));
  }
  out.append(",\"registry\":");
  out.append(RegistryJson());
  out.append("}");
  return out;
}

}  // namespace obs
}  // namespace dseq
