// Named metrics registry: counters, gauges, and log2-bucket histograms.
//
// Replaces ad-hoc counter plumbing for everything that is a *distribution*
// or a cross-cutting tally rather than a per-round dataflow metric
// (DataflowMetrics keeps the paper's per-round fields). Hot-path
// observation sites are gated on obs::Enabled() — a disabled run pays one
// relaxed load and a branch, nothing else; lookups by name happen once per
// site via a function-local static reference.
//
// Naming scheme: `subsystem.measurement[_unit]`, lowercase, dot-separated
// subsystem, e.g. `shuffle.record_bytes`, `spill.run_bytes`,
// `proc.segment_bytes`, `rpc.frame_send_ns`, `proc.heartbeat_rtt_ns`,
// `budget.charge_bytes`. Registered metrics live for the process (leaked
// singletons — the sanctioned pattern; ASan tracks real leaks).
//
// Cross-process: proc workers ship registry *deltas* (everything observed
// since the previous snapshot — fork copies the parent's values, so
// absolute values would double-count) inside kTrace frames; the
// coordinator merges them in, so `--metrics-json` reflects the whole run.
#ifndef DSEQ_OBS_METRICS_H_
#define DSEQ_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace dseq {
namespace obs {

void AppendRegistryDeltas(std::string* out);
bool IngestRegistryDeltas(std::string_view data, size_t* pos);
void RebaselineRegistryDeltas();
void ResetMetricsForTest();

/// Monotonically increasing tally.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    // Relaxed: pure tally — readers (JSON snapshot, wire encode) run after
    // the contributing threads joined or don't need exactness mid-flight.
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend void AppendRegistryDeltas(std::string* out);
  friend bool IngestRegistryDeltas(std::string_view data, size_t* pos);
  friend void RebaselineRegistryDeltas();
  friend void ResetMetricsForTest();
  std::atomic<uint64_t> value_{0};
  // Wire-delta baseline: value already shipped in a previous snapshot.
  // Relaxed atomic: only the snapshot-encoding thread touches it, the
  // atomic exists so concurrent Value() readers stay analyzer-clean.
  std::atomic<uint64_t> wire_base_{0};
};

/// Last-written instantaneous value.
class Gauge {
 public:
  void Set(int64_t v) {
    // Relaxed: a gauge is a monitoring sample, not a synchronization point.
    value_.store(v, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log2-bucket histogram over uint64 observations: bucket 0 counts zeros,
/// bucket k >= 1 counts values in [2^(k-1), 2^k). 64 buckets + a running
/// sum — fixed size, lock-free, mergeable across processes.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Observe(uint64_t v) {
    // Relaxed throughout: independent tallies; snapshot readers tolerate
    // a momentarily inconsistent (count, sum) pair by construction.
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  static int BucketIndex(uint64_t v) {
    if (v == 0) return 0;
    int log2 = 63 - __builtin_clzll(v);
    return log2 + 1 > kBuckets - 1 ? kBuckets - 1 : log2 + 1;
  }

  uint64_t BucketCount(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  uint64_t TotalCount() const;
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  friend void AppendRegistryDeltas(std::string* out);
  friend bool IngestRegistryDeltas(std::string_view data, size_t* pos);
  friend void RebaselineRegistryDeltas();
  friend void ResetMetricsForTest();
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> sum_{0};
  // Shipped-delta baselines (see Counter::wire_base_).
  std::atomic<uint64_t> bucket_wire_base_[kBuckets] = {};
  std::atomic<uint64_t> sum_wire_base_{0};
};

/// Find-or-create by name. The returned reference is valid for the process
/// lifetime; cache it in a function-local static at hot sites:
///
///   static obs::Histogram& h = obs::GetHistogram("shuffle.record_bytes");
///   if (obs::Enabled()) h.Observe(bytes);
Counter& GetCounter(const std::string& name);
Gauge& GetGauge(const std::string& name);
Histogram& GetHistogram(const std::string& name);

/// JSON snapshot of the whole registry, keys sorted:
/// {"counters":{...},"gauges":{...},"histograms":{"name":{"count":..,
/// "sum":..,"buckets":{"8":n,...}}}} (bucket key = upper bound 2^k).
std::string RegistryJson();

/// Wire-delta codec (used inside kTrace payloads — see trace.h).
/// AppendRegistryDeltas encodes everything observed since the previous
/// Append/rebaseline and advances the shipped watermark;
/// IngestRegistryDeltas merges such a block into this process's registry.
void AppendRegistryDeltas(std::string* out);
bool IngestRegistryDeltas(std::string_view data, size_t* pos);

/// Re-baselines the shipped watermarks to the current values without
/// encoding — a freshly forked worker discards the parent's history so
/// its first snapshot ships only its own activity.
void RebaselineRegistryDeltas();

/// Test hook: zeroes every registered metric and its watermark.
void ResetMetricsForTest();

}  // namespace obs
}  // namespace dseq

#endif  // DSEQ_OBS_METRICS_H_
