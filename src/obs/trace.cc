#include "src/obs/trace.h"

#include <cinttypes>
#include <cstdio>

#include "src/obs/metrics.h"
#include "src/util/sync.h"
#include "src/util/varint.h"

namespace dseq {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// Process-global stamps.

// Relaxed throughout: these are monitoring stamps, not synchronization.
// SetEnabled/SetProcessOrdinal happen before the threads/forks that read
// them (program order + fork/thread creation provide the happens-before);
// SetCurrentRound races only with span emission, where an off-by-one round
// stamp on a span straddling the boundary is acceptable by design.
std::atomic<bool> g_enabled{false};
std::atomic<int> g_process_ordinal{-1};
std::atomic<int> g_round{-1};

// ---------------------------------------------------------------------------
// Per-thread span buffers.
//
// Emission is single-producer (the owning thread) and must never block or
// tear under a concurrent flush. Spans live in fixed-size chunks; the
// producer writes the span, then publishes it with a release store of the
// count. A flusher acquires the count and reads only below it — every span
// it sees is fully written. Chunk pointers are published the same way.

struct RawSpan {
  const char* name;
  const char* category;
  int64_t start_ns;
  int64_t dur_ns;
  int process_ordinal;
  int round;
};

constexpr size_t kChunkSpans = 1024;
// 4096 chunks * 1024 spans = 4M spans per thread; beyond that emission
// drops (counted) rather than growing without bound.
constexpr size_t kMaxChunks = 4096;

struct TraceState;
TraceState& State();

class ThreadBuffer {
 public:
  explicit ThreadBuffer(int thread_ordinal) : thread_ordinal_(thread_ordinal) {}

  void Append(const RawSpan& span) {
    // Relaxed self-read: this thread is the only writer of count_.
    size_t idx = count_.load(std::memory_order_relaxed);
    size_t chunk_idx = idx / kChunkSpans;
    if (chunk_idx >= kMaxChunks) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    RawSpan* chunk = chunks_[chunk_idx].load(std::memory_order_relaxed);
    if (chunk == nullptr) {
      // Chunks are owned by the (leaked) ThreadBuffer; a flusher may hold a
      // pointer into one at any time, so they are never freed.
      chunk = new RawSpan[kChunkSpans];  // dseq-lint: allow(naked-new)
      // Release: a flusher that acquires this pointer must see the
      // allocation complete.
      chunks_[chunk_idx].store(chunk, std::memory_order_release);
    }
    chunk[idx % kChunkSpans] = span;
    // Release-publish: pairs with the flusher's acquire load of count_ so
    // the span written above is visible before it becomes readable.
    count_.store(idx + 1, std::memory_order_release);
  }

  int thread_ordinal() const { return thread_ordinal_; }

  /// Appends every span in [flushed watermark, published count) to `out`
  /// and advances the watermark. Caller holds the registry mutex (the
  /// watermark is flusher-only state).
  void DrainInto(std::vector<TraceEvent>* out, size_t* watermark) const {
    // Acquire pairs with Append's release store: spans below n are
    // fully written.
    size_t n = count_.load(std::memory_order_acquire);
    for (size_t i = *watermark; i < n; ++i) {
      const RawSpan* chunk =
          chunks_[i / kChunkSpans].load(std::memory_order_acquire);
      const RawSpan& s = chunk[i % kChunkSpans];
      TraceEvent ev;
      ev.name = s.name;
      ev.category = s.category;
      ev.start_ns = s.start_ns;
      ev.dur_ns = s.dur_ns;
      ev.process_ordinal = s.process_ordinal;
      ev.thread_ordinal = thread_ordinal_;
      ev.round = s.round;
      out->push_back(std::move(ev));
    }
    *watermark = n;
  }

  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  const int thread_ordinal_;
  std::atomic<size_t> count_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<RawSpan*> chunks_[kMaxChunks] = {};
};

struct RegisteredBuffer {
  ThreadBuffer* buffer = nullptr;
  // How many of the buffer's spans previous flushes already collected.
  size_t flushed = 0;
};

struct TraceState {
  Mutex registry_mu;
  std::vector<RegisteredBuffer> buffers DSEQ_GUARDED_BY(registry_mu);

  Mutex sink_mu;
  // The merged timeline: drained local spans + ingested worker snapshots.
  std::vector<TraceEvent> sink DSEQ_GUARDED_BY(sink_mu);
};

TraceState& State() {
  // Leaked singleton — outlives thread exit and static destructors.
  static TraceState* s = new TraceState;  // dseq-lint: allow(naked-new)
  return *s;
}

ThreadBuffer& LocalBuffer() {
  thread_local ThreadBuffer* t_buffer = nullptr;
  if (t_buffer == nullptr) {
    TraceState& s = State();
    MutexLock lock(s.registry_mu);
    // Leaked: the registry keeps a pointer for flushing after thread exit.
    t_buffer = new ThreadBuffer(  // dseq-lint: allow(naked-new)
        static_cast<int>(s.buffers.size()));
    s.buffers.push_back(RegisteredBuffer{t_buffer, 0});
  }
  return *t_buffer;
}

// ---------------------------------------------------------------------------
// Wire codec. Payload layout (all varints):
//
//   0x01 version byte
//   num_spans, then per span:
//     category (length-prefixed), name (length-prefixed),
//     start_ns, dur_ns, zigzag(process_ordinal), thread_ordinal,
//     zigzag(round)
//   registry delta block (metrics.h codec)

constexpr char kWireVersion = 0x01;

void AppendLengthPrefixed(std::string* out, std::string_view s) {
  PutVarint(out, s.size());
  out->append(s.data(), s.size());
}

bool GetLengthPrefixed(std::string_view data, size_t* pos, std::string* s) {
  uint64_t len = 0;
  if (!GetVarint(data, pos, &len)) return false;
  if (data.size() - *pos < len) return false;
  s->assign(data.data() + *pos, len);
  *pos += len;
  return true;
}

void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

// Chrome trace timestamps are microseconds; keep nanosecond precision as a
// fractional part.
void AppendMicros(std::string* out, int64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03" PRId64, ns / 1000,
                ns % 1000);
  out->append(buf);
}

}  // namespace

// ---------------------------------------------------------------------------
// Clock.

std::chrono::steady_clock::time_point Now() {
  // The one sanctioned raw monotonic-clock read (lint: raw-clock-call).
  return std::chrono::steady_clock::now();
}

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Now().time_since_epoch())
      .count();
}

// ---------------------------------------------------------------------------
// Stamps.

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetProcessOrdinal(int ordinal) {
  g_process_ordinal.store(ordinal, std::memory_order_relaxed);
}

int ProcessOrdinal() {
  return g_process_ordinal.load(std::memory_order_relaxed);
}

void SetCurrentRound(int round) {
  g_round.store(round, std::memory_order_relaxed);
}

int CurrentRound() { return g_round.load(std::memory_order_relaxed); }

void BeginForkedProcess(int ordinal) {
  SetProcessOrdinal(ordinal);
  // Drop everything inherited from the parent's address space: spans the
  // parent had not yet flushed would otherwise ship again from here.
  TraceState& s = State();
  {
    MutexLock lock(s.registry_mu);
    for (RegisteredBuffer& reg : s.buffers) {
      std::vector<TraceEvent> discard;
      reg.buffer->DrainInto(&discard, &reg.flushed);
    }
  }
  {
    MutexLock lock(s.sink_mu);
    s.sink.clear();
  }
  RebaselineRegistryDeltas();
}

// ---------------------------------------------------------------------------
// Emission and collection.

void EmitSpan(const char* category, const char* name, int64_t start_ns,
              int64_t end_ns) {
  if (!Enabled()) return;
  RawSpan span;
  span.name = name;
  span.category = category;
  span.start_ns = start_ns;
  span.dur_ns = end_ns > start_ns ? end_ns - start_ns : 0;
  span.process_ordinal = ProcessOrdinal();
  span.round = CurrentRound();
  LocalBuffer().Append(span);
}

void FlushThreadBuffers() {
  TraceState& s = State();
  std::vector<TraceEvent> drained;
  {
    MutexLock lock(s.registry_mu);
    for (RegisteredBuffer& reg : s.buffers) {
      reg.buffer->DrainInto(&drained, &reg.flushed);
    }
  }
  if (drained.empty()) return;
  MutexLock lock(s.sink_mu);
  s.sink.insert(s.sink.end(), std::make_move_iterator(drained.begin()),
                std::make_move_iterator(drained.end()));
}

std::vector<TraceEvent> SnapshotTrace() {
  FlushThreadBuffers();
  TraceState& s = State();
  MutexLock lock(s.sink_mu);
  return s.sink;
}

std::vector<TraceEvent> TakeTrace() {
  FlushThreadBuffers();
  TraceState& s = State();
  MutexLock lock(s.sink_mu);
  std::vector<TraceEvent> out = std::move(s.sink);
  s.sink.clear();
  return out;
}

std::string EncodeWireSnapshot() {
  std::vector<TraceEvent> events = TakeTrace();
  std::string out;
  out.push_back(kWireVersion);
  PutVarint(&out, events.size());
  for (const TraceEvent& ev : events) {
    AppendLengthPrefixed(&out, ev.category);
    AppendLengthPrefixed(&out, ev.name);
    PutVarint(&out, static_cast<uint64_t>(ev.start_ns));
    PutVarint(&out, static_cast<uint64_t>(ev.dur_ns));
    PutVarint(&out, ZigzagEncode(ev.process_ordinal));
    PutVarint(&out, static_cast<uint64_t>(ev.thread_ordinal));
    PutVarint(&out, ZigzagEncode(ev.round));
  }
  AppendRegistryDeltas(&out);
  return out;
}

bool IngestWireSnapshot(std::string_view payload,
                        int fallback_process_ordinal) {
  if (payload.empty() || payload[0] != kWireVersion) return false;
  size_t pos = 1;
  uint64_t num_spans = 0;
  if (!GetVarint(payload, &pos, &num_spans)) return false;
  std::vector<TraceEvent> events;
  for (uint64_t i = 0; i < num_spans; ++i) {
    TraceEvent ev;
    uint64_t u = 0;
    if (!GetLengthPrefixed(payload, &pos, &ev.category)) return false;
    if (!GetLengthPrefixed(payload, &pos, &ev.name)) return false;
    if (!GetVarint(payload, &pos, &u)) return false;
    ev.start_ns = static_cast<int64_t>(u);
    if (!GetVarint(payload, &pos, &u)) return false;
    ev.dur_ns = static_cast<int64_t>(u);
    if (!GetVarint(payload, &pos, &u)) return false;
    ev.process_ordinal = static_cast<int>(ZigzagDecode(u));
    if (ev.process_ordinal < 0) ev.process_ordinal = fallback_process_ordinal;
    if (!GetVarint(payload, &pos, &u)) return false;
    ev.thread_ordinal = static_cast<int>(u);
    if (!GetVarint(payload, &pos, &u)) return false;
    ev.round = static_cast<int>(ZigzagDecode(u));
    events.push_back(std::move(ev));
  }
  if (!IngestRegistryDeltas(payload, &pos)) return false;
  TraceState& s = State();
  MutexLock lock(s.sink_mu);
  s.sink.insert(s.sink.end(), std::make_move_iterator(events.begin()),
                std::make_move_iterator(events.end()));
  return true;
}

std::string ChromeTraceJson() {
  std::vector<TraceEvent> events = SnapshotTrace();
  // pid 0 = coordinator / local process, pid k+1 = proc worker ordinal k.
  std::vector<bool> worker_seen;
  for (const TraceEvent& ev : events) {
    if (ev.process_ordinal >= 0) {
      if (worker_seen.size() <= static_cast<size_t>(ev.process_ordinal)) {
        worker_seen.resize(ev.process_ordinal + 1, false);
      }
      worker_seen[ev.process_ordinal] = true;
    }
  }
  std::string out = "{\"traceEvents\":[";
  out.append(
      "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"coordinator\"}}");
  for (size_t k = 0; k < worker_seen.size(); ++k) {
    if (!worker_seen[k]) continue;
    out.append(",{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":");
    out.append(std::to_string(k + 1));
    out.append(",\"tid\":0,\"args\":{\"name\":\"worker ");
    out.append(std::to_string(k));
    out.append("\"}}");
  }
  for (const TraceEvent& ev : events) {
    out.append(",{\"ph\":\"X\",\"name\":\"");
    AppendJsonEscaped(&out, ev.name);
    out.append("\",\"cat\":\"");
    AppendJsonEscaped(&out, ev.category);
    out.append("\",\"ts\":");
    AppendMicros(&out, ev.start_ns);
    out.append(",\"dur\":");
    AppendMicros(&out, ev.dur_ns);
    out.append(",\"pid\":");
    out.append(std::to_string(ev.process_ordinal < 0 ? 0
                                                     : ev.process_ordinal + 1));
    out.append(",\"tid\":");
    out.append(std::to_string(ev.thread_ordinal));
    out.append(",\"args\":{\"round\":");
    out.append(std::to_string(ev.round));
    out.append("}}");
  }
  out.append("]}");
  return out;
}

void ResetTraceForTest() {
  TraceState& s = State();
  {
    MutexLock lock(s.registry_mu);
    for (RegisteredBuffer& reg : s.buffers) {
      std::vector<TraceEvent> discard;
      reg.buffer->DrainInto(&discard, &reg.flushed);
    }
  }
  {
    MutexLock lock(s.sink_mu);
    s.sink.clear();
  }
  SetCurrentRound(-1);
  SetProcessOrdinal(-1);
}

}  // namespace obs
}  // namespace dseq
