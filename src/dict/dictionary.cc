#include "src/dict/dictionary.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "src/util/thread_pool.h"

namespace dseq {

ItemId DictionaryBuilder::AddItem(const std::string& name) {
  if (by_name_.count(name) > 0) {
    throw std::invalid_argument("duplicate item name: " + name);
  }
  names_.push_back(name);
  parents_.emplace_back();
  ItemId id = static_cast<ItemId>(names_.size());
  by_name_[name] = id;
  return id;
}

ItemId DictionaryBuilder::GetOrAddItem(const std::string& name) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  return AddItem(name);
}

void DictionaryBuilder::AddParent(ItemId child, ItemId parent) {
  if (child == kNoItem || parent == kNoItem || child > names_.size() ||
      parent > names_.size()) {
    throw std::invalid_argument("AddParent: unknown item id");
  }
  if (child == parent) {
    throw std::invalid_argument("AddParent: self-loop on " + names_[child - 1]);
  }
  auto& ps = parents_[child - 1];
  if (std::find(ps.begin(), ps.end(), parent) == ps.end()) {
    ps.push_back(parent);
  }
}

Dictionary DictionaryBuilder::Build() const {
  Dictionary dict;
  dict.names_ = names_;
  dict.parents_ = parents_;
  dict.by_name_ = by_name_;
  dict.doc_freq_.assign(names_.size(), 0);
  dict.col_freq_.assign(names_.size(), 0);
  dict.BuildDerivedData();
  return dict;
}

void Dictionary::BuildDerivedData() {
  size_t n = names_.size();
  children_.assign(n, {});
  for (ItemId w = 1; w <= n; ++w) {
    for (ItemId p : parents_[w - 1]) children_[p - 1].push_back(w);
  }

  // Compute ancestors via memoized DFS; state: 0 = unvisited, 1 = in
  // progress (cycle detection), 2 = done.
  ancestors_.assign(n, {});
  std::vector<uint8_t> state(n, 0);
  std::vector<ItemId> stack;
  for (ItemId root = 1; root <= n; ++root) {
    if (state[root - 1] == 2) continue;
    stack.push_back(root);
    while (!stack.empty()) {
      ItemId w = stack.back();
      if (state[w - 1] == 2) {
        stack.pop_back();
        continue;
      }
      if (state[w - 1] == 0) {
        state[w - 1] = 1;
        bool ready = true;
        for (ItemId p : parents_[w - 1]) {
          if (state[p - 1] == 1) {
            throw std::invalid_argument("hierarchy cycle involving item " +
                                        names_[w - 1]);
          }
          if (state[p - 1] == 0) {
            stack.push_back(p);
            ready = false;
          }
        }
        if (!ready) continue;
      }
      // All parents done: union their ancestor sets plus self.
      std::vector<ItemId>& anc = ancestors_[w - 1];
      anc.push_back(w);
      for (ItemId p : parents_[w - 1]) {
        const auto& pa = ancestors_[p - 1];
        anc.insert(anc.end(), pa.begin(), pa.end());
      }
      std::sort(anc.begin(), anc.end());
      anc.erase(std::unique(anc.begin(), anc.end()), anc.end());
      state[w - 1] = 2;
      stack.pop_back();
    }
  }
}

ItemId Dictionary::ItemByName(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? kNoItem : it->second;
}

bool Dictionary::IsAncestorOrSelf(ItemId anc, ItemId item) const {
  const auto& a = ancestors_[item - 1];
  return std::binary_search(a.begin(), a.end(), anc);
}

std::vector<ItemId> Dictionary::DescendantsOf(ItemId w) const {
  std::vector<ItemId> result;
  std::vector<ItemId> stack = {w};
  std::vector<bool> seen(size() + 1, false);
  seen[w] = true;
  while (!stack.empty()) {
    ItemId u = stack.back();
    stack.pop_back();
    result.push_back(u);
    for (ItemId c : children_[u - 1]) {
      if (!seen[c]) {
        seen[c] = true;
        stack.push_back(c);
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

void Dictionary::ComputeDocFrequencies(const std::vector<Sequence>& db,
                                       int num_workers) {
  size_t n = size();
  std::vector<std::vector<uint64_t>> doc_parts;
  std::vector<std::vector<uint64_t>> col_parts;
  int workers = std::max(1, num_workers);
  doc_parts.assign(workers, std::vector<uint64_t>(n, 0));
  col_parts.assign(workers, std::vector<uint64_t>(n, 0));

  ParallelShards(db.size(), workers, [&](int w, size_t begin, size_t end) {
    std::vector<uint64_t>& doc = doc_parts[w];
    std::vector<uint64_t>& col = col_parts[w];
    // Stamp array avoids clearing a seen-set per sequence.
    std::vector<uint32_t> stamp(n + 1, 0);
    uint32_t cur = 0;
    for (size_t s = begin; s < end; ++s) {
      ++cur;
      for (ItemId t : db[s]) {
        for (ItemId a : Ancestors(t)) {
          ++col[a - 1];
          if (stamp[a] != cur) {
            stamp[a] = cur;
            ++doc[a - 1];
          }
        }
      }
    }
  });

  doc_freq_.assign(n, 0);
  col_freq_.assign(n, 0);
  for (int w = 0; w < workers; ++w) {
    for (size_t i = 0; i < n; ++i) {
      doc_freq_[i] += doc_parts[w][i];
      col_freq_[i] += col_parts[w][i];
    }
  }
}

void Dictionary::SetDocFrequencies(std::vector<uint64_t> doc_freq) {
  if (doc_freq.size() != size()) {
    throw std::invalid_argument(
        "SetDocFrequencies: frequency vector size does not match dictionary");
  }
  doc_freq_ = std::move(doc_freq);
}

Dictionary Dictionary::RecodeByFrequency(std::vector<Sequence>* db,
                                         std::vector<ItemId>* old_to_new) const {
  size_t n = size();
  std::vector<ItemId> order(n);
  std::iota(order.begin(), order.end(), 1);
  std::sort(order.begin(), order.end(), [&](ItemId a, ItemId b) {
    if (doc_freq_[a - 1] != doc_freq_[b - 1]) {
      return doc_freq_[a - 1] > doc_freq_[b - 1];
    }
    return a < b;
  });
  std::vector<ItemId> to_new(n + 1, kNoItem);
  for (size_t i = 0; i < n; ++i) to_new[order[i]] = static_cast<ItemId>(i + 1);

  Dictionary dict;
  dict.names_.resize(n);
  dict.parents_.resize(n);
  dict.doc_freq_.resize(n);
  dict.col_freq_.resize(n);
  for (ItemId old = 1; old <= n; ++old) {
    ItemId nw = to_new[old];
    dict.names_[nw - 1] = names_[old - 1];
    dict.doc_freq_[nw - 1] = doc_freq_[old - 1];
    dict.col_freq_[nw - 1] = col_freq_[old - 1];
    dict.by_name_[names_[old - 1]] = nw;
    std::vector<ItemId> ps;
    ps.reserve(parents_[old - 1].size());
    for (ItemId p : parents_[old - 1]) ps.push_back(to_new[p]);
    std::sort(ps.begin(), ps.end());
    dict.parents_[nw - 1] = std::move(ps);
  }
  dict.BuildDerivedData();

  if (db != nullptr) {
    for (Sequence& seq : *db) {
      for (ItemId& t : seq) t = to_new[t];
    }
  }
  if (old_to_new != nullptr) *old_to_new = std::move(to_new);
  return dict;
}

std::vector<ItemId> Dictionary::FrequentItems(uint64_t sigma) const {
  std::vector<ItemId> result;
  for (ItemId w = 1; w <= size(); ++w) {
    if (doc_freq_[w - 1] >= sigma) result.push_back(w);
  }
  return result;
}

bool Dictionary::IsForest() const {
  for (const auto& ps : parents_) {
    if (ps.size() > 1) return false;
  }
  return true;
}

double Dictionary::MeanAncestors() const {
  if (size() == 0) return 0.0;
  size_t total = 0;
  for (const auto& a : ancestors_) total += a.size() - 1;  // exclude self
  return static_cast<double>(total) / static_cast<double>(size());
}

size_t Dictionary::MaxAncestors() const {
  size_t mx = 0;
  for (const auto& a : ancestors_) mx = std::max(mx, a.size() - 1);
  return mx;
}

}  // namespace dseq
