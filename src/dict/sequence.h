// Sequence database (paper Sec. II) and small helpers.
#ifndef DSEQ_DICT_SEQUENCE_H_
#define DSEQ_DICT_SEQUENCE_H_

#include <string>
#include <vector>

#include "src/dict/dictionary.h"
#include "src/util/common.h"

namespace dseq {

/// A sequence database: a dictionary plus item sequences encoded with its
/// ids. After `Recode()`, ids are fids (frequency-ordered) and document
/// frequencies are available — the state every miner in this library expects.
struct SequenceDatabase {
  Dictionary dict;
  std::vector<Sequence> sequences;

  size_t size() const { return sequences.size(); }

  /// Computes document frequencies and recodes the dictionary and all
  /// sequences by decreasing frequency. Call once after construction.
  void Recode(int num_workers = 1) {
    dict.ComputeDocFrequencies(sequences, num_workers);
    dict = dict.RecodeByFrequency(&sequences);
  }

  /// Statistics for Table II.
  size_t TotalItems() const;
  size_t MaxSequenceLength() const;
  double MeanSequenceLength() const;

  /// Parses a whitespace-separated item-name line into a sequence.
  /// Unknown names throw std::invalid_argument.
  Sequence ParseSequence(const std::string& line) const;

  /// Formats a sequence as space-separated item names.
  std::string FormatSequence(const Sequence& seq) const;
};

/// Builds the paper's running example (Fig. 2): sequences T1..T5 over items
/// a1, a2, A, b, c, d, e with a1, a2 => A. The database is recoded, so after
/// this call fid order matches the paper's `b < A < d < a1 < c < e < a2`
/// (frequency ties broken by insertion order).
SequenceDatabase MakeRunningExample();

}  // namespace dseq

#endif  // DSEQ_DICT_SEQUENCE_H_
