// Vocabulary and item hierarchy (paper Sec. II).
//
// Items are arranged in a directed acyclic graph expressing generalization
// (e.g. a word generalizes to its lemma and its part-of-speech tag). The
// dictionary stores, for each item, its name, parents, children, document
// frequency f(w,D), and the precomputed sorted ancestor set anc(w)
// (including w itself).
//
// After `RecodeByFrequency`, item ids are *fids*: assigned in order of
// decreasing document frequency (ties broken by previous id). This realizes
// the paper's total order `<` on items: w1 < w2 iff fid(w1) < fid(w2), so a
// sequence's pivot item (its least frequent item) is simply its maximum fid.
#ifndef DSEQ_DICT_DICTIONARY_H_
#define DSEQ_DICT_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/util/common.h"

namespace dseq {

class Dictionary;

/// Incremental builder for a Dictionary. Item ids are assigned starting at 1
/// in insertion order; hierarchy edges may reference items in any order.
class DictionaryBuilder {
 public:
  /// Adds an item with the given name; returns its id. The name must be new.
  ItemId AddItem(const std::string& name);

  /// Returns the id for `name`, adding the item if it does not exist yet.
  ItemId GetOrAddItem(const std::string& name);

  /// Declares that `child` generalizes directly to `parent` (child => parent).
  void AddParent(ItemId child, ItemId parent);

  /// Finalizes the dictionary. Throws std::invalid_argument if the hierarchy
  /// contains a cycle or references unknown items.
  Dictionary Build() const;

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<ItemId>> parents_;
  std::unordered_map<std::string, ItemId> by_name_;
};

/// Immutable vocabulary + hierarchy. See file comment.
class Dictionary {
 public:
  Dictionary() = default;

  /// Number of items. Valid ids are 1..size().
  size_t size() const { return names_.size(); }

  const std::string& Name(ItemId w) const { return names_[w - 1]; }

  /// Returns the id for `name`, or kNoItem if unknown.
  ItemId ItemByName(const std::string& name) const;

  const std::vector<ItemId>& Parents(ItemId w) const {
    return parents_[w - 1];
  }
  const std::vector<ItemId>& Children(ItemId w) const {
    return children_[w - 1];
  }

  /// Ancestors of `w` including `w` itself, sorted ascending by id.
  const std::vector<ItemId>& Ancestors(ItemId w) const {
    return ancestors_[w - 1];
  }

  /// True iff `anc` is an ancestor of `item` or equal to it (item =>* anc).
  bool IsAncestorOrSelf(ItemId anc, ItemId item) const;

  /// Descendants of `w` including `w`, sorted ascending (computed on demand).
  std::vector<ItemId> DescendantsOf(ItemId w) const;

  /// Document frequency f(w,D): number of input sequences containing an item
  /// that generalizes to w (computed by ComputeDocFrequencies).
  uint64_t DocFrequency(ItemId w) const { return doc_freq_[w - 1]; }

  /// Total number of occurrences of w or its descendants across the database.
  uint64_t CollectionFrequency(ItemId w) const { return col_freq_[w - 1]; }

  /// Computes document and collection frequencies over `db` (sequences of
  /// item ids of *this* dictionary). Frequencies of ancestors are included:
  /// an occurrence of t counts for every item in anc(t).
  void ComputeDocFrequencies(const std::vector<Sequence>& db,
                             int num_workers = 1);

  /// Replaces the document frequencies, e.g. with the result of a
  /// distributed frequency-recount round (indexed by id - 1; the size must
  /// match). Item ids are untouched, so fid order — and with it every
  /// pivot — stays fixed; only σ-pruning decisions see the new counts.
  void SetDocFrequencies(std::vector<uint64_t> doc_freq);

  /// Returns a new dictionary whose ids are assigned by decreasing document
  /// frequency (fids) and rewrites `db` (and any id in the hierarchy) to the
  /// new ids. `old_to_new`, if non-null, receives the id mapping (indexed by
  /// old id; entry 0 unused).
  Dictionary RecodeByFrequency(std::vector<Sequence>* db,
                               std::vector<ItemId>* old_to_new = nullptr) const;

  /// All items with DocFrequency >= sigma (the "f-list"), ascending by id.
  std::vector<ItemId> FrequentItems(uint64_t sigma) const;

  /// True if no item has more than one parent (forest-shaped hierarchy).
  bool IsForest() const;

  /// Hierarchy statistics for Table II.
  double MeanAncestors() const;
  size_t MaxAncestors() const;

 private:
  friend class DictionaryBuilder;

  void BuildDerivedData();  // children, ancestors; validates acyclicity

  std::vector<std::string> names_;
  std::vector<std::vector<ItemId>> parents_;
  std::vector<std::vector<ItemId>> children_;
  std::vector<std::vector<ItemId>> ancestors_;
  std::vector<uint64_t> doc_freq_;
  std::vector<uint64_t> col_freq_;
  std::unordered_map<std::string, ItemId> by_name_;
};

}  // namespace dseq

#endif  // DSEQ_DICT_DICTIONARY_H_
