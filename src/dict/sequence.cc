#include "src/dict/sequence.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace dseq {

size_t SequenceDatabase::TotalItems() const {
  size_t total = 0;
  for (const auto& s : sequences) total += s.size();
  return total;
}

size_t SequenceDatabase::MaxSequenceLength() const {
  size_t mx = 0;
  for (const auto& s : sequences) mx = std::max(mx, s.size());
  return mx;
}

double SequenceDatabase::MeanSequenceLength() const {
  if (sequences.empty()) return 0.0;
  return static_cast<double>(TotalItems()) /
         static_cast<double>(sequences.size());
}

Sequence SequenceDatabase::ParseSequence(const std::string& line) const {
  Sequence seq;
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    ItemId w = dict.ItemByName(token);
    if (w == kNoItem) {
      throw std::invalid_argument("unknown item: " + token);
    }
    seq.push_back(w);
  }
  return seq;
}

std::string SequenceDatabase::FormatSequence(const Sequence& seq) const {
  std::string out;
  for (size_t i = 0; i < seq.size(); ++i) {
    if (i > 0) out += ' ';
    out += dict.Name(seq[i]);
  }
  return out;
}

SequenceDatabase MakeRunningExample() {
  DictionaryBuilder builder;
  // Insertion order chosen so that frequency ties resolve to the paper's
  // total order b < A < d < a1 < c < e < a2.
  ItemId b = builder.AddItem("b");
  ItemId A = builder.AddItem("A");
  ItemId d = builder.AddItem("d");
  ItemId a1 = builder.AddItem("a1");
  ItemId c = builder.AddItem("c");
  ItemId e = builder.AddItem("e");
  ItemId a2 = builder.AddItem("a2");
  builder.AddParent(a1, A);
  builder.AddParent(a2, A);

  SequenceDatabase db;
  db.dict = builder.Build();
  db.sequences = {
      {a1, c, d, c, b},           // T1: a1 c d c b
      {e, e, a1, e, a1, e, b},    // T2: e e a1 e a1 e b
      {c, d, c, b},               // T3: c d c b
      {a2, d, b},                 // T4: a2 d b
      {a1, a1, b},                // T5: a1 a1 b
  };
  db.Recode();
  return db;
}

}  // namespace dseq
