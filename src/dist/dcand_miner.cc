#include "src/dist/dcand_miner.h"

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>

#include "src/core/candidates.h"
#include "src/core/grid.h"
#include "src/core/pivot.h"
#include "src/nfa/serializer.h"

namespace dseq {
namespace {

// Pattern growth over weighted NFAs: the candidate partition's local miner.
// Mirrors the DESQ-DFS posting structure with (nfa, state) postings; the
// NFAs are acyclic, so expansion terminates without position tracking.
class NfaMiner {
 public:
  NfaMiner(const std::vector<OutputNfa>& nfas,
           const std::vector<uint64_t>& weights, uint64_t sigma, ItemId pivot,
           MiningResult* out)
      : nfas_(nfas), weights_(weights), sigma_(sigma), pivot_(pivot),
        out_(out) {}

  void Run() {
    std::vector<Posting> roots;
    for (uint32_t n = 0; n < nfas_.size(); ++n) {
      if (!nfas_[n].empty()) roots.push_back(Posting{n, 0});
    }
    Expand(roots, /*has_pivot=*/false);
  }

 private:
  struct Posting {
    uint32_t nfa;
    StateId state;

    bool operator<(const Posting& o) const {
      if (nfa != o.nfa) return nfa < o.nfa;
      return state < o.state;
    }
    bool operator==(const Posting& o) const {
      return nfa == o.nfa && state == o.state;
    }
  };

  // Total weight of distinct NFAs in the postings: an upper bound on the
  // support of the prefix and all of its extensions.
  uint64_t PotentialSupport(const std::vector<Posting>& postings) const {
    uint64_t total = 0;
    uint32_t prev = UINT32_MAX;
    for (const Posting& p : postings) {
      if (p.nfa != prev) {
        total += weights_[p.nfa];
        prev = p.nfa;
      }
    }
    return total;
  }

  // Weight of distinct NFAs with a final-state posting: each NFA counts a
  // candidate once, regardless of how many accepting paths produce it.
  uint64_t Support(const std::vector<Posting>& postings) const {
    uint64_t support = 0;
    uint32_t prev = UINT32_MAX;
    bool counted = false;
    for (const Posting& p : postings) {
      if (p.nfa != prev) {
        prev = p.nfa;
        counted = false;
      }
      if (counted) continue;
      if (nfas_[p.nfa].IsFinal(p.state)) {
        support += weights_[p.nfa];
        counted = true;
      }
    }
    return support;
  }

  void Expand(const std::vector<Posting>& postings, bool has_pivot) {
    if (PotentialSupport(postings) < sigma_) return;
    if (!prefix_.empty() && has_pivot) {
      uint64_t support = Support(postings);
      if (support >= sigma_) {
        out_->push_back(PatternCount{prefix_, support});
      }
    }

    std::map<ItemId, std::vector<Posting>> children;
    for (const Posting& p : postings) {
      const OutputNfa& nfa = nfas_[p.nfa];
      for (const OutputNfa::Edge& e : nfa.EdgesOf(p.state)) {
        for (ItemId w : nfa.Label(e.label)) {
          if (w > pivot_) continue;
          children[w].push_back(Posting{p.nfa, e.target});
        }
      }
    }
    for (auto& [w, child] : children) {
      std::sort(child.begin(), child.end());
      child.erase(std::unique(child.begin(), child.end()), child.end());
      prefix_.push_back(w);
      Expand(child, has_pivot || w == pivot_);
      prefix_.pop_back();
    }
  }

  const std::vector<OutputNfa>& nfas_;
  const std::vector<uint64_t>& weights_;
  uint64_t sigma_;
  ItemId pivot_;
  MiningResult* out_;
  Sequence prefix_;
};

}  // namespace

MiningResult MineNfas(const std::vector<OutputNfa>& nfas,
                      const std::vector<uint64_t>& weights, uint64_t sigma,
                      ItemId pivot) {
  MiningResult result;
  NfaMiner miner(nfas, weights, sigma, pivot, &result);
  miner.Run();
  Canonicalize(&result);
  return result;
}

DistributedResult MineDCand(const std::vector<Sequence>& db, const Fst& fst,
                            const Dictionary& dict,
                            const DCandOptions& options) {
  GridOptions grid_options;
  grid_options.prune_sigma = options.sigma;
  const uint64_t max_runs =
      options.max_runs_per_sequence == 0
          ? std::numeric_limits<uint64_t>::max()
          : options.max_runs_per_sequence;

  MapFn map_fn = [&](size_t index, const EmitFn& emit) {
    StateGrid grid = StateGrid::Build(db[index], fst, dict, grid_options);
    if (!grid.HasAcceptingRun()) return;
    Sequence pivots = FindPivotItems(grid);
    if (pivots.empty()) return;

    // One NFA per pivot partition; every accepting run is inserted into the
    // NFAs of exactly the pivots it can produce (Theorem 1 on its output
    // sets), with items above the pivot dropped.
    std::vector<OutputNfa> partition_nfas(pivots.size());
    std::vector<Sequence> output_sets;
    uint64_t trie_states = pivots.size();  // every trie starts with its root
    bool within_budget = ForEachAcceptingRun(
        grid, max_runs, [&](const std::vector<const StateGrid::Edge*>& run) {
          output_sets.clear();
          for (const StateGrid::Edge* e : run) output_sets.push_back(e->out);
          PivotSet run_pivots = PivotsOfOutputSets(output_sets);
          for (ItemId k : run_pivots.items) {
            auto it = std::lower_bound(pivots.begin(), pivots.end(), k);
            OutputNfa& nfa = partition_nfas[it - pivots.begin()];
            trie_states -= nfa.num_states();
            nfa.AddRun(run, k);
            trie_states += nfa.num_states();
          }
          if (options.max_trie_states_per_sequence > 0 &&
              trie_states > options.max_trie_states_per_sequence) {
            throw MiningBudgetError(
                "D-CAND trie construction exceeded its per-sequence state "
                "budget");
          }
        });
    if (!within_budget) {
      throw MiningBudgetError(
          "D-CAND run enumeration exceeded its per-sequence budget");
    }

    std::string value;
    for (size_t i = 0; i < pivots.size(); ++i) {
      OutputNfa& nfa = partition_nfas[i];
      if (nfa.empty()) continue;
      if (options.minimize_nfas) {
        nfa.Minimize();
      } else {
        nfa.Canonicalize();
      }
      value.clear();
      PutVarint(&value, 1);
      SerializeNfaTo(nfa, &value);
      emit(EncodePivotKey(pivots[i]), value);
    }
  };

  CombinerFactory combiner_factory;
  if (options.aggregate_nfas) {
    combiner_factory = MakeWeightedValueCombiner;
  }

  PartitionReduceFn reduce_fn = [&](std::string_view key,
                                    std::vector<std::string_view>& values,
                                    MiningResult& out) {
    ItemId pivot = DecodePivotKey(key);
    std::vector<OutputNfa> nfas;
    nfas.reserve(values.size());
    std::vector<uint64_t> weights;
    weights.reserve(values.size());
    for (std::string_view v : values) {
      size_t pos = 0;
      uint64_t weight = 0;
      if (!GetVarint(v, &pos, &weight) || weight == 0) {
        throw NfaParseError("malformed weighted NFA record");
      }
      nfas.push_back(DeserializeNfa(v, &pos));
      if (pos != v.size()) {
        throw NfaParseError("trailing bytes after NFA record");
      }
      weights.push_back(weight);
    }
    MiningResult local = MineNfas(nfas, weights, options.sigma, pivot);
    out.insert(out.end(), std::make_move_iterator(local.begin()),
               std::make_move_iterator(local.end()));
  };

  return RunDistributedMining(db.size(), map_fn, combiner_factory, reduce_fn,
                              options);
}

}  // namespace dseq
