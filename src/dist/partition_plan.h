// Plan-driven repartitioning of pivot partitions (paper Sec. III-B turned
// into action).
//
// ComputePartitionStats measures how many serialized bytes each pivot
// partition would receive; this layer turns that measurement into a
// PartitionPlan that steers the next round's physical layout:
//
//  * pack    — pivots are placed onto reducers with greedy LPT bin packing
//              by measured bytes (largest partition first, always onto the
//              least-loaded reducer), instead of by hash;
//  * bundle  — many light pivots end up sharing one reducer slot, so sparse
//              tails no longer scatter across (and idle) reducers;
//  * split   — a heavy pivot whose partition exceeds its fair share is
//              range-split over the input index space into K sub-partitions
//              that are mined independently and reconciled in one extra
//              chained round (the split defers the support threshold, so the
//              reconciled output is byte-identical to the unsplit run).
//
// The plan is wired into the engine through DataflowOptions::partitioner
// (see MakePartitioner); keys the plan does not know fall back to the
// engine's hash assignment, so a plan is always safe to install.
#ifndef DSEQ_DIST_PARTITION_PLAN_H_
#define DSEQ_DIST_PARTITION_PLAN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/dist/partition_stats.h"

namespace dseq {

struct PartitionPlanOptions {
  /// Reducer count the plan packs for (the run's num_reduce_workers).
  int num_reducers = 1;
  /// A pivot whose measured bytes exceed split_factor × the mean reducer
  /// load (total bytes / num_reducers) is split into enough sub-partitions
  /// to bring each below that threshold. 1.0 splits anything above its fair
  /// share; larger values split only ever heavier pivots.
  double split_factor = 1.0;
  /// Cap on sub-partitions per split pivot; 0 = num_reducers.
  int max_subpartitions = 0;
};

/// A heavy pivot's range split: sub-partition `s` owns the input sequences
/// whose global index falls into the s-th of num_subpartitions() equal index
/// ranges, and ships to reducers[s].
struct PivotSplit {
  ItemId pivot = kNoItem;
  uint64_t bytes = 0;          // measured partition volume the split divides
  std::vector<int> reducers;   // reducer of each sub-partition, size >= 2

  int num_subpartitions() const { return static_cast<int>(reducers.size()); }
};

/// The computed placement: every pivot seen in the stats is either assigned
/// to one reducer (packed/bundled) or split. Pivots the plan has never seen
/// fall back to hash partitioning.
struct PartitionPlan {
  int num_reducers = 1;
  /// Size of the global input index space the range splits divide.
  size_t num_inputs = 0;
  /// Unsplit pivots → reducer, sorted by pivot (binary-searchable).
  std::vector<std::pair<ItemId, int>> assignments;
  /// Split pivots, sorted by pivot.
  std::vector<PivotSplit> splits;
  /// Projected per-reducer load under this plan (from the measured stats;
  /// split pivots contribute bytes / K per sub-partition).
  std::vector<uint64_t> planned_reducer_bytes;

  /// The split entry for `pivot`, or nullptr if the pivot is not split.
  const PivotSplit* FindSplit(ItemId pivot) const;

  /// Sub-partition of input sequence `input_index` within `split` (the
  /// range split over [0, num_inputs)).
  int SubpartitionForIndex(const PivotSplit& split, size_t input_index) const;

  /// Reducer for a shuffle key: planned placement for known pivot keys and
  /// sub-partition keys, the engine's hash assignment for everything else.
  int ReducerForKey(std::string_view key) const;

  /// Packages the plan as an engine partitioner (copies the plan into the
  /// closure). Falls back to pure hashing when invoked with a reducer count
  /// other than num_reducers, so a stale plan degrades to the status quo
  /// instead of misrouting.
  PartitionerFn MakePartitioner() const;
};

/// Builds the plan for `stats` (ComputePartitionStats output) over a
/// database of `num_inputs` sequences. Deterministic. With empty stats (or
/// zero measured bytes) the plan is empty and behaves exactly like hash
/// partitioning.
PartitionPlan BuildPartitionPlan(const std::vector<PartitionStats>& stats,
                                 size_t num_inputs,
                                 const PartitionPlanOptions& options);

/// Key of sub-partition `subpartition` of a split pivot: varint(pivot)
/// followed by varint(subpartition). Unsplit partitions keep the plain
/// EncodePivotKey coding.
std::string EncodeSubpartitionKey(ItemId pivot, int subpartition);

/// A decoded pivot-partition key: subpartition is -1 for plain pivot keys.
struct PivotKeyParts {
  ItemId pivot = kNoItem;
  int subpartition = -1;
};

/// Decodes EncodePivotKey / EncodeSubpartitionKey keys. Throws
/// std::invalid_argument on malformed keys.
PivotKeyParts DecodePivotKeyParts(std::string_view key);

/// Balance summary of the plan's projected per-reducer loads (the planning
/// counterpart of SummarizeReducerBytes over measured volumes).
BalanceSummary SummarizePlannedBalance(const PartitionPlan& plan);

}  // namespace dseq

#endif  // DSEQ_DIST_PARTITION_PLAN_H_
