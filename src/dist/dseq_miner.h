// D-SEQ: distributed mining with sequence-represented partitions (paper
// Sec. V).
//
// One map-shuffle-reduce round:
//   map    : per input sequence T, build the σ-pruned position–state grid,
//            find the pivot items K(T) (Theorem 1 DP), and send a rewritten
//            copy ρk(T) of T to every partition P_k, k ∈ K(T)
//   shuffle: partitions are keyed by pivot item; an optional combiner
//            aggregates identical rewritten sequences into weighted ones
//            (the LASH trick applied to D-SEQ; DESIGN extension)
//   reduce : each partition runs pivot-restricted DESQ-DFS (Sec. V-C) on its
//            rewritten sequences and emits the pivot-k frequent patterns
//
// Ablation toggles mirror paper Fig. 10a: the grid DP vs naive run
// enumeration for pivot search, input rewriting, and early stopping.
#ifndef DSEQ_DIST_DSEQ_MINER_H_
#define DSEQ_DIST_DSEQ_MINER_H_

#include <cstdint>
#include <vector>

#include "src/core/desq_dfs.h"
#include "src/core/grid.h"
#include "src/core/pivot.h"
#include "src/dict/dictionary.h"
#include "src/dist/distributed.h"
#include "src/dist/partition_plan.h"
#include "src/fst/fst.h"

namespace dseq {

struct DSeqOptions : DistributedRunOptions {
  uint64_t sigma = 1;

  /// Pivot search via the position–state grid DP (Theorem 1). When false,
  /// pivots are found by naively folding ⊕ over every accepting run (the
  /// paper's "no grid" ablation, exponential in the worst case).
  bool use_grid = true;

  /// Rewrite (trim) input sequences per pivot before shuffling (Sec. V-B).
  /// Only effective with use_grid (the rewriter works on the grid).
  bool rewrite = true;

  /// Early stopping in the pivot-restricted local miners (Sec. V-C).
  bool early_stop = true;

  /// D-SEQ aggregation extension: combine identical rewritten sequences into
  /// weighted sequences in the shuffle.
  bool aggregate_sequences = false;

  /// Simulation-step budget for the no-grid pivot search; exceeding it
  /// throws MiningBudgetError (the ablation's OOM/timeout emulation).
  uint64_t nogrid_step_budget = 1'000'000'000;
};

/// Per-grid rewriter: precomputes the forward/backward pivot DPs and the
/// ε-acceptance table once, then rewrites for any number of pivots. Used by
/// the D-SEQ map phase (one sequence, many pivots).
class PivotRewriter {
 public:
  PivotRewriter(const Sequence& T, const StateGrid& grid);

  /// ρk(T): T with irrelevant leading/trailing positions removed, such that
  /// the pivot-k candidate subsequences of the rewritten sequence are
  /// exactly those of T (paper Sec. V-B). Never longer than T.
  Sequence Rewrite(ItemId pivot) const;

 private:
  bool EdgeProducesPivot(size_t layer, const StateGrid::Edge& edge,
                         ItemId pivot) const;

  const Sequence& T_;
  const StateGrid& grid_;
  std::vector<PivotSet> fwd_;
  std::vector<PivotSet> bwd_;
  std::vector<uint8_t> eps_accept_;
};

/// One-shot convenience wrapper around PivotRewriter.
Sequence RewriteForPivot(const Sequence& T, const StateGrid& grid,
                         ItemId pivot);

/// Runs D-SEQ. `db` must be fid-recoded with `dict`'s frequencies (the state
/// SequenceDatabase::Recode leaves behind).
DistributedResult MineDSeq(const std::vector<Sequence>& db, const Fst& fst,
                           const Dictionary& dict, const DSeqOptions& options);

struct DSeqRecountOptions : DSeqOptions {
  /// Count every sample_every-th sequence in the recount round and scale the
  /// counts back up (1 = exact recount, results identical to MineDSeq).
  uint32_t recount_sample_every = 1;
};

/// Two-round chained D-SEQ: round 1 recounts the item document frequencies
/// on the dataflow, round 2 runs the D-SEQ map/shuffle/reduce with grids
/// σ-pruned by the recounted f-list. Item ids (and with them pivots) stay
/// fixed; only pruning decisions see the new counts. Budgets follow
/// DistributedRunOptions: shuffle_budget_bytes bounds each round,
/// cumulative_shuffle_budget_bytes the whole chain.
ChainedDistributedResult MineDSeqRecount(const std::vector<Sequence>& db,
                                         const Fst& fst,
                                         const Dictionary& dict,
                                         const DSeqRecountOptions& options);

struct DSeqBalanceOptions : DSeqOptions {
  /// Planning knobs (plan.num_reducers is overridden by
  /// num_reduce_workers — the plan always packs for the actual run).
  PartitionPlanOptions plan;
};

/// Plan-driven D-SEQ (ROADMAP "partition balance actions"): measures the
/// per-pivot shuffle volume with ComputePartitionStats, builds a
/// PartitionPlan (LPT packing, light-pivot bundling, heavy-pivot range
/// splits), and runs the D-SEQ round under the plan's key→reducer hook.
/// Split pivots defer the support threshold: their sub-partitions mine with
/// σ=1 and emit (pattern, local support) boundary records that one extra
/// chained round sums and filters with the real σ — so the returned
/// patterns are byte-identical to MineDSeq's, whatever the plan did.
///
/// round_metrics has one entry for the mining round, plus a second entry
/// for the reconcile round when at least one split sub-partition produced
/// candidates. The planning pass itself is driver-local (the in-process
/// analogue of collecting stats at the master) and shuffles nothing.
///
/// If `plan_out` is non-null it receives the plan that was used (for
/// --stats and the balance bench).
///
/// The plan owns the run's key→reducer hook; a caller-supplied
/// options.partitioner throws std::invalid_argument (use MineDSeq for a
/// custom hook). With aggregate_sequences the plan packs from pre-combine
/// volumes (see ComputePartitionStats); results are unaffected, projected
/// loads become an upper bound.
ChainedDistributedResult MineDSeqBalanced(const std::vector<Sequence>& db,
                                          const Fst& fst,
                                          const Dictionary& dict,
                                          const DSeqBalanceOptions& options,
                                          PartitionPlan* plan_out = nullptr);

}  // namespace dseq

#endif  // DSEQ_DIST_DSEQ_MINER_H_
