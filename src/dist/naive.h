// NAIVE and SEMI-NAIVE distributed baselines (paper Sec. III-C).
//
// Word-count-style candidate shipping: the map phase enumerates each input
// sequence's candidate subsequences and emits one (candidate, 1) record per
// distinct candidate; a combiner pre-aggregates counts per map worker and
// the reduce phase sums distinct-sequence supports and filters by σ.
//
// NAIVE enumerates the unpruned Gπ(T); SEMI-NAIVE first removes infrequent
// items from the FST output sets (grid σ-pruning), so only candidates made
// of frequent items cross the shuffle — same results, smaller shuffle.
#ifndef DSEQ_DIST_NAIVE_H_
#define DSEQ_DIST_NAIVE_H_

#include <cstdint>
#include <vector>

#include "src/core/desq_dfs.h"
#include "src/dict/dictionary.h"
#include "src/dist/distributed.h"
#include "src/fst/fst.h"

namespace dseq {

struct NaiveOptions : DistributedRunOptions {
  uint64_t sigma = 1;

  /// Prune infrequent items before candidate enumeration (SEMI-NAIVE).
  bool semi_naive = false;

  /// Per-sequence candidate enumeration budget; exceeding it throws
  /// MiningBudgetError (candidate explosion = certain OOM at cluster
  /// scale). 0 = unlimited.
  uint64_t candidates_per_sequence_budget = 0;
};

/// Runs NAIVE (or SEMI-NAIVE). `db` must be fid-recoded with `dict`.
DistributedResult MineNaive(const std::vector<Sequence>& db, const Fst& fst,
                            const Dictionary& dict,
                            const NaiveOptions& options);

struct NaiveRecountOptions : NaiveOptions {
  /// Count every sample_every-th sequence in the recount round and scale the
  /// counts back up (1 = exact recount, results identical to MineNaive).
  uint32_t recount_sample_every = 1;
};

/// Two-round chained NAIVE/SEMI-NAIVE: round 1 recounts the item document
/// frequencies on the dataflow (the f-list job real deployments run first),
/// round 2 mines with the recounted f-list. Budgets follow
/// DistributedRunOptions: shuffle_budget_bytes bounds each round,
/// cumulative_shuffle_budget_bytes the whole chain.
ChainedDistributedResult MineNaiveRecount(const std::vector<Sequence>& db,
                                          const Fst& fst,
                                          const Dictionary& dict,
                                          const NaiveRecountOptions& options);

}  // namespace dseq

#endif  // DSEQ_DIST_NAIVE_H_
