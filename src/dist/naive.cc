#include "src/dist/naive.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "src/core/candidates.h"
#include "src/core/grid.h"

namespace dseq {

DistributedResult MineNaive(const std::vector<Sequence>& db, const Fst& fst,
                            const Dictionary& dict,
                            const NaiveOptions& options) {
  GridOptions grid_options;
  // SEMI-NAIVE communicates only candidates made of frequent items; NAIVE
  // ships the raw candidate space and lets the reducers discard the rest.
  grid_options.prune_sigma = options.semi_naive ? options.sigma : 0;
  const size_t budget =
      options.candidates_per_sequence_budget == 0
          ? std::numeric_limits<size_t>::max()
          : static_cast<size_t>(options.candidates_per_sequence_budget);

  MapFn map_fn = [&](size_t index, const EmitFn& emit) {
    StateGrid grid = StateGrid::Build(db[index], fst, dict, grid_options);
    if (!grid.HasAcceptingRun()) return;
    std::vector<Sequence> candidates;
    if (!EnumerateCandidates(grid, budget, &candidates)) {
      throw MiningBudgetError(
          "NAIVE candidate enumeration exceeded its per-sequence budget");
    }
    std::string value;
    PutVarint(&value, 1);
    // EnumerateCandidates deduplicates, so each candidate counts the input
    // sequence once (distinct-sequence support).
    for (const Sequence& candidate : candidates) {
      std::string key;
      PutSequence(&key, candidate);
      emit(std::move(key), value);
    }
  };

  PartitionReduceFn reduce_fn = [&](const std::string& key,
                                    std::vector<std::string>& values,
                                    MiningResult& out) {
    uint64_t support = 0;
    for (const std::string& v : values) {
      size_t pos = 0;
      uint64_t count = 0;
      if (!GetVarint(v, &pos, &count)) {
        throw std::invalid_argument("malformed NAIVE count record");
      }
      support += count;
    }
    if (support < options.sigma) return;
    size_t pos = 0;
    Sequence pattern;
    if (!GetSequence(key, &pos, &pattern) || pos != key.size()) {
      throw std::invalid_argument("malformed NAIVE candidate key");
    }
    out.push_back(PatternCount{std::move(pattern), support});
  };

  return RunDistributedMining(db.size(), map_fn, MakeSumCombiner, reduce_fn,
                              options);
}

}  // namespace dseq
