#include "src/dist/naive.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "src/core/candidates.h"
#include "src/core/grid.h"

namespace dseq {
namespace {

// Map/reduce phases shared by the single-round miner and the chained
// recount driver. The returned closures capture `db`, `fst`, `dict`, and
// `options` by reference; callers keep them alive for the round. The
// recount driver passes its cross-round CachedDatabase so round 2 is served
// from the round-1 cache.
MapFn MakeNaiveMapFn(const std::vector<Sequence>& db, const Fst& fst,
                     const Dictionary& dict, const NaiveOptions& options,
                     CachedDatabase* cached_db = nullptr) {
  GridOptions grid_options;
  // SEMI-NAIVE communicates only candidates made of frequent items; NAIVE
  // ships the raw candidate space and lets the reducers discard the rest.
  grid_options.prune_sigma = options.semi_naive ? options.sigma : 0;
  const size_t budget =
      options.candidates_per_sequence_budget == 0
          ? std::numeric_limits<size_t>::max()
          : static_cast<size_t>(options.candidates_per_sequence_budget);

  return [&db, &fst, &dict, grid_options, budget, cached_db](
             size_t index, const EmitFn& emit) {
    const Sequence& T =
        cached_db != nullptr ? cached_db->Read(index) : db[index];
    StateGrid grid = StateGrid::Build(T, fst, dict, grid_options);
    if (!grid.HasAcceptingRun()) return;
    std::vector<Sequence> candidates;
    if (!EnumerateCandidates(grid, budget, &candidates)) {
      throw MiningBudgetError(
          "NAIVE candidate enumeration exceeded its per-sequence budget");
    }
    std::string value;
    PutVarint(&value, 1);
    // EnumerateCandidates deduplicates, so each candidate counts the input
    // sequence once (distinct-sequence support).
    std::string key;
    for (const Sequence& candidate : candidates) {
      key.clear();
      PutSequence(&key, candidate);
      emit(key, value);
    }
  };
}

PartitionReduceFn MakeNaiveReduceFn(const NaiveOptions& options) {
  return [sigma = options.sigma](std::string_view key,
                                 std::vector<std::string_view>& values,
                                 MiningResult& out) {
    uint64_t support = 0;
    for (std::string_view v : values) {
      size_t pos = 0;
      uint64_t count = 0;
      if (!GetVarint(v, &pos, &count)) {
        throw std::invalid_argument("malformed NAIVE count record");
      }
      support += count;
    }
    if (support < sigma) return;
    size_t pos = 0;
    Sequence pattern;
    if (!GetSequence(key, &pos, &pattern) || pos != key.size()) {
      throw std::invalid_argument("malformed NAIVE candidate key");
    }
    out.push_back(PatternCount{std::move(pattern), support});
  };
}

}  // namespace

DistributedResult MineNaive(const std::vector<Sequence>& db, const Fst& fst,
                            const Dictionary& dict,
                            const NaiveOptions& options) {
  return RunDistributedMining(db.size(), MakeNaiveMapFn(db, fst, dict, options),
                              MakeSumCombiner, MakeNaiveReduceFn(options),
                              options);
}

ChainedDistributedResult MineNaiveRecount(const std::vector<Sequence>& db,
                                          const Fst& fst,
                                          const Dictionary& dict,
                                          const NaiveRecountOptions& options) {
  // Round 1 recounts the f-list; round 2 prunes with the recounted counts,
  // reading the database from the round-1 cache.
  return RunRecountMining(
      db, dict, options.recount_sample_every, options,
      [&](const Dictionary& recounted, CachedDatabase& cached_db,
          MapFn* map_fn, CombinerFactory* combiner_factory,
          PartitionReduceFn* reduce_fn) {
        *map_fn = MakeNaiveMapFn(db, fst, recounted, options, &cached_db);
        *combiner_factory = MakeSumCombiner;
        *reduce_fn = MakeNaiveReduceFn(options);
      });
}

}  // namespace dseq
