#include "src/dist/distributed.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace dseq {

std::string EncodePivotKey(ItemId pivot) {
  std::string key;
  PutVarint(&key, pivot);
  return key;
}

ItemId DecodePivotKey(const std::string& key) {
  size_t pos = 0;
  uint64_t value = 0;
  if (!GetVarint(key, &pos, &value) || pos != key.size() ||
      value > std::numeric_limits<ItemId>::max()) {
    throw std::invalid_argument("malformed pivot partition key");
  }
  return static_cast<ItemId>(value);
}

DistributedResult RunDistributedMining(size_t num_inputs, const MapFn& map_fn,
                                       const CombinerFactory& combiner_factory,
                                       const PartitionReduceFn& reduce_fn,
                                       const DistributedRunOptions& options) {
  std::vector<MiningResult> per_worker(
      std::max(1, options.num_reduce_workers));
  ReduceFn worker_reduce = [&](int worker, const std::string& key,
                               std::vector<std::string>& values) {
    reduce_fn(key, values, per_worker[worker]);
  };

  DataflowOptions dataflow_options;
  dataflow_options.num_map_workers = options.num_map_workers;
  dataflow_options.num_reduce_workers = options.num_reduce_workers;
  dataflow_options.execution = options.execution;
  dataflow_options.shuffle_budget_bytes = options.shuffle_budget_bytes;

  DistributedResult result;
  result.metrics = RunMapReduce(num_inputs, map_fn, combiner_factory,
                                worker_reduce, dataflow_options);
  for (auto& part : per_worker) {
    result.patterns.insert(result.patterns.end(),
                           std::make_move_iterator(part.begin()),
                           std::make_move_iterator(part.end()));
  }
  Canonicalize(&result.patterns);
  return result;
}

size_t DistinctSequences(std::vector<Sequence> sequences) {
  std::sort(sequences.begin(), sequences.end());
  return static_cast<size_t>(
      std::unique(sequences.begin(), sequences.end()) - sequences.begin());
}

}  // namespace dseq
