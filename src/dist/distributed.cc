#include "src/dist/distributed.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "src/obs/trace.h"
#include "src/util/thread_pool.h"

namespace dseq {

std::string EncodePivotKey(ItemId pivot) {
  std::string key;
  PutVarint(&key, pivot);
  return key;
}

ItemId DecodePivotKey(std::string_view key) {
  size_t pos = 0;
  uint64_t value = 0;
  if (!GetVarint(key, &pos, &value) || pos != key.size() ||
      value > std::numeric_limits<ItemId>::max()) {
    throw std::invalid_argument("malformed pivot partition key");
  }
  return static_cast<ItemId>(value);
}

ChainedDataflowOptions MakeChainedOptions(
    const DistributedRunOptions& options) {
  ChainedDataflowOptions chained;
  chained.num_map_workers = options.num_map_workers;
  chained.num_reduce_workers = options.num_reduce_workers;
  chained.execution = options.execution;
  chained.shuffle_budget_bytes = options.shuffle_budget_bytes;
  chained.cumulative_shuffle_budget_bytes =
      options.cumulative_shuffle_budget_bytes;
  chained.compress_shuffle = options.compress_shuffle;
  chained.partitioner = options.partitioner;
  chained.memory_budget_bytes = options.memory_budget_bytes;
  chained.spill_dir = options.spill_dir;
  chained.compress_spill = options.compress_spill;
  chained.spill_merge_fan_in = options.spill_merge_fan_in;
  chained.backend = options.backend;
  chained.proc_worker_timeout_ms = options.proc_worker_timeout_ms;
  chained.proc_max_task_attempts = options.proc_max_task_attempts;
  chained.proc_heartbeat_interval_ms = options.proc_heartbeat_interval_ms;
  chained.proc_round_deadline_ms = options.proc_round_deadline_ms;
  chained.proc_tail_park_bytes = options.proc_tail_park_bytes;
  return chained;
}

MiningResult RunMiningRound(DataflowJob& job, size_t num_inputs,
                            const MapFn& map_fn,
                            const CombinerFactory& combiner_factory,
                            const PartitionReduceFn& reduce_fn) {
  // Covers the round plus the driver-side decode of the mined boundary
  // records (the part a per-round engine span cannot see).
  DSEQ_TRACE_SPAN("driver", "mining_round");
  // The reduce side runs in threads locally but in forked *processes* under
  // the proc backend, where appends to captured parent state are lost with
  // the child. Every mined pattern therefore leaves the reduce as a
  // boundary record — the one channel that crosses the process boundary —
  // and is decoded back here. Boundary records never touch the shuffle, so
  // the round's metrics are unchanged by this routing.
  ChainReduceFn worker_reduce = [&reduce_fn](
                                    int, std::string_view key,
                                    std::vector<std::string_view>& values,
                                    const EmitFn& emit) {
    MiningResult part;
    reduce_fn(key, values, part);
    std::string pattern_key;
    std::string frequency_value;
    for (const PatternCount& mined : part) {
      pattern_key.clear();
      frequency_value.clear();
      PutSequence(&pattern_key, mined.pattern);
      PutVarint(&frequency_value, mined.frequency);
      emit(pattern_key, frequency_value);
    }
  };
  job.RunRound(num_inputs, map_fn, combiner_factory, worker_reduce);

  MiningResult patterns;
  std::vector<Record> records = job.TakeRecords();
  patterns.reserve(records.size());
  for (const Record& record : records) {
    PatternCount mined;
    size_t pos = 0;
    if (!GetSequence(record.key, &pos, &mined.pattern) ||
        pos != record.key.size()) {
      throw std::invalid_argument("malformed mined-pattern record key");
    }
    pos = 0;
    if (!GetVarint(record.value, &pos, &mined.frequency) ||
        pos != record.value.size()) {
      throw std::invalid_argument("malformed mined-pattern record value");
    }
    patterns.push_back(std::move(mined));
  }
  Canonicalize(&patterns);
  return patterns;
}

ChainedDistributedResult MakeChainedResult(MiningResult patterns,
                                           const DataflowJob& job) {
  ChainedDistributedResult result;
  result.patterns = std::move(patterns);
  result.round_metrics = job.round_metrics();
  result.aggregate = job.aggregate_metrics();
  return result;
}

ChainedDistributedResult RunRecountMining(const std::vector<Sequence>& db,
                                          const Dictionary& dict,
                                          uint32_t sample_every,
                                          const DistributedRunOptions& options,
                                          const MakeMiningRoundFn& make_round) {
  DataflowJob job(MakeChainedOptions(options));
  // Round 1 populates the cross-round cache; round 2's map reads through it
  // instead of re-reading backing storage (Spark's RDD cache).
  CachedDatabase cached_db(db);
  Dictionary recounted =
      RecountFrequencies(job, db, dict, sample_every, &cached_db);
  MapFn map_fn;
  CombinerFactory combiner_factory;
  PartitionReduceFn reduce_fn;
  make_round(recounted, cached_db, &map_fn, &combiner_factory, &reduce_fn);
  ChainedDistributedResult result = MakeChainedResult(
      RunMiningRound(job, db.size(), map_fn, combiner_factory, reduce_fn),
      job);
  // Local rounds bump the CachedDatabase instance counters in this process;
  // proc-backend rounds run their maps in forked children, whose reads only
  // come back as kMapDone-reported metrics. The instance counters and the
  // aggregate metrics are disjoint by construction (a round is either local
  // or proc), so their sum is the whole-job count either way.
  result.input_storage_reads =
      cached_db.storage_reads() + result.aggregate.input_storage_reads;
  result.input_cache_hits =
      cached_db.cache_hits() + result.aggregate.input_cache_hits;
  return result;
}

DistributedResult RunDistributedMining(size_t num_inputs, const MapFn& map_fn,
                                       const CombinerFactory& combiner_factory,
                                       const PartitionReduceFn& reduce_fn,
                                       const DistributedRunOptions& options) {
  DataflowJob job(MakeChainedOptions(options));
  DistributedResult result;
  result.patterns =
      RunMiningRound(job, num_inputs, map_fn, combiner_factory, reduce_fn);
  result.metrics = job.round_metrics().front();
  return result;
}

Dictionary RecountFrequencies(DataflowJob& job,
                              const std::vector<Sequence>& db,
                              const Dictionary& dict, uint32_t sample_every,
                              CachedDatabase* cached_db) {
  if (sample_every == 0) sample_every = 1;
  const size_t n = dict.size();

  // Map: one (ancestor item, 1) record per distinct ancestor per sampled
  // sequence — the distributed form of ComputeDocFrequencies' stamp loop.
  // The stamp array (allocated once per worker thread, not per sequence)
  // avoids clearing a seen-set per sequence, as in ComputeDocFrequencies.
  MapFn map_fn = [&, sample_every, cached_db](size_t index,
                                              const EmitFn& emit) {
    if (index % sample_every != 0) return;
    thread_local std::vector<uint64_t> stamp;
    thread_local uint64_t cur = 0;
    if (stamp.size() < n + 1) stamp.assign(n + 1, 0);
    ++cur;
    std::string one;
    PutVarint(&one, 1);
    const Sequence& T = cached_db != nullptr ? cached_db->Read(index)
                                             : db[index];
    for (ItemId t : T) {
      for (ItemId a : dict.Ancestors(t)) {
        if (stamp[a] == cur) continue;
        stamp[a] = cur;
        emit(EncodePivotKey(a), one);
      }
    }
  };

  // Reduce: sum the per-item counts and emit one (item, count) boundary
  // record; the driver collects them below (Spark's collect-and-broadcast).
  ChainReduceFn reduce_fn = [](int, std::string_view key,
                               std::vector<std::string_view>& values,
                               const EmitFn& emit) {
    uint64_t count = 0;
    for (std::string_view v : values) {
      size_t pos = 0;
      uint64_t c = 0;
      if (!GetVarint(v, &pos, &c) || pos != v.size()) {
        throw std::invalid_argument("malformed frequency-recount record");
      }
      count += c;
    }
    std::string value;
    PutVarint(&value, count);
    emit(key, value);
  };

  job.RunRound(db.size(), map_fn, MakeSumCombiner, reduce_fn);

  // Scale sampled counts by the true sampling ratio db.size()/num_sampled
  // (not sample_every: the last stride may be short, and count*sample_every
  // would then systematically overestimate). Exact when sample_every == 1.
  uint64_t num_sampled = (db.size() + sample_every - 1) / sample_every;
  std::vector<uint64_t> doc_freq(n, 0);
  for (const Record& record : job.TakeRecords()) {
    ItemId item = DecodePivotKey(record.key);
    size_t pos = 0;
    uint64_t count = 0;
    if (item == kNoItem || item > n ||
        !GetVarint(record.value, &pos, &count) ||
        pos != record.value.size()) {
      throw std::invalid_argument("malformed frequency-recount result");
    }
    doc_freq[item - 1] =
        num_sampled == 0
            ? 0
            : (count * db.size() + num_sampled / 2) / num_sampled;
  }

  Dictionary recounted = dict;
  recounted.SetDocFrequencies(std::move(doc_freq));
  return recounted;
}

size_t DistinctSequences(std::vector<Sequence> sequences) {
  std::sort(sequences.begin(), sequences.end());
  return static_cast<size_t>(
      std::unique(sequences.begin(), sequences.end()) - sequences.begin());
}

}  // namespace dseq
