#include "src/dist/partition_plan.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/dist/distributed.h"
#include "src/util/check.h"
#include "src/util/thread_pool.h"
#include "src/util/varint.h"

namespace dseq {

namespace {

// Parses varint(pivot)[ + varint(subpartition)] without throwing. Returns
// false if the bytes are not a well-formed pivot / sub-partition key.
bool TryDecodePivotKeyParts(std::string_view key, PivotKeyParts* parts) {
  size_t pos = 0;
  uint64_t pivot = 0;
  if (!GetVarint(key, &pos, &pivot) || pivot == kNoItem ||
      pivot > std::numeric_limits<ItemId>::max()) {
    return false;
  }
  parts->pivot = static_cast<ItemId>(pivot);
  parts->subpartition = -1;
  if (pos == key.size()) return true;
  uint64_t sub = 0;
  if (!GetVarint(key, &pos, &sub) || pos != key.size() ||
      sub > static_cast<uint64_t>(std::numeric_limits<int>::max())) {
    return false;
  }
  parts->subpartition = static_cast<int>(sub);
  return true;
}

}  // namespace

std::string EncodeSubpartitionKey(ItemId pivot, int subpartition) {
  std::string key = EncodePivotKey(pivot);
  PutVarint(&key, static_cast<uint64_t>(subpartition));
  return key;
}

PivotKeyParts DecodePivotKeyParts(std::string_view key) {
  PivotKeyParts parts;
  if (!TryDecodePivotKeyParts(key, &parts)) {
    throw std::invalid_argument("malformed pivot partition key");
  }
  return parts;
}

const PivotSplit* PartitionPlan::FindSplit(ItemId pivot) const {
  auto it = std::lower_bound(
      splits.begin(), splits.end(), pivot,
      [](const PivotSplit& s, ItemId p) { return s.pivot < p; });
  if (it == splits.end() || it->pivot != pivot) return nullptr;
  return &*it;
}

int PartitionPlan::SubpartitionForIndex(const PivotSplit& split,
                                        size_t input_index) const {
  if (num_inputs == 0) return 0;
  size_t k = static_cast<size_t>(split.num_subpartitions());
  size_t sub = input_index * k / num_inputs;
  return static_cast<int>(std::min(sub, k - 1));
}

int PartitionPlan::ReducerForKey(std::string_view key) const {
  PivotKeyParts parts;
  if (TryDecodePivotKeyParts(key, &parts)) {
    if (parts.subpartition < 0) {
      auto it = std::lower_bound(
          assignments.begin(), assignments.end(), parts.pivot,
          [](const std::pair<ItemId, int>& a, ItemId p) {
            return a.first < p;
          });
      if (it != assignments.end() && it->first == parts.pivot) {
        // Every planned index must be a real reducer — a plan deserialized
        // or mutated out of range would misroute whole partitions.
        DSEQ_DCHECK_MSG(it->second >= 0 && it->second < num_reducers,
                        "partition plan assigns a pivot to an out-of-range "
                        "reducer");
        return it->second;
      }
    } else {
      const PivotSplit* split = FindSplit(parts.pivot);
      if (split != nullptr &&
          parts.subpartition < split->num_subpartitions()) {
        int reducer = split->reducers[parts.subpartition];
        DSEQ_DCHECK_MSG(reducer >= 0 && reducer < num_reducers,
                        "partition plan assigns a sub-partition to an "
                        "out-of-range reducer");
        return reducer;
      }
    }
  }
  return ShuffleReducerForKey(key, num_reducers);
}

PartitionerFn PartitionPlan::MakePartitioner() const {
  return [plan = *this](std::string_view key, int num_reduce_workers) {
    if (num_reduce_workers != plan.num_reducers) {
      return ShuffleReducerForKey(key, num_reduce_workers);
    }
    return plan.ReducerForKey(key);
  };
}

PartitionPlan BuildPartitionPlan(const std::vector<PartitionStats>& stats,
                                 size_t num_inputs,
                                 const PartitionPlanOptions& options) {
  PartitionPlan plan;
  plan.num_reducers = ClampWorkers(options.num_reducers);
  plan.num_inputs = num_inputs;
  plan.planned_reducer_bytes.assign(plan.num_reducers, 0);

  uint64_t total_bytes = 0;
  for (const PartitionStats& p : stats) total_bytes += p.total_bytes;
  if (stats.empty() || total_bytes == 0) return plan;

  // A pivot heavier than split_factor × its fair share of one reducer gets
  // range-split; each slot (sub-partition or whole light pivot) is then
  // LPT-packed below.
  double mean_load =
      static_cast<double>(total_bytes) / plan.num_reducers;
  double split_threshold = std::max(1.0, options.split_factor * mean_load);
  int max_subpartitions = options.max_subpartitions > 0
                              ? options.max_subpartitions
                              : plan.num_reducers;

  struct Slot {
    uint64_t bytes = 0;
    ItemId pivot = kNoItem;
    int subpartition = -1;  // -1 = whole (unsplit) pivot
  };
  std::vector<Slot> slots;
  slots.reserve(stats.size());
  for (const PartitionStats& p : stats) {
    bool heavy = plan.num_reducers > 1 &&
                 static_cast<double>(p.total_bytes) > split_threshold;
    // The range split divides the input index space, so more sub-partitions
    // than input sequences cannot receive data.
    int k = heavy ? static_cast<int>(std::min<uint64_t>(
                        {static_cast<uint64_t>(std::ceil(
                             static_cast<double>(p.total_bytes) /
                             split_threshold)),
                         static_cast<uint64_t>(max_subpartitions),
                         num_inputs > 1 ? num_inputs : 1}))
                  : 1;
    if (k < 2) {
      slots.push_back(Slot{p.total_bytes, p.pivot, -1});
      continue;
    }
    // The measured bytes are divided evenly across the sub-partitions for
    // packing purposes (the true division depends on where the pivot's
    // sequences sit in the index space); the remainder goes to the first
    // slots so projected loads still sum to the measured total.
    uint64_t base = p.total_bytes / k;
    uint64_t remainder = p.total_bytes % k;
    for (int s = 0; s < k; ++s) {
      slots.push_back(
          Slot{base + (s < static_cast<int>(remainder) ? 1 : 0), p.pivot, s});
    }
    PivotSplit split;
    split.pivot = p.pivot;
    split.bytes = p.total_bytes;
    split.reducers.assign(k, 0);  // filled by the packing pass below
    plan.splits.push_back(std::move(split));
  }
  std::sort(plan.splits.begin(), plan.splits.end(),
            [](const PivotSplit& a, const PivotSplit& b) {
              return a.pivot < b.pivot;
            });

  // Greedy LPT: largest slot first onto the least-loaded reducer (ties by
  // reducer id, so the plan is deterministic).
  std::sort(slots.begin(), slots.end(), [](const Slot& a, const Slot& b) {
    if (a.bytes != b.bytes) return a.bytes > b.bytes;
    if (a.pivot != b.pivot) return a.pivot < b.pivot;
    return a.subpartition < b.subpartition;
  });
  auto split_of = [&plan](ItemId pivot) {
    return std::lower_bound(
        plan.splits.begin(), plan.splits.end(), pivot,
        [](const PivotSplit& s, ItemId p) { return s.pivot < p; });
  };
  for (const Slot& slot : slots) {
    int target = 0;
    for (int r = 1; r < plan.num_reducers; ++r) {
      if (plan.planned_reducer_bytes[r] < plan.planned_reducer_bytes[target]) {
        target = r;
      }
    }
    plan.planned_reducer_bytes[target] += slot.bytes;
    if (slot.subpartition < 0) {
      plan.assignments.emplace_back(slot.pivot, target);
    } else {
      split_of(slot.pivot)->reducers[slot.subpartition] = target;
    }
  }
  std::sort(plan.assignments.begin(), plan.assignments.end());
  // Construction-time contract (cold path, so always on): everything the
  // packing placed must point at a real reducer.
  for (const auto& [pivot, reducer] : plan.assignments) {
    DSEQ_CHECK_MSG(reducer >= 0 && reducer < plan.num_reducers,
                   "BuildPartitionPlan packed pivot " + std::to_string(pivot) +
                       " onto out-of-range reducer " + std::to_string(reducer));
  }
  for (const PivotSplit& split : plan.splits) {
    for (int reducer : split.reducers) {
      DSEQ_CHECK_MSG(reducer >= 0 && reducer < plan.num_reducers,
                     "BuildPartitionPlan packed a sub-partition of pivot " +
                         std::to_string(split.pivot) +
                         " onto out-of-range reducer " +
                         std::to_string(reducer));
    }
  }
  return plan;
}

BalanceSummary SummarizePlannedBalance(const PartitionPlan& plan) {
  return SummarizeReducerBytes(plan.planned_reducer_bytes);
}

}  // namespace dseq
