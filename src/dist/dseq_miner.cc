#include "src/dist/dseq_miner.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <stdexcept>

#include "src/util/thread_pool.h"

namespace dseq {

// --- Sequence rewriting (paper Sec. V-B) -----------------------------------
//
// The rewriter trims a prefix and a suffix of T while preserving the set of
// pivot-k candidate subsequences exactly. A leading position i can be
// dropped while (a) the grid has an alive ε self-loop on the initial state
// at layer i (so runs of the trimmed sequence extend back to runs of T by
// idling in the initial state) and (b) no other alive edge at layer i lies
// on a run producing a pivot-k candidate (so every pivot-k run of T idles
// in the initial state through layer i and survives the trim). Trailing
// positions are symmetric with "ε self-loop on a final state"; additionally
// the cut layer must not expose new acceptances: every final state that is
// forward-reachable at the cut must have an ε-only completion in T
// (otherwise the trimmed sequence would accept a candidate T does not).
//
// "Lies on a run producing a pivot-k candidate" is decided with the pivot
// DPs: the pivots of all candidates of runs through edge e at layer i are
// K(i, e.from) ⊕ out(e) ⊕ B(i+1, e.to), because ⊕ distributes over the
// per-coordinate unions the DP tables take.

PivotRewriter::PivotRewriter(const Sequence& T, const StateGrid& grid)
    : T_(T), grid_(grid) {
  if (!grid.HasAcceptingRun()) return;
  fwd_ = ComputeForwardPivots(grid);
  bwd_ = ComputeBackwardPivots(grid);
  eps_accept_ = grid.ComputeEpsAcceptTable();
}

bool PivotRewriter::EdgeProducesPivot(size_t layer,
                                      const StateGrid::Edge& edge,
                                      ItemId pivot) const {
  size_t ns = grid_.num_states();
  PivotSet through = fwd_[layer * ns + edge.from];
  if (through.IsEmpty()) return false;
  if (!edge.out.empty()) {
    through = PivotMerge(through, PivotSet::Items(edge.out));
  }
  through = PivotMerge(through, bwd_[(layer + 1) * ns + edge.to]);
  return std::binary_search(through.items.begin(), through.items.end(),
                            pivot);
}

Sequence PivotRewriter::Rewrite(ItemId pivot) const {
  size_t n = grid_.length();
  if (!grid_.HasAcceptingRun() || n == 0) return T_;
  size_t ns = grid_.num_states();
  StateId initial = grid_.initial_state();

  // Leading trim.
  size_t lead = 0;
  while (lead < n) {
    bool has_initial_self_loop = false;
    bool safe = true;
    for (const StateGrid::Edge& e : grid_.EdgesAt(lead)) {
      if (e.from == initial && e.to == initial && e.out.empty()) {
        has_initial_self_loop = true;
        continue;
      }
      if (EdgeProducesPivot(lead, e, pivot)) {
        safe = false;
        break;
      }
    }
    if (!safe || !has_initial_self_loop) break;
    ++lead;
  }

  // Trailing trim: keep T[lead..cut).
  size_t cut = n;
  while (cut > lead + 1) {
    size_t layer = cut - 1;
    bool safe = true;
    for (const StateGrid::Edge& e : grid_.EdgesAt(layer)) {
      bool final_self_loop =
          e.from == e.to && e.out.empty() && grid_.IsFinalState(e.from);
      if (!final_self_loop && EdgeProducesPivot(layer, e, pivot)) {
        safe = false;
        break;
      }
    }
    if (!safe) break;
    // Cut-layer acceptance check: a run of the trimmed sequence ends in any
    // forward-reachable final state at `layer`; its candidate is one of T's
    // only if T can finish from there without further output.
    for (StateId q = 0; q < ns && safe; ++q) {
      if (!grid_.IsFinalState(q) || !grid_.ForwardActive(layer, q)) continue;
      if (!grid_.Alive(layer, q) || !eps_accept_[layer * ns + q]) safe = false;
    }
    if (!safe) break;
    --cut;
  }

  if (lead == 0 && cut == n) return T_;
  return Sequence(T_.begin() + lead, T_.begin() + cut);
}

Sequence RewriteForPivot(const Sequence& T, const StateGrid& grid,
                         ItemId pivot) {
  return PivotRewriter(T, grid).Rewrite(pivot);
}

// --- The miner -------------------------------------------------------------

namespace {

// Map/reduce phases shared by the single-round miner, the chained recount
// driver, and the plan-driven balanced miner. The returned closures capture
// `db`, `fst`, `dict`, `options` (and `plan`, when given) by reference;
// callers keep them alive for the round. The recount driver passes its
// cross-round CachedDatabase so round 2 is served from the round-1 cache;
// the balanced miner passes its PartitionPlan so pivots the plan split ship
// under range-split sub-partition keys.
MapFn MakeDSeqMapFn(const std::vector<Sequence>& db, const Fst& fst,
                    const Dictionary& dict, const DSeqOptions& options,
                    CachedDatabase* cached_db = nullptr,
                    const PartitionPlan* plan = nullptr) {
  GridOptions grid_options;
  grid_options.prune_sigma = options.sigma;

  return [&db, &fst, &dict, &options, grid_options, cached_db, plan](
             size_t index, const EmitFn& emit) {
    const Sequence& T =
        cached_db != nullptr ? cached_db->Read(index) : db[index];
    StateGrid grid;
    Sequence pivots;
    if (options.use_grid) {
      grid = StateGrid::Build(T, fst, dict, grid_options);
      if (!grid.HasAcceptingRun()) return;
      pivots = FindPivotItems(grid);
    } else {
      if (!FindPivotItemsNoGrid(T, fst, dict, options.sigma,
                                options.nogrid_step_budget, &pivots)) {
        throw MiningBudgetError(
            "D-SEQ no-grid pivot search exceeded its step budget");
      }
    }
    if (pivots.empty()) return;

    // Only pay for the rewriting DPs when rewriting is on — the Fig. 10a
    // "no rewriting" ablation must not include their cost in map time.
    std::optional<PivotRewriter> rewriter;
    if (options.rewrite && options.use_grid) rewriter.emplace(T, grid);
    std::string value;
    for (ItemId k : pivots) {
      value.clear();
      if (options.aggregate_sequences) PutVarint(&value, 1);
      PutSequence(&value, rewriter ? rewriter->Rewrite(k) : T);
      const PivotSplit* split =
          plan != nullptr ? plan->FindSplit(k) : nullptr;
      if (split != nullptr) {
        emit(EncodeSubpartitionKey(k, plan->SubpartitionForIndex(*split,
                                                                 index)),
             value);
      } else {
        emit(EncodePivotKey(k), value);
      }
    }
  };
}

// Deserializes one partition's shuffled (possibly weighted) sequences into
// σ-pruned grids — the shared front half of every D-SEQ reduce.
void BuildPartitionGrids(const std::vector<std::string_view>& values,
                         const Fst& fst, const Dictionary& dict,
                         const GridOptions& grid_options,
                         bool aggregate_sequences,
                         std::vector<StateGrid>* grids,
                         std::vector<uint64_t>* weights) {
  grids->reserve(values.size());
  weights->reserve(values.size());
  Sequence seq;
  for (std::string_view v : values) {
    size_t pos = 0;
    uint64_t weight = 1;
    if (aggregate_sequences && !GetVarint(v, &pos, &weight)) {
      throw std::invalid_argument("malformed weighted shuffle record");
    }
    if (!GetSequence(v, &pos, &seq) || pos != v.size()) {
      throw std::invalid_argument("malformed D-SEQ shuffle record");
    }
    grids->push_back(StateGrid::Build(seq, fst, dict, grid_options));
    weights->push_back(weight);
  }
}

PartitionReduceFn MakeDSeqReduceFn(const Fst& fst, const Dictionary& dict,
                                   const DSeqOptions& options) {
  GridOptions grid_options;
  grid_options.prune_sigma = options.sigma;

  return [&fst, &dict, &options, grid_options](
             std::string_view key, std::vector<std::string_view>& values,
             MiningResult& out) {
    ItemId pivot = DecodePivotKey(key);
    std::vector<StateGrid> grids;
    std::vector<uint64_t> weights;
    BuildPartitionGrids(values, fst, dict, grid_options,
                        options.aggregate_sequences, &grids, &weights);

    DesqDfsOptions local;
    local.sigma = options.sigma;
    local.pivot = pivot;
    local.early_stop = options.early_stop;
    MiningResult local_result = MineDesqDfsGrids(grids, weights, local);
    out.insert(out.end(), std::make_move_iterator(local_result.begin()),
               std::make_move_iterator(local_result.end()));
  };
}

CombinerFactory DSeqCombinerFactory(const DSeqOptions& options) {
  return options.aggregate_sequences ? CombinerFactory(MakeWeightedValueCombiner)
                                     : CombinerFactory(nullptr);
}

}  // namespace

DistributedResult MineDSeq(const std::vector<Sequence>& db, const Fst& fst,
                           const Dictionary& dict,
                           const DSeqOptions& options) {
  return RunDistributedMining(db.size(), MakeDSeqMapFn(db, fst, dict, options),
                              DSeqCombinerFactory(options),
                              MakeDSeqReduceFn(fst, dict, options), options);
}

ChainedDistributedResult MineDSeqRecount(const std::vector<Sequence>& db,
                                         const Fst& fst,
                                         const Dictionary& dict,
                                         const DSeqRecountOptions& options) {
  // Round 1 recounts the f-list; round 2 builds σ-pruned grids against it,
  // reading the database from the round-1 cache.
  return RunRecountMining(
      db, dict, options.recount_sample_every, options,
      [&](const Dictionary& recounted, CachedDatabase& cached_db,
          MapFn* map_fn, CombinerFactory* combiner_factory,
          PartitionReduceFn* reduce_fn) {
        *map_fn = MakeDSeqMapFn(db, fst, recounted, options, &cached_db);
        *combiner_factory = DSeqCombinerFactory(options);
        *reduce_fn = MakeDSeqReduceFn(fst, recounted, options);
      });
}

ChainedDistributedResult MineDSeqBalanced(const std::vector<Sequence>& db,
                                          const Fst& fst,
                                          const Dictionary& dict,
                                          const DSeqBalanceOptions& options,
                                          PartitionPlan* plan_out) {
  // The balanced run owns the key→reducer hook (the whole point is to
  // install the plan's); silently discarding a caller-supplied partitioner
  // would contradict DistributedRunOptions' pass-through contract.
  if (options.partitioner) {
    throw std::invalid_argument(
        "MineDSeqBalanced installs the plan's partitioner; "
        "options.partitioner must be unset");
  }
  // Planning pass (driver-local, no shuffle): measure what the map phase
  // would ship per pivot and pack it onto the configured reducers.
  std::vector<PartitionStats> stats = ComputePartitionStats(
      db, fst, dict, options.sigma, options.num_map_workers);
  PartitionPlanOptions plan_options = options.plan;
  plan_options.num_reducers = ClampWorkers(options.num_reduce_workers);
  PartitionPlan plan = BuildPartitionPlan(stats, db.size(), plan_options);
  if (plan_out != nullptr) *plan_out = plan;

  ChainedDataflowOptions chained = MakeChainedOptions(options);
  chained.partitioner = plan.MakePartitioner();
  DataflowJob job(chained);

  GridOptions grid_options;
  grid_options.prune_sigma = options.sigma;

  // Mining round. Unsplit partitions finish here exactly as in MineDSeq.
  // Sub-partitions of a split pivot see only a slice of the pivot's
  // sequences, so their local support proves nothing about σ — they mine at
  // σ=1 and ship (pattern, local support) records for the reconcile round.
  //
  // Both outcomes leave the reduce as boundary records (the only channel
  // that survives the proc backend's forked reducers), distinguished by a
  // one-byte tag: 'F' = finished pattern, 'S' = split partial. The tag is
  // stripped by the driver before anything re-enters a shuffle, so round
  // metrics are unchanged by the tagging.
  ChainReduceFn reduce = [&](int /*worker*/, std::string_view key,
                             std::vector<std::string_view>& values,
                             const EmitFn& emit) {
    PivotKeyParts parts = DecodePivotKeyParts(key);
    std::vector<StateGrid> grids;
    std::vector<uint64_t> weights;
    BuildPartitionGrids(values, fst, dict, grid_options,
                        options.aggregate_sequences, &grids, &weights);

    DesqDfsOptions local;
    local.pivot = parts.pivot;
    local.early_stop = options.early_stop;
    local.sigma = parts.subpartition < 0 ? options.sigma : 1;
    MiningResult local_result = MineDesqDfsGrids(grids, weights, local);
    const char tag = parts.subpartition < 0 ? 'F' : 'S';
    std::string k;
    std::string v;
    for (const PatternCount& pc : local_result) {
      k.assign(1, tag);
      v.clear();
      PutSequence(&k, pc.pattern);
      PutVarint(&v, pc.frequency);
      emit(k, v);
    }
  };
  job.RunRound(db.size(),
               MakeDSeqMapFn(db, fst, dict, options, nullptr, &plan),
               DSeqCombinerFactory(options), reduce);

  // Partition the boundary records by tag: finished patterns are final,
  // split partials (tag stripped) feed the reconcile round below in their
  // emission order — exactly the record order the pre-tagging driver
  // re-shuffled, so the reconcile round's bytes are unchanged.
  MiningResult patterns;
  std::vector<Record> split;
  for (Record& record : job.TakeRecords()) {
    if (record.key.empty() || (record.key[0] != 'F' && record.key[0] != 'S')) {
      throw std::invalid_argument("malformed balanced-mining record tag");
    }
    const char tag = record.key[0];
    record.key.erase(0, 1);
    if (tag == 'S') {
      split.push_back(std::move(record));
      continue;
    }
    PatternCount mined;
    size_t pos = 0;
    if (!GetSequence(record.key, &pos, &mined.pattern) ||
        pos != record.key.size()) {
      throw std::invalid_argument("malformed finished-pattern key");
    }
    pos = 0;
    if (!GetVarint(record.value, &pos, &mined.frequency) ||
        pos != record.value.size()) {
      throw std::invalid_argument("malformed finished-pattern value");
    }
    patterns.push_back(std::move(mined));
  }

  // Reconcile round: sum each split pattern's per-sub-partition supports
  // and apply σ once, globally. Every input sequence reached exactly one
  // sub-partition of its pivot, so the sums equal the unsplit supports and
  // the merged output is byte-identical to MineDSeq's. Survivors come back
  // as boundary records (proc-safe, as above).
  if (!split.empty()) {
    MapFn replay = [&split](size_t index, const EmitFn& emit) {
      emit(split[index].key, split[index].value);
    };
    ChainReduceFn sum = [&](int /*worker*/, std::string_view key,
                            std::vector<std::string_view>& values,
                            const EmitFn& emit) {
      uint64_t total = 0;
      for (std::string_view v : values) {
        size_t pos = 0;
        uint64_t count = 0;
        if (!GetVarint(v, &pos, &count) || pos != v.size()) {
          throw std::invalid_argument("malformed split-support record");
        }
        if (count > std::numeric_limits<uint64_t>::max() - total) {
          throw std::overflow_error("split-support sum overflows");
        }
        total += count;
      }
      if (total < options.sigma) return;
      std::string v;
      PutVarint(&v, total);
      emit(key, v);
    };
    job.RunRound(split.size(), replay, MakeSumCombiner, sum);
    for (const Record& record : job.TakeRecords()) {
      PatternCount mined;
      size_t pos = 0;
      if (!GetSequence(record.key, &pos, &mined.pattern) ||
          pos != record.key.size()) {
        throw std::invalid_argument("malformed split-pattern key");
      }
      pos = 0;
      if (!GetVarint(record.value, &pos, &mined.frequency) ||
          pos != record.value.size()) {
        throw std::invalid_argument("malformed reconciled-support value");
      }
      patterns.push_back(std::move(mined));
    }
  }

  Canonicalize(&patterns);
  return MakeChainedResult(std::move(patterns), job);
}

}  // namespace dseq
