// Partition statistics for item-based partitioning (paper Sec. III-B and
// Tab. IV discussion).
//
// Computes, per pivot partition P_k, how many (rewritten) sequences D-SEQ's
// map phase would send there and how many serialized bytes they occupy, and
// summarizes the balance of the resulting partitioning. The paper's
// frequency-based item order assigns the least data to the most frequent
// items, which is what keeps item-based partitioning balanced.
#ifndef DSEQ_DIST_PARTITION_STATS_H_
#define DSEQ_DIST_PARTITION_STATS_H_

#include <cstdint>
#include <vector>

#include "src/dict/dictionary.h"
#include "src/dist/distributed.h"
#include "src/fst/fst.h"

namespace dseq {

/// Shuffle volume of one pivot partition under D-SEQ partitioning.
struct PartitionStats {
  ItemId pivot = kNoItem;
  uint64_t num_sequences = 0;  // (rewritten) input sequences sent to P_pivot
  uint64_t total_bytes = 0;    // serialized bytes of those sequences
};

/// Computes the per-partition statistics of D-SEQ's map output for `db`
/// under `fst` with threshold `sigma` (grid σ-pruning + rewriting, exactly
/// what MineDSeq ships). Result is sorted by pivot ascending; partitions
/// that receive no data are omitted. Deterministic for any `num_workers`.
std::vector<PartitionStats> ComputePartitionStats(
    const std::vector<Sequence>& db, const Fst& fst, const Dictionary& dict,
    uint64_t sigma, int num_workers = 1);

/// Aggregate balance measures over a partitioning.
struct BalanceSummary {
  size_t num_partitions = 0;
  uint64_t total_bytes = 0;
  double max_to_mean_bytes = 0.0;  // largest partition / mean partition
  double largest_share = 0.0;      // largest partition / total
};

BalanceSummary SummarizeBalance(const std::vector<PartitionStats>& stats);

}  // namespace dseq

#endif  // DSEQ_DIST_PARTITION_STATS_H_
