// Partition statistics for item-based partitioning (paper Sec. III-B and
// Tab. IV discussion).
//
// Computes, per pivot partition P_k, how many (rewritten) sequences D-SEQ's
// map phase would send there and how many serialized bytes they occupy, and
// summarizes the balance of the resulting partitioning. The paper's
// frequency-based item order assigns the least data to the most frequent
// items, which is what keeps item-based partitioning balanced.
#ifndef DSEQ_DIST_PARTITION_STATS_H_
#define DSEQ_DIST_PARTITION_STATS_H_

#include <cstdint>
#include <vector>

#include "src/dict/dictionary.h"
#include "src/dist/distributed.h"
#include "src/fst/fst.h"

namespace dseq {

/// Shuffle volume of one pivot partition under D-SEQ partitioning.
struct PartitionStats {
  ItemId pivot = kNoItem;
  uint64_t num_sequences = 0;  // (rewritten) input sequences sent to P_pivot
  /// Shuffle bytes of those sequences under the engine's accounting (key +
  /// value + kShuffleRecordOverheadBytes per record), so partition plans
  /// packed from these stats project the loads the run will measure.
  uint64_t total_bytes = 0;
};

/// Computes the per-partition statistics of D-SEQ's map output for `db`
/// under `fst` with threshold `sigma` (grid σ-pruning + rewriting, exactly
/// what MineDSeq ships). Result is sorted by pivot ascending; partitions
/// that receive no data are omitted. Deterministic for any `num_workers`.
///
/// The stats model the *uncombined* shuffle: with
/// DSeqOptions::aggregate_sequences the run additionally prepends a weight
/// varint per record and merges identical rewritten sequences per map
/// worker, so measured per-reducer bytes come in at or below these numbers
/// (pre-combine volume is still the right packing signal — it bounds what
/// any worker sharding can ship).
std::vector<PartitionStats> ComputePartitionStats(
    const std::vector<Sequence>& db, const Fst& fst, const Dictionary& dict,
    uint64_t sigma, int num_workers = 1);

/// Aggregate balance measures over a partitioning. Two views:
///  * per pivot: over the pivots that received data (the historical view);
///  * per reducer: against the *configured* reducer count, so reducers that
///    received nothing count — on a sparse run, 3 equal pivots on 8
///    reducers is a max/mean of 8/3, not 1.
struct BalanceSummary {
  size_t num_partitions = 0;
  uint64_t total_bytes = 0;
  double max_to_mean_bytes = 0.0;  // largest partition / mean partition
  double largest_share = 0.0;      // largest partition / total

  // Per-reducer view; only filled when a reducer count is known (the
  // two-argument SummarizeBalance or SummarizeReducerBytes).
  int num_reducers = 0;
  uint64_t max_reducer_bytes = 0;
  double max_to_mean_reducer_bytes = 0.0;  // largest reducer / (total / R)
  double largest_reducer_share = 0.0;      // largest reducer / total
};

/// Summarizes the per-pivot balance of `stats`; with `num_reducers` > 0 also
/// the per-reducer view under the engine's hash partitioner
/// (ShuffleReducerForKey over EncodePivotKey), empty reducers included.
BalanceSummary SummarizeBalance(const std::vector<PartitionStats>& stats,
                                int num_reducers = 0);

/// Per-reducer balance of measured shuffle volumes (one entry per reducer,
/// e.g. DataflowMetrics::reducer_bytes). Fills only the per-reducer fields
/// and total_bytes.
BalanceSummary SummarizeReducerBytes(const std::vector<uint64_t>& reducer_bytes);

}  // namespace dseq

#endif  // DSEQ_DIST_PARTITION_STATS_H_
