// D-CAND: distributed mining with candidate-represented partitions (paper
// Sec. VI).
//
// One map-shuffle-reduce round:
//   map    : per input sequence T, enumerate the accepting runs of the
//            σ-pruned grid and insert each run into the output NFA of every
//            pivot k the run can produce; minimize (or canonicalize) and
//            serialize each NFA in DFS order
//   shuffle: partitions keyed by pivot item; a combiner aggregates identical
//            serialized NFAs into weighted NFAs (Sec. VI-A)
//   reduce : each partition mines its weighted NFAs directly by pattern
//            growth over NFA states, counting distinct-NFA support
#ifndef DSEQ_DIST_DCAND_MINER_H_
#define DSEQ_DIST_DCAND_MINER_H_

#include <cstdint>
#include <vector>

#include "src/core/desq_dfs.h"
#include "src/dict/dictionary.h"
#include "src/dist/distributed.h"
#include "src/fst/fst.h"
#include "src/nfa/output_nfa.h"

namespace dseq {

struct DCandOptions : DistributedRunOptions {
  uint64_t sigma = 1;

  /// Minimize NFAs before serialization (Revuz, linear for the acyclic
  /// tries). When false, tries are only canonicalized (paper Fig. 10b
  /// "tries" ablation).
  bool minimize_nfas = true;

  /// Aggregate identical serialized NFAs into weighted NFAs in the shuffle
  /// (paper Sec. VI-A). When false, every NFA is shipped individually.
  bool aggregate_nfas = true;

  /// Per-sequence accepting-run budget; exceeding it throws
  /// MiningBudgetError (run explosion = certain OOM). 0 = unlimited.
  uint64_t max_runs_per_sequence = 0;

  /// Per-sequence budget on the total number of trie states across all of
  /// the sequence's partition NFAs; exceeding it throws MiningBudgetError
  /// (the paper's per-container memory limit). 0 = unlimited.
  uint64_t max_trie_states_per_sequence = 0;
};

/// Local miner of one candidate partition: pattern growth directly over the
/// weighted NFAs. A candidate is counted once per NFA (distinct-sequence
/// support) with the NFA's weight; only sequences containing `pivot` are
/// reported. Result is canonicalized.
MiningResult MineNfas(const std::vector<OutputNfa>& nfas,
                      const std::vector<uint64_t>& weights, uint64_t sigma,
                      ItemId pivot);

/// Runs D-CAND. `db` must be fid-recoded with `dict`.
DistributedResult MineDCand(const std::vector<Sequence>& db, const Fst& fst,
                            const Dictionary& dict,
                            const DCandOptions& options);

}  // namespace dseq

#endif  // DSEQ_DIST_DCAND_MINER_H_
