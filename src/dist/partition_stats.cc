#include "src/dist/partition_stats.h"

#include <algorithm>
#include <map>

#include "src/core/grid.h"
#include "src/core/pivot.h"
#include "src/dist/dseq_miner.h"
#include "src/util/thread_pool.h"

namespace dseq {

std::vector<PartitionStats> ComputePartitionStats(
    const std::vector<Sequence>& db, const Fst& fst, const Dictionary& dict,
    uint64_t sigma, int num_workers) {
  GridOptions grid_options;
  grid_options.prune_sigma = sigma;

  int workers = ClampWorkers(num_workers);
  std::vector<std::map<ItemId, PartitionStats>> per_worker(workers);
  ParallelShards(db.size(), workers, [&](int w, size_t begin, size_t end) {
    std::map<ItemId, PartitionStats>& local = per_worker[w];
    std::string value;
    for (size_t i = begin; i < end; ++i) {
      const Sequence& T = db[i];
      StateGrid grid = StateGrid::Build(T, fst, dict, grid_options);
      if (!grid.HasAcceptingRun()) continue;
      Sequence pivots = FindPivotItems(grid);
      if (pivots.empty()) continue;
      PivotRewriter rewriter(T, grid);
      for (ItemId k : pivots) {
        value.clear();
        PutSequence(&value, rewriter.Rewrite(k));
        PartitionStats& stats = local[k];
        stats.pivot = k;
        stats.num_sequences += 1;
        stats.total_bytes += EncodePivotKey(k).size() + value.size() +
                             kShuffleRecordOverheadBytes;
      }
    }
  });

  std::map<ItemId, PartitionStats> merged;
  for (const auto& local : per_worker) {
    for (const auto& [pivot, stats] : local) {
      PartitionStats& out = merged[pivot];
      out.pivot = pivot;
      out.num_sequences += stats.num_sequences;
      out.total_bytes += stats.total_bytes;
    }
  }

  std::vector<PartitionStats> result;
  result.reserve(merged.size());
  for (auto& [pivot, stats] : merged) result.push_back(stats);
  return result;
}

namespace {

// Fills the per-reducer fields of `summary` from per-reducer volumes.
void FillReducerView(const std::vector<uint64_t>& reducer_bytes,
                     BalanceSummary* summary) {
  summary->num_reducers = static_cast<int>(reducer_bytes.size());
  if (reducer_bytes.empty()) return;
  uint64_t total = 0;
  uint64_t largest = 0;
  for (uint64_t b : reducer_bytes) {
    total += b;
    largest = std::max(largest, b);
  }
  summary->max_reducer_bytes = largest;
  if (total == 0) return;
  double mean = static_cast<double>(total) / reducer_bytes.size();
  summary->max_to_mean_reducer_bytes = largest / mean;
  summary->largest_reducer_share = static_cast<double>(largest) / total;
}

}  // namespace

BalanceSummary SummarizeBalance(const std::vector<PartitionStats>& stats,
                                int num_reducers) {
  BalanceSummary summary;
  summary.num_partitions = stats.size();
  uint64_t largest = 0;
  for (const PartitionStats& p : stats) {
    summary.total_bytes += p.total_bytes;
    largest = std::max(largest, p.total_bytes);
  }
  if (num_reducers > 0) {
    // Replay the engine's hash assignment over the configured reducer
    // count; reducers no pivot hashes to stay at zero and still count.
    std::vector<uint64_t> reducer_bytes(num_reducers, 0);
    for (const PartitionStats& p : stats) {
      reducer_bytes[ShuffleReducerForKey(EncodePivotKey(p.pivot),
                                         num_reducers)] += p.total_bytes;
    }
    FillReducerView(reducer_bytes, &summary);
  }
  if (stats.empty() || summary.total_bytes == 0) return summary;
  double mean =
      static_cast<double>(summary.total_bytes) / summary.num_partitions;
  summary.max_to_mean_bytes = largest / mean;
  summary.largest_share =
      static_cast<double>(largest) / summary.total_bytes;
  return summary;
}

BalanceSummary SummarizeReducerBytes(
    const std::vector<uint64_t>& reducer_bytes) {
  BalanceSummary summary;
  FillReducerView(reducer_bytes, &summary);
  for (uint64_t b : reducer_bytes) summary.total_bytes += b;
  return summary;
}

}  // namespace dseq
