#include "src/dist/partition_stats.h"

#include <algorithm>
#include <map>

#include "src/core/grid.h"
#include "src/core/pivot.h"
#include "src/dist/dseq_miner.h"
#include "src/util/thread_pool.h"

namespace dseq {

std::vector<PartitionStats> ComputePartitionStats(
    const std::vector<Sequence>& db, const Fst& fst, const Dictionary& dict,
    uint64_t sigma, int num_workers) {
  GridOptions grid_options;
  grid_options.prune_sigma = sigma;

  int workers = std::max(1, num_workers);
  std::vector<std::map<ItemId, PartitionStats>> per_worker(workers);
  ParallelShards(db.size(), workers, [&](int w, size_t begin, size_t end) {
    std::map<ItemId, PartitionStats>& local = per_worker[w];
    std::string value;
    for (size_t i = begin; i < end; ++i) {
      const Sequence& T = db[i];
      StateGrid grid = StateGrid::Build(T, fst, dict, grid_options);
      if (!grid.HasAcceptingRun()) continue;
      Sequence pivots = FindPivotItems(grid);
      if (pivots.empty()) continue;
      PivotRewriter rewriter(T, grid);
      for (ItemId k : pivots) {
        value.clear();
        PutSequence(&value, rewriter.Rewrite(k));
        PartitionStats& stats = local[k];
        stats.pivot = k;
        stats.num_sequences += 1;
        stats.total_bytes += value.size();
      }
    }
  });

  std::map<ItemId, PartitionStats> merged;
  for (const auto& local : per_worker) {
    for (const auto& [pivot, stats] : local) {
      PartitionStats& out = merged[pivot];
      out.pivot = pivot;
      out.num_sequences += stats.num_sequences;
      out.total_bytes += stats.total_bytes;
    }
  }

  std::vector<PartitionStats> result;
  result.reserve(merged.size());
  for (auto& [pivot, stats] : merged) result.push_back(stats);
  return result;
}

BalanceSummary SummarizeBalance(const std::vector<PartitionStats>& stats) {
  BalanceSummary summary;
  summary.num_partitions = stats.size();
  if (stats.empty()) return summary;
  uint64_t largest = 0;
  for (const PartitionStats& p : stats) {
    summary.total_bytes += p.total_bytes;
    largest = std::max(largest, p.total_bytes);
  }
  if (summary.total_bytes == 0) return summary;
  double mean =
      static_cast<double>(summary.total_bytes) / summary.num_partitions;
  summary.max_to_mean_bytes = largest / mean;
  summary.largest_share =
      static_cast<double>(largest) / summary.total_bytes;
  return summary;
}

}  // namespace dseq
