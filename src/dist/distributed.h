// Shared infrastructure of the distributed miners (paper Sec. III).
//
// Every distributed algorithm in this library (NAIVE/SEMI-NAIVE, D-SEQ,
// D-CAND, and the specialized LASH/MG-FSM/PrefixSpan baselines) is one
// map-shuffle-reduce round over the in-process dataflow engine. This header
// collects what they all share: the result type (patterns + dataflow
// metrics), the pivot-partition key coding, and small helpers.
#ifndef DSEQ_DIST_DISTRIBUTED_H_
#define DSEQ_DIST_DISTRIBUTED_H_

#include <functional>
#include <string>
#include <vector>

#include "src/core/mining.h"
#include "src/dataflow/chained.h"
#include "src/dataflow/engine.h"
#include "src/dict/dictionary.h"
#include "src/util/common.h"
#include "src/util/varint.h"

namespace dseq {

/// Result of one distributed mining run: the frequent patterns
/// (canonicalized, sorted by pattern) plus the dataflow metrics of the
/// map-shuffle-reduce round that produced them.
struct DistributedResult {
  MiningResult patterns;
  DataflowMetrics metrics;
};

/// Result of a chained (multi-round) distributed mining run: the frequent
/// patterns plus one DataflowMetrics per shuffle round (the paper's
/// per-stage `shuffleWriteBytes` view) and their field-wise sum.
struct ChainedDistributedResult {
  MiningResult patterns;
  std::vector<DataflowMetrics> round_metrics;
  DataflowMetrics aggregate;

  size_t num_rounds() const { return round_metrics.size(); }
};

/// Dataflow knobs every distributed miner shares; the per-algorithm
/// options structs extend this.
struct DistributedRunOptions {
  int num_map_workers = 1;
  int num_reduce_workers = 1;
  Execution execution = Execution::kThreads;
  /// Per-round shuffle budget (0 = unlimited); for chained runs each round
  /// is bounded independently.
  uint64_t shuffle_budget_bytes = 0;
  /// Whole-job shuffle budget across all rounds (0 = unlimited). The
  /// single-round miners are one-round chains, so for them it acts as one
  /// more per-round cap.
  uint64_t cumulative_shuffle_budget_bytes = 0;
};

/// The DataflowJob configuration a chained miner derives from its options.
ChainedDataflowOptions MakeChainedOptions(const DistributedRunOptions& options);

/// Reduce callback of the shared driver: one call per distinct shuffle key,
/// appending the partition's frequent patterns to `out` (a per-reduce-worker
/// buffer, so no locking is needed).
using PartitionReduceFn = std::function<void(
    const std::string& key, std::vector<std::string>& values,
    MiningResult& out)>;

/// Shared driver of all distributed miners: runs one map-shuffle-reduce
/// round, collects per-reduce-worker patterns, and returns the merged,
/// canonicalized result plus the round's metrics.
DistributedResult RunDistributedMining(size_t num_inputs, const MapFn& map_fn,
                                       const CombinerFactory& combiner_factory,
                                       const PartitionReduceFn& reduce_fn,
                                       const DistributedRunOptions& options);

/// The chained-job analogue of RunDistributedMining: runs one mining round
/// on `job` (sharing its budgets and per-round metrics) and returns the
/// round's merged, canonicalized patterns. The round emits no boundary
/// records, so it is a terminal round of the chain.
MiningResult RunMiningRound(DataflowJob& job, size_t num_inputs,
                            const MapFn& map_fn,
                            const CombinerFactory& combiner_factory,
                            const PartitionReduceFn& reduce_fn);

/// Assembles the result every chained driver returns: the patterns plus the
/// finished job's per-round and aggregate metrics.
ChainedDistributedResult MakeChainedResult(MiningResult patterns,
                                           const DataflowJob& job);

/// Builds the mining round of a recount driver against the recounted
/// dictionary (which outlives the round but not the call).
using MakeMiningRoundFn =
    std::function<void(const Dictionary& recounted, MapFn* map_fn,
                       CombinerFactory* combiner_factory,
                       PartitionReduceFn* reduce_fn)>;

/// Shared driver of the two-round recount miners: round 1 recounts the
/// f-list via RecountFrequencies, round 2 runs the mining round
/// `make_round` builds against the recounted dictionary.
ChainedDistributedResult RunRecountMining(const std::vector<Sequence>& db,
                                          const Dictionary& dict,
                                          uint32_t sample_every,
                                          const DistributedRunOptions& options,
                                          const MakeMiningRoundFn& make_round);

/// Distributed frequency recount (round 1 of the iterative recount drivers):
/// counts, on `job`, the per-item document frequencies of `db` — exactly
/// Dictionary::ComputeDocFrequencies semantics (an occurrence counts for
/// every ancestor, once per sequence) — and returns a copy of `dict` with
/// the recounted frequencies installed. With `sample_every` > 1 only every
/// sample_every-th sequence is counted and counts are scaled back up (the
/// paper's sampled f-list); sample_every == 1 reproduces the exact counts,
/// so downstream mining results are unchanged.
Dictionary RecountFrequencies(DataflowJob& job,
                              const std::vector<Sequence>& db,
                              const Dictionary& dict,
                              uint32_t sample_every = 1);

/// Encodes an item-partition key (the pivot item) as a shuffle key. Varint
/// coded so that shuffle-size accounting stays honest for frequent (small
/// fid) pivots.
std::string EncodePivotKey(ItemId pivot);

/// Decodes a key written by EncodePivotKey. Throws std::invalid_argument on
/// malformed keys (they never cross a trust boundary, but the shuffle is
/// serialized end-to-end and decoding errors should fail loudly).
ItemId DecodePivotKey(const std::string& key);

/// Number of distinct sequences in `sequences` (order-insensitive). Used for
/// distinct-sequence support accounting in tests and diagnostics.
size_t DistinctSequences(std::vector<Sequence> sequences);

}  // namespace dseq

#endif  // DSEQ_DIST_DISTRIBUTED_H_
