// Shared infrastructure of the distributed miners (paper Sec. III).
//
// Every distributed algorithm in this library (NAIVE/SEMI-NAIVE, D-SEQ,
// D-CAND, and the specialized LASH/MG-FSM/PrefixSpan baselines) is one
// map-shuffle-reduce round over the in-process dataflow engine. This header
// collects what they all share: the result type (patterns + dataflow
// metrics), the pivot-partition key coding, and small helpers.
#ifndef DSEQ_DIST_DISTRIBUTED_H_
#define DSEQ_DIST_DISTRIBUTED_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/mining.h"
#include "src/dataflow/chained.h"
#include "src/dataflow/engine.h"
#include "src/dict/dictionary.h"
#include "src/util/common.h"
#include "src/util/varint.h"

namespace dseq {

/// Result of one distributed mining run: the frequent patterns
/// (canonicalized, sorted by pattern) plus the dataflow metrics of the
/// map-shuffle-reduce round that produced them.
struct DistributedResult {
  MiningResult patterns;
  DataflowMetrics metrics;
};

/// Result of a chained (multi-round) distributed mining run: the frequent
/// patterns plus one DataflowMetrics per shuffle round (the paper's
/// per-stage `shuffleWriteBytes` view) and their field-wise sum.
struct ChainedDistributedResult {
  MiningResult patterns;
  std::vector<DataflowMetrics> round_metrics;
  DataflowMetrics aggregate;

  /// Database-read accounting of drivers that route input reads through a
  /// CachedDatabase (the recount miners): reads served from backing storage
  /// vs. from the round-1 cache. Both 0 for drivers without a cache.
  uint64_t input_storage_reads = 0;
  uint64_t input_cache_hits = 0;

  size_t num_rounds() const { return round_metrics.size(); }
};

/// Dataflow knobs every distributed miner shares; the per-algorithm
/// options structs extend this.
struct DistributedRunOptions {
  int num_map_workers = 1;
  int num_reduce_workers = 1;
  Execution execution = Execution::kThreads;
  /// Per-round shuffle budget (0 = unlimited); for chained runs each round
  /// is bounded independently.
  uint64_t shuffle_budget_bytes = 0;
  /// Whole-job shuffle budget across all rounds (0 = unlimited). The
  /// single-round miners are one-round chains, so for them it acts as one
  /// more per-round cap.
  uint64_t cumulative_shuffle_budget_bytes = 0;
  /// Block-compress the shuffle (DataflowOptions::compress_shuffle): the
  /// metrics then report shuffle_compressed_bytes next to the raw volume.
  bool compress_shuffle = false;
  /// Key→reducer override (DataflowOptions::partitioner); null = hash.
  /// Flows through every round of a chained run (the recount drivers
  /// included). Assignment never affects the mined patterns, only where a
  /// partition's data lands — see PartitionPlan for the plan-driven hook.
  PartitionerFn partitioner;
  /// Out-of-core execution (DataflowOptions::memory_budget_bytes /
  /// spill_dir / compress_spill / spill_merge_fan_in, which see): bound the
  /// resident shuffle + combiner state of every round, spilling sorted runs
  /// to spill_dir when set — the mined patterns are identical to the
  /// unbudgeted run; DataflowMetrics::spill_* report the out-of-core
  /// volume per round.
  uint64_t memory_budget_bytes = 0;
  std::string spill_dir;
  bool compress_spill = false;
  int spill_merge_fan_in = 16;
  /// Execution backend of every round (DataflowOptions::backend):
  /// kLocal = threads in this process, kProc = real forked worker processes
  /// over a socket shuffle (src/rpc/proc_backend.h). Mined patterns and raw
  /// shuffle metrics are identical across backends.
  DataflowBackend backend = DataflowBackend::kLocal;
  /// Proc backend only (DataflowOptions::proc_worker_timeout_ms): SIGKILL
  /// and reassign an in-flight worker with no progress for this long;
  /// 0 disables. Progress includes the worker's kPong heartbeats, so only
  /// hung (not slow) tasks are killed.
  int proc_worker_timeout_ms = 0;
  /// Proc backend only (DataflowOptions::proc_max_task_attempts): total
  /// executions a task may consume before the round fails with
  /// ProcTaskFailedError. Clamped to >= 1.
  int proc_max_task_attempts = 3;
  /// Proc backend only (DataflowOptions::proc_heartbeat_interval_ms):
  /// explicit heartbeat cadence; 0 derives it from the worker timeout.
  int proc_heartbeat_interval_ms = 0;
  /// Proc backend only (DataflowOptions::proc_round_deadline_ms): wall-clock
  /// cap per round; exceeding it throws ProcDeadlineError. 0 disables.
  int proc_round_deadline_ms = 0;
  /// Proc backend only (DataflowOptions::proc_tail_park_bytes): staged tail
  /// segments at least this large are parked in spill files at the
  /// coordinator (requires spill_dir); 0 keeps every tail resident.
  uint64_t proc_tail_park_bytes = uint64_t{1} << 20;
};

/// Cross-round cache of database reads for chained drivers — the in-process
/// analogue of Spark's RDD cache. The first read of an index goes to
/// backing storage and marks it cached; later reads (typically by the next
/// round's map phase) are cache hits. Thread-safe; read counters make the
/// caching observable to tests and --stats.
class CachedDatabase {
 public:
  explicit CachedDatabase(const std::vector<Sequence>& storage)
      : storage_(storage),
        cached_(std::make_unique<std::atomic<uint8_t>[]>(storage.size())) {
    // Relaxed: the object is published to worker threads only after
    // construction (thread creation orders these stores before any Read).
    for (size_t i = 0; i < storage.size(); ++i) {
      cached_[i].store(0, std::memory_order_relaxed);
    }
  }

  const Sequence& Read(size_t index) {
    // Both the instance counters (summed by local drivers) and the
    // process-global gauges are bumped: a proc-backend worker reports its
    // global-gauge deltas through kMapDone, which is the only way reads
    // performed inside a forked child become visible to the coordinator.
    if (cached_[index].exchange(1, std::memory_order_relaxed) != 0) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      GlobalInputCacheHits().fetch_add(1, std::memory_order_relaxed);
    } else {
      storage_reads_.fetch_add(1, std::memory_order_relaxed);
      GlobalInputStorageReads().fetch_add(1, std::memory_order_relaxed);
    }
    return storage_[index];
  }

  size_t size() const { return storage_.size(); }
  // Relaxed: drivers sum the counters between rounds, after the round's
  // workers are joined — the join is the ordering edge, not the load.
  uint64_t storage_reads() const {
    return storage_reads_.load(std::memory_order_relaxed);
  }
  uint64_t cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }

 private:
  const std::vector<Sequence>& storage_;
  // cached_[i] is a once-only latch, not a data-publication flag: the data
  // (storage_) is immutable, so the relaxed exchange in Read only needs the
  // RMW's atomicity to pick exactly one "first" reader per index.
  std::unique_ptr<std::atomic<uint8_t>[]> cached_;
  std::atomic<uint64_t> storage_reads_{0};
  std::atomic<uint64_t> cache_hits_{0};
};

/// The DataflowJob configuration a chained miner derives from its options.
ChainedDataflowOptions MakeChainedOptions(const DistributedRunOptions& options);

/// Reduce callback of the shared driver: one call per distinct shuffle key,
/// appending the partition's frequent patterns to `out` (a per-reduce-worker
/// buffer, so no locking is needed). `key` and the value views point into
/// the engine's shuffle buffers and are valid only during the call.
using PartitionReduceFn = std::function<void(
    std::string_view key, std::vector<std::string_view>& values,
    MiningResult& out)>;

/// Shared driver of all distributed miners: runs one map-shuffle-reduce
/// round, collects per-reduce-worker patterns, and returns the merged,
/// canonicalized result plus the round's metrics.
DistributedResult RunDistributedMining(size_t num_inputs, const MapFn& map_fn,
                                       const CombinerFactory& combiner_factory,
                                       const PartitionReduceFn& reduce_fn,
                                       const DistributedRunOptions& options);

/// The chained-job analogue of RunDistributedMining: runs one mining round
/// on `job` (sharing its budgets and per-round metrics) and returns the
/// round's merged, canonicalized patterns. Mined patterns cross the round
/// boundary as records (emitted by the reduce side, consumed here), so the
/// round works identically on the proc backend, where reduce functions run
/// in forked processes and side effects on captured state are lost; the
/// job's records() is left empty, making this a terminal round of the chain.
MiningResult RunMiningRound(DataflowJob& job, size_t num_inputs,
                            const MapFn& map_fn,
                            const CombinerFactory& combiner_factory,
                            const PartitionReduceFn& reduce_fn);

/// Assembles the result every chained driver returns: the patterns plus the
/// finished job's per-round and aggregate metrics.
ChainedDistributedResult MakeChainedResult(MiningResult patterns,
                                           const DataflowJob& job);

/// Builds the mining round of a recount driver against the recounted
/// dictionary and the round-1 input cache (both outlive the round but not
/// the driver call). Map phases should read sequences via `cached_db`.
using MakeMiningRoundFn =
    std::function<void(const Dictionary& recounted, CachedDatabase& cached_db,
                       MapFn* map_fn, CombinerFactory* combiner_factory,
                       PartitionReduceFn* reduce_fn)>;

/// Shared driver of the two-round recount miners: round 1 recounts the
/// f-list via RecountFrequencies (reading the database through a
/// CachedDatabase), round 2 runs the mining round `make_round` builds
/// against the recounted dictionary, served from the round-1 cache instead
/// of re-reading backing storage. The cache counters are reported on the
/// result.
ChainedDistributedResult RunRecountMining(const std::vector<Sequence>& db,
                                          const Dictionary& dict,
                                          uint32_t sample_every,
                                          const DistributedRunOptions& options,
                                          const MakeMiningRoundFn& make_round);

/// Distributed frequency recount (round 1 of the iterative recount drivers):
/// counts, on `job`, the per-item document frequencies of `db` — exactly
/// Dictionary::ComputeDocFrequencies semantics (an occurrence counts for
/// every ancestor, once per sequence) — and returns a copy of `dict` with
/// the recounted frequencies installed. With `sample_every` > 1 only every
/// sample_every-th sequence is counted and counts are scaled back up (the
/// paper's sampled f-list); sample_every == 1 reproduces the exact counts,
/// so downstream mining results are unchanged. If `cached_db` is non-null,
/// sampled sequences are read through it (populating the cross-round cache).
Dictionary RecountFrequencies(DataflowJob& job,
                              const std::vector<Sequence>& db,
                              const Dictionary& dict,
                              uint32_t sample_every = 1,
                              CachedDatabase* cached_db = nullptr);

/// Encodes an item-partition key (the pivot item) as a shuffle key. Varint
/// coded so that shuffle-size accounting stays honest for frequent (small
/// fid) pivots.
std::string EncodePivotKey(ItemId pivot);

/// Decodes a key written by EncodePivotKey. Throws std::invalid_argument on
/// malformed keys (they never cross a trust boundary, but the shuffle is
/// serialized end-to-end and decoding errors should fail loudly).
ItemId DecodePivotKey(std::string_view key);

/// Number of distinct sequences in `sequences` (order-insensitive). Used for
/// distinct-sequence support accounting in tests and diagnostics.
size_t DistinctSequences(std::vector<Sequence> sequences);

}  // namespace dseq

#endif  // DSEQ_DIST_DISTRIBUTED_H_
