// Shared infrastructure of the distributed miners (paper Sec. III).
//
// Every distributed algorithm in this library (NAIVE/SEMI-NAIVE, D-SEQ,
// D-CAND, and the specialized LASH/MG-FSM/PrefixSpan baselines) is one
// map-shuffle-reduce round over the in-process dataflow engine. This header
// collects what they all share: the result type (patterns + dataflow
// metrics), the pivot-partition key coding, and small helpers.
#ifndef DSEQ_DIST_DISTRIBUTED_H_
#define DSEQ_DIST_DISTRIBUTED_H_

#include <functional>
#include <string>
#include <vector>

#include "src/core/mining.h"
#include "src/dataflow/engine.h"
#include "src/util/common.h"
#include "src/util/varint.h"

namespace dseq {

/// Result of one distributed mining run: the frequent patterns
/// (canonicalized, sorted by pattern) plus the dataflow metrics of the
/// map-shuffle-reduce round that produced them.
struct DistributedResult {
  MiningResult patterns;
  DataflowMetrics metrics;
};

/// Dataflow knobs every distributed miner shares; the per-algorithm
/// options structs extend this.
struct DistributedRunOptions {
  int num_map_workers = 1;
  int num_reduce_workers = 1;
  Execution execution = Execution::kThreads;
  uint64_t shuffle_budget_bytes = 0;
};

/// Reduce callback of the shared driver: one call per distinct shuffle key,
/// appending the partition's frequent patterns to `out` (a per-reduce-worker
/// buffer, so no locking is needed).
using PartitionReduceFn = std::function<void(
    const std::string& key, std::vector<std::string>& values,
    MiningResult& out)>;

/// Shared driver of all distributed miners: runs one map-shuffle-reduce
/// round, collects per-reduce-worker patterns, and returns the merged,
/// canonicalized result plus the round's metrics.
DistributedResult RunDistributedMining(size_t num_inputs, const MapFn& map_fn,
                                       const CombinerFactory& combiner_factory,
                                       const PartitionReduceFn& reduce_fn,
                                       const DistributedRunOptions& options);

/// Encodes an item-partition key (the pivot item) as a shuffle key. Varint
/// coded so that shuffle-size accounting stays honest for frequent (small
/// fid) pivots.
std::string EncodePivotKey(ItemId pivot);

/// Decodes a key written by EncodePivotKey. Throws std::invalid_argument on
/// malformed keys (they never cross a trust boundary, but the shuffle is
/// serialized end-to-end and decoding errors should fail loudly).
ItemId DecodePivotKey(const std::string& key);

/// Number of distinct sequences in `sequences` (order-insensitive). Used for
/// distinct-sequence support accounting in tests and diagnostics.
size_t DistinctSequences(std::vector<Sequence> sequences);

}  // namespace dseq

#endif  // DSEQ_DIST_DISTRIBUTED_H_
