#include "src/spill/spill_file.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "src/fault/fault_injection.h"
#include "src/spill/memory_budget.h"
#include "src/util/block_codec.h"
#include "src/util/check.h"
#include "src/util/varint.h"

namespace dseq {
namespace {

std::atomic<uint64_t> g_spill_file_seq{0};

// Full-buffer stdio helpers. A signal can interrupt the underlying read(2)/
// write(2) mid-transfer, surfacing as a short stdio count with errno ==
// EINTR; these retry until the whole buffer moved or a real error remains.
// (The proc backend's coordinator forks and signals worker processes, so
// interrupted spill I/O is a routine event, not a corner case.)

// Writes all `size` bytes; returns false on a non-EINTR error.
bool FWriteFully(std::FILE* f, const char* data, size_t size) {
  while (size > 0) {
    size_t n = std::fwrite(data, 1, size, f);
    data += n;
    size -= n;
    if (size > 0) {
      if (errno != EINTR) return false;
      std::clearerr(f);
    }
  }
  return true;
}

// Reads exactly `size` bytes; returns false on EOF or a non-EINTR error.
bool FReadFully(std::FILE* f, char* out, size_t size) {
  while (size > 0) {
    size_t n = std::fread(out, 1, size, f);
    out += n;
    size -= n;
    if (size > 0) {
      if (std::feof(f)) return false;
      if (errno != EINTR) return false;
      std::clearerr(f);
    }
  }
  return true;
}

// fgetc with EINTR retry; EOF means end-of-file or a real error (the caller
// distinguishes via ferror).
int FGetcRetry(std::FILE* f) {
  while (true) {
    int c = std::fgetc(f);
    if (c != EOF) return c;
    if (std::feof(f) || errno != EINTR) return EOF;
    std::clearerr(f);
  }
}

}  // namespace

SpillFile SpillFile::Create(const std::string& dir) {
  // Relaxed: the sequence number only needs uniqueness (RMW atomicity);
  // nothing is published through it.
  std::string path =
      dir + "/spill-" + std::to_string(::getpid()) + "-" +
      std::to_string(g_spill_file_seq.fetch_add(1, std::memory_order_relaxed)) +
      ".run";
  // "wx": exclusive creation, so a stale file from another job is an error
  // instead of silently shared.
  std::FILE* handle = std::fopen(path.c_str(), "wbx");
  if (handle == nullptr) {
    throw std::runtime_error("cannot create spill file " + path + ": " +
                             std::strerror(errno));
  }
  return SpillFile(std::move(path), handle);
}

SpillFile::SpillFile(SpillFile&& other) noexcept
    : path_(std::move(other.path_)),
      write_handle_(other.write_handle_),
      stored_bytes_(other.stored_bytes_) {
  other.path_.clear();
  other.write_handle_ = nullptr;
  other.stored_bytes_ = 0;
}

SpillFile& SpillFile::operator=(SpillFile&& other) noexcept {
  if (this == &other) return *this;
  if (write_handle_ != nullptr) std::fclose(write_handle_);
  if (!path_.empty()) std::remove(path_.c_str());
  path_ = std::move(other.path_);
  write_handle_ = other.write_handle_;
  stored_bytes_ = other.stored_bytes_;
  other.path_.clear();
  other.write_handle_ = nullptr;
  other.stored_bytes_ = 0;
  return *this;
}

SpillFile::~SpillFile() {
  if (write_handle_ != nullptr) std::fclose(write_handle_);
  if (!path_.empty()) std::remove(path_.c_str());
}

void SpillFile::Append(const void* data, size_t size) {
  if (size == 0) return;
  if (write_handle_ == nullptr) {
    throw std::runtime_error("spill file " + path_ + " is closed for writing");
  }
  // Injection site spill.write: kErrno models ENOSPC/EIO on a full or
  // failing disk; kShortIo lands half the buffer first, so the partially
  // written run is on disk when the error surfaces (RAII must still reclaim
  // it). Both take the same short-write error path as the real thing.
  fault::Fault f = fault::Evaluate(fault::Site::kSpillWrite, size);
  if (f.action == fault::Action::kErrno ||
      f.action == fault::Action::kShortIo) {
    int err = f.action == fault::Action::kErrno ? f.param : EIO;
    if (f.action == fault::Action::kShortIo) {
      FWriteFully(write_handle_, static_cast<const char*>(data), size / 2);
    }
    errno = err;
    throw std::runtime_error("short write to spill file " + path_ + ": " +
                             std::strerror(err));
  }
  if (!FWriteFully(write_handle_, static_cast<const char*>(data), size)) {
    throw std::runtime_error("short write to spill file " + path_ + ": " +
                             std::strerror(errno));
  }
  stored_bytes_ += size;
}

void SpillFile::FinishWrite() {
  if (write_handle_ == nullptr) return;
  if (std::fclose(write_handle_) != 0) {
    write_handle_ = nullptr;
    throw std::runtime_error("cannot flush spill file " + path_ + ": " +
                             std::strerror(errno));
  }
  write_handle_ = nullptr;
}

SpillWriter::SpillWriter(SpillFile* file, bool compress, SpillStats* stats)
    : file_(file), compress_(compress), stats_(stats) {}

void SpillWriter::Append(std::string_view key, std::string_view value) {
  // Appending to a finished run would buffer records that are never
  // flushed — silent data loss, not an I/O error, so it aborts.
  DSEQ_CHECK_MSG(!finished_, "SpillWriter::Append after Finish");
  PutVarint(&block_, key.size());
  PutVarint(&block_, value.size());
  if (!key.empty()) block_.append(key.data(), key.size());
  if (!value.empty()) block_.append(value.data(), value.size());
  ++num_records_;
  if (block_.size() >= kSpillBlockBytes) FlushBlock();
}

void SpillWriter::FlushBlock() {
  if (block_.empty()) return;
  std::string frame;
  if (compress_) {
    std::string stored = CompressBlock(block_);
    PutVarint(&frame, stored.size());
    file_->Append(frame.data(), frame.size());
    file_->Append(stored.data(), stored.size());
  } else {
    PutVarint(&frame, block_.size());
    file_->Append(frame.data(), frame.size());
    file_->Append(block_.data(), block_.size());
  }
  block_.clear();
}

uint64_t SpillWriter::Finish() {
  if (finished_) return file_->stored_bytes();
  finished_ = true;
  FlushBlock();
  file_->FinishWrite();
  if (stats_ != nullptr) {
    stats_->files.fetch_add(1, std::memory_order_relaxed);
    stats_->bytes_written.fetch_add(file_->stored_bytes(),
                                    std::memory_order_relaxed);
  }
  return file_->stored_bytes();
}

SpillRunReader::SpillRunReader(const SpillFile& file, bool compressed,
                               MemoryBudget* budget)
    : path_(file.path()), compressed_(compressed), budget_(budget) {
  handle_ = std::fopen(path_.c_str(), "rb");
  if (handle_ == nullptr) {
    throw std::runtime_error("cannot open spill run " + path_ + ": " +
                             std::strerror(errno));
  }
}

SpillRunReader::~SpillRunReader() {
  if (handle_ != nullptr) std::fclose(handle_);
  if (budget_ != nullptr && charged_ > 0) budget_->Release(charged_);
}

void SpillRunReader::ChargeBuffers() {
  if (budget_ == nullptr) return;
  uint64_t resident = stored_.size() + block_.size();
  if (resident > charged_) {
    uint64_t delta = resident - charged_;
    // A reader cannot free its own buffers, so a full budget takes the
    // bounded overshoot instead of deadlocking (see the constructor doc).
    if (!budget_->TryCharge(delta)) budget_->ForceCharge(delta);
    charged_ = resident;
  }
}

bool SpillRunReader::ReadBlock() {
  // Injection site spill.read: a failing disk surfaces as a read error on
  // the next block, taking the same typed error path as a real EIO.
  fault::Fault f = fault::Evaluate(fault::Site::kSpillRead);
  if (f.action == fault::Action::kErrno) {
    errno = f.param;
    throw std::runtime_error("read error on spill run " + path_);
  }
  // Block length varint, byte by byte (at most 10 bytes).
  uint64_t stored_size = 0;
  int shift = 0;
  int c = FGetcRetry(handle_);
  if (c == EOF) {
    if (std::ferror(handle_)) {
      throw std::runtime_error("read error on spill run " + path_);
    }
    return false;  // clean end of run
  }
  while (true) {
    if (shift >= 64) {
      throw std::runtime_error("corrupt spill run " + path_ +
                               ": oversized block length");
    }
    stored_size |= static_cast<uint64_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) break;
    shift += 7;
    c = FGetcRetry(handle_);
    if (c == EOF) {
      throw std::runtime_error("truncated spill run " + path_);
    }
  }
  stored_.resize(stored_size);
  if (stored_size > 0 && !FReadFully(handle_, &stored_[0], stored_size)) {
    throw std::runtime_error("truncated spill run " + path_);
  }
  if (compressed_) {
    if (!DecompressBlock(stored_, &block_)) {
      throw std::runtime_error("corrupt compressed spill run " + path_);
    }
  } else {
    block_.swap(stored_);
  }
  pos_ = 0;
  ChargeBuffers();
  return true;
}

bool SpillRunReader::Next(std::string_view* key, std::string_view* value) {
  while (pos_ >= block_.size()) {
    if (!ReadBlock()) return false;
  }
  std::string_view raw(block_);
  uint64_t key_size = 0;
  uint64_t value_size = 0;
  if (!GetVarint(raw, &pos_, &key_size) ||
      !GetVarint(raw, &pos_, &value_size) || key_size > raw.size() - pos_ ||
      value_size > raw.size() - pos_ - key_size) {
    throw std::runtime_error("corrupt spill run " + path_ +
                             ": malformed record framing");
  }
  *key = raw.substr(pos_, key_size);
  pos_ += key_size;
  *value = raw.substr(pos_, value_size);
  pos_ += value_size;
  // The bounds checks above imply this; keep the cursor invariant planted
  // so a future framing change cannot silently read past the block.
  DSEQ_DCHECK_LE(pos_, block_.size());
  return true;
}

}  // namespace dseq
