// Shared out-of-core context the engine hands to spill-aware combiners.
//
// One CombinerSpillContext per (round, map worker): it points at the
// round's shared MemoryBudget and SpillStats and carries the spill
// configuration plus the error context (round index, worker) that makes
// ShuffleOverflowError messages actionable. Combiners that support external
// aggregation (MakeSumCombiner, MakeWeightedValueCombiner) charge their
// table + arena residency against the budget and spill sorted partial runs
// when it runs out; combiners that ignore the context simply stay
// unbudgeted, as before.
#ifndef DSEQ_SPILL_SPILL_CONTEXT_H_
#define DSEQ_SPILL_SPILL_CONTEXT_H_

#include <string>

#include "src/spill/memory_budget.h"
#include "src/spill/spill_file.h"

namespace dseq {

struct CombinerSpillContext {
  /// Empty = spilling disabled; the budget then hard-fails on exceed.
  std::string spill_dir;
  bool compress_spill = false;
  int merge_fan_in = 16;
  MemoryBudget* budget = nullptr;  // shared across the round, never null
  SpillStats* stats = nullptr;     // shared across the round, never null
  /// Error context only (see DataflowOptions::round_index).
  int round_index = 0;
  int map_worker = 0;

  bool can_spill() const { return !spill_dir.empty(); }
};

}  // namespace dseq

#endif  // DSEQ_SPILL_SPILL_CONTEXT_H_
