// RAII spill files and sorted-run I/O for out-of-core execution.
//
// A SpillFile is one temp file in the job's spill directory; it removes its
// backing file on destruction, including exception paths, so a dead run
// never leaves droppings behind. A SpillWriter streams a *sorted run* of
// (key, value) records into a SpillFile; a SpillRunReader streams it back.
//
// On-disk layout: a sequence of length-framed blocks,
//
//   varint(stored_size) + stored bytes
//
// where `stored` is a chunk of varint-framed records — varint(key size),
// varint(value size), key, value, exactly the ShuffleBuffer frame — run
// through the block codec (src/util/block_codec.h) when the run is
// compressed. Records never straddle a block, so a reader needs one block
// of memory, not the whole run. Whether a run is compressed is a property
// of the job (DataflowOptions::compress_spill), not recorded per file.
#ifndef DSEQ_SPILL_SPILL_FILE_H_
#define DSEQ_SPILL_SPILL_FILE_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace dseq {

class MemoryBudget;  // src/spill/memory_budget.h

/// Target frame bytes per stored block. A record larger than this still goes
/// into a single (oversized) block — records never straddle blocks. Exposed
/// so the external merger can size its per-source read-buffer footprint
/// against a MemoryBudget.
inline constexpr size_t kSpillBlockBytes = 64 * 1024;

/// Spill-volume counters of one dataflow round, shared by the engine's
/// bucket spills and the combiners' table spills. Feed the
/// DataflowMetrics::spill_* fields.
struct SpillStats {
  std::atomic<uint64_t> files{0};          // sorted runs written
  std::atomic<uint64_t> bytes_written{0};  // stored bytes incl. block framing
  std::atomic<uint64_t> merge_passes{0};   // k-way merges over spilled runs
};

/// One temp file under the spill directory. Move-only; the destructor closes
/// and removes the backing file (RAII hygiene: a failed round must leave the
/// spill directory empty).
class SpillFile {
 public:
  /// Creates a fresh, uniquely named file in `dir` open for writing. Throws
  /// std::runtime_error if the file cannot be created (missing or
  /// unwritable directory).
  static SpillFile Create(const std::string& dir);

  SpillFile(SpillFile&& other) noexcept;
  SpillFile& operator=(SpillFile&& other) noexcept;
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;
  ~SpillFile();

  const std::string& path() const { return path_; }
  uint64_t stored_bytes() const { return stored_bytes_; }

  /// Appends raw bytes to the write handle. Throws std::runtime_error on
  /// I/O failure (e.g. a full disk).
  void Append(const void* data, size_t size);

  /// Flushes and closes the write handle; the file stays on disk for
  /// readers until destruction. Idempotent.
  void FinishWrite();

 private:
  SpillFile(std::string path, std::FILE* write_handle)
      : path_(std::move(path)), write_handle_(write_handle) {}

  std::string path_;
  std::FILE* write_handle_ = nullptr;
  uint64_t stored_bytes_ = 0;
};

/// Streams a sorted run into a SpillFile. The caller appends records in the
/// run's sort order (the writer does not check); Finish() flushes the tail
/// block, closes the file for writing, and records the run in `stats`.
class SpillWriter {
 public:
  /// `stats` may be null (unit tests).
  SpillWriter(SpillFile* file, bool compress, SpillStats* stats);

  void Append(std::string_view key, std::string_view value);

  /// Returns the total stored bytes of the run. Must be called exactly once
  /// before the run is read.
  uint64_t Finish();

  uint64_t num_records() const { return num_records_; }

 private:
  void FlushBlock();

  SpillFile* file_;
  bool compress_;
  SpillStats* stats_;
  std::string block_;
  uint64_t num_records_ = 0;
  bool finished_ = false;
};

/// Streams a finished run back as (key, value) views. Views point into the
/// reader's current block and are valid until the next Next() call. Each
/// reader opens the file independently, so a run can be read any number of
/// times (and concurrently). Throws std::runtime_error on malformed or
/// truncated runs — spill files never cross a trust boundary, but disk
/// corruption must fail loudly, exactly like the shuffle codecs.
class SpillRunReader {
 public:
  /// `budget` (may be null) is charged with the reader's actual block-buffer
  /// footprint while the reader is alive — merge-side memory is accounted,
  /// not free. The charge uses ForceCharge semantics when the budget is
  /// already full: a reader cannot shed its own buffers, so the bounded
  /// overshoot is the same contract as the map-side emit path (the merge
  /// fan-in clamp in ExternalMergePlan keeps the total reader footprint
  /// near the budget).
  SpillRunReader(const SpillFile& file, bool compressed,
                 MemoryBudget* budget = nullptr);
  SpillRunReader(const SpillRunReader&) = delete;
  SpillRunReader& operator=(const SpillRunReader&) = delete;
  ~SpillRunReader();

  /// Advances to the next record; returns false at end of run.
  bool Next(std::string_view* key, std::string_view* value);

 private:
  bool ReadBlock();
  void ChargeBuffers();

  std::FILE* handle_ = nullptr;
  std::string path_;
  bool compressed_;
  MemoryBudget* budget_ = nullptr;
  uint64_t charged_ = 0;  // bytes currently charged against budget_
  std::string stored_;    // raw block bytes as read from disk
  std::string block_;     // decoded frame bytes the views point into
  size_t pos_ = 0;
};

}  // namespace dseq

#endif  // DSEQ_SPILL_SPILL_FILE_H_
