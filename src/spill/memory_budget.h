// Per-job memory budget for out-of-core execution (ROADMAP "spill-sort
// combiner states larger than memory").
//
// One MemoryBudget instance is shared by everything that buffers shuffle
// state during a dataflow round: the per-(map worker, reducer) ShuffleBuffer
// arenas charge the engine's record byte accounting (key + value +
// kShuffleRecordOverheadBytes, the same accounting the shuffle-size metric
// and ComputePartitionStats use), and the spill-aware combiners charge the
// resident size of their tables and interning arenas. When a charge would
// exceed the budget the caller spills state to disk (releasing its charge)
// and retries; if spilling is disabled the caller throws an actionable
// ShuffleOverflowError instead.
//
// TryCharge is all-or-nothing, so concurrent workers race only for whole
// records. ForceCharge exists for the one legitimate overshoot: a worker
// that has already spilled everything it owns must still buffer the record
// it is holding (other workers' residents may fill the budget, and a worker
// can only ever free its own state). The overshoot is bounded by roughly
// one record per map worker.
//
// Memory ordering: every operation on `used_` is relaxed, deliberately. The
// balance is pure accounting — no worker's data is published through it.
// What each operation needs:
//   - TryCharge's CAS loop needs only the RMW's atomicity so two workers
//     cannot both claim the last bytes;
//   - Release's underflow CHECK needs only the RMW's returned value, which
//     is exact under any ordering (RMWs on one object are totally ordered);
//   - used_bytes() feeds heuristics (spill-worthiness, error messages) that
//     tolerate a stale-by-one-record view.
// The actual payload (arena contents, spill files) travels between threads
// through joins and the per-worker ownership discipline, never through this
// counter. A lock-free budget cannot be DSEQ_GUARDED_BY; this comment is
// its ordering contract instead.
#ifndef DSEQ_SPILL_MEMORY_BUDGET_H_
#define DSEQ_SPILL_MEMORY_BUDGET_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "src/util/check.h"

namespace dseq {

class MemoryBudget {
 public:
  /// budget_bytes == 0 means unlimited: every charge succeeds.
  explicit MemoryBudget(uint64_t budget_bytes) : budget_(budget_bytes) {}
  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  bool enabled() const { return budget_ > 0; }
  uint64_t budget_bytes() const { return budget_; }
  uint64_t used_bytes() const {
    return used_.load(std::memory_order_relaxed);
  }

  /// Charges `bytes` if the result stays within the budget; returns false
  /// (charging nothing) otherwise.
  bool TryCharge(uint64_t bytes) {
    if (!enabled()) return true;
    uint64_t used = used_.load(std::memory_order_relaxed);
    while (used + bytes <= budget_) {
      if (used_.compare_exchange_weak(used, used + bytes,
                                      std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  /// Charges unconditionally — only after the caller spilled everything it
  /// can free (see the header comment for why this must exist).
  void ForceCharge(uint64_t bytes) {
    if (enabled()) used_.fetch_add(bytes, std::memory_order_relaxed);
  }

  /// Releases a prior charge. Charges and releases must mirror exactly:
  /// releasing more than is currently charged means a double release (or a
  /// charge that was never made), which would let the balance wrap and all
  /// later spill decisions run against garbage — so it aborts, always.
  void Release(uint64_t bytes) {
    if (!enabled() || bytes == 0) return;
    uint64_t prev = used_.fetch_sub(bytes, std::memory_order_relaxed);
    DSEQ_CHECK_MSG(prev >= bytes,
                   "MemoryBudget::Release of " + std::to_string(bytes) +
                       " bytes exceeds the charged balance of " +
                       std::to_string(prev) + " bytes (double release?)");
  }

 private:
  const uint64_t budget_;
  std::atomic<uint64_t> used_{0};
};

}  // namespace dseq

#endif  // DSEQ_SPILL_MEMORY_BUDGET_H_
