// K-way merge of sorted record runs for out-of-core execution.
//
// An ExternalMergePlan collects sorted record sources — spilled runs on
// disk (SpillRunSource) and in-memory tails (InMemorySource) — and streams
// their stable merge back as key groups, feeding the same group-at-a-time
// reduce interface the engine's in-memory sort-based grouping produces.
// Stability: on equal keys, sources drain in the order they were added, and
// each source yields its own records in order — so a column of spilled runs
// added as [worker 0 runs..., worker 0 tail, worker 1 runs..., ...]
// reproduces exactly the (map worker, emit order) value order of the
// in-memory reduce path.
//
// When the number of sources exceeds the merge fan-in, sources collapse in
// rounds: each round merges consecutive groups of fan-in sources into
// intermediate runs that take their group's place (classic multi-pass
// external sort, O(N log_fan-in N) I/O; groups are contiguous, so
// stability is preserved, and consumed runs are deleted as soon as their
// group is merged). Every k-way merge — intermediate or final — counts one
// merge pass in SpillStats.
//
// Memory: one block per file-backed source plus the values of the current
// group; never a whole run, never the whole column.
#ifndef DSEQ_SPILL_EXTERNAL_MERGER_H_
#define DSEQ_SPILL_EXTERNAL_MERGER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/spill/spill_file.h"

namespace dseq {

/// A stream of (key, value) records in nondecreasing key order. Views are
/// valid until the next Next() call on the same source.
class RecordSource {
 public:
  virtual ~RecordSource() = default;
  virtual bool Next(std::string_view* key, std::string_view* value) = 0;
};

/// RecordSource over a finished spill run. The owning constructor takes
/// the run's backing file with it, so dropping the source (e.g. once an
/// intermediate merge consumed the run) deletes the file immediately.
/// `budget` (may be null) is handed to the reader, which charges its block
/// buffers against it while the source is alive.
class SpillRunSource : public RecordSource {
 public:
  SpillRunSource(const SpillFile& run, bool compressed,
                 MemoryBudget* budget = nullptr)
      : reader_(run, compressed, budget) {}
  SpillRunSource(SpillFile&& run, bool compressed,
                 MemoryBudget* budget = nullptr)
      : owned_(std::make_unique<SpillFile>(std::move(run))),
        reader_(*owned_, compressed, budget) {}
  bool Next(std::string_view* key, std::string_view* value) override {
    return reader_.Next(key, value);
  }

 private:
  // Declared before the reader: the reader closes its handle before the
  // backing file is removed.
  std::unique_ptr<SpillFile> owned_;
  SpillRunReader reader_;
};

/// RecordSource over caller-owned views, already in sort order (e.g. the
/// sorted entries of a not-yet-spilled bucket). The viewed bytes must
/// outlive the source.
class InMemorySource : public RecordSource {
 public:
  explicit InMemorySource(
      std::vector<std::pair<std::string_view, std::string_view>> entries)
      : entries_(std::move(entries)) {}
  bool Next(std::string_view* key, std::string_view* value) override {
    if (pos_ >= entries_.size()) return false;
    *key = entries_[pos_].first;
    *value = entries_[pos_].second;
    ++pos_;
    return true;
  }

 private:
  std::vector<std::pair<std::string_view, std::string_view>> entries_;
  size_t pos_ = 0;
};

/// Called once per distinct key, keys ascending; `values` is scratch (the
/// callee may reorder it) and the views are valid only during the call —
/// the contract of the engine's ReduceFn.
using MergeGroupFn = std::function<void(std::string_view key,
                                        std::vector<std::string_view>& values)>;

/// One merge job: add sources in priority order, then stream the groups.
class ExternalMergePlan {
 public:
  /// `dir` is where intermediate runs go when the fan-in forces extra
  /// passes (required unless the source count stays within the fan-in);
  /// `stats` may be null. `budget` (may be null) charges the merge-side
  /// read buffers against the round's MemoryBudget: each file-backed
  /// source's resident blocks are charged while it is open, and the
  /// effective fan-in is clamped so at most ~budget/(2*kSpillBlockBytes)
  /// runs are open per pass (never below 2) — a tight budget trades extra
  /// merge passes for bounded memory instead of silently exceeding it.
  ExternalMergePlan(std::string dir, bool compress, int max_fan_in,
                    SpillStats* stats, MemoryBudget* budget = nullptr);

  /// Takes ownership of a finished run and registers it as the next source.
  void AddRun(SpillFile run);
  void AddSource(std::unique_ptr<RecordSource> source);

  size_t num_sources() const { return sources_.size(); }

  /// Streams the stable merge of all sources as key groups. Single use.
  /// Returns the number of records merged.
  uint64_t MergeGroups(const MergeGroupFn& fn);

 private:
  void CollapseToFanIn();

  std::string dir_;
  bool compress_;
  int max_fan_in_;
  SpillStats* stats_;
  MemoryBudget* budget_;
  // Every file-backed source owns its run (SpillRunSource), so dropping a
  // consumed source removes its file from disk.
  std::vector<std::unique_ptr<RecordSource>> sources_;
};

}  // namespace dseq

#endif  // DSEQ_SPILL_EXTERNAL_MERGER_H_
