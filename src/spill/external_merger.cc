#include "src/spill/external_merger.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "src/spill/memory_budget.h"
#include "src/util/check.h"

namespace dseq {
namespace {

// Heap entry of the k-way merge: the current record of source `index`.
struct HeadRecord {
  std::string_view key;
  std::string_view value;
  size_t index;
};

// Min-heap on (key, source index): the smallest key wins, ties go to the
// earliest source — the stability guarantee of the merge.
struct HeapGreater {
  bool operator()(const HeadRecord& a, const HeadRecord& b) const {
    if (a.key != b.key) return a.key > b.key;
    return a.index > b.index;
  }
};

// Streams the stable merge of `sources`, calling emit(key, value) per
// record. Views are valid during the call only.
template <typename EmitRecord>
uint64_t MergeSources(const std::vector<RecordSource*>& sources,
                      const EmitRecord& emit) {
  std::vector<HeadRecord> heap;
  heap.reserve(sources.size());
  for (size_t i = 0; i < sources.size(); ++i) {
    HeadRecord head{std::string_view(), std::string_view(), i};
    if (sources[i]->Next(&head.key, &head.value)) heap.push_back(head);
  }
  std::make_heap(heap.begin(), heap.end(), HeapGreater{});
  uint64_t records = 0;
#if DSEQ_DCHECK_IS_ON
  // Merge-order stability: each emitted key must be >= its predecessor, or
  // a source lied about being sorted and the group sweep would split keys.
  // The previous key is copied because its backing view dies when its
  // source advances (debug builds only).
  std::string prev_key;
  bool has_prev = false;
#endif
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), HeapGreater{});
    HeadRecord head = heap.back();
    heap.pop_back();
#if DSEQ_DCHECK_IS_ON
    DSEQ_DCHECK_MSG(!has_prev || head.key >= prev_key,
                    "external merge emitted keys out of order (unsorted "
                    "source run?)");
    // Guarded assign: an empty view may legally carry a null data pointer.
    if (head.key.empty()) {
      prev_key.clear();
    } else {
      prev_key.assign(head.key.data(), head.key.size());
    }
    has_prev = true;
#endif
    emit(head.key, head.value);
    ++records;
    // Only now advance the source (Next invalidates the emitted views).
    if (sources[head.index]->Next(&head.key, &head.value)) {
      heap.push_back(head);
      std::push_heap(heap.begin(), heap.end(), HeapGreater{});
    }
  }
  return records;
}

}  // namespace

ExternalMergePlan::ExternalMergePlan(std::string dir, bool compress,
                                     int max_fan_in, SpillStats* stats,
                                     MemoryBudget* budget)
    : dir_(std::move(dir)),
      compress_(compress),
      max_fan_in_(max_fan_in < 2 ? 2 : max_fan_in),
      stats_(stats),
      budget_(budget) {
  // Merge-side memory accounting: each open file-backed source holds up to
  // two block buffers (stored + decoded), so a budget admits roughly
  // budget / (2 * kSpillBlockBytes) concurrently open runs. Clamp the
  // fan-in to that (never below 2 — a 2-way merge is the floor of
  // progress), trading extra collapse passes for bounded reader memory.
  if (budget_ != nullptr && budget_->enabled()) {
    uint64_t affordable = budget_->budget_bytes() / (2 * kSpillBlockBytes);
    if (affordable < static_cast<uint64_t>(max_fan_in_)) {
      max_fan_in_ = affordable < 2 ? 2 : static_cast<int>(affordable);
    }
  }
}

void ExternalMergePlan::AddRun(SpillFile run) {
  sources_.push_back(
      std::make_unique<SpillRunSource>(std::move(run), compress_, budget_));
}

void ExternalMergePlan::AddSource(std::unique_ptr<RecordSource> source) {
  sources_.push_back(std::move(source));
}

void ExternalMergePlan::CollapseToFanIn() {
  // Round-based collapse (O(N log_fan-in N) I/O): each round merges
  // consecutive groups of fan-in sources into one intermediate run each.
  // Groups are contiguous and the merged run takes its group's position,
  // so relative source order — the stability contract — is preserved; the
  // consumed runs are dropped (and their files deleted) group by group.
  while (sources_.size() > static_cast<size_t>(max_fan_in_)) {
    if (dir_.empty()) {
      throw std::runtime_error(
          "external merge fan-in exceeded without a spill directory");
    }
    std::vector<std::unique_ptr<RecordSource>> next;
    next.reserve((sources_.size() + max_fan_in_ - 1) / max_fan_in_);
    for (size_t begin = 0; begin < sources_.size();
         begin += static_cast<size_t>(max_fan_in_)) {
      size_t end = std::min(sources_.size(),
                            begin + static_cast<size_t>(max_fan_in_));
      if (end - begin == 1) {  // lone trailing source passes through
        next.push_back(std::move(sources_[begin]));
        continue;
      }
      std::vector<RecordSource*> group;
      group.reserve(end - begin);
      for (size_t i = begin; i < end; ++i) group.push_back(sources_[i].get());
      SpillFile out = SpillFile::Create(dir_);
      SpillWriter writer(&out, compress_, stats_);
      MergeSources(group, [&](std::string_view key, std::string_view value) {
        writer.Append(key, value);
      });
      writer.Finish();
      if (stats_ != nullptr) {
        stats_->merge_passes.fetch_add(1, std::memory_order_relaxed);
      }
      // Free the consumed runs' disk space before the next group merges.
      for (size_t i = begin; i < end; ++i) sources_[i].reset();
      next.push_back(
          std::make_unique<SpillRunSource>(std::move(out), compress_, budget_));
    }
    sources_ = std::move(next);
  }
}

uint64_t ExternalMergePlan::MergeGroups(const MergeGroupFn& fn) {
  if (sources_.empty()) return 0;
  CollapseToFanIn();

  std::vector<RecordSource*> sources;
  sources.reserve(sources_.size());
  for (const auto& source : sources_) sources.push_back(source.get());

  // Group assembly: values are copied into a per-group scratch buffer (the
  // source views die as each source advances), then handed to `fn` as views.
  std::string group_key;
  bool has_group = false;
  std::string value_buf;
  std::vector<std::pair<size_t, size_t>> value_spans;
  std::vector<std::string_view> values;
  auto flush = [&]() {
    values.clear();
    values.reserve(value_spans.size());
    for (const auto& [offset, size] : value_spans) {
      values.emplace_back(value_buf.data() + offset, size);
    }
    fn(group_key, values);
    value_buf.clear();
    value_spans.clear();
  };
  uint64_t records =
      MergeSources(sources, [&](std::string_view key, std::string_view value) {
        if (!has_group || key != group_key) {
          if (has_group) flush();
          group_key.assign(key.data(), key.size());
          has_group = true;
        }
        value_spans.emplace_back(value_buf.size(), value.size());
        value_buf.append(value.data(), value.size());
      });
  if (has_group) flush();
  if (stats_ != nullptr) {
    stats_->merge_passes.fetch_add(1, std::memory_order_relaxed);
  }
  return records;
}

}  // namespace dseq
