// Finite state transducer for subsequence predicates (paper Sec. IV).
//
// An FST "translates" an input sequence T into its candidate subsequences
// Gπ(T). Transitions are labeled compactly with an *input predicate* (which
// items the transition matches) and an *output operation* (which item set it
// emits for a matched item). Output items are always ancestors of the input
// item (or the input itself), or ε.
//
// The FST produced by `CompileFst` consumes exactly one input item per
// transition (ε-transitions from Thompson construction are eliminated), so a
// run for T = t1..tn is a sequence of n transitions — the structure that the
// position–state grid of Sec. V-A builds on.
#ifndef DSEQ_FST_FST_H_
#define DSEQ_FST_FST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/dict/dictionary.h"
#include "src/util/common.h"

namespace dseq {

/// Which input items a transition accepts.
enum class InputKind : uint8_t {
  kAny,          // any item (pattern '.')
  kDescendants,  // any descendant of in_item, incl. itself (pattern 'w')
  kExact,        // exactly in_item (pattern 'w=')
};

/// Which items a transition outputs for a matched input item t.
enum class OutputKind : uint8_t {
  kEpsilon,         // no output (uncaptured expressions)
  kSelf,            // { t }                        -- '(w)', '(.)'
  kAncestors,       // anc(t)                       -- '(.^)'
  kAncestorsUpTo,   // anc(t) ∩ desc(out_item)      -- '(w^)'
  kConstant,        // { out_item }                 -- '(w^=)'
};

/// One FST transition. `in_item` / `out_item` are meaningful only for the
/// kinds that reference an item.
struct Transition {
  StateId from = 0;
  StateId to = 0;
  InputKind in_kind = InputKind::kAny;
  ItemId in_item = kNoItem;
  OutputKind out_kind = OutputKind::kEpsilon;
  ItemId out_item = kNoItem;

  bool operator==(const Transition& o) const {
    return from == o.from && to == o.to && in_kind == o.in_kind &&
           in_item == o.in_item && out_kind == o.out_kind &&
           out_item == o.out_item;
  }
};

/// Immutable ε-free FST. States are 0..num_states()-1.
class Fst {
 public:
  Fst() = default;
  Fst(StateId initial, std::vector<bool> final_states,
      std::vector<std::vector<Transition>> transitions_by_state);

  StateId initial() const { return initial_; }
  size_t num_states() const { return final_.size(); }
  bool IsFinal(StateId q) const { return final_[q]; }
  const std::vector<Transition>& From(StateId q) const { return from_[q]; }
  size_t num_transitions() const;

  /// True iff the transition's input predicate matches item t.
  bool Matches(const Transition& tr, ItemId t, const Dictionary& dict) const;

  /// Computes the output set of `tr` for matched input `t` into `*out`
  /// (sorted ascending). Empty result means ε. Asserts Matches(tr, t).
  void ComputeOutput(const Transition& tr, ItemId t, const Dictionary& dict,
                     Sequence* out) const;

  /// Human-readable dump for debugging.
  std::string DebugString(const Dictionary& dict) const;

 private:
  StateId initial_ = 0;
  std::vector<bool> final_;
  std::vector<std::vector<Transition>> from_;
};

}  // namespace dseq

#endif  // DSEQ_FST_FST_H_
