#include "src/fst/dot_export.h"

namespace dseq {
namespace {

std::string Escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string InputLabel(const Transition& tr, const Dictionary& dict) {
  switch (tr.in_kind) {
    case InputKind::kAny:
      return ".";
    case InputKind::kDescendants:
      return dict.Name(tr.in_item);
    case InputKind::kExact:
      return dict.Name(tr.in_item) + "=";
  }
  return "?";
}

std::string OutputLabel(const Transition& tr, const Dictionary& dict) {
  switch (tr.out_kind) {
    case OutputKind::kEpsilon:
      return "eps";
    case OutputKind::kSelf:
      return "self";
    case OutputKind::kAncestors:
      return "anc";
    case OutputKind::kAncestorsUpTo:
      return "anc<=" + dict.Name(tr.out_item);
    case OutputKind::kConstant:
      return dict.Name(tr.out_item);
  }
  return "?";
}

}  // namespace

std::string FstToDot(const Fst& fst, const Dictionary& dict) {
  std::string out = "digraph fst {\n  rankdir=LR;\n  node [shape=circle];\n";
  for (StateId q = 0; q < fst.num_states(); ++q) {
    out += "  q" + std::to_string(q);
    if (fst.IsFinal(q)) out += " [shape=doublecircle]";
    out += ";\n";
  }
  out += "  start [shape=none, label=\"\"];\n  start -> q" +
         std::to_string(fst.initial()) + ";\n";
  for (StateId q = 0; q < fst.num_states(); ++q) {
    for (const Transition& tr : fst.From(q)) {
      out += "  q" + std::to_string(tr.from) + " -> q" +
             std::to_string(tr.to) + " [label=\"" +
             Escape(InputLabel(tr, dict) + " / " + OutputLabel(tr, dict)) +
             "\"];\n";
    }
  }
  out += "}\n";
  return out;
}

std::string NfaToDot(const OutputNfa& nfa, const Dictionary& dict) {
  std::string out = "digraph nfa {\n  rankdir=LR;\n  node [shape=circle];\n";
  for (StateId q = 0; q < nfa.num_states(); ++q) {
    out += "  s" + std::to_string(q);
    if (nfa.IsFinal(q)) out += " [shape=doublecircle]";
    out += ";\n";
  }
  for (StateId q = 0; q < nfa.num_states(); ++q) {
    for (const OutputNfa::Edge& e : nfa.EdgesOf(q)) {
      std::string label = "{";
      const Sequence& items = nfa.Label(e.label);
      for (size_t i = 0; i < items.size(); ++i) {
        if (i > 0) label += ",";
        label += dict.Name(items[i]);
      }
      label += "}";
      out += "  s" + std::to_string(q) + " -> s" + std::to_string(e.target) +
             " [label=\"" + Escape(label) + "\"];\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace dseq
