#include "src/fst/fst.h"

#include <cassert>

namespace dseq {

Fst::Fst(StateId initial, std::vector<bool> final_states,
         std::vector<std::vector<Transition>> transitions_by_state)
    : initial_(initial),
      final_(std::move(final_states)),
      from_(std::move(transitions_by_state)) {
  assert(from_.size() == final_.size());
  assert(initial_ < final_.size());
}

size_t Fst::num_transitions() const {
  size_t total = 0;
  for (const auto& ts : from_) total += ts.size();
  return total;
}

bool Fst::Matches(const Transition& tr, ItemId t,
                  const Dictionary& dict) const {
  switch (tr.in_kind) {
    case InputKind::kAny:
      return true;
    case InputKind::kDescendants:
      return dict.IsAncestorOrSelf(tr.in_item, t);
    case InputKind::kExact:
      return t == tr.in_item;
  }
  return false;
}

void Fst::ComputeOutput(const Transition& tr, ItemId t, const Dictionary& dict,
                        Sequence* out) const {
  out->clear();
  switch (tr.out_kind) {
    case OutputKind::kEpsilon:
      return;
    case OutputKind::kSelf:
      out->push_back(t);
      return;
    case OutputKind::kAncestors: {
      const auto& anc = dict.Ancestors(t);
      out->assign(anc.begin(), anc.end());
      return;
    }
    case OutputKind::kAncestorsUpTo: {
      // anc(t) restricted to descendants of out_item (incl. out_item).
      for (ItemId a : dict.Ancestors(t)) {
        if (dict.IsAncestorOrSelf(tr.out_item, a)) out->push_back(a);
      }
      return;
    }
    case OutputKind::kConstant:
      out->push_back(tr.out_item);
      return;
  }
}

std::string Fst::DebugString(const Dictionary& dict) const {
  std::string out = "FST initial=q" + std::to_string(initial_) + " finals={";
  for (StateId q = 0; q < num_states(); ++q) {
    if (final_[q]) out += " q" + std::to_string(q);
  }
  out += " }\n";
  for (StateId q = 0; q < num_states(); ++q) {
    for (const Transition& tr : from_[q]) {
      out += "  q" + std::to_string(tr.from) + " -> q" + std::to_string(tr.to) +
             "  in=";
      switch (tr.in_kind) {
        case InputKind::kAny:
          out += ".";
          break;
        case InputKind::kDescendants:
          out += "desc(" + dict.Name(tr.in_item) + ")";
          break;
        case InputKind::kExact:
          out += dict.Name(tr.in_item) + "=";
          break;
      }
      out += " out=";
      switch (tr.out_kind) {
        case OutputKind::kEpsilon:
          out += "eps";
          break;
        case OutputKind::kSelf:
          out += "self";
          break;
        case OutputKind::kAncestors:
          out += "anc";
          break;
        case OutputKind::kAncestorsUpTo:
          out += "anc<=" + dict.Name(tr.out_item);
          break;
        case OutputKind::kConstant:
          out += "const(" + dict.Name(tr.out_item) + ")";
          break;
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace dseq
