// Graphviz export for FSTs and output NFAs (debugging / documentation).
//
// Renders the paper's figures: `FstToDot` produces diagrams like Fig. 4,
// `NfaToDot` like Fig. 7/8. Feed the output to `dot -Tsvg`.
#ifndef DSEQ_FST_DOT_EXPORT_H_
#define DSEQ_FST_DOT_EXPORT_H_

#include <string>

#include "src/dict/dictionary.h"
#include "src/fst/fst.h"
#include "src/nfa/output_nfa.h"

namespace dseq {

/// Renders the FST as a Graphviz digraph. Transition labels use the pattern
/// notation: input predicate / output operation.
std::string FstToDot(const Fst& fst, const Dictionary& dict);

/// Renders an output NFA (D-CAND candidate representation) as a Graphviz
/// digraph; edges are labeled with their output sets.
std::string NfaToDot(const OutputNfa& nfa, const Dictionary& dict);

}  // namespace dseq

#endif  // DSEQ_FST_DOT_EXPORT_H_
