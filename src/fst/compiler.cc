#include "src/fst/compiler.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "src/patex/parser.h"

namespace dseq {
namespace {

// Maximum number of atom copies a bounded repetition may expand to.
constexpr int kMaxRepeatExpansion = 1000;

std::tuple<StateId, InputKind, ItemId, OutputKind, ItemId, StateId> Key(
    const Transition& t) {
  return {t.from, t.in_kind, t.in_item, t.out_kind, t.out_item, t.to};
}

class Builder {
 public:
  explicit Builder(const Dictionary& dict) : dict_(dict) {}

  Fst Compile(const PatEx& pattern) {
    Fragment frag = CompileNode(pattern, /*captured=*/false);
    return MergeBisimilarStates(EliminateEpsilon(frag.start, frag.end));
  }

  // Collapses states with identical behaviour (same finality and the same
  // labeled transitions into the same state classes) via partition
  // refinement. This yields the paper's compact FSTs — e.g. the three-state
  // FST of Fig. 4 — and, importantly, turns loop constructs like '.*' into
  // true self-loops, which the D-SEQ rewriter's "state change" relevance
  // test relies on.
  static Fst MergeBisimilarStates(const Fst& fst) {
    size_t n = fst.num_states();
    if (n == 0) return fst;
    std::vector<uint32_t> cls(n);
    for (StateId q = 0; q < n; ++q) cls[q] = fst.IsFinal(q) ? 1 : 0;

    using Signature =
        std::vector<std::tuple<InputKind, ItemId, OutputKind, ItemId,
                               uint32_t>>;
    size_t num_classes = 0;  // refinement only splits; equal count = stable
    while (true) {
      std::map<std::pair<uint32_t, Signature>, uint32_t> next_ids;
      std::vector<uint32_t> next(n);
      for (StateId q = 0; q < n; ++q) {
        Signature sig;
        for (const Transition& t : fst.From(q)) {
          sig.emplace_back(t.in_kind, t.in_item, t.out_kind, t.out_item,
                           cls[t.to]);
        }
        std::sort(sig.begin(), sig.end());
        sig.erase(std::unique(sig.begin(), sig.end()), sig.end());
        auto key = std::make_pair(cls[q], std::move(sig));
        auto [it, inserted] =
            next_ids.emplace(std::move(key),
                             static_cast<uint32_t>(next_ids.size()));
        next[q] = it->second;
      }
      size_t count = next_ids.size();
      cls = std::move(next);
      if (count == num_classes) break;
      num_classes = count;
    }

    // Rebuild with one state per class, renumbered from the initial class.
    std::vector<StateId> remap(num_classes, UINT32_MAX);
    std::vector<StateId> order;
    remap[cls[fst.initial()]] = 0;
    order.push_back(fst.initial());
    // BFS over classes for a deterministic numbering.
    for (size_t oi = 0; oi < order.size(); ++oi) {
      StateId rep = order[oi];
      for (const Transition& t : fst.From(rep)) {
        if (remap[cls[t.to]] == UINT32_MAX) {
          remap[cls[t.to]] = static_cast<StateId>(order.size());
          order.push_back(t.to);
        }
      }
    }

    std::vector<bool> finals(order.size(), false);
    std::vector<std::vector<Transition>> trans(order.size());
    for (size_t oi = 0; oi < order.size(); ++oi) {
      StateId rep = order[oi];
      finals[oi] = fst.IsFinal(rep);
      for (Transition t : fst.From(rep)) {
        t.from = static_cast<StateId>(oi);
        t.to = remap[cls[t.to]];
        trans[oi].push_back(t);
      }
      auto& ts = trans[oi];
      std::sort(ts.begin(), ts.end(),
                [](const Transition& a, const Transition& b) {
                  return Key(a) < Key(b);
                });
      ts.erase(std::unique(ts.begin(), ts.end()), ts.end());
    }
    return Fst(0, std::move(finals), std::move(trans));
  }

 private:
  struct Fragment {
    StateId start;
    StateId end;
  };

  StateId NewState() {
    consuming_.emplace_back();
    eps_.emplace_back();
    return static_cast<StateId>(consuming_.size() - 1);
  }

  void AddEps(StateId from, StateId to) { eps_[from].push_back(to); }

  void AddConsuming(StateId from, StateId to, InputKind in_kind,
                    ItemId in_item, OutputKind out_kind, ItemId out_item) {
    Transition t;
    t.from = from;
    t.to = to;
    t.in_kind = in_kind;
    t.in_item = in_item;
    t.out_kind = out_kind;
    t.out_item = out_item;
    consuming_[from].push_back(t);
  }

  ItemId Resolve(const std::string& name) {
    ItemId w = dict_.ItemByName(name);
    if (w == kNoItem) {
      throw FstCompileError("pattern references unknown item: " + name);
    }
    return w;
  }

  Fragment CompileNode(const PatEx& node, bool captured) {
    switch (node.kind) {
      case PatEx::Kind::kItem: {
        ItemId w = Resolve(node.item);
        StateId s = NewState();
        StateId e = NewState();
        InputKind in_kind =
            node.exact && !node.generalize ? InputKind::kExact
                                           : InputKind::kDescendants;
        OutputKind out_kind = OutputKind::kEpsilon;
        ItemId out_item = kNoItem;
        if (captured) {
          if (!node.generalize && !node.exact) {
            out_kind = OutputKind::kSelf;  // (w): output matched item
          } else if (!node.generalize && node.exact) {
            out_kind = OutputKind::kConstant;  // (w=): output w
            out_item = w;
          } else if (node.generalize && !node.exact) {
            out_kind = OutputKind::kAncestorsUpTo;  // (w^): generalize up to w
            out_item = w;
          } else {
            out_kind = OutputKind::kConstant;  // (w^=): always generalize to w
            out_item = w;
          }
        }
        AddConsuming(s, e, in_kind, w, out_kind, out_item);
        return {s, e};
      }
      case PatEx::Kind::kDot: {
        StateId s = NewState();
        StateId e = NewState();
        OutputKind out_kind = OutputKind::kEpsilon;
        if (captured) {
          out_kind = node.generalize ? OutputKind::kAncestors
                                     : OutputKind::kSelf;
        }
        AddConsuming(s, e, InputKind::kAny, kNoItem, out_kind, kNoItem);
        return {s, e};
      }
      case PatEx::Kind::kConcat: {
        Fragment result = CompileNode(*node.children[0], captured);
        for (size_t i = 1; i < node.children.size(); ++i) {
          Fragment next = CompileNode(*node.children[i], captured);
          AddEps(result.end, next.start);
          result.end = next.end;
        }
        return result;
      }
      case PatEx::Kind::kAlt: {
        StateId s = NewState();
        StateId e = NewState();
        for (const auto& child : node.children) {
          Fragment f = CompileNode(*child, captured);
          AddEps(s, f.start);
          AddEps(f.end, e);
        }
        return {s, e};
      }
      case PatEx::Kind::kRepeat:
        return CompileRepeat(node, captured);
      case PatEx::Kind::kCapture:
        return CompileNode(*node.children[0], /*captured=*/true);
    }
    throw FstCompileError("invalid pattern node");
  }

  // True for an uncaptured-or-captured '.*' / '.^*' node.
  static bool IsDotStar(const PatEx& node) {
    return node.kind == PatEx::Kind::kRepeat && node.min_rep == 0 &&
           node.max_rep == -1 && node.children[0]->kind == PatEx::Kind::kDot;
  }

  // DESQ's compressed-FST semantics (paper Fig. 4): inside an *unbounded*
  // repetition, a leading or trailing '.*' of the body collapses with the
  // loop, i.e. [E .*]* and [.* E]* compile to [E | .]*. This is visible in
  // the paper's running example: the FST for .*(A)[(.^).*]*(b).* has a plain
  // '.' self-loop at q1, so e.g. a1db and a1b are candidates of T1 = a1cdcb.
  // We reproduce it by rewriting the repetition body.
  std::unique_ptr<PatEx> RewriteUnboundedBody(const PatEx& child) {
    if (child.kind != PatEx::Kind::kConcat) return nullptr;
    size_t begin = 0;
    size_t end = child.children.size();
    bool stripped_plain = false;
    bool stripped_gen = false;
    auto note = [&](const PatEx& dotstar) {
      (dotstar.children[0]->generalize ? stripped_gen : stripped_plain) = true;
    };
    while (begin < end && IsDotStar(*child.children[begin])) {
      note(*child.children[begin]);
      ++begin;
    }
    while (end > begin && IsDotStar(*child.children[end - 1])) {
      note(*child.children[end - 1]);
      --end;
    }
    if (!stripped_plain && !stripped_gen) return nullptr;
    std::vector<std::unique_ptr<PatEx>> rest;
    for (size_t i = begin; i < end; ++i) {
      rest.push_back(child.children[i]->Clone());
    }
    std::vector<std::unique_ptr<PatEx>> alts;
    if (!rest.empty()) alts.push_back(PatEx::Concat(std::move(rest)));
    if (stripped_plain) alts.push_back(PatEx::Dot(false));
    if (stripped_gen) alts.push_back(PatEx::Dot(true));
    return PatEx::Alt(std::move(alts));
  }

  Fragment CompileRepeat(const PatEx& node, bool captured) {
    if (node.max_rep == -1) {
      std::unique_ptr<PatEx> rewritten = RewriteUnboundedBody(*node.children[0]);
      if (rewritten != nullptr) {
        PatEx loop;
        loop.kind = PatEx::Kind::kRepeat;
        loop.min_rep = node.min_rep;
        loop.max_rep = -1;
        loop.children.push_back(std::move(rewritten));
        return CompileRepeat(loop, captured);
      }
    }
    const PatEx& child = *node.children[0];
    int min_rep = node.min_rep;
    int max_rep = node.max_rep;
    int copies = max_rep == -1 ? min_rep + 1 : max_rep;
    if (copies > kMaxRepeatExpansion) {
      throw FstCompileError("repetition bound too large to expand");
    }

    StateId s = NewState();
    StateId cur = s;
    // Mandatory part: min_rep copies in a chain.
    for (int i = 0; i < min_rep; ++i) {
      Fragment f = CompileNode(child, captured);
      AddEps(cur, f.start);
      cur = f.end;
    }
    if (max_rep == -1) {
      // Unbounded tail: Thompson star.
      Fragment f = CompileNode(child, captured);
      StateId e = NewState();
      AddEps(cur, f.start);
      AddEps(cur, e);
      AddEps(f.end, f.start);
      AddEps(f.end, e);
      return {s, e};
    }
    // Bounded tail: (max_rep - min_rep) optional copies; every copy boundary
    // can short-circuit to the end.
    StateId e = NewState();
    AddEps(cur, e);
    for (int i = min_rep; i < max_rep; ++i) {
      Fragment f = CompileNode(child, captured);
      AddEps(cur, f.start);
      AddEps(f.end, e);
      cur = f.end;
    }
    return {s, e};
  }

  // Standard ε-elimination: each state inherits the consuming transitions of
  // its ε-closure and is final if its closure contains the final state.
  // Afterwards, prunes states unreachable from the start or unable to reach
  // a final state.
  Fst EliminateEpsilon(StateId start, StateId final_state) {
    size_t n = consuming_.size();

    // ε-closures via iterative DFS.
    std::vector<std::vector<StateId>> closure(n);
    {
      std::vector<uint8_t> seen(n, 0);
      std::vector<StateId> stack;
      for (StateId q = 0; q < n; ++q) {
        std::fill(seen.begin(), seen.end(), 0);
        stack.clear();
        stack.push_back(q);
        seen[q] = 1;
        while (!stack.empty()) {
          StateId u = stack.back();
          stack.pop_back();
          closure[q].push_back(u);
          for (StateId v : eps_[u]) {
            if (!seen[v]) {
              seen[v] = 1;
              stack.push_back(v);
            }
          }
        }
      }
    }

    std::vector<bool> is_final(n, false);
    std::vector<std::vector<Transition>> trans(n);
    for (StateId q = 0; q < n; ++q) {
      for (StateId c : closure[q]) {
        if (c == final_state) is_final[q] = true;
        for (Transition t : consuming_[c]) {
          t.from = q;
          trans[q].push_back(t);
        }
      }
      auto& ts = trans[q];
      std::sort(ts.begin(), ts.end(),
                [](const Transition& a, const Transition& b) {
                  return Key(a) < Key(b);
                });
      ts.erase(std::unique(ts.begin(), ts.end()), ts.end());
    }

    // Forward reachability from start.
    std::vector<bool> fwd(n, false);
    {
      std::vector<StateId> stack = {start};
      fwd[start] = true;
      while (!stack.empty()) {
        StateId u = stack.back();
        stack.pop_back();
        for (const Transition& t : trans[u]) {
          if (!fwd[t.to]) {
            fwd[t.to] = true;
            stack.push_back(t.to);
          }
        }
      }
    }

    // Backward reachability to any final state.
    std::vector<bool> bwd(n, false);
    {
      std::vector<std::vector<StateId>> rev(n);
      for (StateId q = 0; q < n; ++q) {
        for (const Transition& t : trans[q]) rev[t.to].push_back(q);
      }
      std::vector<StateId> stack;
      for (StateId q = 0; q < n; ++q) {
        if (is_final[q]) {
          bwd[q] = true;
          stack.push_back(q);
        }
      }
      while (!stack.empty()) {
        StateId u = stack.back();
        stack.pop_back();
        for (StateId v : rev[u]) {
          if (!bwd[v]) {
            bwd[v] = true;
            stack.push_back(v);
          }
        }
      }
    }

    // Keep the start state always (an FST accepting nothing must still have
    // an initial state); keep other states only if on some accepting path.
    std::vector<StateId> remap(n, UINT32_MAX);
    StateId next_id = 0;
    for (StateId q = 0; q < n; ++q) {
      if (q == start || (fwd[q] && bwd[q])) remap[q] = next_id++;
    }

    std::vector<bool> new_final(next_id, false);
    std::vector<std::vector<Transition>> new_trans(next_id);
    for (StateId q = 0; q < n; ++q) {
      if (remap[q] == UINT32_MAX) continue;
      new_final[remap[q]] = is_final[q];
      for (Transition t : trans[q]) {
        if (remap[t.to] == UINT32_MAX || !bwd[t.to] || !fwd[q]) continue;
        t.from = remap[q];
        t.to = remap[t.to];
        new_trans[t.from].push_back(t);
      }
    }
    return Fst(remap[start], std::move(new_final), std::move(new_trans));
  }

  const Dictionary& dict_;
  std::vector<std::vector<Transition>> consuming_;
  std::vector<std::vector<StateId>> eps_;
};

}  // namespace

Fst CompileFst(const PatEx& pattern, const Dictionary& dict) {
  return Builder(dict).Compile(pattern);
}

Fst CompileFst(const std::string& pattern, const Dictionary& dict) {
  auto ast = ParsePatEx(pattern);
  return CompileFst(*ast, dict);
}

}  // namespace dseq
