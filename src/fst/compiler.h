// Pattern expression -> FST compiler (paper Sec. IV).
//
// Uses Thompson construction with ε-transitions, then eliminates
// ε-transitions and prunes states that are unreachable or cannot reach a
// final state. Bounded repetitions {n,m} are expanded by duplication.
#ifndef DSEQ_FST_COMPILER_H_
#define DSEQ_FST_COMPILER_H_

#include <memory>
#include <stdexcept>
#include <string>

#include "src/dict/dictionary.h"
#include "src/fst/fst.h"
#include "src/patex/patex.h"

namespace dseq {

/// Thrown when a pattern references an item missing from the dictionary.
class FstCompileError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Compiles a pattern expression AST into an ε-free FST over `dict`.
Fst CompileFst(const PatEx& pattern, const Dictionary& dict);

/// Convenience: parse + compile.
Fst CompileFst(const std::string& pattern, const Dictionary& dict);

}  // namespace dseq

#endif  // DSEQ_FST_COMPILER_H_
