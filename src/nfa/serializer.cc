#include "src/nfa/serializer.h"

#include <limits>
#include <vector>

#include "src/util/varint.h"

namespace dseq {
namespace {

constexpr uint8_t kHasSource = 1;
constexpr uint8_t kHasTarget = 2;
constexpr uint8_t kFinalMarker = 4;

void PutLabel(std::string* out, const Sequence& label) {
  PutVarint(out, label.size());
  ItemId prev = 0;
  for (ItemId w : label) {
    // Labels are sorted ascending, so plain deltas suffice.
    PutVarint(out, w - prev);
    prev = w;
  }
}

bool GetLabel(std::string_view data, size_t* pos, Sequence* label) {
  uint64_t n = 0;
  if (!GetVarint(data, pos, &n)) return false;
  label->clear();
  // Each encoded item is at least one byte; reject adversarial length
  // prefixes before they can drive a huge allocation.
  if (n > data.size() - *pos) return false;
  label->reserve(n);
  constexpr uint64_t kMaxItem = std::numeric_limits<ItemId>::max();
  uint64_t prev = 0;
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t delta = 0;
    if (!GetVarint(data, pos, &delta)) return false;
    // Labels are strictly ascending item sets starting at an item >= 1, so
    // every delta is positive; the bound is checked before the addition so
    // an adversarial near-2^64 delta cannot wrap back into range.
    if (delta == 0 || delta > kMaxItem - prev) return false;
    prev += delta;
    label->push_back(static_cast<ItemId>(prev));
  }
  return true;
}

}  // namespace

void SerializeNfaTo(const OutputNfa& nfa, std::string* out) {
  PutVarint(out, nfa.num_edges());
  if (nfa.num_edges() == 0) return;

  // DFS in state-id order (ids are DFS preorder after Canonicalize or
  // Minimize). Track visited states and the previous record's target to
  // apply the paper's implicit source/target compression.
  std::vector<uint8_t> visited(nfa.num_states(), 0);
  visited[0] = 1;
  StateId prev_target = 0;
  std::vector<std::pair<StateId, size_t>> stack;
  stack.emplace_back(0, 0);
  while (!stack.empty()) {
    auto& [q, ei] = stack.back();
    if (ei >= nfa.EdgesOf(q).size()) {
      stack.pop_back();
      continue;
    }
    const OutputNfa::Edge& e = nfa.EdgesOf(q)[ei];
    ++ei;

    uint8_t header = 0;
    bool target_new = !visited[e.target];
    if (q != prev_target) header |= kHasSource;
    if (!target_new) header |= kHasTarget;
    if (target_new && nfa.IsFinal(e.target)) header |= kFinalMarker;
    out->push_back(static_cast<char>(header));
    if (header & kHasSource) PutVarint(out, q);
    PutLabel(out, nfa.Label(e.label));
    if (header & kHasTarget) PutVarint(out, e.target);

    prev_target = e.target;
    if (target_new) {
      visited[e.target] = 1;
      stack.emplace_back(e.target, 0);
    }
  }
}

std::string SerializeNfa(const OutputNfa& nfa) {
  std::string out;
  SerializeNfaTo(nfa, &out);
  return out;
}

OutputNfa DeserializeNfa(std::string_view bytes, size_t* pos) {
  uint64_t num_edges = 0;
  if (!GetVarint(bytes, pos, &num_edges)) {
    throw NfaParseError("truncated NFA header");
  }
  // Every serialized edge occupies at least two bytes (header + label), so
  // an adversarial edge count is rejected up front.
  if (num_edges > (bytes.size() - *pos) / 2) {
    throw NfaParseError("NFA edge count exceeds input size");
  }
  OutputNfa nfa;
  StateId prev_target = 0;
  Sequence label;
  for (uint64_t i = 0; i < num_edges; ++i) {
    if (*pos >= bytes.size()) throw NfaParseError("truncated NFA record");
    uint8_t header = static_cast<uint8_t>(bytes[*pos]);
    ++*pos;
    StateId src = prev_target;
    if (header & kHasSource) {
      uint64_t v = 0;
      if (!GetVarint(bytes, pos, &v)) throw NfaParseError("bad source state");
      src = static_cast<StateId>(v);
    }
    if (src >= nfa.num_states()) throw NfaParseError("source out of range");
    if (!GetLabel(bytes, pos, &label) || label.empty()) {
      throw NfaParseError("bad label");
    }
    StateId tgt;
    if (header & kHasTarget) {
      uint64_t v = 0;
      if (!GetVarint(bytes, pos, &v)) throw NfaParseError("bad target state");
      if (v >= nfa.num_states()) throw NfaParseError("target out of range");
      tgt = nfa.AddEdge(src, label, static_cast<StateId>(v),
                        /*create_new=*/false, /*mark_final=*/false);
    } else {
      tgt = nfa.AddEdge(src, label, 0, /*create_new=*/true,
                        /*mark_final=*/(header & kFinalMarker) != 0);
    }
    prev_target = tgt;
  }
  return nfa;
}

OutputNfa DeserializeNfa(std::string_view bytes) {
  size_t pos = 0;
  OutputNfa nfa = DeserializeNfa(bytes, &pos);
  if (pos != bytes.size()) throw NfaParseError("trailing bytes after NFA");
  return nfa;
}

}  // namespace dseq
