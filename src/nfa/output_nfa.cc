#include "src/nfa/output_nfa.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

namespace dseq {

size_t OutputNfa::num_edges() const {
  size_t total = 0;
  for (const State& s : states_) total += s.edges.size();
  return total;
}

OutputNfa::LabelId OutputNfa::InternLabel(const Sequence& label) {
  auto it = label_ids_.find(label);
  if (it != label_ids_.end()) return it->second;
  LabelId id = static_cast<LabelId>(labels_.size());
  labels_.push_back(label);
  label_ids_[label] = id;
  return id;
}

void OutputNfa::AddRun(const std::vector<const StateGrid::Edge*>& run,
                       ItemId pivot) {
  std::vector<Sequence> label_string;
  label_string.reserve(run.size());
  Sequence trimmed;
  for (const StateGrid::Edge* e : run) {
    if (e->out.empty()) continue;  // ε output
    trimmed.clear();
    for (ItemId w : e->out) {
      if (w <= pivot) trimmed.push_back(w);
    }
    if (trimmed.empty()) return;  // defensive: run has no pivot-k candidate
    label_string.push_back(trimmed);
  }
  AddLabelString(label_string);
}

void OutputNfa::AddLabelString(const std::vector<Sequence>& label_string) {
  if (label_string.empty()) return;
  StateId cur = 0;
  for (const Sequence& label : label_string) {
    LabelId lid = InternLabel(label);
    StateId next = UINT32_MAX;
    for (const Edge& e : states_[cur].edges) {
      if (e.label == lid) {
        next = e.target;
        break;
      }
    }
    if (next == UINT32_MAX) {
      next = static_cast<StateId>(states_.size());
      states_.emplace_back();
      states_[cur].edges.push_back(Edge{lid, next});
    }
    cur = next;
  }
  states_[cur].final = true;
}

StateId OutputNfa::AddEdge(StateId from, const Sequence& label,
                           StateId to_or_new, bool create_new,
                           bool mark_final) {
  LabelId lid = InternLabel(label);
  StateId to = to_or_new;
  if (create_new) {
    to = static_cast<StateId>(states_.size());
    states_.emplace_back();
  }
  states_[from].edges.push_back(Edge{lid, to});
  if (mark_final) states_[to].final = true;
  return to;
}

namespace {

// Signature of a state for hash-consing: finality + canonicalized edges
// (label *content* index, canonical target).
struct StateSignature {
  bool final;
  std::vector<std::pair<uint32_t, uint32_t>> edges;

  bool operator==(const StateSignature& o) const {
    return final == o.final && edges == o.edges;
  }
};

struct StateSignatureHash {
  size_t operator()(const StateSignature& s) const {
    size_t h = s.final ? 0x9e3779b97f4a7c15ULL : 0x517cc1b727220a95ULL;
    for (const auto& [l, t] : s.edges) {
      h ^= (static_cast<size_t>(l) * 0x9e3779b97f4a7c15ULL + t) +
           0x9e3779b9 + (h << 6) + (h >> 2);
    }
    return h;
  }
};

}  // namespace

void OutputNfa::Minimize() {
  size_t n = states_.size();
  if (n <= 1) return;

  // Canonical order of label ids by content, so that signatures do not
  // depend on interning order.
  std::vector<uint32_t> label_rank(labels_.size());
  {
    std::vector<LabelId> order(labels_.size());
    for (LabelId i = 0; i < labels_.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](LabelId a, LabelId b) {
      return labels_[a] < labels_[b];
    });
    for (uint32_t rank = 0; rank < order.size(); ++rank) {
      label_rank[order[rank]] = rank;
    }
  }

  // The trie invariant (edges point to higher ids) makes descending id order
  // a reverse topological order: children are canonicalized before parents.
  std::vector<StateId> canon(n);
  std::unordered_map<StateSignature, StateId, StateSignatureHash> registry;
  for (size_t qi = n; qi-- > 0;) {
    StateId q = static_cast<StateId>(qi);
    StateSignature sig;
    sig.final = states_[q].final;
    sig.edges.reserve(states_[q].edges.size());
    for (const Edge& e : states_[q].edges) {
      sig.edges.emplace_back(label_rank[e.label], canon[e.target]);
    }
    std::sort(sig.edges.begin(), sig.edges.end());
    sig.edges.erase(std::unique(sig.edges.begin(), sig.edges.end()),
                    sig.edges.end());
    auto [it, inserted] = registry.emplace(sig, q);
    canon[q] = it->second;
  }

  // Rewrite edges to canonical targets, keep only canonical states, then
  // renumber in DFS preorder for a deterministic serialization.
  for (State& s : states_) {
    for (Edge& e : s.edges) e.target = canon[e.target];
  }
  RenumberDfs();
}

void OutputNfa::Canonicalize() { RenumberDfs(); }

void OutputNfa::RenumberDfs() {
  // Sort edges by (label content, subtree) — approximated by label content
  // then current target id — then renumber states in DFS preorder.
  for (State& s : states_) {
    std::sort(s.edges.begin(), s.edges.end(),
              [&](const Edge& a, const Edge& b) {
                if (labels_[a.label] != labels_[b.label]) {
                  return labels_[a.label] < labels_[b.label];
                }
                return a.target < b.target;
              });
    s.edges.erase(std::unique(s.edges.begin(), s.edges.end(),
                              [](const Edge& a, const Edge& b) {
                                return a.label == b.label &&
                                       a.target == b.target;
                              }),
                  s.edges.end());
  }

  std::vector<StateId> remap(states_.size(), UINT32_MAX);
  std::vector<StateId> order;
  order.reserve(states_.size());
  // Iterative DFS preorder from root, visiting edges in sorted order.
  std::vector<std::pair<StateId, size_t>> stack;
  remap[0] = 0;
  order.push_back(0);
  stack.emplace_back(0, 0);
  while (!stack.empty()) {
    auto& [q, ei] = stack.back();
    if (ei >= states_[q].edges.size()) {
      stack.pop_back();
      continue;
    }
    StateId t = states_[q].edges[ei].target;
    ++ei;
    if (remap[t] == UINT32_MAX) {
      remap[t] = static_cast<StateId>(order.size());
      order.push_back(t);
      stack.emplace_back(t, 0);
    }
  }

  std::vector<State> new_states(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    State& src = states_[order[i]];
    new_states[i].final = src.final;
    new_states[i].edges = std::move(src.edges);
    for (Edge& e : new_states[i].edges) e.target = remap[e.target];
  }
  states_ = std::move(new_states);
}

bool OutputNfa::Language(size_t budget, std::vector<Sequence>* out) const {
  out->clear();
  Sequence prefix;
  bool ok = true;
  // Recursive lambda DFS expanding output sets.
  std::function<void(StateId)> dfs = [&](StateId q) {
    if (!ok) return;
    if (states_[q].final && !prefix.empty()) {
      if (out->size() >= budget) {
        ok = false;
        return;
      }
      out->push_back(prefix);
    }
    for (const Edge& e : states_[q].edges) {
      for (ItemId w : labels_[e.label]) {
        prefix.push_back(w);
        dfs(e.target);
        prefix.pop_back();
        if (!ok) return;
      }
    }
  };
  dfs(0);
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
  return ok;
}

}  // namespace dseq
