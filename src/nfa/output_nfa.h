// Output NFAs for candidate representation (paper Sec. VI-A, Fig. 7/8).
//
// D-CAND sends to partition P_k an NFA that accepts exactly ρk(T): the
// candidate subsequences of T with pivot item k. The NFA's edges are labeled
// with *output sets* (one edge per non-ε output set of an accepting run;
// items larger than the pivot are dropped — they can only produce candidates
// with a larger pivot). Runs are inserted into a trie which is subsequently
// minimized; tries are acyclic, so minimization is linear (Revuz).
#ifndef DSEQ_NFA_OUTPUT_NFA_H_
#define DSEQ_NFA_OUTPUT_NFA_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/core/grid.h"
#include "src/util/common.h"

namespace dseq {

/// A weighted acyclic NFA over output-set labels. State 0 is the root.
/// Invariant: every edge points from a lower to a higher state id until
/// Minimize() renumbers states in canonical DFS order.
class OutputNfa {
 public:
  /// Label id into labels(); labels are interned output sets.
  using LabelId = uint32_t;

  struct Edge {
    LabelId label;
    StateId target;
  };

  OutputNfa() { states_.emplace_back(); }

  size_t num_states() const { return states_.size(); }
  size_t num_edges() const;
  bool IsFinal(StateId q) const { return states_[q].final; }
  const std::vector<Edge>& EdgesOf(StateId q) const {
    return states_[q].edges;
  }
  const Sequence& Label(LabelId id) const { return labels_[id]; }
  bool empty() const { return states_.size() == 1 && states_[0].edges.empty(); }

  /// Inserts one accepting run: the sequence of its non-ε output sets, with
  /// items > pivot removed. Sets that become empty must not occur (the pivot
  /// search guarantees every output set contains an item <= pivot when the
  /// pivot is in K(r)); such runs are skipped defensively. Runs whose label
  /// string is empty (all-ε output) are ignored — the empty candidate is
  /// never mined.
  void AddRun(const std::vector<const StateGrid::Edge*>& run, ItemId pivot);

  /// Inserts a pre-trimmed label string (used by tests and deserialization).
  void AddLabelString(const std::vector<Sequence>& label_string);

  /// Adds a single edge (used by the deserializer). Creates states on demand.
  StateId AddEdge(StateId from, const Sequence& label, StateId to_or_new,
                  bool create_new, bool mark_final);

  /// Minimizes the acyclic automaton by bottom-up hash-consing and renumbers
  /// states in canonical DFS preorder with edges sorted by label content.
  /// Equal candidate sets inserted in any run order serialize identically
  /// afterwards (required for shuffle aggregation).
  void Minimize();

  /// Sorts edges by label content and renumbers in DFS preorder without
  /// merging states (canonicalization for unminimized tries).
  void Canonicalize();

  /// Enumerates the accepted language (expanding output sets), deduplicated
  /// and sorted; stops and returns false if more than `budget` raw sequences
  /// are produced. Test/oracle helper.
  bool Language(size_t budget, std::vector<Sequence>* out) const;

 private:
  struct State {
    bool final = false;
    std::vector<Edge> edges;
  };

  LabelId InternLabel(const Sequence& label);
  void RenumberDfs();

  std::vector<State> states_;
  std::vector<Sequence> labels_;
  std::map<Sequence, LabelId> label_ids_;
};

}  // namespace dseq

#endif  // DSEQ_NFA_OUTPUT_NFA_H_
