// NFA (de)serialization in DFS order (paper Sec. VI-A, "Serialization").
//
// Transitions are written in DFS visit order. For each transition we write a
// header byte and then, depending on the header:
//   * the source state   — only if it is not the target of the previous
//                          transition (the paper's rule 1),
//   * the label          — varint item count + delta-coded item ids,
//   * the target state   — only if the target was visited before (rule 2);
//                          otherwise the transition implicitly creates the
//                          next fresh state,
//   * a "final" marker   — if the target is final and newly created (rule 3;
//                          re-visited targets carry their known finality).
//
// States are numbered in DFS visit order (root = 0). Weighted NFAs prepend a
// varint weight.
#ifndef DSEQ_NFA_SERIALIZER_H_
#define DSEQ_NFA_SERIALIZER_H_

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "src/nfa/output_nfa.h"

namespace dseq {

/// Thrown on malformed serialized NFAs.
class NfaParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Serializes the NFA (call Minimize() or Canonicalize() first so that state
/// numbering is DFS preorder; the serializer asserts this layout).
std::string SerializeNfa(const OutputNfa& nfa);

/// Appends the serialization to `*out` (avoids a copy in hot paths).
void SerializeNfaTo(const OutputNfa& nfa, std::string* out);

/// Parses a serialized NFA starting at `*pos`; advances `*pos` to the end of
/// the consumed bytes. Throws NfaParseError on malformed input. Takes a view
/// so shuffle records can be decoded in place.
OutputNfa DeserializeNfa(std::string_view bytes, size_t* pos);

/// Convenience whole-string parse.
OutputNfa DeserializeNfa(std::string_view bytes);

}  // namespace dseq

#endif  // DSEQ_NFA_SERIALIZER_H_
