// Multi-process round execution: a coordinator and forked worker processes
// exchanging shuffle segments over loopback TCP (DataflowBackend::kProc).
//
// One RunProcRound call executes one map-shuffle-reduce round:
//
//   1. The coordinator forks max(M, R) workers. fork() copies the address
//      space, so the round's map/reduce closures (and whatever parent state
//      they capture — the sequence database, NFAs, option structs) are
//      valid in every worker without any serialization of the functions
//      themselves. Data still crosses processes only in serialized form.
//   2. Map tasks are scheduled onto idle workers. A worker runs the *same*
//      RunMapShard body as the local backend (src/dataflow/map_shard.h),
//      then ships each reducer's output as segments: spilled sorted runs
//      verbatim (the SpillFile bytes double as the wire format), then the
//      resident bucket tail in stored form (compressed iff
//      compress_shuffle). kMapDone carries the task's raw shuffle metrics
//      and commits its segments; the coordinator enforces the global
//      shuffle budget on the committed sum.
//   3. Reduce tasks replay each reducer's committed segments in map-task
//      order — exactly the source order of the local reduce phase, so the
//      stable merge (external when runs exist, sort-based otherwise) yields
//      byte-identical groups and within-key value order. Boundary records
//      come back in kReduceDone.
//
// Failure policy (see README "Failure model & fault injection"):
//
//   - Detection. A worker that dies surfaces as connection EOF; one that
//     makes no observable progress for proc_worker_timeout_ms is SIGKILLed.
//     "Progress" counts any frame, including kPong heartbeats a worker's
//     progress-gated pump sends while its task advances — so a slow task
//     outlives any timeout while a hung one goes silent and dies.
//   - Retries. The dead worker's in-flight task has its uncommitted
//     segments discarded and is reassigned, at most
//     proc_max_task_attempts times total; exhausting the budget throws
//     ProcTaskFailedError naming the phase, task, attempt count, and last
//     failure. Worker exceptions (kError frames) are deterministic and
//     rethrown immediately, never retried. Committed map output persists on
//     the coordinator, so lost reduce tasks replay without re-running maps.
//   - Respawn. Each death schedules a replacement worker fork after an
//     exponential backoff (10ms doubling, capped at 1s, at most 5 respawns
//     per ordinal), so a transiently crashing pool heals instead of
//     shrinking to zero; the round fails with ProcBackendError only when no
//     live or respawnable worker remains.
//   - Deadline. proc_round_deadline_ms caps the round's wall clock;
//     exceeding it throws ProcDeadlineError.
//
// Results are identical across retries because task output is deterministic
// and only committed once. Orphaned spill files of killed workers are
// removed by the coordinator (spill file names embed the owning pid).
// Attempt/retry/kill/respawn counts surface in DataflowMetrics::proc_* and
// `dseq_cli --stats`.
//
// Failures are *injected* deterministically in chaos builds via
// src/fault/fault_injection.h: sites in the socket layer, spill I/O, and
// the worker lifecycle (worker.message kills/stalls by message count,
// worker.before_commit just before kMapDone) replace the former
// DSEQ_PROC_TEST_KILL_WORKER env hook.
//
// Determinism contract with the local backend: identical result records
// (values in the same within-key order), identical raw shuffle metrics
// (shuffle_bytes, shuffle_records, map_output_records, reducer_bytes, and
// shuffle_compressed_bytes). spill_* metrics are real but not comparable —
// each worker process budgets its own memory, so spill timing differs.
#ifndef DSEQ_RPC_PROC_BACKEND_H_
#define DSEQ_RPC_PROC_BACKEND_H_

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/dataflow/chained.h"
#include "src/dataflow/engine.h"

namespace dseq {

/// Base of every proc-backend infrastructure failure (as opposed to typed
/// exceptions a worker's task itself threw, which are rethrown as-is).
class ProcBackendError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A task exhausted its retry budget: every one of `attempts` executions
/// (== DataflowOptions::proc_max_task_attempts) ended in a worker death or
/// stall. The message and accessors name the phase ("map"/"reduce"), the
/// task index, the attempt count, and the last observed failure.
class ProcTaskFailedError : public ProcBackendError {
 public:
  ProcTaskFailedError(std::string phase, int task, int attempts,
                      std::string last_failure)
      : ProcBackendError("proc backend: " + phase + " task " +
                         std::to_string(task) + " failed after " +
                         std::to_string(attempts) + " attempts (last failure: " +
                         last_failure + ")"),
        phase_(std::move(phase)),
        task_(task),
        attempts_(attempts),
        last_failure_(std::move(last_failure)) {}

  const std::string& phase() const { return phase_; }
  int task() const { return task_; }
  int attempts() const { return attempts_; }
  const std::string& last_failure() const { return last_failure_; }

 private:
  std::string phase_;
  int task_;
  int attempts_;
  std::string last_failure_;
};

/// The round exceeded DataflowOptions::proc_round_deadline_ms.
class ProcDeadlineError : public ProcBackendError {
 public:
  using ProcBackendError::ProcBackendError;
};

/// Output of one proc-backend round.
struct ProcRoundResult {
  DataflowMetrics metrics;
  /// Boundary records emitted by the reduce functions, in reduce-task order
  /// — the same flattening DataflowJob uses for the local backend.
  std::vector<Record> records;
};

/// Runs one round on forked worker processes. `options` is honored like
/// RunMapReduce honors it (workers, budgets, compression, partitioner,
/// round_index), plus the proc_* failure-policy knobs; Execution::kSimulated
/// is ignored — processes are always real. Throws the worker's typed
/// exception (ShuffleOverflowError etc.) on a task exception,
/// ProcTaskFailedError / ProcDeadlineError / ProcBackendError on policy
/// failures (see the header comment).
ProcRoundResult RunProcRound(size_t num_inputs, const MapFn& map_fn,
                             const CombinerFactory& combiner_factory,
                             const ChainReduceFn& reduce_fn,
                             const DataflowOptions& options);

}  // namespace dseq

#endif  // DSEQ_RPC_PROC_BACKEND_H_
