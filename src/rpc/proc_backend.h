// Multi-process round execution: a coordinator and forked worker processes
// exchanging shuffle segments over loopback TCP (DataflowBackend::kProc).
//
// One RunProcRound call executes one map-shuffle-reduce round:
//
//   1. The coordinator forks max(M, R) workers. fork() copies the address
//      space, so the round's map/reduce closures (and whatever parent state
//      they capture — the sequence database, NFAs, option structs) are
//      valid in every worker without any serialization of the functions
//      themselves. Data still crosses processes only in serialized form.
//   2. Map tasks are scheduled onto idle workers. A worker runs the *same*
//      RunMapShard body as the local backend (src/dataflow/map_shard.h),
//      then ships each reducer's output as segments: spilled sorted runs
//      verbatim (the SpillFile bytes double as the wire format), then the
//      resident bucket tail in stored form (compressed iff
//      compress_shuffle). kMapDone carries the task's raw shuffle metrics
//      and commits its segments; the coordinator enforces the global
//      shuffle budget on the committed sum.
//   3. Reduce tasks replay each reducer's committed segments in map-task
//      order — exactly the source order of the local reduce phase, so the
//      stable merge (external when runs exist, sort-based otherwise) yields
//      byte-identical groups and within-key value order. Boundary records
//      come back in kReduceDone.
//
// Fault tolerance: a worker that dies (connection EOF, or no progress for
// DataflowOptions::proc_worker_timeout_ms, which gets it SIGKILLed) has its
// in-flight task's uncommitted segments discarded and the task re-executed
// on another worker; committed map output persists on the coordinator, so
// lost reduce tasks replay without re-running the map phase. Results are
// identical because task output is deterministic and only committed once.
// Orphaned spill files of killed workers are removed by the coordinator
// (spill file names embed the owning pid).
//
// Determinism contract with the local backend: identical result records
// (values in the same within-key order), identical raw shuffle metrics
// (shuffle_bytes, shuffle_records, map_output_records, reducer_bytes, and
// shuffle_compressed_bytes). spill_* metrics are real but not comparable —
// each worker process budgets its own memory, so spill timing differs.
#ifndef DSEQ_RPC_PROC_BACKEND_H_
#define DSEQ_RPC_PROC_BACKEND_H_

#include <cstddef>
#include <vector>

#include "src/dataflow/chained.h"
#include "src/dataflow/engine.h"

namespace dseq {

/// Output of one proc-backend round.
struct ProcRoundResult {
  DataflowMetrics metrics;
  /// Boundary records emitted by the reduce functions, in reduce-task order
  /// — the same flattening DataflowJob uses for the local backend.
  std::vector<Record> records;
};

/// Runs one round on forked worker processes. `options` is honored like
/// RunMapReduce honors it (workers, budgets, compression, partitioner,
/// round_index), plus proc_worker_timeout_ms; Execution::kSimulated is
/// ignored — processes are always real. Throws the worker's typed exception
/// (ShuffleOverflowError etc.) on task failure, std::runtime_error when the
/// worker pool dies entirely.
///
/// Test hook: DSEQ_PROC_TEST_KILL_WORKER=<ordinal> makes that worker
/// SIGKILL itself at the end of its first map task, before the commit —
/// exercising segment discard and task re-execution.
ProcRoundResult RunProcRound(size_t num_inputs, const MapFn& map_fn,
                             const CombinerFactory& combiner_factory,
                             const ChainReduceFn& reduce_fn,
                             const DataflowOptions& options);

}  // namespace dseq

#endif  // DSEQ_RPC_PROC_BACKEND_H_
