// Length-framed message protocol of the multi-process backend.
//
// Every message on a coordinator<->worker connection is one frame:
//
//   varint(message type) + varint(payload size) + payload bytes
//
// reusing the varint coding of the shuffle serialization (src/util/varint.h)
// so the wire format needs no new primitives. Payload contents are
// message-specific (see MsgType); shuffle segments travel in exactly the
// stored form the engine holds them in — raw varint frames, a block-codec
// compressed bucket, or verbatim spill-run bytes — so the proc backend's
// shuffle volumes equal the local engine's by construction.
//
// FrameDecoder is an incremental push parser over untrusted bytes: feed it
// whatever arrived on the socket, drain complete frames. It never throws —
// malformed input (overlong varint, unknown type, oversized payload) turns
// into kBadFrame before any allocation is sized from attacker-controlled
// lengths, which is what the fuzz target (fuzz/fuzz_rpc_frame.cc) hammers.
#ifndef DSEQ_RPC_FRAME_H_
#define DSEQ_RPC_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace dseq {
namespace rpc {

/// Message types of the coordinator/worker protocol. Payloads are varint
/// sequences unless noted; `task` is a map task index, `reducer` a reduce
/// task index.
enum class MsgType : uint8_t {
  /// worker -> coordinator, once after connecting: varint(worker ordinal).
  kHello = 1,
  /// coordinator -> worker: varint(task) varint(begin) varint(end) — run the
  /// map shard over inputs [begin, end).
  kMapTask = 2,
  /// One shuffle segment, or one chunk of one. worker -> coordinator after
  /// a map task (the task's output for one reducer), coordinator -> worker
  /// inside a reduce task (replayed in map-task order). Payload:
  /// varint(task) varint(reducer) varint(kind: 0 = spill-run bytes,
  /// 1 = bucket tail, 2 = continuation chunk) varint(flags: bit 0 =
  /// block-compressed tail) varint(num_records) followed by the segment
  /// bytes. Segments larger than the chunk threshold (see
  /// kMaxFramePayloadBytes) ship as zero or more kind-2 frames — raw byte
  /// chunks with flags = num_records = 0 — terminated by one frame with the
  /// real kind/flags/num_records carrying the final chunk; the receiver
  /// concatenates. Chunks of one logical segment are never interleaved with
  /// other segments on a connection.
  kSegment = 3,
  /// worker -> coordinator: map task finished and all its segments sent.
  /// Payload: varint(task) varint(map_output_records) varint(shuffle_records)
  /// varint(shuffle_bytes) varint(shuffle_compressed_bytes)
  /// varint(spill_files) varint(spill_bytes_written) varint(spill_merge_passes)
  /// varint(input_storage_reads) varint(input_cache_hits)
  /// varint(num_reducers) num_reducers * varint(reducer_bytes[r]).
  kMapDone = 4,
  /// coordinator -> worker: varint(reducer) varint(num_segments) — reduce
  /// the segments streamed in the next num_segments kSegment frames.
  kReduceTask = 5,
  /// worker -> coordinator: varint(reducer) varint(spill_files)
  /// varint(spill_bytes_written) varint(spill_merge_passes)
  /// varint(num_records) then num_records boundary records, each
  /// varint(key size) varint(value size) key value.
  kReduceDone = 6,
  /// worker -> coordinator, once, before exiting on an exception:
  /// varint(kind: 0 runtime_error, 1 ShuffleOverflowError,
  /// 2 invalid_argument, 3 out_of_range, 4 overflow_error) followed by the
  /// exception message bytes. The coordinator rethrows the typed exception.
  kError = 7,
  /// coordinator -> worker: empty payload; the worker exits cleanly.
  kShutdown = 8,
  /// coordinator -> worker: empty payload; liveness probe. A worker answers
  /// kPong from its serve loop and from inside reduce-segment streaming.
  kPing = 9,
  /// worker -> coordinator: empty payload; heartbeat. Sent in reply to
  /// kPing and spontaneously by the worker's progress-gated heartbeat
  /// thread while a task is executing (only when the task's progress
  /// counter advanced since the last beat, so a hung worker goes silent
  /// and a slow-but-working one stays alive). The coordinator treats any
  /// frame as progress and otherwise ignores kPong.
  kPong = 10,
  /// worker -> coordinator: one observability snapshot (src/obs/trace.h
  /// wire codec — spans drained from the worker's buffers plus metric
  /// registry deltas since the previous snapshot). Sent immediately before
  /// kMapDone / kReduceDone, and only when tracing was enabled in the
  /// coordinator before the fork. The coordinator merges the spans into
  /// its timeline (stamped with the worker's ordinal) and folds the metric
  /// deltas into its registry; a malformed snapshot is dropped, never
  /// fatal — observability must not fail a round.
  kTrace = 11,
};

/// Upper bound accepted for a frame payload. Its purpose is rejecting
/// hostile length prefixes before they size an allocation. Senders never
/// hit it: logical shuffle segments larger than the chunk threshold (just
/// under this cap; lowered in tests via DSEQ_PROC_TEST_CHUNK_BYTES) are
/// split across continuation kSegment frames and reassembled on receive.
inline constexpr uint64_t kMaxFramePayloadBytes = uint64_t{1} << 30;

/// Appends one encoded frame to `out`.
void AppendFrame(std::string* out, MsgType type, std::string_view payload);

/// Incremental frame parser. Append() buffered bytes, then call Next()
/// until it stops returning kFrame. Never throws.
class FrameDecoder {
 public:
  enum class Status {
    kFrame,     // one complete frame decoded
    kNeedMore,  // the buffer holds only a frame prefix
    kBadFrame,  // malformed input; the stream is unrecoverable
  };

  /// Buffers more wire bytes. Invalidates payload views handed out by Next.
  void Append(std::string_view bytes);

  /// Decodes the next complete frame. On kFrame, `*type` is the (validated)
  /// message type and `*payload` views the payload inside the decoder's
  /// buffer — valid until the next Append() call. Once kBadFrame is
  /// returned, every later call returns kBadFrame.
  Status Next(MsgType* type, std::string_view* payload);

  /// Bytes buffered but not yet consumed by complete frames.
  size_t buffered_bytes() const { return buffer_.size() - pos_; }

 private:
  std::string buffer_;
  size_t pos_ = 0;
  bool bad_ = false;
};

}  // namespace rpc
}  // namespace dseq

#endif  // DSEQ_RPC_FRAME_H_
