#include "src/rpc/socket.h"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <stdexcept>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>

#include "src/fault/fault_injection.h"

namespace dseq {
namespace rpc {
namespace {

[[noreturn]] void ThrowErrno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

// One read() that retries EINTR; returns the usual read() result otherwise.
// Injection site socket.read: kErrno fails the call, kEintr replays the
// interrupted-syscall loop, kShortIo clamps the transfer to one byte (every
// caller already loops over short reads).
ssize_t ReadSome(int fd, void* data, size_t size) {
  for (;;) {
    fault::Fault f = fault::Evaluate(fault::Site::kSocketRead);
    if (f.action == fault::Action::kErrno) {
      errno = f.param;
      return -1;
    }
    if (f.action == fault::Action::kEintr) continue;
    size_t want = f.action == fault::Action::kShortIo ? std::min<size_t>(size, 1)
                                                      : size;
    ssize_t n = ::read(fd, data, want);
    if (n >= 0 || errno != EINTR) return n;
  }
}

}  // namespace

void IgnoreSigPipe() {
  // Plain signal() is enough: SIG_IGN is inherited across fork and the
  // handler carries no state. Racing calls both store the same disposition.
  ::signal(SIGPIPE, SIG_IGN);
}

int ListenLoopback(uint16_t* port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) ThrowErrno("rpc: socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // kernel-assigned ephemeral port
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    ThrowErrno("rpc: bind 127.0.0.1");
  }
  // The backlog must absorb every worker connecting at once right after the
  // fork burst, before the coordinator starts accepting.
  if (::listen(fd, 128) < 0) {
    ::close(fd);
    ThrowErrno("rpc: listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    ThrowErrno("rpc: getsockname");
  }
  *port = ntohs(addr.sin_port);
  return fd;
}

int ConnectLoopback(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) ThrowErrno("rpc: socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  for (;;) {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      break;
    }
    if (errno == EINTR) continue;
    ::close(fd);
    ThrowErrno("rpc: connect 127.0.0.1:" + std::to_string(port));
  }
  // The protocol is strictly message-at-a-time request/response; disabling
  // Nagle keeps the small control frames from batching behind segments.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

int AcceptConn(int listen_fd) {
  for (;;) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    if (errno != EINTR) ThrowErrno("rpc: accept");
  }
}

bool WriteFull(int fd, const void* data, size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    // Injection site socket.write: mirrors socket.read above.
    fault::Fault f = fault::Evaluate(fault::Site::kSocketWrite);
    if (f.action == fault::Action::kErrno) {
      errno = f.param;
      return false;
    }
    if (f.action == fault::Action::kEintr) continue;
    size_t want = f.action == fault::Action::kShortIo ? 1 : size;
    ssize_t n = ::write(fd, p, want);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

bool ReadFull(int fd, void* data, size_t size) {
  char* p = static_cast<char*>(data);
  while (size > 0) {
    ssize_t n = ReadSome(fd, p, size);
    if (n <= 0) return false;  // 0 = EOF mid-message, <0 = error
    p += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

MsgConn::MsgConn(MsgConn&& other) noexcept
    : fd_(other.fd_), decoder_(std::move(other.decoder_)) {
  other.fd_ = -1;
}

MsgConn& MsgConn::operator=(MsgConn&& other) noexcept {
  if (this == &other) return *this;
  Close();
  fd_ = other.fd_;
  decoder_ = std::move(other.decoder_);
  other.fd_ = -1;
  return *this;
}

MsgConn::~MsgConn() { Close(); }

void MsgConn::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool MsgConn::Send(MsgType type, std::string_view payload) {
  if (fd_ < 0) return false;
  std::string frame;
  frame.reserve(payload.size() + 16);
  AppendFrame(&frame, type, payload);
  // Injection site socket.send_frame: kDisconnect ships half the encoded
  // frame and drops the connection — the peer's decoder must park the
  // partial frame as kNeedMore and surface EOF, never a phantom frame.
  fault::Fault f = fault::Evaluate(fault::Site::kSocketSendFrame,
                                   static_cast<uint64_t>(type));
  if (f.action == fault::Action::kDisconnect) {
    WriteFull(fd_, frame.data(), frame.size() / 2);
    Close();
    return false;
  }
  return WriteFull(fd_, frame.data(), frame.size());
}

bool MsgConn::Recv(MsgType* type, std::string* payload) {
  for (;;) {
    FrameDecoder::Status status = TryNext(type, payload);
    if (status == FrameDecoder::Status::kFrame) return true;
    if (status == FrameDecoder::Status::kBadFrame) return false;
    if (!FillOnce()) {
      // Drain what the last fill completed before reporting EOF.
      return TryNext(type, payload) == FrameDecoder::Status::kFrame;
    }
  }
}

bool MsgConn::FillOnce() {
  if (fd_ < 0) return false;
  char buf[64 * 1024];
  ssize_t n = ReadSome(fd_, buf, sizeof(buf));
  if (n <= 0) return false;
  decoder_.Append(std::string_view(buf, static_cast<size_t>(n)));
  return true;
}

FrameDecoder::Status MsgConn::TryNext(MsgType* type, std::string* payload) {
  std::string_view view;
  FrameDecoder::Status status = decoder_.Next(type, &view);
  if (status == FrameDecoder::Status::kFrame) payload->assign(view);
  return status;
}

}  // namespace rpc
}  // namespace dseq
