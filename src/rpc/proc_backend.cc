#include "src/rpc/proc_backend.h"

#include <dirent.h>
#include <poll.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/dataflow/map_shard.h"
#include "src/dataflow/shuffle_buffer.h"
#include "src/fault/fault_injection.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/rpc/frame.h"
#include "src/rpc/socket.h"
#include "src/spill/external_merger.h"
#include "src/spill/memory_budget.h"
#include "src/spill/spill_context.h"
#include "src/spill/spill_file.h"
#include "src/util/block_codec.h"
#include "src/util/sync.h"
#include "src/util/thread_pool.h"
#include "src/util/varint.h"

namespace dseq {
namespace {

using rpc::MsgConn;
using rpc::MsgType;

// Exception kinds carried in kError frames (see MsgType::kError).
enum ErrorKind : uint64_t {
  kErrRuntime = 0,
  kErrShuffleOverflow = 1,
  kErrInvalidArgument = 2,
  kErrOutOfRange = 3,
  kErrOverflow = 4,
};

// Segment kinds (see MsgType::kSegment).
constexpr uint64_t kSegmentRun = 0;
constexpr uint64_t kSegmentTail = 1;
constexpr uint64_t kSegmentPart = 2;  // continuation chunk of a large segment
constexpr uint64_t kFlagCompressed = 1;

// Respawn policy: exponential backoff per worker ordinal, bounded so a
// deterministically-crashing pool converges to a typed error instead of
// forking forever.
constexpr int kRespawnInitialBackoffMs = 10;
constexpr int kRespawnMaxBackoffMs = 1000;
constexpr int kMaxRespawnsPerWorker = 5;

[[noreturn]] void ProtocolError(const std::string& what) {
  throw std::runtime_error("proc backend: " + what);
}

void RequireVarint(std::string_view payload, size_t* pos, uint64_t* value,
                   const char* what) {
  if (!GetVarint(payload, pos, value)) {
    ProtocolError(std::string("truncated ") + what + " field");
  }
}

// Largest segment payload shipped in one kSegment frame; anything larger is
// split into kSegmentPart chunks. Re-read from the environment on every call
// because tests lower it per-case (DSEQ_PROC_TEST_CHUNK_BYTES) within one
// process. The default leaves header room under the frame cap.
size_t MaxSegmentChunkBytes() {
  const char* env = std::getenv("DSEQ_PROC_TEST_CHUNK_BYTES");
  if (env != nullptr) {
    long long v = std::atoll(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return static_cast<size_t>(rpc::kMaxFramePayloadBytes) - 4096;
}

// Whole-file read used to ship spill-run bytes verbatim. EINTR-safe: a
// short fread with EINTR pending clears the error and resumes.
std::string ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("proc backend: cannot reopen segment file " +
                             path + ": " + std::strerror(errno));
  }
  std::string out;
  char buf[64 * 1024];
  for (;;) {
    size_t n = std::fread(buf, 1, sizeof(buf), f);
    out.append(buf, n);
    if (n == sizeof(buf)) continue;
    if (std::ferror(f)) {
      if (errno == EINTR) {
        std::clearerr(f);
        continue;
      }
      int err = errno;
      std::fclose(f);
      throw std::runtime_error("proc backend: read of segment file " + path +
                               " failed: " + std::strerror(err));
    }
    break;  // short read without error = EOF
  }
  std::fclose(f);
  return out;
}

void AppendSegmentHeader(std::string* out, uint64_t task, uint64_t reducer,
                         uint64_t kind, uint64_t flags, uint64_t num_records) {
  PutVarint(out, task);
  PutVarint(out, reducer);
  PutVarint(out, kind);
  PutVarint(out, flags);
  PutVarint(out, num_records);
}

struct SegmentHeader {
  uint64_t task = 0;
  uint64_t reducer = 0;
  uint64_t kind = 0;
  uint64_t flags = 0;
  uint64_t num_records = 0;
  std::string_view bytes;
};

SegmentHeader ParseSegment(std::string_view payload) {
  SegmentHeader h;
  size_t pos = 0;
  RequireVarint(payload, &pos, &h.task, "segment task");
  RequireVarint(payload, &pos, &h.reducer, "segment reducer");
  RequireVarint(payload, &pos, &h.kind, "segment kind");
  RequireVarint(payload, &pos, &h.flags, "segment flags");
  RequireVarint(payload, &pos, &h.num_records, "segment record count");
  if (h.kind != kSegmentRun && h.kind != kSegmentTail &&
      h.kind != kSegmentPart) {
    ProtocolError("unknown segment kind " + std::to_string(h.kind));
  }
  h.bytes = payload.substr(pos);
  return h;
}

// Emits one logical segment as kSegment frames: zero or more kSegmentPart
// continuation chunks followed by one frame carrying the real header and the
// final chunk (see MsgType::kSegment). `emit` takes the encoded payload and
// returns false when the connection died; `chunk_frames`, when set, counts
// the continuation frames emitted.
template <typename Emit>
bool ForEachSegmentFrame(uint64_t task, uint64_t reducer, uint64_t kind,
                         uint64_t flags, uint64_t num_records,
                         std::string_view bytes, const Emit& emit,
                         uint64_t* chunk_frames = nullptr) {
  const size_t cap = std::max<size_t>(1, MaxSegmentChunkBytes());
  std::string seg;
  while (bytes.size() > cap) {
    seg.clear();
    AppendSegmentHeader(&seg, task, reducer, kSegmentPart, 0, 0);
    seg.append(bytes.data(), cap);
    bytes.remove_prefix(cap);
    if (!emit(seg)) return false;
    if (chunk_frames != nullptr) ++*chunk_frames;
  }
  seg.clear();
  AppendSegmentHeader(&seg, task, reducer, kind, flags, num_records);
  seg.append(bytes.data(), bytes.size());
  return emit(seg);
}

// Heartbeat cadence: an explicit interval wins; otherwise derive a fraction
// of the stall timeout so a slow-but-working task always beats well inside
// the kill window. 0 disables heartbeats entirely.
int HeartbeatIntervalMs(const DataflowOptions& options) {
  if (options.proc_heartbeat_interval_ms > 0) {
    return options.proc_heartbeat_interval_ms;
  }
  if (options.proc_worker_timeout_ms > 0) {
    return std::clamp(options.proc_worker_timeout_ms / 4, 10, 1000);
  }
  return 0;
}

// Acts on a lifecycle fault drawn from worker.message / worker.before_commit
// sites. A no-op (and fully folded away) in default builds, where Evaluate
// is constexpr "no fault".
void ApplyLifecycleFault(const fault::Fault& f) {
  if (f.action == fault::Action::kKill) ::raise(SIGKILL);
  if (f.action == fault::Action::kStall && f.param > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(f.param));
  }
}

// ---------------------------------------------------------------------------
// Worker side. Everything below WorkerBody runs in a forked child: the
// round's closures are valid via the fork's address-space copy, all results
// leave through the connection, and the child never returns to the caller's
// stack (it _exits).

// The worker's connection to the coordinator. Sends are serialized with a
// mutex because the heartbeat pump thread and the task thread both write
// frames; receives stay single-threaded (task thread only).
//
// `conn` is deliberately NOT DSEQ_GUARDED_BY(send_mu): the connection is
// shared under a split contract rather than a single lock. Its send path
// (MsgConn::Send) is stateless beyond the fd and is serialized by send_mu;
// its receive path owns the frame-decoder state and is confined to the task
// thread, which must not take send_mu to read. Guarding the whole object
// would force Recv under the lock and deadlock a task blocked on the
// coordinator against the pump's next beat.
struct WorkerConn {
  explicit WorkerConn(MsgConn c) : conn(std::move(c)) {}

  bool Send(MsgType type, std::string_view payload) DSEQ_EXCLUDES(send_mu) {
    // Frame send latency (lock wait + encode + socket write). The registry
    // lookup runs once; a disabled run pays only the relaxed flag load.
    static obs::Histogram& send_ns_hist =
        obs::GetHistogram("rpc.frame_send_ns");
    if (obs::Enabled()) {
      const int64_t t0 = obs::NowNs();
      bool ok;
      {
        MutexLock lock(send_mu);
        ok = conn.Send(type, payload);
      }
      send_ns_hist.Observe(obs::NowNs() - t0);
      return ok;
    }
    MutexLock lock(send_mu);
    return conn.Send(type, payload);
  }

  bool Recv(MsgType* type, std::string* payload) {
    return conn.Recv(type, payload);
  }

  MsgConn conn;
  Mutex send_mu;
};

void SendOrThrow(WorkerConn& conn, MsgType type, std::string_view payload) {
  if (!conn.Send(type, payload)) {
    throw std::runtime_error("proc worker: coordinator connection lost");
  }
}

// Progress-gated heartbeat: a thread that samples `progress` every
// `interval_ms` and sends kPong only when it advanced since the last sample.
// A hung task stops the beats (the coordinator's stall timeout then fires);
// a slow-but-working one stays visibly alive indefinitely.
class HeartbeatPump {
 public:
  HeartbeatPump(WorkerConn* conn, std::atomic<uint64_t>* progress,
                int interval_ms)
      : conn_(conn),
        progress_(progress),
        interval_(std::chrono::milliseconds(interval_ms)) {
    thread_ = std::thread([this] { Loop(); });
  }

  ~HeartbeatPump() DSEQ_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      stop_ = true;
    }
    cv_.NotifyAll();
    thread_.join();
  }

 private:
  void Loop() DSEQ_EXCLUDES(mu_) {
    uint64_t last = progress_->load(std::memory_order_relaxed);
    for (;;) {
      {
        MutexLock lock(mu_);
        if (stop_) return;
        cv_.WaitFor(mu_, interval_);
        if (stop_) return;
      }
      // Sample and send outside mu_: Send takes send_mu and can block on a
      // slow socket, and holding mu_ across it would stall the destructor.
      uint64_t cur = progress_->load(std::memory_order_relaxed);
      if (cur == last) continue;  // no progress: stay silent
      last = cur;
      conn_->Send(MsgType::kPong, {});  // best effort; EOF surfaces elsewhere
    }
  }

  // conn_/progress_/interval_ are immutable after construction and safe to
  // read from the pump thread without mu_. The progress counter is a pure
  // liveness gauge: relaxed loads suffice because no other memory is
  // published through it — only "did the number change since last sample".
  WorkerConn* const conn_;
  std::atomic<uint64_t>* const progress_;
  const std::chrono::milliseconds interval_;
  Mutex mu_;
  CondVar cv_;
  bool stop_ DSEQ_GUARDED_BY(mu_) = false;
  std::thread thread_;
};

// Runs one map task: the shared RunMapShard body over [begin, end), then
// ships each reducer's output (spilled runs verbatim, then the stored
// bucket tail) and the task's raw metrics. The worker.before_commit fault
// site sits between the segments and kMapDone — dying there forces the
// coordinator to discard the staged segments and re-execute the task.
void RunWorkerMapTask(WorkerConn& conn, std::string_view payload,
                      const MapFn& map_fn,
                      const CombinerFactory& combiner_factory,
                      const DataflowOptions& options, int heartbeat_ms) {
  obs::SetCurrentRound(options.round_index);
  const int64_t task_start_ns = obs::NowNs();
  size_t pos = 0;
  uint64_t task = 0;
  uint64_t begin = 0;
  uint64_t end = 0;
  RequireVarint(payload, &pos, &task, "map task");
  RequireVarint(payload, &pos, &begin, "map begin");
  RequireVarint(payload, &pos, &end, "map end");
  int reduce_workers = ClampWorkers(options.num_reduce_workers);

  // Per-task state mirroring one row of the local engine's per-round
  // arrays. The budget is per-process: each map task gets the whole
  // configured budget, so spill *timing* differs from the local backend
  // (results and raw metrics do not — spilling is correctness-neutral).
  std::vector<ShuffleBuffer> buckets(reduce_workers);
  MemoryBudget budget(options.memory_budget_bytes);
  SpillStats spill_stats;
  std::vector<std::vector<SpillFile>> spill_runs(
      budget.enabled() ? reduce_workers : 0);
  std::vector<uint64_t> bucket_charged(reduce_workers, 0);
  std::vector<uint64_t> reducer_bytes(reduce_workers, 0);
  CombinerSpillContext combiner_ctx;
  if (budget.enabled()) {
    combiner_ctx.spill_dir = options.spill_dir;
    combiner_ctx.compress_spill = options.compress_spill;
    combiner_ctx.merge_fan_in = options.spill_merge_fan_in;
    combiner_ctx.budget = &budget;
    combiner_ctx.stats = &spill_stats;
    combiner_ctx.round_index = options.round_index;
    combiner_ctx.map_worker = static_cast<int>(task);
  }
  std::atomic<uint64_t> shuffle_bytes{0};
  std::atomic<uint64_t> shuffle_records{0};
  std::atomic<uint64_t> map_output_records{0};
  std::atomic<uint64_t> shuffle_compressed_bytes{0};
  std::atomic<uint64_t> progress{0};

  MapShardContext ctx;
  ctx.options = &options;
  ctx.map_worker = static_cast<int>(task);
  ctx.reduce_workers = reduce_workers;
  ctx.begin = begin;
  ctx.end = end;
  ctx.map_fn = &map_fn;
  ctx.combiner_factory = &combiner_factory;
  ctx.buckets = buckets.data();
  ctx.spill_runs = budget.enabled() ? spill_runs.data() : nullptr;
  ctx.bucket_charged = bucket_charged.data();
  ctx.reducer_bytes = reducer_bytes.data();
  ctx.budget = &budget;
  ctx.spill_stats = &spill_stats;
  ctx.combiner_ctx = budget.enabled() ? &combiner_ctx : nullptr;
  ctx.shuffle_bytes = &shuffle_bytes;
  ctx.shuffle_records = &shuffle_records;
  ctx.map_output_records = &map_output_records;
  ctx.shuffle_compressed_bytes = &shuffle_compressed_bytes;
  ctx.progress = &progress;

  // Input-cache counters travel as before/after deltas of the process-global
  // gauges: the map closure reads the (cached) input database, and the
  // coordinator folds the deltas into the round metrics via kMapDone.
  // Relaxed: the gauges are only bumped by this task thread (the worker runs
  // the shard inline), so the before/after deltas are same-thread reads.
  uint64_t storage_before =
      GlobalInputStorageReads().load(std::memory_order_relaxed);
  uint64_t hits_before = GlobalInputCacheHits().load(std::memory_order_relaxed);
  {
    std::unique_ptr<HeartbeatPump> pump;
    if (heartbeat_ms > 0) {
      pump = std::make_unique<HeartbeatPump>(&conn, &progress, heartbeat_ms);
    }
    RunMapShard(ctx);
  }
  uint64_t storage_reads =
      GlobalInputStorageReads().load(std::memory_order_relaxed) -
      storage_before;
  uint64_t cache_hits =
      GlobalInputCacheHits().load(std::memory_order_relaxed) - hits_before;

  // Ship: per reducer, the spilled runs in chronological order, then the
  // bucket tail in stored form. This is exactly the source order the local
  // reduce phase uses per map worker, so the coordinator can replay
  // segments into an identical stable merge. Oversized segments leave as
  // continuation chunks (ForEachSegmentFrame).
  auto emit = [&](const std::string& seg) {
    return conn.Send(MsgType::kSegment, seg);
  };
  for (int r = 0; r < reduce_workers; ++r) {
    if (budget.enabled()) {
      for (SpillFile& run : spill_runs[r]) {
        std::string run_bytes = ReadFileBytes(run.path());
        if (!ForEachSegmentFrame(task, r, kSegmentRun,
                                 options.compress_spill ? kFlagCompressed : 0,
                                 0, run_bytes, emit)) {
          throw std::runtime_error("proc worker: coordinator connection lost");
        }
      }
      spill_runs[r].clear();  // shipped; delete the local files now
    }
    uint64_t tail_records = buckets[r].num_records();
    bool compressed = false;
    std::string stored = buckets[r].ReleaseStored(&compressed);
    if (stored.empty()) continue;  // nothing buffered for this reducer
    if (!ForEachSegmentFrame(task, r, kSegmentTail,
                             compressed ? kFlagCompressed : 0, tail_records,
                             stored, emit)) {
      throw std::runtime_error("proc worker: coordinator connection lost");
    }
  }

  ApplyLifecycleFault(fault::Evaluate(fault::Site::kWorkerCommit, task));

  // Relaxed: all counters were written by this thread during RunMapShard
  // (the only other thread, the heartbeat pump, just joined in ~pump).
  std::string done;
  PutVarint(&done, task);
  PutVarint(&done, map_output_records.load(std::memory_order_relaxed));
  PutVarint(&done, shuffle_records.load(std::memory_order_relaxed));
  PutVarint(&done, shuffle_bytes.load(std::memory_order_relaxed));
  PutVarint(&done, shuffle_compressed_bytes.load(std::memory_order_relaxed));
  PutVarint(&done, spill_stats.files.load(std::memory_order_relaxed));
  PutVarint(&done, spill_stats.bytes_written.load(std::memory_order_relaxed));
  PutVarint(&done, spill_stats.merge_passes.load(std::memory_order_relaxed));
  PutVarint(&done, storage_reads);
  PutVarint(&done, cache_hits);
  PutVarint(&done, reduce_workers);
  for (int r = 0; r < reduce_workers; ++r) PutVarint(&done, reducer_bytes[r]);
  // Close the task span, then ship the observability snapshot ahead of the
  // done frame so the coordinator ingests it before committing the task.
  // Best effort: a lost connection surfaces on the kMapDone send below.
  obs::EmitSpan("worker", "map_task", task_start_ns, obs::NowNs());
  if (obs::Enabled()) conn.Send(MsgType::kTrace, obs::EncodeWireSnapshot());
  SendOrThrow(conn, MsgType::kMapDone, done);
}

// Runs one reduce task over the segments the coordinator streams after the
// kReduceTask frame (already in map-task order, runs before tails per
// task). Reproduces the local reduce phase exactly: an external stable
// merge when any run segment exists, the sort-based in-memory grouping
// otherwise.
void RunWorkerReduceTask(WorkerConn& conn, std::string_view payload,
                         const ChainReduceFn& reduce_fn,
                         const DataflowOptions& options, int heartbeat_ms) {
  obs::SetCurrentRound(options.round_index);
  const int64_t task_start_ns = obs::NowNs();
  size_t pos = 0;
  uint64_t reducer = 0;
  uint64_t num_segments = 0;
  RequireVarint(payload, &pos, &reducer, "reduce task");
  RequireVarint(payload, &pos, &num_segments, "reduce segment count");

  std::atomic<uint64_t> progress{0};
  std::unique_ptr<HeartbeatPump> pump;
  if (heartbeat_ms > 0) {
    pump = std::make_unique<HeartbeatPump>(&conn, &progress, heartbeat_ms);
  }

  struct Seg {
    uint64_t kind;
    bool compressed;
    std::string bytes;
  };
  std::vector<Seg> segments;
  segments.reserve(num_segments);
  bool any_run = false;
  std::string parts;  // pending kSegmentPart chunks of the current segment
  bool part_open = false;
  const int64_t stream_start_ns = obs::NowNs();
  for (uint64_t i = 0; i < num_segments;) {
    MsgType type;
    std::string frame;
    if (!conn.Recv(&type, &frame)) {
      throw std::runtime_error("proc worker: coordinator connection lost");
    }
    if (type == MsgType::kPing) {
      conn.Send(MsgType::kPong, {});
      continue;
    }
    if (type != MsgType::kSegment) ProtocolError("expected a segment frame");
    SegmentHeader h = ParseSegment(frame);
    if (h.reducer != reducer) ProtocolError("segment for the wrong reducer");
    if (h.kind == kSegmentPart) {
      part_open = true;
      parts.append(h.bytes.data(), h.bytes.size());
      continue;
    }
    std::string full;
    if (part_open) {
      full = std::move(parts);
      parts = std::string();
      part_open = false;
    }
    full.append(h.bytes.data(), h.bytes.size());
    any_run = any_run || h.kind == kSegmentRun;
    segments.push_back(
        Seg{h.kind, (h.flags & kFlagCompressed) != 0, std::move(full)});
    progress.fetch_add(1, std::memory_order_relaxed);
    ++i;
  }
  if (part_open) ProtocolError("unterminated segment chunk stream");
  obs::EmitSpan("worker", "segment_stream", stream_start_ns, obs::NowNs());

  MemoryBudget budget(options.memory_budget_bytes);
  SpillStats spill_stats;
  uint64_t num_records = 0;
  std::string record_bytes;
  EmitFn emit = [&](std::string_view key, std::string_view value) {
    ++num_records;
    PutVarint(&record_bytes, key.size());
    PutVarint(&record_bytes, value.size());
    record_bytes.append(key.data(), key.size());
    record_bytes.append(value.data(), value.size());
  };
  auto handle_group = [&](std::string_view key,
                          std::vector<std::string_view>& values) {
    reduce_fn(static_cast<int>(reducer), key, values, emit);
    progress.fetch_add(1, std::memory_order_relaxed);
  };

  // Decoded tail buffers must stay put while views into them live in the
  // merge sources / entry vectors — a deque never relocates its strings.
  std::deque<std::string> tail_raws;
  auto decode_tail = [&](Seg& s) -> const std::string& {
    if (s.compressed) {
      std::string raw;
      if (!DecompressBlock(s.bytes, &raw)) {
        throw std::runtime_error(
            "proc worker: corrupt compressed shuffle segment");
      }
      tail_raws.push_back(std::move(raw));
    } else {
      tail_raws.push_back(std::move(s.bytes));
    }
    return tail_raws.back();
  };

  if (any_run) {
    ExternalMergePlan plan(options.spill_dir, options.compress_spill,
                           options.spill_merge_fan_in, &spill_stats, &budget);
    for (Seg& s : segments) {
      if (s.kind == kSegmentRun) {
        // The shipped bytes are a complete spill run; materializing them
        // into a SpillFile makes them a local run again, verbatim.
        SpillFile run = SpillFile::Create(options.spill_dir);
        run.Append(s.bytes.data(), s.bytes.size());
        run.FinishWrite();
        std::string().swap(s.bytes);
        plan.AddRun(std::move(run));
      } else {
        const std::string& raw = decode_tail(s);
        std::vector<std::pair<std::string_view, std::string_view>> tail;
        for (const BucketEntry& entry : SortedBucketEntries(raw)) {
          tail.emplace_back(entry.key, entry.value);
        }
        if (!tail.empty()) {
          plan.AddSource(std::make_unique<InMemorySource>(std::move(tail)));
        }
      }
    }
    plan.MergeGroups(handle_group);
  } else {
    std::vector<BucketEntry> entries;
    for (Seg& s : segments) {
      const std::string& raw = decode_tail(s);
      ShuffleBuffer::ForEachRecord(
          raw, [&](std::string_view key, std::string_view value) {
            entries.push_back(BucketEntry{key, value});
          });
    }
    // Stable: within a key, values keep (map task, emit order) — the same
    // sweep as the local engine's in-memory reduce path.
    std::stable_sort(entries.begin(), entries.end(),
                     [](const BucketEntry& a, const BucketEntry& b) {
                       return a.key < b.key;
                     });
    std::vector<std::string_view> values;
    size_t i = 0;
    while (i < entries.size()) {
      size_t j = i + 1;
      while (j < entries.size() && entries[j].key == entries[i].key) ++j;
      values.clear();
      values.reserve(j - i);
      for (size_t k = i; k < j; ++k) values.push_back(entries[k].value);
      handle_group(entries[i].key, values);
      i = j;
    }
  }

  // Relaxed: spill stats were written by this task thread only.
  std::string done;
  PutVarint(&done, reducer);
  PutVarint(&done, spill_stats.files.load(std::memory_order_relaxed));
  PutVarint(&done, spill_stats.bytes_written.load(std::memory_order_relaxed));
  PutVarint(&done, spill_stats.merge_passes.load(std::memory_order_relaxed));
  PutVarint(&done, num_records);
  done += record_bytes;
  // Same snapshot ordering as the map task: span closed, snapshot shipped,
  // then the done frame that commits the task on the coordinator.
  obs::EmitSpan("worker", "reduce_task", task_start_ns, obs::NowNs());
  if (obs::Enabled()) conn.Send(MsgType::kTrace, obs::EncodeWireSnapshot());
  SendOrThrow(conn, MsgType::kReduceDone, done);
}

// The worker loop: connect, announce the ordinal, then serve tasks until
// shutdown. Returns the child's exit code; the caller _exits with it (all
// RAII state lives inside this function's scopes). Lifecycle faults
// (worker.message) are evaluated once per *task* message — kPing probes are
// excluded so nth-message rules stay deterministic under timing-dependent
// heartbeat traffic.
int WorkerBody(int ordinal, uint16_t port, const MapFn& map_fn,
               const CombinerFactory& combiner_factory,
               const ChainReduceFn& reduce_fn, const DataflowOptions& options) {
  rpc::IgnoreSigPipe();
  fault::SetProcessScope(ordinal);
  // Discard span/metric state inherited through fork and stamp this
  // process's ordinal: wire snapshots must carry only the worker's own
  // activity, never a copy of the coordinator's.
  obs::BeginForkedProcess(ordinal);
  std::unique_ptr<WorkerConn> conn;
  try {
    conn = std::make_unique<WorkerConn>(MsgConn(rpc::ConnectLoopback(port)));
    std::string hello;
    PutVarint(&hello, ordinal);
    SendOrThrow(*conn, MsgType::kHello, hello);
  } catch (const std::exception&) {
    return 1;  // no connection to report through
  }

  const int heartbeat_ms = HeartbeatIntervalMs(options);
  uint64_t task_messages = 0;
  try {
    for (;;) {
      MsgType type;
      std::string payload;
      if (!conn->Recv(&type, &payload)) return 1;  // coordinator gone
      if (type == MsgType::kShutdown) return 0;
      if (type == MsgType::kPing) {
        conn->Send(MsgType::kPong, {});
        continue;
      }
      ++task_messages;
      ApplyLifecycleFault(
          fault::Evaluate(fault::Site::kWorkerMessage, task_messages));
      if (type == MsgType::kMapTask) {
        RunWorkerMapTask(*conn, payload, map_fn, combiner_factory, options,
                         heartbeat_ms);
      } else if (type == MsgType::kReduceTask) {
        RunWorkerReduceTask(*conn, payload, reduce_fn, options, heartbeat_ms);
      } else {
        ProtocolError("unexpected message from coordinator");
      }
    }
  } catch (const std::exception& e) {
    uint64_t kind = kErrRuntime;
    if (dynamic_cast<const ShuffleOverflowError*>(&e) != nullptr) {
      kind = kErrShuffleOverflow;
    } else if (dynamic_cast<const std::invalid_argument*>(&e) != nullptr) {
      kind = kErrInvalidArgument;
    } else if (dynamic_cast<const std::out_of_range*>(&e) != nullptr) {
      kind = kErrOutOfRange;
    } else if (dynamic_cast<const std::overflow_error*>(&e) != nullptr) {
      kind = kErrOverflow;
    }
    std::string err;
    PutVarint(&err, kind);
    err += e.what();
    conn->Send(MsgType::kError, err);  // best effort
    return 1;
  }
}

// ---------------------------------------------------------------------------
// Coordinator side.

// One committed shuffle segment held between the phases. Run segments are
// parked in spill files (they only exist when a spill directory is
// configured, and they can dominate the shuffle volume); tails stay in
// memory like the local backend's resident buckets, unless they exceed
// proc_tail_park_bytes — then they are parked on disk too.
struct StoredSegment {
  uint64_t kind = 0;
  uint64_t flags = 0;
  uint64_t num_records = 0;
  std::string bytes;
  std::unique_ptr<SpillFile> file;

  std::string Bytes() const {
    return file != nullptr ? ReadFileBytes(file->path()) : bytes;
  }
};

// Raw per-task metrics reported in kMapDone.
struct MapReport {
  uint64_t map_output_records = 0;
  uint64_t shuffle_records = 0;
  uint64_t shuffle_bytes = 0;
  uint64_t shuffle_compressed_bytes = 0;
  uint64_t spill_files = 0;
  uint64_t spill_bytes_written = 0;
  uint64_t spill_merge_passes = 0;
  uint64_t input_storage_reads = 0;
  uint64_t input_cache_hits = 0;
  std::vector<uint64_t> reducer_bytes;
};

class Coordinator {
 public:
  Coordinator(size_t num_inputs, const MapFn& map_fn,
              const CombinerFactory& combiner_factory,
              const ChainReduceFn& reduce_fn, const DataflowOptions& options)
      : num_inputs_(num_inputs),
        map_fn_(map_fn),
        combiner_factory_(combiner_factory),
        reduce_fn_(reduce_fn),
        options_(options),
        map_tasks_(ClampWorkers(options.num_map_workers)),
        reduce_tasks_(ClampWorkers(options.num_reduce_workers)),
        max_attempts_(std::max(1, options.proc_max_task_attempts)) {
    // Sized here, not via a fill constructor: StoredSegment is move-only
    // (it owns its parked SpillFile), and vector's fill path copies.
    for (auto& per_task : store_) {
      per_task.resize(static_cast<size_t>(reduce_tasks_));
    }
  }

  ~Coordinator() { Cleanup(); }

  ProcRoundResult Run() {
    rpc::IgnoreSigPipe();
    // Stamped here too (not only in DataflowJob::Run) so direct RunProcRound
    // callers — tests, benches — get correctly-tagged spans.
    obs::SetCurrentRound(options_.round_index);
    if (options_.proc_round_deadline_ms > 0) {
      has_deadline_ = true;
      deadline_ = obs::Now() +
                  std::chrono::milliseconds(options_.proc_round_deadline_ms);
    }
    Spawn();
    ProcRoundResult result;
    {
      auto start = obs::Now();
      RunTasks(map_tasks_, "map",
               [this](Worker& w, int t) { return SendMapTask(w, t); },
               [this](Worker& w, MsgType type, std::string_view payload) {
                 return OnMapFrame(w, type, payload);
               });
      result.metrics.map_seconds = obs::SecondsSince(start);
    }
    {
      auto start = obs::Now();
      RunTasks(reduce_tasks_, "reduce",
               [this](Worker& w, int t) { return SendReduceTask(w, t); },
               [this](Worker& w, MsgType type, std::string_view payload) {
                 return OnReduceFrame(w, type, payload);
               });
      result.metrics.reduce_seconds = obs::SecondsSince(start);
    }
    Cleanup();  // graceful shutdown while results are assembled below

    DataflowMetrics& m = result.metrics;
    m.reducer_bytes.assign(reduce_tasks_, 0);
    for (const MapReport& report : map_reports_) {
      m.map_output_records += report.map_output_records;
      m.shuffle_records += report.shuffle_records;
      m.shuffle_bytes += report.shuffle_bytes;
      m.shuffle_compressed_bytes += report.shuffle_compressed_bytes;
      m.spill_files += report.spill_files;
      m.spill_bytes_written += report.spill_bytes_written;
      m.spill_merge_passes += report.spill_merge_passes;
      m.input_storage_reads += report.input_storage_reads;
      m.input_cache_hits += report.input_cache_hits;
      for (int r = 0; r < reduce_tasks_; ++r) {
        m.reducer_bytes[r] += report.reducer_bytes[r];
      }
    }
    m.spill_files += reduce_spill_files_;
    m.spill_bytes_written += reduce_spill_bytes_;
    m.spill_merge_passes += reduce_merge_passes_;
    m.proc_task_attempts = attempts_total_;
    m.proc_task_retries = retries_total_;
    m.proc_worker_kills = kills_;
    m.proc_workers_respawned = respawns_;
    m.proc_segment_chunks = segment_chunks_;
    m.proc_parked_tails = parked_tails_;
    size_t total = 0;
    for (const auto& records : reduce_records_) total += records.size();
    result.records.reserve(total);
    for (auto& records : reduce_records_) {
      for (Record& record : records) result.records.push_back(std::move(record));
    }
    return result;
  }

 private:
  struct Worker {
    pid_t pid = -1;
    int ordinal = -1;
    std::unique_ptr<MsgConn> conn;
    bool exited = false;    // reaped by waitpid
    bool spawning = false;  // (re)forked but not yet connected
    int task = -1;          // in-flight task, -1 when idle
    int deaths = 0;         // lifetime deaths of this ordinal's slot
    bool respawn_pending = false;
    std::chrono::steady_clock::time_point respawn_at;
    std::chrono::steady_clock::time_point last_progress;
    std::chrono::steady_clock::time_point last_ping;
    // Observability endpoints: when the in-flight task was dispatched, and
    // when the last kPing left (-1 = no ping outstanding) — closed into
    // retrospective spans when the done frame / kPong arrives.
    int64_t dispatch_ns = 0;
    int64_t ping_sent_ns = -1;
    // Segments of the in-flight map task, discarded if the worker dies
    // before kMapDone commits them.
    std::vector<std::pair<int, StoredSegment>> staged;
    // Reassembly buffer for kSegmentPart continuation chunks.
    bool part_open = false;
    uint64_t part_task = 0;
    uint64_t part_reducer = 0;
    std::string part_bytes;
  };

  // Per-task retry bookkeeping of the current phase.
  struct TaskState {
    int attempts = 0;
    std::string last_failure;
  };

  bool Alive(const Worker& w) const { return w.conn != nullptr; }

  int AliveCount() const {
    int n = 0;
    for (const Worker& w : workers_) n += Alive(w) ? 1 : 0;
    return n;
  }

  bool AnyRespawnScheduled() const {
    for (const Worker& w : workers_) {
      if (w.respawn_pending || w.spawning) return true;
    }
    return false;
  }

  static void ResetPartBuffer(Worker& w) {
    w.part_open = false;
    std::string().swap(w.part_bytes);
  }

  void Spawn() {
    // Covers fork + the connect/hello handshake of the whole pool. The
    // children never run this destructor — they leave through _exit.
    DSEQ_TRACE_SPAN("proc", "fork_workers");
    int pool = std::max(map_tasks_, reduce_tasks_);
    listen_fd_ = rpc::ListenLoopback(&port_);
    workers_.resize(pool);
    for (int w = 0; w < pool; ++w) {
      pid_t pid = ::fork();
      if (pid < 0) {
        int err = errno;
        throw ProcBackendError(std::string("proc backend: fork: ") +
                               std::strerror(err));
      }
      if (pid == 0) {
        ::close(listen_fd_);
        // The child serves the round and leaves through _exit — never
        // through the coordinator's stack (its RAII state all lives inside
        // WorkerBody's scopes).
        ::_exit(WorkerBody(w, port_, map_fn_, combiner_factory_, reduce_fn_,
                           options_));
      }
      workers_[w].pid = pid;
      workers_[w].ordinal = w;
      workers_[w].spawning = true;
      all_pids_.push_back(pid);
    }
    AcceptWorkers();
  }

  // Accepts one pending connection on the listener and binds it to the
  // worker slot named in its kHello. A connection that dies before the
  // hello is dropped; its child shows up in Reap().
  void AcceptOne() {
    MsgConn conn(rpc::AcceptConn(listen_fd_));
    MsgType type;
    std::string payload;
    if (!conn.Recv(&type, &payload) || type != MsgType::kHello) return;
    size_t pos = 0;
    uint64_t ordinal = 0;
    RequireVarint(payload, &pos, &ordinal, "hello ordinal");
    if (ordinal >= workers_.size() || Alive(workers_[ordinal])) {
      ProtocolError("bad hello ordinal " + std::to_string(ordinal));
    }
    Worker& w = workers_[ordinal];
    w.conn = std::make_unique<MsgConn>(std::move(conn));
    w.spawning = false;
    w.last_progress = w.last_ping = obs::Now();
  }

  void AcceptWorkers() {
    auto deadline = obs::Now() + std::chrono::seconds(30);
    for (;;) {
      Reap();
      bool settled = true;
      for (Worker& w : workers_) {
        if (!Alive(w) && !w.exited) settled = false;
        if (w.exited) w.spawning = false;
      }
      if (settled) {
        // Workers that died before connecting get the same respawn policy
        // as mid-round deaths; the pool only counts as lost when nobody is
        // alive and nobody is coming back.
        for (Worker& w : workers_) {
          if (!Alive(w) && !w.respawn_pending) ScheduleRespawn(w);
        }
        if (AliveCount() == 0 && !AnyRespawnScheduled()) {
          throw ProcBackendError(
              "proc backend: every worker died before connecting");
        }
        return;
      }
      if (obs::Now() > deadline) {
        throw ProcBackendError(
            "proc backend: workers failed to connect within 30s");
      }
      pollfd p{listen_fd_, POLLIN, 0};
      int n = ::poll(&p, 1, 100);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw ProcBackendError(std::string("proc backend: poll: ") +
                               std::strerror(errno));
      }
      if (n == 0 || (p.revents & POLLIN) == 0) continue;
      AcceptOne();
    }
  }

  void Reap() {
    for (Worker& w : workers_) {
      if (w.exited || w.pid < 0) continue;
      int status = 0;
      if (::waitpid(w.pid, &status, WNOHANG) == w.pid) w.exited = true;
    }
    for (auto& [pid, reaped] : graveyard_) {
      if (reaped) continue;
      int status = 0;
      if (::waitpid(pid, &status, WNOHANG) == pid) reaped = true;
    }
  }

  // Records a death of this ordinal's slot and, within the respawn budget,
  // schedules a replacement fork after an exponential backoff.
  void ScheduleRespawn(Worker& w) {
    ++w.deaths;
    if (w.deaths > kMaxRespawnsPerWorker) return;  // slot stays dead
    int backoff = std::min(kRespawnInitialBackoffMs << (w.deaths - 1),
                           kRespawnMaxBackoffMs);
    w.respawn_pending = true;
    w.respawn_at = obs::Now() + std::chrono::milliseconds(backoff);
  }

  // Forks replacements whose backoff has elapsed. The child must drop every
  // coordinator-side fd it inherited — other workers' connections and the
  // listener — or a dead sibling would never read as EOF on the coordinator.
  void MaybeRespawn() {
    auto now = obs::Now();
    for (Worker& w : workers_) {
      if (!w.respawn_pending || now < w.respawn_at) continue;
      const int64_t respawn_start_ns = obs::NowNs();
      pid_t pid = ::fork();
      if (pid < 0) {
        w.respawn_at = now + std::chrono::milliseconds(100);  // retry later
        continue;
      }
      if (pid == 0) {
        for (Worker& other : workers_) other.conn.reset();
        ::close(listen_fd_);
        ::_exit(WorkerBody(w.ordinal, port_, map_fn_, combiner_factory_,
                           reduce_fn_, options_));
      }
      if (w.pid >= 0 && !w.exited) graveyard_.emplace_back(w.pid, false);
      w.pid = pid;
      w.exited = false;
      w.spawning = true;
      w.respawn_pending = false;
      ++respawns_;
      all_pids_.push_back(pid);
      obs::EmitSpan("proc", "worker_respawn", respawn_start_ns, obs::NowNs());
    }
  }

  // Declares a worker dead: its connection is dropped, its uncommitted
  // segments are discarded (committed output in store_ is untouched — that
  // is the re-execution correctness contract), a replacement fork is
  // scheduled, and its in-flight task goes back to the queue — unless the
  // task has burned its whole attempt budget, which ends the round with a
  // typed error naming the task and what kept killing it.
  void MarkDead(Worker& w, std::deque<int>* pending, const std::string& reason) {
    w.conn.reset();
    w.staged.clear();
    ResetPartBuffer(w);
    int task = w.task;
    w.task = -1;
    ScheduleRespawn(w);
    if (task == -1) return;
    TaskState& ts = task_state_[task];
    ts.last_failure = reason;
    if (ts.attempts >= max_attempts_) {
      throw ProcTaskFailedError(phase_, task, ts.attempts, reason);
    }
    pending->push_back(task);
  }

  void CheckDeadline(int done, int num_tasks) {
    if (!has_deadline_ || obs::Now() <= deadline_) return;
    throw ProcDeadlineError(
        "proc backend: round " + std::to_string(options_.round_index) +
        " exceeded its deadline (" +
        std::to_string(options_.proc_round_deadline_ms) + " ms) in the " +
        phase_ + " phase (" + std::to_string(done) + "/" +
        std::to_string(num_tasks) + " tasks done)");
  }

  // Generic phase driver: schedules tasks 0..num_tasks-1 onto idle workers,
  // pumps their connections, reassigns tasks of dead (or stalled) workers
  // within the per-task attempt budget, pings for liveness, respawns
  // replacements, and enforces the round deadline. `send_task` returns
  // false when the worker died mid-send; `on_frame` returns true when the
  // worker's in-flight task completed (and throws to abort the round, e.g.
  // on kError).
  void RunTasks(int num_tasks, const char* phase,
                const std::function<bool(Worker&, int)>& send_task,
                const std::function<bool(Worker&, MsgType, std::string_view)>&
                    on_frame) {
    phase_ = phase;
    // Span names must be literals with process lifetime (EmitSpan stores
    // the pointer), so the per-phase dispatch name is picked, not built.
    const char* dispatch_span =
        std::strcmp(phase, "map") == 0 ? "map_dispatch" : "reduce_dispatch";
    task_state_.assign(static_cast<size_t>(num_tasks), TaskState{});
    const int hb_ms = HeartbeatIntervalMs(options_);
    std::deque<int> pending;
    for (int t = 0; t < num_tasks; ++t) pending.push_back(t);
    int done = 0;
    while (done < num_tasks) {
      CheckDeadline(done, num_tasks);
      Reap();
      // A replacement that died before connecting counts as another death
      // of its slot (it never reaches MarkDead — it has no connection).
      for (Worker& w : workers_) {
        if (w.spawning && w.exited) {
          w.spawning = false;
          ScheduleRespawn(w);
        }
      }
      MaybeRespawn();
      if (AliveCount() == 0 && !AnyRespawnScheduled()) {
        throw ProcBackendError(
            "proc backend: every worker died with tasks outstanding");
      }
      auto now = obs::Now();
      for (Worker& w : workers_) {
        if (pending.empty()) break;
        if (!Alive(w) || w.task != -1) continue;
        w.task = pending.front();
        pending.pop_front();
        w.staged.clear();
        ResetPartBuffer(w);
        TaskState& ts = task_state_[w.task];
        ++ts.attempts;
        ++attempts_total_;
        if (ts.attempts > 1) ++retries_total_;
        w.last_progress = w.last_ping = now;
        w.dispatch_ns = obs::ToNs(now);
        if (!send_task(w, w.task)) {
          MarkDead(w, &pending, "worker " + std::to_string(w.ordinal) +
                                    " connection lost sending the task");
        }
      }

      if (hb_ms > 0) {
        now = obs::Now();
        for (Worker& w : workers_) {
          if (!Alive(w)) continue;
          if (now - w.last_ping < std::chrono::milliseconds(hb_ms)) continue;
          w.last_ping = now;
          w.ping_sent_ns = obs::ToNs(now);
          if (!w.conn->Send(MsgType::kPing, {})) {
            MarkDead(w, &pending, "worker " + std::to_string(w.ordinal) +
                                      " connection lost sending a ping");
          }
        }
      }

      std::vector<pollfd> pfds;
      std::vector<Worker*> order;
      for (Worker& w : workers_) {
        if (!Alive(w)) continue;
        pfds.push_back(pollfd{w.conn->fd(), POLLIN, 0});
        order.push_back(&w);
      }
      pfds.push_back(pollfd{listen_fd_, POLLIN, 0});
      int timeout_ms = options_.proc_worker_timeout_ms > 0 ? 50 : 200;
      if (hb_ms > 0) timeout_ms = std::min(timeout_ms, hb_ms);
      for (const Worker& w : workers_) {
        if (w.respawn_pending) timeout_ms = std::min(timeout_ms, 10);
      }
      int n = ::poll(pfds.data(), pfds.size(), timeout_ms);
      if (n < 0 && errno != EINTR) {
        throw ProcBackendError(std::string("proc backend: poll: ") +
                               std::strerror(errno));
      }
      if (n > 0) {
        for (size_t i = 0; i + 1 < pfds.size(); ++i) {
          if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
          Worker& w = *order[i];
          if (!Alive(w)) continue;
          bool io_ok = w.conn->FillOnce();
          for (;;) {
            MsgType type;
            std::string payload;
            auto status = w.conn->TryNext(&type, &payload);
            if (status == rpc::FrameDecoder::Status::kNeedMore) break;
            if (status == rpc::FrameDecoder::Status::kBadFrame) {
              ProtocolError("malformed frame from worker " +
                            std::to_string(w.ordinal));
            }
            // Every frame counts as progress; kPong exists only for that.
            w.last_progress = obs::Now();
            if (type == MsgType::kPong) {
              // Ping→first-pong RTT. Approximate under load: a spontaneous
              // progress beat landing between ping and reply closes the
              // span early — good enough for a liveness-latency signal.
              if (w.ping_sent_ns >= 0) {
                const int64_t now_ns = obs::NowNs();
                obs::EmitSpan("proc", "heartbeat_rtt", w.ping_sent_ns, now_ns);
                if (obs::Enabled()) {
                  static obs::Histogram& rtt_hist =
                      obs::GetHistogram("proc.heartbeat_rtt_ns");
                  rtt_hist.Observe(now_ns - w.ping_sent_ns);
                }
                w.ping_sent_ns = -1;
              }
              continue;
            }
            if (type == MsgType::kTrace) {
              // Worker observability snapshot: merge spans (stamped with
              // the sender's ordinal) and fold metric deltas into the
              // registry. Malformed payloads are dropped, never fatal.
              obs::IngestWireSnapshot(payload, w.ordinal);
              continue;
            }
            if (on_frame(w, type, payload)) {
              obs::EmitSpan("proc", dispatch_span, w.dispatch_ns,
                            obs::NowNs());
              ++done;
              w.task = -1;
              w.staged.clear();
              ResetPartBuffer(w);
            }
          }
          if (!io_ok) {
            MarkDead(w, &pending, "worker " + std::to_string(w.ordinal) +
                                      " connection lost (process death or "
                                      "mid-frame disconnect)");
          }
        }
        if ((pfds.back().revents & POLLIN) != 0) AcceptOne();
      }

      if (options_.proc_worker_timeout_ms > 0) {
        now = obs::Now();
        auto limit = std::chrono::milliseconds(options_.proc_worker_timeout_ms);
        for (Worker& w : workers_) {
          if (!Alive(w) || w.task == -1) continue;
          if (now - w.last_progress <= limit) continue;
          ::kill(w.pid, SIGKILL);  // hung (not merely slow): reclaim forcibly
          ++kills_;
          // The stall is the span: last observed progress → the kill.
          obs::EmitSpan("proc", "worker_stall_kill",
                        obs::ToNs(w.last_progress), obs::ToNs(now));
          MarkDead(w, &pending,
                   "worker " + std::to_string(w.ordinal) +
                       " made no progress for " +
                       std::to_string(options_.proc_worker_timeout_ms) +
                       " ms and was killed");
        }
      }
      Reap();
    }
  }

  bool SendMapTask(Worker& w, int task) {
    size_t shard = (num_inputs_ + map_tasks_ - 1) / map_tasks_;
    size_t begin = std::min(num_inputs_, static_cast<size_t>(task) * shard);
    size_t end = std::min(num_inputs_, begin + shard);
    std::string payload;
    PutVarint(&payload, task);
    PutVarint(&payload, begin);
    PutVarint(&payload, end);
    return w.conn->Send(MsgType::kMapTask, payload);
  }

  bool OnMapFrame(Worker& w, MsgType type, std::string_view payload) {
    if (type == MsgType::kError) ThrowWorkerError(payload);
    if (type == MsgType::kSegment) {
      // Per-frame, so a chunked transfer shows as a burst of receive spans.
      DSEQ_TRACE_SPAN("proc", "segment_receive");
      SegmentHeader h = ParseSegment(payload);
      if (w.task < 0 || h.task != static_cast<uint64_t>(w.task) ||
          h.reducer >= static_cast<uint64_t>(reduce_tasks_)) {
        ProtocolError("segment outside the worker's in-flight task");
      }
      if (h.kind == kSegmentPart) {
        if (w.part_open &&
            (w.part_task != h.task || w.part_reducer != h.reducer)) {
          ProtocolError("interleaved segment chunks");
        }
        w.part_open = true;
        w.part_task = h.task;
        w.part_reducer = h.reducer;
        w.part_bytes.append(h.bytes.data(), h.bytes.size());
        ++segment_chunks_;
        return false;
      }
      std::string full;
      if (w.part_open) {
        if (w.part_task != h.task || w.part_reducer != h.reducer) {
          ProtocolError("segment chunk terminator mismatch");
        }
        full = std::move(w.part_bytes);
        ResetPartBuffer(w);
      }
      full.append(h.bytes.data(), h.bytes.size());
      static obs::Histogram& seg_bytes_hist =
          obs::GetHistogram("proc.segment_bytes");
      if (obs::Enabled()) seg_bytes_hist.Observe(full.size());
      StoredSegment seg;
      seg.kind = h.kind;
      seg.flags = h.flags;
      seg.num_records = h.num_records;
      if (h.kind == kSegmentRun) {
        if (options_.spill_dir.empty()) {
          ProtocolError("run segment without a spill directory");
        }
        // Park run bytes on disk: the SpillFile doubles as the shuffle
        // segment store, and a discarded stage cleans itself up via RAII.
        seg.file = std::make_unique<SpillFile>(
            SpillFile::Create(options_.spill_dir));
        seg.file->Append(full.data(), full.size());
        seg.file->FinishWrite();
      } else if (!options_.spill_dir.empty() &&
                 options_.proc_tail_park_bytes > 0 &&
                 full.size() >= options_.proc_tail_park_bytes) {
        // Large staged tail: park it on disk instead of holding the bytes
        // resident until the reduce phase replays them.
        seg.file = std::make_unique<SpillFile>(
            SpillFile::Create(options_.spill_dir));
        seg.file->Append(full.data(), full.size());
        seg.file->FinishWrite();
        ++parked_tails_;
      } else {
        seg.bytes = std::move(full);
      }
      w.staged.emplace_back(static_cast<int>(h.reducer), std::move(seg));
      return false;
    }
    if (type == MsgType::kMapDone) {
      size_t pos = 0;
      uint64_t task = 0;
      RequireVarint(payload, &pos, &task, "map-done task");
      if (w.task < 0 || task != static_cast<uint64_t>(w.task)) {
        ProtocolError("map-done outside the worker's in-flight task");
      }
      MapReport report;
      RequireVarint(payload, &pos, &report.map_output_records, "map-done");
      RequireVarint(payload, &pos, &report.shuffle_records, "map-done");
      RequireVarint(payload, &pos, &report.shuffle_bytes, "map-done");
      RequireVarint(payload, &pos, &report.shuffle_compressed_bytes,
                    "map-done");
      RequireVarint(payload, &pos, &report.spill_files, "map-done");
      RequireVarint(payload, &pos, &report.spill_bytes_written, "map-done");
      RequireVarint(payload, &pos, &report.spill_merge_passes, "map-done");
      RequireVarint(payload, &pos, &report.input_storage_reads, "map-done");
      RequireVarint(payload, &pos, &report.input_cache_hits, "map-done");
      uint64_t num_reducers = 0;
      RequireVarint(payload, &pos, &num_reducers, "map-done reducer count");
      if (num_reducers != static_cast<uint64_t>(reduce_tasks_)) {
        ProtocolError("map-done reducer count mismatch");
      }
      report.reducer_bytes.resize(reduce_tasks_);
      for (int r = 0; r < reduce_tasks_; ++r) {
        RequireVarint(payload, &pos, &report.reducer_bytes[r],
                      "map-done reducer bytes");
      }
      // Commit: the task's segments become durable coordinator state, its
      // metrics enter the round totals, and the global shuffle budget is
      // enforced on the committed sum (each worker already enforced the
      // per-task share inside RunMapShard).
      {
        DSEQ_TRACE_SPAN("proc", "segment_commit");
        for (auto& per_reducer : store_[w.task]) per_reducer.clear();
        for (auto& [reducer, seg] : w.staged) {
          store_[w.task][reducer].push_back(std::move(seg));
        }
        w.staged.clear();
      }
      map_reports_[w.task] = std::move(report);
      committed_shuffle_bytes_ += map_reports_[w.task].shuffle_bytes;
      if (options_.shuffle_budget_bytes > 0 &&
          committed_shuffle_bytes_ > options_.shuffle_budget_bytes) {
        throw ShuffleOverflowError(
            "round " + std::to_string(options_.round_index) +
            ": shuffle volume exceeded the budget across map tasks (budget " +
            std::to_string(options_.shuffle_budget_bytes) +
            " bytes, committed " + std::to_string(committed_shuffle_bytes_) +
            " bytes)");
      }
      return true;
    }
    ProtocolError("unexpected frame during the map phase");
  }

  bool SendReduceTask(Worker& w, int reducer) {
    // Covers the replay of every committed segment to the reduce worker.
    DSEQ_TRACE_SPAN("proc", "segment_replay");
    uint64_t num_segments = 0;
    for (int t = 0; t < map_tasks_; ++t) {
      num_segments += store_[t][reducer].size();
    }
    std::string payload;
    PutVarint(&payload, reducer);
    PutVarint(&payload, num_segments);
    if (!w.conn->Send(MsgType::kReduceTask, payload)) return false;
    // Replay in map-task order — the stability contract of the reduce merge
    // (identical to the local engine's source order), regardless of the
    // order map tasks happened to finish in. Oversized segments re-chunk on
    // the way out exactly as they arrived.
    auto emit = [&](const std::string& seg) {
      return w.conn->Send(MsgType::kSegment, seg);
    };
    for (int t = 0; t < map_tasks_; ++t) {
      for (const StoredSegment& s : store_[t][reducer]) {
        std::string bytes = s.Bytes();
        if (!ForEachSegmentFrame(t, reducer, s.kind, s.flags, s.num_records,
                                 bytes, emit, &segment_chunks_)) {
          return false;
        }
      }
    }
    return true;
  }

  bool OnReduceFrame(Worker& w, MsgType type, std::string_view payload) {
    if (type == MsgType::kError) ThrowWorkerError(payload);
    if (type != MsgType::kReduceDone) {
      ProtocolError("unexpected frame during the reduce phase");
    }
    size_t pos = 0;
    uint64_t reducer = 0;
    RequireVarint(payload, &pos, &reducer, "reduce-done reducer");
    if (w.task < 0 || reducer != static_cast<uint64_t>(w.task)) {
      ProtocolError("reduce-done outside the worker's in-flight task");
    }
    uint64_t spill_files = 0;
    uint64_t spill_bytes = 0;
    uint64_t merge_passes = 0;
    uint64_t num_records = 0;
    RequireVarint(payload, &pos, &spill_files, "reduce-done");
    RequireVarint(payload, &pos, &spill_bytes, "reduce-done");
    RequireVarint(payload, &pos, &merge_passes, "reduce-done");
    RequireVarint(payload, &pos, &num_records, "reduce-done record count");
    std::vector<Record>& records = reduce_records_[reducer];
    records.clear();  // a re-executed task replaces, never appends
    records.reserve(num_records);
    for (uint64_t i = 0; i < num_records; ++i) {
      uint64_t key_size = 0;
      uint64_t value_size = 0;
      RequireVarint(payload, &pos, &key_size, "record key size");
      RequireVarint(payload, &pos, &value_size, "record value size");
      if (key_size > payload.size() - pos ||
          value_size > payload.size() - pos - key_size) {
        ProtocolError("truncated boundary record");
      }
      Record record;
      record.key.assign(payload.substr(pos, key_size));
      pos += key_size;
      record.value.assign(payload.substr(pos, value_size));
      pos += value_size;
      records.push_back(std::move(record));
    }
    reduce_spill_files_ += spill_files;
    reduce_spill_bytes_ += spill_bytes;
    reduce_merge_passes_ += merge_passes;
    return true;
  }

  [[noreturn]] void ThrowWorkerError(std::string_view payload) {
    size_t pos = 0;
    uint64_t kind = 0;
    RequireVarint(payload, &pos, &kind, "error kind");
    std::string message(payload.substr(pos));
    switch (kind) {
      case kErrShuffleOverflow:
        throw ShuffleOverflowError(message);
      case kErrInvalidArgument:
        throw std::invalid_argument(message);
      case kErrOutOfRange:
        throw std::out_of_range(message);
      case kErrOverflow:
        throw std::overflow_error(message);
      default:
        throw std::runtime_error(message);
    }
  }

  // Ends the worker pool: graceful shutdown first, SIGKILL for stragglers,
  // then reap everything — current workers and the graveyard of replaced
  // pids — and sweep orphaned spill files of every pid the round ever
  // forked (spill file names embed the owning pid, so a SIGKILLed worker's
  // leftovers are identifiable). Idempotent; called from the success path
  // and the destructor.
  void Cleanup() {
    for (Worker& w : workers_) {
      if (Alive(w)) {
        w.conn->Send(MsgType::kShutdown, {});
        w.conn.reset();
      }
    }
    auto deadline = obs::Now() + std::chrono::seconds(5);
    for (;;) {
      Reap();
      bool all_exited = true;
      for (const Worker& w : workers_) {
        if (w.pid >= 0 && !w.exited) all_exited = false;
      }
      for (const auto& [pid, reaped] : graveyard_) {
        if (!reaped) all_exited = false;
      }
      if (all_exited) break;
      if (obs::Now() > deadline) {
        for (Worker& w : workers_) {
          if (w.pid >= 0 && !w.exited) ::kill(w.pid, SIGKILL);
        }
        for (auto& [pid, reaped] : graveyard_) {
          if (!reaped) ::kill(pid, SIGKILL);
        }
        for (Worker& w : workers_) {
          if (w.pid < 0 || w.exited) continue;
          int status = 0;
          while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
          }
          w.exited = true;
        }
        for (auto& [pid, reaped] : graveyard_) {
          if (reaped) continue;
          int status = 0;
          while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
          }
          reaped = true;
        }
        break;
      }
      ::usleep(2000);
    }
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    RemoveOrphanSpillFiles();
  }

  void RemoveOrphanSpillFiles() {
    if (options_.spill_dir.empty() || all_pids_.empty()) return;
    DIR* dir = ::opendir(options_.spill_dir.c_str());
    if (dir == nullptr) return;
    std::vector<std::string> prefixes;
    prefixes.reserve(all_pids_.size());
    for (pid_t pid : all_pids_) {
      prefixes.push_back("spill-" + std::to_string(pid) + "-");
    }
    std::vector<std::string> doomed;
    while (dirent* entry = ::readdir(dir)) {
      std::string_view name(entry->d_name);
      for (const std::string& prefix : prefixes) {
        if (name.size() > prefix.size() &&
            name.substr(0, prefix.size()) == prefix) {
          doomed.push_back(options_.spill_dir + "/" + std::string(name));
          break;
        }
      }
    }
    ::closedir(dir);
    for (const std::string& path : doomed) ::unlink(path.c_str());
  }

  const size_t num_inputs_;
  const MapFn& map_fn_;
  const CombinerFactory& combiner_factory_;
  const ChainReduceFn& reduce_fn_;
  const DataflowOptions& options_;
  const int map_tasks_;
  const int reduce_tasks_;
  const int max_attempts_;

  std::vector<Worker> workers_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  // store_[map task][reducer] -> committed segments, runs-then-tail per task.
  std::vector<std::vector<std::vector<StoredSegment>>> store_{
      static_cast<size_t>(map_tasks_)};
  std::vector<MapReport> map_reports_{static_cast<size_t>(map_tasks_)};
  std::vector<std::vector<Record>> reduce_records_{
      static_cast<size_t>(reduce_tasks_)};
  uint64_t committed_shuffle_bytes_ = 0;
  uint64_t reduce_spill_files_ = 0;
  uint64_t reduce_spill_bytes_ = 0;
  uint64_t reduce_merge_passes_ = 0;

  // Failure-policy state.
  const char* phase_ = "map";
  std::vector<TaskState> task_state_;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_;
  uint64_t attempts_total_ = 0;
  uint64_t retries_total_ = 0;
  uint64_t kills_ = 0;
  uint64_t respawns_ = 0;
  uint64_t segment_chunks_ = 0;
  uint64_t parked_tails_ = 0;
  // Every pid the round ever forked (for the orphan spill sweep) and
  // replaced-but-unreaped pids awaiting waitpid.
  std::vector<pid_t> all_pids_;
  std::vector<std::pair<pid_t, bool>> graveyard_;
};

}  // namespace

ProcRoundResult RunProcRound(size_t num_inputs, const MapFn& map_fn,
                             const CombinerFactory& combiner_factory,
                             const ChainReduceFn& reduce_fn,
                             const DataflowOptions& options) {
  Coordinator coordinator(num_inputs, map_fn, combiner_factory, reduce_fn,
                          options);
  return coordinator.Run();
}

}  // namespace dseq
