// Loopback TCP plumbing for the multi-process backend.
//
// Thin, exception-on-setup/boolean-on-IO wrappers over BSD sockets: a
// listener on 127.0.0.1 with a kernel-assigned port, a connect call for the
// forked workers, and a message connection (MsgConn) that frames every
// send/receive with src/rpc/frame.h. All reads and writes are EINTR-safe
// and handle partial transfers; SIGPIPE is ignored process-wide
// (IgnoreSigPipe) so a peer death surfaces as a failed write, never a
// signal.
#ifndef DSEQ_RPC_SOCKET_H_
#define DSEQ_RPC_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/rpc/frame.h"

namespace dseq {
namespace rpc {

/// Ignores SIGPIPE process-wide (idempotent). Every coordinator and worker
/// entry point calls this so writes to a dead peer fail with EPIPE instead
/// of killing the process.
void IgnoreSigPipe();

/// Creates a listening TCP socket bound to 127.0.0.1 on a kernel-assigned
/// port, written to `*port`. Throws std::runtime_error on failure.
int ListenLoopback(uint16_t* port);

/// Connects to 127.0.0.1:`port`. Throws std::runtime_error on failure.
int ConnectLoopback(uint16_t port);

/// Accepts one connection from `listen_fd` (EINTR-safe). Throws
/// std::runtime_error on failure.
int AcceptConn(int listen_fd);

/// Writes all `size` bytes (EINTR- and partial-write-safe). Returns false
/// on any error, including EPIPE from a dead peer.
bool WriteFull(int fd, const void* data, size_t size);

/// Reads exactly `size` bytes (EINTR- and partial-read-safe). Returns
/// false on EOF or error.
bool ReadFull(int fd, void* data, size_t size);

/// One message-framed connection. Owns the fd; move-only.
class MsgConn {
 public:
  explicit MsgConn(int fd) : fd_(fd) {}
  MsgConn(const MsgConn&) = delete;
  MsgConn& operator=(const MsgConn&) = delete;
  MsgConn(MsgConn&& other) noexcept;
  MsgConn& operator=(MsgConn&& other) noexcept;
  ~MsgConn();

  int fd() const { return fd_; }

  /// Sends one frame. Returns false once the connection is broken.
  bool Send(MsgType type, std::string_view payload);

  /// Blocks until one complete frame arrives; copies its payload out.
  /// Returns false on EOF, socket error, or a malformed frame.
  bool Recv(MsgType* type, std::string* payload);

  /// Non-draining half of the coordinator's poll loop: performs one read()
  /// into the decoder (call after poll() reported readability, so it does
  /// not block). Returns false on EOF or socket error — buffered complete
  /// frames remain drainable via TryNext either way.
  bool FillOnce();

  /// Drains the next complete frame out of already-buffered bytes without
  /// touching the socket.
  FrameDecoder::Status TryNext(MsgType* type, std::string* payload);

 private:
  void Close();

  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace rpc
}  // namespace dseq

#endif  // DSEQ_RPC_SOCKET_H_
