#include "src/rpc/frame.h"

#include "src/util/varint.h"

namespace dseq {
namespace rpc {
namespace {

// Incremental varint parse distinguishing "truncated so far" from
// "malformed": GetVarint (src/util/varint.h) folds both into false, but a
// streaming decoder must keep waiting on the former and die on the latter.
// Returns 1 on success (advancing *pos), 0 when `data` ends mid-varint,
// -1 on a varint that cannot encode a 64-bit value.
int ParseVarint(std::string_view data, size_t* pos, uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  size_t p = *pos;
  for (;;) {
    if (p >= data.size()) return 0;
    uint8_t byte = static_cast<uint8_t>(data[p++]);
    if (shift == 63 && (byte & 0x7f) > 1) return -1;
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *pos = p;
      *value = result;
      return 1;
    }
    shift += 7;
    if (shift >= 64) return -1;
  }
}

bool ValidType(uint64_t type) {
  return type >= static_cast<uint64_t>(MsgType::kHello) &&
         type <= static_cast<uint64_t>(MsgType::kTrace);
}

}  // namespace

void AppendFrame(std::string* out, MsgType type, std::string_view payload) {
  PutVarint(out, static_cast<uint64_t>(type));
  PutVarint(out, payload.size());
  if (!payload.empty()) out->append(payload.data(), payload.size());
}

void FrameDecoder::Append(std::string_view bytes) {
  if (bad_) return;  // the stream is dead; stop accumulating
  // Compact consumed bytes first — this is the only point where previously
  // returned payload views go stale, matching the documented contract.
  if (pos_ > 0) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  buffer_.append(bytes.data(), bytes.size());
}

FrameDecoder::Status FrameDecoder::Next(MsgType* type,
                                        std::string_view* payload) {
  if (bad_) return Status::kBadFrame;
  size_t p = pos_;
  uint64_t raw_type = 0;
  uint64_t size = 0;
  int rc = ParseVarint(buffer_, &p, &raw_type);
  if (rc == 0) return Status::kNeedMore;
  if (rc < 0 || !ValidType(raw_type)) {
    bad_ = true;
    return Status::kBadFrame;
  }
  rc = ParseVarint(buffer_, &p, &size);
  if (rc == 0) return Status::kNeedMore;
  // The size cap is enforced here, on the length *prefix*: a hostile frame
  // never makes the decoder buffer (or its caller allocate) gigabytes.
  if (rc < 0 || size > kMaxFramePayloadBytes) {
    bad_ = true;
    return Status::kBadFrame;
  }
  if (buffer_.size() - p < size) return Status::kNeedMore;
  *type = static_cast<MsgType>(raw_type);
  *payload = std::string_view(buffer_).substr(p, size);
  pos_ = p + size;
  return Status::kFrame;
}

}  // namespace rpc
}  // namespace dseq
