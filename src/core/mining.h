// Shared mining result types.
#ifndef DSEQ_CORE_MINING_H_
#define DSEQ_CORE_MINING_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/util/common.h"

namespace dseq {

/// One frequent subsequence together with its frequency fπ(S, D).
struct PatternCount {
  Sequence pattern;
  uint64_t frequency = 0;

  bool operator==(const PatternCount& o) const {
    return frequency == o.frequency && pattern == o.pattern;
  }
};

/// Result of a mining run. `Canonicalize` sorts by pattern so results from
/// different algorithms can be compared directly.
using MiningResult = std::vector<PatternCount>;

inline void Canonicalize(MiningResult* result) {
  std::sort(result->begin(), result->end(),
            [](const PatternCount& a, const PatternCount& b) {
              return a.pattern < b.pattern;
            });
}

/// The pivot item of a sequence: its maximum fid (least frequent item).
inline ItemId PivotItem(const Sequence& s) {
  ItemId mx = kNoItem;
  for (ItemId w : s) mx = std::max(mx, w);
  return mx;
}

}  // namespace dseq

#endif  // DSEQ_CORE_MINING_H_
