// Position–state grid for FST simulation (paper Sec. V-A, Fig. 5b).
//
// For an input sequence T and an FST, the grid is a layered DAG over
// coordinates (i, q): "after consuming the first i items of T, the FST is in
// state q". Edges between layers i and i+1 carry the materialized output set
// of the matched transition (sorted item vector; empty = ε). The grid is
// pruned to coordinates that lie on at least one *accepting* run — the
// paper's dynamic-programming dead-end elimination.
//
// The grid is the single structure behind pivot search (Theorem 1),
// candidate enumeration, DESQ-DFS postings, sequence rewriting, and D-CAND
// run enumeration.
#ifndef DSEQ_CORE_GRID_H_
#define DSEQ_CORE_GRID_H_

#include <cstdint>
#include <vector>

#include "src/dict/dictionary.h"
#include "src/fst/fst.h"
#include "src/util/common.h"

namespace dseq {

/// Options for grid construction.
struct GridOptions {
  /// If > 0, items with document frequency < sigma are removed from output
  /// sets (they cannot appear in a frequent subsequence; paper Sec. III-A).
  /// A non-ε edge whose output set becomes empty is dropped entirely: no
  /// candidate made of frequent items can traverse it.
  uint64_t prune_sigma = 0;
};

/// Layered DAG of live FST simulation coordinates for one input sequence.
class StateGrid {
 public:
  struct Edge {
    StateId from;  // FST state at layer i
    StateId to;    // FST state at layer i+1
    Sequence out;  // sorted output items; empty = ε
  };

  StateGrid() = default;

  /// Builds the pruned grid for `T` under `fst`.
  static StateGrid Build(const Sequence& T, const Fst& fst,
                         const Dictionary& dict, const GridOptions& options = {});

  /// Length of the input sequence (number of layers minus one).
  size_t length() const { return length_; }

  /// Number of FST states (width of each layer).
  size_t num_states() const { return num_states_; }

  /// True iff at least one accepting run exists (grid non-empty).
  bool HasAcceptingRun() const { return accepting_; }

  /// Edges out of layer `pos` (consuming input item T[pos]), 0 <= pos < length.
  const std::vector<Edge>& EdgesAt(size_t pos) const { return edges_[pos]; }

  /// True iff coordinate (pos, q) lies on an accepting run.
  bool Alive(size_t pos, StateId q) const {
    return alive_[pos * num_states_ + q];
  }

  /// True iff coordinate (pos, q) is forward-reachable from (0, initial),
  /// regardless of whether an accepting run passes through it. Used by the
  /// D-SEQ rewriter's trailing-trim safety check.
  bool ForwardActive(size_t pos, StateId q) const {
    return forward_active_[pos * num_states_ + q];
  }

  /// True iff q is a final FST state (acceptance test at pos == length()).
  bool IsFinalState(StateId q) const { return finals_[q]; }

  /// Initial FST state (the unique live state of layer 0, when accepting).
  StateId initial_state() const { return initial_; }

  /// Total number of live edges (grid size metric).
  size_t num_edges() const;

  /// Computes, for every coordinate (i,q), whether (length(), f∈F) is
  /// reachable using only ε-output edges. Used by DESQ-DFS to decide whether
  /// a prefix is a *complete* output for this sequence. Indexed i*num_states+q.
  std::vector<uint8_t> ComputeEpsAcceptTable() const;

 private:
  size_t length_ = 0;
  size_t num_states_ = 0;
  StateId initial_ = 0;
  bool accepting_ = false;
  std::vector<bool> alive_;             // (length+1) x num_states
  std::vector<bool> forward_active_;    // (length+1) x num_states
  std::vector<std::vector<Edge>> edges_;  // per layer
  std::vector<bool> finals_;
};

}  // namespace dseq

#endif  // DSEQ_CORE_GRID_H_
