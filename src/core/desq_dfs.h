// DESQ-DFS: pattern-growth mining under flexible constraints.
//
// Sequential baseline (Beedkar & Gemulla, ICDM'16; paper Tab. V) and — in
// its pivot-restricted form — the local miner of D-SEQ partitions (paper
// Sec. V-C). Mining starts from the empty prefix and extends it one output
// item at a time. Each search-tree node has a projected database of postings
// (sequence, last-read position, FST state) from which the prefix can be
// produced; a sequence supports the prefix if some posting can reach the end
// of the sequence in a final state via ε-output transitions only.
//
// Pivot restriction (local mining at partition P_k):
//  * items larger than the pivot are never used to extend a prefix,
//  * only sequences containing the pivot item are output,
//  * early stopping: a sequence no longer extends a pivot-free prefix once
//    its last position that can produce the pivot item has passed.
#ifndef DSEQ_CORE_DESQ_DFS_H_
#define DSEQ_CORE_DESQ_DFS_H_

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "src/core/grid.h"
#include "src/core/mining.h"
#include "src/dict/dictionary.h"
#include "src/fst/fst.h"
#include "src/util/common.h"

namespace dseq {

/// Thrown when a configured memory budget is exceeded (used by benches to
/// reproduce the paper's OOM entries faithfully instead of thrashing).
class MiningBudgetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct DesqDfsOptions {
  uint64_t sigma = 1;

  /// If not kNoItem: mine only sequences whose pivot (max item) equals this
  /// item; larger items are never expanded.
  ItemId pivot = kNoItem;

  /// Early-stopping heuristic for pivot-restricted mining (Sec. V-C).
  bool early_stop = true;

  /// If > 0: abort with MiningBudgetError when the total number of live grid
  /// edges across all sequences exceeds this bound (OOM emulation).
  uint64_t max_total_grid_edges = 0;
};

/// Mines all frequent subsequences of `db` under the FST with threshold
/// `options.sigma`. Builds one grid per sequence (σ-pruned) and runs
/// pattern growth. Result is canonicalized (sorted by pattern).
MiningResult MineDesqDfs(const std::vector<Sequence>& db, const Fst& fst,
                         const Dictionary& dict, const DesqDfsOptions& options);

/// Same, over pre-built grids (used by D-SEQ local mining, which receives
/// rewritten sequences and has already built their grids).
MiningResult MineDesqDfsGrids(const std::vector<StateGrid>& grids,
                              const DesqDfsOptions& options);

/// Weighted variant: grid i counts with multiplicity weights[i] (used when
/// identical rewritten input sequences were aggregated in the shuffle).
MiningResult MineDesqDfsGrids(const std::vector<StateGrid>& grids,
                              const std::vector<uint64_t>& weights,
                              const DesqDfsOptions& options);

}  // namespace dseq

#endif  // DSEQ_CORE_DESQ_DFS_H_
