#include "src/core/grid.h"

#include <algorithm>

namespace dseq {

StateGrid StateGrid::Build(const Sequence& T, const Fst& fst,
                           const Dictionary& dict,
                           const GridOptions& options) {
  StateGrid grid;
  size_t n = T.size();
  size_t ns = fst.num_states();
  grid.length_ = n;
  grid.num_states_ = ns;
  grid.initial_ = fst.initial();
  grid.finals_.resize(ns);
  for (StateId q = 0; q < ns; ++q) grid.finals_[q] = fst.IsFinal(q);
  grid.edges_.resize(n);
  grid.alive_.assign((n + 1) * ns, false);
  if (ns == 0) return grid;

  // Forward simulation.
  grid.forward_active_.assign((n + 1) * ns, false);
  std::vector<bool>& active = grid.forward_active_;
  active[fst.initial()] = true;
  Sequence out;
  for (size_t i = 0; i < n; ++i) {
    ItemId t = T[i];
    auto& layer_edges = grid.edges_[i];
    for (StateId q = 0; q < ns; ++q) {
      if (!active[i * ns + q]) continue;
      for (const Transition& tr : fst.From(q)) {
        if (!fst.Matches(tr, t, dict)) continue;
        fst.ComputeOutput(tr, t, dict, &out);
        if (options.prune_sigma > 0 && !out.empty()) {
          out.erase(std::remove_if(out.begin(), out.end(),
                                   [&](ItemId w) {
                                     return dict.DocFrequency(w) <
                                            options.prune_sigma;
                                   }),
                    out.end());
          // Non-ε transition with no frequent output item: no σ-candidate
          // can use this edge.
          if (out.empty() && tr.out_kind != OutputKind::kEpsilon) continue;
        }
        active[(i + 1) * ns + tr.to] = true;
        layer_edges.push_back(Edge{q, tr.to, out});
      }
    }
    // Deduplicate edges (distinct FST transitions can collapse to the same
    // (from, to, output-set) edge, which would inflate run enumeration).
    std::sort(layer_edges.begin(), layer_edges.end(),
              [](const Edge& a, const Edge& b) {
                if (a.from != b.from) return a.from < b.from;
                if (a.to != b.to) return a.to < b.to;
                return a.out < b.out;
              });
    layer_edges.erase(std::unique(layer_edges.begin(), layer_edges.end(),
                                  [](const Edge& a, const Edge& b) {
                                    return a.from == b.from && a.to == b.to &&
                                           a.out == b.out;
                                  }),
                      layer_edges.end());
  }

  // Backward pruning: keep only coordinates that reach an accepting
  // (n, q ∈ F) coordinate.
  for (StateId q = 0; q < ns; ++q) {
    if (active[n * ns + q] && grid.finals_[q]) {
      grid.alive_[n * ns + q] = true;
      grid.accepting_ = true;
    }
  }
  if (!grid.accepting_) {
    for (auto& e : grid.edges_) e.clear();
    return grid;
  }
  for (size_t i = n; i-- > 0;) {
    auto& layer_edges = grid.edges_[i];
    layer_edges.erase(
        std::remove_if(layer_edges.begin(), layer_edges.end(),
                       [&](const Edge& e) {
                         return !grid.alive_[(i + 1) * ns + e.to];
                       }),
        layer_edges.end());
    for (const Edge& e : layer_edges) grid.alive_[i * ns + e.from] = true;
  }
  // A grid is accepting only if layer 0 retained the initial state.
  if (!grid.alive_[fst.initial()]) {
    grid.accepting_ = false;
    for (auto& e : grid.edges_) e.clear();
    std::fill(grid.alive_.begin(), grid.alive_.end(), false);
  }
  return grid;
}

size_t StateGrid::num_edges() const {
  size_t total = 0;
  for (const auto& layer : edges_) total += layer.size();
  return total;
}

std::vector<uint8_t> StateGrid::ComputeEpsAcceptTable() const {
  size_t n = length_;
  size_t ns = num_states_;
  std::vector<uint8_t> eps_accept((n + 1) * ns, 0);
  for (StateId q = 0; q < ns; ++q) {
    if (alive_[n * ns + q] && finals_[q]) eps_accept[n * ns + q] = 1;
  }
  for (size_t i = n; i-- > 0;) {
    for (const Edge& e : edges_[i]) {
      if (e.out.empty() && eps_accept[(i + 1) * ns + e.to]) {
        eps_accept[i * ns + e.from] = 1;
      }
    }
  }
  return eps_accept;
}

}  // namespace dseq
