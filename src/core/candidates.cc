#include "src/core/candidates.h"

#include <algorithm>

namespace dseq {
namespace {

// Edges of one layer grouped by source state (EdgesAt is sorted by `from`).
struct FromRange {
  const StateGrid::Edge* begin;
  const StateGrid::Edge* end;
};

FromRange EdgesFrom(const StateGrid& grid, size_t layer, StateId q) {
  const auto& edges = grid.EdgesAt(layer);
  size_t lo = std::lower_bound(
                  edges.begin(), edges.end(), q,
                  [](const StateGrid::Edge& e, StateId s) { return e.from < s; }) -
              edges.begin();
  size_t hi = lo;
  while (hi < edges.size() && edges[hi].from == q) ++hi;
  return {edges.data() + lo, edges.data() + hi};
}

struct CandidateSearch {
  const StateGrid& grid;
  size_t budget;
  std::vector<Sequence>* out;
  Sequence prefix;
  bool within_budget = true;

  void Dfs(size_t i, StateId q) {
    if (!within_budget) return;
    if (i == grid.length()) {
      if (grid.IsFinalState(q) && !prefix.empty()) {
        if (out->size() >= budget) {
          within_budget = false;
          return;
        }
        out->push_back(prefix);
      }
      return;
    }
    FromRange range = EdgesFrom(grid, i, q);
    for (const StateGrid::Edge* e = range.begin; e != range.end; ++e) {
      if (e->out.empty()) {
        Dfs(i + 1, e->to);
      } else {
        for (ItemId w : e->out) {
          prefix.push_back(w);
          Dfs(i + 1, e->to);
          prefix.pop_back();
          if (!within_budget) return;
        }
      }
      if (!within_budget) return;
    }
  }
};

struct RunSearch {
  const StateGrid& grid;
  uint64_t max_runs;
  const std::function<void(const std::vector<const StateGrid::Edge*>&)>& fn;
  std::vector<const StateGrid::Edge*> run;
  uint64_t count = 0;
  bool within_budget = true;

  void Dfs(size_t i, StateId q) {
    if (!within_budget) return;
    if (i == grid.length()) {
      if (grid.IsFinalState(q)) {
        if (count >= max_runs) {
          within_budget = false;
          return;
        }
        ++count;
        fn(run);
      }
      return;
    }
    FromRange range = EdgesFrom(grid, i, q);
    for (const StateGrid::Edge* e = range.begin; e != range.end; ++e) {
      run.push_back(e);
      Dfs(i + 1, e->to);
      run.pop_back();
      if (!within_budget) return;
    }
  }
};

}  // namespace

bool EnumerateCandidates(const StateGrid& grid, size_t budget,
                         std::vector<Sequence>* out) {
  out->clear();
  if (!grid.HasAcceptingRun()) return true;
  CandidateSearch search{grid, budget, out, {}, true};
  search.Dfs(0, grid.initial_state());
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
  return search.within_budget;
}

bool ForEachAcceptingRun(
    const StateGrid& grid, uint64_t max_runs,
    const std::function<void(const std::vector<const StateGrid::Edge*>&)>& fn) {
  if (!grid.HasAcceptingRun()) return true;
  RunSearch search{grid, max_runs, fn, {}, 0, true};
  search.Dfs(0, grid.initial_state());
  return search.within_budget;
}

uint64_t CountAcceptingRuns(const StateGrid& grid, uint64_t max_runs) {
  uint64_t count = 0;
  ForEachAcceptingRun(grid, max_runs,
                      [&](const std::vector<const StateGrid::Edge*>&) {
                        ++count;
                      });
  return count;
}

}  // namespace dseq
