#include "src/core/pivot.h"

#include <algorithm>

namespace dseq {

void PivotSet::UnionWith(const PivotSet& other) {
  has_eps = has_eps || other.has_eps;
  if (other.items.empty()) return;
  if (items.empty()) {
    items = other.items;
    return;
  }
  // Merge into a scratch small-vector: inline (allocation-free) unless the
  // union spills past the inline capacity.
  PivotItemVec merged;
  merged.reserve(items.size() + other.items.size());
  std::set_union(items.begin(), items.end(), other.items.begin(),
                 other.items.end(), std::back_inserter(merged));
  items = std::move(merged);
}

PivotSet PivotMerge(const PivotSet& u, const PivotSet& q) {
  if (u.IsEmpty() || q.IsEmpty()) return PivotSet{};
  PivotSet result;
  result.has_eps = u.has_eps && q.has_eps;

  // min(Q) = ε if Q contains ε, else its smallest item. An element ω of U
  // survives iff ω >= min(Q), i.e. all of U if Q has ε, else ω >= Q.front().
  // Each survivor set is a sorted tail range of its side, so the union is
  // written straight into the result — no temporaries.
  auto survivors = [](const PivotSet& from, const PivotSet& other)
      -> std::pair<PivotItemVec::const_iterator,
                   PivotItemVec::const_iterator> {
    if (other.has_eps) return {from.items.begin(), from.items.end()};
    ItemId min_other = other.items.front();
    auto it =
        std::lower_bound(from.items.begin(), from.items.end(), min_other);
    return {it, from.items.end()};
  };

  auto [ubegin, uend] = survivors(u, q);
  auto [qbegin, qend] = survivors(q, u);
  result.items.reserve((uend - ubegin) + (qend - qbegin));
  std::set_union(ubegin, uend, qbegin, qend,
                 std::back_inserter(result.items));
  return result;
}

PivotSet PivotsOfOutputSets(const std::vector<Sequence>& output_sets) {
  PivotSet acc = PivotSet::Eps();
  for (const Sequence& out : output_sets) {
    PivotSet next = out.empty() ? PivotSet::Eps() : PivotSet::Items(out);
    acc = PivotMerge(acc, next);
    if (acc.IsEmpty()) return acc;
  }
  return acc;
}

std::vector<PivotSet> ComputeForwardPivots(const StateGrid& grid) {
  size_t n = grid.length();
  size_t ns = grid.num_states();
  std::vector<PivotSet> fwd((n + 1) * ns);
  if (!grid.HasAcceptingRun()) return fwd;
  fwd[grid.initial_state()] = PivotSet::Eps();
  for (size_t i = 0; i < n; ++i) {
    for (const StateGrid::Edge& e : grid.EdgesAt(i)) {
      const PivotSet& prev = fwd[i * ns + e.from];
      if (prev.IsEmpty()) continue;
      PivotSet contrib =
          e.out.empty() ? prev
                        : PivotMerge(prev, PivotSet::Items(e.out));
      fwd[(i + 1) * ns + e.to].UnionWith(contrib);
    }
  }
  return fwd;
}

std::vector<PivotSet> ComputeBackwardPivots(const StateGrid& grid) {
  size_t n = grid.length();
  size_t ns = grid.num_states();
  std::vector<PivotSet> bwd((n + 1) * ns);
  if (!grid.HasAcceptingRun()) return bwd;
  for (StateId q = 0; q < ns; ++q) {
    if (grid.Alive(n, q) && grid.IsFinalState(q)) {
      bwd[n * ns + q] = PivotSet::Eps();
    }
  }
  for (size_t i = n; i-- > 0;) {
    for (const StateGrid::Edge& e : grid.EdgesAt(i)) {
      const PivotSet& next = bwd[(i + 1) * ns + e.to];
      if (next.IsEmpty()) continue;
      PivotSet contrib =
          e.out.empty() ? next
                        : PivotMerge(next, PivotSet::Items(e.out));
      bwd[i * ns + e.from].UnionWith(contrib);
    }
  }
  return bwd;
}

Sequence FindPivotItems(const StateGrid& grid) {
  if (!grid.HasAcceptingRun()) return {};
  size_t n = grid.length();
  size_t ns = grid.num_states();
  std::vector<PivotSet> fwd = ComputeForwardPivots(grid);
  PivotSet result;
  for (StateId q = 0; q < ns; ++q) {
    if (grid.Alive(n, q) && grid.IsFinalState(q)) {
      result.UnionWith(fwd[n * ns + q]);
    }
  }
  return result.items.ToSequence();  // ε (the empty candidate) is never a pivot
}

namespace {

// Raw DFS FST simulation for the no-grid ablation.
struct NoGridSearch {
  const Sequence& T;
  const Fst& fst;
  const Dictionary& dict;
  uint64_t sigma;
  uint64_t max_steps;
  uint64_t steps = 0;
  PivotSet result;
  Sequence scratch_out;

  bool Dfs(size_t i, StateId q, const PivotSet& acc) {
    if (++steps > max_steps) return false;
    if (i == T.size()) {
      if (fst.IsFinal(q)) result.UnionWith(acc);
      return true;
    }
    for (const Transition& tr : fst.From(q)) {
      if (!fst.Matches(tr, T[i], dict)) continue;
      fst.ComputeOutput(tr, T[i], dict, &scratch_out);
      if (sigma > 0 && !scratch_out.empty()) {
        scratch_out.erase(
            std::remove_if(scratch_out.begin(), scratch_out.end(),
                           [&](ItemId w) {
                             return dict.DocFrequency(w) < sigma;
                           }),
            scratch_out.end());
        if (scratch_out.empty() && tr.out_kind != OutputKind::kEpsilon) {
          continue;
        }
      }
      PivotSet next =
          scratch_out.empty()
              ? acc
              : PivotMerge(acc, PivotSet::Items(scratch_out));
      if (next.IsEmpty()) continue;
      if (!Dfs(i + 1, tr.to, next)) return false;
    }
    return true;
  }
};

}  // namespace

bool FindPivotItemsNoGrid(const Sequence& T, const Fst& fst,
                          const Dictionary& dict, uint64_t sigma,
                          uint64_t max_steps, Sequence* pivots) {
  NoGridSearch search{T, fst, dict, sigma, max_steps, 0, {}, {}};
  bool complete = search.Dfs(0, fst.initial(), PivotSet::Eps());
  *pivots = search.result.items.ToSequence();
  return complete;
}

}  // namespace dseq
