#include "src/core/desq_count.h"

#include <unordered_map>

#include "src/core/candidates.h"
#include "src/core/desq_dfs.h"
#include "src/core/grid.h"
#include "src/util/thread_pool.h"

namespace dseq {
namespace {

struct SequenceHash {
  size_t operator()(const Sequence& s) const {
    size_t h = 1469598103934665603ULL;
    for (ItemId w : s) h = (h ^ w) * 1099511628211ULL;
    return h;
  }
};

using CountMap = std::unordered_map<Sequence, uint64_t, SequenceHash>;

}  // namespace

MiningResult MineDesqCount(const std::vector<Sequence>& db, const Fst& fst,
                           const Dictionary& dict,
                           const DesqCountOptions& options) {
  GridOptions grid_options;
  grid_options.prune_sigma = options.sigma;
  int workers = std::max(1, options.num_workers);

  std::vector<CountMap> partial(workers);
  ParallelShards(db.size(), workers, [&](int w, size_t begin, size_t end) {
    CountMap& counts = partial[w];
    std::vector<Sequence> candidates;
    for (size_t s = begin; s < end; ++s) {
      StateGrid grid = StateGrid::Build(db[s], fst, dict, grid_options);
      if (!grid.HasAcceptingRun()) continue;
      if (!EnumerateCandidates(grid, options.candidates_per_sequence_budget,
                               &candidates)) {
        throw MiningBudgetError(
            "DESQ-COUNT: candidate budget exceeded for one sequence");
      }
      for (const Sequence& c : candidates) counts[c] += 1;
    }
  });

  CountMap& total = partial[0];
  for (int w = 1; w < workers; ++w) {
    for (auto& [pattern, count] : partial[w]) total[pattern] += count;
    partial[w].clear();
  }

  MiningResult result;
  for (auto& [pattern, count] : total) {
    if (count >= options.sigma) {
      result.push_back(PatternCount{pattern, count});
    }
  }
  Canonicalize(&result);
  return result;
}

}  // namespace dseq
