// Pivot search (paper Sec. V-A).
//
// The pivot item of a subsequence S is its maximum item w.r.t. the total
// order `<` (= its least frequent item = max fid). K(T) is the set of pivot
// items over all candidate subsequences Gσπ(T); D-SEQ sends (rewritten)
// copies of T to exactly the partitions K(T).
//
// This module implements:
//  * the commutative/associative "pivot merge" ⊕ on output sets (Theorem 1),
//  * the forward DP K(i,q) and backward DP B(i,q) over the position–state
//    grid (linear in |T| for a fixed FST),
//  * a no-grid variant that naively folds ⊕ over every accepting run
//    (exponential; kept for the Fig. 10a ablation).
#ifndef DSEQ_CORE_PIVOT_H_
#define DSEQ_CORE_PIVOT_H_

#include <cstdint>
#include <vector>

#include "src/core/grid.h"
#include "src/util/common.h"

namespace dseq {

/// A set of items plus an optional ε element; ε is smaller than every item.
/// Item vectors are sorted ascending and duplicate-free.
struct PivotSet {
  bool has_eps = false;
  Sequence items;

  bool IsEmpty() const { return !has_eps && items.empty(); }

  static PivotSet Eps() { return PivotSet{true, {}}; }
  static PivotSet Items(Sequence sorted_items) {
    return PivotSet{false, std::move(sorted_items)};
  }

  /// Set union (not ⊕). Used to combine pivot sets of alternative runs.
  void UnionWith(const PivotSet& other);

  bool operator==(const PivotSet& o) const {
    return has_eps == o.has_eps && items == o.items;
  }
};

/// The paper's pivot merge: U ⊕ Q = {ω∈U | ω ≥ min Q} ∪ {ω∈Q | ω ≥ min U}.
/// If either side is empty (no ε, no items), the result is empty.
PivotSet PivotMerge(const PivotSet& u, const PivotSet& q);

/// Theorem 1: pivots of a run given its output sets (empty vector = ε).
/// Folds ⊕ left to right starting from {ε}.
PivotSet PivotsOfOutputSets(const std::vector<Sequence>& output_sets);

/// Forward DP table K(i,q): pivot items of the partial accepting runs whose
/// i-th transition ends in q. Indexed i * grid.num_states() + q. Coordinates
/// not on an accepting path have empty sets.
std::vector<PivotSet> ComputeForwardPivots(const StateGrid& grid);

/// Backward DP table B(i,q): pivot items of run *suffixes* starting at (i,q).
std::vector<PivotSet> ComputeBackwardPivots(const StateGrid& grid);

/// K(T): all pivot items of the grid's candidate subsequences, sorted
/// ascending. Assumes the grid was built with the desired σ pruning.
Sequence FindPivotItems(const StateGrid& grid);

/// Ablation variant (Fig. 10a, "no grid"): enumerates accepting runs by raw
/// DFS over the FST (exploring dead ends, no memoization) and folds ⊕ per
/// run. Infrequent items (doc freq < sigma) are pruned from output sets when
/// sigma > 0. Returns false if more than `max_steps` simulation steps were
/// taken (guard against exponential blow-up); `*pivots` is then incomplete.
bool FindPivotItemsNoGrid(const Sequence& T, const Fst& fst,
                          const Dictionary& dict, uint64_t sigma,
                          uint64_t max_steps, Sequence* pivots);

}  // namespace dseq

#endif  // DSEQ_CORE_PIVOT_H_
