// Pivot search (paper Sec. V-A).
//
// The pivot item of a subsequence S is its maximum item w.r.t. the total
// order `<` (= its least frequent item = max fid). K(T) is the set of pivot
// items over all candidate subsequences Gσπ(T); D-SEQ sends (rewritten)
// copies of T to exactly the partitions K(T).
//
// This module implements:
//  * the commutative/associative "pivot merge" ⊕ on output sets (Theorem 1),
//  * the forward DP K(i,q) and backward DP B(i,q) over the position–state
//    grid (linear in |T| for a fixed FST),
//  * a no-grid variant that naively folds ⊕ over every accepting run
//    (exponential; kept for the Fig. 10a ablation).
#ifndef DSEQ_CORE_PIVOT_H_
#define DSEQ_CORE_PIVOT_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <ostream>
#include <vector>

#include "src/core/grid.h"
#include "src/util/common.h"

namespace dseq {

/// Small-vector of item ids with inline storage for up to 8 items — the
/// hot value type of the pivot DP tables. Output sets are tiny in practice
/// (most positions produce at most a handful of pivot candidates), so the
/// DP's per-coordinate PivotMerge/UnionWith stay allocation-free; only the
/// rare larger set spills to the heap. Always sorted ascending and
/// duplicate-free when used inside a PivotSet.
class PivotItemVec {
 public:
  static constexpr size_t kInlineCapacity = 8;

  using value_type = ItemId;
  using iterator = ItemId*;
  using const_iterator = const ItemId*;

  PivotItemVec() = default;
  PivotItemVec(std::initializer_list<ItemId> items) {
    Append(items.begin(), items.end());
  }
  /// Converting constructor from a plain Sequence (copies the items).
  PivotItemVec(const Sequence& items) {  // NOLINT: implicit by design
    Append(items.data(), items.data() + items.size());
  }

  PivotItemVec(const PivotItemVec& other) { Append(other.begin(), other.end()); }
  PivotItemVec(PivotItemVec&& other) noexcept { MoveFrom(other); }
  PivotItemVec& operator=(const PivotItemVec& other) {
    if (this != &other) {
      clear();
      Append(other.begin(), other.end());
    }
    return *this;
  }
  PivotItemVec& operator=(PivotItemVec&& other) noexcept {
    if (this != &other) {
      FreeHeap();
      MoveFrom(other);
    }
    return *this;
  }
  ~PivotItemVec() { FreeHeap(); }

  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }
  bool is_inline() const { return data_ == inline_; }

  ItemId& operator[](size_t i) { return data_[i]; }
  ItemId operator[](size_t i) const { return data_[i]; }
  ItemId front() const { return data_[0]; }
  ItemId back() const { return data_[size_ - 1]; }

  void clear() { size_ = 0; }

  void reserve(size_t n) {
    if (n > capacity_) Grow(n);
  }

  void push_back(ItemId w) {
    if (size_ == capacity_) Grow(size_ + 1);
    data_[size_++] = w;
  }

  /// Appends [first, last). Pivot sets are built in sorted order, so
  /// end-append is the only bulk insertion this type offers (no positional
  /// insert — it would invite silently unsorted sets).
  template <typename It>
  void Append(It first, It last) {
    size_t n = static_cast<size_t>(std::distance(first, last));
    if (size_ + n > capacity_) Grow(size_ + n);
    std::copy(first, last, data_ + size_);
    size_ += n;
  }

  iterator erase(iterator first, iterator last) {
    std::copy(last, end(), first);
    size_ -= static_cast<size_t>(last - first);
    return first;
  }

  Sequence ToSequence() const { return Sequence(begin(), end()); }

  friend bool operator==(const PivotItemVec& a, const PivotItemVec& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  friend bool operator!=(const PivotItemVec& a, const PivotItemVec& b) {
    return !(a == b);
  }
  friend bool operator==(const PivotItemVec& a, const Sequence& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  friend bool operator==(const Sequence& a, const PivotItemVec& b) {
    return b == a;
  }
  friend bool operator!=(const PivotItemVec& a, const Sequence& b) {
    return !(a == b);
  }
  friend bool operator!=(const Sequence& a, const PivotItemVec& b) {
    return !(b == a);
  }

  friend std::ostream& operator<<(std::ostream& os, const PivotItemVec& v) {
    os << '[';
    for (size_t i = 0; i < v.size(); ++i) {
      if (i > 0) os << ' ';
      os << v[i];
    }
    return os << ']';
  }

 private:
  void Grow(size_t min_capacity) {
    size_t new_capacity = capacity_ * 2;
    if (new_capacity < min_capacity) new_capacity = min_capacity;
    // This *is* the owning RAII type: the small-vector's heap storage,
    // paired with FreeHeap() below. dseq-lint: allow(naked-new)
    ItemId* heap = new ItemId[new_capacity];
    std::memcpy(heap, data_, size_ * sizeof(ItemId));
    FreeHeap();
    data_ = heap;
    capacity_ = new_capacity;
  }

  void FreeHeap() {
    // dseq-lint: allow(naked-new)
    if (data_ != inline_) delete[] data_;
  }

  // Steals `other`'s heap buffer (or copies its inline items) and leaves it
  // empty-inline. Assumes *this holds no heap buffer.
  void MoveFrom(PivotItemVec& other) {
    if (other.is_inline()) {
      data_ = inline_;
      capacity_ = kInlineCapacity;
      size_ = other.size_;
      std::memcpy(inline_, other.inline_, size_ * sizeof(ItemId));
    } else {
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
    }
    other.data_ = other.inline_;
    other.capacity_ = kInlineCapacity;
    other.size_ = 0;
  }

  ItemId inline_[kInlineCapacity];
  ItemId* data_ = inline_;
  uint32_t size_ = 0;
  uint32_t capacity_ = kInlineCapacity;
};

/// A set of items plus an optional ε element; ε is smaller than every item.
/// Item vectors are sorted ascending and duplicate-free.
struct PivotSet {
  bool has_eps = false;
  PivotItemVec items;

  bool IsEmpty() const { return !has_eps && items.empty(); }

  static PivotSet Eps() { return PivotSet{true, {}}; }
  static PivotSet Items(PivotItemVec sorted_items) {
    return PivotSet{false, std::move(sorted_items)};
  }

  /// Set union (not ⊕). Used to combine pivot sets of alternative runs.
  void UnionWith(const PivotSet& other);

  bool operator==(const PivotSet& o) const {
    return has_eps == o.has_eps && items == o.items;
  }
};

/// The paper's pivot merge: U ⊕ Q = {ω∈U | ω ≥ min Q} ∪ {ω∈Q | ω ≥ min U}.
/// If either side is empty (no ε, no items), the result is empty.
PivotSet PivotMerge(const PivotSet& u, const PivotSet& q);

/// Theorem 1: pivots of a run given its output sets (empty vector = ε).
/// Folds ⊕ left to right starting from {ε}.
PivotSet PivotsOfOutputSets(const std::vector<Sequence>& output_sets);

/// Forward DP table K(i,q): pivot items of the partial accepting runs whose
/// i-th transition ends in q. Indexed i * grid.num_states() + q. Coordinates
/// not on an accepting path have empty sets.
std::vector<PivotSet> ComputeForwardPivots(const StateGrid& grid);

/// Backward DP table B(i,q): pivot items of run *suffixes* starting at (i,q).
std::vector<PivotSet> ComputeBackwardPivots(const StateGrid& grid);

/// K(T): all pivot items of the grid's candidate subsequences, sorted
/// ascending. Assumes the grid was built with the desired σ pruning.
Sequence FindPivotItems(const StateGrid& grid);

/// Ablation variant (Fig. 10a, "no grid"): enumerates accepting runs by raw
/// DFS over the FST (exploring dead ends, no memoization) and folds ⊕ per
/// run. Infrequent items (doc freq < sigma) are pruned from output sets when
/// sigma > 0. Returns false if more than `max_steps` simulation steps were
/// taken (guard against exponential blow-up); `*pivots` is then incomplete.
bool FindPivotItemsNoGrid(const Sequence& T, const Fst& fst,
                          const Dictionary& dict, uint64_t sigma,
                          uint64_t max_steps, Sequence* pivots);

}  // namespace dseq

#endif  // DSEQ_CORE_PIVOT_H_
