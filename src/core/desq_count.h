// DESQ-COUNT: sequential mining by candidate counting (Beedkar & Gemulla,
// ICDM'16).
//
// For each input sequence, enumerates the distinct σ-filtered candidate
// subsequences Gσπ(T) and counts them in a hash table. Efficient for
// *selective* predicates (few candidates per sequence); DESQ-DFS is the
// better choice for loose ones. Included as the second sequential baseline
// of the DESQ framework and as an independent oracle for the pattern-growth
// miners.
#ifndef DSEQ_CORE_DESQ_COUNT_H_
#define DSEQ_CORE_DESQ_COUNT_H_

#include <cstdint>

#include "src/core/mining.h"
#include "src/dict/dictionary.h"
#include "src/fst/fst.h"

namespace dseq {

struct DesqCountOptions {
  uint64_t sigma = 1;
  /// Parallelize candidate generation over input shards (counts are merged).
  int num_workers = 1;
  /// Per-sequence enumeration budget; exceeding it throws MiningBudgetError
  /// (candidate explosion — use DESQ-DFS instead).
  uint64_t candidates_per_sequence_budget = 10'000'000;
};

/// Mines all frequent subsequences by candidate counting. Result is
/// canonicalized and identical to MineDesqDfs.
MiningResult MineDesqCount(const std::vector<Sequence>& db, const Fst& fst,
                           const Dictionary& dict,
                           const DesqCountOptions& options);

}  // namespace dseq

#endif  // DSEQ_CORE_DESQ_COUNT_H_
