// Candidate subsequence enumeration over the position–state grid.
//
// Gπ(T) is the union over accepting runs of the Cartesian product of each
// run's output sets (paper Sec. IV). Enumeration is exponential in the worst
// case; it backs the NAIVE/SEMI-NAIVE baselines, the Table IV candidate
// statistics, and brute-force oracles in tests. All entry points take a
// budget and report whether they completed within it.
#ifndef DSEQ_CORE_CANDIDATES_H_
#define DSEQ_CORE_CANDIDATES_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/core/grid.h"
#include "src/util/common.h"

namespace dseq {

/// Enumerates the distinct candidate subsequences of the grid (the empty
/// sequence is excluded). Returns false if more than `budget` raw (pre-dedup)
/// candidates were produced; `*out` is then incomplete. Output is sorted.
bool EnumerateCandidates(const StateGrid& grid, size_t budget,
                         std::vector<Sequence>* out);

/// Invokes `fn` once per accepting run with the run's edges (one per input
/// position). Returns false if more than `max_runs` runs exist (enumeration
/// stops early).
bool ForEachAcceptingRun(
    const StateGrid& grid, uint64_t max_runs,
    const std::function<void(const std::vector<const StateGrid::Edge*>&)>& fn);

/// Number of accepting runs (capped at `max_runs`).
uint64_t CountAcceptingRuns(const StateGrid& grid, uint64_t max_runs);

}  // namespace dseq

#endif  // DSEQ_CORE_CANDIDATES_H_
