#include "src/core/desq_dfs.h"

#include <algorithm>
#include <map>
#include <unordered_set>

namespace dseq {
namespace {

struct Posting {
  uint32_t seq;
  uint32_t pos;
  StateId state;

  bool operator<(const Posting& o) const {
    if (seq != o.seq) return seq < o.seq;
    if (pos != o.pos) return pos < o.pos;
    return state < o.state;
  }
  bool operator==(const Posting& o) const {
    return seq == o.seq && pos == o.pos && state == o.state;
  }
};

class Miner {
 public:
  Miner(const std::vector<StateGrid>& grids,
        const std::vector<uint64_t>* weights, const DesqDfsOptions& options,
        MiningResult* out)
      : grids_(grids), weights_(weights), options_(options), out_(out) {
    eps_accept_.resize(grids.size());
    last_pivot_layer_.assign(grids.size(), -1);
    for (size_t s = 0; s < grids.size(); ++s) {
      const StateGrid& grid = grids[s];
      if (!grid.HasAcceptingRun()) continue;
      eps_accept_[s] = grid.ComputeEpsAcceptTable();
      if (options.pivot != kNoItem && options.early_stop) {
        for (size_t i = 0; i < grid.length(); ++i) {
          for (const auto& e : grid.EdgesAt(i)) {
            if (std::binary_search(e.out.begin(), e.out.end(),
                                   options.pivot)) {
              last_pivot_layer_[s] =
                  std::max(last_pivot_layer_[s], static_cast<int64_t>(i));
            }
          }
        }
      }
    }
  }

  void Run() {
    std::vector<Posting> roots;
    for (size_t s = 0; s < grids_.size(); ++s) {
      if (!grids_[s].HasAcceptingRun()) continue;
      roots.push_back(Posting{static_cast<uint32_t>(s), 0,
                              grids_[s].initial_state()});
    }
    Expand(roots, /*has_pivot=*/false);
  }

 private:
  uint64_t Weight(uint32_t seq) const {
    return weights_ == nullptr ? 1 : (*weights_)[seq];
  }

  // Total weight of distinct sequences with postings: an upper bound on the
  // support of the prefix and all of its extensions.
  uint64_t PotentialSupport(const std::vector<Posting>& postings) const {
    uint64_t total = 0;
    uint32_t prev = UINT32_MAX;
    for (const Posting& p : postings) {
      if (p.seq != prev) {
        total += Weight(p.seq);
        prev = p.seq;
      }
    }
    return total;
  }

  uint64_t Support(const std::vector<Posting>& postings) const {
    uint64_t support = 0;
    uint32_t prev = UINT32_MAX;
    bool counted = false;
    for (const Posting& p : postings) {
      if (p.seq != prev) {
        prev = p.seq;
        counted = false;
      }
      if (counted) continue;
      const StateGrid& grid = grids_[p.seq];
      if (eps_accept_[p.seq][p.pos * grid.num_states() + p.state]) {
        support += Weight(p.seq);
        counted = true;
      }
    }
    return support;
  }

  // Expands the current prefix (postings sorted & deduplicated).
  void Expand(const std::vector<Posting>& postings, bool has_pivot) {
    if (PotentialSupport(postings) < options_.sigma) return;

    if (!prefix_.empty() &&
        (options_.pivot == kNoItem || has_pivot)) {
      uint64_t support = Support(postings);
      if (support >= options_.sigma) {
        out_->push_back(PatternCount{prefix_, support});
      }
    }

    // Build children projected databases. std::map keeps item order
    // deterministic.
    std::map<ItemId, std::vector<Posting>> children;
    std::unordered_set<uint64_t> visited;
    std::vector<std::pair<uint32_t, StateId>> stack;
    for (const Posting& p : postings) {
      const StateGrid& grid = grids_[p.seq];
      size_t ns = grid.num_states();
      // ε-output closure from (p.pos, p.state) within this grid (a DAG, so
      // a visited set gives linear traversal).
      visited.clear();
      stack.clear();
      stack.emplace_back(p.pos, p.state);
      visited.insert((static_cast<uint64_t>(p.seq) << 32) | (p.pos * ns + p.state));
      while (!stack.empty()) {
        auto [pos, state] = stack.back();
        stack.pop_back();
        if (pos >= grid.length()) continue;
        for (const StateGrid::Edge& e : grid.EdgesAt(pos)) {
          if (e.from != state) continue;
          if (e.out.empty()) {
            uint64_t key = (static_cast<uint64_t>(p.seq) << 32) |
                           ((pos + 1) * ns + e.to);
            if (visited.insert(key).second) {
              stack.emplace_back(pos + 1, e.to);
            }
            continue;
          }
          for (ItemId w : e.out) {
            if (options_.pivot != kNoItem && w > options_.pivot) continue;
            bool child_has_pivot = has_pivot || w == options_.pivot;
            if (options_.pivot != kNoItem && options_.early_stop &&
                !child_has_pivot &&
                static_cast<int64_t>(pos) + 1 > last_pivot_layer_[p.seq]) {
              // This sequence can no longer contribute the pivot item to a
              // pivot-free prefix (Sec. V-C early stopping).
              continue;
            }
            children[w].push_back(
                Posting{p.seq, static_cast<uint32_t>(pos + 1), e.to});
          }
        }
      }
    }

    for (auto& [w, child_postings] : children) {
      std::sort(child_postings.begin(), child_postings.end());
      child_postings.erase(
          std::unique(child_postings.begin(), child_postings.end()),
          child_postings.end());
      if (PotentialSupport(child_postings) < options_.sigma) continue;
      prefix_.push_back(w);
      Expand(child_postings, has_pivot || w == options_.pivot);
      prefix_.pop_back();
    }
  }

  const std::vector<StateGrid>& grids_;
  const std::vector<uint64_t>* weights_;
  const DesqDfsOptions& options_;
  MiningResult* out_;
  std::vector<std::vector<uint8_t>> eps_accept_;
  std::vector<int64_t> last_pivot_layer_;
  Sequence prefix_;
};

}  // namespace

MiningResult MineDesqDfsGrids(const std::vector<StateGrid>& grids,
                              const DesqDfsOptions& options) {
  MiningResult result;
  Miner miner(grids, nullptr, options, &result);
  miner.Run();
  Canonicalize(&result);
  return result;
}

MiningResult MineDesqDfsGrids(const std::vector<StateGrid>& grids,
                              const std::vector<uint64_t>& weights,
                              const DesqDfsOptions& options) {
  MiningResult result;
  Miner miner(grids, &weights, options, &result);
  miner.Run();
  Canonicalize(&result);
  return result;
}

MiningResult MineDesqDfs(const std::vector<Sequence>& db, const Fst& fst,
                         const Dictionary& dict,
                         const DesqDfsOptions& options) {
  GridOptions grid_options;
  grid_options.prune_sigma = options.sigma;
  std::vector<StateGrid> grids;
  grids.reserve(db.size());
  uint64_t total_edges = 0;
  for (const Sequence& T : db) {
    grids.push_back(StateGrid::Build(T, fst, dict, grid_options));
    total_edges += grids.back().num_edges();
    if (options.max_total_grid_edges > 0 &&
        total_edges > options.max_total_grid_edges) {
      throw MiningBudgetError("DESQ-DFS grid memory budget exceeded");
    }
  }
  return MineDesqDfsGrids(grids, options);
}

}  // namespace dseq
