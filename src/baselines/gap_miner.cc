#include "src/baselines/gap_miner.h"

#include <algorithm>
#include <map>

namespace dseq {
namespace {

// Frequent "pick items" of an input item: the item and (with hierarchies)
// its ancestors, restricted to frequent items. Sorted ascending.
Sequence FrequentAncestors(ItemId t, const Dictionary& dict, uint64_t sigma,
                           bool use_hierarchy) {
  Sequence result;
  if (use_hierarchy) {
    for (ItemId a : dict.Ancestors(t)) {
      if (dict.DocFrequency(a) >= sigma) result.push_back(a);
    }
  } else if (dict.DocFrequency(t) >= sigma) {
    result.push_back(t);
  }
  return result;
}

// Local pattern-growth miner for one partition (pivot k).
class LocalGapMiner {
 public:
  LocalGapMiner(const std::vector<Sequence>& sequences,
                const Dictionary& dict, const GapMinerOptions& options,
                ItemId pivot, MiningResult* out)
      : options_(options), pivot_(pivot), out_(out) {
    fanc_.resize(sequences.size());
    last_pivot_pos_.assign(sequences.size(), -1);
    for (size_t s = 0; s < sequences.size(); ++s) {
      const Sequence& T = sequences[s];
      fanc_[s].resize(T.size());
      for (size_t p = 0; p < T.size(); ++p) {
        Sequence items = FrequentAncestors(T[p], dict, options.sigma,
                                           options.use_hierarchy);
        // Items above the pivot can only produce larger pivots.
        items.erase(std::upper_bound(items.begin(), items.end(), pivot),
                    items.end());
        if (std::binary_search(items.begin(), items.end(), pivot)) {
          last_pivot_pos_[s] = static_cast<int64_t>(p);
        }
        fanc_[s][p] = std::move(items);
      }
    }
  }

  void Run() {
    // Root: first pick may be anywhere.
    std::vector<Posting> roots;
    for (uint32_t s = 0; s < fanc_.size(); ++s) {
      if (last_pivot_pos_[s] >= 0) {
        roots.push_back(Posting{s, UINT32_MAX});  // sentinel: no pick yet
      }
    }
    Expand(roots, /*has_pivot=*/false);
  }

 private:
  struct Posting {
    uint32_t seq;
    uint32_t last_pos;  // UINT32_MAX at the root (no position picked yet)

    bool operator<(const Posting& o) const {
      if (seq != o.seq) return seq < o.seq;
      return last_pos < o.last_pos;
    }
    bool operator==(const Posting& o) const {
      return seq == o.seq && last_pos == o.last_pos;
    }
  };

  static size_t DistinctSequences(const std::vector<Posting>& postings) {
    size_t count = 0;
    uint32_t prev = UINT32_MAX;
    for (const Posting& p : postings) {
      if (p.seq != prev) {
        ++count;
        prev = p.seq;
      }
    }
    return count;
  }

  void Expand(const std::vector<Posting>& postings, bool has_pivot) {
    size_t distinct = DistinctSequences(postings);
    if (distinct < options_.sigma) return;
    if (has_pivot && prefix_.size() >= options_.min_length) {
      out_->push_back(PatternCount{prefix_, distinct});
    }
    if (prefix_.size() >= options_.lambda) return;

    std::map<ItemId, std::vector<Posting>> children;
    for (const Posting& p : postings) {
      const auto& fanc = fanc_[p.seq];
      size_t begin = p.last_pos == UINT32_MAX ? 0 : p.last_pos + 1;
      size_t end = p.last_pos == UINT32_MAX
                       ? fanc.size()
                       : std::min<size_t>(fanc.size(),
                                          p.last_pos + 1 + options_.gamma + 1);
      for (size_t j = begin; j < end; ++j) {
        for (ItemId w : fanc[j]) {
          bool child_has_pivot = has_pivot || w == pivot_;
          if (!child_has_pivot &&
              static_cast<int64_t>(j) >= last_pivot_pos_[p.seq]) {
            // Early stopping: the pivot can no longer be picked after j.
            continue;
          }
          children[w].push_back(Posting{p.seq, static_cast<uint32_t>(j)});
        }
      }
    }
    for (auto& [w, child] : children) {
      std::sort(child.begin(), child.end());
      child.erase(std::unique(child.begin(), child.end()), child.end());
      prefix_.push_back(w);
      Expand(child, has_pivot || w == pivot_);
      prefix_.pop_back();
    }
  }

  const GapMinerOptions& options_;
  ItemId pivot_;
  MiningResult* out_;
  std::vector<std::vector<Sequence>> fanc_;
  std::vector<int64_t> last_pivot_pos_;
  Sequence prefix_;
};

}  // namespace

DistributedResult MineGapConstrained(const std::vector<Sequence>& db,
                                     const Dictionary& dict,
                                     const GapMinerOptions& options) {
  uint32_t reach = (options.gamma + 1) * (options.lambda - 1);

  MapFn map_fn = [&](size_t index, const EmitFn& emit) {
    const Sequence& T = db[index];
    size_t n = T.size();
    if (n == 0) return;
    std::vector<Sequence> fanc(n);
    for (size_t p = 0; p < n; ++p) {
      fanc[p] = FrequentAncestors(T[p], dict, options.sigma,
                                  options.use_hierarchy);
    }
    // Pivot items: k is a pivot iff some position can pick k and another
    // position within gap reach can pick an item <= k (exact for
    // min_length == 2; a superset otherwise, which only costs shuffle).
    std::map<ItemId, std::pair<size_t, size_t>> pivot_spans;  // k -> [lo, hi]
    for (size_t p = 0; p < n; ++p) {
      for (ItemId k : fanc[p]) {
        // Length-1 candidates have no partner requirement.
        bool partner = options.min_length <= 1;
        size_t lo = p > options.gamma ? p - options.gamma - 1 : 0;
        size_t hi = std::min(n - 1, p + options.gamma + 1);
        for (size_t q = lo; q <= hi && !partner; ++q) {
          if (q == p || fanc[q].empty()) continue;
          if (fanc[q].front() <= k) partner = true;
        }
        if (!partner) continue;
        auto [it, inserted] = pivot_spans.emplace(k, std::make_pair(p, p));
        if (!inserted) {
          it->second.first = std::min(it->second.first, p);
          it->second.second = std::max(it->second.second, p);
        }
      }
    }
    // Rewritten sequence for pivot k: the window around k-producing
    // positions that any candidate containing k can reach.
    for (const auto& [k, span] : pivot_spans) {
      size_t lo = span.first > reach ? span.first - reach : 0;
      size_t hi = std::min(n - 1, span.second + reach);
      std::string value;
      PutSequence(&value, Sequence(T.begin() + lo, T.begin() + hi + 1));
      emit(EncodePivotKey(k), std::move(value));
    }
  };

  PartitionReduceFn reduce_fn = [&](std::string_view key,
                                    std::vector<std::string_view>& values,
                                    MiningResult& out) {
    ItemId pivot = DecodePivotKey(key);
    std::vector<Sequence> sequences;
    sequences.reserve(values.size());
    Sequence seq;
    for (std::string_view v : values) {
      size_t pos = 0;
      GetSequence(v, &pos, &seq);
      sequences.push_back(seq);
    }
    MiningResult local;
    LocalGapMiner miner(sequences, dict, options, pivot, &local);
    miner.Run();
    out.insert(out.end(), std::make_move_iterator(local.begin()),
               std::make_move_iterator(local.end()));
  };

  return RunDistributedMining(db.size(), map_fn, nullptr, reduce_fn, options);
}

}  // namespace dseq
