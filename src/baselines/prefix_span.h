// PrefixSpan baseline (the paper's "MLlib setting", Fig. 13).
//
// Classic PrefixSpan semantics: distinct subsequences with arbitrary gaps,
// no hierarchy, maximum length lambda — the paper's T1(σ, λ) constraint.
// Distributed with prefix-based partitioning collapsed to one round: the map
// phase emits, for every frequent item w of T, the projected suffix after
// w's first occurrence; each first-item partition then runs sequential
// PrefixSpan on its projected database.
#ifndef DSEQ_BASELINES_PREFIX_SPAN_H_
#define DSEQ_BASELINES_PREFIX_SPAN_H_

#include "src/dict/dictionary.h"
#include "src/dist/distributed.h"

namespace dseq {

struct PrefixSpanOptions : DistributedRunOptions {
  uint64_t sigma = 1;
  uint32_t lambda = 5;  // max output length
};

/// Runs distributed PrefixSpan. Results agree with MineDesqDfs on the
/// pattern `.*(.)[.*(.)]{0,lambda-1}.*` (paper constraint T1).
DistributedResult MinePrefixSpan(const std::vector<Sequence>& db,
                                 const Dictionary& dict,
                                 const PrefixSpanOptions& options);

/// k-round chained PrefixSpan (the MLlib-style iterative setting): round r
/// shuffles the projected databases of the surviving length-r prefixes, so
/// prefixes grow one shuffle round at a time. Runs at most `lambda` rounds,
/// stopping early once no prefix survives. Patterns are identical to
/// MinePrefixSpan's; the per-round metrics expose what the collapsed
/// single-round baseline avoids shipping. Budgets follow
/// DistributedRunOptions: shuffle_budget_bytes bounds each round,
/// cumulative_shuffle_budget_bytes the whole chain.
ChainedDistributedResult MineChainedPrefixSpan(const std::vector<Sequence>& db,
                                               const Dictionary& dict,
                                               const PrefixSpanOptions& options);

}  // namespace dseq

#endif  // DSEQ_BASELINES_PREFIX_SPAN_H_
