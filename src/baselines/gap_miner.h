// Specialized distributed gap/length miner (LASH / MG-FSM baseline).
//
// Reproduces the constraint class of MG-FSM (max gap, max length) and LASH
// (plus item hierarchies): subsequences of 2..lambda items whose consecutive
// picks are at most `gamma` positions apart in the input, each item
// optionally generalized to any of its ancestors. This is exactly the
// semantics of the paper's T2(σ,γ,λ) and T3(σ,γ,λ) pattern expressions —
// but mined with specialized data structures instead of an FST, which is
// what gives the specialized systems their edge in Fig. 12.
//
// Distribution follows LASH: item-based partitioning, rewritten (trimmed)
// input sequences, pivot-restricted local mining with early stopping.
#ifndef DSEQ_BASELINES_GAP_MINER_H_
#define DSEQ_BASELINES_GAP_MINER_H_

#include "src/dict/dictionary.h"
#include "src/dist/distributed.h"

namespace dseq {

struct GapMinerOptions : DistributedRunOptions {
  uint64_t sigma = 1;
  uint32_t gamma = 0;   // max gap between consecutive picked positions
  uint32_t lambda = 5;  // max output length
  uint32_t min_length = 2;
  bool use_hierarchy = true;  // LASH (T3) if true, MG-FSM (T2) if false
};

/// Runs the specialized miner. Result patterns are canonicalized and agree
/// with MineDesqDfs / MineDSeq on the corresponding T2/T3 pattern.
DistributedResult MineGapConstrained(const std::vector<Sequence>& db,
                                     const Dictionary& dict,
                                     const GapMinerOptions& options);

}  // namespace dseq

#endif  // DSEQ_BASELINES_GAP_MINER_H_
