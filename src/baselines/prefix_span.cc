#include "src/baselines/prefix_span.h"

#include <algorithm>
#include <iterator>
#include <map>
#include <stdexcept>

namespace dseq {
namespace {

// Sequential PrefixSpan over a projected database of suffixes.
class LocalPrefixSpan {
 public:
  LocalPrefixSpan(const std::vector<Sequence>& suffixes, uint64_t sigma,
                  uint32_t remaining, const Sequence& prefix,
                  MiningResult* out)
      : suffixes_(suffixes), sigma_(sigma), out_(out) {
    // Projections reference (suffix index, offset).
    std::vector<std::pair<uint32_t, uint32_t>> projections;
    projections.reserve(suffixes.size());
    for (uint32_t i = 0; i < suffixes.size(); ++i) projections.emplace_back(i, 0);
    prefix_ = prefix;
    Grow(projections, remaining);
  }

 private:
  void Grow(const std::vector<std::pair<uint32_t, uint32_t>>& projections,
            uint32_t remaining) {
    if (remaining == 0) return;
    // Count the distinct-sequence frequency of every item in the projected
    // database and record its first occurrence per sequence.
    std::map<ItemId, std::vector<std::pair<uint32_t, uint32_t>>> extensions;
    for (const auto& [seq, offset] : projections) {
      const Sequence& T = suffixes_[seq];
      // First occurrence of each item in T[offset..].
      std::map<ItemId, uint32_t> first;
      for (uint32_t j = offset; j < T.size(); ++j) {
        first.emplace(T[j], j);
      }
      for (const auto& [w, j] : first) {
        extensions[w].emplace_back(seq, j + 1);
      }
    }
    for (auto& [w, projected] : extensions) {
      if (projected.size() < sigma_) continue;
      prefix_.push_back(w);
      out_->push_back(PatternCount{prefix_, projected.size()});
      Grow(projected, remaining - 1);
      prefix_.pop_back();
    }
  }

  const std::vector<Sequence>& suffixes_;
  uint64_t sigma_;
  MiningResult* out_;
  Sequence prefix_;
};

}  // namespace

DistributedResult MinePrefixSpan(const std::vector<Sequence>& db,
                                 const Dictionary& dict,
                                 const PrefixSpanOptions& options) {
  // lambda bounds the output length; 0 admits no pattern at all (and would
  // otherwise underflow the `lambda - 1` recursion depth below).
  if (options.lambda == 0) return {};

  MapFn map_fn = [&](size_t index, const EmitFn& emit) {
    const Sequence& T = db[index];
    // First occurrence of each frequent item; emit the projected suffix.
    std::map<ItemId, uint32_t> first;
    for (uint32_t j = 0; j < T.size(); ++j) {
      if (dict.DocFrequency(T[j]) < options.sigma) continue;
      first.emplace(T[j], j);
    }
    for (const auto& [w, j] : first) {
      std::string value;
      PutSequence(&value, Sequence(T.begin() + j + 1, T.end()));
      emit(EncodePivotKey(w), std::move(value));
    }
  };

  PartitionReduceFn reduce_fn = [&](std::string_view key,
                                    std::vector<std::string_view>& values,
                                    MiningResult& out) {
    ItemId w = DecodePivotKey(key);
    if (values.size() < options.sigma) return;
    out.push_back(PatternCount{Sequence{w}, values.size()});
    std::vector<Sequence> suffixes;
    suffixes.reserve(values.size());
    Sequence seq;
    for (std::string_view v : values) {
      size_t pos = 0;
      GetSequence(v, &pos, &seq);
      suffixes.push_back(seq);
    }
    LocalPrefixSpan(suffixes, options.sigma, options.lambda - 1, Sequence{w},
                    &out);
  };

  return RunDistributedMining(db.size(), map_fn, nullptr, reduce_fn, options);
}

ChainedDistributedResult MineChainedPrefixSpan(
    const std::vector<Sequence>& db, const Dictionary& dict,
    const PrefixSpanOptions& options) {
  if (options.lambda == 0) return {};  // as in MinePrefixSpan

  DataflowJob job(MakeChainedOptions(options));
  const uint64_t sigma = options.sigma;
  const uint32_t lambda = options.lambda;

  // Shared reduce of every round r: key = serialized length-r prefix, values
  // = the projected suffixes of the input sequences supporting it. Surviving
  // prefixes are output and, below lambda, extended by one item: the
  // extension records are next round's map input.
  //
  // Both outputs leave the reduce as boundary records (the only channel that
  // survives the proc backend's forked reducers), distinguished by a
  // one-byte tag: 'P' = mined pattern, 'E' = extension. The driver strips
  // the tag before extensions re-enter a shuffle, so round metrics are
  // unchanged by the tagging.
  ChainReduceFn reduce_fn = [sigma, lambda](
                                int /*worker*/, std::string_view key,
                                std::vector<std::string_view>& values,
                                const EmitFn& emit) {
    if (values.size() < sigma) return;
    size_t pos = 0;
    Sequence prefix;
    if (!GetSequence(key, &pos, &prefix) || pos != key.size()) {
      throw std::invalid_argument("malformed chained PrefixSpan prefix key");
    }
    std::string pattern_key(1, 'P');
    pattern_key.append(key);
    std::string pattern_value;
    PutVarint(&pattern_value, values.size());
    emit(pattern_key, pattern_value);
    if (prefix.size() >= lambda) return;

    Sequence extended = prefix;
    extended.push_back(kNoItem);
    Sequence suffix;
    for (std::string_view v : values) {
      size_t vpos = 0;
      if (!GetSequence(v, &vpos, &suffix) || vpos != v.size()) {
        throw std::invalid_argument("malformed chained PrefixSpan suffix");
      }
      // First occurrence of each item in the projected suffix (exactly
      // LocalPrefixSpan::Grow's projection step).
      std::map<ItemId, uint32_t> first;
      for (uint32_t j = 0; j < suffix.size(); ++j) first.emplace(suffix[j], j);
      for (const auto& [w, j] : first) {
        extended.back() = w;
        std::string next_key(1, 'E');
        PutSequence(&next_key, extended);
        std::string next_value;
        PutSequence(&next_value,
                    Sequence(suffix.begin() + j + 1, suffix.end()));
        emit(std::move(next_key), std::move(next_value));
      }
    }
  };

  // Round 1: seed with the singleton prefixes of frequent items, one
  // projected suffix per (sequence, item) first occurrence — the same map
  // phase as the collapsed baseline, keyed by serialized prefix.
  MapFn seed_map = [&db, &dict, sigma](size_t index, const EmitFn& emit) {
    const Sequence& T = db[index];
    std::map<ItemId, uint32_t> first;
    for (uint32_t j = 0; j < T.size(); ++j) {
      if (dict.DocFrequency(T[j]) < sigma) continue;
      first.emplace(T[j], j);
    }
    for (const auto& [w, j] : first) {
      std::string key;
      PutSequence(&key, Sequence{w});
      std::string value;
      PutSequence(&value, Sequence(T.begin() + j + 1, T.end()));
      emit(std::move(key), std::move(value));
    }
  };
  job.RunRound(db.size(), seed_map, nullptr, reduce_fn);

  // Partitions a round's boundary records: patterns accumulate into
  // `patterns`, extensions (tag stripped, emission order preserved — the
  // record order the pre-tagging driver re-shuffled) become the next
  // round's map input.
  MiningResult patterns;
  std::vector<Record> extensions;
  auto harvest = [&] {
    extensions.clear();
    for (Record& record : job.TakeRecords()) {
      if (record.key.empty() ||
          (record.key[0] != 'P' && record.key[0] != 'E')) {
        throw std::invalid_argument("malformed chained PrefixSpan record tag");
      }
      const char tag = record.key[0];
      record.key.erase(0, 1);
      if (tag == 'E') {
        extensions.push_back(std::move(record));
        continue;
      }
      PatternCount mined;
      size_t pos = 0;
      if (!GetSequence(record.key, &pos, &mined.pattern) ||
          pos != record.key.size()) {
        throw std::invalid_argument("malformed chained PrefixSpan pattern");
      }
      pos = 0;
      if (!GetVarint(record.value, &pos, &mined.frequency) ||
          pos != record.value.size()) {
        throw std::invalid_argument("malformed chained PrefixSpan support");
      }
      patterns.push_back(std::move(mined));
    }
  };
  harvest();

  // Rounds 2..lambda: the identity map re-shuffles each extension record to
  // the reducer owning its grown prefix.
  while (!extensions.empty()) {
    MapFn repartition = [&extensions](size_t index, const EmitFn& emit) {
      emit(extensions[index].key, extensions[index].value);
    };
    job.RunRound(extensions.size(), repartition, nullptr, reduce_fn);
    harvest();
  }

  Canonicalize(&patterns);
  return MakeChainedResult(std::move(patterns), job);
}

}  // namespace dseq
