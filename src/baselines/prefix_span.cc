#include "src/baselines/prefix_span.h"

#include <algorithm>
#include <map>

namespace dseq {
namespace {

// Sequential PrefixSpan over a projected database of suffixes.
class LocalPrefixSpan {
 public:
  LocalPrefixSpan(const std::vector<Sequence>& suffixes, uint64_t sigma,
                  uint32_t remaining, const Sequence& prefix,
                  MiningResult* out)
      : suffixes_(suffixes), sigma_(sigma), out_(out) {
    // Projections reference (suffix index, offset).
    std::vector<std::pair<uint32_t, uint32_t>> projections;
    projections.reserve(suffixes.size());
    for (uint32_t i = 0; i < suffixes.size(); ++i) projections.emplace_back(i, 0);
    prefix_ = prefix;
    Grow(projections, remaining);
  }

 private:
  void Grow(const std::vector<std::pair<uint32_t, uint32_t>>& projections,
            uint32_t remaining) {
    if (remaining == 0) return;
    // Count the distinct-sequence frequency of every item in the projected
    // database and record its first occurrence per sequence.
    std::map<ItemId, std::vector<std::pair<uint32_t, uint32_t>>> extensions;
    for (const auto& [seq, offset] : projections) {
      const Sequence& T = suffixes_[seq];
      // First occurrence of each item in T[offset..].
      std::map<ItemId, uint32_t> first;
      for (uint32_t j = offset; j < T.size(); ++j) {
        first.emplace(T[j], j);
      }
      for (const auto& [w, j] : first) {
        extensions[w].emplace_back(seq, j + 1);
      }
    }
    for (auto& [w, projected] : extensions) {
      if (projected.size() < sigma_) continue;
      prefix_.push_back(w);
      out_->push_back(PatternCount{prefix_, projected.size()});
      Grow(projected, remaining - 1);
      prefix_.pop_back();
    }
  }

  const std::vector<Sequence>& suffixes_;
  uint64_t sigma_;
  MiningResult* out_;
  Sequence prefix_;
};

}  // namespace

DistributedResult MinePrefixSpan(const std::vector<Sequence>& db,
                                 const Dictionary& dict,
                                 const PrefixSpanOptions& options) {
  MapFn map_fn = [&](size_t index, const EmitFn& emit) {
    const Sequence& T = db[index];
    // First occurrence of each frequent item; emit the projected suffix.
    std::map<ItemId, uint32_t> first;
    for (uint32_t j = 0; j < T.size(); ++j) {
      if (dict.DocFrequency(T[j]) < options.sigma) continue;
      first.emplace(T[j], j);
    }
    for (const auto& [w, j] : first) {
      std::string value;
      PutSequence(&value, Sequence(T.begin() + j + 1, T.end()));
      emit(EncodePivotKey(w), std::move(value));
    }
  };

  PartitionReduceFn reduce_fn = [&](const std::string& key,
                                    std::vector<std::string>& values,
                                    MiningResult& out) {
    ItemId w = DecodePivotKey(key);
    if (values.size() < options.sigma) return;
    out.push_back(PatternCount{Sequence{w}, values.size()});
    std::vector<Sequence> suffixes;
    suffixes.reserve(values.size());
    Sequence seq;
    for (const std::string& v : values) {
      size_t pos = 0;
      GetSequence(v, &pos, &seq);
      suffixes.push_back(seq);
    }
    LocalPrefixSpan(suffixes, options.sigma, options.lambda - 1, Sequence{w},
                    &out);
  };

  return RunDistributedMining(db.size(), map_fn, nullptr, reduce_fn, options);
}

}  // namespace dseq
