// Pattern expression AST (paper Sec. II, "Pattern expression language").
//
// Pattern expressions extend regular expressions with capture groups,
// hierarchies, and generalizations:
//
//   atom        := '.' | '.^' | item | item '=' | item '^' | item '^='
//   grouping    := '[' expr ']'        (plain group)
//                | '(' expr ')'        (capture group: matched items are
//                                       *output*; outside captures, matched
//                                       items produce no output)
//   postfix     := '*' | '+' | '?' | '{n}' | '{n,}' | '{,m}' | '{n,m}'
//   concatenation by juxtaposition, alternation with '|'
//
// '^' renders the paper's ↑ (generalization), '=' forbids descendants:
//   w    matches any descendant of w (incl. w);   captured output: matched item
//   w=   matches exactly w;                       captured output: w
//   w^   matches any descendant of w;             captured output: all
//        generalizations of the matched item up to w (anc(t) ∩ desc(w))
//   w^=  matches any descendant of w;             captured output: w
//   .    matches any item;                        captured output: matched item
//   .^   matches any item;                        captured output: anc(t)
#ifndef DSEQ_PATEX_PATEX_H_
#define DSEQ_PATEX_PATEX_H_

#include <memory>
#include <string>
#include <vector>

namespace dseq {

/// A node of the pattern expression AST.
struct PatEx {
  enum class Kind {
    kItem,      // leaf: named item (fields item, generalize, exact)
    kDot,       // leaf: '.' or '.^' (field generalize)
    kConcat,    // children in order
    kAlt,       // children are alternatives
    kRepeat,    // children[0] repeated min_rep..max_rep times (max_rep = -1
                // for unbounded); covers * + ? {n} {n,} {n,m} {,m}
    kCapture,   // children[0] with output enabled
  };

  Kind kind;
  std::string item;          // kItem only
  bool generalize = false;   // kItem / kDot: '^' present
  bool exact = false;        // kItem: '=' present
  int min_rep = 0;           // kRepeat
  int max_rep = -1;          // kRepeat; -1 = unbounded
  std::vector<std::unique_ptr<PatEx>> children;

  static std::unique_ptr<PatEx> Item(std::string name, bool generalize,
                                     bool exact);
  static std::unique_ptr<PatEx> Dot(bool generalize);
  static std::unique_ptr<PatEx> Concat(
      std::vector<std::unique_ptr<PatEx>> children);
  static std::unique_ptr<PatEx> Alt(
      std::vector<std::unique_ptr<PatEx>> children);
  static std::unique_ptr<PatEx> Repeat(std::unique_ptr<PatEx> child,
                                       int min_rep, int max_rep);
  static std::unique_ptr<PatEx> Capture(std::unique_ptr<PatEx> child);

  /// Deep copy (used to expand bounded repetitions during FST compilation).
  std::unique_ptr<PatEx> Clone() const;

  /// Unparses to a canonical string (for debugging and error messages).
  std::string ToString() const;
};

}  // namespace dseq

#endif  // DSEQ_PATEX_PATEX_H_
