#include "src/patex/patex.h"

namespace dseq {

std::unique_ptr<PatEx> PatEx::Item(std::string name, bool generalize,
                                   bool exact) {
  auto node = std::make_unique<PatEx>();
  node->kind = Kind::kItem;
  node->item = std::move(name);
  node->generalize = generalize;
  node->exact = exact;
  return node;
}

std::unique_ptr<PatEx> PatEx::Dot(bool generalize) {
  auto node = std::make_unique<PatEx>();
  node->kind = Kind::kDot;
  node->generalize = generalize;
  return node;
}

std::unique_ptr<PatEx> PatEx::Concat(
    std::vector<std::unique_ptr<PatEx>> children) {
  if (children.size() == 1) return std::move(children[0]);
  auto node = std::make_unique<PatEx>();
  node->kind = Kind::kConcat;
  node->children = std::move(children);
  return node;
}

std::unique_ptr<PatEx> PatEx::Alt(
    std::vector<std::unique_ptr<PatEx>> children) {
  if (children.size() == 1) return std::move(children[0]);
  auto node = std::make_unique<PatEx>();
  node->kind = Kind::kAlt;
  node->children = std::move(children);
  return node;
}

std::unique_ptr<PatEx> PatEx::Repeat(std::unique_ptr<PatEx> child, int min_rep,
                                     int max_rep) {
  auto node = std::make_unique<PatEx>();
  node->kind = Kind::kRepeat;
  node->min_rep = min_rep;
  node->max_rep = max_rep;
  node->children.push_back(std::move(child));
  return node;
}

std::unique_ptr<PatEx> PatEx::Capture(std::unique_ptr<PatEx> child) {
  auto node = std::make_unique<PatEx>();
  node->kind = Kind::kCapture;
  node->children.push_back(std::move(child));
  return node;
}

std::unique_ptr<PatEx> PatEx::Clone() const {
  auto node = std::make_unique<PatEx>();
  node->kind = kind;
  node->item = item;
  node->generalize = generalize;
  node->exact = exact;
  node->min_rep = min_rep;
  node->max_rep = max_rep;
  node->children.reserve(children.size());
  for (const auto& c : children) node->children.push_back(c->Clone());
  return node;
}

std::string PatEx::ToString() const {
  switch (kind) {
    case Kind::kItem:
      return item + (generalize ? "^" : "") + (exact ? "=" : "");
    case Kind::kDot:
      return generalize ? ".^" : ".";
    case Kind::kConcat: {
      std::string out;
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ' ';
        out += children[i]->ToString();
      }
      return "[" + out + "]";
    }
    case Kind::kAlt: {
      std::string out;
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += '|';
        out += children[i]->ToString();
      }
      return "[" + out + "]";
    }
    case Kind::kRepeat: {
      std::string base = children[0]->ToString();
      if (min_rep == 0 && max_rep == -1) return base + "*";
      if (min_rep == 1 && max_rep == -1) return base + "+";
      if (min_rep == 0 && max_rep == 1) return base + "?";
      std::string out = base + "{" + std::to_string(min_rep);
      if (max_rep == -1) {
        out += ",}";
      } else if (max_rep == min_rep) {
        out += "}";
      } else {
        out += "," + std::to_string(max_rep) + "}";
      }
      return out;
    }
    case Kind::kCapture:
      return "(" + children[0]->ToString() + ")";
  }
  return "?";
}

}  // namespace dseq
