#include "src/patex/parser.h"

#include <cctype>
#include <vector>

namespace dseq {
namespace {

bool IsItemChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '@' ||
         c == '&' || c == '\'' || c == ':' || c == '/' || c == '-' || c == '#';
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::unique_ptr<PatEx> Parse() {
    auto expr = ParseAlt();
    SkipSpace();
    if (pos_ != text_.size()) {
      throw PatexParseError("unexpected trailing input", pos_);
    }
    return expr;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  char Peek() {
    SkipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void Expect(char c) {
    if (Peek() != c) {
      throw PatexParseError(std::string("expected '") + c + "'", pos_);
    }
    ++pos_;
  }

  std::unique_ptr<PatEx> ParseAlt() {
    std::vector<std::unique_ptr<PatEx>> alts;
    alts.push_back(ParseConcat());
    while (Peek() == '|') {
      ++pos_;
      alts.push_back(ParseConcat());
    }
    return PatEx::Alt(std::move(alts));
  }

  std::unique_ptr<PatEx> ParseConcat() {
    std::vector<std::unique_ptr<PatEx>> parts;
    while (true) {
      char c = Peek();
      if (c == '\0' || c == '|' || c == ']' || c == ')') break;
      parts.push_back(ParseUnary());
    }
    if (parts.empty()) {
      throw PatexParseError("empty expression", pos_);
    }
    return PatEx::Concat(std::move(parts));
  }

  std::unique_ptr<PatEx> ParseUnary() {
    auto atom = ParseAtom();
    while (true) {
      char c = Peek();
      if (c == '*') {
        ++pos_;
        atom = PatEx::Repeat(std::move(atom), 0, -1);
      } else if (c == '+') {
        ++pos_;
        atom = PatEx::Repeat(std::move(atom), 1, -1);
      } else if (c == '?') {
        ++pos_;
        atom = PatEx::Repeat(std::move(atom), 0, 1);
      } else if (c == '{') {
        ++pos_;
        atom = ParseBoundSuffix(std::move(atom));
      } else {
        break;
      }
    }
    return atom;
  }

  // Parses the inside of '{...}' after the opening brace was consumed.
  std::unique_ptr<PatEx> ParseBoundSuffix(std::unique_ptr<PatEx> atom) {
    int min_rep = 0;
    int max_rep = -1;
    bool has_min = false;
    if (std::isdigit(static_cast<unsigned char>(Peek()))) {
      min_rep = ParseNumber();
      has_min = true;
    }
    if (Peek() == ',') {
      ++pos_;
      if (std::isdigit(static_cast<unsigned char>(Peek()))) {
        max_rep = ParseNumber();
      }  // else unbounded: {n,} or {,}
    } else {
      if (!has_min) {
        throw PatexParseError("expected number in '{...}'", pos_);
      }
      max_rep = min_rep;  // {n}
    }
    Expect('}');
    if (max_rep != -1 && max_rep < min_rep) {
      throw PatexParseError("repetition bound {n,m} requires n <= m", pos_);
    }
    return PatEx::Repeat(std::move(atom), min_rep, max_rep);
  }

  int ParseNumber() {
    SkipSpace();
    size_t start = pos_;
    long value = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      value = value * 10 + (text_[pos_] - '0');
      if (value > 1'000'000) {
        throw PatexParseError("repetition bound too large", start);
      }
      ++pos_;
    }
    if (pos_ == start) throw PatexParseError("expected number", pos_);
    return static_cast<int>(value);
  }

  std::unique_ptr<PatEx> ParseAtom() {
    char c = Peek();
    if (c == '[') {
      ++pos_;
      auto inner = ParseAlt();
      Expect(']');
      return inner;
    }
    if (c == '(') {
      ++pos_;
      auto inner = ParseAlt();
      Expect(')');
      return PatEx::Capture(std::move(inner));
    }
    if (c == '.') {
      ++pos_;
      bool gen = false;
      if (pos_ < text_.size() && text_[pos_] == '^') {
        gen = true;
        ++pos_;
      }
      return PatEx::Dot(gen);
    }
    if (c == '"') {
      ++pos_;
      size_t start = pos_;
      while (pos_ < text_.size() && text_[pos_] != '"') ++pos_;
      if (pos_ >= text_.size()) {
        throw PatexParseError("unterminated quoted item", start);
      }
      std::string name = text_.substr(start, pos_ - start);
      ++pos_;  // closing quote
      return FinishItem(std::move(name));
    }
    if (IsItemChar(c)) {
      size_t start = pos_;
      while (pos_ < text_.size() && IsItemChar(text_[pos_])) ++pos_;
      return FinishItem(text_.substr(start, pos_ - start));
    }
    throw PatexParseError("unexpected character", pos_);
  }

  // Handles the optional '^' and '=' modifiers after an item name.
  std::unique_ptr<PatEx> FinishItem(std::string name) {
    bool gen = false;
    bool exact = false;
    if (pos_ < text_.size() && text_[pos_] == '^') {
      gen = true;
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '=') {
      exact = true;
      ++pos_;
    }
    return PatEx::Item(std::move(name), gen, exact);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

std::unique_ptr<PatEx> ParsePatEx(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace dseq
