// Recursive-descent parser for pattern expressions (paper Sec. II).
//
// Syntax accepted (ASCII rendering of the paper's notation; '^' is ↑):
//
//   .*(A)[(.^).*]*(b).*                        -- the paper's running example
//   ENTITY (VERB+ NOUN+? PREP?) ENTITY        -- N1
//   (.^){3} NOUN                              -- N4
//   (.)[.{0,2}(.)]{1,4}                       -- gap/length constraints
//
// Item names are unquoted runs of [A-Za-z0-9_@&':/-] not starting with a
// digit-only operator context, or quoted with '...' (allowing any character
// except the quote). Whitespace separates concatenated atoms but is
// otherwise insignificant.
#ifndef DSEQ_PATEX_PARSER_H_
#define DSEQ_PATEX_PARSER_H_

#include <memory>
#include <stdexcept>
#include <string>

#include "src/patex/patex.h"

namespace dseq {

/// Thrown on malformed pattern expressions; includes byte position.
class PatexParseError : public std::runtime_error {
 public:
  PatexParseError(const std::string& message, size_t position)
      : std::runtime_error(message + " (at position " +
                           std::to_string(position) + ")"),
        position_(position) {}
  size_t position() const { return position_; }

 private:
  size_t position_;
};

/// Parses `text` into a pattern expression AST. Throws PatexParseError.
std::unique_ptr<PatEx> ParsePatEx(const std::string& text);

}  // namespace dseq

#endif  // DSEQ_PATEX_PARSER_H_
