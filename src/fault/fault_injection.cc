#include "src/fault/fault_injection.h"

#ifdef DSEQ_FAULT_INJECTION_ENABLED
#include <array>
#include <atomic>
#include <random>

#include "src/util/sync.h"
#endif

namespace dseq {
namespace fault {

namespace {

struct SiteNameEntry {
  Site site;
  const char* name;
};

constexpr SiteNameEntry kSiteNames[] = {
    {Site::kSocketRead, "socket.read"},
    {Site::kSocketWrite, "socket.write"},
    {Site::kSocketSendFrame, "socket.send_frame"},
    {Site::kSpillWrite, "spill.write"},
    {Site::kSpillRead, "spill.read"},
    {Site::kWorkerMessage, "worker.message"},
    {Site::kWorkerCommit, "worker.before_commit"},
};
static_assert(sizeof(kSiteNames) / sizeof(kSiteNames[0]) == kNumSites,
              "site name registry out of sync with Site enum");

}  // namespace

const char* SiteName(Site site) {
  for (const SiteNameEntry& entry : kSiteNames) {
    if (entry.site == site) return entry.name;
  }
  return "unknown";
}

bool SiteFromName(const std::string& name, Site* site) {
  for (const SiteNameEntry& entry : kSiteNames) {
    if (name == entry.name) {
      *site = entry.site;
      return true;
    }
  }
  return false;
}

#ifdef DSEQ_FAULT_INJECTION_ENABLED

namespace {

struct RuleState {
  FaultRule rule;
  uint64_t fired = 0;
};

// All mutable state lives behind one mutex; Evaluate is called from worker
// heartbeat threads as well as the main thread. The atomic fast-path flag
// keeps unconfigured enabled builds to a single load per site hit.
struct GlobalState {
  Mutex mu;
  bool configured DSEQ_GUARDED_BY(mu) = false;
  uint64_t seed DSEQ_GUARDED_BY(mu) = 0;
  int scope DSEQ_GUARDED_BY(mu) = kCoordinator;
  std::vector<RuleState> rules DSEQ_GUARDED_BY(mu);
  std::array<uint64_t, kNumSites> hits DSEQ_GUARDED_BY(mu) = {};
  uint64_t total_fires DSEQ_GUARDED_BY(mu) = 0;
  std::mt19937_64 rng DSEQ_GUARDED_BY(mu);
};

GlobalState& State() {
  static GlobalState* state = new GlobalState();  // dseq-lint: allow(naked-new)
  return *state;
}

// Fast-path flag checked before taking GlobalState::mu. The release store in
// Configure/Reset pairs with the acquire load in Evaluate so a thread that
// observes `armed == true` also observes the configuration made before the
// store; the mutex then orders everything else. A thread that misses a
// just-set flag harmlessly skips one evaluation.
std::atomic<bool>& Armed() {
  static std::atomic<bool> armed{false};
  return armed;
}

uint64_t MixSeed(uint64_t seed, int scope) {
  // splitmix64-style finalizer over seed ^ scope so per-worker streams are
  // decorrelated even for small seeds.
  uint64_t z = seed ^ (uint64_t{0x9E3779B97F4A7C15} * static_cast<uint64_t>(scope + 2));
  z = (z ^ (z >> 30)) * uint64_t{0xBF58476D1CE4E5B9};
  z = (z ^ (z >> 27)) * uint64_t{0x94D049BB133111EB};
  return z ^ (z >> 31);
}

}  // namespace

void Configure(const FaultSchedule& schedule) {
  GlobalState& state = State();
  MutexLock lock(state.mu);
  state.configured = true;
  state.seed = schedule.seed;
  state.rules.clear();
  state.rules.reserve(schedule.rules.size());
  for (const FaultRule& rule : schedule.rules) state.rules.push_back(RuleState{rule, 0});
  state.hits.fill(0);
  state.total_fires = 0;
  state.rng.seed(MixSeed(schedule.seed, state.scope));
  Armed().store(true, std::memory_order_release);
}

void Reset() {
  GlobalState& state = State();
  MutexLock lock(state.mu);
  state.configured = false;
  state.rules.clear();
  state.hits.fill(0);
  state.total_fires = 0;
  Armed().store(false, std::memory_order_release);
}

void SetProcessScope(int scope) {
  GlobalState& state = State();
  MutexLock lock(state.mu);
  state.scope = scope;
  if (state.configured) state.rng.seed(MixSeed(state.seed, scope));
}

Fault Evaluate(Site site, uint64_t detail) {
  if (!Armed().load(std::memory_order_acquire)) return Fault{};
  GlobalState& state = State();
  MutexLock lock(state.mu);
  if (!state.configured) return Fault{};
  const uint64_t hit = ++state.hits[static_cast<int>(site)];
  for (RuleState& rs : state.rules) {
    const FaultRule& rule = rs.rule;
    if (rule.site != site || rule.action == Action::kNone) continue;
    if (rule.scope != kAnyProcess && rule.scope != state.scope) continue;
    if (rule.detail != kAnyDetail && rule.detail != detail) continue;
    if (rule.max_fires > 0 && rs.fired >= rule.max_fires) continue;
    bool fire;
    if (rule.nth > 0) {
      fire = hit == rule.nth;
    } else {
      std::uniform_real_distribution<double> dist(0.0, 1.0);
      fire = rule.probability > 0.0 && dist(state.rng) < rule.probability;
    }
    if (!fire) continue;
    ++rs.fired;
    ++state.total_fires;
    return Fault{rule.action, rule.param};
  }
  return Fault{};
}

uint64_t SiteHits(Site site) {
  GlobalState& state = State();
  MutexLock lock(state.mu);
  return state.hits[static_cast<int>(site)];
}

uint64_t TotalFires() {
  GlobalState& state = State();
  MutexLock lock(state.mu);
  return state.total_fires;
}

#endif  // DSEQ_FAULT_INJECTION_ENABLED

}  // namespace fault
}  // namespace dseq
