// Deterministic fault injection for robustness testing.
//
// The production code is laced with named *injection sites* — one
// `fault::Evaluate(site, detail)` call per place where the real world can
// fail: socket reads/writes, whole-frame sends, spill-file I/O, and the
// proc-backend worker lifecycle. A test installs a process-global, seeded
// `FaultSchedule` describing which sites misbehave and how; the schedule is
// inherited across `fork()`, so coordinator *and* workers replay the same
// plan. `Reset()` restores clean behavior.
//
// Sites compile to zero-cost no-ops unless the build sets
// `-DDSEQ_FAULT_INJECTION=ON` (which defines DSEQ_FAULT_INJECTION_ENABLED):
// in default builds `Evaluate` is a constexpr inline returning "no fault",
// so every call site folds away. Gate fault-dependent tests on
// `fault::kFaultInjectionEnabled`.
//
// Determinism: probabilistic rules draw from an RNG seeded from
// `FaultSchedule::seed` (workers re-seed with their ordinal mixed in via
// `SetProcessScope`), and `nth`-triggered rules count per-process site hits.
// Given the same schedule, the same process replays the same fault
// decisions at the same site-hit sequence.

#ifndef DSEQ_FAULT_FAULT_INJECTION_H_
#define DSEQ_FAULT_FAULT_INJECTION_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dseq {
namespace fault {

/// Named injection sites. Keep `SiteName`/`SiteFromName` in fault_injection.cc
/// and the README registry in sync when adding one.
enum class Site : int {
  kSocketRead = 0,       ///< socket.read: byte-level reads (short read, errno, EINTR)
  kSocketWrite = 1,      ///< socket.write: byte-level writes (short write, errno, EINTR)
  kSocketSendFrame = 2,  ///< socket.send_frame: whole-frame sends (mid-frame disconnect)
  kSpillWrite = 3,       ///< spill.write: SpillFile appends (ENOSPC, EIO, partial write)
  kSpillRead = 4,        ///< spill.read: spill-run block reads (EIO)
  kWorkerMessage = 5,    ///< worker.message: worker serve loop, detail = 1-based message count
  kWorkerCommit = 6,     ///< worker.before_commit: just before kMapDone, detail = task index
};
inline constexpr int kNumSites = 7;

/// What an injection site does when a rule fires.
enum class Action : int {
  kNone = 0,        ///< no fault
  kShortIo = 1,     ///< clamp the transfer to a single byte (caller must loop)
  kErrno = 2,       ///< fail with errno = param (ECONNRESET, ENOSPC, EIO, ...)
  kEintr = 3,       ///< simulated interrupted syscall; retried by the wrapper
  kDisconnect = 4,  ///< write half the frame, then close the connection
  kKill = 5,        ///< raise(SIGKILL) — the process dies mid-protocol
  kStall = 6,       ///< sleep param milliseconds without making progress
};

/// Result of evaluating a site: the action to take plus its parameter
/// (errno value for kErrno, milliseconds for kStall).
struct Fault {
  Action action = Action::kNone;
  int param = 0;
};

/// Matches any `detail` value passed to Evaluate.
inline constexpr uint64_t kAnyDetail = ~uint64_t{0};
/// `FaultRule::scope` wildcards: fire in any process, or only in the
/// coordinator (workers set their ordinal >= 0 via SetProcessScope).
inline constexpr int kAnyProcess = -2;
inline constexpr int kCoordinator = -1;

/// One rule: when `site` is evaluated (optionally only for a specific
/// `detail` / process scope), fire `action` either on the `nth` per-process
/// hit of the site (1-based) or with `probability` per hit, at most
/// `max_fires` times per process (0 = unlimited).
struct FaultRule {
  Site site = Site::kSocketRead;
  Action action = Action::kNone;
  int param = 0;                   ///< errno for kErrno, ms for kStall
  uint64_t detail = kAnyDetail;    ///< match Evaluate's detail argument
  int scope = kAnyProcess;         ///< kAnyProcess, kCoordinator, or worker ordinal
  uint64_t nth = 0;                ///< 1-based site-hit trigger; 0 = probabilistic
  double probability = 0.0;        ///< used when nth == 0
  uint64_t max_fires = 1;          ///< per-process fire budget; 0 = unlimited
};

/// A complete, seeded injection plan.
struct FaultSchedule {
  uint64_t seed = 0;
  std::vector<FaultRule> rules;
};

#ifdef DSEQ_FAULT_INJECTION_ENABLED

inline constexpr bool kFaultInjectionEnabled = true;

/// Installs `schedule` process-globally (replacing any previous one) and
/// resets per-process hit/fire counters. Install before forking workers so
/// children inherit the plan.
void Configure(const FaultSchedule& schedule);

/// Removes the installed schedule; every site goes back to "no fault".
void Reset();

/// Tags this process for `FaultRule::scope` matching and re-seeds the
/// rule RNG from the schedule seed mixed with the scope, so sibling workers
/// draw independent but reproducible streams. Workers pass their ordinal;
/// the coordinator defaults to kCoordinator.
void SetProcessScope(int scope);

/// Evaluates one site hit. `detail` carries site-specific context (message
/// count, task index) for rules that match on it.
Fault Evaluate(Site site, uint64_t detail = 0);

/// Per-process count of Evaluate() calls for `site` since Configure/Reset.
uint64_t SiteHits(Site site);

/// Per-process count of fired rules since Configure/Reset.
uint64_t TotalFires();

#else  // !DSEQ_FAULT_INJECTION_ENABLED

inline constexpr bool kFaultInjectionEnabled = false;

inline void Configure(const FaultSchedule&) {}
inline void Reset() {}
inline void SetProcessScope(int) {}
constexpr Fault Evaluate(Site, uint64_t = 0) { return Fault{}; }
constexpr uint64_t SiteHits(Site) { return 0; }
constexpr uint64_t TotalFires() { return 0; }

#endif  // DSEQ_FAULT_INJECTION_ENABLED

/// Registry helpers (available in every build; used by docs and tests).
/// SiteName returns the stable dotted name ("socket.read"); SiteFromName
/// inverts it, returning false for unknown names.
const char* SiteName(Site site);
bool SiteFromName(const std::string& name, Site* site);

}  // namespace fault
}  // namespace dseq

#endif  // DSEQ_FAULT_FAULT_INJECTION_H_
