#include "src/io/dataset_io.h"

#include <fstream>
#include <sstream>

#include "src/util/varint.h"

namespace dseq {
namespace {

constexpr char kMagic[] = "DSEQv1\n";

std::string ReadAll(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

SequenceDatabase ReadTextDatabase(std::istream& sequences,
                                  std::istream* hierarchy) {
  DictionaryBuilder builder;
  std::vector<std::vector<std::string>> raw_sequences;
  std::string line;
  while (std::getline(sequences, line)) {
    if (!line.empty() && line[0] == '#') continue;
    std::istringstream tokens(line);
    std::vector<std::string> names;
    std::string name;
    while (tokens >> name) names.push_back(name);
    if (names.empty()) continue;
    raw_sequences.push_back(std::move(names));
  }

  if (hierarchy != nullptr) {
    size_t line_number = 0;
    while (std::getline(*hierarchy, line)) {
      ++line_number;
      if (!line.empty() && line[0] == '#') continue;
      std::istringstream tokens(line);
      std::string child;
      std::string parent;
      if (!(tokens >> child)) continue;  // blank line
      if (!(tokens >> parent)) {
        throw DatasetIoError("hierarchy line " + std::to_string(line_number) +
                             ": expected 'child parent'");
      }
      builder.AddParent(builder.GetOrAddItem(child),
                        builder.GetOrAddItem(parent));
    }
  }

  SequenceDatabase db;
  std::vector<Sequence> encoded;
  encoded.reserve(raw_sequences.size());
  for (const auto& names : raw_sequences) {
    Sequence seq;
    seq.reserve(names.size());
    for (const std::string& name : names) {
      seq.push_back(builder.GetOrAddItem(name));
    }
    encoded.push_back(std::move(seq));
  }
  db.dict = builder.Build();
  db.sequences = std::move(encoded);
  db.Recode();
  return db;
}

SequenceDatabase ReadTextDatabaseFromFiles(const std::string& sequence_path,
                                           const std::string& hierarchy_path) {
  std::ifstream sequences(sequence_path);
  if (!sequences) {
    throw DatasetIoError("cannot open sequence file: " + sequence_path);
  }
  if (hierarchy_path.empty()) {
    return ReadTextDatabase(sequences, nullptr);
  }
  std::ifstream hierarchy(hierarchy_path);
  if (!hierarchy) {
    throw DatasetIoError("cannot open hierarchy file: " + hierarchy_path);
  }
  return ReadTextDatabase(sequences, &hierarchy);
}

void WriteTextDatabase(const SequenceDatabase& db, std::ostream& out) {
  for (const Sequence& seq : db.sequences) {
    out << db.FormatSequence(seq) << '\n';
  }
}

void WriteTextHierarchy(const Dictionary& dict, std::ostream& out) {
  for (ItemId w = 1; w <= dict.size(); ++w) {
    for (ItemId p : dict.Parents(w)) {
      out << dict.Name(w) << ' ' << dict.Name(p) << '\n';
    }
  }
}

void WriteBinaryDatabase(const SequenceDatabase& db, std::ostream& out) {
  std::string buffer = kMagic;
  const Dictionary& dict = db.dict;
  PutVarint(&buffer, dict.size());
  for (ItemId w = 1; w <= dict.size(); ++w) {
    const std::string& name = dict.Name(w);
    PutVarint(&buffer, name.size());
    buffer += name;
    PutVarint(&buffer, dict.Parents(w).size());
    for (ItemId p : dict.Parents(w)) PutVarint(&buffer, p);
  }
  PutVarint(&buffer, db.sequences.size());
  for (const Sequence& seq : db.sequences) PutSequence(&buffer, seq);
  out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
}

SequenceDatabase ReadBinaryDatabase(std::istream& in) {
  std::string data = ReadAll(in);
  size_t magic_len = sizeof(kMagic) - 1;
  if (data.size() < magic_len || data.compare(0, magic_len, kMagic) != 0) {
    throw DatasetIoError("not a dseq binary database (bad magic)");
  }
  size_t pos = magic_len;

  auto get = [&](uint64_t* value) {
    if (!GetVarint(data, &pos, value)) {
      throw DatasetIoError("truncated binary database");
    }
  };

  uint64_t num_items = 0;
  get(&num_items);
  DictionaryBuilder builder;
  std::vector<std::vector<ItemId>> parents(num_items);
  for (uint64_t w = 0; w < num_items; ++w) {
    uint64_t name_len = 0;
    get(&name_len);
    if (pos + name_len > data.size()) {
      throw DatasetIoError("truncated item name");
    }
    builder.AddItem(data.substr(pos, name_len));
    pos += name_len;
    uint64_t num_parents = 0;
    get(&num_parents);
    for (uint64_t p = 0; p < num_parents; ++p) {
      uint64_t parent = 0;
      get(&parent);
      if (parent == 0 || parent > num_items) {
        throw DatasetIoError("parent id out of range");
      }
      parents[w].push_back(static_cast<ItemId>(parent));
    }
  }
  for (uint64_t w = 0; w < num_items; ++w) {
    for (ItemId p : parents[w]) {
      builder.AddParent(static_cast<ItemId>(w + 1), p);
    }
  }

  SequenceDatabase db;
  db.dict = builder.Build();
  uint64_t num_sequences = 0;
  get(&num_sequences);
  db.sequences.reserve(num_sequences);
  Sequence seq;
  for (uint64_t s = 0; s < num_sequences; ++s) {
    if (!GetSequence(data, &pos, &seq)) {
      throw DatasetIoError("truncated sequence data");
    }
    for (ItemId t : seq) {
      if (t == 0 || t > num_items) {
        throw DatasetIoError("sequence item out of range");
      }
    }
    db.sequences.push_back(seq);
  }
  if (pos != data.size()) {
    throw DatasetIoError("trailing bytes in binary database");
  }
  // Ids in the file are already frequency-ordered; recompute frequencies
  // without renumbering.
  db.dict.ComputeDocFrequencies(db.sequences, /*num_workers=*/4);
  return db;
}

void WriteBinaryDatabaseToFile(const SequenceDatabase& db,
                               const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw DatasetIoError("cannot open for writing: " + path);
  WriteBinaryDatabase(db, out);
}

SequenceDatabase ReadBinaryDatabaseFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw DatasetIoError("cannot open for reading: " + path);
  return ReadBinaryDatabase(in);
}

}  // namespace dseq
