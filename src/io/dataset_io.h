// Dataset input/output.
//
// Two formats:
//  * Text: one sequence per line, whitespace-separated item names, plus an
//    optional hierarchy file with "child parent" lines. Human-editable; the
//    format used by the CLI tool.
//  * Binary: varint-coded dictionary + sequences, including precomputed
//    frequencies. Fast to load; used to cache generated benchmark datasets.
#ifndef DSEQ_IO_DATASET_IO_H_
#define DSEQ_IO_DATASET_IO_H_

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "src/dict/sequence.h"

namespace dseq {

/// Thrown on malformed dataset files.
class DatasetIoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Reads sequences from text (one sequence per line, items separated by
/// whitespace; '#' starts a comment line) and an optional hierarchy stream
/// ("child parent" per line). Unknown items are added to the dictionary.
/// The database is recoded before returning.
SequenceDatabase ReadTextDatabase(std::istream& sequences,
                                  std::istream* hierarchy = nullptr);
SequenceDatabase ReadTextDatabaseFromFiles(const std::string& sequence_path,
                                           const std::string& hierarchy_path);

/// Writes sequences as item-name lines; `WriteTextHierarchy` writes one
/// "child parent" line per hierarchy edge.
void WriteTextDatabase(const SequenceDatabase& db, std::ostream& out);
void WriteTextHierarchy(const Dictionary& dict, std::ostream& out);

/// Binary round-trip (dictionary with hierarchy + frequencies + sequences).
void WriteBinaryDatabase(const SequenceDatabase& db, std::ostream& out);
SequenceDatabase ReadBinaryDatabase(std::istream& in);
void WriteBinaryDatabaseToFile(const SequenceDatabase& db,
                               const std::string& path);
SequenceDatabase ReadBinaryDatabaseFromFile(const std::string& path);

}  // namespace dseq

#endif  // DSEQ_IO_DATASET_IO_H_
