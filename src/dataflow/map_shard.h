// The per-worker map-shard body of the dataflow engine, extracted so the
// local (in-process) backend and the proc backend's worker processes run
// the *same* code: sharding, partitioner resolution, shuffle-byte
// accounting, budget charging, and bucket spilling are shared by
// construction, which is what makes the proc backend's results and raw
// shuffle metrics byte-identical to the local engine's.
//
// RunMapReduce points the context at its shared per-round arrays and
// atomics (one budget and one set of counters across all map workers); a
// proc worker points it at the per-task state of its own process (its own
// budget and counters, reported back to the coordinator afterwards).
#ifndef DSEQ_DATAFLOW_MAP_SHARD_H_
#define DSEQ_DATAFLOW_MAP_SHARD_H_

#include <atomic>
#include <cstdint>
#include <string_view>
#include <vector>

#include "src/dataflow/engine.h"
#include "src/dataflow/shuffle_buffer.h"
#include "src/spill/memory_budget.h"
#include "src/spill/spill_context.h"
#include "src/spill/spill_file.h"

namespace dseq {

/// One shuffle record view during bucket sorting / merging.
struct BucketEntry {
  std::string_view key;
  std::string_view value;
};

/// Parses `raw` (ReleaseRaw frames) into entries stable-sorted by key —
/// emit order within equal keys is preserved, which both the in-memory
/// grouping and the spilled sorted runs rely on.
std::vector<BucketEntry> SortedBucketEntries(std::string_view raw);

/// Everything one map worker's shard touches. All pointers are caller-owned
/// and must outlive the RunMapShard call; the per-reducer arrays (`buckets`,
/// `spill_runs`, `bucket_charged`, `reducer_bytes`) have one slot per reduce
/// worker. `spill_runs` and `bucket_charged` may be null when the budget is
/// disabled; `combiner_ctx` is null exactly when the budget is disabled.
struct MapShardContext {
  const DataflowOptions* options = nullptr;
  int map_worker = 0;  // worker index locally, task index in the proc backend
  int reduce_workers = 1;
  size_t begin = 0;  // input shard [begin, end)
  size_t end = 0;
  const MapFn* map_fn = nullptr;
  const CombinerFactory* combiner_factory = nullptr;

  ShuffleBuffer* buckets = nullptr;
  std::vector<SpillFile>* spill_runs = nullptr;
  uint64_t* bucket_charged = nullptr;
  uint64_t* reducer_bytes = nullptr;
  MemoryBudget* budget = nullptr;
  SpillStats* spill_stats = nullptr;
  CombinerSpillContext* combiner_ctx = nullptr;

  // Round counters: shared atomics across all map workers in the local
  // backend (the shuffle budget is enforced on their global sum), the
  // task's own counters in a proc worker.
  std::atomic<uint64_t>* shuffle_bytes = nullptr;
  std::atomic<uint64_t>* shuffle_records = nullptr;
  std::atomic<uint64_t>* map_output_records = nullptr;
  std::atomic<uint64_t>* shuffle_compressed_bytes = nullptr;

  /// Optional liveness counter, ticked once per processed input. The proc
  /// backend's worker heartbeat thread samples it to decide whether the
  /// task is advancing (beat) or hung (silence); local rounds leave it null.
  std::atomic<uint64_t>* progress = nullptr;
};

/// Runs one map shard: maps each input of [begin, end), combines, and
/// leaves the shard's post-combine records in `buckets` (compressed or
/// sealed per the options) and any spilled sorted runs in `spill_runs`.
/// Throws ShuffleOverflowError when a budget is exceeded.
void RunMapShard(const MapShardContext& ctx);

}  // namespace dseq

#endif  // DSEQ_DATAFLOW_MAP_SHARD_H_
