#include "src/dataflow/shuffle_buffer.h"

#include <atomic>
#include <stdexcept>

#include "src/util/block_codec.h"
#include "src/util/check.h"
#include "src/util/varint.h"

namespace dseq {
namespace {

// Process-global diagnostic gauge of bytes resident in shuffle arenas.
// Relaxed everywhere: each buffer is single-writer (one map worker fills it,
// one reduce worker drains it, with a phase join between), so the adds and
// subs for one buffer are already ordered by the engine; the gauge itself
// publishes nothing. Cross-thread readers (teardown CHECKs, the RAII tests)
// run after the joins that make the final value exact.
std::atomic<uint64_t> g_live_bytes{0};

}  // namespace

uint64_t ShuffleBufferLiveBytes() {
  return g_live_bytes.load(std::memory_order_relaxed);
}

ShuffleBuffer& ShuffleBuffer::operator=(ShuffleBuffer&& other) noexcept {
  if (this == &other) return *this;
  Untrack();
  data_ = std::move(other.data_);
  num_records_ = other.num_records_;
  compressed_ = other.compressed_;
  tracked_ = other.tracked_;
  other.data_.clear();
  other.num_records_ = 0;
  other.compressed_ = false;
  other.tracked_ = 0;
  return *this;
}

ShuffleBuffer::~ShuffleBuffer() { Untrack(); }

void ShuffleBuffer::Track() {
  if (data_.size() != tracked_) {
    if (data_.size() > tracked_) {
      g_live_bytes.fetch_add(data_.size() - tracked_,
                             std::memory_order_relaxed);
    } else {
      g_live_bytes.fetch_sub(tracked_ - data_.size(),
                             std::memory_order_relaxed);
    }
    tracked_ = data_.size();
  }
}

void ShuffleBuffer::Untrack() {
  if (tracked_ > 0) {
    g_live_bytes.fetch_sub(tracked_, std::memory_order_relaxed);
    tracked_ = 0;
  }
}

void ShuffleBuffer::Append(std::string_view key, std::string_view value) {
  // Appending varint frames after the buffer was block-compressed would
  // interleave raw bytes into the codec stream and corrupt every record.
  DSEQ_DCHECK_MSG(!compressed_, "ShuffleBuffer::Append after Compress");
  PutVarint(&data_, key.size());
  PutVarint(&data_, value.size());
  // Guarded appends: emitted views may legally be empty with null data.
  if (!key.empty()) data_.append(key.data(), key.size());
  if (!value.empty()) data_.append(value.data(), value.size());
  ++num_records_;
  // Amortize the process-global gauge: one atomic RMW per ~4 KiB appended,
  // not per record (Seal() syncs it exactly at the end of the map phase).
  if (data_.size() - tracked_ >= 4096) Track();
}

size_t ShuffleBuffer::Compress() {
  if (!compressed_ && !data_.empty()) {
    data_ = CompressBlock(data_);
    compressed_ = true;
  }
  Track();
  return data_.size();
}

void ShuffleBuffer::Seal() { Track(); }

std::string ShuffleBuffer::ReleaseRaw() {
  std::string raw;
  if (compressed_) {
    if (!DecompressBlock(data_, &raw)) {
      throw std::runtime_error("corrupt compressed shuffle buffer");
    }
  } else {
    raw = std::move(data_);
  }
  data_.clear();
  num_records_ = 0;
  compressed_ = false;
  Untrack();
  return raw;
}

std::string ShuffleBuffer::ReleaseStored(bool* compressed) {
  *compressed = compressed_;
  std::string stored = std::move(data_);
  data_.clear();
  num_records_ = 0;
  compressed_ = false;
  Untrack();
  return stored;
}

void ShuffleBuffer::ParseRecord(std::string_view raw, size_t* pos,
                                std::string_view* key,
                                std::string_view* value) {
  uint64_t key_size = 0;
  uint64_t value_size = 0;
  if (!GetVarint(raw, pos, &key_size) || !GetVarint(raw, pos, &value_size) ||
      key_size > raw.size() - *pos ||
      value_size > raw.size() - *pos - key_size) {
    throw std::runtime_error("malformed shuffle record framing");
  }
  *key = raw.substr(*pos, key_size);
  *pos += key_size;
  *value = raw.substr(*pos, value_size);
  *pos += value_size;
}

}  // namespace dseq
