// Contiguous byte arena for one (map worker, reduce worker) shuffle bucket.
//
// Records are appended as varint-framed (key, value) byte strings into one
// growing buffer instead of a vector of heap-allocated string pairs, so the
// map phase pays zero per-record allocations and the reduce phase can group
// by sorting views into the frozen buffer. Buffers may optionally be
// block-compressed after the map phase (DataflowOptions::compress_shuffle);
// ReleaseRaw() transparently decompresses.
//
// A process-wide gauge tracks the bytes resident in not-yet-drained buffers
// (ShuffleBufferLiveBytes) so tests can assert that reduce workers release
// their buckets as they finish instead of holding the whole shuffle until
// the end of the phase.
#ifndef DSEQ_DATAFLOW_SHUFFLE_BUFFER_H_
#define DSEQ_DATAFLOW_SHUFFLE_BUFFER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

namespace dseq {

/// Bytes currently held by live ShuffleBuffers across the process. Purely
/// diagnostic (tests assert drain behavior); updated atomically.
uint64_t ShuffleBufferLiveBytes();

class ShuffleBuffer {
 public:
  ShuffleBuffer() = default;
  ShuffleBuffer(const ShuffleBuffer&) = delete;
  ShuffleBuffer& operator=(const ShuffleBuffer&) = delete;
  ShuffleBuffer(ShuffleBuffer&& other) noexcept
      : data_(std::move(other.data_)),
        num_records_(other.num_records_),
        compressed_(other.compressed_),
        tracked_(other.tracked_) {
    other.num_records_ = 0;
    other.compressed_ = false;
    other.tracked_ = 0;
    other.data_.clear();
  }
  ShuffleBuffer& operator=(ShuffleBuffer&& other) noexcept;
  ~ShuffleBuffer();

  /// Appends one record: varint(key size), varint(value size), key, value.
  void Append(std::string_view key, std::string_view value);

  uint64_t num_records() const { return num_records_; }
  size_t data_bytes() const { return data_.size(); }
  bool compressed() const { return compressed_; }

  /// Block-compresses the buffer in place (no-op if empty or already
  /// compressed) and syncs the live gauge. Returns the compressed size.
  size_t Compress();

  /// Syncs the live-bytes gauge exactly (Append amortizes its updates).
  /// The engine seals each bucket at the end of its map worker.
  void Seal();

  /// Moves the raw (decompressed) frame bytes out, leaving the buffer empty
  /// and releasing its gauge contribution. Throws std::runtime_error if a
  /// compressed buffer fails to decode.
  std::string ReleaseRaw();

  /// Moves the stored bytes out as-is — the raw frames, or the compressed
  /// block when Compress() ran (`*compressed` reports which) — leaving the
  /// buffer empty and releasing its gauge contribution. The proc backend
  /// ships buckets over the wire in exactly their stored form, so the
  /// compressed shuffle volume it reports equals the local backend's.
  std::string ReleaseStored(bool* compressed);

  /// Calls fn(key_view, value_view) for each record framed in `raw` (bytes
  /// produced by ReleaseRaw; views point into `raw`). Throws
  /// std::runtime_error on malformed framing.
  template <typename Fn>
  static void ForEachRecord(std::string_view raw, const Fn& fn) {
    size_t pos = 0;
    while (pos < raw.size()) {
      std::string_view key;
      std::string_view value;
      ParseRecord(raw, &pos, &key, &value);
      fn(key, value);
    }
  }

 private:
  static void ParseRecord(std::string_view raw, size_t* pos,
                          std::string_view* key, std::string_view* value);
  void Track();
  void Untrack();

  std::string data_;
  uint64_t num_records_ = 0;
  bool compressed_ = false;
  size_t tracked_ = 0;  // bytes currently counted in the live gauge
};

}  // namespace dseq

#endif  // DSEQ_DATAFLOW_SHUFFLE_BUFFER_H_
