// In-process bulk-synchronous-parallel dataflow engine (paper Sec. III).
//
// Replaces the paper's Spark/MapReduce substrate: workers are threads, the
// shuffle is a set of serialized byte buffers exchanged between the map and
// reduce phases. One round of communication, exactly as Alg. 1:
//
//   map     : process each input independently, emit (key, value) records
//   combine : optional per-map-worker aggregation of records by key
//   shuffle : records are serialized, partitioned by hash(key) among reduce
//             workers; total serialized bytes are the shuffle-size metric
//             (the paper's `shuffleWriteBytes`)
//   reduce  : each key's values are processed by exactly one reduce worker
//
// Zero-copy hot path: each (map worker, reduce worker) bucket is one
// contiguous varint-framed byte arena (ShuffleBuffer) — no per-record heap
// allocations. Combiners aggregate into open-addressing tables whose keys
// are views into an interning arena. The reduce phase groups by sorting
// (key view, record offset) pairs over the frozen arenas and sweeping runs
// of equal keys; keys and values reach the reduce function as views into
// the shuffle buffers, which are released per reduce worker as soon as that
// worker finishes (not at the end of the phase).
//
// Values cross the phase boundary only in serialized form, so shuffle sizes
// are honest and algorithms must implement real (de)serialization. With
// DataflowOptions::compress_shuffle the buckets are additionally run
// through the block codec (src/util/block_codec.h) at the end of the map
// phase, like Spark's shuffle compression; `shuffle_bytes` keeps measuring
// the raw serialized volume (so budgets and cross-run comparisons are
// unaffected) and `shuffle_compressed_bytes` reports what actually crossed
// the simulated network.
//
// A configurable shuffle budget emulates the paper's out-of-memory failures
// (Spark failing to spill shuffle data): exceeding the budget throws
// ShuffleOverflowError, which benches report as "n/a (OOM)".
//
// Out-of-core execution (src/spill/): with memory_budget_bytes set, the
// resident shuffle arenas and the combiner tables are charged against a
// shared MemoryBudget. When the budget runs out and spill_dir is set, the
// overflowing worker drains its buckets (and the combiners their tables) to
// sorted runs on disk; the reduce phase k-way-merges the runs back into the
// sort-based grouping, so reducers stream key groups without ever
// rebuilding the column in memory. Results and the raw shuffle metrics are
// identical to the in-memory run; DataflowMetrics::spill_* report the
// out-of-core volume. Without spill_dir the budget is a hard ceiling that
// throws an actionable ShuffleOverflowError.
#ifndef DSEQ_DATAFLOW_ENGINE_H_
#define DSEQ_DATAFLOW_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace dseq {

struct CombinerSpillContext;  // src/spill/spill_context.h

/// Thrown when buffered shuffle state exceeds a configured budget — the raw
/// shuffle-volume budget (shuffle_budget_bytes) or the resident memory
/// budget (memory_budget_bytes) when spilling is disabled. The message
/// names the round, the offending reducer bucket or combiner, and the
/// configured vs. attempted bytes.
class ShuffleOverflowError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Wall-clock and volume metrics of one map-shuffle-reduce round.
struct DataflowMetrics {
  double map_seconds = 0.0;     // map + combine + serialize (+ compress)
  double reduce_seconds = 0.0;  // (decompress +) deserialize + local mining
  uint64_t shuffle_bytes = 0;   // post-combine raw serialized volume
  /// Post-codec volume; 0 unless DataflowOptions::compress_shuffle is set.
  uint64_t shuffle_compressed_bytes = 0;
  uint64_t shuffle_records = 0;
  uint64_t map_output_records = 0;  // pre-combine record count
  /// Raw serialized bytes each reduce worker received (one entry per reduce
  /// worker, including workers that received nothing) — the measured side of
  /// the partition-balance work: max/mean over this vector is the skew the
  /// partition planner acts on.
  std::vector<uint64_t> reducer_bytes;
  /// Out-of-core counters (all 0 unless the round spilled): sorted runs
  /// written to spill_dir, stored bytes written to them (post-codec when
  /// compress_spill is set, block framing included), and k-way merge passes
  /// over spilled runs (intermediate fan-in collapses plus the final
  /// streaming merges — at least one whenever spill_files > 0).
  uint64_t spill_files = 0;
  uint64_t spill_bytes_written = 0;
  uint64_t spill_merge_passes = 0;
  /// Input-cache counters shipped through kMapDone by proc-backend workers
  /// (deltas of the process-global counters below around each map task).
  /// Local rounds leave them 0 — the driver's CachedDatabase instance
  /// counters already see every in-process read; the distributed layer sums
  /// both views (see ChainedDistributedResult::input_storage_reads).
  uint64_t input_storage_reads = 0;
  uint64_t input_cache_hits = 0;
  /// Proc-backend failure-policy counters (all 0 under kLocal): task
  /// assignments (first tries + retries), reassignments after a worker
  /// death/stall, workers SIGKILLed by stall detection, and replacement
  /// workers forked after a death. Diagnostic only — never part of the
  /// local/proc raw-metric equivalence contract.
  uint64_t proc_task_attempts = 0;
  uint64_t proc_task_retries = 0;
  uint64_t proc_worker_kills = 0;
  uint64_t proc_workers_respawned = 0;
  /// Transport-shape counters (kLocal: 0): continuation frames used to chunk
  /// oversized segments against the frame cap, and staged tail segments the
  /// coordinator parked in SpillFiles instead of memory.
  uint64_t proc_segment_chunks = 0;
  uint64_t proc_parked_tails = 0;

  double total_seconds() const { return map_seconds + reduce_seconds; }
};

/// Process-global input-read counters, bumped by caching input readers
/// (CachedDatabase in src/dist) next to their instance counters. The proc
/// backend snapshots them around each map task in the *worker* process and
/// ships the deltas through kMapDone, which is what makes per-child cache
/// traffic visible to the driver at all (fork severs the instances).
std::atomic<uint64_t>& GlobalInputStorageReads();
std::atomic<uint64_t>& GlobalInputCacheHits();

/// How workers execute.
enum class Execution {
  /// One std::thread per worker (true parallelism on multi-core machines).
  kThreads,
  /// Cluster simulation for machines with fewer cores than workers: shards
  /// run sequentially, each worker's busy time is measured individually,
  /// and a phase's reported duration is the *critical path* — the maximum
  /// worker time, exactly what a perfectly synchronized BSP cluster would
  /// take. Work and results are identical to kThreads.
  kSimulated,
};

/// Where a round's map and reduce tasks execute.
enum class DataflowBackend {
  /// Threads (or the sequential simulation) inside this process — the
  /// default, handled directly by RunMapReduce.
  kLocal,
  /// Real worker processes forked per round, exchanging shuffle segments
  /// over loopback TCP (src/rpc/proc_backend.h). Results and raw shuffle
  /// metrics are byte-identical to kLocal by construction: workers run the
  /// same RunMapShard body and the coordinator reassembles segments in the
  /// same source order the local reduce phase uses. Only DataflowJob (and
  /// the distributed layer above it) dispatches to this backend;
  /// RunMapReduce itself rejects it.
  kProc,
};

/// Key→reducer assignment hook. Must be a pure function of the key (every
/// record of a key has to reach the same reducer) and return a value in
/// [0, num_reduce_workers); out-of-range results throw. Which reducer a key
/// lands on never affects results — only balance — so custom partitioners
/// (e.g. a PartitionPlan's) are correctness-neutral by construction.
using PartitionerFn =
    std::function<int(std::string_view key, int num_reduce_workers)>;

/// The engine's default assignment: hash partitioning. Exposed so planners
/// and balance summaries can reproduce exactly where a key would land.
int ShuffleReducerForKey(std::string_view key, int num_reduce_workers);

/// Fixed per-record framing overhead charged to the shuffle-size metric
/// (length prefixes, roughly what a real shuffle file format pays). Exposed
/// so ComputePartitionStats can mirror the engine's byte accounting exactly
/// — a partition plan packed from stats then projects the same loads the
/// run will measure.
inline constexpr uint64_t kShuffleRecordOverheadBytes = 4;

struct DataflowOptions {
  int num_map_workers = 1;
  int num_reduce_workers = 1;
  Execution execution = Execution::kThreads;
  /// 0 = unlimited. Otherwise the run throws ShuffleOverflowError once the
  /// buffered shuffle exceeds this many bytes (always charged on the raw
  /// serialized volume, independent of compress_shuffle).
  uint64_t shuffle_budget_bytes = 0;
  /// Block-compress each shuffle bucket after the map phase and report the
  /// compressed volume in DataflowMetrics::shuffle_compressed_bytes.
  /// Results and `shuffle_bytes` are unaffected.
  bool compress_shuffle = false;
  /// Key→reducer override; null = ShuffleReducerForKey (hash partitioning).
  PartitionerFn partitioner;

  // --- out-of-core execution (src/spill/) ---------------------------------
  /// 0 = unlimited. Otherwise the resident shuffle arenas and the
  /// spill-aware combiner tables share this many bytes; exceeding it spills
  /// to spill_dir, or throws ShuffleOverflowError when spill_dir is empty.
  /// Charged with the engine's record byte accounting (key + value +
  /// kShuffleRecordOverheadBytes), so results and raw shuffle metrics are
  /// identical with and without a budget.
  uint64_t memory_budget_bytes = 0;
  /// Directory for spill files (must exist and be writable). Empty =
  /// spilling disabled; memory_budget_bytes then acts as a hard ceiling.
  std::string spill_dir;
  /// Run spill files through the block codec (independent of
  /// compress_shuffle; spill_bytes_written then reports stored volume).
  bool compress_spill = false;
  /// Maximum runs merged per k-way pass; more runs collapse in extra passes
  /// (DataflowMetrics::spill_merge_passes). Clamped to >= 2.
  int spill_merge_fan_in = 16;
  /// 0-based index of this round within a chained job. Purely diagnostic:
  /// it contextualizes ShuffleOverflowError messages (DataflowJob sets it).
  int round_index = 0;

  // --- multi-process execution (src/rpc/) ---------------------------------
  /// kProc runs the round's tasks in forked worker processes over a socket
  /// shuffle (see DataflowBackend). Honored by DataflowJob and everything
  /// layered on it (DistributedRunOptions::backend, dseq_cli --backend);
  /// RunMapReduce throws std::invalid_argument for kProc.
  DataflowBackend backend = DataflowBackend::kLocal;
  /// Proc backend only: kill and reassign an in-flight worker that has made
  /// no progress for this long. "Progress" includes heartbeats: workers run
  /// a progress-gated kPong pump while executing (see proc_heartbeat_
  /// interval_ms), so a slow-but-working task survives any timeout while a
  /// hung one goes silent and is killed. 0 disables the timeout (worker
  /// loss is still detected via connection EOF and the task re-executed).
  int proc_worker_timeout_ms = 0;
  /// Proc backend only: how many times one task may be attempted before the
  /// round fails with ProcTaskFailedError naming the task, the attempt
  /// count, and the last failure. Transient failures (a killed or stalled
  /// worker) retry up to this bound on respawned or surviving workers;
  /// deterministic worker exceptions (kError frames) never retry. Clamped
  /// to >= 1.
  int proc_max_task_attempts = 3;
  /// Proc backend only: worker heartbeat period. 0 = derive from
  /// proc_worker_timeout_ms (a quarter of it, clamped to [10ms, 1s]);
  /// heartbeats are off entirely when the timeout is 0.
  int proc_heartbeat_interval_ms = 0;
  /// Proc backend only: wall-clock ceiling for one round (map + reduce).
  /// Exceeding it throws ProcDeadlineError. 0 = no deadline.
  int proc_round_deadline_ms = 0;
  /// Proc backend only: staged tail segments at least this large are parked
  /// in SpillFiles at the coordinator instead of held in memory (requires
  /// spill_dir; charged to DataflowMetrics::proc_parked_tails). 0 disables
  /// parking.
  uint64_t proc_tail_park_bytes = uint64_t{1} << 20;
};

/// Emits one record from a mapper or a combiner flush. The engine copies
/// the bytes into its shuffle arenas during the call; views need not
/// outlive it.
using EmitFn = std::function<void(std::string_view key, std::string_view value)>;

/// Per-map-worker combiner. Records are added in arbitrary order; Flush is
/// called once at the end of the worker's shard. Implementations must copy
/// what they keep — the views do not outlive the Add call.
class Combiner {
 public:
  virtual ~Combiner() = default;
  virtual void Add(std::string_view key, std::string_view value) = 0;
  virtual void Flush(const EmitFn& emit) = 0;

  /// Out-of-core hook: the engine calls this once, before the worker's
  /// shard, when a memory budget is configured (`ctx` outlives the
  /// combiner). Spill-aware combiners charge their resident state against
  /// ctx->budget and spill sorted partial runs when it is exhausted,
  /// external-merging them at Flush so the emitted records are exactly the
  /// fully-combined output of the in-memory path (same records, identical
  /// shuffle metrics; budgeted flushes emit in sorted order — flush
  /// *order* was never part of the contract and already varies with
  /// sharding). The default ignores the context: such combiners stay
  /// unbudgeted and never spill.
  virtual void EnableSpill(CombinerSpillContext* /*ctx*/) {}
};

using CombinerFactory = std::function<std::unique_ptr<Combiner>()>;

/// A combiner that interprets values as varint counts and sums them per key
/// (word-count aggregation; used by NAIVE/SEMI-NAIVE).
std::unique_ptr<Combiner> MakeSumCombiner();

/// A combiner that aggregates *identical values* per key into weighted
/// values. Values must be of the form varint(weight) + payload; identical
/// payloads have their weights summed. Used by D-CAND to merge identical
/// NFAs (paper Sec. VI-A) and by the D-SEQ sequence-aggregation extension.
std::unique_ptr<Combiner> MakeWeightedValueCombiner();

/// Map function: called once per input index; may emit any number of records.
using MapFn = std::function<void(size_t input_index, const EmitFn& emit)>;

/// Reduce function: called once per distinct key with all its values.
/// `worker` identifies the reduce worker (0 .. num_reduce_workers-1) so
/// callers can keep per-worker output buffers without locking. Keys arrive
/// in ascending byte order per worker; `key` and the value views point into
/// the worker's shuffle buffers and are valid only during the call — copy
/// what must outlive it. The values vector is the caller's scratch and may
/// be reordered freely.
using ReduceFn = std::function<void(int worker, std::string_view key,
                                    std::vector<std::string_view>& values)>;

/// Runs one BSP round. The map phase is parallelized over input shards, the
/// reduce phase over key partitions. Throws ShuffleOverflowError if the
/// budget is exceeded.
DataflowMetrics RunMapReduce(size_t num_inputs, const MapFn& map_fn,
                             const CombinerFactory& combiner_factory,
                             const ReduceFn& reduce_fn,
                             const DataflowOptions& options);

}  // namespace dseq

#endif  // DSEQ_DATAFLOW_ENGINE_H_
