// Chained multi-round dataflow on top of the single-round engine.
//
// The paper's substrate (Spark) runs iterative jobs as chains of shuffle
// rounds; this is the in-process analogue. A DataflowJob strings together
// map-shuffle-reduce rounds such that each round's reduce output becomes the
// next round's map input. Output records cross the round boundary only in
// serialized form (a Record is a key/value byte-string pair), so the shuffle
// accounting of every round stays honest — there is no way to smuggle
// deserialized state from one round into the next.
//
// Metrics are collected per round (the paper's per-stage `shuffleWriteBytes`)
// and as an aggregate. The shuffle budget is enforced at two levels: the
// inherited DataflowOptions::shuffle_budget_bytes applies to each round
// independently, and cumulative_shuffle_budget_bytes bounds the total volume
// of the whole chain — both throw ShuffleOverflowError mid-round, exactly
// when the offending record is buffered.
#ifndef DSEQ_DATAFLOW_CHAINED_H_
#define DSEQ_DATAFLOW_CHAINED_H_

#include <cstddef>
#include <vector>

#include "src/dataflow/engine.h"

namespace dseq {

/// One serialized record crossing a round boundary.
struct Record {
  std::string key;
  std::string value;

  bool operator==(const Record& o) const {
    return key == o.key && value == o.value;
  }
  bool operator<(const Record& o) const {
    if (key != o.key) return key < o.key;
    return value < o.value;
  }
};

struct ChainedDataflowOptions : DataflowOptions {
  /// 0 = unlimited. Otherwise ShuffleOverflowError once the total shuffle
  /// volume across all rounds of the job exceeds this many bytes. The
  /// inherited shuffle_budget_bytes still applies to every round on its own.
  uint64_t cumulative_shuffle_budget_bytes = 0;
};

/// Map function of a chained round: called once per record of the previous
/// round's reduce output.
using RecordMapFn = std::function<void(size_t input_index, const Record& input,
                                       const EmitFn& emit)>;

/// Reduce function of a chained round: like ReduceFn, plus an emitter whose
/// records become the round's output (the next round's map input). Emitting
/// nothing ends the chain's data; emitted records are buffered per reduce
/// worker, so no locking is needed. As with ReduceFn, `key` and the value
/// views are only valid during the call (the boundary emitter copies).
using ChainReduceFn = std::function<void(
    int worker, std::string_view key, std::vector<std::string_view>& values,
    const EmitFn& emit)>;

/// A chain of map-shuffle-reduce rounds with shared budgets and metrics.
///
/// Usage: seed the chain with RunRound (map input = external indices, e.g.
/// the sequence database), then call RunChainedRound any number of times
/// (map input = previous round's output records). Rounds may also be
/// re-seeded with RunRound mid-chain after collecting records() — the
/// in-process analogue of Spark's collect-and-broadcast between jobs (used
/// by the frequency-recount drivers).
///
/// After a ShuffleOverflowError the job is dead: per-round metrics cover
/// only completed rounds and records() is unspecified.
class DataflowJob {
 public:
  explicit DataflowJob(const ChainedDataflowOptions& options)
      : options_(options) {}

  /// Runs a round whose map input is external: `map_fn` is called once per
  /// index in [0, num_inputs). Returns the round's metrics.
  const DataflowMetrics& RunRound(size_t num_inputs, const MapFn& map_fn,
                                  const CombinerFactory& combiner_factory,
                                  const ChainReduceFn& reduce_fn);

  /// Runs a round whose map input is the previous round's output records
  /// (consumed by this call).
  const DataflowMetrics& RunChainedRound(const RecordMapFn& map_fn,
                                         const CombinerFactory& combiner_factory,
                                         const ChainReduceFn& reduce_fn);

  /// Output records of the last completed round, in reduce-worker order
  /// (deterministic for a fixed configuration).
  const std::vector<Record>& records() const { return records_; }

  /// Moves the boundary records out (e.g. to collect a side result and then
  /// re-seed the chain with RunRound). Leaves records() empty.
  std::vector<Record> TakeRecords() {
    std::vector<Record> out = std::move(records_);
    records_.clear();
    return out;
  }

  size_t num_rounds() const { return round_metrics_.size(); }
  const std::vector<DataflowMetrics>& round_metrics() const {
    return round_metrics_;
  }

  /// Field-wise sum of the per-round metrics. aggregate_metrics().shuffle_bytes
  /// is the chain's cumulative shuffle volume.
  DataflowMetrics aggregate_metrics() const;

  uint64_t cumulative_shuffle_bytes() const { return cumulative_shuffle_bytes_; }

  const ChainedDataflowOptions& options() const { return options_; }

 private:
  const DataflowMetrics& Run(size_t num_inputs, const MapFn& map_fn,
                             const CombinerFactory& combiner_factory,
                             const ChainReduceFn& reduce_fn);

  ChainedDataflowOptions options_;
  std::vector<Record> records_;
  std::vector<DataflowMetrics> round_metrics_;
  uint64_t cumulative_shuffle_bytes_ = 0;
};

}  // namespace dseq

#endif  // DSEQ_DATAFLOW_CHAINED_H_
