#include "src/dataflow/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <stdexcept>

#include "src/dataflow/shuffle_buffer.h"
#include "src/util/arena.h"
#include "src/util/thread_pool.h"
#include "src/util/varint.h"

namespace dseq {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// The combiners aggregate into open-addressing tables (power-of-two
// capacity, linear probing, growth at 7/8 load) whose string keys are views
// into a StringArena — one bulk copy per distinct key instead of a heap
// allocation per record.

inline size_t HashBytes(std::string_view s) {
  return std::hash<std::string_view>{}(s);
}

// Shared open-addressing machinery of the combiners. Slot requires `used`
// (bool) and `hash` (size_t); the hash is cached so probes compare hashes
// before bytes and growth rehashes without touching the interned views.
template <typename Slot>
class CombinerTable {
 public:
  /// Returns the slot for `hash`, probing with `equals(slot)` on cached-hash
  /// matches; on a miss, inserts a slot initialized by `init(slot)`.
  template <typename Eq, typename Init>
  Slot& FindOrInsert(size_t hash, const Eq& equals, const Init& init) {
    if (size_ * 8 >= slots_.size() * 7) Grow();
    size_t mask = slots_.size() - 1;
    size_t i = hash & mask;
    while (slots_[i].used) {
      if (slots_[i].hash == hash && equals(slots_[i])) return slots_[i];
      i = (i + 1) & mask;
    }
    slots_[i].used = true;
    slots_[i].hash = hash;
    init(slots_[i]);
    ++size_;
    return slots_[i];
  }

  const std::vector<Slot>& slots() const { return slots_; }

  void Clear() {
    slots_.clear();
    size_ = 0;
  }

 private:
  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.empty() ? 1024 : old.size() * 2, Slot{});
    size_t mask = slots_.size() - 1;
    for (const Slot& slot : old) {
      if (!slot.used) continue;
      size_t i = slot.hash & mask;
      while (slots_[i].used) i = (i + 1) & mask;
      slots_[i] = slot;  // interned views stay valid across rehash
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
};

class SumCombiner : public Combiner {
 public:
  void Add(std::string_view key, std::string_view value) override {
    size_t pos = 0;
    uint64_t count = 0;
    // A malformed count must fail loudly: silently treating it as 1 (or
    // skipping it) would miscount supports downstream.
    if (!GetVarint(value, &pos, &count) || pos != value.size()) {
      throw std::invalid_argument(
          "SumCombiner: value is not a single varint count");
    }
    Slot& slot = table_.FindOrInsert(
        HashBytes(key), [&](const Slot& s) { return s.key == key; },
        [&](Slot& s) { s.key = arena_.Intern(key); });
    if (count > std::numeric_limits<uint64_t>::max() - slot.sum) {
      throw std::overflow_error("SumCombiner: per-key count sum overflows");
    }
    slot.sum += count;
  }

  void Flush(const EmitFn& emit) override {
    std::string value;
    for (const Slot& slot : table_.slots()) {
      if (!slot.used) continue;
      value.clear();
      PutVarint(&value, slot.sum);
      emit(slot.key, value);
    }
    table_.Clear();
    arena_.Clear();
  }

 private:
  struct Slot {
    std::string_view key;
    size_t hash = 0;
    uint64_t sum = 0;
    bool used = false;
  };

  CombinerTable<Slot> table_;
  StringArena arena_;
};

class WeightedValueCombiner : public Combiner {
 public:
  void Add(std::string_view key, std::string_view value) override {
    size_t pos = 0;
    uint64_t weight = 0;
    if (!GetVarint(value, &pos, &weight)) {
      throw std::invalid_argument(
          "WeightedValueCombiner: value lacks a varint weight prefix");
    }
    std::string_view payload = value.substr(pos);  // view, not a copy
    Slot& slot = table_.FindOrInsert(
        HashPair(key, payload),
        [&](const Slot& s) { return s.key == key && s.payload == payload; },
        [&](Slot& s) {
          s.key = arena_.Intern(key);
          s.payload = arena_.Intern(payload);
        });
    if (weight > std::numeric_limits<uint64_t>::max() - slot.sum) {
      throw std::overflow_error(
          "WeightedValueCombiner: per-value weight sum overflows");
    }
    slot.sum += weight;
  }

  void Flush(const EmitFn& emit) override {
    std::string value;
    for (const Slot& slot : table_.slots()) {
      if (!slot.used) continue;
      value.clear();
      PutVarint(&value, slot.sum);
      value.append(slot.payload.data(), slot.payload.size());
      emit(slot.key, value);
    }
    table_.Clear();
    arena_.Clear();
  }

 private:
  struct Slot {
    std::string_view key;
    std::string_view payload;
    size_t hash = 0;
    uint64_t sum = 0;
    bool used = false;
  };

  static size_t HashPair(std::string_view key, std::string_view payload) {
    size_t h = HashBytes(key);
    return h ^ (HashBytes(payload) + 0x9e3779b97f4a7c15ULL + (h << 6) +
                (h >> 2));
  }

  CombinerTable<Slot> table_;
  StringArena arena_;
};

}  // namespace

int ShuffleReducerForKey(std::string_view key, int num_reduce_workers) {
  return static_cast<int>(HashBytes(key) %
                          static_cast<size_t>(ClampWorkers(num_reduce_workers)));
}

std::unique_ptr<Combiner> MakeSumCombiner() {
  return std::make_unique<SumCombiner>();
}

std::unique_ptr<Combiner> MakeWeightedValueCombiner() {
  return std::make_unique<WeightedValueCombiner>();
}

namespace {

// Runs `fn(worker)` for workers 0..n-1 under the configured execution mode
// and returns the phase duration: wall time for threads, the critical path
// (max per-worker busy time) for the cluster simulation.
double RunPhase(int num_workers, Execution execution,
                const std::function<void(int)>& fn) {
  if (execution == Execution::kSimulated) {
    double critical_path = 0.0;
    for (int w = 0; w < num_workers; ++w) {
      auto start = std::chrono::steady_clock::now();
      fn(w);
      critical_path = std::max(critical_path, SecondsSince(start));
    }
    return critical_path;
  }
  auto start = std::chrono::steady_clock::now();
  ParallelWorkers(num_workers, fn);
  return SecondsSince(start);
}

}  // namespace

DataflowMetrics RunMapReduce(size_t num_inputs, const MapFn& map_fn,
                             const CombinerFactory& combiner_factory,
                             const ReduceFn& reduce_fn,
                             const DataflowOptions& options) {
  DataflowMetrics metrics;
  int map_workers = ClampWorkers(options.num_map_workers);
  int reduce_workers = ClampWorkers(options.num_reduce_workers);

  // buckets[map_worker][reduce_worker] -> one byte arena of varint-framed
  // records destined for that reducer.
  std::vector<std::vector<ShuffleBuffer>> buckets(map_workers);
  for (auto& row : buckets) row.resize(reduce_workers);
  std::atomic<uint64_t> shuffle_bytes{0};
  std::atomic<uint64_t> shuffle_compressed_bytes{0};
  std::atomic<uint64_t> shuffle_records{0};
  std::atomic<uint64_t> map_output_records{0};
  // Per-(map worker, reducer) byte counters, summed into
  // metrics.reducer_bytes after the map phase — each worker writes its own
  // row, so the hot emit path pays no shared atomics for them.
  std::vector<std::vector<uint64_t>> worker_reducer_bytes(
      map_workers, std::vector<uint64_t>(reduce_workers, 0));

  size_t shard = (num_inputs + map_workers - 1) / map_workers;
  metrics.map_seconds = RunPhase(map_workers, options.execution, [&](int w) {
    size_t begin = std::min(num_inputs, static_cast<size_t>(w) * shard);
    size_t end = std::min(num_inputs, begin + shard);
    uint64_t local_output_records = 0;

    // Emits a post-combine record into this worker's shuffle buckets.
    EmitFn shuffle_emit = [&](std::string_view key, std::string_view value) {
      uint64_t bytes = key.size() + value.size() + kShuffleRecordOverheadBytes;
      uint64_t total = shuffle_bytes.fetch_add(bytes) + bytes;
      shuffle_records.fetch_add(1, std::memory_order_relaxed);
      if (options.shuffle_budget_bytes > 0 &&
          total > options.shuffle_budget_bytes) {
        throw ShuffleOverflowError(
            "shuffle exceeded memory budget (" +
            std::to_string(options.shuffle_budget_bytes) + " bytes)");
      }
      int r = options.partitioner
                  ? options.partitioner(key, reduce_workers)
                  : ShuffleReducerForKey(key, reduce_workers);
      if (r < 0 || r >= reduce_workers) {
        throw std::out_of_range("partitioner returned reducer " +
                                std::to_string(r) + " for " +
                                std::to_string(reduce_workers) + " workers");
      }
      worker_reducer_bytes[w][r] += bytes;
      buckets[w][r].Append(key, value);
    };

    std::unique_ptr<Combiner> combiner =
        combiner_factory ? combiner_factory() : nullptr;
    EmitFn map_emit = [&](std::string_view key, std::string_view value) {
      ++local_output_records;
      if (combiner != nullptr) {
        combiner->Add(key, value);
      } else {
        shuffle_emit(key, value);
      }
    };

    for (size_t i = begin; i < end; ++i) {
      map_fn(i, map_emit);
    }
    if (combiner != nullptr) combiner->Flush(shuffle_emit);
    if (options.compress_shuffle) {
      uint64_t compressed = 0;
      for (int r = 0; r < reduce_workers; ++r) {
        compressed += buckets[w][r].Compress();
      }
      shuffle_compressed_bytes.fetch_add(compressed,
                                         std::memory_order_relaxed);
    } else {
      // Sync the amortized live-bytes gauge now that the buckets are final.
      for (int r = 0; r < reduce_workers; ++r) buckets[w][r].Seal();
    }
    map_output_records.fetch_add(local_output_records,
                                 std::memory_order_relaxed);
  });
  metrics.shuffle_bytes = shuffle_bytes.load();
  metrics.shuffle_compressed_bytes = shuffle_compressed_bytes.load();
  metrics.shuffle_records = shuffle_records.load();
  metrics.map_output_records = map_output_records.load();
  metrics.reducer_bytes.assign(reduce_workers, 0);
  for (const std::vector<uint64_t>& row : worker_reducer_bytes) {
    for (int r = 0; r < reduce_workers; ++r) {
      metrics.reducer_bytes[r] += row[r];
    }
  }

  // Reduce: each reduce worker drains the bucket column hashed to it, then
  // groups by sorting record views — no per-record rebuild into a hash map.
  // The drained arenas are owned (and released) by the worker itself, so the
  // shuffle's memory is freed worker by worker, not at the end of the phase.
  metrics.reduce_seconds =
      RunPhase(reduce_workers, options.execution, [&](int r) {
        size_t total_records = 0;
        for (int w = 0; w < map_workers; ++w) {
          total_records += buckets[w][r].num_records();
        }
        // Raw frame bytes per map worker. Reserved up front: the string
        // views below point into these buffers, so the vector must never
        // reallocate (SSO strings would move).
        std::vector<std::string> raws;
        raws.reserve(map_workers);
        for (int w = 0; w < map_workers; ++w) {
          raws.push_back(buckets[w][r].ReleaseRaw());
        }

        struct Entry {
          std::string_view key;
          std::string_view value;
        };
        std::vector<Entry> entries;
        entries.reserve(total_records);
        for (const std::string& raw : raws) {
          ShuffleBuffer::ForEachRecord(
              raw, [&](std::string_view key, std::string_view value) {
                entries.push_back(Entry{key, value});
              });
        }
        // Stable: within a key, values keep map-worker-then-emit order.
        std::stable_sort(entries.begin(), entries.end(),
                         [](const Entry& a, const Entry& b) {
                           return a.key < b.key;
                         });

        std::vector<std::string_view> values;
        size_t i = 0;
        while (i < entries.size()) {
          size_t j = i + 1;
          while (j < entries.size() && entries[j].key == entries[i].key) ++j;
          values.clear();
          values.reserve(j - i);
          for (size_t k = i; k < j; ++k) values.push_back(entries[k].value);
          reduce_fn(r, entries[i].key, values);
          i = j;
        }
      });
  return metrics;
}

}  // namespace dseq
