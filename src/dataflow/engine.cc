#include "src/dataflow/engine.h"

#include <atomic>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include "src/util/thread_pool.h"
#include "src/util/varint.h"

namespace dseq {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

class SumCombiner : public Combiner {
 public:
  void Add(std::string key, std::string value) override {
    size_t pos = 0;
    uint64_t count = 0;
    // A malformed count must fail loudly: silently treating it as 1 (or
    // skipping it) would miscount supports downstream.
    if (!GetVarint(value, &pos, &count) || pos != value.size()) {
      throw std::invalid_argument(
          "SumCombiner: value is not a single varint count");
    }
    uint64_t& sum = counts_[std::move(key)];
    if (count > std::numeric_limits<uint64_t>::max() - sum) {
      throw std::overflow_error("SumCombiner: per-key count sum overflows");
    }
    sum += count;
  }

  void Flush(const EmitFn& emit) override {
    for (auto& [key, count] : counts_) {
      std::string value;
      PutVarint(&value, count);
      emit(key, std::move(value));
    }
    counts_.clear();
  }

 private:
  std::unordered_map<std::string, uint64_t> counts_;
};

class WeightedValueCombiner : public Combiner {
 public:
  void Add(std::string key, std::string value) override {
    size_t pos = 0;
    uint64_t weight = 0;
    if (!GetVarint(value, &pos, &weight)) {
      throw std::invalid_argument(
          "WeightedValueCombiner: value lacks a varint weight prefix");
    }
    uint64_t& sum = weights_[std::move(key)][value.substr(pos)];
    if (weight > std::numeric_limits<uint64_t>::max() - sum) {
      throw std::overflow_error(
          "WeightedValueCombiner: per-value weight sum overflows");
    }
    sum += weight;
  }

  void Flush(const EmitFn& emit) override {
    for (auto& [key, payloads] : weights_) {
      for (auto& [payload, weight] : payloads) {
        std::string value;
        PutVarint(&value, weight);
        value += payload;
        emit(key, std::move(value));
      }
    }
    weights_.clear();
  }

 private:
  std::unordered_map<std::string, std::unordered_map<std::string, uint64_t>>
      weights_;
};

struct ShuffleRecord {
  std::string key;
  std::string value;
};

// Fixed per-record framing overhead charged to the shuffle-size metric
// (length prefixes, roughly what a real shuffle file format pays).
constexpr uint64_t kRecordOverheadBytes = 4;

}  // namespace

std::unique_ptr<Combiner> MakeSumCombiner() {
  return std::make_unique<SumCombiner>();
}

std::unique_ptr<Combiner> MakeWeightedValueCombiner() {
  return std::make_unique<WeightedValueCombiner>();
}

namespace {

// Runs `fn(worker)` for workers 0..n-1 under the configured execution mode
// and returns the phase duration: wall time for threads, the critical path
// (max per-worker busy time) for the cluster simulation.
double RunPhase(int num_workers, Execution execution,
                const std::function<void(int)>& fn) {
  if (execution == Execution::kSimulated) {
    double critical_path = 0.0;
    for (int w = 0; w < num_workers; ++w) {
      auto start = std::chrono::steady_clock::now();
      fn(w);
      critical_path = std::max(critical_path, SecondsSince(start));
    }
    return critical_path;
  }
  auto start = std::chrono::steady_clock::now();
  ParallelWorkers(num_workers, fn);
  return SecondsSince(start);
}

}  // namespace

DataflowMetrics RunMapReduce(size_t num_inputs, const MapFn& map_fn,
                             const CombinerFactory& combiner_factory,
                             const ReduceFn& reduce_fn,
                             const DataflowOptions& options) {
  DataflowMetrics metrics;
  int map_workers = std::max(1, options.num_map_workers);
  int reduce_workers = std::max(1, options.num_reduce_workers);

  // buckets[map_worker][reduce_worker] -> records destined for that reducer.
  std::vector<std::vector<std::vector<ShuffleRecord>>> buckets(
      map_workers,
      std::vector<std::vector<ShuffleRecord>>(reduce_workers));
  std::atomic<uint64_t> shuffle_bytes{0};
  std::atomic<uint64_t> shuffle_records{0};
  std::atomic<uint64_t> map_output_records{0};

  size_t shard = map_workers > 0
                     ? (num_inputs + map_workers - 1) / map_workers
                     : num_inputs;
  metrics.map_seconds = RunPhase(map_workers, options.execution, [&](int w) {
    size_t begin = std::min(num_inputs, static_cast<size_t>(w) * shard);
    size_t end = std::min(num_inputs, begin + shard);
    std::hash<std::string> hasher;
    uint64_t local_output_records = 0;

    // Emits a post-combine record into this worker's shuffle buckets.
    EmitFn shuffle_emit = [&](std::string key, std::string value) {
      uint64_t bytes = key.size() + value.size() + kRecordOverheadBytes;
      uint64_t total = shuffle_bytes.fetch_add(bytes) + bytes;
      shuffle_records.fetch_add(1, std::memory_order_relaxed);
      if (options.shuffle_budget_bytes > 0 &&
          total > options.shuffle_budget_bytes) {
        throw ShuffleOverflowError(
            "shuffle exceeded memory budget (" +
            std::to_string(options.shuffle_budget_bytes) + " bytes)");
      }
      size_t r = hasher(key) % reduce_workers;
      buckets[w][r].push_back(ShuffleRecord{std::move(key), std::move(value)});
    };

    std::unique_ptr<Combiner> combiner =
        combiner_factory ? combiner_factory() : nullptr;
    EmitFn map_emit = [&](std::string key, std::string value) {
      ++local_output_records;
      if (combiner != nullptr) {
        combiner->Add(std::move(key), std::move(value));
      } else {
        shuffle_emit(std::move(key), std::move(value));
      }
    };

    for (size_t i = begin; i < end; ++i) {
      map_fn(i, map_emit);
    }
    if (combiner != nullptr) combiner->Flush(shuffle_emit);
    map_output_records.fetch_add(local_output_records,
                                 std::memory_order_relaxed);
  });
  metrics.shuffle_bytes = shuffle_bytes.load();
  metrics.shuffle_records = shuffle_records.load();
  metrics.map_output_records = map_output_records.load();

  // Reduce: each reduce worker owns the records hashed to it.
  metrics.reduce_seconds = RunPhase(reduce_workers, options.execution, [&](int r) {
    std::unordered_map<std::string, std::vector<std::string>> groups;
    size_t expected = 0;
    for (int w = 0; w < map_workers; ++w) expected += buckets[w][r].size();
    groups.reserve(expected);
    for (int w = 0; w < map_workers; ++w) {
      for (ShuffleRecord& rec : buckets[w][r]) {
        groups[std::move(rec.key)].push_back(std::move(rec.value));
      }
      buckets[w][r].clear();
      buckets[w][r].shrink_to_fit();
    }
    for (auto& [key, values] : groups) {
      reduce_fn(r, key, values);
    }
  });
  return metrics;
}

}  // namespace dseq
