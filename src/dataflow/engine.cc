#include "src/dataflow/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <utility>

#include "src/dataflow/map_shard.h"
#include "src/dataflow/shuffle_buffer.h"
#include "src/obs/trace.h"
#include "src/spill/external_merger.h"
#include "src/spill/memory_budget.h"
#include "src/spill/spill_context.h"
#include "src/spill/spill_file.h"
#include "src/util/arena.h"
#include "src/util/check.h"
#include "src/util/thread_pool.h"
#include "src/util/varint.h"

namespace dseq {
namespace {

// The combiners aggregate into open-addressing tables (power-of-two
// capacity, linear probing, growth at 7/8 load) whose string keys are views
// into a StringArena — one bulk copy per distinct key instead of a heap
// allocation per record.

inline size_t HashBytes(std::string_view s) {
  return std::hash<std::string_view>{}(s);
}

// Shared open-addressing machinery of the combiners. Slot requires `used`
// (bool) and `hash` (size_t); the hash is cached so probes compare hashes
// before bytes and growth rehashes without touching the interned views.
template <typename Slot>
class CombinerTable {
 public:
  /// Returns the slot for `hash`, probing with `equals(slot)` on cached-hash
  /// matches; on a miss, inserts a slot initialized by `init(slot)`.
  template <typename Eq, typename Init>
  Slot& FindOrInsert(size_t hash, const Eq& equals, const Init& init) {
    if (size_ * 8 >= slots_.size() * 7) Grow();
    size_t mask = slots_.size() - 1;
    size_t i = hash & mask;
    while (slots_[i].used) {
      if (slots_[i].hash == hash && equals(slots_[i])) return slots_[i];
      i = (i + 1) & mask;
    }
    slots_[i].used = true;
    slots_[i].hash = hash;
    init(slots_[i]);
    ++size_;
    return slots_[i];
  }

  const std::vector<Slot>& slots() const { return slots_; }

  /// First allocation size (default 1024 slots, sized for the unbudgeted
  /// hot path). Budget-constrained combiners start small so a tiny memory
  /// budget can hold a real batch of records instead of thrashing on a
  /// table allocation it could never fit.
  void set_initial_capacity(size_t slots) { initial_capacity_ = slots; }

  /// Actually frees the slot storage (not just clear()): Clear is called
  /// when a table is spilled, and a spilled table's memory must really
  /// return to the budget.
  void Clear() {
    std::vector<Slot>().swap(slots_);
    size_ = 0;
  }

 private:
  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.empty() ? initial_capacity_ : old.size() * 2, Slot{});
    size_t mask = slots_.size() - 1;
    for (const Slot& slot : old) {
      if (!slot.used) continue;
      size_t i = slot.hash & mask;
      while (slots_[i].used) i = (i + 1) & mask;
      slots_[i] = slot;  // interned views stay valid across rehash
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
  size_t initial_capacity_ = 1024;
};

/// Initial table capacity of budget-constrained combiners (see
/// CombinerTable::set_initial_capacity).
constexpr size_t kSpillInitialSlots = 16;

// Budget charging + spill-run bookkeeping shared by the spill-aware
// combiners. Subclasses report their resident bytes after every Add; when
// the shared budget cannot absorb the growth they spill their table as a
// sorted partial run (SpillPartial) and Flush external-merges the runs so
// the emitted records equal the in-memory path's fully-combined output.
class SpillableCombiner : public Combiner {
 public:
  void EnableSpill(CombinerSpillContext* ctx) override { ctx_ = ctx; }

 protected:
  ~SpillableCombiner() override { ReleaseCharge(); }

  /// Writes the current table as a sorted run into runs_ and clears it.
  virtual void SpillPartial() = 0;

  bool has_runs() const { return !runs_.empty(); }
  bool spilling() const { return ctx_ != nullptr; }

  /// Records added between spills while the table is in overdraft (its
  /// baseline alone exceeds the budget share): one disk run amortizes at
  /// least this many records, so an adversarially tiny budget degrades
  /// into batched runs instead of one file per record.
  static constexpr uint64_t kSpillBatchRecords = 64;

  /// Charges the growth of the resident state after an Add, spilling when
  /// the budget is exhausted (or throwing when spilling is disabled).
  /// `payload_bytes` is the interned record payload (the part of the
  /// resident state a spill actually turns into run bytes, as opposed to
  /// the slot-array baseline).
  void ChargeResident(size_t resident_bytes, size_t payload_bytes) {
    if (ctx_ == nullptr) return;
    ++records_since_spill_;
    if (resident_bytes > charged_) {
      uint64_t delta = resident_bytes - charged_;
      if (ctx_->budget->TryCharge(delta)) {
        charged_ = resident_bytes;
      } else {
        if (!ctx_->can_spill()) {
          throw ShuffleOverflowError(
              "round " + std::to_string(ctx_->round_index) + ", map worker " +
              std::to_string(ctx_->map_worker) +
              ": combiner state exceeded the memory budget (budget " +
              std::to_string(ctx_->budget->budget_bytes()) +
              " bytes, resident " +
              std::to_string(ctx_->budget->used_bytes()) + " bytes, attempted +" +
              std::to_string(delta) +
              " bytes); set spill_dir to spill to disk or raise "
              "memory_budget_bytes");
        }
        // Spill if the run would carry a worthwhile payload; otherwise take
        // the overdraft (bounded by the batch rule below plus the payload
        // cap here) so a budget smaller than the minimum table does not
        // degrade into one-record runs.
        if (records_since_spill_ >= kSpillBatchRecords ||
            payload_bytes >= std::min<uint64_t>(
                                 ctx_->budget->budget_bytes() / 2, 65536)) {
          Spill();
          return;
        }
        ctx_->budget->ForceCharge(delta);
        charged_ = resident_bytes;
        overdraft_ = true;
      }
    }
    // Periodic drain while over budget: even a table whose resident size
    // has stopped growing (e.g. one hot key absorbing every record) sheds
    // its state every batch, keeping the overdraft honest and bounded.
    if (overdraft_ && records_since_spill_ >= kSpillBatchRecords) Spill();
  }

  void ReleaseCharge() {
    if (ctx_ != nullptr && charged_ > 0) {
      ctx_->budget->Release(charged_);
      charged_ = 0;
    }
    overdraft_ = false;
    records_since_spill_ = 0;
  }

  void Spill() {
    SpillPartial();  // clears the table and calls ReleaseCharge
    overdraft_ = false;
    records_since_spill_ = 0;
  }

  /// Writes `entries` (already in run order; views must stay valid for the
  /// call) as one sorted run and registers it.
  void WriteRun(
      const std::vector<std::pair<std::string_view, std::string_view>>&
          entries) {
    SpillFile run = SpillFile::Create(ctx_->spill_dir);
    SpillWriter writer(&run, ctx_->compress_spill, ctx_->stats);
    for (const auto& [key, value] : entries) writer.Append(key, value);
    writer.Finish();
    runs_.push_back(std::move(run));
  }

  /// Merge plan over all spilled runs (consumed) — the caller adds its
  /// in-memory tail and streams the groups.
  ExternalMergePlan MakeMergePlan() {
    ExternalMergePlan plan(ctx_->spill_dir, ctx_->compress_spill,
                           ctx_->merge_fan_in, ctx_->stats, ctx_->budget);
    for (SpillFile& run : runs_) plan.AddRun(std::move(run));
    runs_.clear();
    return plan;
  }

 private:
  CombinerSpillContext* ctx_ = nullptr;
  uint64_t charged_ = 0;
  uint64_t records_since_spill_ = 0;
  bool overdraft_ = false;
  std::vector<SpillFile> runs_;
};

class SumCombiner : public SpillableCombiner {
 public:
  void EnableSpill(CombinerSpillContext* ctx) override {
    SpillableCombiner::EnableSpill(ctx);
    table_.set_initial_capacity(kSpillInitialSlots);
  }

  void Add(std::string_view key, std::string_view value) override {
    size_t pos = 0;
    uint64_t count = 0;
    // A malformed count must fail loudly: silently treating it as 1 (or
    // skipping it) would miscount supports downstream.
    if (!GetVarint(value, &pos, &count) || pos != value.size()) {
      throw std::invalid_argument(
          "SumCombiner: value is not a single varint count");
    }
    Slot& slot = table_.FindOrInsert(
        HashBytes(key), [&](const Slot& s) { return s.key == key; },
        [&](Slot& s) { s.key = arena_.Intern(key); });
    if (count > std::numeric_limits<uint64_t>::max() - slot.sum) {
      throw std::overflow_error("SumCombiner: per-key count sum overflows");
    }
    slot.sum += count;
    ChargeResident(arena_.bytes() + table_.slots().size() * sizeof(Slot),
                   arena_.bytes());
  }

  void Flush(const EmitFn& emit) override {
    if (has_runs()) {
      FlushExternal(emit);
    } else if (spilling()) {
      // Key-sorted, exactly like the external path: every budgeted run
      // (spilled or not, whatever the table capacity) emits one
      // deterministic stream.
      std::string values;
      for (const auto& [key, value] : SortedEntries(&values)) {
        emit(key, value);
      }
    } else {
      // Unbudgeted hot path: table order, no sort, no extra pass. Flush
      // order is per-run deterministic but unspecified across
      // configurations (it already varies with sharding), and the reduce
      // phase re-sorts by key anyway.
      std::string value;
      for (const Slot& slot : table_.slots()) {
        if (!slot.used) continue;
        value.clear();
        PutVarint(&value, slot.sum);
        emit(slot.key, value);
      }
    }
    table_.Clear();
    arena_.Clear();
    ReleaseCharge();
  }

 private:
  struct Slot {
    std::string_view key;
    size_t hash = 0;
    uint64_t sum = 0;
    bool used = false;
  };

  // Current table as (key, varint(sum)) entries sorted by key; `values`
  // backs the value views.
  std::vector<std::pair<std::string_view, std::string_view>> SortedEntries(
      std::string* values) const {
    std::vector<const Slot*> live;
    for (const Slot& slot : table_.slots()) {
      if (slot.used) live.push_back(&slot);
    }
    std::sort(live.begin(), live.end(),
              [](const Slot* a, const Slot* b) { return a->key < b->key; });
    std::vector<std::pair<size_t, size_t>> spans;
    spans.reserve(live.size());
    for (const Slot* slot : live) {
      size_t offset = values->size();
      PutVarint(values, slot->sum);
      spans.emplace_back(offset, values->size() - offset);
    }
    std::vector<std::pair<std::string_view, std::string_view>> entries;
    entries.reserve(live.size());
    for (size_t i = 0; i < live.size(); ++i) {
      entries.emplace_back(
          live[i]->key,
          std::string_view(values->data() + spans[i].first, spans[i].second));
    }
    return entries;
  }

  void SpillPartial() override {
    std::string values;
    WriteRun(SortedEntries(&values));
    table_.Clear();
    arena_.Clear();
    ReleaseCharge();
  }

  // External aggregation: merge the spilled partial runs with the current
  // table, summing equal keys — the emitted stream is exactly the one-flush
  // in-memory output (same records, key-sorted order).
  void FlushExternal(const EmitFn& emit) {
    std::string values;
    auto entries = SortedEntries(&values);
    ExternalMergePlan plan = MakeMergePlan();
    if (!entries.empty()) {
      plan.AddSource(std::make_unique<InMemorySource>(std::move(entries)));
    }
    std::string value;
    plan.MergeGroups([&](std::string_view key,
                         std::vector<std::string_view>& partials) {
      uint64_t total = 0;
      for (std::string_view partial : partials) {
        size_t pos = 0;
        uint64_t sum = 0;
        if (!GetVarint(partial, &pos, &sum) || pos != partial.size()) {
          throw std::runtime_error("SumCombiner: corrupt spilled partial sum");
        }
        if (sum > std::numeric_limits<uint64_t>::max() - total) {
          throw std::overflow_error(
              "SumCombiner: per-key count sum overflows");
        }
        total += sum;
      }
      value.clear();
      PutVarint(&value, total);
      emit(key, value);
    });
  }

  CombinerTable<Slot> table_;
  StringArena arena_;
};

class WeightedValueCombiner : public SpillableCombiner {
 public:
  void EnableSpill(CombinerSpillContext* ctx) override {
    SpillableCombiner::EnableSpill(ctx);
    table_.set_initial_capacity(kSpillInitialSlots);
  }

  void Add(std::string_view key, std::string_view value) override {
    size_t pos = 0;
    uint64_t weight = 0;
    if (!GetVarint(value, &pos, &weight)) {
      throw std::invalid_argument(
          "WeightedValueCombiner: value lacks a varint weight prefix");
    }
    std::string_view payload = value.substr(pos);  // view, not a copy
    Slot& slot = table_.FindOrInsert(
        HashPair(key, payload),
        [&](const Slot& s) { return s.key == key && s.payload == payload; },
        [&](Slot& s) {
          s.key = arena_.Intern(key);
          s.payload = arena_.Intern(payload);
        });
    if (weight > std::numeric_limits<uint64_t>::max() - slot.sum) {
      throw std::overflow_error(
          "WeightedValueCombiner: per-value weight sum overflows");
    }
    slot.sum += weight;
    ChargeResident(arena_.bytes() + table_.slots().size() * sizeof(Slot),
                   arena_.bytes());
  }

  void Flush(const EmitFn& emit) override {
    if (has_runs()) {
      FlushExternal(emit);
    } else if (spilling()) {
      // Composite-sorted, exactly like the external path (and independent
      // of the table capacity): every budgeted run emits one deterministic
      // stream.
      std::string bytes;
      std::string value;
      for (const auto& [composite, sum] : SortedEntries(&bytes)) {
        auto [key, payload] = CompositeParts(composite);
        value.assign(sum.data(), sum.size());
        value.append(payload.data(), payload.size());
        emit(key, value);
      }
    } else {
      // Unbudgeted hot path: table order, no encode, no sort (see
      // SumCombiner::Flush).
      std::string value;
      for (const Slot& slot : table_.slots()) {
        if (!slot.used) continue;
        value.clear();
        PutVarint(&value, slot.sum);
        value.append(slot.payload.data(), slot.payload.size());
        emit(slot.key, value);
      }
    }
    table_.Clear();
    arena_.Clear();
    ReleaseCharge();
  }

 private:
  struct Slot {
    std::string_view key;
    std::string_view payload;
    size_t hash = 0;
    uint64_t sum = 0;
    bool used = false;
  };

  static size_t HashPair(std::string_view key, std::string_view payload) {
    size_t h = HashBytes(key);
    return h ^ (HashBytes(payload) + 0x9e3779b97f4a7c15ULL + (h << 6) +
                (h >> 2));
  }

  // The merge identity is (key, payload), so spill records carry a
  // self-framing composite sort key: varint(key size) + key + payload. Any
  // consistent total order that makes equal identities adjacent works; the
  // original record is recovered by CompositeParts.
  static void AppendComposite(std::string* out, std::string_view key,
                              std::string_view payload) {
    PutVarint(out, key.size());
    out->append(key.data(), key.size());
    if (!payload.empty()) out->append(payload.data(), payload.size());
  }

  static std::pair<std::string_view, std::string_view> CompositeParts(
      std::string_view composite) {
    size_t pos = 0;
    uint64_t key_size = 0;
    if (!GetVarint(composite, &pos, &key_size) ||
        key_size > composite.size() - pos) {
      throw std::runtime_error(
          "WeightedValueCombiner: corrupt spilled composite key");
    }
    return {composite.substr(pos, key_size), composite.substr(pos + key_size)};
  }

  // Current table as (composite key, varint(sum)) entries in composite
  // order; `bytes` backs both views.
  std::vector<std::pair<std::string_view, std::string_view>> SortedEntries(
      std::string* bytes) const {
    std::vector<const Slot*> live;
    for (const Slot& slot : table_.slots()) {
      if (slot.used) live.push_back(&slot);
    }
    std::vector<std::pair<size_t, size_t>> key_spans;  // offset, size
    std::vector<std::pair<size_t, size_t>> value_spans;
    key_spans.reserve(live.size());
    value_spans.reserve(live.size());
    for (const Slot* slot : live) {
      size_t offset = bytes->size();
      AppendComposite(bytes, slot->key, slot->payload);
      key_spans.emplace_back(offset, bytes->size() - offset);
      offset = bytes->size();
      PutVarint(bytes, slot->sum);
      value_spans.emplace_back(offset, bytes->size() - offset);
    }
    std::vector<std::pair<std::string_view, std::string_view>> entries;
    entries.reserve(live.size());
    for (size_t i = 0; i < live.size(); ++i) {
      entries.emplace_back(
          std::string_view(bytes->data() + key_spans[i].first,
                           key_spans[i].second),
          std::string_view(bytes->data() + value_spans[i].first,
                           value_spans[i].second));
    }
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return entries;
  }

  void SpillPartial() override {
    std::string bytes;
    WriteRun(SortedEntries(&bytes));
    table_.Clear();
    arena_.Clear();
    ReleaseCharge();
  }

  void FlushExternal(const EmitFn& emit) {
    std::string bytes;
    auto entries = SortedEntries(&bytes);
    ExternalMergePlan plan = MakeMergePlan();
    if (!entries.empty()) {
      plan.AddSource(std::make_unique<InMemorySource>(std::move(entries)));
    }
    std::string value;
    plan.MergeGroups([&](std::string_view composite,
                         std::vector<std::string_view>& partials) {
      uint64_t total = 0;
      for (std::string_view partial : partials) {
        size_t pos = 0;
        uint64_t sum = 0;
        if (!GetVarint(partial, &pos, &sum) || pos != partial.size()) {
          throw std::runtime_error(
              "WeightedValueCombiner: corrupt spilled partial weight");
        }
        if (sum > std::numeric_limits<uint64_t>::max() - total) {
          throw std::overflow_error(
              "WeightedValueCombiner: per-value weight sum overflows");
        }
        total += sum;
      }
      auto [key, payload] = CompositeParts(composite);
      value.clear();
      PutVarint(&value, total);
      value.append(payload.data(), payload.size());
      emit(key, value);
    });
  }

  CombinerTable<Slot> table_;
  StringArena arena_;
};

}  // namespace

int ShuffleReducerForKey(std::string_view key, int num_reduce_workers) {
  return static_cast<int>(HashBytes(key) %
                          static_cast<size_t>(ClampWorkers(num_reduce_workers)));
}

// Process-global monotonic gauges, bumped with relaxed RMWs from map worker
// threads. Readers take before/after deltas around a phase whose worker
// threads have been joined (or, under proc, run inline in the same thread),
// so the join provides the happens-before and the counters themselves never
// publish other memory — relaxed ordering throughout is sufficient.
std::atomic<uint64_t>& GlobalInputStorageReads() {
  static std::atomic<uint64_t> reads{0};
  return reads;
}

std::atomic<uint64_t>& GlobalInputCacheHits() {
  static std::atomic<uint64_t> hits{0};
  return hits;
}

std::unique_ptr<Combiner> MakeSumCombiner() {
  return std::make_unique<SumCombiner>();
}

std::unique_ptr<Combiner> MakeWeightedValueCombiner() {
  return std::make_unique<WeightedValueCombiner>();
}

namespace {

// Runs `fn(worker)` for workers 0..n-1 under the configured execution mode
// and returns the phase duration: wall time for threads, the critical path
// (max per-worker busy time) for the cluster simulation.
double RunPhase(int num_workers, Execution execution,
                const std::function<void(int)>& fn) {
  if (execution == Execution::kSimulated) {
    double critical_path = 0.0;
    for (int w = 0; w < num_workers; ++w) {
      auto start = obs::Now();
      fn(w);
      critical_path = std::max(critical_path, obs::SecondsSince(start));
    }
    return critical_path;
  }
  auto start = obs::Now();
  ParallelWorkers(num_workers, fn);
  return obs::SecondsSince(start);
}

}  // namespace

DataflowMetrics RunMapReduce(size_t num_inputs, const MapFn& map_fn,
                             const CombinerFactory& combiner_factory,
                             const ReduceFn& reduce_fn,
                             const DataflowOptions& options) {
  if (options.backend != DataflowBackend::kLocal) {
    throw std::invalid_argument(
        "RunMapReduce only executes the local backend; run proc-backend "
        "rounds through DataflowJob (src/dataflow/chained.h)");
  }
  DataflowMetrics metrics;
  int map_workers = ClampWorkers(options.num_map_workers);
  int reduce_workers = ClampWorkers(options.num_reduce_workers);

  // buckets[map_worker][reduce_worker] -> one byte arena of varint-framed
  // records destined for that reducer.
  std::vector<std::vector<ShuffleBuffer>> buckets(map_workers);
  for (auto& row : buckets) row.resize(reduce_workers);
  std::atomic<uint64_t> shuffle_bytes{0};
  std::atomic<uint64_t> shuffle_compressed_bytes{0};
  std::atomic<uint64_t> shuffle_records{0};
  std::atomic<uint64_t> map_output_records{0};
  // Per-(map worker, reducer) byte counters, summed into
  // metrics.reducer_bytes after the map phase — each worker writes its own
  // row, so the hot emit path pays no shared atomics for them.
  std::vector<std::vector<uint64_t>> worker_reducer_bytes(
      map_workers, std::vector<uint64_t>(reduce_workers, 0));

  // Out-of-core state: the shared budget, the spill counters, the sorted
  // runs spilled per bucket (chronological), and the bytes each resident
  // bucket has charged. All locals, so a failed round unwinds through the
  // SpillFile destructors and leaves the spill directory empty.
  MemoryBudget budget(options.memory_budget_bytes);
  const bool spill_enabled = budget.enabled() && !options.spill_dir.empty();
  SpillStats spill_stats;
  std::vector<std::vector<std::vector<SpillFile>>> spill_runs(map_workers);
  std::vector<std::vector<uint64_t>> bucket_charged(
      map_workers, std::vector<uint64_t>(reduce_workers, 0));
  std::vector<CombinerSpillContext> combiner_contexts(map_workers);
  if (budget.enabled()) {
    for (auto& runs : spill_runs) runs.resize(reduce_workers);
    for (int w = 0; w < map_workers; ++w) {
      CombinerSpillContext& ctx = combiner_contexts[w];
      ctx.spill_dir = options.spill_dir;
      ctx.compress_spill = options.compress_spill;
      ctx.merge_fan_in = options.spill_merge_fan_in;
      ctx.budget = &budget;
      ctx.stats = &spill_stats;
      ctx.round_index = options.round_index;
      ctx.map_worker = w;
    }
  }

  size_t shard = (num_inputs + map_workers - 1) / map_workers;
  obs::SetCurrentRound(options.round_index);
  metrics.map_seconds = RunPhase(map_workers, options.execution, [&](int w) {
    DSEQ_TRACE_SPAN("engine", "map_shard");
    // The shard body lives in map_shard.cc, shared verbatim with the proc
    // backend's worker processes — that sharing is the byte-identity
    // contract between the two backends.
    MapShardContext ctx;
    ctx.options = &options;
    ctx.map_worker = w;
    ctx.reduce_workers = reduce_workers;
    ctx.begin = std::min(num_inputs, static_cast<size_t>(w) * shard);
    ctx.end = std::min(num_inputs, ctx.begin + shard);
    ctx.map_fn = &map_fn;
    ctx.combiner_factory = &combiner_factory;
    ctx.buckets = buckets[w].data();
    ctx.spill_runs = budget.enabled() ? spill_runs[w].data() : nullptr;
    ctx.bucket_charged = bucket_charged[w].data();
    ctx.reducer_bytes = worker_reducer_bytes[w].data();
    ctx.budget = &budget;
    ctx.spill_stats = &spill_stats;
    ctx.combiner_ctx = budget.enabled() ? &combiner_contexts[w] : nullptr;
    ctx.shuffle_bytes = &shuffle_bytes;
    ctx.shuffle_records = &shuffle_records;
    ctx.map_output_records = &map_output_records;
    ctx.shuffle_compressed_bytes = &shuffle_compressed_bytes;
    RunMapShard(ctx);
  });
  // Relaxed: the map workers that bumped these counters were joined inside
  // RunPhase, which is the actual happens-before edge for the final values.
  metrics.shuffle_bytes = shuffle_bytes.load(std::memory_order_relaxed);
  metrics.shuffle_compressed_bytes =
      shuffle_compressed_bytes.load(std::memory_order_relaxed);
  metrics.shuffle_records = shuffle_records.load(std::memory_order_relaxed);
  metrics.map_output_records =
      map_output_records.load(std::memory_order_relaxed);
  metrics.reducer_bytes.assign(reduce_workers, 0);
  for (const std::vector<uint64_t>& row : worker_reducer_bytes) {
    for (int r = 0; r < reduce_workers; ++r) {
      metrics.reducer_bytes[r] += row[r];
    }
  }

  // Reduce: each reduce worker drains the bucket column hashed to it, then
  // groups by sorting record views — no per-record rebuild into a hash map.
  // The drained arenas are owned (and released) by the worker itself, so the
  // shuffle's memory is freed worker by worker, not at the end of the phase.
  // Columns with spilled runs go through the external merger instead: the
  // runs and the resident tails stream through a stable k-way merge that
  // reproduces the exact key order and within-key value order of the
  // in-memory path.
  metrics.reduce_seconds =
      RunPhase(reduce_workers, options.execution, [&](int r) {
        DSEQ_TRACE_SPAN("engine", "reduce_shard");
        // The column's residency now belongs to this worker and dies with
        // it; hand the charges back to the budget up front.
        if (budget.enabled()) {
          for (int w = 0; w < map_workers; ++w) {
            budget.Release(bucket_charged[w][r]);
            bucket_charged[w][r] = 0;
          }
        }
        bool column_spilled = false;
        if (spill_enabled) {
          for (int w = 0; w < map_workers && !column_spilled; ++w) {
            column_spilled = !spill_runs[w][r].empty();
          }
        }
        if (column_spilled) {
          DSEQ_TRACE_SPAN("engine", "external_merge");
          // Source order is the stability contract: per map worker, the
          // spilled runs (chronological) and then the resident tail.
          ExternalMergePlan plan(options.spill_dir, options.compress_spill,
                                 options.spill_merge_fan_in, &spill_stats,
                                 &budget);
          std::vector<std::string> raws(map_workers);
          for (int w = 0; w < map_workers; ++w) {
            for (SpillFile& run : spill_runs[w][r]) {
              plan.AddRun(std::move(run));
            }
            spill_runs[w][r].clear();
            raws[w] = buckets[w][r].ReleaseRaw();
            if (raws[w].empty()) continue;
            std::vector<std::pair<std::string_view, std::string_view>> tail;
            for (const BucketEntry& entry : SortedBucketEntries(raws[w])) {
              tail.emplace_back(entry.key, entry.value);
            }
            plan.AddSource(std::make_unique<InMemorySource>(std::move(tail)));
          }
          plan.MergeGroups(
              [&](std::string_view key, std::vector<std::string_view>& values) {
                reduce_fn(r, key, values);
              });
          return;
        }

        DSEQ_TRACE_SPAN("engine", "group_sweep");
        size_t total_records = 0;
        for (int w = 0; w < map_workers; ++w) {
          total_records += buckets[w][r].num_records();
        }
        // Raw frame bytes per map worker. Reserved up front: the string
        // views below point into these buffers, so the vector must never
        // reallocate (SSO strings would move).
        std::vector<std::string> raws;
        raws.reserve(map_workers);
        for (int w = 0; w < map_workers; ++w) {
          raws.push_back(buckets[w][r].ReleaseRaw());
        }

        std::vector<BucketEntry> entries;
        entries.reserve(total_records);
        for (const std::string& raw : raws) {
          ShuffleBuffer::ForEachRecord(
              raw, [&](std::string_view key, std::string_view value) {
                entries.push_back(BucketEntry{key, value});
              });
        }
        // Stable: within a key, values keep map-worker-then-emit order.
        std::stable_sort(entries.begin(), entries.end(),
                         [](const BucketEntry& a, const BucketEntry& b) {
                           return a.key < b.key;
                         });

        std::vector<std::string_view> values;
        size_t i = 0;
        while (i < entries.size()) {
          size_t j = i + 1;
          while (j < entries.size() && entries[j].key == entries[i].key) ++j;
          values.clear();
          values.reserve(j - i);
          for (size_t k = i; k < j; ++k) values.push_back(entries[k].value);
          reduce_fn(r, entries[i].key, values);
          i = j;
        }
      });
  // Relaxed: both phases' workers are joined by the time the stats are read.
  metrics.spill_files = spill_stats.files.load(std::memory_order_relaxed);
  metrics.spill_bytes_written =
      spill_stats.bytes_written.load(std::memory_order_relaxed);
  metrics.spill_merge_passes =
      spill_stats.merge_passes.load(std::memory_order_relaxed);
  // Round teardown: every bucket must have been drained by its reduce
  // worker (its live-gauge contribution is then zero — the per-round form
  // of the ShuffleBufferLiveBytes()==0 contract the RAII tests assert), its
  // budget charge handed back, and every spilled run consumed by a merge.
  for (int w = 0; w < map_workers; ++w) {
    for (int r = 0; r < reduce_workers; ++r) {
      DSEQ_DCHECK_MSG(buckets[w][r].data_bytes() == 0,
                      "shuffle bucket not drained at round teardown");
      if (budget.enabled()) {
        DSEQ_DCHECK_MSG(bucket_charged[w][r] == 0,
                        "bucket budget charge not released at round teardown");
        DSEQ_DCHECK_MSG(spill_runs[w][r].empty(),
                        "spilled run not consumed at round teardown");
      }
    }
  }
  return metrics;
}

}  // namespace dseq
