#include "src/dataflow/map_shard.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace dseq {

std::vector<BucketEntry> SortedBucketEntries(std::string_view raw) {
  std::vector<BucketEntry> entries;
  ShuffleBuffer::ForEachRecord(
      raw, [&](std::string_view key, std::string_view value) {
        entries.push_back(BucketEntry{key, value});
      });
  std::stable_sort(
      entries.begin(), entries.end(),
      [](const BucketEntry& a, const BucketEntry& b) { return a.key < b.key; });
  return entries;
}

void RunMapShard(const MapShardContext& ctx) {
  const DataflowOptions& options = *ctx.options;
  MemoryBudget& budget = *ctx.budget;
  const bool spill_enabled = budget.enabled() && !options.spill_dir.empty();
  const int w = ctx.map_worker;
  const int reduce_workers = ctx.reduce_workers;
  uint64_t local_output_records = 0;

  // Drains every resident bucket of this worker to a sorted run on disk,
  // returning the freed bytes to the budget. A worker can only ever free
  // its own state, so this is the whole spill action of the emit path.
  auto spill_worker_buckets = [&]() {
    DSEQ_TRACE_SPAN("engine", "spill_run_write");
    static obs::Histogram& run_bytes_hist =
        obs::GetHistogram("spill.run_bytes");
    for (int r = 0; r < reduce_workers; ++r) {
      if (ctx.buckets[r].num_records() == 0) continue;
      if (obs::Enabled()) run_bytes_hist.Observe(ctx.buckets[r].data_bytes());
      std::string raw = ctx.buckets[r].ReleaseRaw();
      SpillFile run = SpillFile::Create(options.spill_dir);
      SpillWriter writer(&run, options.compress_spill, ctx.spill_stats);
      for (const BucketEntry& entry : SortedBucketEntries(raw)) {
        writer.Append(entry.key, entry.value);
      }
      writer.Finish();
      ctx.spill_runs[r].push_back(std::move(run));
      budget.Release(ctx.bucket_charged[r]);
      ctx.bucket_charged[r] = 0;
    }
  };

  // Emits a post-combine record into this worker's shuffle buckets.
  // Hot-path observability: registry lookups happen once (static locals);
  // each record then costs one relaxed flag load — nothing when disabled.
  static obs::Histogram& record_bytes_hist =
      obs::GetHistogram("shuffle.record_bytes");
  static obs::Histogram& budget_charge_hist =
      obs::GetHistogram("budget.charge_bytes");
  EmitFn shuffle_emit = [&](std::string_view key, std::string_view value) {
    uint64_t bytes = key.size() + value.size() + kShuffleRecordOverheadBytes;
    if (obs::Enabled()) record_bytes_hist.Observe(bytes);
    // The reducer is resolved before the budget checks so overflow errors
    // can name the offending bucket.
    int r = options.partitioner
                ? options.partitioner(key, reduce_workers)
                : ShuffleReducerForKey(key, reduce_workers);
    if (r < 0 || r >= reduce_workers) {
      throw std::out_of_range("partitioner returned reducer " +
                              std::to_string(r) + " for " +
                              std::to_string(reduce_workers) + " workers");
    }
    // Relaxed is enough for the budget check: RMWs on one atomic are
    // totally ordered regardless of memory order, so `total` is an exact
    // running sum; no other memory is published through the counter.
    uint64_t total =
        ctx.shuffle_bytes->fetch_add(bytes, std::memory_order_relaxed) + bytes;
    ctx.shuffle_records->fetch_add(1, std::memory_order_relaxed);
    if (options.shuffle_budget_bytes > 0 &&
        total > options.shuffle_budget_bytes) {
      throw ShuffleOverflowError(
          "round " + std::to_string(options.round_index) +
          ": shuffle volume exceeded the budget buffering a record for "
          "reducer " +
          std::to_string(r) + " (budget " +
          std::to_string(options.shuffle_budget_bytes) + " bytes, attempted " +
          std::to_string(total) + " bytes)");
    }
    if (budget.enabled() && !budget.TryCharge(bytes)) {
      if (!spill_enabled) {
        throw ShuffleOverflowError(
            "round " + std::to_string(options.round_index) + ", map worker " +
            std::to_string(w) +
            ": shuffle memory exceeded the budget buffering a record for "
            "reducer " +
            std::to_string(r) + " (budget " +
            std::to_string(budget.budget_bytes()) + " bytes, resident " +
            std::to_string(budget.used_bytes()) + " bytes, attempted +" +
            std::to_string(bytes) +
            " bytes); set spill_dir to spill to disk or raise "
            "memory_budget_bytes");
      }
      // Spill only when this worker holds enough resident bytes to make
      // the disk run worthwhile; otherwise take the bounded overdraft
      // (ForceCharge) — spilling near-empty buckets would degrade into
      // one-record runs when other workers hold the whole budget.
      uint64_t resident = 0;
      for (int rr = 0; rr < reduce_workers; ++rr) {
        resident += ctx.bucket_charged[rr];
      }
      uint64_t min_worth_spilling = std::max<uint64_t>(
          bytes, std::min<uint64_t>(budget.budget_bytes() / 2, 4096));
      if (resident >= min_worth_spilling) {
        spill_worker_buckets();
        // Everything this worker can free is on disk; the record itself
        // must still be buffered (bounded overshoot, see MemoryBudget).
        if (!budget.TryCharge(bytes)) budget.ForceCharge(bytes);
      } else {
        budget.ForceCharge(bytes);
      }
    }
    if (budget.enabled()) {
      ctx.bucket_charged[r] += bytes;
      // Budget pressure: how full the budget is per charge, in percent.
      if (obs::Enabled()) {
        budget_charge_hist.Observe(budget.used_bytes() * 100 /
                                   budget.budget_bytes());
      }
    }
    ctx.reducer_bytes[r] += bytes;
    ctx.buckets[r].Append(key, value);
  };

  std::unique_ptr<Combiner> combiner =
      *ctx.combiner_factory ? (*ctx.combiner_factory)() : nullptr;
  if (combiner != nullptr && budget.enabled()) {
    combiner->EnableSpill(ctx.combiner_ctx);
  }
  EmitFn map_emit = [&](std::string_view key, std::string_view value) {
    ++local_output_records;
    if (combiner != nullptr) {
      combiner->Add(key, value);
    } else {
      shuffle_emit(key, value);
    }
  };

  for (size_t i = ctx.begin; i < ctx.end; ++i) {
    (*ctx.map_fn)(i, map_emit);
    if (ctx.progress != nullptr) {
      ctx.progress->fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (combiner != nullptr) {
    DSEQ_TRACE_SPAN("engine", "combine_flush");
    combiner->Flush(shuffle_emit);
  }
  if (options.compress_shuffle) {
    uint64_t compressed = 0;
    for (int r = 0; r < reduce_workers; ++r) {
      compressed += ctx.buckets[r].Compress();
    }
    ctx.shuffle_compressed_bytes->fetch_add(compressed,
                                            std::memory_order_relaxed);
  } else {
    // Sync the amortized live-bytes gauge now that the buckets are final.
    for (int r = 0; r < reduce_workers; ++r) ctx.buckets[r].Seal();
  }
  ctx.map_output_records->fetch_add(local_output_records,
                                    std::memory_order_relaxed);
}

}  // namespace dseq
