#include "src/dataflow/chained.h"

#include <algorithm>
#include <iterator>

#include "src/obs/trace.h"
#include "src/rpc/proc_backend.h"
#include "src/util/thread_pool.h"

namespace dseq {

const DataflowMetrics& DataflowJob::Run(size_t num_inputs, const MapFn& map_fn,
                                        const CombinerFactory& combiner_factory,
                                        const ChainReduceFn& reduce_fn) {
  DataflowOptions round_options = options_;
  // Stamp the 0-based round index so budget-overflow errors (and spill
  // diagnostics) can name the round that tripped.
  round_options.round_index = static_cast<int>(round_metrics_.size());
  obs::SetCurrentRound(round_options.round_index);
  DSEQ_TRACE_SPAN("driver", "round");
  if (options_.cumulative_shuffle_budget_bytes > 0) {
    // The engine throws once a round shuffles more than its per-round budget,
    // so the cumulative budget becomes a per-round budget of whatever is left
    // of it. An exhausted cumulative budget must still fail on the first
    // record of the next round; budget 0 means "unlimited" to the engine, so
    // clamp the remainder to one byte (every record is larger).
    uint64_t remaining =
        options_.cumulative_shuffle_budget_bytes > cumulative_shuffle_bytes_
            ? options_.cumulative_shuffle_budget_bytes -
                  cumulative_shuffle_bytes_
            : 1;
    round_options.shuffle_budget_bytes =
        options_.shuffle_budget_bytes == 0
            ? remaining
            : std::min(options_.shuffle_budget_bytes, remaining);
  }

  if (options_.backend == DataflowBackend::kProc) {
    // Multi-process round: forked workers run the map shards and reduce
    // columns, the boundary records come back over the wire already in
    // reduce-task order — the same flattening the local path produces below.
    // RunMapReduce rejects kProc, so the dispatch lives here, where the
    // chain-level budgets and round indices have already been resolved.
    round_options.backend = DataflowBackend::kLocal;  // workers run locally
    ProcRoundResult result = RunProcRound(num_inputs, map_fn, combiner_factory,
                                          reduce_fn, round_options);
    cumulative_shuffle_bytes_ += result.metrics.shuffle_bytes;
    records_ = std::move(result.records);
    round_metrics_.push_back(std::move(result.metrics));
    return round_metrics_.back();
  }

  int reduce_workers = ClampWorkers(options_.num_reduce_workers);
  std::vector<std::vector<Record>> out(reduce_workers);
  // One emitter per reduce worker, built up front: the reduce loop runs once
  // per distinct key and must not pay a std::function allocation each time.
  std::vector<EmitFn> emitters;
  emitters.reserve(reduce_workers);
  for (int w = 0; w < reduce_workers; ++w) {
    emitters.push_back([&out, w](std::string_view k, std::string_view v) {
      // Boundary records outlive the round, so the views are copied here.
      out[w].push_back(Record{std::string(k), std::string(v)});
    });
  }
  ReduceFn wrapped_reduce = [&](int worker, std::string_view key,
                                std::vector<std::string_view>& values) {
    reduce_fn(worker, key, values, emitters[worker]);
  };

  DataflowMetrics metrics = RunMapReduce(num_inputs, map_fn, combiner_factory,
                                         wrapped_reduce, round_options);
  cumulative_shuffle_bytes_ += metrics.shuffle_bytes;

  records_.clear();
  size_t total = 0;
  for (const auto& worker_records : out) total += worker_records.size();
  records_.reserve(total);
  for (auto& worker_records : out) {
    records_.insert(records_.end(),
                    std::make_move_iterator(worker_records.begin()),
                    std::make_move_iterator(worker_records.end()));
  }
  round_metrics_.push_back(metrics);
  return round_metrics_.back();
}

const DataflowMetrics& DataflowJob::RunRound(
    size_t num_inputs, const MapFn& map_fn,
    const CombinerFactory& combiner_factory, const ChainReduceFn& reduce_fn) {
  return Run(num_inputs, map_fn, combiner_factory, reduce_fn);
}

const DataflowMetrics& DataflowJob::RunChainedRound(
    const RecordMapFn& map_fn, const CombinerFactory& combiner_factory,
    const ChainReduceFn& reduce_fn) {
  std::vector<Record> inputs = TakeRecords();
  MapFn wrapped_map = [&](size_t index, const EmitFn& emit) {
    map_fn(index, inputs[index], emit);
  };
  return Run(inputs.size(), wrapped_map, combiner_factory, reduce_fn);
}

DataflowMetrics DataflowJob::aggregate_metrics() const {
  DataflowMetrics total;
  for (const DataflowMetrics& m : round_metrics_) {
    total.map_seconds += m.map_seconds;
    total.reduce_seconds += m.reduce_seconds;
    total.shuffle_bytes += m.shuffle_bytes;
    total.shuffle_compressed_bytes += m.shuffle_compressed_bytes;
    total.shuffle_records += m.shuffle_records;
    total.map_output_records += m.map_output_records;
    total.spill_files += m.spill_files;
    total.spill_bytes_written += m.spill_bytes_written;
    total.spill_merge_passes += m.spill_merge_passes;
    total.input_storage_reads += m.input_storage_reads;
    total.input_cache_hits += m.input_cache_hits;
    total.proc_task_attempts += m.proc_task_attempts;
    total.proc_task_retries += m.proc_task_retries;
    total.proc_worker_kills += m.proc_worker_kills;
    total.proc_workers_respawned += m.proc_workers_respawned;
    total.proc_segment_chunks += m.proc_segment_chunks;
    total.proc_parked_tails += m.proc_parked_tails;
    if (m.reducer_bytes.size() > total.reducer_bytes.size()) {
      total.reducer_bytes.resize(m.reducer_bytes.size(), 0);
    }
    for (size_t r = 0; r < m.reducer_bytes.size(); ++r) {
      total.reducer_bytes[r] += m.reducer_bytes[r];
    }
  }
  return total;
}

}  // namespace dseq
