// Synthetic flat web text (substitute for the paper's ClueWeb CW50 sample).
//
// No hierarchy; long Zipf-distributed sentences. Used for the T2 (MG-FSM
// setting) experiments.
#ifndef DSEQ_DATAGEN_WEB_TEXT_H_
#define DSEQ_DATAGEN_WEB_TEXT_H_

#include <cstdint>

#include "src/dict/sequence.h"

namespace dseq {

struct WebTextOptions {
  size_t num_sentences = 200'000;
  uint64_t seed = 99;
  size_t vocabulary_size = 50'000;
  double zipf_exponent = 1.05;
  size_t mean_sentence_length = 19;
  size_t max_sentence_length = 256;
};

/// Generates and recodes the corpus (no hierarchy).
SequenceDatabase GenerateWebText(const WebTextOptions& options);

}  // namespace dseq

#endif  // DSEQ_DATAGEN_WEB_TEXT_H_
