// Skewed Zipf hierarchies: the adversarial input of the partition-balance
// work (paper Sec. III-B discussion).
//
// The paper argues item-based partitioning stays balanced because the
// frequency-based item order sends the least data to the most frequent
// items. That argument fails for constraints whose candidates are single
// (generalized) items: under ".*(.^).*" every occurrence of an item lands in
// the partition of that item itself, so a Zipf head item receives a rewritten
// copy of nearly every sequence — a single heavy pivot that dominates one
// hash-chosen reducer. This generator produces exactly that shape: leaf
// items with Zipf-distributed popularity grouped under category parents.
#ifndef DSEQ_DATAGEN_SKEWED_ZIPF_H_
#define DSEQ_DATAGEN_SKEWED_ZIPF_H_

#include <cstdint>

#include "src/dict/sequence.h"

namespace dseq {

struct SkewedZipfOptions {
  uint64_t seed = 11;
  size_t num_items = 100;      // leaf vocabulary
  size_t num_groups = 8;       // category parents (0 = flat vocabulary)
  size_t num_sequences = 400;
  size_t min_length = 4;
  size_t max_length = 12;
  double zipf_exponent = 1.2;  // popularity skew; the knob that makes the
                               // head item's partition heavy
};

/// Generates and recodes the database. Deterministic for a seed.
SequenceDatabase GenerateSkewedZipf(const SkewedZipfOptions& options);

}  // namespace dseq

#endif  // DSEQ_DATAGEN_SKEWED_ZIPF_H_
