#include "src/datagen/text_corpus.h"

#include <random>
#include <string>
#include <vector>

#include "src/datagen/zipf.h"

namespace dseq {
namespace {

struct PosClass {
  std::string tag;
  size_t num_lemmas;
  size_t max_forms;
  double noise_weight;  // probability weight in noise token sampling
};

}  // namespace

SequenceDatabase GenerateTextCorpus(const TextCorpusOptions& options) {
  std::mt19937_64 rng(options.seed);
  DictionaryBuilder builder;

  const std::vector<PosClass> open_classes = {
      {"NOUN", options.lemmas_per_pos, 2, 0.30},
      {"VERB", options.lemmas_per_pos, 4, 0.15},
      {"ADJ", options.lemmas_per_pos / 2, 2, 0.10},
      {"ADV", options.lemmas_per_pos / 4, 1, 0.06},
  };
  const std::vector<PosClass> closed_classes = {
      {"DET", 12, 1, 0.12},
      {"PREP", 25, 1, 0.12},
      {"PRON", 15, 1, 0.08},
      {"CONJ", 10, 1, 0.07},
  };

  // forms[c][lemma_rank] = word-form item ids of that lemma.
  struct ClassVocab {
    ItemId tag;
    std::vector<std::vector<ItemId>> forms;
  };
  std::vector<ClassVocab> vocab;
  std::vector<double> noise_weights;
  auto add_class = [&](const PosClass& pos) {
    ClassVocab cv;
    cv.tag = builder.GetOrAddItem(pos.tag);
    cv.forms.resize(pos.num_lemmas);
    for (size_t l = 0; l < pos.num_lemmas; ++l) {
      std::string lemma_name =
          pos.tag.substr(0, 1) + "l" + std::to_string(l);
      ItemId lemma = builder.GetOrAddItem(lemma_name);
      builder.AddParent(lemma, cv.tag);
      size_t num_forms = 1 + rng() % pos.max_forms;
      for (size_t f = 0; f < num_forms; ++f) {
        ItemId form =
            builder.GetOrAddItem(lemma_name + "." + std::to_string(f));
        builder.AddParent(form, lemma);
        cv.forms[l].push_back(form);
      }
    }
    vocab.push_back(std::move(cv));
    noise_weights.push_back(pos.noise_weight);
  };
  for (const PosClass& pos : open_classes) add_class(pos);
  for (const PosClass& pos : closed_classes) add_class(pos);
  const size_t kNoun = 0;
  const size_t kVerb = 1;
  const size_t kAdj = 2;
  const size_t kAdv = 3;
  const size_t kDet = 4;
  const size_t kPrep = 5;

  // The copula "be" (used by constraint N3) with its inflected forms.
  ItemId be_lemma = builder.GetOrAddItem("be");
  builder.AddParent(be_lemma, vocab[kVerb].tag);
  std::vector<ItemId> be_forms;
  for (const char* f : {"is", "was", "are", "been", "being"}) {
    ItemId form = builder.GetOrAddItem(f);
    builder.AddParent(form, be_lemma);
    be_forms.push_back(form);
  }

  // Entities: mention -> type -> ENTITY.
  ItemId entity_root = builder.GetOrAddItem("ENTITY");
  std::vector<ItemId> entity_types;
  for (const char* t : {"PER", "ORG", "LOC"}) {
    ItemId type = builder.GetOrAddItem(t);
    builder.AddParent(type, entity_root);
    entity_types.push_back(type);
  }
  std::vector<ItemId> entities(options.num_entities);
  for (size_t e = 0; e < options.num_entities; ++e) {
    entities[e] = builder.GetOrAddItem("ent" + std::to_string(e));
    builder.AddParent(entities[e], entity_types[e % entity_types.size()]);
  }

  SequenceDatabase db;
  db.dict = builder.Build();

  // Samplers.
  ZipfSampler lemma_zipf(options.lemmas_per_pos, options.zipf_exponent);
  ZipfSampler entity_zipf(options.num_entities, options.zipf_exponent);
  std::discrete_distribution<size_t> noise_class(noise_weights.begin(),
                                                 noise_weights.end());
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  auto sample_form = [&](size_t cls) -> ItemId {
    const auto& forms = vocab[cls].forms;
    size_t lemma = lemma_zipf.Sample(rng) % forms.size();
    const auto& fs = forms[lemma];
    return fs[rng() % fs.size()];
  };
  auto sample_entity = [&]() -> ItemId {
    return entities[entity_zipf.Sample(rng)];
  };
  auto noise_token = [&]() -> ItemId { return sample_form(noise_class(rng)); };

  db.sequences.reserve(options.num_sentences);
  std::geometric_distribution<size_t> length_dist(
      1.0 / static_cast<double>(options.mean_sentence_length));
  for (size_t s = 0; s < options.num_sentences; ++s) {
    size_t len = std::min(options.max_sentence_length,
                          std::max<size_t>(3, length_dist(rng) + 3));
    Sequence sentence;
    sentence.reserve(len + 8);
    double kind = unit(rng);
    if (kind < options.relational_fraction) {
      // ENTITY VERB+ NOUN? PREP? ENTITY surrounded by noise (drives N1/N2).
      size_t lead = rng() % std::max<size_t>(1, len / 2);
      for (size_t i = 0; i < lead; ++i) sentence.push_back(noise_token());
      sentence.push_back(sample_entity());
      sentence.push_back(sample_form(kVerb));
      if (unit(rng) < 0.4) sentence.push_back(sample_form(kVerb));
      if (unit(rng) < 0.5) sentence.push_back(sample_form(kNoun));
      if (unit(rng) < 0.6) sentence.push_back(sample_form(kPrep));
      sentence.push_back(sample_entity());
      while (sentence.size() < len) sentence.push_back(noise_token());
    } else if (kind < options.relational_fraction + options.copular_fraction) {
      // ENTITY be-form DET? ADV? ADJ? NOUN (drives N3).
      size_t lead = rng() % std::max<size_t>(1, len / 2);
      for (size_t i = 0; i < lead; ++i) sentence.push_back(noise_token());
      sentence.push_back(sample_entity());
      sentence.push_back(be_forms[rng() % be_forms.size()]);
      if (unit(rng) < 0.5) sentence.push_back(sample_form(kDet));
      if (unit(rng) < 0.3) sentence.push_back(sample_form(kAdv));
      if (unit(rng) < 0.5) sentence.push_back(sample_form(kAdj));
      sentence.push_back(sample_form(kNoun));
      while (sentence.size() < len) sentence.push_back(noise_token());
    } else {
      for (size_t i = 0; i < len; ++i) {
        if (unit(rng) < 0.05) {
          sentence.push_back(sample_entity());
        } else {
          sentence.push_back(noise_token());
        }
      }
    }
    db.sequences.push_back(std::move(sentence));
  }

  db.Recode(/*num_workers=*/4);
  return db;
}

}  // namespace dseq
