// Synthetic annotated text corpus (substitute for the paper's NYT dataset).
//
// Hierarchy shape follows the paper: word forms generalize to their lemma
// and the lemma to its part-of-speech tag; entity mentions generalize to
// their type (PER/ORG/LOC) and the type to ENTITY. Sentences are generated
// from a mixture of relational templates (ENTITY VERB [NOUN] [PREP] ENTITY),
// copular templates (ENTITY be-form [DET] [ADV] [ADJ] NOUN), and Zipf noise,
// so the paper's constraints N1–N5 all find patterns.
#ifndef DSEQ_DATAGEN_TEXT_CORPUS_H_
#define DSEQ_DATAGEN_TEXT_CORPUS_H_

#include <cstdint>

#include "src/dict/sequence.h"

namespace dseq {

struct TextCorpusOptions {
  size_t num_sentences = 100'000;
  uint64_t seed = 42;

  size_t lemmas_per_pos = 2'000;   // lemmas per part-of-speech class
  size_t num_entities = 5'000;     // distinct entity mentions
  double zipf_exponent = 1.1;      // lemma popularity skew
  double relational_fraction = 0.25;  // sentences with an injected relation
  double copular_fraction = 0.10;     // sentences with a copular pattern
  size_t mean_sentence_length = 16;
  size_t max_sentence_length = 128;
};

/// Generates and recodes the corpus (ready for mining).
SequenceDatabase GenerateTextCorpus(const TextCorpusOptions& options);

}  // namespace dseq

#endif  // DSEQ_DATAGEN_TEXT_CORPUS_H_
