#include "src/datagen/skewed_zipf.h"

#include <random>
#include <string>
#include <vector>

#include "src/datagen/zipf.h"
#include "src/dict/dictionary.h"

namespace dseq {

SequenceDatabase GenerateSkewedZipf(const SkewedZipfOptions& options) {
  std::mt19937_64 rng(options.seed);
  DictionaryBuilder builder;

  std::vector<ItemId> groups;
  for (size_t g = 0; g < options.num_groups; ++g) {
    groups.push_back(builder.AddItem("G" + std::to_string(g)));
  }
  std::vector<ItemId> leaves;
  for (size_t i = 0; i < options.num_items; ++i) {
    ItemId leaf = builder.AddItem("w" + std::to_string(i));
    leaves.push_back(leaf);
    if (!groups.empty()) {
      // Popularity rank i and category i % G are independent, so every
      // category mixes head and tail leaves (categories stay mid-frequency
      // while the head leaf dominates on its own).
      builder.AddParent(leaf, groups[i % groups.size()]);
    }
  }

  SequenceDatabase db;
  db.dict = builder.Build();
  ZipfSampler zipf(options.num_items, options.zipf_exponent);
  size_t min_length = options.min_length > 0 ? options.min_length : 1;
  size_t max_length =
      options.max_length >= min_length ? options.max_length : min_length;
  for (size_t s = 0; s < options.num_sequences; ++s) {
    size_t length =
        min_length + rng() % (max_length - min_length + 1);
    Sequence seq;
    seq.reserve(length);
    for (size_t j = 0; j < length; ++j) {
      seq.push_back(leaves[zipf.Sample(rng)]);
    }
    db.sequences.push_back(std::move(seq));
  }
  db.Recode();
  return db;
}

}  // namespace dseq
