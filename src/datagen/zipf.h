// Zipf-distributed sampling for synthetic dataset generators.
#ifndef DSEQ_DATAGEN_ZIPF_H_
#define DSEQ_DATAGEN_ZIPF_H_

#include <cmath>
#include <cstddef>
#include <random>
#include <vector>

namespace dseq {

/// Samples ranks 0..n-1 with probability proportional to 1/(rank+1)^s.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s) : cdf_(n) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = total;
    }
    for (size_t i = 0; i < n; ++i) cdf_[i] /= total;
  }

  template <typename Rng>
  size_t Sample(Rng& rng) const {
    double u = std::uniform_real_distribution<double>(0.0, 1.0)(rng);
    size_t lo = 0;
    size_t hi = cdf_.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo < cdf_.size() ? lo : cdf_.size() - 1;
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace dseq

#endif  // DSEQ_DATAGEN_ZIPF_H_
