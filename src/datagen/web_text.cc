#include "src/datagen/web_text.h"

#include <random>

#include "src/datagen/zipf.h"

namespace dseq {

SequenceDatabase GenerateWebText(const WebTextOptions& options) {
  std::mt19937_64 rng(options.seed);
  DictionaryBuilder builder;
  std::vector<ItemId> words(options.vocabulary_size);
  for (size_t w = 0; w < options.vocabulary_size; ++w) {
    words[w] = builder.GetOrAddItem("w" + std::to_string(w));
  }

  SequenceDatabase db;
  db.dict = builder.Build();
  ZipfSampler zipf(options.vocabulary_size, options.zipf_exponent);
  std::geometric_distribution<size_t> length_dist(
      1.0 / static_cast<double>(options.mean_sentence_length));

  db.sequences.reserve(options.num_sentences);
  for (size_t s = 0; s < options.num_sentences; ++s) {
    size_t len = std::min(options.max_sentence_length,
                          std::max<size_t>(2, length_dist(rng) + 2));
    Sequence sentence;
    sentence.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      sentence.push_back(words[zipf.Sample(rng)]);
    }
    db.sequences.push_back(std::move(sentence));
  }

  db.Recode(/*num_workers=*/4);
  return db;
}

}  // namespace dseq
