#include "src/datagen/market_baskets.h"

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "src/datagen/zipf.h"

namespace dseq {

SequenceDatabase GenerateMarketBaskets(const MarketBasketOptions& options) {
  std::mt19937_64 rng(options.seed);
  DictionaryBuilder builder;

  static const char* kDeptNames[] = {"Electr",   "Book",  "MusicInstr",
                                     "Home",     "Toys",  "Sports",
                                     "Clothing", "Grocery"};
  constexpr size_t kNumDeptNames = sizeof(kDeptNames) / sizeof(kDeptNames[0]);

  std::vector<ItemId> products;
  std::vector<std::vector<ItemId>> subcat_products;
  std::vector<ItemId> subcats;

  for (size_t d = 0; d < options.num_departments; ++d) {
    std::string dept_name = d < kNumDeptNames
                                ? kDeptNames[d]
                                : "Dept" + std::to_string(d);
    ItemId dept = builder.GetOrAddItem(dept_name);
    for (size_t c = 0; c < options.categories_per_department; ++c) {
      std::string cat_name = dept_name + ".c" + std::to_string(c);
      ItemId cat = builder.GetOrAddItem(cat_name);
      builder.AddParent(cat, dept);
      for (size_t s = 0; s < options.subcategories_per_category; ++s) {
        // The paper's A3 constraint references a DigitalCamera subtree under
        // electronics; give it a stable name.
        std::string sub_name = (d == 0 && c == 0 && s == 0)
                                   ? "DigitalCamera"
                                   : cat_name + ".s" + std::to_string(s);
        ItemId sub = builder.GetOrAddItem(sub_name);
        builder.AddParent(sub, cat);
        subcats.push_back(sub);
        subcat_products.emplace_back();
        for (size_t p = 0; p < options.products_per_subcategory; ++p) {
          ItemId prod =
              builder.GetOrAddItem("p" + std::to_string(products.size()));
          builder.AddParent(prod, sub);
          products.push_back(prod);
          subcat_products.back().push_back(prod);
        }
      }
    }
  }

  // DAG-ify: some products belong to a second subcategory.
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (ItemId prod : products) {
    if (unit(rng) < options.multi_parent_fraction) {
      ItemId other = subcats[rng() % subcats.size()];
      builder.AddParent(prod, other);
    }
  }

  SequenceDatabase db;
  db.dict = builder.Build();

  ZipfSampler product_zipf(products.size(), options.zipf_exponent);
  ZipfSampler local_zipf(options.products_per_subcategory,
                         options.zipf_exponent);
  std::geometric_distribution<size_t> length_dist(
      1.0 / static_cast<double>(options.mean_basket_length));

  db.sequences.reserve(options.num_customers);
  for (size_t u = 0; u < options.num_customers; ++u) {
    std::vector<size_t> prefs(options.preferred_subcategories);
    for (size_t& p : prefs) p = rng() % subcats.size();
    size_t len = std::min(options.max_basket_length,
                          std::max<size_t>(1, length_dist(rng) + 1));
    Sequence basket;
    basket.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      if (unit(rng) < options.explore_probability) {
        basket.push_back(products[product_zipf.Sample(rng)]);
      } else {
        const auto& pool = subcat_products[prefs[rng() % prefs.size()]];
        basket.push_back(pool[local_zipf.Sample(rng) % pool.size()]);
      }
    }
    db.sequences.push_back(std::move(basket));
  }

  db.Recode(/*num_workers=*/4);
  return db;
}

SequenceDatabase ToForest(const SequenceDatabase& db) {
  const Dictionary& dict = db.dict;
  DictionaryBuilder builder;
  // Re-insert items in fid order so ids carry over 1:1.
  for (ItemId w = 1; w <= dict.size(); ++w) {
    builder.AddItem(dict.Name(w));
  }
  for (ItemId w = 1; w <= dict.size(); ++w) {
    const auto& parents = dict.Parents(w);
    if (parents.empty()) continue;
    ItemId best = parents[0];
    for (ItemId p : parents) {
      if (dict.DocFrequency(p) > dict.DocFrequency(best)) best = p;
    }
    builder.AddParent(w, best);
  }
  SequenceDatabase forest;
  forest.dict = builder.Build();
  forest.sequences = db.sequences;
  forest.Recode(/*num_workers=*/4);
  return forest;
}

}  // namespace dseq
