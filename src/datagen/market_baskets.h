// Synthetic product-review baskets (substitute for the paper's AMZN data).
//
// Products generalize to subcategories, categories, and departments; some
// products have two subcategory parents, making the hierarchy a DAG as in
// the real Amazon catalog. `ToForest` reproduces the paper's AMZN-F
// conversion (keep only the most frequent parent of multi-parent items).
// Departments include the ones referenced by the paper's constraints A1–A4:
// Electr, Book, MusicInstr, and a DigitalCamera subtree under Electr.
#ifndef DSEQ_DATAGEN_MARKET_BASKETS_H_
#define DSEQ_DATAGEN_MARKET_BASKETS_H_

#include <cstdint>

#include "src/dict/sequence.h"

namespace dseq {

struct MarketBasketOptions {
  size_t num_customers = 100'000;
  uint64_t seed = 7;

  size_t num_departments = 8;        // >= 4; first ones get the named roles
  size_t categories_per_department = 8;
  size_t subcategories_per_category = 6;
  size_t products_per_subcategory = 25;
  double multi_parent_fraction = 0.2;  // products with two subcat parents
  double zipf_exponent = 1.05;         // product popularity skew
  size_t mean_basket_length = 4;
  size_t max_basket_length = 200;
  size_t preferred_subcategories = 3;  // customer interest clustering
  double explore_probability = 0.15;   // buy outside preferred subcats
};

/// Generates and recodes the basket database (DAG hierarchy).
SequenceDatabase GenerateMarketBaskets(const MarketBasketOptions& options);

/// The paper's AMZN-F conversion: for every multi-parent item keep only the
/// generalization to the most frequent parent. Returns a recoded forest
/// database with identical sequences (up to recoding).
SequenceDatabase ToForest(const SequenceDatabase& db);

}  // namespace dseq

#endif  // DSEQ_DATAGEN_MARKET_BASKETS_H_
