// Block-allocating byte arena for interning short strings.
//
// The map-side combiners keep one table entry per distinct (key, payload)
// and must not pay a heap allocation per record: Intern copies the bytes
// into a chain of fixed-size blocks and returns a stable std::string_view.
// Views stay valid until Clear() or destruction; blocks are never moved.
#ifndef DSEQ_UTIL_ARENA_H_
#define DSEQ_UTIL_ARENA_H_

#include <cstddef>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

namespace dseq {

class StringArena {
 public:
  static constexpr size_t kBlockSize = 1 << 16;

  /// Copies `s` into the arena and returns a view of the stable copy.
  std::string_view Intern(std::string_view s) {
    // Non-null data even for empty strings, so downstream append/memcpy
    // calls never see a {nullptr, 0} view (UB per [string.append]).
    if (s.empty()) return std::string_view("", 0);
    char* dst;
    if (s.size() > kBlockSize / 4) {
      // Oversized strings get a dedicated block so normal blocks stay dense.
      // The current bump block (tracked by next_/remaining_, not by list
      // position) is unaffected and keeps filling up.
      blocks_.push_back(std::make_unique<char[]>(s.size()));
      dst = blocks_.back().get();
    } else {
      if (s.size() > remaining_) {
        blocks_.push_back(std::make_unique<char[]>(kBlockSize));
        next_ = blocks_.back().get();
        remaining_ = kBlockSize;
      }
      dst = next_;
      next_ += s.size();
      remaining_ -= s.size();
    }
    std::memcpy(dst, s.data(), s.size());
    bytes_ += s.size();
    return std::string_view(dst, s.size());
  }

  /// Drops all interned strings (invalidates every view).
  void Clear() {
    blocks_.clear();
    next_ = nullptr;
    remaining_ = 0;
    bytes_ = 0;
  }

  /// Total interned payload bytes (not block capacity).
  size_t bytes() const { return bytes_; }

 private:
  std::vector<std::unique_ptr<char[]>> blocks_;
  char* next_ = nullptr;
  size_t remaining_ = 0;
  size_t bytes_ = 0;
};

}  // namespace dseq

#endif  // DSEQ_UTIL_ARENA_H_
