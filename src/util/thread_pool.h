// Minimal parallel-for utilities used by the dataflow engine and benches.
#ifndef DSEQ_UTIL_THREAD_POOL_H_
#define DSEQ_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <functional>

namespace dseq {

/// Clamps a configured worker count to at least one worker — the shared
/// interpretation of "0 or negative means run serially" used by the dataflow
/// engine, the parallel-for helpers, and the partition statistics.
inline int ClampWorkers(int num_workers) {
  return num_workers < 1 ? 1 : num_workers;
}

/// Runs `fn(worker_id, begin, end)` over `num_items` items split into
/// `num_workers` contiguous shards, one std::thread per shard. Blocks until
/// all shards complete. If `num_workers <= 1` or `num_items` is small, runs
/// inline on the calling thread (worker_id 0). When `num_items` is smaller
/// than `num_workers`, only as many threads as there are non-empty shards
/// are spawned; worker ids still index shards (callers may size per-worker
/// state by `num_workers` — trailing workers simply never run).
///
/// Exceptions thrown by `fn` are rethrown on the calling thread (first one
/// wins); remaining shards still run to completion.
void ParallelShards(size_t num_items, int num_workers,
                    const std::function<void(int, size_t, size_t)>& fn);

/// Runs `fn(worker_id)` on `num_workers` threads and joins.
void ParallelWorkers(int num_workers, const std::function<void(int)>& fn);

/// Returns a sensible default worker count (hardware concurrency, >= 1).
int DefaultWorkers();

}  // namespace dseq

#endif  // DSEQ_UTIL_THREAD_POOL_H_
