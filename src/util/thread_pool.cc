#include "src/util/thread_pool.h"

#include <algorithm>
#include <exception>
#include <thread>
#include <vector>

#include "src/util/sync.h"

namespace dseq {
namespace {

// First-error capture shared by the worker threads. The annotation pass
// surfaced that the old inline version read the exception slot without the
// mutex after the joins — correct only through the join's happens-before,
// and invisible to the analysis. Funneling both sides through one annotated
// type makes the contract compiler-checked (and trivially safe if a future
// caller rethrows before joining).
class ErrorSlot {
 public:
  // Keeps the first error; later ones are dropped (the contract pinned by
  // thread_pool_test: exactly one exception surfaces per pool run).
  void Capture(std::exception_ptr error) DSEQ_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (!error_) error_ = std::move(error);
  }

  void RethrowIfSet() DSEQ_EXCLUDES(mu_) {
    std::exception_ptr error;
    {
      MutexLock lock(mu_);
      error = error_;
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  Mutex mu_;
  std::exception_ptr error_ DSEQ_GUARDED_BY(mu_);
};

}  // namespace

int DefaultWorkers() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

void ParallelWorkers(int num_workers, const std::function<void(int)>& fn) {
  if (num_workers <= 1) {
    fn(0);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(num_workers);
  ErrorSlot first_error;
  for (int w = 0; w < num_workers; ++w) {
    threads.emplace_back([&, w]() {
      try {
        fn(w);
      } catch (...) {
        first_error.Capture(std::current_exception());
      }
    });
  }
  for (auto& t : threads) t.join();
  first_error.RethrowIfSet();
}

void ParallelShards(size_t num_items, int num_workers,
                    const std::function<void(int, size_t, size_t)>& fn) {
  num_workers = ClampWorkers(num_workers);
  if (num_workers == 1 || num_items <= 1) {
    fn(0, 0, num_items);
    return;
  }
  size_t shard = (num_items + num_workers - 1) / num_workers;
  // With fewer items than workers the trailing shards are empty; spawn only
  // the threads that have work. Shard boundaries (and with them every
  // worker's begin/end) are unchanged, so results stay deterministic.
  int spawned = static_cast<int>(
      std::min<size_t>(num_workers, (num_items + shard - 1) / shard));
  ParallelWorkers(spawned, [&](int w) {
    size_t begin = std::min(num_items, static_cast<size_t>(w) * shard);
    size_t end = std::min(num_items, begin + shard);
    if (begin < end) fn(w, begin, end);
  });
}

}  // namespace dseq
