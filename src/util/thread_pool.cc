#include "src/util/thread_pool.h"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace dseq {

int DefaultWorkers() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

void ParallelWorkers(int num_workers, const std::function<void(int)>& fn) {
  if (num_workers <= 1) {
    fn(0);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(num_workers);
  std::exception_ptr first_error = nullptr;
  std::mutex error_mutex;
  for (int w = 0; w < num_workers; ++w) {
    threads.emplace_back([&, w]() {
      try {
        fn(w);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void ParallelShards(size_t num_items, int num_workers,
                    const std::function<void(int, size_t, size_t)>& fn) {
  num_workers = ClampWorkers(num_workers);
  if (num_workers == 1 || num_items <= 1) {
    fn(0, 0, num_items);
    return;
  }
  size_t shard = (num_items + num_workers - 1) / num_workers;
  // With fewer items than workers the trailing shards are empty; spawn only
  // the threads that have work. Shard boundaries (and with them every
  // worker's begin/end) are unchanged, so results stay deterministic.
  int spawned = static_cast<int>(
      std::min<size_t>(num_workers, (num_items + shard - 1) / shard));
  ParallelWorkers(spawned, [&](int w) {
    size_t begin = std::min(num_items, static_cast<size_t>(w) * shard);
    size_t end = std::min(num_items, begin + shard);
    if (begin < end) fn(w, begin, end);
  });
}

}  // namespace dseq
