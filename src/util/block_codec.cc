#include "src/util/block_codec.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "src/util/varint.h"

namespace dseq {
namespace {

constexpr size_t kWindow = 1 << 16;       // max match distance
constexpr size_t kMaxMatch = 1 << 15;     // cap so token varints stay short
constexpr size_t kHashBits = 15;
constexpr size_t kHashSize = 1 << kHashBits;

// Multiplicative hash of the 4 bytes at p.
inline uint32_t Hash4(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

inline void PutLiteralRun(std::string* out, const uint8_t* begin, size_t len) {
  while (len > 0) {
    // Chunk so the control varint never exceeds 5 bytes (len < 2^31).
    size_t chunk = len < (1u << 30) ? len : (1u << 30);
    PutVarint(out, static_cast<uint64_t>(chunk) << 1);
    out->append(reinterpret_cast<const char*>(begin), chunk);
    begin += chunk;
    len -= chunk;
  }
}

}  // namespace

std::string CompressBlock(std::string_view raw) {
  std::string out;
  PutVarint(&out, raw.size());
  if (raw.empty()) return out;

  const uint8_t* base = reinterpret_cast<const uint8_t*>(raw.data());
  const size_t n = raw.size();
  // head[h] = most recent position whose 4-byte prefix hashed to h.
  // Positions are stored +1 so 0 means "empty".
  std::vector<uint32_t> head(kHashSize, 0);

  size_t literal_start = 0;
  size_t i = 0;
  while (i + kCodecMinMatch <= n) {
    uint32_t h = Hash4(base + i);
    size_t candidate = head[h];
    head[h] = static_cast<uint32_t>(i + 1);
    size_t match_len = 0;
    size_t distance = 0;
    if (candidate != 0) {
      size_t c = candidate - 1;
      size_t d = i - c;
      if (d <= kWindow) {
        size_t limit = n - i < kMaxMatch ? n - i : kMaxMatch;
        size_t len = 0;
        while (len < limit && base[c + len] == base[i + len]) ++len;
        if (len >= kCodecMinMatch) {
          match_len = len;
          distance = d;
        }
      }
    }
    if (match_len == 0) {
      ++i;
      continue;
    }
    PutLiteralRun(&out, base + literal_start, i - literal_start);
    PutVarint(&out, ((match_len - kCodecMinMatch) << 1) | 1);
    PutVarint(&out, distance);
    // Seed the hash table sparsely inside the match (every 4th position) so
    // long runs stay O(len) without losing much match coverage.
    size_t end = i + match_len;
    for (size_t j = i + 4; j + kCodecMinMatch <= n && j < end; j += 4) {
      head[Hash4(base + j)] = static_cast<uint32_t>(j + 1);
    }
    i = end;
    literal_start = i;
  }
  PutLiteralRun(&out, base + literal_start, n - literal_start);
  return out;
}

bool DecompressBlock(std::string_view block, std::string* raw_out) {
  size_t pos = 0;
  uint64_t raw_size = 0;
  if (!GetVarint(block, &pos, &raw_size)) return false;
  // An adversarial length prefix must not drive a huge allocation: every
  // token produces at least one byte from at least one block byte per
  // kMaxMatch output bytes, so raw_size is bounded by block size * kMaxMatch.
  if (raw_size > (block.size() - pos) * kMaxMatch) return false;
  raw_out->clear();
  // Reserve conservatively: a hostile prefix passing the bound above could
  // still claim far more than the tokens deliver, and the promise is to
  // return false without over-allocating. Growth past the clamp is
  // amortized by the string itself and tracks bytes actually produced.
  raw_out->reserve(std::min<uint64_t>(raw_size, uint64_t{1} << 20));

  while (raw_out->size() < raw_size) {
    uint64_t control = 0;
    if (!GetVarint(block, &pos, &control)) return false;
    if ((control & 1) == 0) {
      uint64_t len = control >> 1;
      if (len == 0) return false;  // empty literal runs are never written
      if (len > block.size() - pos) return false;
      if (len > raw_size - raw_out->size()) return false;
      raw_out->append(block.data() + pos, len);
      pos += len;
    } else {
      uint64_t len = (control >> 1) + kCodecMinMatch;
      uint64_t distance = 0;
      if (!GetVarint(block, &pos, &distance)) return false;
      if (distance == 0 || distance > raw_out->size()) return false;
      if (len > raw_size - raw_out->size()) return false;
      // Byte-wise copy: overlapping matches (distance < len) are runs.
      size_t from = raw_out->size() - distance;
      for (uint64_t k = 0; k < len; ++k) {
        raw_out->push_back((*raw_out)[from + k]);
      }
    }
  }
  return pos == block.size();
}

}  // namespace dseq
