// Basic shared types for the dseq library.
#ifndef DSEQ_UTIL_COMMON_H_
#define DSEQ_UTIL_COMMON_H_

#include <cstdint>
#include <vector>

namespace dseq {

/// Item identifier. After frequency-based recoding, item ids ("fids") are
/// assigned by decreasing document frequency starting at 1; the total order
/// `<` of the paper is then simply numeric order of fids, and the *pivot
/// item* of a sequence is its maximum fid (its least frequent item).
/// Id 0 is reserved (invalid / "no item").
using ItemId = uint32_t;

/// Reserved invalid item id.
inline constexpr ItemId kNoItem = 0;

/// A sequence of items (fid-encoded after recoding).
using Sequence = std::vector<ItemId>;

/// FST / NFA state identifier.
using StateId = uint32_t;

}  // namespace dseq

#endif  // DSEQ_UTIL_COMMON_H_
