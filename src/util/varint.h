// Variable-length integer encoding used for all shuffle serialization.
//
// The dataflow layer measures shuffle sizes in bytes (the paper's
// `shuffleWriteBytes` metric), so all records that cross the simulated
// network are encoded with LEB128-style varints for honest, compact sizes.
#ifndef DSEQ_UTIL_VARINT_H_
#define DSEQ_UTIL_VARINT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/util/common.h"

namespace dseq {

/// Appends `value` to `out` as a LEB128 varint (1-10 bytes).
void PutVarint(std::string* out, uint64_t value);

/// Reads a varint from `data` starting at `*pos`; advances `*pos`.
/// Returns false on truncated input. Takes a view so the zero-copy shuffle
/// path can decode records in place.
bool GetVarint(std::string_view data, size_t* pos, uint64_t* value);

/// Appends a sequence: varint length followed by delta-encoded item ids.
/// Items need not be sorted; deltas are zigzag-encoded.
void PutSequence(std::string* out, const Sequence& seq);

/// Reads a sequence written by PutSequence.
bool GetSequence(std::string_view data, size_t* pos, Sequence* seq);

/// Zigzag encoding helpers (map signed to unsigned for varint coding).
inline uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

}  // namespace dseq

#endif  // DSEQ_UTIL_VARINT_H_
