// Planted invariant checks (the machine-checked form of the contracts the
// code used to state only in comments).
//
// DSEQ_CHECK(cond)            always on, in every build type. For cheap
//                             invariants on cold paths whose violation means
//                             memory corruption or silent data loss is next
//                             (budget charge/release symmetry, plan
//                             construction, spill-run bookkeeping).
// DSEQ_DCHECK(cond)           debug builds only (compiled out under NDEBUG
//                             unless DSEQ_FORCE_DCHECKS is defined). For
//                             hot-path invariants the release build cannot
//                             afford (per-record merge-order checks,
//                             per-bucket teardown sweeps).
// DSEQ_CHECK_EQ / DSEQ_DCHECK_EQ / _NE / _LE / _LT / _GE / _GT
//                             comparison forms that print both operands.
//
// A failed check prints "DSEQ_CHECK failed at file:line: expr (details)" to
// stderr and aborts — it is a bug in dseq, never a data error. Hostile or
// corrupt *input* (shuffle frames, spill blocks, serialized NFAs) keeps
// throwing typed exceptions; checks guard what must already have been
// validated.
#ifndef DSEQ_UTIL_CHECK_H_
#define DSEQ_UTIL_CHECK_H_

#include <sstream>
#include <string>

namespace dseq {
namespace check_internal {

/// Prints the failure and aborts. Out of line so the macro expansion in hot
/// paths stays one compare + one never-taken call.
[[noreturn]] void CheckFailed(const char* file, int line, const char* what,
                              const std::string& details);

/// Formats one operand of a comparison check. Everything the checks compare
/// is streamable (integers, string_views); the indirection keeps <sstream>
/// instantiation out of the fast path.
template <typename A, typename B>
[[noreturn]] void CheckOpFailed(const char* file, int line, const char* what,
                                const A& a, const B& b) {
  std::ostringstream details;
  details << a << " vs " << b;
  CheckFailed(file, line, what, details.str());
}

}  // namespace check_internal
}  // namespace dseq

#define DSEQ_CHECK(cond)                                             \
  do {                                                               \
    if (__builtin_expect(!(cond), 0)) {                              \
      ::dseq::check_internal::CheckFailed(__FILE__, __LINE__, #cond, \
                                          std::string());            \
    }                                                                \
  } while (0)

#define DSEQ_CHECK_MSG(cond, msg)                                    \
  do {                                                               \
    if (__builtin_expect(!(cond), 0)) {                              \
      ::dseq::check_internal::CheckFailed(__FILE__, __LINE__, #cond, \
                                          (msg));                    \
    }                                                                \
  } while (0)

#define DSEQ_CHECK_OP_(op, a, b)                                          \
  do {                                                                    \
    if (__builtin_expect(!((a)op(b)), 0)) {                               \
      ::dseq::check_internal::CheckOpFailed(__FILE__, __LINE__,           \
                                            #a " " #op " " #b, (a), (b)); \
    }                                                                     \
  } while (0)

#define DSEQ_CHECK_EQ(a, b) DSEQ_CHECK_OP_(==, a, b)
#define DSEQ_CHECK_NE(a, b) DSEQ_CHECK_OP_(!=, a, b)
#define DSEQ_CHECK_LE(a, b) DSEQ_CHECK_OP_(<=, a, b)
#define DSEQ_CHECK_LT(a, b) DSEQ_CHECK_OP_(<, a, b)
#define DSEQ_CHECK_GE(a, b) DSEQ_CHECK_OP_(>=, a, b)
#define DSEQ_CHECK_GT(a, b) DSEQ_CHECK_OP_(>, a, b)

// Debug checks are on in debug builds and whenever DSEQ_FORCE_DCHECKS is
// defined (the sanitizer CI builds force them so ASan/TSan/UBSan run with
// every planted invariant live).
#if !defined(NDEBUG) || defined(DSEQ_FORCE_DCHECKS)
#define DSEQ_DCHECK_IS_ON 1
#else
#define DSEQ_DCHECK_IS_ON 0
#endif

#if DSEQ_DCHECK_IS_ON
#define DSEQ_DCHECK(cond) DSEQ_CHECK(cond)
#define DSEQ_DCHECK_MSG(cond, msg) DSEQ_CHECK_MSG(cond, msg)
#define DSEQ_DCHECK_EQ(a, b) DSEQ_CHECK_EQ(a, b)
#define DSEQ_DCHECK_NE(a, b) DSEQ_CHECK_NE(a, b)
#define DSEQ_DCHECK_LE(a, b) DSEQ_CHECK_LE(a, b)
#define DSEQ_DCHECK_LT(a, b) DSEQ_CHECK_LT(a, b)
#define DSEQ_DCHECK_GE(a, b) DSEQ_CHECK_GE(a, b)
#define DSEQ_DCHECK_GT(a, b) DSEQ_CHECK_GT(a, b)
#else
// Compiled out, but the condition stays visible to the compiler (unevaluated
// sizeof context), so a DCHECK can never rot into a syntax error or an
// unused-variable warning in release builds.
#define DSEQ_DCHECK(cond) \
  static_cast<void>(sizeof(static_cast<bool>(cond)))
#define DSEQ_DCHECK_MSG(cond, msg) \
  static_cast<void>(sizeof(static_cast<bool>(cond)))
#define DSEQ_DCHECK_OP_OFF_(a, b) \
  static_cast<void>(sizeof(static_cast<bool>((a) == (b))))
#define DSEQ_DCHECK_EQ(a, b) DSEQ_DCHECK_OP_OFF_(a, b)
#define DSEQ_DCHECK_NE(a, b) DSEQ_DCHECK_OP_OFF_(a, b)
#define DSEQ_DCHECK_LE(a, b) DSEQ_DCHECK_OP_OFF_(a, b)
#define DSEQ_DCHECK_LT(a, b) DSEQ_DCHECK_OP_OFF_(a, b)
#define DSEQ_DCHECK_GE(a, b) DSEQ_DCHECK_OP_OFF_(a, b)
#define DSEQ_DCHECK_GT(a, b) DSEQ_DCHECK_OP_OFF_(a, b)
#endif

#endif  // DSEQ_UTIL_CHECK_H_
