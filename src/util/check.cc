#include "src/util/check.h"

#include <cstdio>
#include <cstdlib>

namespace dseq {
namespace check_internal {

void CheckFailed(const char* file, int line, const char* what,
                 const std::string& details) {
  if (details.empty()) {
    std::fprintf(stderr, "DSEQ_CHECK failed at %s:%d: %s\n", file, line, what);
  } else {
    std::fprintf(stderr, "DSEQ_CHECK failed at %s:%d: %s (%s)\n", file, line,
                 what, details.c_str());
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace check_internal
}  // namespace dseq
