#include "src/util/varint.h"

namespace dseq {

void PutVarint(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

bool GetVarint(const std::string& data, size_t* pos, uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  while (*pos < data.size()) {
    uint8_t byte = static_cast<uint8_t>(data[*pos]);
    ++*pos;
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
    shift += 7;
    if (shift >= 64) return false;
  }
  return false;
}

void PutSequence(std::string* out, const Sequence& seq) {
  PutVarint(out, seq.size());
  int64_t prev = 0;
  for (ItemId w : seq) {
    PutVarint(out, ZigzagEncode(static_cast<int64_t>(w) - prev));
    prev = static_cast<int64_t>(w);
  }
}

bool GetSequence(const std::string& data, size_t* pos, Sequence* seq) {
  uint64_t n = 0;
  if (!GetVarint(data, pos, &n)) return false;
  seq->clear();
  seq->reserve(n);
  int64_t prev = 0;
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t delta = 0;
    if (!GetVarint(data, pos, &delta)) return false;
    prev += ZigzagDecode(delta);
    if (prev < 0) return false;
    seq->push_back(static_cast<ItemId>(prev));
  }
  return true;
}

}  // namespace dseq
