#include "src/util/varint.h"

#include <limits>

namespace dseq {

void PutVarint(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

bool GetVarint(std::string_view data, size_t* pos, uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  while (*pos < data.size()) {
    uint8_t byte = static_cast<uint8_t>(data[*pos]);
    ++*pos;
    // The 10th byte may only contribute the top bit of the 64-bit value;
    // anything larger is an overflow, not a longer varint.
    if (shift == 63 && (byte & 0x7f) > 1) return false;
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
    shift += 7;
    if (shift >= 64) return false;
  }
  return false;
}

void PutSequence(std::string* out, const Sequence& seq) {
  PutVarint(out, seq.size());
  int64_t prev = 0;
  for (ItemId w : seq) {
    PutVarint(out, ZigzagEncode(static_cast<int64_t>(w) - prev));
    prev = static_cast<int64_t>(w);
  }
}

bool GetSequence(std::string_view data, size_t* pos, Sequence* seq) {
  uint64_t n = 0;
  if (!GetVarint(data, pos, &n)) return false;
  seq->clear();
  // Every encoded item occupies at least one byte, so an adversarial length
  // prefix larger than the remaining input is rejected before it can drive
  // a huge allocation.
  if (n > data.size() - *pos) return false;
  seq->reserve(n);
  constexpr int64_t kMaxItem = std::numeric_limits<ItemId>::max();
  int64_t prev = 0;
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t delta = 0;
    if (!GetVarint(data, pos, &delta)) return false;
    int64_t d = ZigzagDecode(delta);
    // Valid items fit in ItemId, so no valid delta exceeds kMaxItem in
    // magnitude; rejecting larger ones also keeps `prev += d` from
    // overflowing (signed overflow would be UB).
    if (d > kMaxItem || d < -kMaxItem) return false;
    prev += d;
    if (prev < 0 || prev > kMaxItem) return false;
    seq->push_back(static_cast<ItemId>(prev));
  }
  return true;
}

}  // namespace dseq
