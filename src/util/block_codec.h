// Streaming LZ-style block codec for shuffle buffers.
//
// The paper's Spark substrate compresses shuffle files; this is the
// in-process analogue: a byte-oriented LZ77 coder (greedy matching over a
// 64 KiB window, varint-coded tokens) tuned for the repetitive varint-framed
// record streams the dataflow engine shuffles. Matches with distance 1
// degenerate to byte-run encoding, so long runs code in a few bytes.
//
// Block layout: varint(raw_size), then tokens until raw_size bytes decode:
//   literal run: varint(len << 1),                    followed by len bytes
//   match:       varint(((len - kMinMatch) << 1) | 1), varint(distance)
// Distances may be smaller than lengths (overlapping copy = run).
//
// DecompressBlock validates everything (length prefix, token bounds,
// distances, exact raw_size) and returns false on malformed or truncated
// input instead of crashing or over-allocating — blocks cross the simulated
// network and decoding errors must fail loudly.
#ifndef DSEQ_UTIL_BLOCK_CODEC_H_
#define DSEQ_UTIL_BLOCK_CODEC_H_

#include <string>
#include <string_view>

namespace dseq {

/// Minimum match length; shorter repeats are emitted as literals.
inline constexpr size_t kCodecMinMatch = 4;

/// Compresses `raw` into a self-framing block. Deterministic; never fails.
/// Worst case (incompressible input) adds a few bytes of framing per 2^31
/// literals, so the result is at most marginally larger than `raw`.
std::string CompressBlock(std::string_view raw);

/// Decompresses a block written by CompressBlock into `*raw_out`
/// (overwritten). Returns false on malformed input, leaving `*raw_out` in an
/// unspecified but valid state.
bool DecompressBlock(std::string_view block, std::string* raw_out);

}  // namespace dseq

#endif  // DSEQ_UTIL_BLOCK_CODEC_H_
