// Annotated synchronization primitives: the only sanctioned way to lock in
// this repo (tools/lint_dseq.py rule `raw-sync-primitive` bans bare
// std::mutex/std::lock_guard/std::condition_variable everywhere else).
//
// dseq::Mutex / dseq::MutexLock / dseq::CondVar wrap the std primitives and
// carry Clang Thread Safety Analysis attributes, so the locking contract of
// every synchronized structure is machine-checked at compile time:
//
//   - a member annotated DSEQ_GUARDED_BY(mu) cannot be read or written
//     without holding `mu`;
//   - a function annotated DSEQ_REQUIRES(mu) cannot be called without it;
//   - double acquisition, unlock-without-lock, and leaked locks are errors.
//
// Build the whole tree with the analysis as errors via
//
//   cmake -B build-ts -S . -DCMAKE_CXX_COMPILER=clang++ -DDSEQ_THREAD_SAFETY=ON
//
// (-Wthread-safety -Wthread-safety-beta -Werror=thread-safety; the CI
// `thread-safety` job does exactly this, and tests/thread_safety_compile_test
// proves the analysis rejects the canonical violations). On non-Clang
// compilers every macro expands to nothing and the wrappers are plain RAII
// over the std primitives — zero cost, identical behavior.
#ifndef DSEQ_UTIL_SYNC_H_
#define DSEQ_UTIL_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

// Attribute plumbing: GNU-style attributes guarded by __has_attribute so the
// macros vanish on GCC/MSVC and on Clang versions predating the analysis.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define DSEQ_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef DSEQ_THREAD_ANNOTATION
#define DSEQ_THREAD_ANNOTATION(x)
#endif

/// Marks a class as a lockable capability (mutex-like).
#define DSEQ_CAPABILITY(x) DSEQ_THREAD_ANNOTATION(capability(x))
/// Marks an RAII class that acquires in its constructor, releases in its
/// destructor (MutexLock below).
#define DSEQ_SCOPED_CAPABILITY DSEQ_THREAD_ANNOTATION(scoped_lockable)
/// Data member readable/writable only while holding the named mutex.
#define DSEQ_GUARDED_BY(x) DSEQ_THREAD_ANNOTATION(guarded_by(x))
/// Pointer member whose *pointee* is guarded by the named mutex (the pointer
/// itself may be read freely).
#define DSEQ_PT_GUARDED_BY(x) DSEQ_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function that must be called with the named mutex(es) held; still held on
/// return (the contract of condition-variable waits and _locked helpers).
#define DSEQ_REQUIRES(...) \
  DSEQ_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function that acquires the named mutex(es) (or `this` when empty).
#define DSEQ_ACQUIRE(...) \
  DSEQ_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function that releases the named mutex(es) (or `this` when empty).
#define DSEQ_RELEASE(...) \
  DSEQ_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function that acquires on success only (returns `true` when it did).
#define DSEQ_TRY_ACQUIRE(...) \
  DSEQ_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Function that must be called with the named mutex(es) NOT held
/// (deadlock-prevention: it acquires them itself).
#define DSEQ_EXCLUDES(...) DSEQ_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Lock-ordering declarations between mutexes.
#define DSEQ_ACQUIRED_BEFORE(...) \
  DSEQ_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define DSEQ_ACQUIRED_AFTER(...) \
  DSEQ_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
/// Runtime assertion that the calling thread holds the capability; informs
/// the analysis without acquiring.
#define DSEQ_ASSERT_CAPABILITY(x) \
  DSEQ_THREAD_ANNOTATION(assert_capability(x))
/// Function returning a reference to the mutex guarding its result.
#define DSEQ_RETURN_CAPABILITY(x) DSEQ_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch: disables the analysis inside one function. Every use must
/// carry a comment explaining why the contract holds anyway.
#define DSEQ_NO_THREAD_SAFETY_ANALYSIS \
  DSEQ_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace dseq {

class CondVar;

/// std::mutex with the capability attribute. Prefer MutexLock over manual
/// lock()/unlock() pairs; the manual API exists for the rare split-scope
/// pattern and stays fully analysis-checked.
class DSEQ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DSEQ_ACQUIRE() { mu_.lock(); }
  void unlock() DSEQ_RELEASE() { mu_.unlock(); }
  bool try_lock() DSEQ_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII scope lock over a Mutex (the std::lock_guard of this repo).
class DSEQ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DSEQ_ACQUIRE(mu) : mu_(&mu) { mu_->lock(); }
  ~MutexLock() DSEQ_RELEASE() { mu_->unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable waiting on a dseq::Mutex. Wait/WaitFor require the
/// mutex held and return with it held (the wait's internal release/reacquire
/// is invisible to callers, exactly like std::condition_variable) — so
/// guarded state stays accessible across the call, but any condition checked
/// before the wait must be rechecked after it.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) DSEQ_REQUIRES(mu) {
    // Adopt the already-held native handle for the duration of the wait;
    // release() keeps it held when the adapter goes out of scope.
    std::unique_lock<std::mutex> adapter(mu.mu_, std::adopt_lock);
    cv_.wait(adapter);
    adapter.release();
  }

  /// Waits until notified or `timeout` elapsed (spurious wakeups allowed,
  /// as with any condition variable).
  template <typename Rep, typename Period>
  void WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
      DSEQ_REQUIRES(mu) {
    std::unique_lock<std::mutex> adapter(mu.mu_, std::adopt_lock);
    cv_.wait_for(adapter, timeout);
    adapter.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace dseq

#endif  // DSEQ_UTIL_SYNC_H_
