// Partition planning: plan construction (LPT packing, bundling, range
// splits), key coding, and the plan-driven miner's byte-identity against
// hash-partitioned D-SEQ and the brute-force oracle — plus the acceptance
// bar of the partition-balance work: >= 2x better measured reducer balance
// on a skewed Zipf hierarchy.
#include "src/dist/partition_plan.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/dataflow/shuffle_buffer.h"
#include "src/datagen/skewed_zipf.h"
#include "src/dict/sequence.h"
#include "src/dist/dseq_miner.h"
#include "src/fst/compiler.h"
#include "tests/test_util.h"

namespace dseq {
namespace {

TEST(PivotKeyPartsTest, RoundTrip) {
  for (ItemId pivot : {ItemId{1}, ItemId{127}, ItemId{128}, ItemId{65536}}) {
    PivotKeyParts plain = DecodePivotKeyParts(EncodePivotKey(pivot));
    EXPECT_EQ(plain.pivot, pivot);
    EXPECT_EQ(plain.subpartition, -1);
    for (int sub : {0, 1, 7, 300}) {
      PivotKeyParts parts =
          DecodePivotKeyParts(EncodeSubpartitionKey(pivot, sub));
      EXPECT_EQ(parts.pivot, pivot);
      EXPECT_EQ(parts.subpartition, sub);
    }
  }
}

TEST(PivotKeyPartsTest, MalformedKeysThrow) {
  EXPECT_THROW(DecodePivotKeyParts(""), std::invalid_argument);
  EXPECT_THROW(DecodePivotKeyParts(std::string(1, '\x80')),
               std::invalid_argument);
  // Reserved pivot id 0.
  EXPECT_THROW(DecodePivotKeyParts(std::string(1, '\0')),
               std::invalid_argument);
  // Trailing bytes after the sub-partition varint.
  std::string three = EncodeSubpartitionKey(5, 1);
  three += '\x01';
  EXPECT_THROW(DecodePivotKeyParts(three), std::invalid_argument);
}

TEST(PartitionPlanTest, EmptyStatsBehavesLikeHash) {
  PartitionPlanOptions options;
  options.num_reducers = 4;
  PartitionPlan plan = BuildPartitionPlan({}, 100, options);
  EXPECT_TRUE(plan.assignments.empty());
  EXPECT_TRUE(plan.splits.empty());
  for (ItemId pivot : {ItemId{1}, ItemId{9}, ItemId{200}}) {
    std::string key = EncodePivotKey(pivot);
    EXPECT_EQ(plan.ReducerForKey(key), ShuffleReducerForKey(key, 4));
  }
}

TEST(PartitionPlanTest, BundlesLightPivotsAndSplitsHeavyOnes) {
  // One dominating pivot (half the bytes) plus twenty equal light pivots.
  std::vector<PartitionStats> stats;
  stats.push_back(PartitionStats{1, 100, 1000});
  for (ItemId p = 2; p <= 21; ++p) stats.push_back(PartitionStats{p, 5, 50});
  PartitionPlanOptions options;
  options.num_reducers = 4;
  PartitionPlan plan = BuildPartitionPlan(stats, 100, options);

  // The heavy pivot is split (1000 > 2000/4), the light ones are not.
  ASSERT_EQ(plan.splits.size(), 1u);
  EXPECT_EQ(plan.splits[0].pivot, 1u);
  EXPECT_GE(plan.splits[0].num_subpartitions(), 2);
  EXPECT_EQ(plan.assignments.size(), 20u);

  // Every slot landed on a valid reducer and the projected loads conserve
  // the measured bytes.
  uint64_t planned_total = 0;
  for (uint64_t b : plan.planned_reducer_bytes) planned_total += b;
  EXPECT_EQ(planned_total, 2000u);
  for (const auto& [pivot, reducer] : plan.assignments) {
    EXPECT_GE(reducer, 0);
    EXPECT_LT(reducer, 4);
  }
  for (int reducer : plan.splits[0].reducers) {
    EXPECT_GE(reducer, 0);
    EXPECT_LT(reducer, 4);
  }

  // LPT + split lands close to perfectly even; hash assignment of the same
  // stats is at least 2x worse (pivot 1 alone is 2x the mean).
  BalanceSummary planned = SummarizePlannedBalance(plan);
  EXPECT_LE(planned.max_to_mean_reducer_bytes, 1.3);
  BalanceSummary hashed = SummarizeBalance(stats, 4);
  EXPECT_GE(hashed.max_to_mean_reducer_bytes, 2.0);

  // Light pivots were bundled: 20 pivots share at most 4 reducers.
  EXPECT_LE(plan.assignments.size(), 20u);
  // Sub-partition keys of the split pivot route to the planned reducers.
  for (int s = 0; s < plan.splits[0].num_subpartitions(); ++s) {
    EXPECT_EQ(plan.ReducerForKey(EncodeSubpartitionKey(1, s)),
              plan.splits[0].reducers[s]);
  }
}

TEST(PartitionPlanTest, DeterministicForSameInputs) {
  std::vector<PartitionStats> stats;
  for (ItemId p = 1; p <= 30; ++p) {
    stats.push_back(PartitionStats{p, p, p * 37u % 400u + 1});
  }
  PartitionPlanOptions options;
  options.num_reducers = 5;
  PartitionPlan a = BuildPartitionPlan(stats, 64, options);
  PartitionPlan b = BuildPartitionPlan(stats, 64, options);
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_EQ(a.planned_reducer_bytes, b.planned_reducer_bytes);
  ASSERT_EQ(a.splits.size(), b.splits.size());
  for (size_t i = 0; i < a.splits.size(); ++i) {
    EXPECT_EQ(a.splits[i].pivot, b.splits[i].pivot);
    EXPECT_EQ(a.splits[i].reducers, b.splits[i].reducers);
  }
}

TEST(PartitionPlanTest, SubpartitionRangesCoverTheInputSpace) {
  PartitionPlan plan;
  plan.num_inputs = 10;
  PivotSplit split;
  split.reducers = {0, 1, 2, 3};
  // The range split is monotone over the index space, starts at 0, ends at
  // K-1, and hits every sub-partition.
  int prev = 0;
  std::vector<int> seen(4, 0);
  for (size_t i = 0; i < plan.num_inputs; ++i) {
    int sub = plan.SubpartitionForIndex(split, i);
    EXPECT_GE(sub, prev);
    EXPECT_LT(sub, 4);
    seen[sub] += 1;
    prev = sub;
  }
  EXPECT_EQ(plan.SubpartitionForIndex(split, 0), 0);
  EXPECT_EQ(plan.SubpartitionForIndex(split, plan.num_inputs - 1), 3);
  for (int s = 0; s < 4; ++s) EXPECT_GT(seen[s], 0) << s;
}

TEST(PartitionPlanTest, PartitionerFallsBackOnForeignReducerCount) {
  std::vector<PartitionStats> stats = {{1, 10, 500}, {2, 10, 500}};
  PartitionPlanOptions options;
  options.num_reducers = 4;
  PartitionPlan plan = BuildPartitionPlan(stats, 20, options);
  PartitionerFn partitioner = plan.MakePartitioner();
  std::string key = EncodePivotKey(1);
  EXPECT_EQ(partitioner(key, 8), ShuffleReducerForKey(key, 8));
  EXPECT_EQ(partitioner(key, 4), plan.ReducerForKey(key));
}

// --- the plan-driven miner -------------------------------------------------

TEST(MineDSeqBalancedTest, ByteIdenticalToHashAndBruteForce) {
  SequenceDatabase db = testing::RandomDatabase(4100, 7, 60, 8);
  for (const char* pattern :
       {".*(.^).*", ".*(.^)[.{0,1}(.^)]{1,2}.*", ".*(i0)[(.^).*]*(i1).*"}) {
    Fst fst = CompileFst(pattern, db.dict);
    for (uint64_t sigma : {1, 3}) {
      MiningResult expected =
          testing::BruteForceMine(db.sequences, fst, db.dict, sigma);
      testing::ForEachWorkerCount([&](int workers) {
        DSeqOptions hash_options;
        hash_options.sigma = sigma;
        hash_options.num_map_workers = workers;
        hash_options.num_reduce_workers = workers;
        EXPECT_EQ(MineDSeq(db.sequences, fst, db.dict, hash_options).patterns,
                  expected)
            << pattern << " sigma=" << sigma;

        DSeqBalanceOptions balanced_options;
        static_cast<DSeqOptions&>(balanced_options) = hash_options;
        EXPECT_EQ(MineDSeqBalanced(db.sequences, fst, db.dict,
                                   balanced_options)
                      .patterns,
                  expected)
            << "balanced, " << pattern << " sigma=" << sigma;

        // Aggressive splitting (everything above a quarter of the fair
        // share) must not change results either.
        balanced_options.plan.split_factor = 0.25;
        PartitionPlan plan;
        EXPECT_EQ(MineDSeqBalanced(db.sequences, fst, db.dict,
                                   balanced_options, &plan)
                      .patterns,
                  expected)
            << "split-heavy, " << pattern << " sigma=" << sigma;
        if (workers > 1) {
          EXPECT_GT(plan.splits.size() + plan.assignments.size(), 0u);
        }
      });
    }
  }
}

TEST(MineDSeqBalancedTest, AggregatedSequencesStayIdentical) {
  SequenceDatabase db = testing::RandomDatabase(4200, 6, 80, 6);
  Fst fst = CompileFst(".*(.^).*", db.dict);
  DSeqOptions hash_options;
  hash_options.sigma = 2;
  hash_options.num_map_workers = 4;
  hash_options.num_reduce_workers = 4;
  hash_options.aggregate_sequences = true;
  MiningResult expected =
      MineDSeq(db.sequences, fst, db.dict, hash_options).patterns;
  DSeqBalanceOptions balanced_options;
  static_cast<DSeqOptions&>(balanced_options) = hash_options;
  balanced_options.plan.split_factor = 0.5;
  EXPECT_EQ(
      MineDSeqBalanced(db.sequences, fst, db.dict, balanced_options).patterns,
      expected);
}

TEST(MineDSeqBalancedTest, SplitPivotsReconcileInSecondRound) {
  SkewedZipfOptions gen;
  gen.seed = 77;
  gen.num_items = 50;
  gen.num_groups = 1;
  gen.num_sequences = 150;
  gen.max_length = 16;
  gen.zipf_exponent = 1.5;
  SequenceDatabase db = GenerateSkewedZipf(gen);
  Fst fst = CompileFst(".*(.^).*", db.dict);
  const uint64_t sigma = 2;

  MiningResult expected =
      testing::BruteForceMine(db.sequences, fst, db.dict, sigma);
  DSeqBalanceOptions options;
  options.sigma = sigma;
  options.num_map_workers = 8;
  options.num_reduce_workers = 8;
  PartitionPlan plan;
  ChainedDistributedResult result =
      MineDSeqBalanced(db.sequences, fst, db.dict, options, &plan);
  // The coarse hierarchy forces at least one split, so the run reconciles
  // in a second round — and still matches the oracle exactly.
  EXPECT_GT(plan.splits.size(), 0u);
  EXPECT_EQ(result.num_rounds(), 2u);
  EXPECT_EQ(result.patterns, expected);
  EXPECT_GT(result.round_metrics[1].shuffle_bytes, 0u);
}

TEST(MineDSeqBalancedTest, BalanceImprovesAtLeastTwofoldOnSkewedZipf) {
  // The acceptance bar of the partition-balance work: on the skewed Zipf
  // hierarchy the planned run's measured per-reducer balance must beat hash
  // partitioning by >= 2x while the patterns stay byte-identical.
  SkewedZipfOptions gen;
  gen.seed = 101;
  gen.num_items = 60;
  gen.num_groups = 1;
  gen.num_sequences = 200;
  gen.max_length = 20;
  gen.zipf_exponent = 1.5;
  SequenceDatabase db = GenerateSkewedZipf(gen);
  Fst fst = CompileFst(".*(.^).*", db.dict);

  DSeqOptions hash_options;
  hash_options.sigma = 2;
  hash_options.num_map_workers = 4;
  hash_options.num_reduce_workers = 16;
  DistributedResult hash_run =
      MineDSeq(db.sequences, fst, db.dict, hash_options);
  double before = SummarizeReducerBytes(hash_run.metrics.reducer_bytes)
                      .max_to_mean_reducer_bytes;

  DSeqBalanceOptions balanced_options;
  static_cast<DSeqOptions&>(balanced_options) = hash_options;
  ChainedDistributedResult balanced =
      MineDSeqBalanced(db.sequences, fst, db.dict, balanced_options);
  double after =
      SummarizeReducerBytes(balanced.round_metrics.front().reducer_bytes)
          .max_to_mean_reducer_bytes;

  EXPECT_EQ(balanced.patterns, hash_run.patterns);
  ASSERT_GT(after, 0.0);
  EXPECT_GE(before / after, 2.0) << "before=" << before << " after=" << after;
}

TEST(MineDSeqBalancedTest, ShuffleBudgetTripReleasesBuffers) {
  SequenceDatabase db = testing::RandomDatabase(4300, 6, 80, 8);
  Fst fst = CompileFst(".*(.^).*", db.dict);

  // A custom partitioner that funnels everything onto reducer 0 plus a tiny
  // budget: the run must die mid-round with ShuffleOverflowError and leave
  // no shuffle bytes resident.
  DSeqOptions options;
  options.sigma = 2;
  options.num_map_workers = 4;
  options.num_reduce_workers = 4;
  options.shuffle_budget_bytes = 64;
  options.partitioner = [](std::string_view, int) { return 0; };
  EXPECT_THROW(MineDSeq(db.sequences, fst, db.dict, options),
               ShuffleOverflowError);
  EXPECT_EQ(ShuffleBufferLiveBytes(), 0u);

  DSeqBalanceOptions balanced_options;
  balanced_options.sigma = 2;
  balanced_options.num_map_workers = 4;
  balanced_options.num_reduce_workers = 4;
  balanced_options.shuffle_budget_bytes = 64;
  EXPECT_THROW(MineDSeqBalanced(db.sequences, fst, db.dict, balanced_options),
               ShuffleOverflowError);
  EXPECT_EQ(ShuffleBufferLiveBytes(), 0u);
}

TEST(MineDSeqBalancedTest, RejectsCallerSuppliedPartitioner) {
  // The balanced run installs the plan's hook; a caller-supplied one must
  // fail loudly instead of being silently discarded.
  SequenceDatabase db = testing::RandomDatabase(4500, 5, 10, 5);
  Fst fst = CompileFst(".*(.^).*", db.dict);
  DSeqBalanceOptions options;
  options.sigma = 2;
  options.partitioner = [](std::string_view, int) { return 0; };
  EXPECT_THROW(MineDSeqBalanced(db.sequences, fst, db.dict, options),
               std::invalid_argument);
}

TEST(MineDSeqBalancedTest, CustomPartitionerFlowsThroughRecountRounds) {
  // DistributedRunOptions::partitioner reaches every round of a chained
  // run: a rotated hash must leave recount results untouched.
  SequenceDatabase db = testing::RandomDatabase(4400, 6, 60, 8);
  Fst fst = CompileFst(".*(.^)[.{0,1}(.^)]{1,2}.*", db.dict);
  DSeqRecountOptions options;
  options.sigma = 2;
  options.num_map_workers = 4;
  options.num_reduce_workers = 4;
  MiningResult expected =
      MineDSeqRecount(db.sequences, fst, db.dict, options).patterns;
  options.partitioner = [](std::string_view key, int workers) {
    return (ShuffleReducerForKey(key, workers) + 1) % workers;
  };
  EXPECT_EQ(MineDSeqRecount(db.sequences, fst, db.dict, options).patterns,
            expected);
}

}  // namespace
}  // namespace dseq
