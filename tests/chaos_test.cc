// Chaos capstone: the full D-SEQ miner under seeded fault injection.
//
// For every seed in DSEQ_CHAOS_SEEDS (comma-separated; 8 fixed defaults) a
// schedule of socket, spill, and worker-lifecycle faults is derived from
// the seed and installed process-globally before a proc-backend mining run.
// The contract under chaos is binary: the run either completes with output
// (and raw shuffle metrics) byte-identical to the fault-free local
// reference, or fails with a typed std::exception carrying a non-empty
// message — never silent corruption, and never a non-typed escape.
// Whichever way it ends, nothing may leak: shuffle arenas drained, spill
// directories empty, no orphaned worker processes.
//
// Requires -DDSEQ_FAULT_INJECTION=ON; skips otherwise. CI runs this via
// `ctest -L chaos` — on push with the default seeds, nightly with a
// randomized seed list echoed into the log for replay.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "src/dataflow/engine.h"
#include "src/dataflow/shuffle_buffer.h"
#include "src/dist/dseq_miner.h"
#include "src/fault/fault_injection.h"
#include "src/fst/compiler.h"
#include "src/rpc/proc_backend.h"
#include "tests/test_util.h"

namespace dseq {
namespace {

std::vector<uint64_t> ChaosSeeds() {
  std::vector<uint64_t> seeds;
  const char* env = std::getenv("DSEQ_CHAOS_SEEDS");
  if (env != nullptr && *env != '\0') {
    std::string list(env);
    size_t start = 0;
    while (start <= list.size()) {
      size_t comma = list.find(',', start);
      if (comma == std::string::npos) comma = list.size();
      std::string token = list.substr(start, comma - start);
      if (!token.empty()) {
        seeds.push_back(std::strtoull(token.c_str(), nullptr, 10));
      }
      start = comma + 1;
    }
  }
  if (seeds.empty()) seeds = {11, 23, 37, 41, 59, 67, 73, 89};
  return seeds;
}

// One dataflow shape per seed (rotated): worker counts, compression,
// out-of-core spilling, coordinator tail parking, and lowered segment-chunk
// caps all change which protocol paths the faults land on.
struct ChaosConfig {
  const char* name;
  int map_workers;
  int reduce_workers;
  bool compress = false;
  bool spill = false;            // memory budget + spill dir in the workers
  bool park_tails = false;       // coordinator-side tail parking
  const char* chunk_bytes = nullptr;  // DSEQ_PROC_TEST_CHUNK_BYTES override
};

const ChaosConfig kConfigs[] = {
    {"plain-2x2", 2, 2},
    {"plain-4x4", 4, 4},
    {"compress-3x3", 3, 3, /*compress=*/true},
    {"spill-2x2", 2, 2, false, /*spill=*/true},
    {"compress-spill-4x2", 4, 2, true, true},
    {"park-tails-2x4", 2, 4, false, false, /*park_tails=*/true},
    {"chunked-3x3", 3, 3, false, false, false, "64"},
    {"compress-chunked-4x4", 4, 4, true, false, false, "128"},
};
constexpr size_t kNumConfigs = sizeof(kConfigs) / sizeof(kConfigs[0]);

// Derives a fault schedule from the seed: low-probability byte-level socket
// noise (short transfers, EINTR storms), budgeted connection-level faults
// (ECONNRESET, mid-frame disconnect), spill-file errno hits, and worker
// lifecycle kills/stalls. Every budget is bounded so a run terminates; the
// retry policy decides whether it recovers or fails typed.
fault::FaultSchedule MakeSchedule(uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto prob = [&rng](double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(rng);
  };
  auto fires = [&rng](uint64_t lo, uint64_t hi) {
    return lo + rng() % (hi - lo + 1);
  };

  fault::FaultSchedule schedule;
  schedule.seed = seed;
  using fault::Action;
  using fault::FaultRule;
  using fault::Site;
  using fault::kAnyDetail;
  using fault::kAnyProcess;

  // Byte-level socket noise, both directions, every process.
  schedule.rules.push_back(FaultRule{Site::kSocketRead, Action::kShortIo, 0,
                                     kAnyDetail, kAnyProcess, 0,
                                     prob(0.001, 0.02), fires(5, 50)});
  schedule.rules.push_back(FaultRule{Site::kSocketRead, Action::kEintr, 0,
                                     kAnyDetail, kAnyProcess, 0,
                                     prob(0.001, 0.02), fires(5, 50)});
  schedule.rules.push_back(FaultRule{Site::kSocketWrite, Action::kShortIo, 0,
                                     kAnyDetail, kAnyProcess, 0,
                                     prob(0.001, 0.02), fires(5, 50)});
  // Connection-level faults: a read that fails ECONNRESET (the coordinator
  // treats the worker as dead) and a worker-side mid-frame disconnect.
  if (rng() % 2 == 0) {
    schedule.rules.push_back(FaultRule{Site::kSocketRead, Action::kErrno,
                                       ECONNRESET, kAnyDetail,
                                       fault::kCoordinator, fires(50, 500),
                                       0.0, 1});
  }
  if (rng() % 2 == 0) {
    schedule.rules.push_back(FaultRule{Site::kSocketSendFrame,
                                       Action::kDisconnect, 0, kAnyDetail,
                                       static_cast<int>(rng() % 4),
                                       fires(2, 30), 0.0, 1});
  }
  // Spill-file I/O errors (only bite in spilling configs).
  if (rng() % 2 == 0) {
    schedule.rules.push_back(FaultRule{Site::kSpillWrite, Action::kErrno,
                                       static_cast<int>(rng() % 2 == 0 ? ENOSPC
                                                                       : EIO),
                                       kAnyDetail, kAnyProcess, fires(3, 40),
                                       0.0, 1});
  }
  // Worker lifecycle: SIGKILL at the Nth task message, a kill or stall just
  // before the commit frame.
  schedule.rules.push_back(FaultRule{Site::kWorkerMessage, Action::kKill, 0,
                                     kAnyDetail, static_cast<int>(rng() % 4),
                                     fires(1, 4), 0.0, 1});
  if (rng() % 2 == 0) {
    schedule.rules.push_back(FaultRule{Site::kWorkerCommit,
                                       rng() % 2 == 0 ? Action::kKill
                                                      : Action::kStall,
                                       /*param=*/150, kAnyDetail,
                                       static_cast<int>(rng() % 4),
                                       fires(1, 2), 0.0, 1});
  }
  return schedule;
}

TEST(ChaosTest, MinerUnderSeededFaultsIsIdenticalOrFailsTyped) {
  if (!fault::kFaultInjectionEnabled) {
    GTEST_SKIP() << "built without -DDSEQ_FAULT_INJECTION=ON";
  }
  SequenceDatabase db = testing::RandomDatabase(6100, 7, 60, 8);
  Fst fst = CompileFst(".*(.)[.*(.)]{0,2}.*", db.dict);

  std::vector<uint64_t> seeds = ChaosSeeds();
  for (size_t i = 0; i < seeds.size(); ++i) {
    const uint64_t seed = seeds[i];
    const ChaosConfig& config = kConfigs[i % kNumConfigs];
    SCOPED_TRACE("seed " + std::to_string(seed) + " config " + config.name);
    std::printf("chaos: seed %llu config %s\n",
                static_cast<unsigned long long>(seed), config.name);

    testing::ScopedTempDir spill_dir;
    DSeqOptions options;
    options.sigma = 2;
    options.num_map_workers = config.map_workers;
    options.num_reduce_workers = config.reduce_workers;
    options.compress_shuffle = config.compress;
    if (config.spill || config.park_tails) {
      options.spill_dir = spill_dir.path();
    }
    if (config.park_tails) options.proc_tail_park_bytes = 1;

    // Fault-free local reference for this config (run before any schedule
    // is installed — the local path shares the spill injection sites). For
    // spilling configs, measure the shuffle unbudgeted first, then re-run
    // the reference under the same bite-sized budget the proc run gets.
    DistributedResult local = MineDSeq(db.sequences, fst, db.dict, options);
    if (config.spill) {
      options.memory_budget_bytes = testing::SpillTestBudget(
          std::max<uint64_t>(local.metrics.shuffle_bytes / 4, 64));
      local = MineDSeq(db.sequences, fst, db.dict, options);
    }

    // The hardened policy under test: bounded retries, progress-gated
    // heartbeats, and a generous deadline backstop so a wedged run fails
    // typed instead of hanging the suite.
    options.backend = DataflowBackend::kProc;
    options.proc_worker_timeout_ms = 500;
    options.proc_max_task_attempts = 3;
    options.proc_round_deadline_ms = 60000;

    if (config.chunk_bytes != nullptr) {
      ASSERT_EQ(::setenv("DSEQ_PROC_TEST_CHUNK_BYTES", config.chunk_bytes, 1),
                0);
    }
    {
      struct ScheduleGuard {
        ~ScheduleGuard() { fault::Reset(); }
      } guard;
      fault::Configure(MakeSchedule(seed));
      try {
        DistributedResult proc = MineDSeq(db.sequences, fst, db.dict, options);
        // Survived: the output contract is byte-identical equivalence.
        EXPECT_EQ(proc.patterns, local.patterns);
        EXPECT_EQ(proc.metrics.shuffle_bytes, local.metrics.shuffle_bytes);
        EXPECT_EQ(proc.metrics.shuffle_records, local.metrics.shuffle_records);
        EXPECT_EQ(proc.metrics.map_output_records,
                  local.metrics.map_output_records);
        if (!config.spill) {
          // Out-of-core runs count compression differently per backend (the
          // proc worker compresses merged spill output for the wire; the
          // local buffer never re-compresses spilled runs), so the
          // compressed volume is only comparable for resident shuffles.
          EXPECT_EQ(proc.metrics.shuffle_compressed_bytes,
                    local.metrics.shuffle_compressed_bytes);
        }
        EXPECT_EQ(proc.metrics.reducer_bytes, local.metrics.reducer_bytes);
      } catch (const std::exception& e) {
        // Died: only a typed, actionable error is acceptable.
        EXPECT_FALSE(std::string(e.what()).empty());
        std::printf("chaos: seed %llu failed typed: %s\n",
                    static_cast<unsigned long long>(seed), e.what());
      } catch (...) {
        ADD_FAILURE() << "non-typed exception escaped the chaos run";
      }
    }
    if (config.chunk_bytes != nullptr) ::unsetenv("DSEQ_PROC_TEST_CHUNK_BYTES");

    // Leak invariants, success or failure: shuffle arenas drained, spill
    // directory empty (ScopedTempDir re-asserts at destruction), and no
    // child process outliving the round.
    EXPECT_EQ(ShuffleBufferLiveBytes(), 0u);
    EXPECT_EQ(testing::CountDirEntries(spill_dir.path()), 0u);
    errno = 0;
    EXPECT_EQ(::waitpid(-1, nullptr, WNOHANG), -1);
    EXPECT_EQ(errno, ECHILD);
  }
}

}  // namespace
}  // namespace dseq
