// Pins the documented contracts of the parallel-for utilities
// (src/util/thread_pool.h), most importantly exception propagation: the
// first exception wins, it is rethrown on the calling thread with its
// original type, and the remaining shards still run to completion (a
// throwing worker must not cancel or corrupt its siblings' work — the
// engine relies on this to keep shuffle state consistent when a mapper
// throws).
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/util/thread_pool.h"

namespace dseq {
namespace {

TEST(ClampWorkersTest, NonPositiveCountsRunSerially) {
  EXPECT_EQ(ClampWorkers(-3), 1);
  EXPECT_EQ(ClampWorkers(0), 1);
  EXPECT_EQ(ClampWorkers(1), 1);
  EXPECT_EQ(ClampWorkers(8), 8);
}

TEST(ParallelShardsTest, ShardsPartitionTheItemRange) {
  std::vector<int> owner(100, -1);
  ParallelShards(owner.size(), 4, [&](int worker, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      ASSERT_EQ(owner[i], -1) << "item " << i << " sharded twice";
      owner[i] = worker;
    }
  });
  for (size_t i = 0; i < owner.size(); ++i) {
    EXPECT_NE(owner[i], -1) << "item " << i << " never sharded";
  }
}

TEST(ParallelShardsTest, FewerItemsThanWorkersLeavesTrailingWorkersIdle) {
  std::atomic<int> calls{0};
  ParallelShards(3, 8, [&](int worker, size_t begin, size_t end) {
    EXPECT_LT(begin, end) << "empty shard dispatched to worker " << worker;
    calls.fetch_add(1);
  });
  EXPECT_LE(calls.load(), 3);
}

TEST(ParallelShardsTest, SingleWorkerRunsInlineAsWorkerZero) {
  ParallelShards(10, 1, [&](int worker, size_t begin, size_t end) {
    EXPECT_EQ(worker, 0);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 10u);
  });
}

TEST(ParallelShardsTest, ExceptionIsRethrownWithItsOriginalType) {
  struct ShardError : std::runtime_error {
    using std::runtime_error::runtime_error;
  };
  EXPECT_THROW(
      ParallelShards(100, 4,
                     [](int worker, size_t, size_t) {
                       if (worker == 2) throw ShardError("shard 2 failed");
                     }),
      ShardError);
}

TEST(ParallelShardsTest, ThrowingShardDoesNotCancelTheOthers) {
  std::vector<std::atomic<int>> hits(100);
  try {
    ParallelShards(hits.size(), 4, [&](int worker, size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      if (worker == 0) throw std::runtime_error("worker 0 failed");
    });
    FAIL() << "expected ParallelShards to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "worker 0 failed");
  }
  // Every item was still processed exactly once, including by shards that
  // started after worker 0 threw.
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "item " << i;
  }
}

TEST(ParallelWorkersTest, EveryWorkerIdRunsExactlyOnce) {
  std::vector<std::atomic<int>> runs(8);
  ParallelWorkers(8, [&](int w) { runs[w].fetch_add(1); });
  for (size_t w = 0; w < runs.size(); ++w) {
    EXPECT_EQ(runs[w].load(), 1) << "worker " << w;
  }
}

TEST(ParallelWorkersTest, FirstExceptionWinsAndAllWorkersComplete) {
  std::atomic<int> ran{0};
  try {
    ParallelWorkers(8, [&](int w) {
      ran.fetch_add(1);
      throw std::runtime_error("worker " + std::to_string(w));
    });
    FAIL() << "expected ParallelWorkers to rethrow";
  } catch (const std::runtime_error& e) {
    // Exactly one of the eight exceptions surfaces; which one depends on
    // scheduling, but it must be one of them, intact.
    EXPECT_EQ(std::string(e.what()).rfind("worker ", 0), 0u);
  }
  EXPECT_EQ(ran.load(), 8);
}

TEST(DefaultWorkersTest, IsAtLeastOne) {
  EXPECT_GE(DefaultWorkers(), 1);
}

}  // namespace
}  // namespace dseq
