#include "src/dist/dseq_miner.h"

#include <gtest/gtest.h>

#include "src/core/desq_dfs.h"
#include "src/dict/sequence.h"
#include "src/fst/compiler.h"
#include "tests/test_util.h"

namespace dseq {
namespace {

constexpr char kPatternEx[] = ".*(A)[(.^).*]*(b).*";

TEST(DSeqTest, RunningExampleGolden) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  DSeqOptions options;
  options.sigma = 2;
  DistributedResult result = MineDSeq(db.sequences, fst, db.dict, options);
  MiningResult expected = {
      {db.ParseSequence("a1 b"), 3},
      {db.ParseSequence("a1 a1 b"), 2},
      {db.ParseSequence("a1 A b"), 2},
  };
  Canonicalize(&expected);
  EXPECT_EQ(result.patterns, expected)
      << testing::Format(result.patterns, db.dict);
}

TEST(DSeqTest, RewritingReducesShuffle) {
  SequenceDatabase db = testing::RandomDatabase(11, 8, 200, 12);
  Fst fst = CompileFst(".*(i0)[(.^).*]*(i1).*", db.dict);
  DSeqOptions with;
  with.sigma = 2;
  DSeqOptions without = with;
  without.rewrite = false;
  DistributedResult r1 = MineDSeq(db.sequences, fst, db.dict, with);
  DistributedResult r2 = MineDSeq(db.sequences, fst, db.dict, without);
  EXPECT_EQ(r1.patterns, r2.patterns);
  EXPECT_LE(r1.metrics.shuffle_bytes, r2.metrics.shuffle_bytes);
}

TEST(DSeqTest, AblationsAgree) {
  SequenceDatabase db = testing::RandomDatabase(12, 8, 60, 9);
  Fst fst = CompileFst(".*(i0)[(.^).*]*(i1).*", db.dict);
  DSeqOptions base;
  base.sigma = 2;
  DistributedResult reference = MineDSeq(db.sequences, fst, db.dict, base);
  for (bool grid : {false, true}) {
    for (bool rewrite : {false, true}) {
      for (bool stop : {false, true}) {
        DSeqOptions options = base;
        options.use_grid = grid;
        options.rewrite = rewrite;
        options.early_stop = stop;
        DistributedResult actual =
            MineDSeq(db.sequences, fst, db.dict, options);
        EXPECT_EQ(actual.patterns, reference.patterns)
            << "grid=" << grid << " rewrite=" << rewrite << " stop=" << stop;
      }
    }
  }
}

TEST(DSeqTest, MultiWorkerDeterminism) {
  SequenceDatabase db = testing::RandomDatabase(13, 8, 100, 10);
  Fst fst = CompileFst(".*(.^)[.{0,1}(.^)]{1,2}.*", db.dict);
  DSeqOptions options;
  options.sigma = 3;
  DistributedResult reference = MineDSeq(db.sequences, fst, db.dict, options);
  options.num_map_workers = 4;
  options.num_reduce_workers = 3;
  DistributedResult parallel = MineDSeq(db.sequences, fst, db.dict, options);
  EXPECT_EQ(parallel.patterns, reference.patterns);
}

TEST(DSeqTest, NoGridBudgetThrows) {
  SequenceDatabase db = testing::RandomDatabase(14, 6, 20, 12);
  Fst fst = CompileFst(".*(.^)[.{0,1}(.^)]{1,2}.*", db.dict);
  DSeqOptions options;
  options.sigma = 1;
  options.use_grid = false;
  options.nogrid_step_budget = 3;
  EXPECT_THROW(MineDSeq(db.sequences, fst, db.dict, options),
               MiningBudgetError);
}

class DSeqPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, std::string>> {};

TEST_P(DSeqPropertyTest, MatchesDesqDfs) {
  auto [seed, pattern] = GetParam();
  SequenceDatabase db = testing::RandomDatabase(seed + 700, 8, 40, 8);
  Fst fst = CompileFst(pattern, db.dict);
  for (uint64_t sigma : {1, 2, 4}) {
    DesqDfsOptions seq_options;
    seq_options.sigma = sigma;
    MiningResult expected =
        MineDesqDfs(db.sequences, fst, db.dict, seq_options);

    DSeqOptions options;
    options.sigma = sigma;
    options.num_map_workers = 2;
    options.num_reduce_workers = 2;
    DistributedResult actual = MineDSeq(db.sequences, fst, db.dict, options);
    EXPECT_EQ(actual.patterns, expected)
        << "pattern=" << pattern << " sigma=" << sigma << "\nactual:\n"
        << testing::Format(actual.patterns, db.dict) << "expected:\n"
        << testing::Format(expected, db.dict);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomizedDSeq, DSeqPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::ValuesIn(testing::PropertyPatterns())));

}  // namespace
}  // namespace dseq
