// Golden semantics tests for the paper's Tab. III constraints on a
// hand-built miniature corpus — pins down exactly which phrases each
// constraint extracts, independent of the synthetic generators.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/candidates.h"
#include "src/core/grid.h"
#include "src/dict/sequence.h"
#include "src/fst/compiler.h"
#include "src/fst/dot_export.h"

namespace dseq {
namespace {

// A miniature annotated corpus:
//   POS tags: VERB NOUN DET PREP ADJ ADV; entities: alice/acme -> PER/ORG
//   -> ENTITY; lemmas live/deal/be with inflections.
struct MiniCorpus {
  SequenceDatabase db;

  MiniCorpus() {
    DictionaryBuilder b;
    ItemId verb = b.AddItem("VERB");
    ItemId noun = b.AddItem("NOUN");
    ItemId det = b.AddItem("DET");
    ItemId prep = b.AddItem("PREP");
    ItemId adj = b.AddItem("ADJ");
    b.AddItem("ADV");
    ItemId entity = b.AddItem("ENTITY");
    ItemId per = b.AddItem("PER");
    ItemId org = b.AddItem("ORG");
    b.AddParent(per, entity);
    b.AddParent(org, entity);

    auto word = [&](const char* form, const char* lemma, ItemId pos) {
      ItemId l = b.GetOrAddItem(lemma);
      // Idempotent for repeated lemmas.
      if (b.GetOrAddItem(lemma) == l) b.AddParent(l, pos);
      ItemId f = b.GetOrAddItem(form);
      b.AddParent(f, l);
      return f;
    };
    lives = word("lives", "live", verb);
    lived = word("lived", "live", verb);
    makes = word("makes", "make", verb);
    deal_n = word("deal", "deal_lemma", noun);
    with = word("with", "with_lemma", prep);
    in = word("in", "in_lemma", prep);
    the = word("the", "the_lemma", det);
    a = word("a", "a_lemma", det);
    big = word("big", "big_lemma", adj);
    town = word("town", "town_lemma", noun);
    is = word("is", "be", verb);
    professor = word("professor", "professor_lemma", noun);

    alice = b.GetOrAddItem("alice");
    b.AddParent(alice, per);
    bob = b.GetOrAddItem("bob");
    b.AddParent(bob, per);
    acme = b.GetOrAddItem("acme");
    b.AddParent(acme, org);

    db.dict = b.Build();
    // "alice lives in acme", "bob makes a deal with acme",
    // "alice is a professor", "the big town".
    db.sequences = {
        {alice, lives, in, acme},
        {bob, makes, a, deal_n, with, acme},
        {alice, is, a, professor},
        {the, big, town},
    };
    db.Recode();
    Reresolve();
  }

  void Reresolve() {
    lives = db.dict.ItemByName("lives");
    alice = db.dict.ItemByName("alice");
  }

  std::vector<std::string> Candidates(const std::string& pattern,
                                      size_t seq_index) const {
    Fst fst = CompileFst(pattern, db.dict);
    StateGrid grid =
        StateGrid::Build(db.sequences[seq_index], fst, db.dict, {});
    std::vector<Sequence> out;
    EnumerateCandidates(grid, 100000, &out);
    std::vector<std::string> strings;
    for (const Sequence& s : out) strings.push_back(db.FormatSequence(s));
    std::sort(strings.begin(), strings.end());
    return strings;
  }

  ItemId lives, lived, makes, deal_n, with, in, the, a, big, town, is,
      professor, alice, bob, acme;
};

std::vector<std::string> Sorted(std::vector<std::string> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(ConstraintSemanticsTest, N1ExtractsRelationalPhrases) {
  MiniCorpus mini;
  const char* n1 = ".* ENTITY (VERB+ NOUN+? PREP?) ENTITY .*";
  // "alice lives in acme" -> "lives in" only: with PREP? unused, "in"
  // would remain unconsumed before the second ENTITY (context constraint!).
  EXPECT_EQ(mini.Candidates(n1, 0), Sorted({"lives in"}));
  // "bob makes a deal with acme": DET 'a' blocks VERB+ NOUN+? PREP? — no
  // match (N1 has no DET slot).
  EXPECT_TRUE(mini.Candidates(n1, 1).empty());
  // Copular sentence has no second entity after the verb phrase.
  EXPECT_TRUE(mini.Candidates(n1, 2).empty());
}

TEST(ConstraintSemanticsTest, N2ProducesTypedRelations) {
  MiniCorpus mini;
  const char* n2 = ".* (ENTITY^ VERB+ NOUN+? PREP? ENTITY^) .*";
  auto c = mini.Candidates(n2, 0);
  // Entities generalize up to ENTITY: alice/PER/ENTITY x acme/ORG/ENTITY.
  EXPECT_NE(std::find(c.begin(), c.end(), "PER lives in ORG"), c.end());
  EXPECT_NE(std::find(c.begin(), c.end(), "ENTITY lives in ENTITY"), c.end());
  EXPECT_NE(std::find(c.begin(), c.end(), "alice lives in acme"), c.end());
  EXPECT_EQ(c.size(), 3u * 3u);  // 3 generalizations per entity, verb+prep fixed
}

TEST(ConstraintSemanticsTest, N3ExtractsCopularRelations) {
  MiniCorpus mini;
  const char* n3 = ".* (ENTITY^ be^=) DET? (ADV? ADJ? NOUN) .*";
  auto c = mini.Candidates(n3, 2);
  // "alice is a professor": entity generalizations x forced 'be' x noun.
  EXPECT_EQ(c, Sorted({"alice be professor", "PER be professor",
                       "ENTITY be professor"}));
  // Non-copular sentences produce nothing.
  EXPECT_TRUE(mini.Candidates(n3, 0).empty());
  EXPECT_TRUE(mini.Candidates(n3, 3).empty());
}

TEST(ConstraintSemanticsTest, CopulaRequiresBeLemma) {
  MiniCorpus mini;
  // be^= matches only descendants of the lemma 'be' ("is"), not "lives".
  const char* pattern = ".* (be^=) .*";
  EXPECT_EQ(mini.Candidates(pattern, 2), Sorted({"be"}));
  EXPECT_TRUE(mini.Candidates(pattern, 0).empty());
}

TEST(ConstraintSemanticsTest, N4GeneralizedTrigramBeforeNoun) {
  MiniCorpus mini;
  const char* n4 = ".* (.^){3} NOUN .*";
  auto c = mini.Candidates(n4, 2);  // alice is a professor
  // Trigram "alice is a" with each token generalized independently
  // (3 entity levels x 3 verb levels x 3 det levels = 27 candidates).
  EXPECT_EQ(c.size(), 27u);
  EXPECT_NE(std::find(c.begin(), c.end(), "PER VERB DET"), c.end());
  EXPECT_NE(std::find(c.begin(), c.end(), "alice is a"), c.end());
}

TEST(ConstraintSemanticsTest, A1StyleGapConstraint) {
  MiniCorpus mini;
  // Two nouns with at most one item between them.
  const char* pattern = ".* (NOUN) [.{0,1}(NOUN)]{1,1} .*";
  auto c = mini.Candidates(pattern, 1);  // bob makes a deal with acme
  EXPECT_TRUE(c.empty());  // 'deal' is the only NOUN in range
  auto c2 = mini.Candidates(pattern, 2);  // alice is a professor: one noun
  EXPECT_TRUE(c2.empty());
}

TEST(ConstraintSemanticsTest, FstDotExportContainsStructure) {
  MiniCorpus mini;
  Fst fst = CompileFst(".* (ENTITY^ be^=) DET? (ADV? ADJ? NOUN) .*",
                       mini.db.dict);
  std::string dot = FstToDot(fst, mini.db.dict);
  EXPECT_NE(dot.find("digraph fst"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
  EXPECT_NE(dot.find("anc<=ENTITY"), std::string::npos);
  EXPECT_NE(dot.find("be"), std::string::npos);
}

TEST(ConstraintSemanticsTest, NfaDotExportContainsLabels) {
  OutputNfa nfa;
  nfa.AddLabelString({{1}, {1, 2}});
  nfa.Canonicalize();
  SequenceDatabase db = MakeRunningExample();
  std::string dot = NfaToDot(nfa, db.dict);
  EXPECT_NE(dot.find("digraph nfa"), std::string::npos);
  EXPECT_NE(dot.find("{b,A}"), std::string::npos);
}

}  // namespace
}  // namespace dseq
