// FST output semantics on DAG-shaped hierarchies (multi-parent items),
// which the AMZN dataset exhibits and forest-only systems cannot handle.
#include <gtest/gtest.h>

#include "src/core/candidates.h"
#include "src/core/desq_dfs.h"
#include "src/core/grid.h"
#include "src/dict/sequence.h"
#include "src/fst/compiler.h"
#include "tests/test_util.h"

namespace dseq {
namespace {

// Diamond hierarchy: x -> {p, q} -> root, plus a sibling y -> p.
struct DiamondDb {
  SequenceDatabase db;
  ItemId x, y, p, q, root;

  DiamondDb() {
    DictionaryBuilder builder;
    x = builder.AddItem("x");
    y = builder.AddItem("y");
    p = builder.AddItem("p");
    q = builder.AddItem("q");
    root = builder.AddItem("root");
    builder.AddParent(x, p);
    builder.AddParent(x, q);
    builder.AddParent(y, p);
    builder.AddParent(p, root);
    builder.AddParent(q, root);
    db.dict = builder.Build();
    db.sequences = {{x}, {x, y}, {y, x}};
    db.Recode();
    // Re-resolve ids after recoding.
    x = db.dict.ItemByName("x");
    y = db.dict.ItemByName("y");
    p = db.dict.ItemByName("p");
    q = db.dict.ItemByName("q");
    root = db.dict.ItemByName("root");
  }
};

std::vector<std::string> Candidates(const SequenceDatabase& db,
                                    const std::string& pattern,
                                    const Sequence& T) {
  Fst fst = CompileFst(pattern, db.dict);
  StateGrid grid = StateGrid::Build(T, fst, db.dict, {});
  std::vector<Sequence> candidates;
  EnumerateCandidates(grid, 100000, &candidates);
  std::vector<std::string> out;
  for (const Sequence& s : candidates) out.push_back(db.FormatSequence(s));
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> Sorted(std::vector<std::string> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(DagSemanticsTest, DotGeneralizeOutputsAllAncestorsAcrossBothParents) {
  DiamondDb d;
  EXPECT_EQ(Candidates(d.db, "(.^)", {d.x}),
            Sorted({"x", "p", "q", "root"}));
}

TEST(DagSemanticsTest, GeneralizeUpToStopsAtBound) {
  DiamondDb d;
  // (p^) on x: ancestors of x that are descendants of p: {x, p} (not q,
  // not root).
  EXPECT_EQ(Candidates(d.db, "(p^)", {d.x}), Sorted({"x", "p"}));
  // (root^) on x: everything up to root.
  EXPECT_EQ(Candidates(d.db, "(root^)", {d.x}),
            Sorted({"x", "p", "q", "root"}));
}

TEST(DagSemanticsTest, DescendantMatchFollowsBothParents) {
  DiamondDb d;
  // q's descendants include x (via the second parent edge) but not y.
  EXPECT_EQ(Candidates(d.db, "(q)", {d.x}), Sorted({"x"}));
  EXPECT_TRUE(Candidates(d.db, "(q)", {d.y}).empty());
}

TEST(DagSemanticsTest, ForcedGeneralizationToSharedAncestor) {
  DiamondDb d;
  // Both x and y force-generalize to p.
  EXPECT_EQ(Candidates(d.db, "(p^=)(p^=)", {d.x, d.y}), Sorted({"p p"}));
}

TEST(DagSemanticsTest, InnerNodesCanAppearInSequences) {
  // Sequences may contain non-leaf items; matching and generalization work.
  DiamondDb d;
  SequenceDatabase& db = d.db;
  db.sequences.push_back({d.p});
  EXPECT_EQ(Candidates(db, "(root^)", {d.p}), Sorted({"p", "root"}));
  EXPECT_EQ(Candidates(db, "(.)", {d.p}), Sorted({"p"}));
}

TEST(DagSemanticsTest, MiningAgreesAcrossAlgorithmsOnDag) {
  DiamondDb d;
  Fst fst = CompileFst(".*(.^).*", d.db.dict);
  DesqDfsOptions options;
  options.sigma = 2;
  MiningResult dfs = MineDesqDfs(d.db.sequences, fst, d.db.dict, options);
  MiningResult brute =
      testing::BruteForceMine(d.db.sequences, fst, d.db.dict, 2);
  EXPECT_EQ(dfs, brute);
  // f(root) = 3 (all sequences), f(p) = 3, f(q) = 3 (x occurs in all).
  bool found_root = false;
  for (const auto& pc : dfs) {
    if (pc.pattern == Sequence{d.root}) {
      found_root = true;
      EXPECT_EQ(pc.frequency, 3u);
    }
  }
  EXPECT_TRUE(found_root);
}

TEST(DagSemanticsTest, N5StylePatternOnDag) {
  DiamondDb d;
  // One of three positions generalized.
  auto c = Candidates(d.db, "([.^.]|[..^])", {d.x, d.y});
  // First generalized: {x,p,q,root} x {y}; second: {x} x {y,p,root}.
  EXPECT_EQ(c, Sorted({"x y", "p y", "q y", "root y", "x p", "x root"}));
}

TEST(DagSemanticsTest, ExactMatchOnInnerNode) {
  DiamondDb d;
  d.db.sequences.push_back({d.p});
  EXPECT_TRUE(Candidates(d.db, "(p=)", {d.x}).empty());
  EXPECT_EQ(Candidates(d.db, "(p=)", {d.p}), Sorted({"p"}));
}

}  // namespace
}  // namespace dseq
