// Fault-injection framework tests: the site-name registry and the frame
// decoder's sticky-bad contract always run; everything that needs live
// injection sites is gated on fault::kFaultInjectionEnabled (build with
// -DDSEQ_FAULT_INJECTION=ON) and exercises the schedule engine both
// directly (nth/detail/scope/probability semantics) and end-to-end over
// real loopback sockets (EINTR storms, short I/O, injected ECONNRESET,
// mid-frame disconnect).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cerrno>
#include <string>
#include <vector>

#include "src/fault/fault_injection.h"
#include "src/rpc/frame.h"
#include "src/rpc/socket.h"
#include "src/util/varint.h"

namespace dseq {
namespace {

TEST(FaultRegistryTest, SiteNamesRoundTripAndRejectUnknown) {
  for (int i = 0; i < fault::kNumSites; ++i) {
    fault::Site site = static_cast<fault::Site>(i);
    const char* name = fault::SiteName(site);
    EXPECT_STRNE(name, "unknown") << "site " << i;
    fault::Site parsed;
    ASSERT_TRUE(fault::SiteFromName(name, &parsed)) << name;
    EXPECT_EQ(parsed, site) << name;
  }
  fault::Site parsed;
  EXPECT_FALSE(fault::SiteFromName("socket.frobnicate", &parsed));
  EXPECT_FALSE(fault::SiteFromName("", &parsed));
}

TEST(FrameDecoderFaultTest, DecoderStaysBadOnceAStreamIsCondemned) {
  // A condemned stream must never resurrect: after one malformed frame,
  // even a perfectly valid follow-up frame is unreachable. This is what
  // makes an injected mid-stream corruption fail loudly instead of
  // resynchronizing onto garbage.
  std::string wire;
  PutVarint(&wire, 99);  // no such MsgType
  PutVarint(&wire, 0);
  rpc::FrameDecoder decoder;
  decoder.Append(wire);
  rpc::MsgType type;
  std::string_view payload;
  ASSERT_EQ(decoder.Next(&type, &payload), rpc::FrameDecoder::Status::kBadFrame);

  std::string good;
  rpc::AppendFrame(&good, rpc::MsgType::kHello, "w0");
  decoder.Append(good);
  EXPECT_EQ(decoder.Next(&type, &payload), rpc::FrameDecoder::Status::kBadFrame);
  EXPECT_EQ(decoder.Next(&type, &payload), rpc::FrameDecoder::Status::kBadFrame);
}

// RAII: no test leaves a schedule installed for its neighbors.
struct ScheduleGuard {
  ~ScheduleGuard() { fault::Reset(); }
};

// Loopback MsgConn pair (client, server) for the socket-level tests.
struct ConnPair {
  ConnPair() {
    rpc::IgnoreSigPipe();
    uint16_t port = 0;
    int listen_fd = rpc::ListenLoopback(&port);
    client_fd = rpc::ConnectLoopback(port);
    server_fd = rpc::AcceptConn(listen_fd);
    ::close(listen_fd);
  }
  int client_fd = -1;
  int server_fd = -1;
};

TEST(FaultScheduleTest, NthTriggerFiresExactlyOnceAtTheNthHit) {
  if (!fault::kFaultInjectionEnabled) {
    GTEST_SKIP() << "built without -DDSEQ_FAULT_INJECTION=ON";
  }
  ScheduleGuard guard;
  fault::FaultSchedule schedule;
  schedule.seed = 1;
  schedule.rules.push_back(fault::FaultRule{
      fault::Site::kSpillRead, fault::Action::kErrno, EIO, fault::kAnyDetail,
      fault::kAnyProcess, /*nth=*/3, 0.0, /*max_fires=*/1});
  fault::Configure(schedule);

  for (uint64_t hit = 1; hit <= 5; ++hit) {
    fault::Fault f = fault::Evaluate(fault::Site::kSpillRead);
    if (hit == 3) {
      EXPECT_EQ(f.action, fault::Action::kErrno);
      EXPECT_EQ(f.param, EIO);
    } else {
      EXPECT_EQ(f.action, fault::Action::kNone) << "hit " << hit;
    }
  }
  EXPECT_EQ(fault::SiteHits(fault::Site::kSpillRead), 5u);
  EXPECT_EQ(fault::TotalFires(), 1u);
}

TEST(FaultScheduleTest, RulesMatchOnDetailAndProcessScope) {
  if (!fault::kFaultInjectionEnabled) {
    GTEST_SKIP() << "built without -DDSEQ_FAULT_INJECTION=ON";
  }
  ScheduleGuard guard;
  fault::FaultSchedule schedule;
  schedule.seed = 2;
  // Fires only for detail 7 (e.g. "the 7th worker message").
  schedule.rules.push_back(fault::FaultRule{
      fault::Site::kWorkerMessage, fault::Action::kKill, 0, /*detail=*/7,
      fault::kAnyProcess, /*nth=*/0, /*probability=*/1.0, /*max_fires=*/0});
  // Fires only in worker ordinal 2's process.
  schedule.rules.push_back(fault::FaultRule{
      fault::Site::kWorkerCommit, fault::Action::kStall, 5, fault::kAnyDetail,
      /*scope=*/2, /*nth=*/0, /*probability=*/1.0, /*max_fires=*/0});
  fault::Configure(schedule);

  EXPECT_EQ(fault::Evaluate(fault::Site::kWorkerMessage, 6).action,
            fault::Action::kNone);
  EXPECT_EQ(fault::Evaluate(fault::Site::kWorkerMessage, 7).action,
            fault::Action::kKill);
  // This process is the coordinator (default scope): the worker-2 rule is
  // silent until the scope says otherwise.
  EXPECT_EQ(fault::Evaluate(fault::Site::kWorkerCommit, 0).action,
            fault::Action::kNone);
  fault::SetProcessScope(2);
  EXPECT_EQ(fault::Evaluate(fault::Site::kWorkerCommit, 0).action,
            fault::Action::kStall);
  fault::SetProcessScope(fault::kCoordinator);
}

TEST(FaultScheduleTest, ProbabilisticFiresReplayIdenticallyForTheSameSeed) {
  if (!fault::kFaultInjectionEnabled) {
    GTEST_SKIP() << "built without -DDSEQ_FAULT_INJECTION=ON";
  }
  ScheduleGuard guard;
  auto pattern_for = [](uint64_t seed) {
    fault::FaultSchedule schedule;
    schedule.seed = seed;
    schedule.rules.push_back(fault::FaultRule{
        fault::Site::kSocketWrite, fault::Action::kShortIo, 0,
        fault::kAnyDetail, fault::kAnyProcess, /*nth=*/0,
        /*probability=*/0.5, /*max_fires=*/0});
    fault::Configure(schedule);
    std::vector<bool> fires;
    for (int i = 0; i < 200; ++i) {
      fires.push_back(fault::Evaluate(fault::Site::kSocketWrite).action !=
                      fault::Action::kNone);
    }
    return fires;
  };

  std::vector<bool> first = pattern_for(42);
  std::vector<bool> again = pattern_for(42);
  EXPECT_EQ(first, again);
  // 200 coin flips from a decorrelated stream: a collision would mean the
  // seed mixing is broken.
  EXPECT_NE(first, pattern_for(43));
}

TEST(FaultSocketTest, EintrStormsAndShortIoPreserveEveryFrame) {
  if (!fault::kFaultInjectionEnabled) {
    GTEST_SKIP() << "built without -DDSEQ_FAULT_INJECTION=ON";
  }
  ConnPair pair;
  rpc::MsgConn client(pair.client_fd);
  rpc::MsgConn server(pair.server_fd);

  ScheduleGuard guard;
  fault::FaultSchedule schedule;
  schedule.seed = 7;
  // An EINTR burst on the first read, then byte-at-a-time transfers on
  // roughly half of all reads and writes: the wrappers must retry and loop
  // until every frame round-trips byte-identically.
  schedule.rules.push_back(fault::FaultRule{
      fault::Site::kSocketRead, fault::Action::kEintr, 0, fault::kAnyDetail,
      fault::kAnyProcess, /*nth=*/1, 0.0, /*max_fires=*/1});
  schedule.rules.push_back(fault::FaultRule{
      fault::Site::kSocketRead, fault::Action::kShortIo, 0, fault::kAnyDetail,
      fault::kAnyProcess, /*nth=*/0, /*probability=*/0.5, /*max_fires=*/0});
  schedule.rules.push_back(fault::FaultRule{
      fault::Site::kSocketWrite, fault::Action::kShortIo, 0, fault::kAnyDetail,
      fault::kAnyProcess, /*nth=*/0, /*probability=*/0.5, /*max_fires=*/0});
  fault::Configure(schedule);

  const std::vector<std::pair<rpc::MsgType, std::string>> sent = {
      {rpc::MsgType::kHello, "w3"},
      {rpc::MsgType::kSegment, std::string(257, 'q')},
      {rpc::MsgType::kShutdown, ""},
  };
  for (const auto& [type, payload] : sent) {
    ASSERT_TRUE(client.Send(type, payload));
  }
  for (const auto& [want_type, want_payload] : sent) {
    rpc::MsgType type;
    std::string payload;
    ASSERT_TRUE(server.Recv(&type, &payload));
    EXPECT_EQ(type, want_type);
    EXPECT_EQ(payload, want_payload);
  }
  EXPECT_GT(fault::TotalFires(), 0u);
}

TEST(FaultSocketTest, InjectedConnResetFailsTheReceive) {
  if (!fault::kFaultInjectionEnabled) {
    GTEST_SKIP() << "built without -DDSEQ_FAULT_INJECTION=ON";
  }
  ConnPair pair;
  rpc::MsgConn client(pair.client_fd);
  rpc::MsgConn server(pair.server_fd);

  ScheduleGuard guard;
  fault::FaultSchedule schedule;
  schedule.seed = 8;
  schedule.rules.push_back(fault::FaultRule{
      fault::Site::kSocketRead, fault::Action::kErrno, ECONNRESET,
      fault::kAnyDetail, fault::kAnyProcess, /*nth=*/1, 0.0, /*max_fires=*/1});
  fault::Configure(schedule);

  ASSERT_TRUE(client.Send(rpc::MsgType::kHello, "w0"));
  rpc::MsgType type;
  std::string payload;
  EXPECT_FALSE(server.Recv(&type, &payload));
}

TEST(FaultSocketTest, MidFrameDisconnectSurfacesAsEofNotAPhantomFrame) {
  if (!fault::kFaultInjectionEnabled) {
    GTEST_SKIP() << "built without -DDSEQ_FAULT_INJECTION=ON";
  }
  ConnPair pair;
  rpc::MsgConn client(pair.client_fd);
  rpc::MsgConn server(pair.server_fd);

  ScheduleGuard guard;
  fault::FaultSchedule schedule;
  schedule.seed = 9;
  schedule.rules.push_back(fault::FaultRule{
      fault::Site::kSocketSendFrame, fault::Action::kDisconnect, 0,
      fault::kAnyDetail, fault::kAnyProcess, /*nth=*/1, 0.0, /*max_fires=*/1});
  fault::Configure(schedule);

  // The sender ships half the encoded frame and drops the connection; the
  // receiver's decoder must park the torso as kNeedMore and report EOF —
  // delivering a frame here would be silent corruption.
  EXPECT_FALSE(client.Send(rpc::MsgType::kSegment, std::string(300, 'z')));
  rpc::MsgType type;
  std::string payload;
  EXPECT_FALSE(server.Recv(&type, &payload));
  EXPECT_EQ(fault::TotalFires(), 1u);
}

}  // namespace
}  // namespace dseq
