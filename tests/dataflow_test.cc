#include "src/dataflow/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>

#include "src/dataflow/shuffle_buffer.h"
#include "src/util/sync.h"
#include "src/util/varint.h"

namespace dseq {
namespace {

// Distributed word count over synthetic records, with and without combiner.
std::map<std::string, uint64_t> WordCount(const std::vector<std::string>& docs,
                                          bool use_combiner, int map_workers,
                                          int reduce_workers,
                                          DataflowMetrics* metrics_out,
                                          bool compress = false,
                                          uint64_t budget = 0) {
  std::map<std::string, uint64_t> counts;
  dseq::Mutex mu;
  MapFn map_fn = [&](size_t i, const EmitFn& emit) {
    std::string word;
    std::string one;
    PutVarint(&one, 1);
    for (char c : docs[i] + " ") {
      if (c == ' ') {
        if (!word.empty()) emit(word, one);
        word.clear();
      } else {
        word += c;
      }
    }
  };
  ReduceFn reduce_fn = [&](int, std::string_view key,
                           std::vector<std::string_view>& values) {
    uint64_t total = 0;
    for (std::string_view v : values) {
      size_t pos = 0;
      uint64_t c = 0;
      GetVarint(v, &pos, &c);
      total += c;
    }
    dseq::MutexLock lock(mu);
    counts[std::string(key)] += total;
  };
  DataflowOptions options;
  options.num_map_workers = map_workers;
  options.num_reduce_workers = reduce_workers;
  options.compress_shuffle = compress;
  options.shuffle_budget_bytes = budget;
  DataflowMetrics metrics =
      RunMapReduce(docs.size(), map_fn,
                   use_combiner ? CombinerFactory(MakeSumCombiner)
                                : CombinerFactory(nullptr),
                   reduce_fn, options);
  if (metrics_out != nullptr) *metrics_out = metrics;
  return counts;
}

TEST(DataflowTest, WordCountSingleWorker) {
  std::vector<std::string> docs = {"a b a", "b c", "a"};
  auto counts = WordCount(docs, false, 1, 1, nullptr);
  EXPECT_EQ(counts["a"], 3u);
  EXPECT_EQ(counts["b"], 2u);
  EXPECT_EQ(counts["c"], 1u);
}

TEST(DataflowTest, ResultsIndependentOfWorkerCount) {
  std::vector<std::string> docs;
  for (int i = 0; i < 200; ++i) {
    docs.push_back("w" + std::to_string(i % 7) + " w" + std::to_string(i % 3));
  }
  auto reference = WordCount(docs, false, 1, 1, nullptr);
  for (int mw : {2, 4}) {
    for (int rw : {1, 3}) {
      EXPECT_EQ(WordCount(docs, false, mw, rw, nullptr), reference)
          << mw << "x" << rw;
      EXPECT_EQ(WordCount(docs, true, mw, rw, nullptr), reference)
          << mw << "x" << rw << " combined";
    }
  }
}

TEST(DataflowTest, CombinerReducesShuffleVolume) {
  std::vector<std::string> docs(50, "x x x x x x x x");
  DataflowMetrics without;
  DataflowMetrics with;
  WordCount(docs, false, 1, 1, &without);
  WordCount(docs, true, 1, 1, &with);
  EXPECT_LT(with.shuffle_records, without.shuffle_records);
  EXPECT_LT(with.shuffle_bytes, without.shuffle_bytes);
  // Pre-combine record counts are identical.
  EXPECT_EQ(with.map_output_records, without.map_output_records);
}

TEST(DataflowTest, MetricsCountRecords) {
  std::vector<std::string> docs = {"a b", "c"};
  DataflowMetrics metrics;
  WordCount(docs, false, 1, 1, &metrics);
  EXPECT_EQ(metrics.map_output_records, 3u);
  EXPECT_EQ(metrics.shuffle_records, 3u);
  EXPECT_GT(metrics.shuffle_bytes, 0u);
  // Compression off: no compressed volume is reported.
  EXPECT_EQ(metrics.shuffle_compressed_bytes, 0u);
  EXPECT_GE(metrics.map_seconds, 0.0);
  EXPECT_GE(metrics.reduce_seconds, 0.0);
}

TEST(DataflowTest, ReducerBytesSumToShuffleBytes) {
  std::vector<std::string> docs;
  for (int i = 0; i < 100; ++i) docs.push_back("k" + std::to_string(i % 13));
  DataflowMetrics metrics;
  WordCount(docs, false, 3, 4, &metrics);
  ASSERT_EQ(metrics.reducer_bytes.size(), 4u);
  uint64_t sum = 0;
  for (uint64_t b : metrics.reducer_bytes) sum += b;
  EXPECT_EQ(sum, metrics.shuffle_bytes);
}

TEST(DataflowTest, CustomPartitionerRoutesKeysAndMatchesMetrics) {
  std::vector<std::string> docs = {"a b c", "d e", "f"};
  std::map<std::string, uint64_t> counts;
  dseq::Mutex mu;
  std::atomic<int> nonzero_worker_calls{0};
  MapFn map_fn = [&](size_t i, const EmitFn& emit) {
    std::string one;
    PutVarint(&one, 1);
    for (char c : docs[i]) {
      if (c != ' ') emit(std::string(1, c), one);
    }
  };
  ReduceFn reduce_fn = [&](int worker, std::string_view key,
                           std::vector<std::string_view>& values) {
    if (worker != 0) nonzero_worker_calls.fetch_add(1);
    dseq::MutexLock lock(mu);
    counts[std::string(key)] += values.size();
  };
  DataflowOptions options;
  options.num_map_workers = 2;
  options.num_reduce_workers = 4;
  options.partitioner = [](std::string_view, int) { return 0; };
  DataflowMetrics metrics =
      RunMapReduce(docs.size(), map_fn, nullptr, reduce_fn, options);
  // Everything was routed to reducer 0: all bytes on reducer 0, every key
  // reduced by worker 0.
  EXPECT_EQ(nonzero_worker_calls.load(), 0);
  ASSERT_EQ(metrics.reducer_bytes.size(), 4u);
  EXPECT_EQ(metrics.reducer_bytes[0], metrics.shuffle_bytes);
  EXPECT_EQ(metrics.reducer_bytes[1], 0u);
  EXPECT_EQ(counts.size(), 6u);
}

TEST(DataflowTest, OutOfRangePartitionerThrows) {
  MapFn map_fn = [](size_t, const EmitFn& emit) { emit("k", "v"); };
  ReduceFn reduce_fn = [](int, std::string_view,
                          std::vector<std::string_view>&) {};
  DataflowOptions options;
  options.num_reduce_workers = 2;
  options.partitioner = [](std::string_view, int workers) { return workers; };
  EXPECT_THROW(RunMapReduce(1, map_fn, nullptr, reduce_fn, options),
               std::out_of_range);
  options.partitioner = [](std::string_view, int) { return -1; };
  EXPECT_THROW(RunMapReduce(1, map_fn, nullptr, reduce_fn, options),
               std::out_of_range);
  // The failed runs released their buffers.
  EXPECT_EQ(ShuffleBufferLiveBytes(), 0u);
}

TEST(DataflowTest, DefaultPartitionerMatchesShuffleReducerForKey) {
  // The exposed helper must reproduce the engine's routing, or planners
  // and balance summaries would project a different layout than runs use.
  std::vector<std::string> docs = {"alpha beta gamma delta epsilon"};
  std::map<std::string, uint64_t> seen_worker;
  dseq::Mutex mu;
  MapFn map_fn = [&](size_t i, const EmitFn& emit) {
    std::string word;
    for (char c : docs[i] + " ") {
      if (c == ' ') {
        if (!word.empty()) emit(word, "x");
        word.clear();
      } else {
        word += c;
      }
    }
  };
  ReduceFn reduce_fn = [&](int worker, std::string_view key,
                           std::vector<std::string_view>&) {
    dseq::MutexLock lock(mu);
    seen_worker[std::string(key)] = worker;
  };
  DataflowOptions options;
  options.num_reduce_workers = 5;
  RunMapReduce(docs.size(), map_fn, nullptr, reduce_fn, options);
  ASSERT_EQ(seen_worker.size(), 5u);
  for (const auto& [key, worker] : seen_worker) {
    EXPECT_EQ(worker, static_cast<uint64_t>(ShuffleReducerForKey(key, 5)))
        << key;
  }
}

TEST(DataflowTest, ShuffleBudgetEnforced) {
  std::vector<std::string> docs(100, "aaaaaaaaaa bbbbbbbbbb cccccccccc");
  DataflowOptions options;
  options.shuffle_budget_bytes = 50;
  MapFn map_fn = [&](size_t i, const EmitFn& emit) {
    emit(docs[i], "1");
  };
  ReduceFn reduce_fn = [](int, std::string_view,
                          std::vector<std::string_view>&) {};
  EXPECT_THROW(RunMapReduce(docs.size(), map_fn, nullptr, reduce_fn, options),
               ShuffleOverflowError);
}

TEST(DataflowTest, BudgetAppliesPostCombine) {
  // 1000 identical keys combine into one record that fits the budget.
  DataflowOptions options;
  options.shuffle_budget_bytes = 100;
  MapFn map_fn = [&](size_t, const EmitFn& emit) {
    std::string one;
    PutVarint(&one, 1);
    for (int i = 0; i < 1000; ++i) emit("key", one);
  };
  std::atomic<uint64_t> total{0};
  ReduceFn reduce_fn = [&](int, std::string_view,
                           std::vector<std::string_view>& values) {
    for (std::string_view v : values) {
      size_t pos = 0;
      uint64_t c = 0;
      GetVarint(v, &pos, &c);
      total += c;
    }
  };
  DataflowMetrics metrics =
      RunMapReduce(1, map_fn, MakeSumCombiner, reduce_fn, options);
  EXPECT_EQ(total.load(), 1000u);
  EXPECT_EQ(metrics.shuffle_records, 1u);
}

TEST(DataflowTest, EachKeyReducedExactlyOnce) {
  std::atomic<int> reduce_calls{0};
  MapFn map_fn = [&](size_t i, const EmitFn& emit) {
    emit("k" + std::to_string(i % 10), "v");
  };
  ReduceFn reduce_fn = [&](int, std::string_view,
                           std::vector<std::string_view>& values) {
    ++reduce_calls;
    EXPECT_EQ(values.size(), 10u);
  };
  DataflowOptions options;
  options.num_map_workers = 4;
  options.num_reduce_workers = 4;
  RunMapReduce(100, map_fn, nullptr, reduce_fn, options);
  EXPECT_EQ(reduce_calls.load(), 10);
}

TEST(DataflowTest, KeysArriveSortedAndValuesKeepEmitOrder) {
  // The sort-based grouper delivers keys in ascending byte order per reduce
  // worker, and values within a key in map-worker-then-emit order.
  MapFn map_fn = [&](size_t i, const EmitFn& emit) {
    emit("dup", "v" + std::to_string(i));
    emit("k" + std::to_string(9 - i % 10), "x");
  };
  std::vector<std::string> keys;
  std::vector<std::string> dup_values;
  ReduceFn reduce_fn = [&](int, std::string_view key,
                           std::vector<std::string_view>& values) {
    keys.emplace_back(key);
    if (key == "dup") {
      for (std::string_view v : values) dup_values.emplace_back(v);
    }
  };
  DataflowOptions options;  // single reduce worker: one global key order
  RunMapReduce(10, map_fn, nullptr, reduce_fn, options);
  ASSERT_EQ(keys.size(), 11u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  ASSERT_EQ(dup_values.size(), 10u);
  for (size_t i = 0; i < dup_values.size(); ++i) {
    EXPECT_EQ(dup_values[i], "v" + std::to_string(i));
  }
}

TEST(DataflowTest, EmptyInput) {
  MapFn map_fn = [](size_t, const EmitFn&) { FAIL(); };
  ReduceFn reduce_fn = [](int, std::string_view,
                          std::vector<std::string_view>&) { FAIL(); };
  DataflowMetrics metrics = RunMapReduce(0, map_fn, nullptr, reduce_fn, {});
  EXPECT_EQ(metrics.shuffle_records, 0u);
}

TEST(DataflowTest, SimulatedExecutionProducesSameResults) {
  std::vector<std::string> docs;
  for (int i = 0; i < 100; ++i) {
    docs.push_back("w" + std::to_string(i % 5) + " w" + std::to_string(i % 3));
  }
  auto threads = WordCount(docs, true, 4, 4, nullptr);

  // Same run under cluster simulation.
  std::map<std::string, uint64_t> counts;
  dseq::Mutex mu;
  MapFn map_fn = [&](size_t i, const EmitFn& emit) {
    std::string word;
    std::string one;
    PutVarint(&one, 1);
    for (char c : docs[i] + " ") {
      if (c == ' ') {
        if (!word.empty()) emit(word, one);
        word.clear();
      } else {
        word += c;
      }
    }
  };
  ReduceFn reduce_fn = [&](int, std::string_view key,
                           std::vector<std::string_view>& values) {
    uint64_t total = 0;
    for (std::string_view v : values) {
      size_t pos = 0;
      uint64_t c = 0;
      GetVarint(v, &pos, &c);
      total += c;
    }
    dseq::MutexLock lock(mu);
    counts[std::string(key)] += total;
  };
  DataflowOptions options;
  options.num_map_workers = 4;
  options.num_reduce_workers = 4;
  options.execution = Execution::kSimulated;
  DataflowMetrics metrics =
      RunMapReduce(docs.size(), map_fn, MakeSumCombiner, reduce_fn, options);
  EXPECT_EQ(counts, threads);
  EXPECT_GE(metrics.map_seconds, 0.0);
  EXPECT_GE(metrics.reduce_seconds, 0.0);
}

TEST(DataflowTest, MapExceptionPropagates) {
  MapFn map_fn = [](size_t i, const EmitFn&) {
    if (i == 5) throw std::runtime_error("boom");
  };
  ReduceFn reduce_fn = [](int, std::string_view,
                          std::vector<std::string_view>&) {};
  DataflowOptions options;
  options.num_map_workers = 3;
  EXPECT_THROW(RunMapReduce(10, map_fn, nullptr, reduce_fn, options),
               std::runtime_error);
}

// --- Shuffle compression ----------------------------------------------------

TEST(DataflowTest, CompressionPreservesResultsAndRawMetrics) {
  std::vector<std::string> docs;
  for (int i = 0; i < 120; ++i) {
    docs.push_back("alpha beta w" + std::to_string(i % 6) + " alpha");
  }
  for (int workers : {1, 3}) {
    DataflowMetrics raw_metrics;
    DataflowMetrics compressed_metrics;
    auto raw = WordCount(docs, false, workers, workers, &raw_metrics, false);
    auto compressed =
        WordCount(docs, false, workers, workers, &compressed_metrics, true);
    EXPECT_EQ(raw, compressed) << workers << " workers";
    // The raw shuffle accounting (budget basis) is unchanged by the codec.
    EXPECT_EQ(raw_metrics.shuffle_bytes, compressed_metrics.shuffle_bytes);
    EXPECT_EQ(raw_metrics.shuffle_records, compressed_metrics.shuffle_records);
    EXPECT_EQ(raw_metrics.shuffle_compressed_bytes, 0u);
    EXPECT_GT(compressed_metrics.shuffle_compressed_bytes, 0u);
    // Word-count records are highly repetitive; the codec must win.
    EXPECT_LT(compressed_metrics.shuffle_compressed_bytes,
              compressed_metrics.shuffle_bytes);
  }
}

TEST(DataflowTest, CompressionComposesWithCombinerAndBudget) {
  std::vector<std::string> docs(60, "x y x y z z z");
  DataflowMetrics plain;
  WordCount(docs, true, 2, 2, &plain, false);
  DataflowMetrics compressed;
  auto counts = WordCount(docs, true, 2, 2, &compressed, true);
  EXPECT_EQ(counts["z"], 180u);
  EXPECT_EQ(plain.shuffle_bytes, compressed.shuffle_bytes);
  EXPECT_GT(compressed.shuffle_compressed_bytes, 0u);

  // The budget stays charged on the raw serialized volume with the codec
  // on: a budget exactly at the raw volume passes, one byte below throws —
  // even though the compressed volume is far smaller than either.
  ASSERT_LT(compressed.shuffle_compressed_bytes, compressed.shuffle_bytes);
  DataflowMetrics budgeted;
  WordCount(docs, true, 2, 2, &budgeted, true, compressed.shuffle_bytes);
  EXPECT_EQ(budgeted.shuffle_bytes, compressed.shuffle_bytes);
  EXPECT_THROW(WordCount(docs, true, 2, 2, nullptr, true,
                         compressed.shuffle_bytes - 1),
               ShuffleOverflowError);
}

// --- Reduce-phase memory ----------------------------------------------------

TEST(DataflowTest, ReduceWorkersDrainBucketsAsTheyFinish) {
  // Under cluster simulation the reduce workers run sequentially; each must
  // release its bucket column before the next starts, so the live shuffle
  // gauge strictly decreases across workers instead of staying at the full
  // volume until the end of the phase.
  ASSERT_EQ(ShuffleBufferLiveBytes(), 0u);
  constexpr int kReduceWorkers = 4;
  // One key per reduce bucket (the engine partitions by
  // std::hash<std::string_view> % reduce workers), so every worker is
  // guaranteed a reduce call.
  std::vector<std::string> bucket_key(kReduceWorkers);
  int found = 0;
  for (int i = 0; found < kReduceWorkers; ++i) {
    std::string key = "key" + std::to_string(i);
    size_t b = std::hash<std::string_view>{}(key) % kReduceWorkers;
    if (bucket_key[b].empty()) {
      bucket_key[b] = key;
      ++found;
    }
  }
  MapFn map_fn = [&](size_t i, const EmitFn& emit) {
    // ~64 bytes per record, every bucket hit by every input.
    for (const std::string& key : bucket_key) {
      emit(key, std::string(60, 'v') + std::to_string(i));
    }
  };
  std::vector<uint64_t> live_at_worker;
  ReduceFn reduce_fn = [&](int r, std::string_view,
                           std::vector<std::string_view>&) {
    if (live_at_worker.size() <= static_cast<size_t>(r)) {
      live_at_worker.push_back(ShuffleBufferLiveBytes());
    }
  };
  DataflowOptions options;
  options.num_map_workers = 2;
  options.num_reduce_workers = kReduceWorkers;
  options.execution = Execution::kSimulated;
  RunMapReduce(512, map_fn, nullptr, reduce_fn, options);

  ASSERT_EQ(live_at_worker.size(), static_cast<size_t>(kReduceWorkers));
  for (size_t r = 1; r < live_at_worker.size(); ++r) {
    EXPECT_LT(live_at_worker[r], live_at_worker[r - 1]) << "worker " << r;
  }
  // The last worker's own column is already drained when it runs.
  EXPECT_EQ(live_at_worker.back(), 0u);
  // Nothing survives the round.
  EXPECT_EQ(ShuffleBufferLiveBytes(), 0u);
}

TEST(DataflowTest, BucketsFreedAfterOverflow) {
  // A budget trip mid-map must not leak tracked shuffle bytes.
  ASSERT_EQ(ShuffleBufferLiveBytes(), 0u);
  DataflowOptions options;
  options.shuffle_budget_bytes = 64;
  MapFn map_fn = [](size_t i, const EmitFn& emit) {
    emit("key" + std::to_string(i), std::string(10, 'v'));
  };
  ReduceFn sink = [](int, std::string_view, std::vector<std::string_view>&) {};
  EXPECT_THROW(RunMapReduce(100, map_fn, nullptr, sink, options),
               ShuffleOverflowError);
  EXPECT_EQ(ShuffleBufferLiveBytes(), 0u);
}

}  // namespace
}  // namespace dseq
