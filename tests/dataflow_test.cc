#include "src/dataflow/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>

#include "src/util/varint.h"

namespace dseq {
namespace {

// Distributed word count over synthetic records, with and without combiner.
std::map<std::string, uint64_t> WordCount(const std::vector<std::string>& docs,
                                          bool use_combiner, int map_workers,
                                          int reduce_workers,
                                          DataflowMetrics* metrics_out) {
  std::map<std::string, uint64_t> counts;
  std::mutex mu;
  MapFn map_fn = [&](size_t i, const EmitFn& emit) {
    std::string word;
    std::string one;
    PutVarint(&one, 1);
    for (char c : docs[i] + " ") {
      if (c == ' ') {
        if (!word.empty()) emit(word, one);
        word.clear();
      } else {
        word += c;
      }
    }
  };
  ReduceFn reduce_fn = [&](int, const std::string& key,
                           std::vector<std::string>& values) {
    uint64_t total = 0;
    for (const auto& v : values) {
      size_t pos = 0;
      uint64_t c = 0;
      GetVarint(v, &pos, &c);
      total += c;
    }
    std::lock_guard<std::mutex> lock(mu);
    counts[key] += total;
  };
  DataflowOptions options;
  options.num_map_workers = map_workers;
  options.num_reduce_workers = reduce_workers;
  DataflowMetrics metrics =
      RunMapReduce(docs.size(), map_fn,
                   use_combiner ? CombinerFactory(MakeSumCombiner)
                                : CombinerFactory(nullptr),
                   reduce_fn, options);
  if (metrics_out != nullptr) *metrics_out = metrics;
  return counts;
}

TEST(DataflowTest, WordCountSingleWorker) {
  std::vector<std::string> docs = {"a b a", "b c", "a"};
  auto counts = WordCount(docs, false, 1, 1, nullptr);
  EXPECT_EQ(counts["a"], 3u);
  EXPECT_EQ(counts["b"], 2u);
  EXPECT_EQ(counts["c"], 1u);
}

TEST(DataflowTest, ResultsIndependentOfWorkerCount) {
  std::vector<std::string> docs;
  for (int i = 0; i < 200; ++i) {
    docs.push_back("w" + std::to_string(i % 7) + " w" + std::to_string(i % 3));
  }
  auto reference = WordCount(docs, false, 1, 1, nullptr);
  for (int mw : {2, 4}) {
    for (int rw : {1, 3}) {
      EXPECT_EQ(WordCount(docs, false, mw, rw, nullptr), reference)
          << mw << "x" << rw;
      EXPECT_EQ(WordCount(docs, true, mw, rw, nullptr), reference)
          << mw << "x" << rw << " combined";
    }
  }
}

TEST(DataflowTest, CombinerReducesShuffleVolume) {
  std::vector<std::string> docs(50, "x x x x x x x x");
  DataflowMetrics without;
  DataflowMetrics with;
  WordCount(docs, false, 1, 1, &without);
  WordCount(docs, true, 1, 1, &with);
  EXPECT_LT(with.shuffle_records, without.shuffle_records);
  EXPECT_LT(with.shuffle_bytes, without.shuffle_bytes);
  // Pre-combine record counts are identical.
  EXPECT_EQ(with.map_output_records, without.map_output_records);
}

TEST(DataflowTest, MetricsCountRecords) {
  std::vector<std::string> docs = {"a b", "c"};
  DataflowMetrics metrics;
  WordCount(docs, false, 1, 1, &metrics);
  EXPECT_EQ(metrics.map_output_records, 3u);
  EXPECT_EQ(metrics.shuffle_records, 3u);
  EXPECT_GT(metrics.shuffle_bytes, 0u);
  EXPECT_GE(metrics.map_seconds, 0.0);
  EXPECT_GE(metrics.reduce_seconds, 0.0);
}

TEST(DataflowTest, ShuffleBudgetEnforced) {
  std::vector<std::string> docs(100, "aaaaaaaaaa bbbbbbbbbb cccccccccc");
  DataflowOptions options;
  options.shuffle_budget_bytes = 50;
  MapFn map_fn = [&](size_t i, const EmitFn& emit) {
    emit(docs[i], "1");
  };
  ReduceFn reduce_fn = [](int, const std::string&,
                          std::vector<std::string>&) {};
  EXPECT_THROW(RunMapReduce(docs.size(), map_fn, nullptr, reduce_fn, options),
               ShuffleOverflowError);
}

TEST(DataflowTest, BudgetAppliesPostCombine) {
  // 1000 identical keys combine into one record that fits the budget.
  DataflowOptions options;
  options.shuffle_budget_bytes = 100;
  MapFn map_fn = [&](size_t, const EmitFn& emit) {
    std::string one;
    PutVarint(&one, 1);
    for (int i = 0; i < 1000; ++i) emit("key", one);
  };
  std::atomic<uint64_t> total{0};
  ReduceFn reduce_fn = [&](int, const std::string&,
                           std::vector<std::string>& values) {
    for (const auto& v : values) {
      size_t pos = 0;
      uint64_t c = 0;
      GetVarint(v, &pos, &c);
      total += c;
    }
  };
  DataflowMetrics metrics =
      RunMapReduce(1, map_fn, MakeSumCombiner, reduce_fn, options);
  EXPECT_EQ(total.load(), 1000u);
  EXPECT_EQ(metrics.shuffle_records, 1u);
}

TEST(DataflowTest, EachKeyReducedExactlyOnce) {
  std::atomic<int> reduce_calls{0};
  MapFn map_fn = [&](size_t i, const EmitFn& emit) {
    emit("k" + std::to_string(i % 10), "v");
  };
  ReduceFn reduce_fn = [&](int, const std::string&,
                           std::vector<std::string>& values) {
    ++reduce_calls;
    EXPECT_EQ(values.size(), 10u);
  };
  DataflowOptions options;
  options.num_map_workers = 4;
  options.num_reduce_workers = 4;
  RunMapReduce(100, map_fn, nullptr, reduce_fn, options);
  EXPECT_EQ(reduce_calls.load(), 10);
}

TEST(DataflowTest, EmptyInput) {
  MapFn map_fn = [](size_t, const EmitFn&) { FAIL(); };
  ReduceFn reduce_fn = [](int, const std::string&,
                          std::vector<std::string>&) { FAIL(); };
  DataflowMetrics metrics = RunMapReduce(0, map_fn, nullptr, reduce_fn, {});
  EXPECT_EQ(metrics.shuffle_records, 0u);
}

TEST(DataflowTest, SimulatedExecutionProducesSameResults) {
  std::vector<std::string> docs;
  for (int i = 0; i < 100; ++i) {
    docs.push_back("w" + std::to_string(i % 5) + " w" + std::to_string(i % 3));
  }
  auto threads = WordCount(docs, true, 4, 4, nullptr);

  // Same run under cluster simulation.
  std::map<std::string, uint64_t> counts;
  std::mutex mu;
  MapFn map_fn = [&](size_t i, const EmitFn& emit) {
    std::string word;
    std::string one;
    PutVarint(&one, 1);
    for (char c : docs[i] + " ") {
      if (c == ' ') {
        if (!word.empty()) emit(word, one);
        word.clear();
      } else {
        word += c;
      }
    }
  };
  ReduceFn reduce_fn = [&](int, const std::string& key,
                           std::vector<std::string>& values) {
    uint64_t total = 0;
    for (const auto& v : values) {
      size_t pos = 0;
      uint64_t c = 0;
      GetVarint(v, &pos, &c);
      total += c;
    }
    std::lock_guard<std::mutex> lock(mu);
    counts[key] += total;
  };
  DataflowOptions options;
  options.num_map_workers = 4;
  options.num_reduce_workers = 4;
  options.execution = Execution::kSimulated;
  DataflowMetrics metrics =
      RunMapReduce(docs.size(), map_fn, MakeSumCombiner, reduce_fn, options);
  EXPECT_EQ(counts, threads);
  EXPECT_GE(metrics.map_seconds, 0.0);
  EXPECT_GE(metrics.reduce_seconds, 0.0);
}

TEST(DataflowTest, MapExceptionPropagates) {
  MapFn map_fn = [](size_t i, const EmitFn&) {
    if (i == 5) throw std::runtime_error("boom");
  };
  ReduceFn reduce_fn = [](int, const std::string&,
                          std::vector<std::string>&) {};
  DataflowOptions options;
  options.num_map_workers = 3;
  EXPECT_THROW(RunMapReduce(10, map_fn, nullptr, reduce_fn, options),
               std::runtime_error);
}

}  // namespace
}  // namespace dseq
