#include "src/core/grid.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/candidates.h"
#include "src/dict/sequence.h"
#include "src/fst/compiler.h"

namespace dseq {
namespace {

constexpr char kPatternEx[] = ".*(A)[(.^).*]*(b).*";

TEST(GridTest, EmptyForNonMatchingSequence) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  StateGrid grid = StateGrid::Build(db.sequences[2], fst, db.dict, {});
  EXPECT_FALSE(grid.HasAcceptingRun());
  EXPECT_EQ(grid.num_edges(), 0u);
}

TEST(GridTest, LayersMatchSequenceLength) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  StateGrid grid = StateGrid::Build(db.sequences[1], fst, db.dict, {});
  EXPECT_TRUE(grid.HasAcceptingRun());
  EXPECT_EQ(grid.length(), 7u);
}

TEST(GridTest, InitialStateAliveWhenAccepting) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  StateGrid grid = StateGrid::Build(db.sequences[0], fst, db.dict, {});
  EXPECT_TRUE(grid.Alive(0, grid.initial_state()));
}

TEST(GridTest, DeadEndsPruned) {
  SequenceDatabase db = MakeRunningExample();
  // Anchored pattern: on T1 = a1cdcb, taking (a1) at position 1 and then
  // failing later must not leave dead edges.
  Fst fst = CompileFst("(a1)(c)(d)(c)(b)", db.dict);
  StateGrid grid = StateGrid::Build(db.sequences[0], fst, db.dict, {});
  ASSERT_TRUE(grid.HasAcceptingRun());
  // Exactly one run: every layer has exactly one edge.
  for (size_t i = 0; i < grid.length(); ++i) {
    EXPECT_EQ(grid.EdgesAt(i).size(), 1u) << "layer " << i;
  }
}

TEST(GridTest, SigmaPruningDropsInfrequentOutputs) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  // At sigma=2, items e and a2 are infrequent. T4 = a2 d b only generates
  // candidates containing a2, so the pruned grid must reject.
  GridOptions options;
  options.prune_sigma = 2;
  StateGrid grid = StateGrid::Build(db.sequences[3], fst, db.dict, options);
  EXPECT_FALSE(grid.HasAcceptingRun());
}

TEST(GridTest, SigmaPruningKeepsEpsilonEdges) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  GridOptions options;
  options.prune_sigma = 2;
  // T2 contains infrequent e's, but they are consumed by ε-output dots.
  StateGrid grid = StateGrid::Build(db.sequences[1], fst, db.dict, options);
  EXPECT_TRUE(grid.HasAcceptingRun());
  std::vector<Sequence> candidates;
  EXPECT_TRUE(EnumerateCandidates(grid, 1000, &candidates));
  EXPECT_EQ(candidates.size(), 3u);  // a1a1b, a1Ab, a1b
}

TEST(GridTest, ForwardActiveSupersetOfAlive) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  StateGrid grid = StateGrid::Build(db.sequences[0], fst, db.dict, {});
  for (size_t i = 0; i <= grid.length(); ++i) {
    for (StateId q = 0; q < grid.num_states(); ++q) {
      if (grid.Alive(i, q)) EXPECT_TRUE(grid.ForwardActive(i, q));
    }
  }
}

TEST(GridTest, EpsAcceptTable) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  StateGrid grid = StateGrid::Build(db.sequences[0], fst, db.dict, {});
  std::vector<uint8_t> eps = grid.ComputeEpsAcceptTable();
  size_t ns = grid.num_states();
  // Final coordinates are ε-accepting by definition.
  for (StateId q = 0; q < ns; ++q) {
    if (grid.Alive(grid.length(), q) && grid.IsFinalState(q)) {
      EXPECT_TRUE(eps[grid.length() * ns + q]);
    }
  }
  // The initial coordinate is not ε-accepting: producing a1...b requires
  // output.
  EXPECT_FALSE(eps[0 * ns + grid.initial_state()]);
}

TEST(GridTest, EmptySequence) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(".*", db.dict);
  StateGrid grid = StateGrid::Build({}, fst, db.dict, {});
  EXPECT_TRUE(grid.HasAcceptingRun());
  EXPECT_EQ(grid.length(), 0u);
}

TEST(GridTest, EdgesSortedByFromState) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  StateGrid grid = StateGrid::Build(db.sequences[1], fst, db.dict, {});
  for (size_t i = 0; i < grid.length(); ++i) {
    const auto& edges = grid.EdgesAt(i);
    for (size_t e = 1; e < edges.size(); ++e) {
      EXPECT_LE(edges[e - 1].from, edges[e].from);
    }
  }
}

TEST(GridTest, OutputSetsSortedAscending) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  StateGrid grid = StateGrid::Build(db.sequences[1], fst, db.dict, {});
  for (size_t i = 0; i < grid.length(); ++i) {
    for (const auto& edge : grid.EdgesAt(i)) {
      EXPECT_TRUE(std::is_sorted(edge.out.begin(), edge.out.end()));
    }
  }
}

TEST(CandidatesTest, BudgetRespected) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  StateGrid grid = StateGrid::Build(db.sequences[1], fst, db.dict, {});
  std::vector<Sequence> candidates;
  EXPECT_FALSE(EnumerateCandidates(grid, 3, &candidates));
}

TEST(CandidatesTest, RunCounting) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  // T5 = a1 a1 b has exactly 3 accepting runs (paper Sec. IV).
  StateGrid grid = StateGrid::Build(db.sequences[4], fst, db.dict, {});
  EXPECT_EQ(CountAcceptingRuns(grid, 1000), 3u);
}

TEST(CandidatesTest, RunEnumerationYieldsFullRuns) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  StateGrid grid = StateGrid::Build(db.sequences[4], fst, db.dict, {});
  ForEachAcceptingRun(grid, 1000,
                      [&](const std::vector<const StateGrid::Edge*>& run) {
                        EXPECT_EQ(run.size(), grid.length());
                      });
}

TEST(CandidatesTest, RunBudgetStopsEnumeration) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  StateGrid grid = StateGrid::Build(db.sequences[4], fst, db.dict, {});
  uint64_t seen = 0;
  bool complete = ForEachAcceptingRun(
      grid, 2, [&](const std::vector<const StateGrid::Edge*>&) { ++seen; });
  EXPECT_FALSE(complete);
  EXPECT_EQ(seen, 2u);
}

}  // namespace
}  // namespace dseq
