// Out-of-core execution tests: the spill primitives (MemoryBudget,
// SpillFile/SpillWriter/SpillRunReader, ExternalMergePlan), the engine's
// budgeted spill path, the external-merge combiners, RAII temp-file
// hygiene on failure paths, actionable overflow errors, and the acceptance
// cross-check — a D-SEQ run budgeted below its shuffle volume must spill
// and still mine byte-identical patterns.
//
// CI reruns this suite (`ctest -L spill`) with DSEQ_SPILL_TEST_BUDGET
// lowered to squeeze the budget even harder than the defaults here.
#include <dirent.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "src/dataflow/chained.h"
#include "src/dataflow/engine.h"
#include "src/dataflow/shuffle_buffer.h"
#include "src/dist/dseq_miner.h"
#include "src/spill/external_merger.h"
#include "src/spill/memory_budget.h"
#include "src/spill/spill_file.h"
#include "src/util/varint.h"
#include "tests/test_util.h"

namespace dseq {
namespace {

using testing::CountDirEntries;
// A fresh spill directory, removed (and asserted empty — the RAII hygiene
// contract) on destruction.
using ScopedSpillDir = testing::ScopedTempDir;

// The artificially small budget of the engine-level tests; CI's `-L spill`
// job lowers it via DSEQ_SPILL_TEST_BUDGET to force even more spill runs.
using testing::SpillTestBudget;

// --- MemoryBudget -----------------------------------------------------------

TEST(MemoryBudgetTest, TryChargeIsAllOrNothing) {
  MemoryBudget budget(100);
  EXPECT_TRUE(budget.enabled());
  EXPECT_TRUE(budget.TryCharge(60));
  EXPECT_EQ(budget.used_bytes(), 60u);
  EXPECT_FALSE(budget.TryCharge(41));  // would exceed: charges nothing
  EXPECT_EQ(budget.used_bytes(), 60u);
  EXPECT_TRUE(budget.TryCharge(40));
  EXPECT_EQ(budget.used_bytes(), 100u);
  budget.Release(50);
  EXPECT_EQ(budget.used_bytes(), 50u);
  budget.ForceCharge(200);  // bounded overshoot is allowed
  EXPECT_EQ(budget.used_bytes(), 250u);
}

TEST(MemoryBudgetTest, ZeroBudgetIsUnlimited) {
  MemoryBudget budget(0);
  EXPECT_FALSE(budget.enabled());
  EXPECT_TRUE(budget.TryCharge(1'000'000'000));
  EXPECT_EQ(budget.used_bytes(), 0u);  // unlimited budgets track nothing
}

// --- SpillFile / SpillWriter / SpillRunReader -------------------------------

TEST(SpillFileTest, RemovesBackingFileOnDestruction) {
  ScopedSpillDir dir;
  std::string path;
  {
    SpillFile file = SpillFile::Create(dir.path());
    path = file.path();
    file.Append("abc", 3);
    file.FinishWrite();
    EXPECT_EQ(CountDirEntries(dir.path()), 1u);
  }
  EXPECT_EQ(CountDirEntries(dir.path()), 0u);
  EXPECT_NE(access(path.c_str(), F_OK), 0);
}

TEST(SpillFileTest, RemovesBackingFileOnExceptionUnwind) {
  ScopedSpillDir dir;
  try {
    SpillFile file = SpillFile::Create(dir.path());
    SpillWriter writer(&file, /*compress=*/false, nullptr);
    writer.Append("key", "value");
    throw std::runtime_error("mid-spill failure");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(CountDirEntries(dir.path()), 0u);
}

TEST(SpillFileTest, CreateInMissingDirectoryThrows) {
  EXPECT_THROW(SpillFile::Create("/nonexistent/dseq/spill/dir"),
               std::runtime_error);
}

class SpillRoundTripTest : public ::testing::TestWithParam<bool> {};

TEST_P(SpillRoundTripTest, WriterReaderRoundTrip) {
  const bool compress = GetParam();
  ScopedSpillDir dir;
  // Binary keys/values (NULs, high bytes), empty values, a record larger
  // than the 64 KiB block target (forcing an oversized block), and enough
  // volume to span several blocks.
  std::vector<std::pair<std::string, std::string>> records;
  records.emplace_back("", "empty key");
  records.emplace_back(std::string("\x00\x01\xff", 3), "");
  records.emplace_back("big", std::string(100'000, 'x'));
  std::mt19937_64 rng(7);
  for (int i = 0; i < 5'000; ++i) {
    records.emplace_back("key" + std::to_string(i),
                         std::string(rng() % 64, static_cast<char>(rng())));
  }

  SpillStats stats;
  SpillFile file = SpillFile::Create(dir.path());
  {
    SpillWriter writer(&file, compress, &stats);
    for (const auto& [key, value] : records) writer.Append(key, value);
    EXPECT_GT(writer.Finish(), 0u);
  }
  EXPECT_EQ(stats.files.load(), 1u);
  EXPECT_EQ(stats.bytes_written.load(), file.stored_bytes());

  // Two sequential read passes must both see every record (readers open
  // the file independently).
  for (int pass = 0; pass < 2; ++pass) {
    SpillRunReader reader(file, compress);
    std::string_view key;
    std::string_view value;
    for (const auto& [want_key, want_value] : records) {
      ASSERT_TRUE(reader.Next(&key, &value));
      EXPECT_EQ(key, want_key);
      EXPECT_EQ(value, want_value);
    }
    EXPECT_FALSE(reader.Next(&key, &value));
  }
}

INSTANTIATE_TEST_SUITE_P(RawAndCompressed, SpillRoundTripTest,
                         ::testing::Bool());

TEST(SpillRunReaderTest, TruncatedRunThrows) {
  ScopedSpillDir dir;
  SpillFile file = SpillFile::Create(dir.path());
  {
    SpillWriter writer(&file, /*compress=*/false, nullptr);
    writer.Append("key", std::string(1000, 'v'));
    writer.Finish();
  }
  // Chop the tail off the finished run in place: the reader must fail
  // loudly, not return a short record.
  ASSERT_GT(file.stored_bytes(), 100u);
  ASSERT_EQ(truncate(file.path().c_str(),
                     static_cast<off_t>(file.stored_bytes() - 100)),
            0);
  SpillRunReader reader(file, /*compressed=*/false);
  std::string_view key;
  std::string_view value;
  EXPECT_THROW(reader.Next(&key, &value), std::runtime_error);
}

// --- ExternalMergePlan ------------------------------------------------------

// Writes `entries` (sorted by the caller) as one run in `dir`.
SpillFile WriteRun(
    const std::string& dir, bool compress, SpillStats* stats,
    const std::vector<std::pair<std::string, std::string>>& entries) {
  SpillFile file = SpillFile::Create(dir);
  SpillWriter writer(&file, compress, stats);
  for (const auto& [key, value] : entries) writer.Append(key, value);
  writer.Finish();
  return file;
}

TEST(ExternalMergerTest, StableMergeMatchesReference) {
  ScopedSpillDir dir;
  SpillStats stats;
  // Three runs plus an in-memory tail, with overlapping keys. Values are
  // tagged by source so stability (source order within a key) is checkable.
  ExternalMergePlan plan(dir.path(), /*compress=*/false, /*max_fan_in=*/16,
                         &stats);
  plan.AddRun(WriteRun(dir.path(), false, &stats,
                       {{"a", "r0-1"}, {"a", "r0-2"}, {"c", "r0-3"}}));
  plan.AddRun(WriteRun(dir.path(), false, &stats, {{"a", "r1-1"}, {"b", "r1-2"}}));
  plan.AddRun(WriteRun(dir.path(), false, &stats, {}));  // empty run
  std::vector<std::pair<std::string_view, std::string_view>> tail = {
      {"a", "m-1"}, {"d", "m-2"}};
  plan.AddSource(std::make_unique<InMemorySource>(std::move(tail)));

  std::vector<std::pair<std::string, std::vector<std::string>>> groups;
  uint64_t records =
      plan.MergeGroups([&](std::string_view key,
                           std::vector<std::string_view>& values) {
        groups.emplace_back(std::string(key),
                            std::vector<std::string>(values.begin(),
                                                     values.end()));
      });
  EXPECT_EQ(records, 7u);
  ASSERT_EQ(groups.size(), 4u);
  EXPECT_EQ(groups[0].first, "a");
  EXPECT_EQ(groups[0].second,
            (std::vector<std::string>{"r0-1", "r0-2", "r1-1", "m-1"}));
  EXPECT_EQ(groups[1].first, "b");
  EXPECT_EQ(groups[2].first, "c");
  EXPECT_EQ(groups[3].first, "d");
  EXPECT_EQ(groups[3].second, (std::vector<std::string>{"m-2"}));
  EXPECT_EQ(stats.merge_passes.load(), 1u);  // single final pass
}

TEST(ExternalMergerTest, FanInCollapseAddsPassesAndPreservesOrder) {
  ScopedSpillDir dir;
  SpillStats stats;
  // 9 single-key runs with fan-in 2: the collapse must merge prefixes until
  // 2 sources remain, then run the final pass — at least 8 passes total —
  // and the values must still arrive in run order.
  ExternalMergePlan plan(dir.path(), /*compress=*/true, /*max_fan_in=*/2,
                         &stats);
  for (int i = 0; i < 9; ++i) {
    plan.AddRun(WriteRun(dir.path(), true, &stats,
                         {{"k", "run" + std::to_string(i)}}));
  }
  std::vector<std::string> values_seen;
  plan.MergeGroups(
      [&](std::string_view key, std::vector<std::string_view>& values) {
        EXPECT_EQ(key, "k");
        for (std::string_view v : values) values_seen.emplace_back(v);
      });
  ASSERT_EQ(values_seen.size(), 9u);
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(values_seen[i], "run" + std::to_string(i));
  }
  EXPECT_GE(stats.merge_passes.load(), 8u);
}

TEST(ExternalMergerTest, MergeBudgetClampsFanInAndChargesReadBuffers) {
  // Each file-backed source holds up to two resident block buffers
  // (~2 * kSpillBlockBytes) while open. A budget smaller than the merge's
  // natural fan-in footprint must clamp the effective fan-in (here to the
  // floor of 2) instead of silently exceeding the budget — trading extra
  // collapse passes for bounded memory — with identical merged output.
  auto merge_all = [](int max_fan_in, MemoryBudget* budget, SpillStats* stats,
                      std::vector<std::pair<std::string, std::string>>* out) {
    ScopedSpillDir dir;
    ExternalMergePlan plan(dir.path(), /*compress=*/false, max_fan_in, stats,
                           budget);
    for (int i = 0; i < 12; ++i) {
      plan.AddRun(WriteRun(dir.path(), false, stats,
                           {{"k" + std::to_string(i % 3),
                             "run" + std::to_string(i)}}));
    }
    plan.MergeGroups(
        [&](std::string_view key, std::vector<std::string_view>& values) {
          for (std::string_view v : values) out->emplace_back(key, v);
        });
  };

  SpillStats unbudgeted_stats;
  std::vector<std::pair<std::string, std::string>> expected;
  merge_all(16, nullptr, &unbudgeted_stats, &expected);
  EXPECT_EQ(unbudgeted_stats.merge_passes.load(), 1u);  // 12 <= fan-in 16

  // 12 sources at ~128KiB each need ~1.5MiB; grant a quarter of one
  // source's footprint, forcing the minimum fan-in of 2.
  MemoryBudget budget(kSpillBlockBytes / 2);
  SpillStats budgeted_stats;
  std::vector<std::pair<std::string, std::string>> merged;
  merge_all(16, &budget, &budgeted_stats, &merged);
  EXPECT_EQ(merged, expected);
  // Fan-in 2 over 12 runs: at least 10 collapse merges before the final
  // pass — strictly more I/O, strictly less memory.
  EXPECT_GE(budgeted_stats.merge_passes.load(), 11u);
  // Every read-buffer charge must have been released with its source.
  EXPECT_EQ(budget.used_bytes(), 0u);
}

// --- Engine out-of-core runs ------------------------------------------------

using Emissions =
    std::vector<std::vector<std::pair<std::string, std::string>>>;

Emissions RandomEmissions(uint64_t seed, size_t num_inputs, size_t num_keys) {
  std::mt19937_64 rng(seed);
  Emissions emissions(num_inputs);
  for (auto& input : emissions) {
    size_t n = rng() % 8;
    for (size_t e = 0; e < n; ++e) {
      input.emplace_back(
          "key" + std::to_string(rng() % num_keys),
          "value" + std::to_string(rng() % 1000) +
              std::string(rng() % 40, static_cast<char>('a' + rng() % 26)));
    }
  }
  return emissions;
}

struct EngineRun {
  std::vector<std::pair<std::string, std::vector<std::string>>> groups;
  DataflowMetrics metrics;
};

EngineRun RunEngine(const Emissions& emissions, const CombinerFactory& factory,
                    int workers, const DataflowOptions& base) {
  MapFn map_fn = [&](size_t i, const EmitFn& emit) {
    for (const auto& [key, value] : emissions[i]) emit(key, value);
  };
  std::vector<std::vector<std::pair<std::string, std::vector<std::string>>>>
      per_worker(workers);
  ReduceFn reduce_fn = [&](int worker, std::string_view key,
                           std::vector<std::string_view>& values) {
    std::vector<std::string> sorted(values.begin(), values.end());
    std::sort(sorted.begin(), sorted.end());
    per_worker[worker].emplace_back(std::string(key), std::move(sorted));
  };
  DataflowOptions options = base;
  options.num_map_workers = workers;
  options.num_reduce_workers = workers;
  EngineRun run;
  run.metrics =
      RunMapReduce(emissions.size(), map_fn, factory, reduce_fn, options);
  for (auto& part : per_worker) {
    run.groups.insert(run.groups.end(),
                      std::make_move_iterator(part.begin()),
                      std::make_move_iterator(part.end()));
  }
  std::sort(run.groups.begin(), run.groups.end());
  return run;
}

class EngineSpillTest : public ::testing::TestWithParam<int> {};

TEST_P(EngineSpillTest, SpilledRunEqualsInMemoryRun) {
  int workers = GetParam();
  Emissions emissions = RandomEmissions(1234, 80, 10);

  EngineRun reference = RunEngine(emissions, nullptr, workers, {});
  ASSERT_GT(reference.metrics.shuffle_bytes, 0u);
  EXPECT_EQ(reference.metrics.spill_files, 0u);
  EXPECT_EQ(reference.metrics.spill_merge_passes, 0u);

  ScopedSpillDir dir;
  DataflowOptions spilled_options;
  spilled_options.memory_budget_bytes = SpillTestBudget(256);
  spilled_options.spill_dir = dir.path();
  spilled_options.spill_merge_fan_in = 3;  // force multi-pass merges
  EngineRun spilled = RunEngine(emissions, nullptr, workers, spilled_options);

  EXPECT_EQ(spilled.groups, reference.groups);
  EXPECT_EQ(spilled.metrics.shuffle_bytes, reference.metrics.shuffle_bytes);
  EXPECT_EQ(spilled.metrics.shuffle_records,
            reference.metrics.shuffle_records);
  EXPECT_EQ(spilled.metrics.map_output_records,
            reference.metrics.map_output_records);
  EXPECT_EQ(spilled.metrics.reducer_bytes, reference.metrics.reducer_bytes);
  EXPECT_GT(spilled.metrics.spill_files, 1u);
  EXPECT_GT(spilled.metrics.spill_bytes_written, 0u);
  EXPECT_GE(spilled.metrics.spill_merge_passes, 1u);
  EXPECT_EQ(ShuffleBufferLiveBytes(), 0u);
  // RAII hygiene: a completed run leaves nothing behind (ScopedSpillDir
  // re-checks on destruction).
  EXPECT_EQ(CountDirEntries(dir.path()), 0u);
}

TEST_P(EngineSpillTest, SpilledCombinersEqualInMemoryCombiners) {
  int workers = GetParam();

  // Sum-combiner pipeline (varint counts). Sized so every worker's shard
  // crosses the combiners' overdraft spill batch (64 records) even at 8
  // workers — smaller shards legitimately ride out the bounded overdraft
  // without touching disk.
  std::mt19937_64 rng(99);
  Emissions sum_emissions(400);
  for (auto& input : sum_emissions) {
    size_t n = rng() % 6;
    for (size_t e = 0; e < n; ++e) {
      std::string value;
      PutVarint(&value, rng() % 50);
      input.emplace_back("key" + std::to_string(rng() % 12),
                         std::move(value));
    }
  }
  // ...and a weighted-value pipeline (varint weight + payload).
  Emissions weighted_emissions(400);
  std::vector<std::string> payloads = {"", "x", "payload",
                                       std::string("\x00\x01\xff", 3)};
  for (auto& input : weighted_emissions) {
    size_t n = rng() % 6;
    for (size_t e = 0; e < n; ++e) {
      std::string value;
      PutVarint(&value, 1 + rng() % 5);
      value += payloads[rng() % payloads.size()];
      input.emplace_back("key" + std::to_string(rng() % 12),
                         std::move(value));
    }
  }

  struct Case {
    const Emissions* emissions;
    CombinerFactory factory;
    const char* name;
  };
  for (const Case& c :
       {Case{&sum_emissions, MakeSumCombiner, "sum"},
        Case{&weighted_emissions, MakeWeightedValueCombiner, "weighted"}}) {
    SCOPED_TRACE(c.name);
    EngineRun reference = RunEngine(*c.emissions, c.factory, workers, {});

    ScopedSpillDir dir;
    DataflowOptions spilled_options;
    // Far below the combiner tables' resident size: every worker is forced
    // into external aggregation.
    spilled_options.memory_budget_bytes = SpillTestBudget(512);
    spilled_options.spill_dir = dir.path();
    EngineRun spilled =
        RunEngine(*c.emissions, c.factory, workers, spilled_options);

    // External aggregation must emit the *fully combined* records: same
    // groups and identical raw shuffle metrics, not just same totals.
    EXPECT_EQ(spilled.groups, reference.groups);
    EXPECT_EQ(spilled.metrics.shuffle_bytes, reference.metrics.shuffle_bytes);
    EXPECT_EQ(spilled.metrics.shuffle_records,
              reference.metrics.shuffle_records);
    EXPECT_EQ(spilled.metrics.map_output_records,
              reference.metrics.map_output_records);
    EXPECT_GT(spilled.metrics.spill_files, 0u);
    EXPECT_GE(spilled.metrics.spill_merge_passes, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, EngineSpillTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(EngineSpillTest, BudgetWithoutSpillDirThrowsActionableError) {
  Emissions emissions = RandomEmissions(555, 40, 6);
  MapFn map_fn = [&](size_t i, const EmitFn& emit) {
    for (const auto& [key, value] : emissions[i]) emit(key, value);
  };
  ReduceFn reduce_fn = [](int, std::string_view,
                          std::vector<std::string_view>&) {};
  DataflowOptions options;
  options.num_map_workers = 2;
  options.num_reduce_workers = 2;
  options.memory_budget_bytes = 64;
  options.round_index = 3;
  try {
    RunMapReduce(emissions.size(), map_fn, nullptr, reduce_fn, options);
    FAIL() << "expected ShuffleOverflowError";
  } catch (const ShuffleOverflowError& e) {
    std::string message = e.what();
    EXPECT_NE(message.find("round 3"), std::string::npos) << message;
    EXPECT_NE(message.find("reducer"), std::string::npos) << message;
    EXPECT_NE(message.find("budget 64 bytes"), std::string::npos) << message;
    EXPECT_NE(message.find("attempted"), std::string::npos) << message;
    EXPECT_NE(message.find("spill_dir"), std::string::npos) << message;
  }
  EXPECT_EQ(ShuffleBufferLiveBytes(), 0u);

  // The combiner path reports its own actionable context.
  options.round_index = 0;
  MapFn count_map = [](size_t input, const EmitFn& emit) {
    // Map workers run this concurrently, so the RNG must be per-call (a
    // shared engine captured by reference is a data race), seeded by the
    // input index to stay deterministic.
    std::mt19937_64 rng(1 + input);
    std::string one;
    PutVarint(&one, 1);
    for (int i = 0; i < 50; ++i) {
      emit("key" + std::to_string(rng() % 40), one);
    }
  };
  try {
    RunMapReduce(emissions.size(), count_map, MakeSumCombiner, reduce_fn,
                 options);
    FAIL() << "expected ShuffleOverflowError";
  } catch (const ShuffleOverflowError& e) {
    std::string message = e.what();
    EXPECT_NE(message.find("combiner"), std::string::npos) << message;
    EXPECT_NE(message.find("round 0"), std::string::npos) << message;
    EXPECT_NE(message.find("map worker"), std::string::npos) << message;
    EXPECT_NE(message.find("spill_dir"), std::string::npos) << message;
  }
  EXPECT_EQ(ShuffleBufferLiveBytes(), 0u);
}

TEST(EngineSpillTest, ShuffleVolumeErrorNamesRoundAndReducer) {
  Emissions emissions = RandomEmissions(777, 40, 6);
  MapFn map_fn = [&](size_t i, const EmitFn& emit) {
    for (const auto& [key, value] : emissions[i]) emit(key, value);
  };
  ReduceFn reduce_fn = [](int, std::string_view,
                          std::vector<std::string_view>&) {};
  DataflowOptions options;
  options.shuffle_budget_bytes = 32;
  options.round_index = 1;
  try {
    RunMapReduce(emissions.size(), map_fn, nullptr, reduce_fn, options);
    FAIL() << "expected ShuffleOverflowError";
  } catch (const ShuffleOverflowError& e) {
    std::string message = e.what();
    EXPECT_NE(message.find("round 1"), std::string::npos) << message;
    EXPECT_NE(message.find("reducer"), std::string::npos) << message;
    EXPECT_NE(message.find("budget 32 bytes"), std::string::npos) << message;
    EXPECT_NE(message.find("attempted"), std::string::npos) << message;
  }
}

TEST(EngineSpillTest, MidRoundFailureLeavesSpillDirEmpty) {
  Emissions emissions = RandomEmissions(321, 80, 8);
  MapFn map_fn = [&](size_t i, const EmitFn& emit) {
    for (const auto& [key, value] : emissions[i]) emit(key, value);
  };
  // The reduce phase dies *after* the map phase spilled: every spill file
  // must be unlinked on the unwind and no shuffle bytes may stay resident.
  ReduceFn exploding_reduce = [](int, std::string_view,
                                 std::vector<std::string_view>&) {
    throw std::runtime_error("reduce failure after spilling");
  };
  ScopedSpillDir dir;
  DataflowOptions options;
  options.num_map_workers = 2;
  options.num_reduce_workers = 2;
  options.memory_budget_bytes = 256;
  options.spill_dir = dir.path();
  EXPECT_THROW(RunMapReduce(emissions.size(), map_fn, nullptr,
                            exploding_reduce, options),
               std::runtime_error);
  EXPECT_EQ(CountDirEntries(dir.path()), 0u);
  EXPECT_EQ(ShuffleBufferLiveBytes(), 0u);

  // Same hygiene when a *chained* job trips its cumulative shuffle budget
  // mid-round while spilling is enabled.
  ChainedDataflowOptions chained_options;
  chained_options.num_map_workers = 2;
  chained_options.num_reduce_workers = 2;
  chained_options.memory_budget_bytes = 256;
  chained_options.spill_dir = dir.path();
  chained_options.cumulative_shuffle_budget_bytes = 1;  // trips immediately
  DataflowJob job(chained_options);
  ChainReduceFn chain_reduce = [](int, std::string_view,
                                  std::vector<std::string_view>&,
                                  const EmitFn&) {};
  EXPECT_THROW(job.RunRound(emissions.size(), map_fn, nullptr, chain_reduce),
               ShuffleOverflowError);
  EXPECT_EQ(CountDirEntries(dir.path()), 0u);
  EXPECT_EQ(ShuffleBufferLiveBytes(), 0u);
}

TEST(ChainedSpillTest, PerRoundSpillMetricsAggregate) {
  ScopedSpillDir dir;
  ChainedDataflowOptions options;
  options.num_map_workers = 2;
  options.num_reduce_workers = 2;
  options.memory_budget_bytes = SpillTestBudget(256);
  options.spill_dir = dir.path();
  DataflowJob job(options);

  Emissions emissions = RandomEmissions(42, 60, 8);
  MapFn map_fn = [&](size_t i, const EmitFn& emit) {
    for (const auto& [key, value] : emissions[i]) emit(key, value);
  };
  ChainReduceFn echo = [](int, std::string_view key,
                          std::vector<std::string_view>& values,
                          const EmitFn& emit) {
    for (std::string_view v : values) emit(key, v);
  };
  job.RunRound(emissions.size(), map_fn, nullptr, echo);
  RecordMapFn rekey = [](size_t, const Record& record, const EmitFn& emit) {
    emit(record.key + "!", record.value);
  };
  job.RunChainedRound(rekey, nullptr, echo);

  ASSERT_EQ(job.num_rounds(), 2u);
  uint64_t files = 0;
  for (const DataflowMetrics& m : job.round_metrics()) {
    EXPECT_GT(m.spill_files, 0u);
    EXPECT_GE(m.spill_merge_passes, 1u);
    files += m.spill_files;
  }
  DataflowMetrics aggregate = job.aggregate_metrics();
  EXPECT_EQ(aggregate.spill_files, files);
  EXPECT_GE(aggregate.spill_merge_passes, 2u);
  EXPECT_GT(aggregate.spill_bytes_written, 0u);
  EXPECT_EQ(CountDirEntries(dir.path()), 0u);
}

// --- Acceptance cross-check: budgeted D-SEQ mining --------------------------

TEST(SpillMiningTest, BudgetedDSeqIsByteIdenticalToInMemoryAndBruteForce) {
  SequenceDatabase db = testing::RandomDatabase(8100, 6, 80, 8);
  Fst fst = CompileFst(".*(.^).*", db.dict);
  MiningResult brute = testing::BruteForceMine(db.sequences, fst, db.dict, 2);

  testing::ForEachWorkerCount([&](int workers) {
    DSeqOptions options;
    options.sigma = 2;
    options.num_map_workers = workers;
    options.num_reduce_workers = workers;
    DistributedResult in_memory = MineDSeq(db.sequences, fst, db.dict, options);
    ASSERT_GT(in_memory.metrics.shuffle_bytes, 0u);
    EXPECT_EQ(in_memory.metrics.spill_files, 0u);

    // Budget well below the round's total shuffle volume: the run must
    // complete by spilling — and mine the exact same patterns.
    ScopedSpillDir dir;
    DSeqOptions spill_options = options;
    spill_options.memory_budget_bytes =
        std::max<uint64_t>(in_memory.metrics.shuffle_bytes / 4, 64);
    spill_options.spill_dir = dir.path();
    spill_options.spill_merge_fan_in = 4;
    DistributedResult spilled =
        MineDSeq(db.sequences, fst, db.dict, spill_options);

    EXPECT_EQ(spilled.patterns, in_memory.patterns);
    EXPECT_EQ(spilled.patterns, brute);
    EXPECT_EQ(spilled.metrics.shuffle_bytes, in_memory.metrics.shuffle_bytes);
    EXPECT_GE(spilled.metrics.spill_files, 1u);
    EXPECT_GE(spilled.metrics.spill_merge_passes, 1u);
    EXPECT_EQ(CountDirEntries(dir.path()), 0u);
    EXPECT_EQ(ShuffleBufferLiveBytes(), 0u);

    // The D-SEQ aggregation extension runs the weighted-value combiner
    // through its external-aggregation path under the same budget. At high
    // worker counts each shard's add count can stay within the combiners'
    // bounded overdraft (legitimately spill-free), so the spill-count
    // assertion applies to the fat-shard configurations.
    DSeqOptions aggregate_options = spill_options;
    aggregate_options.aggregate_sequences = true;
    DistributedResult aggregated =
        MineDSeq(db.sequences, fst, db.dict, aggregate_options);
    EXPECT_EQ(aggregated.patterns, brute);
    if (workers <= 2) EXPECT_GE(aggregated.metrics.spill_files, 1u);
  });
}

TEST(SpillMiningTest, BudgetedRecountChainSpillsPerRound) {
  SequenceDatabase db = testing::RandomDatabase(8200, 6, 60, 8);
  Fst fst = CompileFst(".*(i0|i1|i2).*", db.dict);

  DSeqRecountOptions options;
  options.sigma = 2;
  options.num_map_workers = 2;
  options.num_reduce_workers = 2;
  ChainedDistributedResult in_memory =
      MineDSeqRecount(db.sequences, fst, db.dict, options);

  ScopedSpillDir dir;
  DSeqRecountOptions spill_options = options;
  spill_options.memory_budget_bytes =
      std::max<uint64_t>(in_memory.aggregate.shuffle_bytes / 8, 64);
  spill_options.spill_dir = dir.path();
  ChainedDistributedResult spilled =
      MineDSeqRecount(db.sequences, fst, db.dict, spill_options);

  EXPECT_EQ(spilled.patterns, in_memory.patterns);
  ASSERT_EQ(spilled.round_metrics.size(), in_memory.round_metrics.size());
  for (size_t r = 0; r < spilled.round_metrics.size(); ++r) {
    EXPECT_EQ(spilled.round_metrics[r].shuffle_bytes,
              in_memory.round_metrics[r].shuffle_bytes)
        << "round " << r;
  }
  EXPECT_GE(spilled.aggregate.spill_files, 1u);
  EXPECT_GE(spilled.aggregate.spill_merge_passes, 1u);
  EXPECT_EQ(CountDirEntries(dir.path()), 0u);
}

}  // namespace
}  // namespace dseq
