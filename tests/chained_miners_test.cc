// Cross-checks of the iterative (multi-round) workloads against their
// single-round counterparts: k-round chained PrefixSpan must be
// byte-identical to the collapsed src/baselines/prefix_span oracle, and the
// two-round frequency-recount drivers must reproduce MineNaive/MineDSeq
// exactly when the recount is unsampled.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "src/baselines/prefix_span.h"
#include "src/dict/sequence.h"
#include "src/dist/dseq_miner.h"
#include "src/dist/naive.h"
#include "src/fst/compiler.h"
#include "tests/test_util.h"

namespace dseq {
namespace {

TEST(ChainedPrefixSpanTest, MatchesOracleOnRandomizedInputs) {
  for (uint64_t seed : {1, 2, 3, 4}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    SequenceDatabase db = testing::RandomDatabase(seed + 4400, 8, 60, 9);
    for (uint64_t sigma : {1, 2, 4}) {
      for (uint32_t lambda : {1, 2, 3, 5}) {
        SCOPED_TRACE("sigma=" + std::to_string(sigma) +
                     " lambda=" + std::to_string(lambda));
        PrefixSpanOptions oracle_options;
        oracle_options.sigma = sigma;
        oracle_options.lambda = lambda;
        MiningResult expected =
            MinePrefixSpan(db.sequences, db.dict, oracle_options).patterns;

        testing::ForEachWorkerCount(
            [&](int workers) {
              PrefixSpanOptions options;
              options.sigma = sigma;
              options.lambda = lambda;
              options.num_map_workers = workers;
              options.num_reduce_workers = workers;
              ChainedDistributedResult chained =
                  MineChainedPrefixSpan(db.sequences, db.dict, options);
              EXPECT_EQ(chained.patterns, expected);
              // One shuffle round per grown prefix length, stopping early
              // once nothing survives.
              EXPECT_GE(chained.num_rounds(), 1u);
              EXPECT_LE(chained.num_rounds(), lambda);
              uint64_t total = 0;
              for (const DataflowMetrics& m : chained.round_metrics) {
                total += m.shuffle_bytes;
              }
              EXPECT_EQ(chained.aggregate.shuffle_bytes, total);
            },
            {1, 2, 4});
      }
    }
  }
}

TEST(ChainedPrefixSpanTest, GrowsOneRoundPerPrefixLength) {
  // "a b c" x3 supports the length-3 pattern a b c at sigma 3: with lambda 3
  // the chain must take all three rounds, each with a non-empty shuffle.
  SequenceDatabase db;
  DictionaryBuilder builder;
  builder.AddItem("a");
  builder.AddItem("b");
  builder.AddItem("c");
  db.dict = builder.Build();
  for (int i = 0; i < 3; ++i) db.sequences.push_back({1, 2, 3});
  db.Recode();

  PrefixSpanOptions options;
  options.sigma = 3;
  options.lambda = 3;
  ChainedDistributedResult result =
      MineChainedPrefixSpan(db.sequences, db.dict, options);
  ASSERT_EQ(result.num_rounds(), 3u);
  for (const DataflowMetrics& m : result.round_metrics) {
    EXPECT_GT(m.shuffle_records, 0u);
    EXPECT_GT(m.shuffle_bytes, 0u);
  }
  // 3 singletons + 2 pairs (ab, bc... plus ac) + 1 triple: a,b,c,ab,ac,bc,abc.
  EXPECT_EQ(result.patterns.size(), 7u);
  // Later rounds ship strictly shrinking projected databases here.
  EXPECT_GT(result.round_metrics[0].shuffle_bytes,
            result.round_metrics[2].shuffle_bytes);
}

TEST(ChainedPrefixSpanTest, LambdaZeroYieldsNothingInBothVariants) {
  // A length bound of 0 admits no pattern; neither entry point may mine
  // (or underflow the recursion depth).
  SequenceDatabase db = testing::RandomDatabase(4450, 6, 20, 6);
  PrefixSpanOptions options;
  options.sigma = 1;
  options.lambda = 0;
  EXPECT_TRUE(MinePrefixSpan(db.sequences, db.dict, options).patterns.empty());
  ChainedDistributedResult chained =
      MineChainedPrefixSpan(db.sequences, db.dict, options);
  EXPECT_TRUE(chained.patterns.empty());
  EXPECT_EQ(chained.num_rounds(), 0u);
}

TEST(ChainedPrefixSpanTest, RespectsCumulativeBudget) {
  SequenceDatabase db = testing::RandomDatabase(4500, 6, 40, 8);
  PrefixSpanOptions options;
  options.sigma = 1;
  options.lambda = 4;
  ChainedDistributedResult free_run =
      MineChainedPrefixSpan(db.sequences, db.dict, options);
  ASSERT_GT(free_run.num_rounds(), 1u);

  options.cumulative_shuffle_budget_bytes =
      free_run.aggregate.shuffle_bytes - 1;
  EXPECT_THROW(MineChainedPrefixSpan(db.sequences, db.dict, options),
               ShuffleOverflowError);
}

TEST(RecountFrequenciesTest, ExactRecountMatchesDictionary) {
  SequenceDatabase db = testing::RandomDatabase(4600, 7, 50, 8);
  DataflowJob job(ChainedDataflowOptions{});
  Dictionary recounted = RecountFrequencies(job, db.sequences, db.dict);
  ASSERT_EQ(recounted.size(), db.dict.size());
  for (ItemId w = 1; w <= db.dict.size(); ++w) {
    EXPECT_EQ(recounted.DocFrequency(w), db.dict.DocFrequency(w))
        << db.dict.Name(w);
  }
  EXPECT_EQ(job.num_rounds(), 1u);
  EXPECT_GT(job.round_metrics()[0].shuffle_bytes, 0u);
  // The combiner pre-aggregates the (item, 1) records per map worker.
  EXPECT_LE(job.round_metrics()[0].shuffle_records,
            job.round_metrics()[0].map_output_records);
}

TEST(RecountFrequenciesTest, SampledRecountScalesUp) {
  // Two identical sequences: a 1-in-2 systematic sample sees one of them and
  // scales the counts back up to the exact values.
  SequenceDatabase db;
  DictionaryBuilder builder;
  builder.AddItem("a");
  builder.AddItem("b");
  db.dict = builder.Build();
  db.sequences.push_back({1, 2});
  db.sequences.push_back({1, 2});
  db.Recode();

  DataflowJob job(ChainedDataflowOptions{});
  Dictionary recounted =
      RecountFrequencies(job, db.sequences, db.dict, /*sample_every=*/2);
  for (ItemId w = 1; w <= db.dict.size(); ++w) {
    EXPECT_EQ(recounted.DocFrequency(w), db.dict.DocFrequency(w));
  }
}

TEST(RecountFrequenciesTest, SampledRecountScalesByTrueRatio) {
  // 5 identical sequences, 1-in-4 systematic sample: indices 0 and 4 are
  // counted, so the scale factor is 5/2 — not sample_every (which would
  // report 8 for an item present in all 5 sequences).
  SequenceDatabase db;
  DictionaryBuilder builder;
  builder.AddItem("a");
  db.dict = builder.Build();
  for (int i = 0; i < 5; ++i) db.sequences.push_back({1});
  db.Recode();

  DataflowJob job(ChainedDataflowOptions{});
  Dictionary recounted =
      RecountFrequencies(job, db.sequences, db.dict, /*sample_every=*/4);
  EXPECT_EQ(recounted.DocFrequency(1), 5u);
}

class RecountMinerTest
    : public ::testing::TestWithParam<std::tuple<int, std::string>> {};

TEST_P(RecountMinerTest, ExactRecountReproducesSingleRoundMiners) {
  auto [seed, pattern] = GetParam();
  SequenceDatabase db = testing::RandomDatabase(seed + 4700, 7, 50, 8);
  Fst fst = CompileFst(pattern, db.dict);
  for (uint64_t sigma : {1, 3}) {
    SCOPED_TRACE("sigma=" + std::to_string(sigma));
    testing::ForEachWorkerCount(
        [&](int workers) {
          for (bool semi : {false, true}) {
            NaiveRecountOptions naive;
            naive.sigma = sigma;
            naive.semi_naive = semi;
            naive.num_map_workers = workers;
            naive.num_reduce_workers = workers;
            MiningResult expected =
                MineNaive(db.sequences, fst, db.dict, naive).patterns;
            ChainedDistributedResult chained =
                MineNaiveRecount(db.sequences, fst, db.dict, naive);
            EXPECT_EQ(chained.patterns, expected)
                << (semi ? "SEMI-NAIVE" : "NAIVE");
            EXPECT_EQ(chained.num_rounds(), 2u);
          }

          DSeqRecountOptions dseq;
          dseq.sigma = sigma;
          dseq.num_map_workers = workers;
          dseq.num_reduce_workers = workers;
          MiningResult expected =
              MineDSeq(db.sequences, fst, db.dict, dseq).patterns;
          ChainedDistributedResult chained =
              MineDSeqRecount(db.sequences, fst, db.dict, dseq);
          EXPECT_EQ(chained.patterns, expected) << "D-SEQ";
          EXPECT_EQ(chained.num_rounds(), 2u);
          EXPECT_EQ(chained.aggregate.shuffle_bytes,
                    chained.round_metrics[0].shuffle_bytes +
                        chained.round_metrics[1].shuffle_bytes);
        },
        {1, 2, 4});
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomizedRecount, RecountMinerTest,
    ::testing::Combine(::testing::Values(1, 2),
                       ::testing::Values(".*(i0)[(.^).*]*(i1).*",
                                         ".*(.)[.*(.)]{0,2}.*",
                                         ".*(i0^=)[.*(i1^=)]{0,2}.*")));

TEST(RecountMinerTest, RoundTwoIsServedFromTheRoundOneCache) {
  // The recount drivers read the database once from backing storage (round
  // 1) and serve round 2 entirely from the cross-round cache.
  SequenceDatabase db = testing::RandomDatabase(4900, 7, 40, 8);
  Fst fst = CompileFst(".*(.)[.*(.)]{0,2}.*", db.dict);
  const uint64_t n = db.sequences.size();

  DSeqRecountOptions dseq;
  dseq.sigma = 2;
  dseq.num_map_workers = 2;
  dseq.num_reduce_workers = 2;
  ChainedDistributedResult exact =
      MineDSeqRecount(db.sequences, fst, db.dict, dseq);
  EXPECT_EQ(exact.input_storage_reads, n);
  EXPECT_EQ(exact.input_cache_hits, n);

  NaiveRecountOptions naive;
  naive.sigma = 2;
  ChainedDistributedResult naive_run =
      MineNaiveRecount(db.sequences, fst, db.dict, naive);
  EXPECT_EQ(naive_run.input_storage_reads, n);
  EXPECT_EQ(naive_run.input_cache_hits, n);

  // Sampling: round 1 reads only the sampled sequences; round 2 hits the
  // cache for those and goes to storage for the rest — every sequence is
  // read from storage exactly once either way.
  DSeqRecountOptions sampled = dseq;
  sampled.recount_sample_every = 3;
  ChainedDistributedResult sampled_run =
      MineDSeqRecount(db.sequences, fst, db.dict, sampled);
  uint64_t num_sampled = (n + 2) / 3;
  EXPECT_EQ(sampled_run.input_storage_reads, n);
  EXPECT_EQ(sampled_run.input_cache_hits, num_sampled);

  // Single-round miners have no cache.
  DistributedResult single = MineDSeq(db.sequences, fst, db.dict, dseq);
  EXPECT_EQ(MineNaive(db.sequences, fst, db.dict, naive).patterns,
            naive_run.patterns);
  EXPECT_EQ(single.patterns, exact.patterns);
}

TEST(RecountMinerTest, CompressionLeavesRecountResultsUnchanged) {
  SequenceDatabase db = testing::RandomDatabase(4950, 7, 40, 8);
  Fst fst = CompileFst(".*(i0)[(.^).*]*(i1).*", db.dict);
  DSeqRecountOptions options;
  options.sigma = 2;
  ChainedDistributedResult plain =
      MineDSeqRecount(db.sequences, fst, db.dict, options);
  options.compress_shuffle = true;
  ChainedDistributedResult compressed =
      MineDSeqRecount(db.sequences, fst, db.dict, options);
  EXPECT_EQ(compressed.patterns, plain.patterns);
  ASSERT_EQ(compressed.num_rounds(), plain.num_rounds());
  for (size_t r = 0; r < plain.num_rounds(); ++r) {
    EXPECT_EQ(compressed.round_metrics[r].shuffle_bytes,
              plain.round_metrics[r].shuffle_bytes)
        << "round " << r;
    if (compressed.round_metrics[r].shuffle_records > 0) {
      EXPECT_GT(compressed.round_metrics[r].shuffle_compressed_bytes, 0u);
    }
  }
  EXPECT_EQ(plain.aggregate.shuffle_compressed_bytes, 0u);
  EXPECT_GT(compressed.aggregate.shuffle_compressed_bytes, 0u);
}

TEST(RecountMinerTest, MineNaiveRecountRespectsCumulativeBudget) {
  SequenceDatabase db = testing::RandomDatabase(4800, 6, 40, 8);
  Fst fst = CompileFst(".*(.)[.*(.)]{0,2}.*", db.dict);
  NaiveRecountOptions options;
  options.sigma = 2;
  ChainedDistributedResult free_run =
      MineNaiveRecount(db.sequences, fst, db.dict, options);
  ASSERT_EQ(free_run.num_rounds(), 2u);

  // A cumulative budget below the recount round's own volume dies in
  // round 1; one below the two-round total dies in round 2.
  NaiveRecountOptions tight = options;
  tight.cumulative_shuffle_budget_bytes =
      free_run.round_metrics[0].shuffle_bytes - 1;
  EXPECT_THROW(MineNaiveRecount(db.sequences, fst, db.dict, tight),
               ShuffleOverflowError);
  tight.cumulative_shuffle_budget_bytes =
      free_run.aggregate.shuffle_bytes - 1;
  EXPECT_THROW(MineNaiveRecount(db.sequences, fst, db.dict, tight),
               ShuffleOverflowError);
}

}  // namespace
}  // namespace dseq
