// Unit tests of the chained-round dataflow API (DataflowJob) and regression
// tests pinning the shuffle-budget semantics: exact thresholds, where in the
// round the budget trips, and per-round vs cumulative accounting.
#include "src/dataflow/chained.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <string>
#include <vector>

#include "src/util/varint.h"

namespace dseq {
namespace {

std::string Varint(uint64_t v) {
  std::string s;
  PutVarint(&s, v);
  return s;
}

uint64_t DecodeVarint(std::string_view s) {
  size_t pos = 0;
  uint64_t v = 0;
  EXPECT_TRUE(GetVarint(s, &pos, &v));
  return v;
}

// Sums varint values per key and re-emits (key, varint(total)).
ChainReduceFn SumReduce() {
  return [](int, std::string_view key, std::vector<std::string_view>& values,
            const EmitFn& emit) {
    uint64_t total = 0;
    for (std::string_view v : values) total += DecodeVarint(v);
    emit(key, Varint(total));
  };
}

TEST(DataflowJobTest, RecordsFlowBetweenRounds) {
  // Round 1: word count. Round 2: re-key by first letter, sum again.
  std::vector<std::string> docs = {"apple ant bee", "bee apple", "ant"};
  ChainedDataflowOptions options;
  options.num_map_workers = 2;
  options.num_reduce_workers = 2;
  DataflowJob job(options);

  MapFn map_fn = [&](size_t i, const EmitFn& emit) {
    std::string word;
    for (char c : docs[i] + " ") {
      if (c == ' ') {
        if (!word.empty()) emit(word, Varint(1));
        word.clear();
      } else {
        word += c;
      }
    }
  };
  job.RunRound(docs.size(), map_fn, MakeSumCombiner, SumReduce());

  // Boundary records hold the per-word counts, serialized.
  std::map<std::string, uint64_t> words;
  for (const Record& r : job.records()) words[r.key] = DecodeVarint(r.value);
  EXPECT_EQ(words, (std::map<std::string, uint64_t>{
                       {"apple", 2}, {"ant", 2}, {"bee", 2}}));

  RecordMapFn rekey = [](size_t, const Record& r, const EmitFn& emit) {
    emit(r.key.substr(0, 1), r.value);
  };
  job.RunChainedRound(rekey, MakeSumCombiner, SumReduce());

  std::map<std::string, uint64_t> letters;
  for (const Record& r : job.records()) letters[r.key] = DecodeVarint(r.value);
  EXPECT_EQ(letters, (std::map<std::string, uint64_t>{{"a", 4}, {"b", 2}}));

  ASSERT_EQ(job.num_rounds(), 2u);
  const auto& rounds = job.round_metrics();
  EXPECT_GT(rounds[0].shuffle_records, 0u);
  EXPECT_GT(rounds[1].shuffle_records, 0u);
  DataflowMetrics aggregate = job.aggregate_metrics();
  EXPECT_EQ(aggregate.shuffle_bytes,
            rounds[0].shuffle_bytes + rounds[1].shuffle_bytes);
  EXPECT_EQ(aggregate.shuffle_records,
            rounds[0].shuffle_records + rounds[1].shuffle_records);
  EXPECT_EQ(aggregate.map_output_records,
            rounds[0].map_output_records + rounds[1].map_output_records);
  EXPECT_EQ(job.cumulative_shuffle_bytes(), aggregate.shuffle_bytes);
}

TEST(DataflowJobTest, TakeRecordsConsumes) {
  DataflowJob job(ChainedDataflowOptions{});
  MapFn map_fn = [](size_t, const EmitFn& emit) { emit("k", "v"); };
  ChainReduceFn pass = [](int, std::string_view key,
                          std::vector<std::string_view>& values,
                          const EmitFn& emit) {
    for (std::string_view v : values) emit(key, v);
  };
  job.RunRound(1, map_fn, nullptr, pass);
  ASSERT_EQ(job.records().size(), 1u);
  std::vector<Record> taken = job.TakeRecords();
  EXPECT_EQ(taken.size(), 1u);
  EXPECT_TRUE(job.records().empty());
}

TEST(DataflowJobTest, EmptyChainedRoundRunsCleanly) {
  DataflowJob job(ChainedDataflowOptions{});
  MapFn map_fn = [](size_t, const EmitFn& emit) { emit("k", Varint(1)); };
  // Reduce emits nothing: the chain's data ends here.
  ChainReduceFn sink = [](int, std::string_view, std::vector<std::string_view>&,
                          const EmitFn&) {};
  job.RunRound(1, map_fn, nullptr, sink);
  EXPECT_TRUE(job.records().empty());
  RecordMapFn identity = [](size_t, const Record& r, const EmitFn& emit) {
    emit(r.key, r.value);
  };
  job.RunChainedRound(identity, nullptr, sink);
  EXPECT_EQ(job.num_rounds(), 2u);
  EXPECT_EQ(job.round_metrics()[1].shuffle_records, 0u);
}

// --- Shuffle-budget regressions --------------------------------------------

// One round shuffling a fixed set of records, no combiner. Returns its exact
// shuffle volume when unbudgeted.
uint64_t MeasureVolume() {
  DataflowJob job(ChainedDataflowOptions{});
  MapFn map_fn = [](size_t i, const EmitFn& emit) {
    emit("key" + std::to_string(i), std::string(10, 'v'));
  };
  ChainReduceFn sink = [](int, std::string_view, std::vector<std::string_view>&,
                          const EmitFn&) {};
  job.RunRound(8, map_fn, nullptr, sink);
  return job.round_metrics()[0].shuffle_bytes;
}

DataflowMetrics RunBudgeted(uint64_t per_round_budget) {
  DataflowOptions options;
  options.shuffle_budget_bytes = per_round_budget;
  MapFn map_fn = [](size_t i, const EmitFn& emit) {
    emit("key" + std::to_string(i), std::string(10, 'v'));
  };
  ReduceFn sink = [](int, std::string_view, std::vector<std::string_view>&) {};
  return RunMapReduce(8, map_fn, nullptr, sink, options);
}

TEST(ShuffleBudgetTest, BudgetExactlyEqualToVolumeSucceeds) {
  uint64_t volume = MeasureVolume();
  ASSERT_GT(volume, 0u);
  DataflowMetrics metrics = RunBudgeted(volume);
  EXPECT_EQ(metrics.shuffle_bytes, volume);
}

TEST(ShuffleBudgetTest, OneByteBelowVolumeThrows) {
  uint64_t volume = MeasureVolume();
  EXPECT_THROW(RunBudgeted(volume - 1), ShuffleOverflowError);
}

TEST(ShuffleBudgetTest, BudgetTripsMidMap) {
  // A single map worker emits record by record; the overflow must fire on
  // the offending record, before the map phase finishes.
  std::atomic<size_t> map_calls{0};
  DataflowOptions options;
  options.shuffle_budget_bytes = 40;  // fits ~2 records of 17+4 bytes
  options.num_map_workers = 1;
  MapFn map_fn = [&](size_t i, const EmitFn& emit) {
    ++map_calls;
    emit("key" + std::to_string(i), std::string(10, 'v'));
  };
  ReduceFn sink = [](int, std::string_view, std::vector<std::string_view>&) {};
  EXPECT_THROW(RunMapReduce(100, map_fn, nullptr, sink, options),
               ShuffleOverflowError);
  EXPECT_LT(map_calls.load(), 100u);
}

TEST(ShuffleBudgetTest, PreCombineVolumeAboveBudgetDoesNotTrip) {
  // 500 identical records would blow the budget raw, but the combiner folds
  // them into one; the budget is charged post-combine only.
  DataflowOptions options;
  options.num_map_workers = 1;
  MapFn map_fn = [](size_t, const EmitFn& emit) {
    std::string one;
    PutVarint(&one, 1);
    for (int i = 0; i < 500; ++i) emit("key", one);
  };
  ReduceFn sink = [](int, std::string_view, std::vector<std::string_view>&) {};

  DataflowMetrics unbudgeted =
      RunMapReduce(1, map_fn, MakeSumCombiner, sink, options);
  ASSERT_EQ(unbudgeted.shuffle_records, 1u);
  ASSERT_GT(unbudgeted.map_output_records, unbudgeted.shuffle_records);

  options.shuffle_budget_bytes = unbudgeted.shuffle_bytes;
  DataflowMetrics budgeted =
      RunMapReduce(1, map_fn, MakeSumCombiner, sink, options);
  EXPECT_EQ(budgeted.shuffle_bytes, unbudgeted.shuffle_bytes);

  options.shuffle_budget_bytes = unbudgeted.shuffle_bytes - 1;
  EXPECT_THROW(RunMapReduce(1, map_fn, MakeSumCombiner, sink, options),
               ShuffleOverflowError);
}

// Chained job where each round shuffles the same fixed volume.
class BudgetedChain {
 public:
  explicit BudgetedChain(ChainedDataflowOptions options) : job_(options) {}

  // Round 1 ships `kRecords` records; every chained round re-ships them.
  void RunSeedRound() {
    MapFn map_fn = [](size_t i, const EmitFn& emit) {
      emit("key" + std::to_string(i), std::string(10, 'v'));
    };
    job_.RunRound(kRecords, map_fn, nullptr, PassThrough());
  }
  void RunEchoRound() {
    RecordMapFn map_fn = [](size_t, const Record& r, const EmitFn& emit) {
      emit(r.key, r.value);
    };
    job_.RunChainedRound(map_fn, nullptr, PassThrough());
  }
  DataflowJob& job() { return job_; }

  static constexpr size_t kRecords = 8;

 private:
  static ChainReduceFn PassThrough() {
    return [](int, std::string_view key, std::vector<std::string_view>& values,
              const EmitFn& emit) {
      for (std::string_view v : values) emit(key, v);
    };
  }
  DataflowJob job_;
};

TEST(ShuffleBudgetTest, PerRoundBudgetResetsEachRound) {
  uint64_t volume = MeasureVolume();
  ChainedDataflowOptions options;
  options.shuffle_budget_bytes = volume;  // exactly one round's volume
  BudgetedChain chain(options);
  chain.RunSeedRound();
  chain.RunEchoRound();
  chain.RunEchoRound();
  EXPECT_EQ(chain.job().cumulative_shuffle_bytes(), 3 * volume);
}

TEST(ShuffleBudgetTest, CumulativeBudgetSpansRounds) {
  uint64_t volume = MeasureVolume();
  {
    ChainedDataflowOptions options;
    options.cumulative_shuffle_budget_bytes = 2 * volume;
    BudgetedChain chain(options);
    chain.RunSeedRound();
    chain.RunEchoRound();  // exactly exhausts the budget
    EXPECT_EQ(chain.job().cumulative_shuffle_bytes(), 2 * volume);
    // Any further shuffled byte overflows, even though the per-round volume
    // would be fine on its own.
    EXPECT_THROW(chain.RunEchoRound(), ShuffleOverflowError);
  }
  {
    ChainedDataflowOptions options;
    options.cumulative_shuffle_budget_bytes = 2 * volume - 1;
    BudgetedChain chain(options);
    chain.RunSeedRound();
    EXPECT_THROW(chain.RunEchoRound(), ShuffleOverflowError);
  }
  {
    ChainedDataflowOptions options;
    options.cumulative_shuffle_budget_bytes = volume - 1;
    BudgetedChain chain(options);
    EXPECT_THROW(chain.RunSeedRound(), ShuffleOverflowError);
  }
}

TEST(ShuffleBudgetTest, PerRoundAndCumulativeCompose) {
  uint64_t volume = MeasureVolume();
  // Per-round allows each round; the cumulative budget ends the chain first.
  ChainedDataflowOptions options;
  options.shuffle_budget_bytes = volume;
  options.cumulative_shuffle_budget_bytes = 2 * volume + volume / 2;
  BudgetedChain chain(options);
  chain.RunSeedRound();
  chain.RunEchoRound();
  EXPECT_THROW(chain.RunEchoRound(), ShuffleOverflowError);
  EXPECT_EQ(chain.job().num_rounds(), 2u);
}

}  // namespace
}  // namespace dseq
