#include "src/dist/naive.h"

#include <gtest/gtest.h>

#include "src/core/desq_dfs.h"
#include "src/dict/sequence.h"
#include "src/fst/compiler.h"
#include "tests/test_util.h"

namespace dseq {
namespace {

constexpr char kPatternEx[] = ".*(A)[(.^).*]*(b).*";

TEST(NaiveTest, RunningExampleGolden) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  NaiveOptions options;
  options.sigma = 2;
  DistributedResult result = MineNaive(db.sequences, fst, db.dict, options);
  MiningResult expected = {
      {db.ParseSequence("a1 b"), 3},
      {db.ParseSequence("a1 a1 b"), 2},
      {db.ParseSequence("a1 A b"), 2},
  };
  Canonicalize(&expected);
  EXPECT_EQ(result.patterns, expected);
}

TEST(NaiveTest, SemiNaiveShufflesLess) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  NaiveOptions naive;
  naive.sigma = 2;
  NaiveOptions semi = naive;
  semi.semi_naive = true;
  DistributedResult r1 = MineNaive(db.sequences, fst, db.dict, naive);
  DistributedResult r2 = MineNaive(db.sequences, fst, db.dict, semi);
  EXPECT_EQ(r1.patterns, r2.patterns);
  // SEMI-NAIVE communicates only candidates made of frequent items.
  EXPECT_LT(r2.metrics.shuffle_bytes, r1.metrics.shuffle_bytes);
}

TEST(NaiveTest, ShuffleBudgetProducesOom) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  NaiveOptions options;
  options.sigma = 2;
  options.shuffle_budget_bytes = 8;
  EXPECT_THROW(MineNaive(db.sequences, fst, db.dict, options),
               ShuffleOverflowError);
}

TEST(NaiveTest, CandidateBudgetProducesOom) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  NaiveOptions options;
  options.sigma = 2;
  options.candidates_per_sequence_budget = 2;
  EXPECT_THROW(MineNaive(db.sequences, fst, db.dict, options),
               MiningBudgetError);
}

class NaivePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, std::string>> {};

TEST_P(NaivePropertyTest, MatchesDesqDfs) {
  auto [seed, pattern] = GetParam();
  SequenceDatabase db = testing::RandomDatabase(seed + 300, 8, 40, 8);
  Fst fst = CompileFst(pattern, db.dict);
  for (uint64_t sigma : {1, 2, 4}) {
    DesqDfsOptions seq_options;
    seq_options.sigma = sigma;
    MiningResult expected =
        MineDesqDfs(db.sequences, fst, db.dict, seq_options);

    for (bool semi : {false, true}) {
      NaiveOptions options;
      options.sigma = sigma;
      options.semi_naive = semi;
      options.num_map_workers = 3;
      options.num_reduce_workers = 2;
      DistributedResult actual =
          MineNaive(db.sequences, fst, db.dict, options);
      EXPECT_EQ(actual.patterns, expected)
          << "pattern=" << pattern << " sigma=" << sigma << " semi=" << semi;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomizedNaive, NaivePropertyTest,
    ::testing::Combine(::testing::Values(1, 2),
                       ::testing::ValuesIn(testing::PropertyPatterns())));

}  // namespace
}  // namespace dseq
