// Randomized property tests of the dataflow engine itself: generated
// map/combine/reduce pipelines must be deterministic across execution modes
// (kThreads vs kSimulated), across 1/2/4/8 workers, and across repeated
// runs — including the shuffle metrics, which are the paper's headline
// numbers and must not wobble with scheduling.
//
// Iteration count: DSEQ_PROPERTY_ITERATIONS (the nightly CI job raises it).
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "src/dataflow/chained.h"
#include "src/dataflow/engine.h"
#include "src/util/varint.h"
#include "tests/test_util.h"

namespace dseq {
namespace {

enum class CombinerKind { kNone, kSum, kWeighted };

// A generated pipeline: precomputed per-input emissions, so the map phase is
// trivially deterministic and the properties isolate the engine.
struct Pipeline {
  std::vector<std::vector<std::pair<std::string, std::string>>> emissions;
  CombinerKind combiner = CombinerKind::kNone;
};

Pipeline RandomPipeline(uint64_t seed, CombinerKind combiner) {
  std::mt19937_64 rng(seed);
  Pipeline p;
  p.combiner = combiner;
  size_t num_keys = 1 + rng() % 12;
  size_t num_inputs = 1 + rng() % 60;
  // Note the embedded NUL and high bytes: payloads are arbitrary binary.
  std::vector<std::string> payloads = {"", "x", "payload",
                                       std::string("\x00\x01\xff", 3)};
  p.emissions.resize(num_inputs);
  for (auto& input : p.emissions) {
    size_t n = rng() % 7;
    for (size_t e = 0; e < n; ++e) {
      std::string key = "k" + std::to_string(rng() % num_keys);
      std::string value;
      switch (combiner) {
        case CombinerKind::kSum:
          PutVarint(&value, rng() % 100);
          break;
        case CombinerKind::kWeighted:
          PutVarint(&value, 1 + rng() % 5);
          value += payloads[rng() % payloads.size()];
          break;
        case CombinerKind::kNone:
          value = payloads[rng() % payloads.size()] +
                  std::to_string(rng() % 1000);
          break;
      }
      input.emplace_back(std::move(key), std::move(value));
    }
  }
  return p;
}

CombinerFactory FactoryFor(CombinerKind kind) {
  switch (kind) {
    case CombinerKind::kSum:
      return MakeSumCombiner;
    case CombinerKind::kWeighted:
      return MakeWeightedValueCombiner;
    case CombinerKind::kNone:
      return nullptr;
  }
  return nullptr;
}

// Canonical, order-insensitive view of the reduce input: key -> sorted
// values, sorted by key. Combiners may merge values, so pipelines with a
// combiner compare the *decoded totals* per key instead (see SumTotals).
using Groups = std::vector<std::pair<std::string, std::vector<std::string>>>;

struct RunOutcome {
  Groups groups;
  DataflowMetrics metrics;
};

// The tiny out-of-core budget of the spilled property runs: far below both
// the pipelines' shuffle volume and the combiner tables' resident size, so
// spilled runs really exercise multiple spill files and merge passes. The
// CI spill group squeezes it further via DSEQ_SPILL_TEST_BUDGET.
uint64_t TinySpillBudget() {
  static const uint64_t budget = testing::SpillTestBudget(128);
  return budget;
}

RunOutcome RunPipeline(const Pipeline& p, int workers, Execution execution,
                       bool compress = false,
                       const std::string& spill_dir = std::string()) {
  MapFn map_fn = [&](size_t i, const EmitFn& emit) {
    for (const auto& [key, value] : p.emissions[i]) emit(key, value);
  };
  std::vector<Groups> per_worker(workers);
  ReduceFn reduce_fn = [&](int worker, std::string_view key,
                           std::vector<std::string_view>& values) {
    std::vector<std::string> sorted(values.begin(), values.end());
    std::sort(sorted.begin(), sorted.end());
    per_worker[worker].emplace_back(std::string(key), std::move(sorted));
  };
  DataflowOptions options;
  options.num_map_workers = workers;
  options.num_reduce_workers = workers;
  options.execution = execution;
  options.compress_shuffle = compress;
  if (!spill_dir.empty()) {
    options.memory_budget_bytes = TinySpillBudget();
    options.spill_dir = spill_dir;
    options.spill_merge_fan_in = 2;  // force multi-pass merges
  }
  RunOutcome outcome;
  outcome.metrics = RunMapReduce(p.emissions.size(), map_fn,
                                 FactoryFor(p.combiner), reduce_fn, options);
  for (auto& part : per_worker) {
    outcome.groups.insert(outcome.groups.end(),
                          std::make_move_iterator(part.begin()),
                          std::make_move_iterator(part.end()));
  }
  std::sort(outcome.groups.begin(), outcome.groups.end());
  return outcome;
}

// Decoded (key, total) view for combiner pipelines, invariant under how the
// combiner merged records: sum of varint counts (kSum) / weights (kWeighted).
std::vector<std::pair<std::string, uint64_t>> Totals(const Groups& groups) {
  std::vector<std::pair<std::string, uint64_t>> totals;
  for (const auto& [key, values] : groups) {
    uint64_t total = 0;
    for (const std::string& v : values) {
      size_t pos = 0;
      uint64_t c = 0;
      EXPECT_TRUE(GetVarint(v, &pos, &c));
      total += c;
    }
    totals.emplace_back(key, total);
  }
  std::sort(totals.begin(), totals.end());
  return totals;
}

class DataflowPropertyTest : public ::testing::TestWithParam<CombinerKind> {};

TEST_P(DataflowPropertyTest, DeterministicAcrossWorkersAndExecutionModes) {
  CombinerKind kind = GetParam();
  int iterations = testing::PropertyIterations(6);
  for (int iter = 0; iter < iterations; ++iter) {
    SCOPED_TRACE("iteration=" + std::to_string(iter));
    Pipeline p = RandomPipeline(9000 + iter, kind);
    RunOutcome reference = RunPipeline(p, 1, Execution::kThreads);

    testing::ForEachWorkerCount([&](int workers) {
      RunOutcome threads = RunPipeline(p, workers, Execution::kThreads);
      RunOutcome simulated = RunPipeline(p, workers, Execution::kSimulated);

      // Results are identical across execution modes and worker counts —
      // up to combiner merging, which the decoded totals see through.
      if (kind == CombinerKind::kNone) {
        EXPECT_EQ(threads.groups, reference.groups);
      } else {
        EXPECT_EQ(Totals(threads.groups), Totals(reference.groups));
      }
      EXPECT_EQ(threads.groups, simulated.groups);

      // Shuffle metrics are identical for identical inputs: across
      // execution modes, and across repeated runs of the same config.
      EXPECT_EQ(threads.metrics.shuffle_bytes, simulated.metrics.shuffle_bytes);
      EXPECT_EQ(threads.metrics.shuffle_records,
                simulated.metrics.shuffle_records);
      EXPECT_EQ(threads.metrics.map_output_records,
                simulated.metrics.map_output_records);
      RunOutcome repeat = RunPipeline(p, workers, Execution::kThreads);
      EXPECT_EQ(repeat.groups, threads.groups);
      EXPECT_EQ(repeat.metrics.shuffle_bytes, threads.metrics.shuffle_bytes);
      EXPECT_EQ(repeat.metrics.shuffle_records,
                threads.metrics.shuffle_records);

      // The pre-combine record count never depends on the configuration.
      EXPECT_EQ(threads.metrics.map_output_records,
                reference.metrics.map_output_records);

      // Without a combiner the shuffle volume is sharding-invariant too;
      // with one, sharding only ever merges records, never adds them.
      if (kind == CombinerKind::kNone) {
        EXPECT_EQ(threads.metrics.shuffle_bytes,
                  reference.metrics.shuffle_bytes);
        EXPECT_EQ(threads.metrics.shuffle_records,
                  reference.metrics.shuffle_records);
      } else {
        EXPECT_LE(threads.metrics.shuffle_records,
                  threads.metrics.map_output_records);
      }

      // Shuffle compression is invisible to results and raw metrics: the
      // same run with the block codec on reduces to identical groups and
      // charges identical raw volume, reporting the compressed volume on
      // the side.
      RunOutcome compressed = RunPipeline(p, workers, Execution::kThreads,
                                          /*compress=*/true);
      EXPECT_EQ(compressed.groups, threads.groups);
      EXPECT_EQ(compressed.metrics.shuffle_bytes,
                threads.metrics.shuffle_bytes);
      EXPECT_EQ(compressed.metrics.shuffle_records,
                threads.metrics.shuffle_records);
      EXPECT_EQ(threads.metrics.shuffle_compressed_bytes, 0u);
      if (compressed.metrics.shuffle_records > 0) {
        EXPECT_GT(compressed.metrics.shuffle_compressed_bytes, 0u);
      }

      // Out-of-core execution is invisible too: the same run under a tiny
      // memory budget (spilling multiple sorted runs, merging them back in
      // multiple passes) reduces to identical groups with identical raw
      // shuffle metrics, and reports the spill volume on the side. The
      // ScopedTempDir destructor re-asserts that no spill file survived.
      testing::ScopedTempDir spill_dir;
      RunOutcome spilled = RunPipeline(p, workers, Execution::kThreads,
                                       /*compress=*/false, spill_dir.path());
      EXPECT_EQ(spilled.groups, threads.groups);
      EXPECT_EQ(spilled.metrics.shuffle_bytes, threads.metrics.shuffle_bytes);
      EXPECT_EQ(spilled.metrics.shuffle_records,
                threads.metrics.shuffle_records);
      EXPECT_EQ(spilled.metrics.map_output_records,
                threads.metrics.map_output_records);
      EXPECT_EQ(spilled.metrics.reducer_bytes, threads.metrics.reducer_bytes);
      EXPECT_EQ(threads.metrics.spill_files, 0u);
      // Spills are guaranteed where a single worker's state clearly
      // outgrows the budget (per-worker overdraft floors make sharded
      // workers with near-empty state legitimately spill-free): without a
      // combiner once the volume dwarfs the budget, with one once the add
      // count crosses the combiner's overdraft spill batch (64 records).
      bool must_spill =
          workers == 1 &&
          (kind == CombinerKind::kNone
               ? threads.metrics.shuffle_bytes > 4 * TinySpillBudget()
               : threads.metrics.map_output_records >= 72);
      if (must_spill) {
        EXPECT_GT(spilled.metrics.spill_files, 0u);
        EXPECT_GT(spilled.metrics.spill_bytes_written, 0u);
        EXPECT_GE(spilled.metrics.spill_merge_passes, 1u);
      }
    });
  }
}

INSTANTIATE_TEST_SUITE_P(GeneratedPipelines, DataflowPropertyTest,
                         ::testing::Values(CombinerKind::kNone,
                                           CombinerKind::kSum,
                                           CombinerKind::kWeighted));

// --- Chained-round properties ----------------------------------------------

// Canonical outcome of a generated two-round job: round 1 sums counts per
// key, round 2 re-keys every record (so the second shuffle moves data) and
// groups again.
std::vector<std::pair<std::string, uint64_t>> RunChainedPipeline(
    const Pipeline& p, int workers, Execution execution,
    std::vector<DataflowMetrics>* rounds_out) {
  ChainedDataflowOptions options;
  options.num_map_workers = workers;
  options.num_reduce_workers = workers;
  options.execution = execution;
  DataflowJob job(options);

  MapFn map_fn = [&](size_t i, const EmitFn& emit) {
    for (const auto& [key, value] : p.emissions[i]) emit(key, value);
  };
  ChainReduceFn sum_reduce = [](int, std::string_view key,
                                std::vector<std::string_view>& values,
                                const EmitFn& emit) {
    uint64_t total = 0;
    for (std::string_view v : values) {
      size_t pos = 0;
      uint64_t c = 0;
      ASSERT_TRUE(GetVarint(v, &pos, &c));
      total += c;
    }
    std::string value;
    PutVarint(&value, total);
    emit(key, value);
  };
  job.RunRound(p.emissions.size(), map_fn, MakeSumCombiner, sum_reduce);

  RecordMapFn rekey = [](size_t, const Record& record, const EmitFn& emit) {
    emit("g" + std::to_string(record.key.size() % 3), record.value);
  };
  std::vector<std::vector<std::pair<std::string, uint64_t>>> per_worker(
      workers);
  ChainReduceFn collect = [&](int worker, std::string_view key,
                              std::vector<std::string_view>& values,
                              const EmitFn&) {
    uint64_t total = 0;
    for (std::string_view v : values) {
      size_t pos = 0;
      uint64_t c = 0;
      ASSERT_TRUE(GetVarint(v, &pos, &c));
      total += c;
    }
    per_worker[worker].emplace_back(std::string(key), total);
  };
  job.RunChainedRound(rekey, MakeSumCombiner, collect);

  if (rounds_out != nullptr) *rounds_out = job.round_metrics();
  DataflowMetrics aggregate = job.aggregate_metrics();
  EXPECT_EQ(job.num_rounds(), 2u);
  EXPECT_EQ(aggregate.shuffle_bytes, job.round_metrics()[0].shuffle_bytes +
                                         job.round_metrics()[1].shuffle_bytes);
  EXPECT_EQ(job.cumulative_shuffle_bytes(), aggregate.shuffle_bytes);

  std::vector<std::pair<std::string, uint64_t>> outcome;
  for (auto& part : per_worker) {
    outcome.insert(outcome.end(), part.begin(), part.end());
  }
  std::sort(outcome.begin(), outcome.end());
  return outcome;
}

TEST(ChainedDataflowPropertyTest, DeterministicAcrossWorkersAndModes) {
  int iterations = testing::PropertyIterations(6);
  for (int iter = 0; iter < iterations; ++iter) {
    SCOPED_TRACE("iteration=" + std::to_string(iter));
    Pipeline p = RandomPipeline(7700 + iter, CombinerKind::kSum);
    auto reference = RunChainedPipeline(p, 1, Execution::kThreads, nullptr);

    testing::ForEachWorkerCount([&](int workers) {
      std::vector<DataflowMetrics> threads_rounds;
      std::vector<DataflowMetrics> simulated_rounds;
      auto threads =
          RunChainedPipeline(p, workers, Execution::kThreads, &threads_rounds);
      auto simulated = RunChainedPipeline(p, workers, Execution::kSimulated,
                                          &simulated_rounds);
      EXPECT_EQ(threads, reference);
      EXPECT_EQ(simulated, reference);

      // Per-round shuffle metrics are identical across execution modes.
      ASSERT_EQ(threads_rounds.size(), simulated_rounds.size());
      for (size_t r = 0; r < threads_rounds.size(); ++r) {
        EXPECT_EQ(threads_rounds[r].shuffle_bytes,
                  simulated_rounds[r].shuffle_bytes)
            << "round " << r;
        EXPECT_EQ(threads_rounds[r].shuffle_records,
                  simulated_rounds[r].shuffle_records)
            << "round " << r;
        EXPECT_EQ(threads_rounds[r].map_output_records,
                  simulated_rounds[r].map_output_records)
            << "round " << r;
      }
    });
  }
}

}  // namespace
}  // namespace dseq
