// End-to-end integration tests: all algorithms agree on small instances of
// the generated benchmark datasets with the paper's Tab. III constraints.
#include <gtest/gtest.h>

#include "src/baselines/gap_miner.h"
#include "src/baselines/prefix_span.h"
#include "src/core/desq_dfs.h"
#include "src/datagen/market_baskets.h"
#include "src/datagen/text_corpus.h"
#include "src/datagen/web_text.h"
#include "src/dist/dcand_miner.h"
#include "src/dist/dseq_miner.h"
#include "src/dist/naive.h"
#include "src/fst/compiler.h"
#include "tests/test_util.h"

namespace dseq {
namespace {

const SequenceDatabase& SmallNyt() {
  static SequenceDatabase db = [] {
    TextCorpusOptions options;
    options.num_sentences = 2'000;
    options.lemmas_per_pos = 200;
    options.num_entities = 150;
    return GenerateTextCorpus(options);
  }();
  return db;
}

const SequenceDatabase& SmallAmzn() {
  static SequenceDatabase db = [] {
    MarketBasketOptions options;
    options.num_customers = 2'000;
    return GenerateMarketBaskets(options);
  }();
  return db;
}

void ExpectAllAgree(const SequenceDatabase& db, const std::string& pattern,
                    uint64_t sigma) {
  Fst fst = CompileFst(pattern, db.dict);
  DesqDfsOptions seq_options;
  seq_options.sigma = sigma;
  MiningResult expected = MineDesqDfs(db.sequences, fst, db.dict, seq_options);

  NaiveOptions semi;
  semi.sigma = sigma;
  semi.semi_naive = true;
  semi.num_map_workers = 4;
  semi.num_reduce_workers = 4;
  EXPECT_EQ(MineNaive(db.sequences, fst, db.dict, semi).patterns, expected)
      << "SEMI-NAIVE for " << pattern;

  DSeqOptions dseq_options;
  dseq_options.sigma = sigma;
  dseq_options.num_map_workers = 4;
  dseq_options.num_reduce_workers = 4;
  EXPECT_EQ(MineDSeq(db.sequences, fst, db.dict, dseq_options).patterns,
            expected)
      << "D-SEQ for " << pattern;

  DCandOptions dcand_options;
  dcand_options.sigma = sigma;
  dcand_options.num_map_workers = 4;
  dcand_options.num_reduce_workers = 4;
  EXPECT_EQ(MineDCand(db.sequences, fst, db.dict, dcand_options).patterns,
            expected)
      << "D-CAND for " << pattern;

  // Sanity: something was mined (the constraints are productive).
  EXPECT_FALSE(expected.empty()) << pattern;
}

TEST(IntegrationTest, NytConstraintsAgree) {
  ExpectAllAgree(SmallNyt(), ".* ENTITY (VERB+ NOUN+? PREP?) ENTITY .*", 3);
  ExpectAllAgree(SmallNyt(), ".* (ENTITY^ VERB+ NOUN+? PREP? ENTITY^) .*", 5);
  ExpectAllAgree(SmallNyt(), ".* (ENTITY^ be^=) DET? (ADV? ADJ? NOUN) .*", 3);
  ExpectAllAgree(SmallNyt(), ".* (.^){3} NOUN .*", 50);
  ExpectAllAgree(SmallNyt(), ".* ([.^. .]|[. .^.]|[. . .^]) .*", 10);
}

TEST(IntegrationTest, AmznConstraintsAgree) {
  ExpectAllAgree(SmallAmzn(), ".*(Electr^)[.{0,2}(Electr^)]{1,4}.*", 20);
  ExpectAllAgree(SmallAmzn(), ".*(Book)[.{0,2}(Book)]{1,4}.*", 2);
  ExpectAllAgree(SmallAmzn(), ".*DigitalCamera[.{0,3}(.^)]{1,4}.*", 10);
  ExpectAllAgree(SmallAmzn(), ".*(MusicInstr^)[.{0,2}(MusicInstr^)]{1,4}.*",
                 10);
}

TEST(IntegrationTest, TraditionalConstraintsAgreeWithSpecializedMiners) {
  WebTextOptions options;
  options.num_sentences = 1'500;
  options.vocabulary_size = 500;
  options.mean_sentence_length = 10;
  SequenceDatabase db = GenerateWebText(options);

  // T2(20, 1, 4): D-SEQ vs MG-FSM-style specialized miner.
  {
    Fst fst = CompileFst(".*(.)[.{0,1}(.)]{1,3}.*", db.dict);
    DesqDfsOptions seq_options;
    seq_options.sigma = 20;
    MiningResult expected =
        MineDesqDfs(db.sequences, fst, db.dict, seq_options);
    GapMinerOptions gap;
    gap.sigma = 20;
    gap.gamma = 1;
    gap.lambda = 4;
    gap.use_hierarchy = false;
    gap.num_map_workers = 4;
    gap.num_reduce_workers = 4;
    EXPECT_EQ(MineGapConstrained(db.sequences, db.dict, gap).patterns,
              expected);
    EXPECT_FALSE(expected.empty());
  }

  // T1(30, 3): D-SEQ vs PrefixSpan.
  {
    Fst fst = CompileFst(".*(.)[.*(.)]{0,2}.*", db.dict);
    DesqDfsOptions seq_options;
    seq_options.sigma = 30;
    MiningResult expected =
        MineDesqDfs(db.sequences, fst, db.dict, seq_options);
    PrefixSpanOptions ps;
    ps.sigma = 30;
    ps.lambda = 3;
    ps.num_map_workers = 4;
    ps.num_reduce_workers = 4;
    EXPECT_EQ(MinePrefixSpan(db.sequences, db.dict, ps).patterns, expected);
    EXPECT_FALSE(expected.empty());
  }
}

TEST(IntegrationTest, ForestConversionPreservesT3MiningSemantics) {
  // AMZN-F mining uses the forest hierarchy; results generally differ from
  // the DAG (fewer generalizations) but all miners must still agree.
  SequenceDatabase forest = ToForest(SmallAmzn());
  Fst fst = CompileFst(".*(.^)[.{0,1}(.^)]{1,4}.*", forest.dict);
  DesqDfsOptions seq_options;
  seq_options.sigma = 50;
  MiningResult expected =
      MineDesqDfs(forest.sequences, fst, forest.dict, seq_options);

  GapMinerOptions gap;
  gap.sigma = 50;
  gap.gamma = 1;
  gap.lambda = 5;
  gap.use_hierarchy = true;
  gap.num_map_workers = 4;
  gap.num_reduce_workers = 4;
  EXPECT_EQ(MineGapConstrained(forest.sequences, forest.dict, gap).patterns,
            expected);

  DSeqOptions dseq_options;
  dseq_options.sigma = 50;
  dseq_options.num_map_workers = 4;
  dseq_options.num_reduce_workers = 4;
  EXPECT_EQ(
      MineDSeq(forest.sequences, fst, forest.dict, dseq_options).patterns,
      expected);
  EXPECT_FALSE(expected.empty());
}

}  // namespace
}  // namespace dseq
