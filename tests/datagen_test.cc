#include <gtest/gtest.h>

#include "src/datagen/market_baskets.h"
#include "src/datagen/skewed_zipf.h"
#include "src/datagen/text_corpus.h"
#include "src/datagen/web_text.h"
#include "src/datagen/zipf.h"

namespace dseq {
namespace {

TEST(SkewedZipfTest, DeterministicAndShaped) {
  SkewedZipfOptions options;
  options.seed = 5;
  options.num_items = 40;
  options.num_groups = 4;
  options.num_sequences = 50;
  SequenceDatabase a = GenerateSkewedZipf(options);
  SequenceDatabase b = GenerateSkewedZipf(options);
  EXPECT_EQ(a.sequences, b.sequences);
  EXPECT_EQ(a.size(), 50u);
  EXPECT_EQ(a.dict.size(), 44u);  // leaves + group parents
  for (const Sequence& seq : a.sequences) {
    EXPECT_GE(seq.size(), options.min_length);
    EXPECT_LE(seq.size(), options.max_length);
  }
}

TEST(SkewedZipfTest, EveryLeafGeneralizesToAGroup) {
  SkewedZipfOptions options;
  options.num_items = 30;
  options.num_groups = 3;
  options.num_sequences = 20;
  SequenceDatabase db = GenerateSkewedZipf(options);
  for (const Sequence& seq : db.sequences) {
    for (ItemId item : seq) {
      // Sequences contain leaves only; each has exactly one parent.
      EXPECT_EQ(db.dict.Parents(item).size(), 1u);
    }
  }
}

TEST(SkewedZipfTest, FlatVocabularyWithoutGroups) {
  SkewedZipfOptions options;
  options.num_groups = 0;
  options.num_items = 20;
  options.num_sequences = 10;
  SequenceDatabase db = GenerateSkewedZipf(options);
  EXPECT_EQ(db.dict.size(), 20u);
  for (const Sequence& seq : db.sequences) {
    for (ItemId item : seq) {
      EXPECT_TRUE(db.dict.Parents(item).empty());
    }
  }
}

TEST(ZipfTest, RanksSkewTowardsZero) {
  ZipfSampler zipf(1000, 1.1);
  std::mt19937_64 rng(1);
  size_t low = 0;
  for (int i = 0; i < 10000; ++i) {
    if (zipf.Sample(rng) < 10) ++low;
  }
  // The 10 most popular ranks should take a large share.
  EXPECT_GT(low, 2000u);
}

TEST(ZipfTest, AllRanksReachable) {
  ZipfSampler zipf(5, 0.5);
  std::mt19937_64 rng(2);
  std::vector<bool> seen(5, false);
  for (int i = 0; i < 10000; ++i) seen[zipf.Sample(rng)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(TextCorpusTest, GeneratesRequestedSize) {
  TextCorpusOptions options;
  options.num_sentences = 500;
  options.lemmas_per_pos = 100;
  options.num_entities = 50;
  SequenceDatabase db = GenerateTextCorpus(options);
  EXPECT_EQ(db.size(), 500u);
  EXPECT_GT(db.dict.size(), 300u);
}

TEST(TextCorpusTest, HierarchyShapeMatchesNyt) {
  TextCorpusOptions options;
  options.num_sentences = 200;
  options.lemmas_per_pos = 50;
  options.num_entities = 30;
  SequenceDatabase db = GenerateTextCorpus(options);
  const Dictionary& dict = db.dict;

  // POS tags, entity types, and the copula exist.
  for (const char* name :
       {"VERB", "NOUN", "DET", "PREP", "ADJ", "ADV", "ENTITY", "PER", "ORG",
        "LOC", "be", "is", "was"}) {
    EXPECT_NE(dict.ItemByName(name), kNoItem) << name;
  }
  // "is" generalizes to "be" and then VERB.
  ItemId is = dict.ItemByName("is");
  EXPECT_TRUE(dict.IsAncestorOrSelf(dict.ItemByName("be"), is));
  EXPECT_TRUE(dict.IsAncestorOrSelf(dict.ItemByName("VERB"), is));
  // Entities generalize to ENTITY.
  ItemId ent0 = dict.ItemByName("ent0");
  ASSERT_NE(ent0, kNoItem);
  EXPECT_TRUE(dict.IsAncestorOrSelf(dict.ItemByName("ENTITY"), ent0));
}

TEST(TextCorpusTest, SequencesContainOnlyLeafTokens) {
  TextCorpusOptions options;
  options.num_sentences = 100;
  options.lemmas_per_pos = 50;
  options.num_entities = 30;
  SequenceDatabase db = GenerateTextCorpus(options);
  // Sequence items are word forms / entity mentions: they have parents.
  for (const Sequence& s : db.sequences) {
    for (ItemId t : s) {
      EXPECT_FALSE(db.dict.Parents(t).empty());
    }
  }
}

TEST(TextCorpusTest, DeterministicForSeed) {
  TextCorpusOptions options;
  options.num_sentences = 50;
  options.lemmas_per_pos = 30;
  options.num_entities = 10;
  SequenceDatabase a = GenerateTextCorpus(options);
  SequenceDatabase b = GenerateTextCorpus(options);
  EXPECT_EQ(a.sequences, b.sequences);
}

TEST(MarketBasketsTest, GeneratesDagHierarchy) {
  MarketBasketOptions options;
  options.num_customers = 500;
  SequenceDatabase db = GenerateMarketBaskets(options);
  EXPECT_EQ(db.size(), 500u);
  EXPECT_FALSE(db.dict.IsForest());  // multi-parent products exist
  for (const char* name : {"Electr", "Book", "MusicInstr", "DigitalCamera"}) {
    EXPECT_NE(db.dict.ItemByName(name), kNoItem) << name;
  }
}

TEST(MarketBasketsTest, ProductsGeneralizeToDepartment) {
  MarketBasketOptions options;
  options.num_customers = 200;
  SequenceDatabase db = GenerateMarketBaskets(options);
  ItemId p0 = db.dict.ItemByName("p0");
  ASSERT_NE(p0, kNoItem);
  // p0 is in the first subcategory (DigitalCamera) under Electr.
  EXPECT_TRUE(db.dict.IsAncestorOrSelf(db.dict.ItemByName("DigitalCamera"), p0));
  EXPECT_TRUE(db.dict.IsAncestorOrSelf(db.dict.ItemByName("Electr"), p0));
}

TEST(MarketBasketsTest, ToForestRemovesMultiParents) {
  MarketBasketOptions options;
  options.num_customers = 300;
  SequenceDatabase db = GenerateMarketBaskets(options);
  SequenceDatabase forest = ToForest(db);
  EXPECT_TRUE(forest.dict.IsForest());
  EXPECT_EQ(forest.size(), db.size());
  EXPECT_EQ(forest.TotalItems(), db.TotalItems());
  // Forest hierarchy has max 1 ancestor path; mean ancestors drops.
  EXPECT_LE(forest.dict.MeanAncestors(), db.dict.MeanAncestors());
}

TEST(WebTextTest, FlatVocabulary) {
  WebTextOptions options;
  options.num_sentences = 300;
  options.vocabulary_size = 1000;
  SequenceDatabase db = GenerateWebText(options);
  EXPECT_EQ(db.size(), 300u);
  EXPECT_TRUE(db.dict.IsForest());
  EXPECT_EQ(db.dict.MaxAncestors(), 0u);
  EXPECT_GT(db.MeanSequenceLength(), 5.0);
}

}  // namespace
}  // namespace dseq
