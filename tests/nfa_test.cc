#include "src/nfa/output_nfa.h"

#include <gtest/gtest.h>

#include <random>

#include "src/core/candidates.h"
#include "src/core/mining.h"
#include "src/core/pivot.h"
#include "src/dict/sequence.h"
#include "src/fst/compiler.h"
#include "src/nfa/serializer.h"
#include "tests/test_util.h"

namespace dseq {
namespace {

constexpr char kPatternEx[] = ".*(A)[(.^).*]*(b).*";

// Builds the per-pivot NFA trie for one sequence (the D-CAND map step).
OutputNfa BuildTrie(const SequenceDatabase& db, const Fst& fst,
                    const Sequence& T, ItemId pivot, uint64_t sigma) {
  GridOptions options;
  options.prune_sigma = sigma;
  StateGrid grid = StateGrid::Build(T, fst, db.dict, options);
  OutputNfa trie;
  ForEachAcceptingRun(grid, 1'000'000,
                      [&](const std::vector<const StateGrid::Edge*>& run) {
                        std::vector<Sequence> sets;
                        for (const auto* e : run) sets.push_back(e->out);
                        PivotSet pivots = PivotsOfOutputSets(sets);
                        if (std::binary_search(pivots.items.begin(),
                                               pivots.items.end(), pivot)) {
                          trie.AddRun(run, pivot);
                        }
                      });
  return trie;
}

// ρk(T) via candidate enumeration (oracle).
std::vector<Sequence> PivotCandidates(const SequenceDatabase& db,
                                      const Fst& fst, const Sequence& T,
                                      ItemId pivot, uint64_t sigma) {
  GridOptions options;
  options.prune_sigma = sigma;
  StateGrid grid = StateGrid::Build(T, fst, db.dict, options);
  std::vector<Sequence> all;
  EnumerateCandidates(grid, 1'000'000, &all);
  std::vector<Sequence> result;
  for (const Sequence& s : all) {
    if (PivotItem(s) == pivot) result.push_back(s);
  }
  return result;
}

TEST(OutputNfaTest, EmptyNfa) {
  OutputNfa nfa;
  EXPECT_TRUE(nfa.empty());
  EXPECT_EQ(nfa.num_states(), 1u);
  EXPECT_EQ(nfa.num_edges(), 0u);
}

// Paper Fig. 7: NFAs for ρc(T1). The trie has 13 vertices and 12 edges; the
// minimized NFA has 7 vertices and 10 edges.
TEST(OutputNfaTest, PaperFig7TrieShape) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  ItemId c = db.dict.ItemByName("c");
  OutputNfa trie = BuildTrie(db, fst, db.sequences[0], c, 2);
  EXPECT_EQ(trie.num_states(), 13u);
  EXPECT_EQ(trie.num_edges(), 12u);
}

TEST(OutputNfaTest, PaperFig7MinimizedShape) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  ItemId c = db.dict.ItemByName("c");
  OutputNfa trie = BuildTrie(db, fst, db.sequences[0], c, 2);
  std::vector<Sequence> before;
  ASSERT_TRUE(trie.Language(1000, &before));
  trie.Minimize();
  EXPECT_EQ(trie.num_states(), 7u);
  EXPECT_EQ(trie.num_edges(), 10u);
  std::vector<Sequence> after;
  ASSERT_TRUE(trie.Language(1000, &after));
  EXPECT_EQ(before, after);
}

TEST(OutputNfaTest, LanguageEqualsPivotCandidates) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  for (size_t i = 0; i < db.sequences.size(); ++i) {
    for (ItemId k = 1; k <= db.dict.size(); ++k) {
      OutputNfa trie = BuildTrie(db, fst, db.sequences[i], k, 2);
      std::vector<Sequence> language;
      ASSERT_TRUE(trie.Language(100000, &language));
      EXPECT_EQ(language, PivotCandidates(db, fst, db.sequences[i], k, 2))
          << "T" << (i + 1) << " pivot " << db.dict.Name(k);
    }
  }
}

TEST(OutputNfaTest, MinimizeIsIdempotent) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  ItemId c = db.dict.ItemByName("c");
  OutputNfa trie = BuildTrie(db, fst, db.sequences[0], c, 2);
  trie.Minimize();
  size_t states = trie.num_states();
  size_t edges = trie.num_edges();
  trie.Minimize();
  EXPECT_EQ(trie.num_states(), states);
  EXPECT_EQ(trie.num_edges(), edges);
}

TEST(OutputNfaTest, InsertionOrderInvariance) {
  // Equal run sets inserted in different orders minimize to identical
  // serializations (required for shuffle aggregation).
  std::vector<std::vector<Sequence>> runs = {
      {{1}, {2, 3}, {4}},
      {{1}, {2}, {4}},
      {{1}, {5}},
  };
  OutputNfa forward;
  for (const auto& r : runs) forward.AddLabelString(r);
  OutputNfa backward;
  for (auto it = runs.rbegin(); it != runs.rend(); ++it) {
    backward.AddLabelString(*it);
  }
  forward.Minimize();
  backward.Minimize();
  EXPECT_EQ(SerializeNfa(forward), SerializeNfa(backward));
}

TEST(SerializerTest, PaperFig8Example) {
  // NFA for ρa1(T5): root -{a1}-> s1; s1 -{a1,A}-> s2 -{b}-> s3(final);
  // s1 -{b}-> s3. The paper serializes 4 transitions.
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  ItemId a1 = db.dict.ItemByName("a1");
  OutputNfa trie = BuildTrie(db, fst, db.sequences[4], a1, 2);
  trie.Minimize();
  EXPECT_EQ(trie.num_states(), 4u);
  EXPECT_EQ(trie.num_edges(), 4u);

  std::string bytes = SerializeNfa(trie);
  OutputNfa parsed = DeserializeNfa(bytes);
  std::vector<Sequence> expected_lang;
  ASSERT_TRUE(trie.Language(1000, &expected_lang));
  std::vector<Sequence> parsed_lang;
  ASSERT_TRUE(parsed.Language(1000, &parsed_lang));
  EXPECT_EQ(parsed_lang, expected_lang);
  EXPECT_EQ(expected_lang.size(), 3u);  // a1a1b, a1Ab, a1b
}

TEST(SerializerTest, RoundTripPreservesLanguageAndShape) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  for (size_t i = 0; i < db.sequences.size(); ++i) {
    for (ItemId k = 1; k <= db.dict.size(); ++k) {
      OutputNfa trie = BuildTrie(db, fst, db.sequences[i], k, 2);
      if (trie.empty()) continue;
      trie.Minimize();
      std::string bytes = SerializeNfa(trie);
      OutputNfa parsed = DeserializeNfa(bytes);
      EXPECT_EQ(parsed.num_states(), trie.num_states());
      EXPECT_EQ(parsed.num_edges(), trie.num_edges());
      std::vector<Sequence> a;
      std::vector<Sequence> b;
      ASSERT_TRUE(trie.Language(100000, &a));
      ASSERT_TRUE(parsed.Language(100000, &b));
      EXPECT_EQ(a, b);
      // Canonical re-serialization is stable.
      parsed.Minimize();
      EXPECT_EQ(SerializeNfa(parsed), bytes);
    }
  }
}

TEST(SerializerTest, RandomTriesRoundTrip) {
  std::mt19937_64 rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    OutputNfa trie;
    size_t num_runs = 1 + rng() % 8;
    for (size_t r = 0; r < num_runs; ++r) {
      std::vector<Sequence> label_string;
      size_t len = 1 + rng() % 5;
      for (size_t i = 0; i < len; ++i) {
        Sequence label;
        size_t ls = 1 + rng() % 3;
        for (size_t j = 0; j < ls; ++j) {
          label.push_back(static_cast<ItemId>(rng() % 20 + 1));
        }
        std::sort(label.begin(), label.end());
        label.erase(std::unique(label.begin(), label.end()), label.end());
        label_string.push_back(std::move(label));
      }
      trie.AddLabelString(label_string);
    }
    std::vector<Sequence> before;
    ASSERT_TRUE(trie.Language(1'000'000, &before));
    if (rng() % 2 == 0) {
      trie.Minimize();
    } else {
      trie.Canonicalize();
    }
    std::string bytes = SerializeNfa(trie);
    OutputNfa parsed = DeserializeNfa(bytes);
    std::vector<Sequence> after;
    ASSERT_TRUE(parsed.Language(1'000'000, &after));
    EXPECT_EQ(before, after) << "trial " << trial;
  }
}

TEST(SerializerTest, MalformedInputThrows) {
  EXPECT_THROW(DeserializeNfa("\xff\xff\xff"), NfaParseError);
  OutputNfa trie;
  trie.AddLabelString({{1}, {2}});
  trie.Canonicalize();
  std::string bytes = SerializeNfa(trie);
  bytes.pop_back();
  EXPECT_THROW(DeserializeNfa(bytes), NfaParseError);
  bytes = SerializeNfa(trie) + "x";
  EXPECT_THROW(DeserializeNfa(bytes), NfaParseError);
}

TEST(SerializerTest, MinimizationShrinksSerialization) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  ItemId c = db.dict.ItemByName("c");
  OutputNfa trie = BuildTrie(db, fst, db.sequences[0], c, 2);
  OutputNfa minimized = trie;
  trie.Canonicalize();
  minimized.Minimize();
  EXPECT_LT(SerializeNfa(minimized).size(), SerializeNfa(trie).size());
}

}  // namespace
}  // namespace dseq
