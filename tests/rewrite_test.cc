#include "src/dist/dseq_miner.h"

#include <gtest/gtest.h>

#include "src/core/desq_dfs.h"
#include "src/core/pivot.h"
#include "src/dict/sequence.h"
#include "src/fst/compiler.h"
#include "tests/test_util.h"

namespace dseq {
namespace {

constexpr char kPatternEx[] = ".*(A)[(.^).*]*(b).*";

TEST(RewriteTest, PaperExampleT2ForPivotA1) {
  // Paper Sec. V-B: for pivot a1, the two leading e's of T2 are irrelevant,
  // so ρa1(T2) = a1ea1eb.
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  GridOptions options;
  options.prune_sigma = 2;
  const Sequence& T2 = db.sequences[1];
  StateGrid grid = StateGrid::Build(T2, fst, db.dict, options);
  ASSERT_TRUE(grid.HasAcceptingRun());
  Sequence rewritten = RewriteForPivot(T2, grid, db.dict.ItemByName("a1"));
  EXPECT_EQ(db.FormatSequence(rewritten), "a1 e a1 e b");
}

TEST(RewriteTest, NoTrimWhenEverythingRelevant) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  GridOptions options;
  options.prune_sigma = 2;
  const Sequence& T5 = db.sequences[4];  // a1 a1 b
  StateGrid grid = StateGrid::Build(T5, fst, db.dict, options);
  Sequence rewritten = RewriteForPivot(T5, grid, db.dict.ItemByName("a1"));
  EXPECT_EQ(rewritten, T5);
}

TEST(RewriteTest, RewrittenNeverLongerThanInput) {
  SequenceDatabase db = testing::RandomDatabase(77, 8, 50, 10);
  Fst fst = CompileFst(".*(i0)[(.^).*]*(i1).*", db.dict);
  GridOptions options;
  options.prune_sigma = 2;
  for (const Sequence& T : db.sequences) {
    StateGrid grid = StateGrid::Build(T, fst, db.dict, options);
    if (!grid.HasAcceptingRun()) continue;
    for (ItemId k : FindPivotItems(grid)) {
      Sequence rewritten = RewriteForPivot(T, grid, k);
      EXPECT_LE(rewritten.size(), T.size());
      EXPECT_FALSE(rewritten.empty());
    }
  }
}

// Core soundness property (paper Sec. V-B): for every pivot k of T, mining
// ρk(T) restricted to pivot k produces exactly the pivot-k candidates of T.
class RewritePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, std::string>> {};

TEST_P(RewritePropertyTest, RewritePreservesPivotCandidates) {
  auto [seed, pattern] = GetParam();
  SequenceDatabase db = testing::RandomDatabase(seed + 500, 8, 40, 9);
  Fst fst = CompileFst(pattern, db.dict);
  for (uint64_t sigma : {1, 2}) {
    GridOptions options;
    options.prune_sigma = sigma;
    for (const Sequence& T : db.sequences) {
      StateGrid grid = StateGrid::Build(T, fst, db.dict, options);
      if (!grid.HasAcceptingRun()) continue;

      std::vector<Sequence> candidates;
      ASSERT_TRUE(EnumerateCandidates(grid, 1'000'000, &candidates));

      for (ItemId k : FindPivotItems(grid)) {
        // Expected: pivot-k candidates of the original sequence.
        std::vector<Sequence> expected;
        for (const Sequence& s : candidates) {
          if (PivotItem(s) == k) expected.push_back(s);
        }
        std::sort(expected.begin(), expected.end());

        // Actual: pivot-k candidates of the rewritten sequence.
        Sequence rewritten = RewriteForPivot(T, grid, k);
        StateGrid regrid = StateGrid::Build(rewritten, fst, db.dict, options);
        std::vector<Sequence> recand;
        ASSERT_TRUE(EnumerateCandidates(regrid, 1'000'000, &recand));
        std::vector<Sequence> actual;
        for (const Sequence& s : recand) {
          if (PivotItem(s) == k) actual.push_back(s);
        }
        std::sort(actual.begin(), actual.end());

        EXPECT_EQ(actual, expected)
            << "pattern=" << pattern << " sigma=" << sigma << " pivot=" << k
            << " T=" << db.FormatSequence(T)
            << " rewritten=" << db.FormatSequence(rewritten);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomizedRewrites, RewritePropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::ValuesIn(testing::PropertyPatterns())));

}  // namespace
}  // namespace dseq
