#include "src/core/desq_count.h"

#include <gtest/gtest.h>

#include "src/core/desq_dfs.h"
#include "src/dict/sequence.h"
#include "src/fst/compiler.h"
#include "tests/test_util.h"

namespace dseq {
namespace {

constexpr char kPatternEx[] = ".*(A)[(.^).*]*(b).*";

TEST(DesqCountTest, RunningExampleGolden) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  DesqCountOptions options;
  options.sigma = 2;
  MiningResult result = MineDesqCount(db.sequences, fst, db.dict, options);
  MiningResult expected = {
      {db.ParseSequence("a1 b"), 3},
      {db.ParseSequence("a1 a1 b"), 2},
      {db.ParseSequence("a1 A b"), 2},
  };
  Canonicalize(&expected);
  EXPECT_EQ(result, expected);
}

TEST(DesqCountTest, ParallelMatchesSerial) {
  SequenceDatabase db = testing::RandomDatabase(21, 8, 100, 8);
  Fst fst = CompileFst(".*(i0)[(.^).*]*(i1).*", db.dict);
  DesqCountOptions serial;
  serial.sigma = 2;
  DesqCountOptions parallel = serial;
  parallel.num_workers = 4;
  EXPECT_EQ(MineDesqCount(db.sequences, fst, db.dict, serial),
            MineDesqCount(db.sequences, fst, db.dict, parallel));
}

TEST(DesqCountTest, BudgetThrows) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  DesqCountOptions options;
  options.sigma = 2;
  options.candidates_per_sequence_budget = 2;
  EXPECT_THROW(MineDesqCount(db.sequences, fst, db.dict, options),
               MiningBudgetError);
}

class DesqCountPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, std::string>> {};

TEST_P(DesqCountPropertyTest, MatchesDesqDfs) {
  auto [seed, pattern] = GetParam();
  SequenceDatabase db = testing::RandomDatabase(seed + 1100, 8, 40, 8);
  Fst fst = CompileFst(pattern, db.dict);
  for (uint64_t sigma : {1, 2, 4}) {
    DesqDfsOptions dfs_options;
    dfs_options.sigma = sigma;
    DesqCountOptions count_options;
    count_options.sigma = sigma;
    count_options.num_workers = 2;
    EXPECT_EQ(MineDesqCount(db.sequences, fst, db.dict, count_options),
              MineDesqDfs(db.sequences, fst, db.dict, dfs_options))
        << "pattern=" << pattern << " sigma=" << sigma;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomizedDesqCount, DesqCountPropertyTest,
    ::testing::Combine(::testing::Values(1, 2),
                       ::testing::ValuesIn(testing::PropertyPatterns())));

}  // namespace
}  // namespace dseq
