#include "src/patex/parser.h"

#include <gtest/gtest.h>

namespace dseq {
namespace {

TEST(PatexParserTest, SingleItem) {
  auto ast = ParsePatEx("foo");
  EXPECT_EQ(ast->kind, PatEx::Kind::kItem);
  EXPECT_EQ(ast->item, "foo");
  EXPECT_FALSE(ast->generalize);
  EXPECT_FALSE(ast->exact);
}

TEST(PatexParserTest, ItemModifiers) {
  auto gen = ParsePatEx("A^");
  EXPECT_TRUE(gen->generalize);
  EXPECT_FALSE(gen->exact);

  auto exact = ParsePatEx("A=");
  EXPECT_FALSE(exact->generalize);
  EXPECT_TRUE(exact->exact);

  auto both = ParsePatEx("A^=");
  EXPECT_TRUE(both->generalize);
  EXPECT_TRUE(both->exact);
}

TEST(PatexParserTest, DotVariants) {
  auto dot = ParsePatEx(".");
  EXPECT_EQ(dot->kind, PatEx::Kind::kDot);
  EXPECT_FALSE(dot->generalize);

  auto dotgen = ParsePatEx(".^");
  EXPECT_EQ(dotgen->kind, PatEx::Kind::kDot);
  EXPECT_TRUE(dotgen->generalize);
}

TEST(PatexParserTest, Concatenation) {
  auto ast = ParsePatEx("a b c");
  ASSERT_EQ(ast->kind, PatEx::Kind::kConcat);
  ASSERT_EQ(ast->children.size(), 3u);
  EXPECT_EQ(ast->children[0]->item, "a");
  EXPECT_EQ(ast->children[2]->item, "c");
}

TEST(PatexParserTest, ConcatenationWithoutSpaces) {
  // The running example: .*(A)[(.^).*]*(b).*
  auto ast = ParsePatEx(".*(A)[(.^).*]*(b).*");
  ASSERT_EQ(ast->kind, PatEx::Kind::kConcat);
  ASSERT_EQ(ast->children.size(), 5u);
  EXPECT_EQ(ast->children[0]->kind, PatEx::Kind::kRepeat);
  EXPECT_EQ(ast->children[1]->kind, PatEx::Kind::kCapture);
  EXPECT_EQ(ast->children[2]->kind, PatEx::Kind::kRepeat);
  EXPECT_EQ(ast->children[3]->kind, PatEx::Kind::kCapture);
}

TEST(PatexParserTest, Alternation) {
  auto ast = ParsePatEx("a|b|c");
  ASSERT_EQ(ast->kind, PatEx::Kind::kAlt);
  EXPECT_EQ(ast->children.size(), 3u);
}

TEST(PatexParserTest, AlternationBindsLooserThanConcat) {
  auto ast = ParsePatEx("a b|c d");
  ASSERT_EQ(ast->kind, PatEx::Kind::kAlt);
  ASSERT_EQ(ast->children.size(), 2u);
  EXPECT_EQ(ast->children[0]->kind, PatEx::Kind::kConcat);
}

TEST(PatexParserTest, PostfixOperators) {
  auto star = ParsePatEx("a*");
  EXPECT_EQ(star->kind, PatEx::Kind::kRepeat);
  EXPECT_EQ(star->min_rep, 0);
  EXPECT_EQ(star->max_rep, -1);

  auto plus = ParsePatEx("a+");
  EXPECT_EQ(plus->min_rep, 1);
  EXPECT_EQ(plus->max_rep, -1);

  auto opt = ParsePatEx("a?");
  EXPECT_EQ(opt->min_rep, 0);
  EXPECT_EQ(opt->max_rep, 1);
}

TEST(PatexParserTest, BoundedRepetitions) {
  auto exact = ParsePatEx("a{3}");
  EXPECT_EQ(exact->min_rep, 3);
  EXPECT_EQ(exact->max_rep, 3);

  auto atleast = ParsePatEx("a{2,}");
  EXPECT_EQ(atleast->min_rep, 2);
  EXPECT_EQ(atleast->max_rep, -1);

  auto range = ParsePatEx("a{1,4}");
  EXPECT_EQ(range->min_rep, 1);
  EXPECT_EQ(range->max_rep, 4);

  auto upto = ParsePatEx("a{,4}");
  EXPECT_EQ(upto->min_rep, 0);
  EXPECT_EQ(upto->max_rep, 4);
}

TEST(PatexParserTest, StackedPostfix) {
  // NOUN+? = optional(one-or-more(NOUN)), used by constraint N1.
  auto ast = ParsePatEx("NOUN+?");
  ASSERT_EQ(ast->kind, PatEx::Kind::kRepeat);
  EXPECT_EQ(ast->min_rep, 0);
  EXPECT_EQ(ast->max_rep, 1);
  ASSERT_EQ(ast->children[0]->kind, PatEx::Kind::kRepeat);
  EXPECT_EQ(ast->children[0]->min_rep, 1);
}

TEST(PatexParserTest, CaptureGroups) {
  auto ast = ParsePatEx("(a b)");
  ASSERT_EQ(ast->kind, PatEx::Kind::kCapture);
  EXPECT_EQ(ast->children[0]->kind, PatEx::Kind::kConcat);
}

TEST(PatexParserTest, BracketsGroupWithoutCapture) {
  auto ast = ParsePatEx("[a b]");
  EXPECT_EQ(ast->kind, PatEx::Kind::kConcat);
}

TEST(PatexParserTest, PaperConstraints) {
  // All Table III constraint expressions must parse.
  const char* expressions[] = {
      "ENTITY (VERB+ NOUN+? PREP?) ENTITY",
      "(ENTITY^ VERB+ NOUN+? PREP? ENTITY^)",
      "(ENTITY^ be^=) DET? (ADV? ADJ? NOUN)",
      "(.^){3} NOUN",
      "([.^. .]|[. .^.]|[. . .^])",
      "(Electr^)[.{0,2}(Electr^)]{1,4}",
      "(Book)[.{0,2}(Book)]{1,4}",
      "DigitalCamera[.{0,3}(.^)]{1,4}",
      "(MusicInstr^)[.{0,2}(MusicInstr^)]{1,4}",
      "(.)[.*(.)]{,4}",
      "(.)[.{0,1}(.)]{1,4}",
      "(.^)[.{0,1}(.^)]{1,4}",
  };
  for (const char* e : expressions) {
    EXPECT_NO_THROW(ParsePatEx(e)) << e;
  }
}

TEST(PatexParserTest, QuotedItems) {
  auto ast = ParsePatEx("\"item with space\"*");
  ASSERT_EQ(ast->kind, PatEx::Kind::kRepeat);
  EXPECT_EQ(ast->children[0]->item, "item with space");
}

TEST(PatexParserTest, Errors) {
  EXPECT_THROW(ParsePatEx(""), PatexParseError);
  EXPECT_THROW(ParsePatEx("(a"), PatexParseError);
  EXPECT_THROW(ParsePatEx("a)"), PatexParseError);
  EXPECT_THROW(ParsePatEx("[a"), PatexParseError);
  EXPECT_THROW(ParsePatEx("a{}"), PatexParseError);
  EXPECT_THROW(ParsePatEx("a{4,2}"), PatexParseError);
  EXPECT_THROW(ParsePatEx("|a"), PatexParseError);
  EXPECT_THROW(ParsePatEx("*"), PatexParseError);
  EXPECT_THROW(ParsePatEx("\"unterminated"), PatexParseError);
}

TEST(PatexParserTest, ErrorPositionReported) {
  try {
    ParsePatEx("abc {");
    FAIL() << "expected PatexParseError";
  } catch (const PatexParseError& e) {
    EXPECT_GE(e.position(), 4u);
  }
}

TEST(PatexParserTest, CloneProducesEqualTree) {
  auto ast = ParsePatEx(".*(A)[(.^).*]*(b).*");
  auto clone = ast->Clone();
  EXPECT_EQ(ast->ToString(), clone->ToString());
}

TEST(PatexParserTest, ToStringRoundTrips) {
  const char* expressions[] = {
      ".*(A)[(.^).*]*(b).*",
      "(ENTITY^ be^=) DET? (ADV? ADJ? NOUN)",
      "(.)[.{0,2}(.)]{1,4}",
  };
  for (const char* e : expressions) {
    auto ast = ParsePatEx(e);
    auto reparsed = ParsePatEx(ast->ToString());
    EXPECT_EQ(ast->ToString(), reparsed->ToString()) << e;
  }
}

}  // namespace
}  // namespace dseq
