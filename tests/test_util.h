// Shared helpers for dseq tests: random databases, a brute-force reference
// miner, and result formatting.
#ifndef DSEQ_TESTS_TEST_UTIL_H_
#define DSEQ_TESTS_TEST_UTIL_H_

#include <dirent.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <initializer_list>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/candidates.h"
#include "src/core/grid.h"
#include "src/core/mining.h"
#include "src/dict/sequence.h"
#include "src/fst/compiler.h"

namespace dseq {
namespace testing {

/// Runs `fn(workers)` once per worker count, with a SCOPED_TRACE naming the
/// count — the shared worker sweep of the cross-check, partition-stats, and
/// property tests.
template <typename Fn>
inline void ForEachWorkerCount(const Fn& fn,
                               std::initializer_list<int> counts = {1, 2, 4,
                                                                    8}) {
  for (int workers : counts) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    fn(workers);
  }
}

/// Iteration count of the randomized property tests: `fallback` by default,
/// overridden by DSEQ_PROPERTY_ITERATIONS (the nightly CI job raises it).
inline int PropertyIterations(int fallback) {
  const char* env = std::getenv("DSEQ_PROPERTY_ITERATIONS");
  if (env == nullptr) return fallback;
  int value = std::atoi(env);
  return value > 0 ? value : fallback;
}

/// Memory budget of the out-of-core tests: `fallback` by default,
/// overridden by DSEQ_SPILL_TEST_BUDGET (the CI spill group lowers it to
/// squeeze the budget and force more spill runs and merge passes).
inline uint64_t SpillTestBudget(uint64_t fallback) {
  const char* env = std::getenv("DSEQ_SPILL_TEST_BUDGET");
  if (env == nullptr) return fallback;
  long long value = std::atoll(env);
  return value > 0 ? static_cast<uint64_t>(value) : fallback;
}

/// Entries in `dir` other than "." and "..". 0 for an unreadable dir.
inline size_t CountDirEntries(const std::string& dir) {
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return 0;
  size_t count = 0;
  while (dirent* entry = readdir(d)) {
    std::string name = entry->d_name;
    if (name != "." && name != "..") ++count;
  }
  closedir(d);
  return count;
}

/// A fresh temp directory (mkdtemp under the gtest temp dir), removed on
/// destruction with an EXPECT that it was left empty — the spill-file RAII
/// hygiene contract of the out-of-core tests.
class ScopedTempDir {
 public:
  ScopedTempDir() {
    std::string templ = ::testing::TempDir() + "dseq_spill_XXXXXX";
    std::vector<char> buf(templ.begin(), templ.end());
    buf.push_back('\0');
    char* made = mkdtemp(buf.data());
    EXPECT_NE(made, nullptr);
    path_ = made != nullptr ? made : "";
  }
  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;
  ~ScopedTempDir() {
    if (path_.empty()) return;
    EXPECT_EQ(CountDirEntries(path_), 0u) << "files leaked in " << path_;
    rmdir(path_.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Builds a random sequence database over `num_items` items named
/// "i0".."iN" with a random DAG hierarchy (parents always have smaller
/// insertion index, so the hierarchy is acyclic), recoded by frequency.
inline SequenceDatabase RandomDatabase(uint64_t seed, size_t num_items,
                                       size_t num_sequences, size_t max_length) {
  std::mt19937_64 rng(seed);
  DictionaryBuilder builder;
  std::vector<ItemId> items;
  for (size_t i = 0; i < num_items; ++i) {
    items.push_back(builder.AddItem("i" + std::to_string(i)));
  }
  for (size_t i = 1; i < num_items; ++i) {
    size_t num_parents = rng() % 3;  // 0, 1, or 2 parents
    for (size_t p = 0; p < num_parents; ++p) {
      builder.AddParent(items[i], items[rng() % i]);
    }
  }
  SequenceDatabase db;
  db.dict = builder.Build();
  for (size_t s = 0; s < num_sequences; ++s) {
    size_t len = 1 + rng() % max_length;
    Sequence seq;
    for (size_t j = 0; j < len; ++j) {
      seq.push_back(items[rng() % num_items]);
    }
    db.sequences.push_back(std::move(seq));
  }
  db.Recode();
  return db;
}

/// Brute-force reference miner: enumerates Gσπ(T) per sequence via the grid
/// and counts distinct-sequence support. Independent of the pattern-growth
/// code paths.
inline MiningResult BruteForceMine(const std::vector<Sequence>& db,
                                   const Fst& fst, const Dictionary& dict,
                                   uint64_t sigma) {
  struct SeqHash {
    size_t operator()(const Sequence& s) const {
      size_t h = 1469598103934665603ULL;
      for (ItemId w : s) h = (h ^ w) * 1099511628211ULL;
      return h;
    }
  };
  std::unordered_map<Sequence, uint64_t, SeqHash> counts;
  GridOptions options;
  options.prune_sigma = sigma;
  for (const Sequence& T : db) {
    StateGrid grid = StateGrid::Build(T, fst, dict, options);
    if (!grid.HasAcceptingRun()) continue;
    std::vector<Sequence> candidates;
    EnumerateCandidates(grid, 10'000'000, &candidates);
    for (const Sequence& s : candidates) counts[s] += 1;
  }
  MiningResult result;
  for (auto& [pattern, count] : counts) {
    if (count >= sigma) result.push_back(PatternCount{pattern, count});
  }
  Canonicalize(&result);
  return result;
}

/// Formats a mining result for readable gtest failure messages.
inline std::string Format(const MiningResult& result,
                          const Dictionary& dict) {
  std::string out;
  for (const PatternCount& pc : result) {
    for (size_t i = 0; i < pc.pattern.size(); ++i) {
      if (i > 0) out += ' ';
      out += dict.Name(pc.pattern[i]);
    }
    out += ":" + std::to_string(pc.frequency) + "\n";
  }
  return out;
}

/// Pattern expressions exercising captures, hierarchies, generalizations,
/// alternation, bounded gaps, and anchored/unanchored forms over items
/// i0..i5 (valid for RandomDatabase with num_items >= 6).
inline std::vector<std::string> PropertyPatterns() {
  return {
      ".*(i0).*",
      ".*(.^).*",
      ".*(.)[.*(.)]{0,2}.*",
      ".*(.^)[.{0,1}(.^)]{1,2}.*",
      ".*(i0)[(.^).*]*(i1).*",
      ".*[(i0)|(i1^)].*",
      "[.*(i0).*]|[.*(i1)(i2).*]",
      ".*(i0=)(.).*",
      ".*(i0^=)(i1?).*",
      "(.^){2}.*",
      ".*(i2^)[.{0,2}(i2^)]{1,3}.*",
      "(i0|i1|i2)(.*)",
      ".*((i0)|(i1^))(i2?).*",
      ".*[(i0)(i1)]{1,2}.*",
      ".*(i3)[(i4^)|.]*(i5).*",
      "[.{1,3}](i0^).*",
      ".*(i0^=)[.*(i1^=)]{0,2}.*",
      "(.)(.).*",
  };
}

}  // namespace testing
}  // namespace dseq

#endif  // DSEQ_TESTS_TEST_UTIL_H_
