#include "src/io/dataset_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/core/desq_dfs.h"
#include "src/datagen/market_baskets.h"
#include "src/fst/compiler.h"
#include "tests/test_util.h"

namespace dseq {
namespace {

constexpr char kSequences[] =
    "a1 c d c b\n"
    "e e a1 e a1 e b\n"
    "# a comment line\n"
    "c d c b\n"
    "a2 d b\n"
    "\n"
    "a1 a1 b\n";
constexpr char kHierarchy[] =
    "a1 A\n"
    "a2 A\n";

TEST(TextIoTest, ReadsRunningExample) {
  std::istringstream sequences(kSequences);
  std::istringstream hierarchy(kHierarchy);
  SequenceDatabase db = ReadTextDatabase(sequences, &hierarchy);
  EXPECT_EQ(db.size(), 5u);
  EXPECT_EQ(db.dict.size(), 7u);
  // Recoding puts b first (most frequent).
  EXPECT_EQ(db.dict.ItemByName("b"), 1u);
  EXPECT_TRUE(db.dict.IsAncestorOrSelf(db.dict.ItemByName("A"),
                                       db.dict.ItemByName("a1")));
  EXPECT_EQ(db.FormatSequence(db.sequences[0]), "a1 c d c b");
}

TEST(TextIoTest, MinedResultsMatchBuiltInExample) {
  std::istringstream sequences(kSequences);
  std::istringstream hierarchy(kHierarchy);
  SequenceDatabase db = ReadTextDatabase(sequences, &hierarchy);
  Fst fst = CompileFst(".*(A)[(.^).*]*(b).*", db.dict);
  DesqDfsOptions options;
  options.sigma = 2;
  MiningResult result = MineDesqDfs(db.sequences, fst, db.dict, options);
  ASSERT_EQ(result.size(), 3u);
}

TEST(TextIoTest, MalformedHierarchyThrows) {
  std::istringstream sequences("a b\n");
  std::istringstream hierarchy("childonly\n");
  EXPECT_THROW(ReadTextDatabase(sequences, &hierarchy), DatasetIoError);
}

TEST(TextIoTest, MissingFileThrows) {
  EXPECT_THROW(ReadTextDatabaseFromFiles("/nonexistent/path.txt", ""),
               DatasetIoError);
}

TEST(TextIoTest, WriteReadRoundTrip) {
  SequenceDatabase db = MakeRunningExample();
  std::ostringstream seq_out;
  std::ostringstream hier_out;
  WriteTextDatabase(db, seq_out);
  WriteTextHierarchy(db.dict, hier_out);

  std::istringstream seq_in(seq_out.str());
  std::istringstream hier_in(hier_out.str());
  SequenceDatabase reloaded = ReadTextDatabase(seq_in, &hier_in);
  ASSERT_EQ(reloaded.size(), db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(reloaded.FormatSequence(reloaded.sequences[i]),
              db.FormatSequence(db.sequences[i]));
  }
}

TEST(BinaryIoTest, RoundTripRunningExample) {
  SequenceDatabase db = MakeRunningExample();
  std::ostringstream out;
  WriteBinaryDatabase(db, out);
  std::istringstream in(out.str());
  SequenceDatabase reloaded = ReadBinaryDatabase(in);

  ASSERT_EQ(reloaded.size(), db.size());
  ASSERT_EQ(reloaded.dict.size(), db.dict.size());
  EXPECT_EQ(reloaded.sequences, db.sequences);
  for (ItemId w = 1; w <= db.dict.size(); ++w) {
    EXPECT_EQ(reloaded.dict.Name(w), db.dict.Name(w));
    EXPECT_EQ(reloaded.dict.Parents(w), db.dict.Parents(w));
    EXPECT_EQ(reloaded.dict.DocFrequency(w), db.dict.DocFrequency(w));
  }
}

TEST(BinaryIoTest, RoundTripDagHierarchy) {
  MarketBasketOptions options;
  options.num_customers = 300;
  SequenceDatabase db = GenerateMarketBaskets(options);
  std::ostringstream out;
  WriteBinaryDatabase(db, out);
  std::istringstream in(out.str());
  SequenceDatabase reloaded = ReadBinaryDatabase(in);
  EXPECT_EQ(reloaded.sequences, db.sequences);
  EXPECT_EQ(reloaded.dict.IsForest(), db.dict.IsForest());
  EXPECT_EQ(reloaded.dict.MeanAncestors(), db.dict.MeanAncestors());
}

TEST(BinaryIoTest, MiningEquivalentAfterRoundTrip) {
  SequenceDatabase db = testing::RandomDatabase(5, 8, 40, 8);
  std::ostringstream out;
  WriteBinaryDatabase(db, out);
  std::istringstream in(out.str());
  SequenceDatabase reloaded = ReadBinaryDatabase(in);

  Fst fst1 = CompileFst(".*(i0)[(.^).*]*(i1).*", db.dict);
  Fst fst2 = CompileFst(".*(i0)[(.^).*]*(i1).*", reloaded.dict);
  DesqDfsOptions options;
  options.sigma = 2;
  EXPECT_EQ(MineDesqDfs(db.sequences, fst1, db.dict, options),
            MineDesqDfs(reloaded.sequences, fst2, reloaded.dict, options));
}

TEST(BinaryIoTest, BadMagicThrows) {
  std::istringstream in("NOTDSEQ");
  EXPECT_THROW(ReadBinaryDatabase(in), DatasetIoError);
}

TEST(BinaryIoTest, TruncatedThrows) {
  SequenceDatabase db = MakeRunningExample();
  std::ostringstream out;
  WriteBinaryDatabase(db, out);
  std::string data = out.str();
  for (size_t cut : {data.size() - 1, data.size() / 2, size_t{8}}) {
    std::istringstream in(data.substr(0, cut));
    EXPECT_THROW(ReadBinaryDatabase(in), DatasetIoError) << "cut " << cut;
  }
}

TEST(BinaryIoTest, TrailingBytesThrow) {
  SequenceDatabase db = MakeRunningExample();
  std::ostringstream out;
  WriteBinaryDatabase(db, out);
  std::istringstream in(out.str() + "x");
  EXPECT_THROW(ReadBinaryDatabase(in), DatasetIoError);
}

TEST(BinaryIoTest, FileRoundTrip) {
  SequenceDatabase db = MakeRunningExample();
  std::string path = ::testing::TempDir() + "/dseq_io_test.bin";
  WriteBinaryDatabaseToFile(db, path);
  SequenceDatabase reloaded = ReadBinaryDatabaseFromFile(path);
  EXPECT_EQ(reloaded.sequences, db.sequences);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dseq
