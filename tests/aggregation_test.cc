// Tests for weighted mining and shuffle-side aggregation of identical
// rewritten sequences (the D-SEQ aggregation extension) and weighted
// DESQ-DFS.
#include <gtest/gtest.h>

#include "src/core/desq_dfs.h"
#include "src/dict/sequence.h"
#include "src/dist/dseq_miner.h"
#include "src/fst/compiler.h"
#include "tests/test_util.h"

namespace dseq {
namespace {

constexpr char kPatternEx[] = ".*(A)[(.^).*]*(b).*";

TEST(WeightedDesqDfsTest, WeightsMultiplySupport) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  GridOptions grid_options;
  grid_options.prune_sigma = 2;

  // T5 = a1 a1 b with weight 3 is equivalent to three copies of T5.
  std::vector<StateGrid> grids;
  grids.push_back(
      StateGrid::Build(db.sequences[4], fst, db.dict, grid_options));
  DesqDfsOptions options;
  options.sigma = 3;
  MiningResult weighted = MineDesqDfsGrids(grids, {3}, options);

  std::vector<Sequence> copies(3, db.sequences[4]);
  MiningResult expected = MineDesqDfs(copies, fst, db.dict, options);
  EXPECT_EQ(weighted, expected);
  EXPECT_FALSE(weighted.empty());
}

TEST(WeightedDesqDfsTest, UnitWeightsMatchUnweighted) {
  SequenceDatabase db = MakeRunningExample();
  Fst fst = CompileFst(kPatternEx, db.dict);
  GridOptions grid_options;
  grid_options.prune_sigma = 2;
  std::vector<StateGrid> grids;
  for (const Sequence& T : db.sequences) {
    grids.push_back(StateGrid::Build(T, fst, db.dict, grid_options));
  }
  DesqDfsOptions options;
  options.sigma = 2;
  std::vector<uint64_t> ones(grids.size(), 1);
  EXPECT_EQ(MineDesqDfsGrids(grids, ones, options),
            MineDesqDfsGrids(grids, options));
}

TEST(DSeqAggregationTest, ResultsUnchanged) {
  // A database with many duplicated sequences: aggregation must not change
  // results but must shrink the shuffle.
  SequenceDatabase base = MakeRunningExample();
  SequenceDatabase db;
  db.dict = base.dict;
  for (int i = 0; i < 40; ++i) {
    for (const Sequence& T : base.sequences) db.sequences.push_back(T);
  }
  db.Recode();  // frequencies now reflect the repeated database
  Fst fst = CompileFst(kPatternEx, db.dict);

  DSeqOptions plain;
  plain.sigma = 40;
  DSeqOptions aggregated = plain;
  aggregated.aggregate_sequences = true;

  DistributedResult r1 = MineDSeq(db.sequences, fst, db.dict, plain);
  DistributedResult r2 = MineDSeq(db.sequences, fst, db.dict, aggregated);
  EXPECT_EQ(r1.patterns, r2.patterns);
  EXPECT_FALSE(r1.patterns.empty());
  EXPECT_LT(r2.metrics.shuffle_records, r1.metrics.shuffle_records);
  EXPECT_LT(r2.metrics.shuffle_bytes, r1.metrics.shuffle_bytes);
}

class DSeqAggregationPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, std::string>> {};

TEST_P(DSeqAggregationPropertyTest, MatchesPlainDSeq) {
  auto [seed, pattern] = GetParam();
  SequenceDatabase db = testing::RandomDatabase(seed + 1300, 6, 60, 6);
  Fst fst = CompileFst(pattern, db.dict);
  for (uint64_t sigma : {2, 3}) {
    DSeqOptions plain;
    plain.sigma = sigma;
    plain.num_map_workers = 2;
    plain.num_reduce_workers = 2;
    DSeqOptions aggregated = plain;
    aggregated.aggregate_sequences = true;
    EXPECT_EQ(MineDSeq(db.sequences, fst, db.dict, aggregated).patterns,
              MineDSeq(db.sequences, fst, db.dict, plain).patterns)
        << "pattern=" << pattern << " sigma=" << sigma;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomizedDSeqAggregation, DSeqAggregationPropertyTest,
    ::testing::Combine(::testing::Values(1, 2),
                       ::testing::ValuesIn(testing::PropertyPatterns())));

}  // namespace
}  // namespace dseq
