#include "src/dict/dictionary.h"

#include <gtest/gtest.h>

#include <random>

#include "src/dict/sequence.h"

namespace dseq {
namespace {

TEST(DictionaryBuilderTest, AddAndLookup) {
  DictionaryBuilder builder;
  ItemId a = builder.AddItem("a");
  ItemId b = builder.AddItem("b");
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(builder.GetOrAddItem("a"), a);
  EXPECT_EQ(builder.GetOrAddItem("c"), 3u);
}

TEST(DictionaryBuilderTest, DuplicateNameThrows) {
  DictionaryBuilder builder;
  builder.AddItem("a");
  EXPECT_THROW(builder.AddItem("a"), std::invalid_argument);
}

TEST(DictionaryBuilderTest, SelfLoopThrows) {
  DictionaryBuilder builder;
  ItemId a = builder.AddItem("a");
  EXPECT_THROW(builder.AddParent(a, a), std::invalid_argument);
}

TEST(DictionaryBuilderTest, CycleDetected) {
  DictionaryBuilder builder;
  ItemId a = builder.AddItem("a");
  ItemId b = builder.AddItem("b");
  ItemId c = builder.AddItem("c");
  builder.AddParent(a, b);
  builder.AddParent(b, c);
  builder.AddParent(c, a);
  EXPECT_THROW(builder.Build(), std::invalid_argument);
}

TEST(DictionaryTest, AncestorsIncludeSelfAndAreSorted) {
  DictionaryBuilder builder;
  ItemId a1 = builder.AddItem("a1");
  ItemId a = builder.AddItem("A");
  ItemId root = builder.AddItem("ROOT");
  builder.AddParent(a1, a);
  builder.AddParent(a, root);
  Dictionary dict = builder.Build();

  EXPECT_EQ(dict.Ancestors(a1), (std::vector<ItemId>{a1, a, root}));
  EXPECT_EQ(dict.Ancestors(a), (std::vector<ItemId>{a, root}));
  EXPECT_EQ(dict.Ancestors(root), (std::vector<ItemId>{root}));
}

TEST(DictionaryTest, DagAncestorsDeduplicated) {
  // Diamond: x -> {p, q} -> root.
  DictionaryBuilder builder;
  ItemId x = builder.AddItem("x");
  ItemId p = builder.AddItem("p");
  ItemId q = builder.AddItem("q");
  ItemId root = builder.AddItem("root");
  builder.AddParent(x, p);
  builder.AddParent(x, q);
  builder.AddParent(p, root);
  builder.AddParent(q, root);
  Dictionary dict = builder.Build();

  EXPECT_EQ(dict.Ancestors(x), (std::vector<ItemId>{x, p, q, root}));
  EXPECT_TRUE(dict.IsAncestorOrSelf(root, x));
  EXPECT_TRUE(dict.IsAncestorOrSelf(x, x));
  EXPECT_FALSE(dict.IsAncestorOrSelf(x, p));
}

TEST(DictionaryTest, DescendantsOf) {
  DictionaryBuilder builder;
  ItemId a1 = builder.AddItem("a1");
  ItemId a2 = builder.AddItem("a2");
  ItemId a = builder.AddItem("A");
  ItemId b = builder.AddItem("b");
  builder.AddParent(a1, a);
  builder.AddParent(a2, a);
  Dictionary dict = builder.Build();

  EXPECT_EQ(dict.DescendantsOf(a), (std::vector<ItemId>{a1, a2, a}));
  EXPECT_EQ(dict.DescendantsOf(b), (std::vector<ItemId>{b}));
}

TEST(DictionaryTest, DocFrequenciesCountAncestorsOncePerSequence) {
  DictionaryBuilder builder;
  ItemId a1 = builder.AddItem("a1");
  ItemId a = builder.AddItem("A");
  builder.AddParent(a1, a);
  Dictionary dict = builder.Build();

  std::vector<Sequence> db = {{a1, a1}, {a1}, {a}};
  dict.ComputeDocFrequencies(db);
  EXPECT_EQ(dict.DocFrequency(a1), 2u);  // sequences 0 and 1
  EXPECT_EQ(dict.DocFrequency(a), 3u);   // all three
  EXPECT_EQ(dict.CollectionFrequency(a1), 3u);
  EXPECT_EQ(dict.CollectionFrequency(a), 4u);
}

TEST(DictionaryTest, ParallelFrequenciesMatchSerial) {
  DictionaryBuilder builder;
  std::vector<ItemId> items;
  for (int i = 0; i < 20; ++i) {
    items.push_back(builder.AddItem("w" + std::to_string(i)));
  }
  for (int i = 1; i < 20; ++i) builder.AddParent(items[i], items[i / 2]);
  Dictionary dict = builder.Build();
  std::vector<Sequence> db;
  std::mt19937_64 rng(5);
  for (int s = 0; s < 500; ++s) {
    Sequence seq;
    for (int j = 0; j < 10; ++j) seq.push_back(items[rng() % 20]);
    db.push_back(seq);
  }
  Dictionary serial = dict;
  Dictionary parallel = dict;
  serial.ComputeDocFrequencies(db, 1);
  parallel.ComputeDocFrequencies(db, 4);
  for (ItemId w = 1; w <= dict.size(); ++w) {
    EXPECT_EQ(serial.DocFrequency(w), parallel.DocFrequency(w));
    EXPECT_EQ(serial.CollectionFrequency(w), parallel.CollectionFrequency(w));
  }
}

TEST(DictionaryTest, RecodeOrdersByDescendingFrequency) {
  SequenceDatabase db = MakeRunningExample();
  const Dictionary& dict = db.dict;
  // Paper Fig. 2c: f(b)=5, f(A)=4, f(d)=3, f(a1)=3, f(c)=2, f(e)=1, f(a2)=1.
  EXPECT_EQ(dict.ItemByName("b"), 1u);
  EXPECT_EQ(dict.ItemByName("A"), 2u);
  EXPECT_EQ(dict.ItemByName("d"), 3u);
  EXPECT_EQ(dict.ItemByName("a1"), 4u);
  EXPECT_EQ(dict.ItemByName("c"), 5u);
  EXPECT_EQ(dict.ItemByName("e"), 6u);
  EXPECT_EQ(dict.ItemByName("a2"), 7u);

  EXPECT_EQ(dict.DocFrequency(dict.ItemByName("b")), 5u);
  EXPECT_EQ(dict.DocFrequency(dict.ItemByName("A")), 4u);
  EXPECT_EQ(dict.DocFrequency(dict.ItemByName("a1")), 3u);
  EXPECT_EQ(dict.DocFrequency(dict.ItemByName("a2")), 1u);
}

TEST(DictionaryTest, RecodePreservesHierarchy) {
  SequenceDatabase db = MakeRunningExample();
  const Dictionary& dict = db.dict;
  ItemId a1 = dict.ItemByName("a1");
  ItemId a2 = dict.ItemByName("a2");
  ItemId a = dict.ItemByName("A");
  EXPECT_TRUE(dict.IsAncestorOrSelf(a, a1));
  EXPECT_TRUE(dict.IsAncestorOrSelf(a, a2));
  EXPECT_FALSE(dict.IsAncestorOrSelf(a1, a2));
  EXPECT_EQ(dict.Ancestors(a1), (std::vector<ItemId>{a, a1}));
}

TEST(DictionaryTest, RecodeRewritesSequences) {
  SequenceDatabase db = MakeRunningExample();
  // T1 = a1 c d c b.
  EXPECT_EQ(db.FormatSequence(db.sequences[0]), "a1 c d c b");
  EXPECT_EQ(db.FormatSequence(db.sequences[1]), "e e a1 e a1 e b");
}

TEST(DictionaryTest, FrequentItems) {
  SequenceDatabase db = MakeRunningExample();
  std::vector<ItemId> flist = db.dict.FrequentItems(2);
  // b, A, d, a1, c are frequent at sigma=2; e, a2 are not.
  EXPECT_EQ(flist.size(), 5u);
  EXPECT_EQ(flist.back(), db.dict.ItemByName("c"));
}

TEST(DictionaryTest, ForestDetection) {
  SequenceDatabase db = MakeRunningExample();
  EXPECT_TRUE(db.dict.IsForest());

  DictionaryBuilder builder;
  ItemId x = builder.AddItem("x");
  ItemId p = builder.AddItem("p");
  ItemId q = builder.AddItem("q");
  builder.AddParent(x, p);
  builder.AddParent(x, q);
  EXPECT_FALSE(builder.Build().IsForest());
}

TEST(DictionaryTest, HierarchyStats) {
  SequenceDatabase db = MakeRunningExample();
  EXPECT_EQ(db.dict.MaxAncestors(), 1u);  // a1 -> A
  EXPECT_NEAR(db.dict.MeanAncestors(), 2.0 / 7.0, 1e-9);
}

TEST(SequenceDatabaseTest, Stats) {
  SequenceDatabase db = MakeRunningExample();
  EXPECT_EQ(db.size(), 5u);
  EXPECT_EQ(db.TotalItems(), 22u);
  EXPECT_EQ(db.MaxSequenceLength(), 7u);
  EXPECT_NEAR(db.MeanSequenceLength(), 22.0 / 5.0, 1e-9);
}

TEST(SequenceDatabaseTest, ParseSequence) {
  SequenceDatabase db = MakeRunningExample();
  Sequence t5 = db.ParseSequence("a1 a1 b");
  EXPECT_EQ(t5, db.sequences[4]);
  EXPECT_THROW(db.ParseSequence("a1 nosuch"), std::invalid_argument);
}

}  // namespace
}  // namespace dseq
