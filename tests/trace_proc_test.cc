// Cross-process timeline merge: a proc-backend round run with tracing on
// must surface spans from the coordinator *and* from at least two distinct
// forked worker ordinals in one merged trace, ship worker-side metric
// observations through kTrace frames, and leave the mined results
// byte-identical to an untraced local run.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/dist/dseq_miner.h"
#include "src/fst/compiler.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "tests/test_util.h"

namespace dseq {
namespace {

class TraceProcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::ResetTraceForTest();
    obs::ResetMetricsForTest();
    obs::SetEnabled(true);
  }
  void TearDown() override {
    obs::SetEnabled(false);
    obs::ResetTraceForTest();
    obs::ResetMetricsForTest();
  }
};

TEST_F(TraceProcTest, ProcRoundMergesCoordinatorAndWorkerSpans) {
  SequenceDatabase db = testing::RandomDatabase(4200, 7, 50, 8);
  Fst fst = CompileFst(".*(.)[.*(.)]{0,2}.*", db.dict);

  DSeqOptions options;
  options.sigma = 2;
  options.num_map_workers = 3;
  options.num_reduce_workers = 3;

  options.backend = DataflowBackend::kLocal;
  obs::SetEnabled(false);  // reference run: untraced local
  DistributedResult local = MineDSeq(db.sequences, fst, db.dict, options);
  obs::SetEnabled(true);

  options.backend = DataflowBackend::kProc;
  DistributedResult proc = MineDSeq(db.sequences, fst, db.dict, options);

  // Tracing must observe, never perturb: traced proc == untraced local.
  EXPECT_EQ(proc.patterns, local.patterns);

  std::vector<obs::TraceEvent> events = obs::SnapshotTrace();
  ASSERT_FALSE(events.empty());
  std::set<int> worker_ordinals;
  bool saw_coordinator_span = false;
  bool saw_worker_map_task = false;
  for (const obs::TraceEvent& ev : events) {
    if (ev.process_ordinal >= 0) worker_ordinals.insert(ev.process_ordinal);
    if (ev.process_ordinal < 0 && ev.category == "proc") {
      saw_coordinator_span = true;
    }
    if (ev.category == "worker" && ev.name == "map_task") {
      saw_worker_map_task = true;
    }
  }
  // The merged timeline carries the coordinator's orchestration spans plus
  // task spans shipped back by at least two distinct forked workers.
  EXPECT_TRUE(saw_coordinator_span);
  EXPECT_TRUE(saw_worker_map_task);
  EXPECT_GE(worker_ordinals.size(), 2u)
      << "expected spans from >=2 distinct worker ordinals";

  // Worker-side hot-path observations crossed the process boundary: the
  // shuffle-record histogram (observed only inside map shards, which run in
  // the forked workers under kProc) matches the round's record count.
  EXPECT_EQ(obs::GetHistogram("shuffle.record_bytes").TotalCount(),
            proc.metrics.shuffle_records);

  // The Chrome export gives each seen worker its own pid lane.
  std::string json = obs::ChromeTraceJson();
  EXPECT_NE(json.find("\"name\":\"coordinator\""), std::string::npos);
  for (int ordinal : worker_ordinals) {
    std::string name = "\"name\":\"worker " + std::to_string(ordinal) + "\"";
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }
}

TEST_F(TraceProcTest, DisabledTracingLeavesProcRoundSilent) {
  obs::SetEnabled(false);
  SequenceDatabase db = testing::RandomDatabase(600, 6, 30, 8);
  Fst fst = CompileFst(".*(.).*", db.dict);
  DSeqOptions options;
  options.sigma = 2;
  options.num_map_workers = 2;
  options.num_reduce_workers = 2;
  options.backend = DataflowBackend::kProc;
  DistributedResult result = MineDSeq(db.sequences, fst, db.dict, options);
  EXPECT_FALSE(result.patterns.empty());
  EXPECT_TRUE(obs::SnapshotTrace().empty());
  EXPECT_EQ(obs::GetHistogram("shuffle.record_bytes").TotalCount(), 0u);
}

}  // namespace
}  // namespace dseq
