// Concurrency stress tests, written for TSan (the CI `thread` sanitizer job
// runs the engine/property/spill groups; this suite is its dedicated
// hammer). Each test drives a shared-state hot spot from many threads at
// once: the ParallelWorkers/ParallelShards thread pool, concurrent
// ShuffleBuffer arena writes against the process-wide live-bytes gauge,
// MemoryBudget charge/release contention, and budget-contended spill where
// many map workers fight over one tiny budget and spill concurrently.
//
// The assertions are deliberately coarse (counters add up, gauge returns to
// baseline, spilled results byte-identical) — the real assertions are the
// ones TSan plants under every load and store.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <random>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/dataflow/engine.h"
#include "src/dataflow/shuffle_buffer.h"
#include "src/spill/memory_budget.h"
#include "src/util/sync.h"
#include "src/util/thread_pool.h"
#include "src/util/varint.h"
#include "tests/test_util.h"

namespace dseq {
namespace {

using GroupMap = std::map<std::string, std::vector<std::string>>;

// Iteration scale: kept small for PR runs, raised in dedicated stress runs
// via the same env knob the property tests use.
int StressIterations(int fallback) {
  return testing::PropertyIterations(fallback);
}

// --- ThreadPool -------------------------------------------------------------

TEST(ThreadPoolStressTest, RepeatedParallelWorkersRoundsCountExactly) {
  const int rounds = StressIterations(50);
  for (int round = 0; round < rounds; ++round) {
    std::atomic<int> calls{0};
    std::atomic<uint64_t> id_bits{0};
    ParallelWorkers(8, [&](int w) {
      calls.fetch_add(1, std::memory_order_relaxed);
      id_bits.fetch_or(uint64_t{1} << w, std::memory_order_relaxed);
    });
    ASSERT_EQ(calls.load(), 8);
    ASSERT_EQ(id_bits.load(), 0xffu);  // every worker id ran exactly once
  }
}

TEST(ThreadPoolStressTest, ParallelShardsCoversEveryItemOnce) {
  const int rounds = StressIterations(20);
  const size_t num_items = 1000;
  for (int round = 0; round < rounds; ++round) {
    std::vector<std::atomic<int>> hits(num_items);
    ParallelShards(num_items, 8, [&](int /*worker*/, size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (size_t i = 0; i < num_items; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "item " << i;
    }
  }
}

TEST(ThreadPoolStressTest, ConcurrentThrowersDoNotRaceTheErrorSlot) {
  // Several workers throw at once: exactly one exception must surface and
  // the rest be swallowed without touching freed state (the error slot is
  // mutex-guarded — TSan checks that claim).
  const int rounds = StressIterations(50);
  for (int round = 0; round < rounds; ++round) {
    std::atomic<int> ran{0};
    try {
      ParallelWorkers(8, [&](int w) {
        ran.fetch_add(1, std::memory_order_relaxed);
        if (w % 2 == 0) {
          throw std::runtime_error("worker " + std::to_string(w));
        }
      });
      FAIL() << "expected ParallelWorkers to rethrow";
    } catch (const std::runtime_error&) {
    }
    // Every worker still ran: a throwing shard must not cancel the others.
    ASSERT_EQ(ran.load(), 8);
  }
}

TEST(ThreadPoolStressTest, RethrownErrorIsIntactUnderContention) {
  // Regression test for the thread-safety-annotation finding: the pool used
  // to read its first-error slot without the mutex when rethrowing, relying
  // on the joins alone for ordering. The slot is now an annotated
  // mutex-guarded type whose read path locks too. Here every worker throws
  // nearly simultaneously (rendezvous barrier) so captures contend as hard
  // as possible, and the surfaced exception must be one of the thrown ones,
  // with its message untorn — under TSan this also proves the locked read.
  const int rounds = StressIterations(50);
  const int workers = 8;
  for (int round = 0; round < rounds; ++round) {
    std::atomic<int> arrivals{0};
    std::string surfaced;
    try {
      ParallelWorkers(workers, [&](int w) {
        arrivals.fetch_add(1, std::memory_order_relaxed);
        while (arrivals.load(std::memory_order_relaxed) < workers) {
        }
        throw std::runtime_error("thrower-" + std::to_string(w) + "-round-" +
                                 std::to_string(round));
      });
      FAIL() << "expected ParallelWorkers to rethrow";
    } catch (const std::runtime_error& e) {
      surfaced = e.what();
    }
    // Exactly one of this round's exceptions, byte-for-byte.
    bool matches_a_thrower = false;
    for (int w = 0; w < workers; ++w) {
      if (surfaced == "thrower-" + std::to_string(w) + "-round-" +
                          std::to_string(round)) {
        matches_a_thrower = true;
      }
    }
    ASSERT_TRUE(matches_a_thrower) << "got: " << surfaced;
  }
}

// --- ShuffleBuffer arenas ---------------------------------------------------

TEST(ShuffleBufferStressTest, ConcurrentArenaWritesKeepTheGaugeBalanced) {
  // Buffers are single-writer by design — one per (map worker, reducer) —
  // but the live-bytes gauge they update is process-global. Hammer it from
  // 8 writers appending, sealing, compressing, and draining concurrently.
  const uint64_t baseline = ShuffleBufferLiveBytes();
  const int rounds = StressIterations(10);
  for (int round = 0; round < rounds; ++round) {
    std::atomic<uint64_t> total_records{0};
    ParallelWorkers(8, [&](int w) {
      std::mt19937_64 rng(round * 8 + w);
      std::vector<ShuffleBuffer> buffers(4);
      std::string value;
      for (int i = 0; i < 500; ++i) {
        ShuffleBuffer& buf = buffers[rng() % buffers.size()];
        value.assign(rng() % 64, static_cast<char>('a' + w));
        buf.Append("k" + std::to_string(rng() % 16), value);
        total_records.fetch_add(1, std::memory_order_relaxed);
      }
      uint64_t drained = 0;
      for (size_t b = 0; b < buffers.size(); ++b) {
        if (w % 2 == 0 && b % 2 == 0) {
          buffers[b].Compress();  // gauge-syncing path
        } else {
          buffers[b].Seal();
        }
        std::string raw = buffers[b].ReleaseRaw();
        ShuffleBuffer::ForEachRecord(
            raw, [&](std::string_view, std::string_view) { ++drained; });
      }
      EXPECT_EQ(drained, 500u);
    });
    ASSERT_EQ(total_records.load(), 8u * 500u);
    // Every buffer was drained, so the global gauge is back to baseline.
    ASSERT_EQ(ShuffleBufferLiveBytes(), baseline);
  }
}

// --- MemoryBudget -----------------------------------------------------------

TEST(MemoryBudgetStressTest, ContendedChargeReleaseStaysSymmetric) {
  MemoryBudget budget(1 << 20);
  const int rounds = StressIterations(10);
  for (int round = 0; round < rounds; ++round) {
    ParallelWorkers(8, [&](int w) {
      std::mt19937_64 rng(round * 8 + w);
      uint64_t held = 0;
      for (int i = 0; i < 2000; ++i) {
        uint64_t bytes = 1 + rng() % 512;
        if (budget.TryCharge(bytes)) {
          held += bytes;
        } else if (held > 0) {
          budget.Release(held);  // spill analogue: free everything we own
          held = 0;
        } else {
          budget.ForceCharge(bytes);  // bounded overshoot path
          held += bytes;
        }
      }
      budget.Release(held);
    });
    // Charges and releases mirrored exactly across all workers.
    ASSERT_EQ(budget.used_bytes(), 0u);
  }
}

// --- Budget-contended spill -------------------------------------------------

// Runs one word-count-shaped round and returns its groups.
GroupMap RunCountingRound(int workers, const DataflowOptions& options) {
  const size_t num_inputs = 256;
  GroupMap groups;
  dseq::Mutex mu;
  RunMapReduce(
      num_inputs,
      [](size_t i, const EmitFn& emit) {
        std::string value;
        for (int k = 0; k < 8; ++k) {
          value.clear();
          PutVarint(&value, 1);
          emit("key" + std::to_string((i * 7 + static_cast<size_t>(k)) % 31),
               value);
        }
      },
      MakeSumCombiner,
      [&](int /*worker*/, std::string_view key,
          std::vector<std::string_view>& values) {
        dseq::MutexLock lock(mu);
        auto& column = groups[std::string(key)];
        for (std::string_view v : values) column.emplace_back(v);
      },
      options);
  (void)workers;
  return groups;
}

TEST(SpillContentionStressTest, ManyWorkersSpillingUnderOneTinyBudget) {
  testing::ScopedTempDir spill_dir;
  DataflowOptions in_memory;
  in_memory.num_map_workers = 8;
  in_memory.num_reduce_workers = 8;
  GroupMap want = RunCountingRound(8, in_memory);

  const int rounds = StressIterations(5);
  for (int round = 0; round < rounds; ++round) {
    DataflowOptions budgeted = in_memory;
    // A budget far below the round's shuffle volume: every map worker is
    // forced through TryCharge failure, worth-spilling accounting,
    // concurrent SpillFile creation, and ForceCharge overdraft at once.
    budgeted.memory_budget_bytes = testing::SpillTestBudget(256);
    budgeted.spill_dir = spill_dir.path();
    budgeted.spill_merge_fan_in = 2;  // extra merge passes, more file churn
    GroupMap got = RunCountingRound(8, budgeted);
    ASSERT_EQ(got, want);
  }
  // ScopedTempDir asserts RAII hygiene (no leftover spill files) on exit.
}

}  // namespace
}  // namespace dseq
