// Death tests for the planted invariant layer (src/util/check.h): the
// always-on CHECKs must abort with a diagnostic naming the failure, the
// debug-only DCHECKs must abort when live and cost nothing (not even
// condition evaluation) when compiled out.
#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <utility>

#include "src/dist/distributed.h"
#include "src/dist/partition_plan.h"
#include "src/spill/memory_budget.h"
#include "src/spill/spill_file.h"
#include "src/util/check.h"
#include "tests/test_util.h"

namespace dseq {
namespace {

TEST(CheckMacroTest, PassingChecksAreSilent) {
  DSEQ_CHECK(true);
  DSEQ_CHECK_MSG(1 + 1 == 2, "arithmetic broke");
  DSEQ_CHECK_EQ(3, 3);
  DSEQ_CHECK_NE(3, 4);
  DSEQ_CHECK_LE(3, 3);
  DSEQ_CHECK_LT(3, 4);
  DSEQ_CHECK_GE(4, 3);
  DSEQ_CHECK_GT(4, 3);
  DSEQ_DCHECK(true);
  DSEQ_DCHECK_EQ(std::string_view("a"), std::string_view("a"));
}

TEST(CheckMacroDeathTest, FailedCheckNamesTheCondition) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(DSEQ_CHECK(2 + 2 == 5), "DSEQ_CHECK failed at .*: 2 \\+ 2 == 5");
}

TEST(CheckMacroDeathTest, FailedCheckMsgCarriesTheMessage) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(DSEQ_CHECK_MSG(false, std::string("the budget wrapped")),
               "DSEQ_CHECK failed at .*: false \\(the budget wrapped\\)");
}

TEST(CheckMacroDeathTest, ComparisonChecksPrintBothOperands) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(DSEQ_CHECK_EQ(3, 4), "3 == 4 \\(3 vs 4\\)");
  EXPECT_DEATH(DSEQ_CHECK_LE(10, 7), "10 <= 7 \\(10 vs 7\\)");
}

#if DSEQ_DCHECK_IS_ON
TEST(CheckMacroDeathTest, DcheckAbortsWhenOn) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(DSEQ_DCHECK(false), "DSEQ_CHECK failed");
  EXPECT_DEATH(DSEQ_DCHECK_EQ(1, 2), "1 vs 2");
}
#else
TEST(CheckMacroTest, CompiledOutDcheckDoesNotEvaluateTheCondition) {
  int evaluations = 0;
  auto count = [&]() {
    ++evaluations;
    return false;
  };
  DSEQ_DCHECK(count());
  DSEQ_DCHECK_MSG(count(), "never printed");
  DSEQ_DCHECK_EQ(count(), true);
  EXPECT_EQ(evaluations, 0);
}
#endif

// --- MemoryBudget double release (always-on CHECK) --------------------------

TEST(MemoryBudgetDeathTest, DoubleReleaseAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  MemoryBudget budget(1024);
  ASSERT_TRUE(budget.TryCharge(100));
  budget.Release(100);
  EXPECT_DEATH(budget.Release(100),
               "exceeds the charged balance .*double release");
}

TEST(MemoryBudgetDeathTest, ReleasingMoreThanChargedAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  MemoryBudget budget(1024);
  ASSERT_TRUE(budget.TryCharge(64));
  EXPECT_DEATH(budget.Release(65), "Release of 65 bytes exceeds");
}

TEST(MemoryBudgetDeathTest, DisabledBudgetIgnoresReleases) {
  // budget 0 = unlimited: no accounting, so no symmetry to enforce.
  MemoryBudget budget(0);
  budget.Release(1 << 30);  // must not abort
  EXPECT_EQ(budget.used_bytes(), 0u);
}

// --- PartitionPlan out-of-range reducer (DCHECK) ----------------------------

#if DSEQ_DCHECK_IS_ON
TEST(PartitionPlanDeathTest, OutOfRangeAssignmentAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // BuildPartitionPlan can never produce this (its construction CHECKs
  // would fire), so model the real hazard: a plan mutated or deserialized
  // out of range after construction.
  PartitionPlan plan;
  plan.num_reducers = 2;
  plan.assignments.emplace_back(ItemId{7}, 5);
  EXPECT_DEATH(plan.ReducerForKey(EncodePivotKey(ItemId{7})),
               "out-of-range reducer");
}

TEST(PartitionPlanDeathTest, OutOfRangeSplitReducerAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  PartitionPlan plan;
  plan.num_reducers = 2;
  plan.num_inputs = 10;
  PivotSplit split;
  split.pivot = ItemId{7};
  split.reducers = {0, -1};
  plan.splits.push_back(std::move(split));
  EXPECT_DEATH(plan.ReducerForKey(EncodeSubpartitionKey(ItemId{7}, 1)),
               "out-of-range reducer");
}
#endif

TEST(PartitionPlanTest, InRangePlanRoutesWithoutAborting) {
  PartitionPlan plan;
  plan.num_reducers = 4;
  plan.assignments.emplace_back(ItemId{7}, 3);
  EXPECT_EQ(plan.ReducerForKey(EncodePivotKey(ItemId{7})), 3);
}

// --- SpillWriter append-after-finish (always-on CHECK) ----------------------

TEST(SpillWriterDeathTest, AppendAfterFinishAborts) {
  // "fast" style on purpose: the forked child must not re-run the test body
  // (threadsafe style re-executes it), which would create a second spill
  // file it then leaks by aborting mid-test. This binary is single-threaded
  // here, which is the one precondition fast-style forking needs.
  ::testing::FLAGS_gtest_death_test_style = "fast";
  testing::ScopedTempDir dir;
  SpillFile file = SpillFile::Create(dir.path());
  SpillWriter writer(&file, /*compress=*/false, /*stats=*/nullptr);
  writer.Append("key", "value");
  writer.Finish();
  EXPECT_DEATH(writer.Append("key2", "value2"),
               "SpillWriter::Append after Finish");
}

}  // namespace
}  // namespace dseq
