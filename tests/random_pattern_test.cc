// Fuzz-style property tests: generate random pattern expression ASTs,
// round-trip them through the parser, and cross-check DESQ-DFS, D-SEQ and
// D-CAND against the brute-force oracle on random databases.
#include <gtest/gtest.h>

#include <random>

#include "src/core/desq_dfs.h"
#include "src/dist/dcand_miner.h"
#include "src/dist/dseq_miner.h"
#include "src/fst/compiler.h"
#include "src/patex/parser.h"
#include "tests/test_util.h"

namespace dseq {
namespace {

// Generates a random pattern expression over items i0..i{num_items-1}.
// Depth-bounded so FSTs stay small and brute-force enumeration feasible.
class PatternGenerator {
 public:
  PatternGenerator(uint64_t seed, size_t num_items)
      : rng_(seed), num_items_(num_items) {}

  std::unique_ptr<PatEx> Generate() {
    // Ensure at least one capture somewhere: retry until the pattern can
    // produce output.
    for (int attempt = 0; attempt < 20; ++attempt) {
      captures_ = 0;
      auto ast = Node(/*depth=*/0, /*captured=*/false);
      if (captures_ > 0) return ast;
    }
    // Fall back to a guaranteed-capture pattern.
    std::vector<std::unique_ptr<PatEx>> parts;
    parts.push_back(Star());
    parts.push_back(PatEx::Capture(PatEx::Dot(false)));
    parts.push_back(Star());
    return PatEx::Concat(std::move(parts));
  }

 private:
  std::unique_ptr<PatEx> Star() {
    return PatEx::Repeat(PatEx::Dot(false), 0, -1);
  }

  std::unique_ptr<PatEx> Leaf(bool captured) {
    switch (rng_() % 4) {
      case 0:
        return PatEx::Dot(rng_() % 2 == 0);
      default: {
        std::string name = "i" + std::to_string(rng_() % num_items_);
        bool gen = rng_() % 2 == 0;
        bool exact = rng_() % 3 == 0;
        (void)captured;
        return PatEx::Item(name, gen, exact);
      }
    }
  }

  std::unique_ptr<PatEx> Node(int depth, bool captured) {
    int choice = depth >= 3 ? 0 : static_cast<int>(rng_() % 10);
    switch (choice) {
      case 1: case 2: {  // concat of 2-3 nodes
        std::vector<std::unique_ptr<PatEx>> parts;
        size_t n = 2 + rng_() % 2;
        for (size_t i = 0; i < n; ++i) {
          parts.push_back(Node(depth + 1, captured));
        }
        return PatEx::Concat(std::move(parts));
      }
      case 3: {  // alternation
        std::vector<std::unique_ptr<PatEx>> alts;
        size_t n = 2 + rng_() % 2;
        for (size_t i = 0; i < n; ++i) {
          alts.push_back(Node(depth + 1, captured));
        }
        return PatEx::Alt(std::move(alts));
      }
      case 4: {  // bounded repeat
        int lo = static_cast<int>(rng_() % 2);
        int hi = lo + 1 + static_cast<int>(rng_() % 2);
        return PatEx::Repeat(Node(depth + 1, captured), lo, hi);
      }
      case 5:  // optional
        return PatEx::Repeat(Node(depth + 1, captured), 0, 1);
      case 6: {  // unbounded star (kept small: dot body only)
        return Star();
      }
      case 7: case 8: {  // capture
        if (!captured) {
          ++captures_;
          return PatEx::Capture(Node(depth + 1, /*captured=*/true));
        }
        return Node(depth + 1, captured);
      }
      default:
        if (captured) ++captures_;  // leaves inside captures emit output
        return Leaf(captured);
    }
  }

  std::mt19937_64 rng_;
  size_t num_items_;
  int captures_ = 0;
};

class RandomPatternTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomPatternTest, AllMinersMatchBruteForce) {
  int seed = GetParam();
  SequenceDatabase db = testing::RandomDatabase(seed * 131 + 7, 6, 30, 7);
  PatternGenerator generator(seed * 977 + 13, 6);

  for (int trial = 0; trial < 8; ++trial) {
    auto ast = generator.Generate();
    std::string text = ast->ToString();

    // Parser round-trip must reproduce the same structure.
    auto reparsed = ParsePatEx(text);
    ASSERT_EQ(reparsed->ToString(), text) << text;

    Fst fst;
    try {
      fst = CompileFst(*ast, db.dict);
    } catch (const FstCompileError&) {
      continue;  // e.g. pattern references only expansion-bounded repeats
    }

    for (uint64_t sigma : {1, 3}) {
      MiningResult expected =
          testing::BruteForceMine(db.sequences, fst, db.dict, sigma);

      DesqDfsOptions dfs_options;
      dfs_options.sigma = sigma;
      EXPECT_EQ(MineDesqDfs(db.sequences, fst, db.dict, dfs_options),
                expected)
          << "DESQ-DFS, pattern " << text << " sigma " << sigma;

      DSeqOptions dseq_options;
      dseq_options.sigma = sigma;
      dseq_options.num_map_workers = 2;
      dseq_options.num_reduce_workers = 2;
      EXPECT_EQ(MineDSeq(db.sequences, fst, db.dict, dseq_options).patterns,
                expected)
          << "D-SEQ, pattern " << text << " sigma " << sigma;

      DCandOptions dcand_options;
      dcand_options.sigma = sigma;
      dcand_options.num_map_workers = 2;
      dcand_options.num_reduce_workers = 2;
      EXPECT_EQ(
          MineDCand(db.sequences, fst, db.dict, dcand_options).patterns,
          expected)
          << "D-CAND, pattern " << text << " sigma " << sigma;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, RandomPatternTest,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace dseq
