#include "src/util/varint.h"

#include <gtest/gtest.h>

#include <limits>
#include <random>

namespace dseq {
namespace {

TEST(VarintTest, RoundTripSmallValues) {
  for (uint64_t v = 0; v < 300; ++v) {
    std::string buf;
    PutVarint(&buf, v);
    size_t pos = 0;
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint(buf, &pos, &decoded));
    EXPECT_EQ(decoded, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(VarintTest, RoundTripBoundaryValues) {
  const uint64_t values[] = {0,
                             127,
                             128,
                             16383,
                             16384,
                             (1ULL << 32) - 1,
                             1ULL << 32,
                             std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : values) {
    std::string buf;
    PutVarint(&buf, v);
    size_t pos = 0;
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint(buf, &pos, &decoded)) << v;
    EXPECT_EQ(decoded, v);
  }
}

TEST(VarintTest, SmallValuesUseOneByte) {
  std::string buf;
  PutVarint(&buf, 127);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  PutVarint(&buf, 128);
  EXPECT_EQ(buf.size(), 2u);
}

TEST(VarintTest, TruncatedInputFails) {
  std::string buf;
  PutVarint(&buf, 1ULL << 40);
  buf.pop_back();
  size_t pos = 0;
  uint64_t decoded = 0;
  EXPECT_FALSE(GetVarint(buf, &pos, &decoded));
}

TEST(VarintTest, MultipleValuesInSequence) {
  std::string buf;
  for (uint64_t v = 0; v < 100; ++v) PutVarint(&buf, v * v * 1000);
  size_t pos = 0;
  for (uint64_t v = 0; v < 100; ++v) {
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint(buf, &pos, &decoded));
    EXPECT_EQ(decoded, v * v * 1000);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(ZigzagTest, RoundTrip) {
  const int64_t values[] = {0, 1, -1, 2, -2, 1000, -1000,
                            std::numeric_limits<int64_t>::max(),
                            std::numeric_limits<int64_t>::min()};
  for (int64_t v : values) {
    EXPECT_EQ(ZigzagDecode(ZigzagEncode(v)), v);
  }
}

TEST(ZigzagTest, SmallMagnitudesEncodeSmall) {
  EXPECT_EQ(ZigzagEncode(0), 0u);
  EXPECT_EQ(ZigzagEncode(-1), 1u);
  EXPECT_EQ(ZigzagEncode(1), 2u);
  EXPECT_EQ(ZigzagEncode(-2), 3u);
}

TEST(SequenceCodingTest, RoundTripEmpty) {
  std::string buf;
  PutSequence(&buf, {});
  size_t pos = 0;
  Sequence decoded;
  ASSERT_TRUE(GetSequence(buf, &pos, &decoded));
  EXPECT_TRUE(decoded.empty());
}

TEST(SequenceCodingTest, RoundTripRandom) {
  std::mt19937_64 rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    Sequence seq;
    size_t len = rng() % 200;
    for (size_t i = 0; i < len; ++i) {
      seq.push_back(static_cast<ItemId>(rng() % 100'000 + 1));
    }
    std::string buf;
    PutSequence(&buf, seq);
    size_t pos = 0;
    Sequence decoded;
    ASSERT_TRUE(GetSequence(buf, &pos, &decoded));
    EXPECT_EQ(decoded, seq);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(SequenceCodingTest, DeltaCodingIsCompactForSortedRuns) {
  Sequence seq;
  for (ItemId w = 1000; w < 1100; ++w) seq.push_back(w);
  std::string buf;
  PutSequence(&buf, seq);
  // 100 deltas of 1 (zigzag 2) = 1 byte each + first item + length.
  EXPECT_LE(buf.size(), 110u);
}

TEST(SequenceCodingTest, TruncatedSequenceFails) {
  Sequence seq = {5, 10, 15};
  std::string buf;
  PutSequence(&buf, seq);
  buf.pop_back();
  size_t pos = 0;
  Sequence decoded;
  EXPECT_FALSE(GetSequence(buf, &pos, &decoded));
}

}  // namespace
}  // namespace dseq
